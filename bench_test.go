package repro_test

// One benchmark per table and figure of the paper's evaluation: each
// iteration regenerates the corresponding experiment on a reduced corpus
// (the shapes are scale-invariant; `cmd/energysim -scale 0.125 all` prints
// the full-size renditions). Codec throughput benches at the bottom cover
// the raw compression substrates.

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro"
	"repro/internal/experiment"
	"repro/internal/workload"
)

// benchConfig keeps per-iteration work bounded.
func benchConfig() experiment.Config {
	return experiment.Config{Scale: 1.0 / 80, LargeSubset: 4, SmallSubset: 3}
}

func BenchmarkTable1PowerStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Table1()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable2CompressionFactors(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig1TimeComparison(b *testing.B)   { benchSchemeComparison(b, "time") }
func BenchmarkFig2EnergyComparison(b *testing.B) { benchSchemeComparison(b, "energy") }

func benchSchemeComparison(b *testing.B, metric string) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		comps, err := cfg.SchemeComparison()
		if err != nil {
			b.Fatal(err)
		}
		out := experiment.RenderBars("bench", metric, comps)
		if len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkFig3IdleBreakdown(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig3IdleBreakdown(500_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4InterleaveScenarios(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig4Scenarios(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5InterleavingTime(b *testing.B)   { benchInterleaving(b, "time") }
func BenchmarkFig6InterleavingEnergy(b *testing.B) { benchInterleaving(b, "energy") }

func benchInterleaving(b *testing.B, metric string) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		comps, err := cfg.InterleavingComparison()
		if err != nil {
			b.Fatal(err)
		}
		if len(experiment.RenderBars("bench", metric, comps)) == 0 {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkFig7ModelError(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig7InterleaveErrors(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Fitting(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fits, err := cfg.Fig8Fits()
		if err != nil {
			b.Fatal(err)
		}
		if len(fits) != 2 {
			b.Fatal("missing fits")
		}
	}
}

func BenchmarkFig9BitrateError(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig9BitrateErrors(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Selective(b *testing.B) {
	cfg := experiment.Config{Scale: 1.0 / 80, LargeSubset: 6, SmallSubset: 1}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SelectiveComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12OnDemandTime(b *testing.B)   { benchOnDemand(b, "time") }
func BenchmarkFig13OnDemandEnergy(b *testing.B) { benchOnDemand(b, "energy") }

func benchOnDemand(b *testing.B, metric string) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		comps, err := cfg.OnDemandComparison()
		if err != nil {
			b.Fatal(err)
		}
		if len(experiment.RenderBars("bench", metric, comps)) == 0 {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkThresholdDerivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		th := experiment.Thresholds()
		if th.FileThresholdBytes <= 0 {
			b.Fatal("bad threshold")
		}
	}
}

// --- codec substrate throughput ---

func benchData() []byte {
	return workload.Generate(workload.ClassSource, 512*1024, 7)
}

func BenchmarkCodecGzipCompress(b *testing.B)     { benchCompress(b, repro.Gzip) }
func BenchmarkCodecCompressCompress(b *testing.B) { benchCompress(b, repro.Compress) }
func BenchmarkCodecBzip2Compress(b *testing.B)    { benchCompress(b, repro.Bzip2) }

func benchCompress(b *testing.B, s repro.Scheme) {
	data := benchData()
	c, err := repro.NewCodec(s, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecGzipDecompress(b *testing.B)     { benchDecompress(b, repro.Gzip) }
func BenchmarkCodecCompressDecompress(b *testing.B) { benchDecompress(b, repro.Compress) }
func BenchmarkCodecBzip2Decompress(b *testing.B)    { benchDecompress(b, repro.Bzip2) }

func benchDecompress(b *testing.B, s repro.Scheme) {
	data := benchData()
	c, err := repro.NewCodec(s, 0)
	if err != nil {
		b.Fatal(err)
	}
	comp, err := c.Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(comp, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectiveEncodeMixed(b *testing.B) {
	data := repro.GenerateMixedFile(1_000_000, 3)
	c, err := repro.NewCodec(repro.Zlib, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.SelectiveEncode(data, c, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProxyFetchLoopback(b *testing.B) {
	srv := repro.NewProxyServer(nil)
	content := []byte(strings.Repeat("loopback benchmark content ", 20000))
	srv.Register("bench.txt", content)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Precompress("bench.txt", repro.Gzip); err != nil {
		b.Fatal(err)
	}
	cli := repro.NewProxyClient(addr)
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := cli.Fetch("bench.txt", repro.Gzip, repro.ProxyPrecompressed)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(content) {
			b.Fatal("short fetch")
		}
	}
}

func BenchmarkUploadExtension(b *testing.B) {
	cfg := experiment.Config{Scale: 1.0 / 80, LargeSubset: 2}
	for i := 0; i < b.N; i++ {
		rows, err := cfg.UploadComparison()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAblationLevels(b *testing.B) {
	cfg := experiment.Config{Scale: 1.0 / 160}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationLevels(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBlockSize(b *testing.B) {
	cfg := experiment.Config{Scale: 1.0 / 160}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationBlockSize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMeterRate(b *testing.B) {
	cfg := experiment.Config{}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationMeterRate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyComparison(b *testing.B) {
	cfg := experiment.Config{}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.PolicyComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceCapture(b *testing.B) {
	cfg := experiment.Config{}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Trace(200_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamingGzipRoundTrip(b *testing.B) {
	data := workload.Generate(workload.ClassSource, 1_000_000, 31)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		zw, err := repro.NewGzipWriter(&buf, 6)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := zw.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			b.Fatal(err)
		}
		out, err := io.ReadAll(repro.NewGzipReader(&buf))
		if err != nil || len(out) != len(data) {
			b.Fatalf("round trip: %v", err)
		}
	}
}
