package repro_test

// Testable godoc examples for the public API. Outputs are deterministic:
// the model constants are the paper's, and the codecs and corpus are
// seeded.

import (
	"fmt"

	"repro"
)

// The paper's fitted download-energy line at 11 Mb/s.
func ExampleEnergyModel() {
	model := repro.Params11Mbps()
	fmt.Printf("E(1 MB) = %.2f J\n", model.DownloadEnergy(1.0))
	fmt.Printf("idle time of a 3 MB download: %.1f s\n", model.IdleTime(3.0))
	// Output:
	// E(1 MB) = 3.53 J
	// idle time of a 3 MB download: 2.0 s
}

// Equation 6: compress only when the factor clears the threshold.
func ExampleShouldCompress() {
	fmt.Println(repro.ShouldCompress(1_000_000, 800_000)) // factor 1.25
	fmt.Println(repro.ShouldCompress(1_000_000, 900_000)) // factor 1.11
	fmt.Println(repro.ShouldCompress(2_000, 200))         // below 3900 B
	// Output:
	// true
	// false
	// false
}

// Round-trip through the gzip codec.
func ExampleNewCodec() {
	c, err := repro.NewCodec(repro.Gzip, 9)
	if err != nil {
		panic(err)
	}
	data := []byte("compress me, compress me, compress me, compress me")
	comp, _ := c.Compress(data)
	back, _ := c.Decompress(comp, len(data))
	fmt.Println(string(back) == string(data))
	fmt.Println(len(comp) < len(data))
	// Output:
	// true
	// true
}

// A complete simulated experiment: download a compressible file with
// interleaved decompression and compare against the plain download.
func ExampleRunExperiment() {
	data := make([]byte, 600_000)
	for i := range data {
		data[i] = byte("energy model "[i%13])
	}
	plain, _ := repro.RunExperiment(repro.ExperimentSpec{Data: data, Mode: repro.ModePlain})
	comp, _ := repro.RunExperiment(repro.ExperimentSpec{
		Data: data, Scheme: repro.Gzip, Mode: repro.ModeInterleaved,
	})
	fmt.Println(comp.ExactEnergyJ < plain.ExactEnergyJ/2)
	// Output:
	// true
}

// The sleep-vs-interleave crossover the paper derives in Section 4.2.
func ExampleEnergyModel_sleepCrossover() {
	model := repro.Params11Mbps()
	fmt.Printf("sleep beats interleaving above factor %.1f (paper: 4.6)\n",
		model.SleepCrossoverFactor())
	// Output:
	// sleep beats interleaving above factor 4.4 (paper: 4.6)
}
