package bitio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLSBWriteRead(t *testing.T) {
	var buf bytes.Buffer
	w := NewLSBWriter(&buf)
	w.WriteBits(0b101, 3)
	w.WriteBits(0b11111111, 8)
	w.WriteBits(0, 5)
	w.WriteBits(0x1234, 16)
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	r := NewLSBReader(&buf)
	if got := r.ReadBits(3); got != 0b101 {
		t.Errorf("got %b, want 101", got)
	}
	if got := r.ReadBits(8); got != 0xff {
		t.Errorf("got %x, want ff", got)
	}
	if got := r.ReadBits(5); got != 0 {
		t.Errorf("got %x, want 0", got)
	}
	if got := r.ReadBits(16); got != 0x1234 {
		t.Errorf("got %x, want 1234", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("err: %v", err)
	}
}

func TestMSBWriteRead(t *testing.T) {
	var buf bytes.Buffer
	w := NewMSBWriter(&buf)
	w.WriteBits(0b1, 1)
	w.WriteBits(0b0110, 4)
	w.WriteBits(0xABC, 12)
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	r := NewMSBReader(&buf)
	if got := r.ReadBits(1); got != 1 {
		t.Errorf("bit: got %d", got)
	}
	if got := r.ReadBits(4); got != 0b0110 {
		t.Errorf("got %b", got)
	}
	if got := r.ReadBits(12); got != 0xABC {
		t.Errorf("got %x", got)
	}
}

func TestMSBFirstBitIsHighBitOfByte(t *testing.T) {
	var buf bytes.Buffer
	w := NewMSBWriter(&buf)
	w.WriteBits(1, 1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] != 0x80 {
		t.Errorf("msb-first single 1 bit should give 0x80, got %#x", buf.Bytes()[0])
	}
}

func TestLSBFirstBitIsLowBitOfByte(t *testing.T) {
	var buf bytes.Buffer
	w := NewLSBWriter(&buf)
	w.WriteBits(1, 1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] != 0x01 {
		t.Errorf("lsb-first single 1 bit should give 0x01, got %#x", buf.Bytes()[0])
	}
}

func TestLSBAlign(t *testing.T) {
	var buf bytes.Buffer
	w := NewLSBWriter(&buf)
	w.WriteBits(1, 1)
	w.Align()
	w.WriteBits(0xAA, 8)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x01, 0xAA}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("got %x, want %x", buf.Bytes(), want)
	}
	r := NewLSBReader(&buf)
	r.ReadBits(1)
	r.Align()
	if got := r.ReadBits(8); got != 0xAA {
		t.Errorf("after align got %x", got)
	}
}

func TestLSBWriteBytes(t *testing.T) {
	var buf bytes.Buffer
	w := NewLSBWriter(&buf)
	w.WriteBits(3, 2)
	w.Align()
	w.WriteBytes([]byte{1, 2, 3})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x03, 1, 2, 3}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("got %x want %x", buf.Bytes(), want)
	}
}

func TestLSBWriteBytesUnaligned(t *testing.T) {
	w := NewLSBWriter(io.Discard)
	w.WriteBits(1, 1)
	w.WriteBytes([]byte{1})
	if w.Err() == nil {
		t.Fatal("expected error writing bytes unaligned")
	}
}

func TestReadPastEOF(t *testing.T) {
	r := NewLSBReader(bytes.NewReader([]byte{0xff}))
	r.ReadBits(8)
	r.ReadBits(1)
	if r.Err() == nil {
		t.Fatal("expected error reading past EOF")
	}
	m := NewMSBReader(bytes.NewReader([]byte{0xff}))
	m.ReadBits(8)
	m.ReadBits(1)
	if m.Err() == nil {
		t.Fatal("expected error reading past EOF (msb)")
	}
}

func TestBitOverflow(t *testing.T) {
	w := NewLSBWriter(io.Discard)
	w.WriteBits(0, 58)
	if !errors.Is(w.Err(), ErrBitOverflow) {
		t.Fatalf("want ErrBitOverflow, got %v", w.Err())
	}
	r := NewLSBReader(bytes.NewReader(make([]byte, 16)))
	r.ReadBits(58)
	if !errors.Is(r.Err(), ErrBitOverflow) {
		t.Fatalf("want ErrBitOverflow, got %v", r.Err())
	}
}

func TestAtEOF(t *testing.T) {
	r := NewLSBReader(bytes.NewReader([]byte{0xff}))
	if r.AtEOF() {
		t.Fatal("AtEOF before reading")
	}
	r.ReadBits(8)
	if !r.AtEOF() {
		t.Fatal("expected AtEOF after consuming all bits")
	}
}

// quickSeq is a sequence of (value, width) pairs used by the round-trip
// properties.
type quickSeq struct {
	vals   []uint64
	widths []uint
}

func genSeq(r *rand.Rand) quickSeq {
	n := r.Intn(200) + 1
	s := quickSeq{vals: make([]uint64, n), widths: make([]uint, n)}
	for i := 0; i < n; i++ {
		w := uint(r.Intn(57) + 1)
		s.widths[i] = w
		s.vals[i] = r.Uint64() & ((1 << w) - 1)
	}
	return s
}

func TestQuickLSBRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		s := genSeq(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		w := NewLSBWriter(&buf)
		for i, v := range s.vals {
			w.WriteBits(v, s.widths[i])
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewLSBReader(&buf)
		for i, want := range s.vals {
			if got := r.ReadBits(s.widths[i]); got != want {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMSBRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		s := genSeq(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		w := NewMSBWriter(&buf)
		for i, v := range s.vals {
			w.WriteBits(v, s.widths[i])
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewMSBReader(&buf)
		for i, want := range s.vals {
			if got := r.ReadBits(s.widths[i]); got != want {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("boom")
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriterPropagatesError(t *testing.T) {
	w := NewLSBWriter(&failWriter{after: 0})
	for i := 0; i < 10000; i++ {
		w.WriteBits(0xff, 8)
	}
	if err := w.Flush(); err == nil {
		t.Fatal("expected write error to propagate")
	}
}

func TestMSBReadBitSequence(t *testing.T) {
	r := NewMSBReader(bytes.NewReader([]byte{0b10110100}))
	want := []uint64{1, 0, 1, 1, 0, 1, 0, 0}
	for i, w := range want {
		if got := r.ReadBit(); got != w {
			t.Fatalf("bit %d: got %d want %d", i, got, w)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestLSBReadBytesAfterBits(t *testing.T) {
	r := NewLSBReader(bytes.NewReader([]byte{0xAB, 0x01, 0x02, 0x03}))
	if got := r.ReadBits(8); got != 0xAB {
		t.Fatalf("got %x", got)
	}
	buf := make([]byte, 3)
	if err := r.ReadBytes(buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatalf("got %v", buf)
	}
	// Reading past the end must error.
	if err := r.ReadBytes(make([]byte, 1)); err == nil {
		t.Fatal("read past end accepted")
	}
}

func TestLSBReadBytesUnaligned(t *testing.T) {
	r := NewLSBReader(bytes.NewReader([]byte{0xFF, 0xFF}))
	r.ReadBits(3)
	if err := r.ReadBytes(make([]byte, 1)); err == nil {
		t.Fatal("unaligned ReadBytes accepted")
	}
}

func TestMSBWriterErr(t *testing.T) {
	w := NewMSBWriter(&failWriter{after: 0})
	for i := 0; i < 10000; i++ {
		w.WriteBits(0x55, 8)
	}
	if w.Err() == nil && w.Flush() == nil {
		t.Fatal("write error not surfaced")
	}
}
