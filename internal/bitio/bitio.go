// Package bitio provides bit-level readers and writers in both LSB-first
// (DEFLATE, LZW .Z) and MSB-first (bzip2) packing orders.
//
// All types buffer internally and surface I/O errors through a sticky error
// returned from Flush/Err so that hot encode loops do not need per-call error
// checks.
package bitio

import (
	"errors"
	"io"
)

// ErrBitOverflow is returned when a caller asks to write or read more than 57
// bits in a single call, which exceeds the accumulator guarantee.
var ErrBitOverflow = errors.New("bitio: bit count out of range")

const maxBitsPerCall = 57

// LSBWriter packs bits least-significant-bit first, the order used by DEFLATE
// and by the LZW .Z format.
type LSBWriter struct {
	w   io.Writer
	acc uint64
	n   uint
	buf []byte
	err error
}

// NewLSBWriter returns an LSBWriter emitting to w.
func NewLSBWriter(w io.Writer) *LSBWriter {
	return &LSBWriter{w: w, buf: make([]byte, 0, 4096)}
}

// WriteBits writes the low n bits of v, LSB first. n must be <= 57.
func (bw *LSBWriter) WriteBits(v uint64, n uint) {
	if bw.err != nil {
		return
	}
	if n > maxBitsPerCall {
		bw.err = ErrBitOverflow
		return
	}
	bw.acc |= (v & ((1 << n) - 1)) << bw.n
	bw.n += n
	for bw.n >= 8 {
		bw.buf = append(bw.buf, byte(bw.acc))
		bw.acc >>= 8
		bw.n -= 8
		if len(bw.buf) >= 4096 {
			bw.drain()
		}
	}
}

// WriteBytes writes whole bytes. The writer must be byte-aligned.
func (bw *LSBWriter) WriteBytes(p []byte) {
	if bw.err != nil {
		return
	}
	if bw.n != 0 {
		bw.err = errors.New("bitio: WriteBytes on unaligned writer")
		return
	}
	bw.drain()
	if _, err := bw.w.Write(p); err != nil {
		bw.err = err
	}
}

// Align pads with zero bits to the next byte boundary.
func (bw *LSBWriter) Align() {
	if bw.n > 0 {
		bw.buf = append(bw.buf, byte(bw.acc))
		bw.acc = 0
		bw.n = 0
	}
}

func (bw *LSBWriter) drain() {
	if len(bw.buf) == 0 || bw.err != nil {
		return
	}
	if _, err := bw.w.Write(bw.buf); err != nil {
		bw.err = err
	}
	bw.buf = bw.buf[:0]
}

// Flush aligns to a byte boundary, drains buffered bytes and reports the
// first error encountered.
func (bw *LSBWriter) Flush() error {
	bw.Align()
	bw.drain()
	return bw.err
}

// Err reports the sticky error, if any.
func (bw *LSBWriter) Err() error { return bw.err }

// LSBReader unpacks bits least-significant-bit first.
type LSBReader struct {
	r   io.Reader
	acc uint64
	n   uint
	buf []byte
	pos int
	err error
}

// NewLSBReader returns an LSBReader consuming from r.
func NewLSBReader(r io.Reader) *LSBReader {
	return &LSBReader{r: r, buf: make([]byte, 0, 4096)}
}

func (br *LSBReader) fill(need uint) bool {
	for br.n < need {
		if br.pos >= len(br.buf) {
			if br.err != nil {
				return false
			}
			b := br.buf[:cap(br.buf)]
			n, err := br.r.Read(b)
			br.buf = b[:n]
			br.pos = 0
			if err != nil {
				br.err = err
			}
			if n == 0 {
				if br.err == nil {
					br.err = io.ErrUnexpectedEOF
				}
				return false
			}
		}
		br.acc |= uint64(br.buf[br.pos]) << br.n
		br.pos++
		br.n += 8
	}
	return true
}

// ReadBits reads n bits, LSB first. On error it returns 0 and records the
// error, observable via Err.
func (br *LSBReader) ReadBits(n uint) uint64 {
	if n > maxBitsPerCall {
		if br.err == nil {
			br.err = ErrBitOverflow
		}
		return 0
	}
	if !br.fill(n) {
		return 0
	}
	v := br.acc & ((1 << n) - 1)
	br.acc >>= n
	br.n -= n
	return v
}

// ReadBit reads a single bit.
func (br *LSBReader) ReadBit() uint64 { return br.ReadBits(1) }

// Align discards bits up to the next byte boundary.
func (br *LSBReader) Align() {
	drop := br.n % 8
	br.acc >>= drop
	br.n -= drop
}

// ReadBytes reads exactly len(p) whole bytes. The reader must be aligned.
func (br *LSBReader) ReadBytes(p []byte) error {
	if br.n%8 != 0 {
		return errors.New("bitio: ReadBytes on unaligned reader")
	}
	for i := range p {
		if !br.fill(8) {
			return br.errOrEOF()
		}
		p[i] = byte(br.acc)
		br.acc >>= 8
		br.n -= 8
	}
	return nil
}

func (br *LSBReader) errOrEOF() error {
	if br.err == nil {
		return io.ErrUnexpectedEOF
	}
	return br.err
}

// Err reports the sticky error, if any. io.EOF is reported once input is
// exhausted and a read went past the end.
func (br *LSBReader) Err() error {
	if br.err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return br.err
}

// AtEOF reports whether all buffered bits are consumed and the source
// returned EOF.
func (br *LSBReader) AtEOF() bool {
	if br.n > 0 || br.pos < len(br.buf) {
		return false
	}
	if br.err != nil {
		return true
	}
	// Peek one byte ahead.
	if br.fill(8) {
		return false
	}
	return true
}

// MSBWriter packs bits most-significant-bit first, the order used by bzip2.
type MSBWriter struct {
	w   io.Writer
	acc uint64
	n   uint
	buf []byte
	err error
}

// NewMSBWriter returns an MSBWriter emitting to w.
func NewMSBWriter(w io.Writer) *MSBWriter {
	return &MSBWriter{w: w, buf: make([]byte, 0, 4096)}
}

// WriteBits writes the low n bits of v with the most significant of those
// bits first. n must be <= 57.
func (bw *MSBWriter) WriteBits(v uint64, n uint) {
	if bw.err != nil {
		return
	}
	if n > maxBitsPerCall {
		bw.err = ErrBitOverflow
		return
	}
	bw.acc = (bw.acc << n) | (v & ((1 << n) - 1))
	bw.n += n
	for bw.n >= 8 {
		bw.buf = append(bw.buf, byte(bw.acc>>(bw.n-8)))
		bw.n -= 8
		if len(bw.buf) >= 4096 {
			bw.drain()
		}
	}
	bw.acc &= (1 << bw.n) - 1
}

func (bw *MSBWriter) drain() {
	if len(bw.buf) == 0 || bw.err != nil {
		return
	}
	if _, err := bw.w.Write(bw.buf); err != nil {
		bw.err = err
	}
	bw.buf = bw.buf[:0]
}

// Flush pads with zero bits to a byte boundary, drains and reports the first
// error.
func (bw *MSBWriter) Flush() error {
	if bw.n > 0 {
		bw.buf = append(bw.buf, byte(bw.acc<<(8-bw.n)))
		bw.acc = 0
		bw.n = 0
	}
	bw.drain()
	return bw.err
}

// Err reports the sticky error, if any.
func (bw *MSBWriter) Err() error { return bw.err }

// MSBReader unpacks bits most-significant-bit first.
type MSBReader struct {
	r   io.Reader
	acc uint64
	n   uint
	buf []byte
	pos int
	err error
}

// NewMSBReader returns an MSBReader consuming from r.
func NewMSBReader(r io.Reader) *MSBReader {
	return &MSBReader{r: r, buf: make([]byte, 0, 4096)}
}

func (br *MSBReader) fill(need uint) bool {
	for br.n < need {
		if br.pos >= len(br.buf) {
			if br.err != nil {
				return false
			}
			b := br.buf[:cap(br.buf)]
			n, err := br.r.Read(b)
			br.buf = b[:n]
			br.pos = 0
			if err != nil {
				br.err = err
			}
			if n == 0 {
				if br.err == nil {
					br.err = io.ErrUnexpectedEOF
				}
				return false
			}
		}
		br.acc = (br.acc << 8) | uint64(br.buf[br.pos])
		br.pos++
		br.n += 8
	}
	return true
}

// ReadBits reads n bits MSB first.
func (br *MSBReader) ReadBits(n uint) uint64 {
	if n > maxBitsPerCall {
		if br.err == nil {
			br.err = ErrBitOverflow
		}
		return 0
	}
	if n == 0 {
		return 0
	}
	if !br.fill(n) {
		return 0
	}
	v := (br.acc >> (br.n - n)) & ((1 << n) - 1)
	br.n -= n
	br.acc &= (1 << br.n) - 1
	return v
}

// ReadBit reads a single bit.
func (br *MSBReader) ReadBit() uint64 { return br.ReadBits(1) }

// Err reports the sticky error, if any.
func (br *MSBReader) Err() error {
	if br.err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return br.err
}
