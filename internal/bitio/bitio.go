// Package bitio provides bit-level readers and writers in both LSB-first
// (DEFLATE, LZW .Z) and MSB-first (bzip2) packing orders.
//
// All types buffer internally and surface I/O errors through a sticky error
// returned from Flush/Err so that hot encode loops do not need per-call error
// checks.
package bitio

import (
	"encoding/binary"
	"errors"
	"io"
)

// ErrBitOverflow is returned when a caller asks to write or read more than 57
// bits in a single call, which exceeds the accumulator guarantee.
var ErrBitOverflow = errors.New("bitio: bit count out of range")

const maxBitsPerCall = 57

// LSBWriter packs bits least-significant-bit first, the order used by DEFLATE
// and by the LZW .Z format.
type LSBWriter struct {
	w   io.Writer
	acc uint64
	n   uint
	buf []byte
	err error
}

// NewLSBWriter returns an LSBWriter emitting to w.
func NewLSBWriter(w io.Writer) *LSBWriter {
	return &LSBWriter{w: w, buf: make([]byte, 0, 4096)}
}

// Reset rebinds the writer to w and clears all buffered bits, bytes and the
// sticky error, so pooled writers can be reused across streams.
func (bw *LSBWriter) Reset(w io.Writer) {
	bw.w = w
	bw.acc = 0
	bw.n = 0
	bw.buf = bw.buf[:0]
	bw.err = nil
}

// WriteBits writes the low n bits of v, LSB first. n must be <= 57.
func (bw *LSBWriter) WriteBits(v uint64, n uint) {
	if bw.err != nil {
		return
	}
	if n > maxBitsPerCall {
		bw.err = ErrBitOverflow
		return
	}
	bw.acc |= (v & ((1 << n) - 1)) << bw.n
	bw.n += n
	for bw.n >= 8 {
		bw.buf = append(bw.buf, byte(bw.acc))
		bw.acc >>= 8
		bw.n -= 8
		if len(bw.buf) >= 4096 {
			bw.drain()
		}
	}
}

// WriteBytes writes whole bytes. The writer must be byte-aligned.
func (bw *LSBWriter) WriteBytes(p []byte) {
	if bw.err != nil {
		return
	}
	if bw.n != 0 {
		bw.err = errors.New("bitio: WriteBytes on unaligned writer")
		return
	}
	bw.drain()
	if _, err := bw.w.Write(p); err != nil {
		bw.err = err
	}
}

// Align pads with zero bits to the next byte boundary.
func (bw *LSBWriter) Align() {
	if bw.n > 0 {
		bw.buf = append(bw.buf, byte(bw.acc))
		bw.acc = 0
		bw.n = 0
	}
}

func (bw *LSBWriter) drain() {
	if len(bw.buf) == 0 || bw.err != nil {
		return
	}
	if _, err := bw.w.Write(bw.buf); err != nil {
		bw.err = err
	}
	bw.buf = bw.buf[:0]
}

// Flush aligns to a byte boundary, drains buffered bytes and reports the
// first error encountered.
func (bw *LSBWriter) Flush() error {
	bw.Align()
	bw.drain()
	return bw.err
}

// Err reports the sticky error, if any.
func (bw *LSBWriter) Err() error { return bw.err }

// LSBReader unpacks bits least-significant-bit first. Besides the
// consuming ReadBits API it offers a buffered PeekBits/Consume fast path:
// decode hot loops peek a fixed window (a Huffman table index), consume
// only the bits a symbol used, and never touch the underlying io.Reader
// per symbol — the accumulator is topped up with bulk 8-byte loads.
type LSBReader struct {
	r   io.Reader
	acc uint64
	n   uint
	buf []byte
	pos int
	// err is the surfaced sticky error: an I/O failure, or a read/consume
	// that went past the end of the stream.
	err error
	// srcErr records that the underlying reader is exhausted (io.EOF) or
	// failed; it is surfaced as err only when a caller actually over-reads,
	// so peeking beyond the last symbol stays harmless.
	srcErr error
}

// NewLSBReader returns an LSBReader consuming from r.
func NewLSBReader(r io.Reader) *LSBReader {
	return &LSBReader{r: r, buf: make([]byte, 0, 4096)}
}

// fillBuf pulls the next chunk from the underlying reader.
func (br *LSBReader) fillBuf() {
	b := br.buf[:cap(br.buf)]
	n, err := br.r.Read(b)
	br.buf = b[:n]
	br.pos = 0
	if err != nil {
		br.srcErr = err
	} else if n == 0 {
		br.srcErr = io.ErrUnexpectedEOF
	}
}

// refill tops up the accumulator to at least need bits (need <= 57) when
// the source still has them, loading 8 bytes at a time away from the
// buffer's tail. Source exhaustion is recorded in srcErr, not surfaced.
func (br *LSBReader) refill(need uint) {
	for br.n < need {
		if br.pos+8 <= len(br.buf) && br.n <= 48 {
			br.acc |= binary.LittleEndian.Uint64(br.buf[br.pos:]) << br.n
			adv := (63 - br.n) >> 3 // whole bytes that fit below bit 64
			br.pos += int(adv)
			br.n += 8 * adv
			br.acc &= 1<<br.n - 1 // drop the partially-loaded high byte
			continue
		}
		if br.pos < len(br.buf) {
			br.acc |= uint64(br.buf[br.pos]) << br.n
			br.pos++
			br.n += 8
			continue
		}
		if br.srcErr != nil {
			return
		}
		br.fillBuf()
		if br.pos >= len(br.buf) {
			return
		}
	}
}

// endErr is the error an over-read surfaces: the source's failure, with
// bare EOF mapped to ErrUnexpectedEOF (the stream ended mid-value).
func (br *LSBReader) endErr() error {
	if br.srcErr == nil || br.srcErr == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return br.srcErr
}

// ReadBits reads n bits, LSB first. On error it returns 0 and records the
// error, observable via Err.
func (br *LSBReader) ReadBits(n uint) uint64 {
	if n > maxBitsPerCall {
		if br.err == nil {
			br.err = ErrBitOverflow
		}
		return 0
	}
	if br.n < n {
		br.refill(n)
		if br.n < n {
			if br.err == nil {
				br.err = br.endErr()
			}
			return 0
		}
	}
	v := br.acc & (1<<n - 1)
	br.acc >>= n
	br.n -= n
	return v
}

// ReadBit reads a single bit.
func (br *LSBReader) ReadBit() uint64 { return br.ReadBits(1) }

// PeekBits returns the next n bits (LSB first) without consuming them,
// zero-padded when the stream ends within the window. n must be <= 57.
// Peeking past the end is not an error; only Consume detects over-reads.
func (br *LSBReader) PeekBits(n uint) uint64 {
	if br.n < n {
		br.refill(n)
	}
	return br.acc & (1<<n - 1)
}

// Consume discards n previously peeked bits. Consuming more bits than the
// stream actually held sets the sticky error.
func (br *LSBReader) Consume(n uint) {
	if n > br.n {
		if br.err == nil {
			br.err = br.endErr()
		}
		br.acc, br.n = 0, 0
		return
	}
	br.acc >>= n
	br.n -= n
}

// Align discards bits up to the next byte boundary.
func (br *LSBReader) Align() {
	drop := br.n % 8
	br.acc >>= drop
	br.n -= drop
}

// ReadBytes reads exactly len(p) whole bytes. The reader must be aligned.
func (br *LSBReader) ReadBytes(p []byte) error {
	if br.n%8 != 0 {
		return errors.New("bitio: ReadBytes on unaligned reader")
	}
	i := 0
	for i < len(p) && br.n >= 8 {
		p[i] = byte(br.acc)
		br.acc >>= 8
		br.n -= 8
		i++
	}
	for i < len(p) {
		if br.pos < len(br.buf) {
			c := copy(p[i:], br.buf[br.pos:])
			br.pos += c
			i += c
			continue
		}
		if br.srcErr != nil {
			if br.err == nil {
				br.err = br.endErr()
			}
			return br.err
		}
		br.fillBuf()
		if br.pos >= len(br.buf) {
			if br.err == nil {
				br.err = br.endErr()
			}
			return br.err
		}
	}
	return nil
}

// Err reports the sticky error, if any. io.EOF is reported once input is
// exhausted and a read went past the end.
func (br *LSBReader) Err() error {
	if br.err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return br.err
}

// AtEOF reports whether all buffered bits are consumed and the source
// returned EOF.
func (br *LSBReader) AtEOF() bool {
	if br.n > 0 || br.pos < len(br.buf) {
		return false
	}
	if br.err != nil || br.srcErr != nil {
		return true
	}
	// Peek one byte ahead.
	br.refill(8)
	return br.n == 0
}

// MSBWriter packs bits most-significant-bit first, the order used by bzip2.
type MSBWriter struct {
	w   io.Writer
	acc uint64
	n   uint
	buf []byte
	err error
}

// NewMSBWriter returns an MSBWriter emitting to w.
func NewMSBWriter(w io.Writer) *MSBWriter {
	return &MSBWriter{w: w, buf: make([]byte, 0, 4096)}
}

// WriteBits writes the low n bits of v with the most significant of those
// bits first. n must be <= 57.
func (bw *MSBWriter) WriteBits(v uint64, n uint) {
	if bw.err != nil {
		return
	}
	if n > maxBitsPerCall {
		bw.err = ErrBitOverflow
		return
	}
	bw.acc = (bw.acc << n) | (v & ((1 << n) - 1))
	bw.n += n
	for bw.n >= 8 {
		bw.buf = append(bw.buf, byte(bw.acc>>(bw.n-8)))
		bw.n -= 8
		if len(bw.buf) >= 4096 {
			bw.drain()
		}
	}
	bw.acc &= (1 << bw.n) - 1
}

func (bw *MSBWriter) drain() {
	if len(bw.buf) == 0 || bw.err != nil {
		return
	}
	if _, err := bw.w.Write(bw.buf); err != nil {
		bw.err = err
	}
	bw.buf = bw.buf[:0]
}

// Flush pads with zero bits to a byte boundary, drains and reports the first
// error.
func (bw *MSBWriter) Flush() error {
	if bw.n > 0 {
		bw.buf = append(bw.buf, byte(bw.acc<<(8-bw.n)))
		bw.acc = 0
		bw.n = 0
	}
	bw.drain()
	return bw.err
}

// Err reports the sticky error, if any.
func (bw *MSBWriter) Err() error { return bw.err }

// MSBReader unpacks bits most-significant-bit first. Like LSBReader it
// offers PeekBits/Consume with bulk refills for table-driven decode loops.
type MSBReader struct {
	r      io.Reader
	acc    uint64
	n      uint
	buf    []byte
	pos    int
	err    error
	srcErr error
}

// NewMSBReader returns an MSBReader consuming from r.
func NewMSBReader(r io.Reader) *MSBReader {
	return &MSBReader{r: r, buf: make([]byte, 0, 4096)}
}

func (br *MSBReader) fillBuf() {
	b := br.buf[:cap(br.buf)]
	n, err := br.r.Read(b)
	br.buf = b[:n]
	br.pos = 0
	if err != nil {
		br.srcErr = err
	} else if n == 0 {
		br.srcErr = io.ErrUnexpectedEOF
	}
}

// refill tops up the accumulator to at least need bits (need <= 57),
// loading 8 bytes per step away from the buffer's tail.
func (br *MSBReader) refill(need uint) {
	for br.n < need {
		if br.pos+8 <= len(br.buf) && br.n <= 48 {
			x := binary.BigEndian.Uint64(br.buf[br.pos:])
			adv := (63 - br.n) >> 3
			br.acc = br.acc<<(8*adv) | x>>(64-8*adv)
			br.pos += int(adv)
			br.n += 8 * adv
			continue
		}
		if br.pos < len(br.buf) {
			br.acc = (br.acc << 8) | uint64(br.buf[br.pos])
			br.pos++
			br.n += 8
			continue
		}
		if br.srcErr != nil {
			return
		}
		br.fillBuf()
		if br.pos >= len(br.buf) {
			return
		}
	}
}

func (br *MSBReader) endErr() error {
	if br.srcErr == nil || br.srcErr == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return br.srcErr
}

// ReadBits reads n bits MSB first.
func (br *MSBReader) ReadBits(n uint) uint64 {
	if n > maxBitsPerCall {
		if br.err == nil {
			br.err = ErrBitOverflow
		}
		return 0
	}
	if n == 0 {
		return 0
	}
	if br.n < n {
		br.refill(n)
		if br.n < n {
			if br.err == nil {
				br.err = br.endErr()
			}
			return 0
		}
	}
	v := (br.acc >> (br.n - n)) & (1<<n - 1)
	br.n -= n
	br.acc &= 1<<br.n - 1
	return v
}

// ReadBit reads a single bit.
func (br *MSBReader) ReadBit() uint64 { return br.ReadBits(1) }

// PeekBits returns the next n bits (MSB first) without consuming them. If
// the stream ends inside the window the missing low bits read as zero.
func (br *MSBReader) PeekBits(n uint) uint64 {
	if br.n < n {
		br.refill(n)
		if br.n < n {
			// Left-align what is left: missing future bits read as zero.
			return (br.acc << (n - br.n)) & (1<<n - 1)
		}
	}
	return (br.acc >> (br.n - n)) & (1<<n - 1)
}

// Consume discards n previously peeked bits; over-consuming past the end
// of the stream sets the sticky error.
func (br *MSBReader) Consume(n uint) {
	if n > br.n {
		if br.err == nil {
			br.err = br.endErr()
		}
		br.acc, br.n = 0, 0
		return
	}
	br.n -= n
	br.acc &= 1<<br.n - 1
}

// Err reports the sticky error, if any.
func (br *MSBReader) Err() error {
	if br.err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return br.err
}
