package harness

import (
	"bytes"
	"testing"

	"repro/internal/energy"
	"repro/internal/obs/export"
)

// TestEventStreamDeterministic is the telemetry half of the soak replay
// guarantee: the same seed must produce byte-identical canonical JSONL,
// including under fault injection and retries. This is the property the
// CI event-determinism gate (scripts/ci.sh) enforces end to end through
// the energysim binary.
func TestEventStreamDeterministic(t *testing.T) {
	run := func() []byte {
		sc := Default(7)
		sc.Clients = 3
		sc.FetchesPerClient = 5
		sc.FaultRate = 0.05
		r, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := export.WriteJSONL(&buf, r.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("same seed produced different event streams:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

// TestEventsShape: one event per record, canonical order, no wall-clock
// residue, and per-class joules that re-derive from the event's own byte
// counts via the paper's Eq. 1 / Eq. 3 — the property the calibrator
// depends on.
func TestEventsShape(t *testing.T) {
	sc := Default(3)
	sc.Clients = 2
	sc.FetchesPerClient = 6
	sc.FaultRate = 0
	sc.Churn = 0
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	if len(evs) != len(r.Records) {
		t.Fatalf("%d events for %d records", len(evs), len(r.Records))
	}
	p := energy.Params11Mbps()
	for i, e := range evs {
		if e.Time != "" {
			t.Errorf("event %d kept wall time %q", i, e.Time)
		}
		if i > 0 && e.VNS < evs[i-1].VNS {
			t.Errorf("event %d out of order: v_ns %d after %d", i, e.VNS, evs[i-1].VNS)
		}
		if e.Span != "fetch" || e.ReqID == "" || e.Device != export.DeviceIPAQ11 {
			t.Errorf("event %d identity wrong: %+v", i, e)
		}
		if e.Outcome != "ok" {
			t.Errorf("fault-free event %d outcome = %q", i, e.Outcome)
			continue
		}
		s := float64(e.RawBytes) / 1e6
		scMB := float64(e.WireBytes) / 1e6
		want := p.DownloadBreakdown(s)
		if e.BlocksCompressed > 0 {
			want = p.InterleavedBreakdown(s, scMB)
		}
		if e.RadioJ != want.RadioJ || e.CPUJ != want.CPUJ || e.IdleJ != want.IdleJ {
			t.Errorf("event %d joules %g/%g/%g, model says %g/%g/%g",
				i, e.RadioJ, e.CPUJ, e.IdleJ, want.RadioJ, want.CPUJ, want.IdleJ)
		}
	}
}
