package harness

import (
	"strings"
	"testing"
	"time"
)

// clusterShape is the scaling experiment's fixed workload: fault-free and
// churn-free so the strict at-most-one-compression-per-key oracle is
// armed, with enough fetches that line contention, not ramp-up, dominates.
func clusterShape(seed int64, nodes int) Scenario {
	return Scenario{
		Name: "cluster", Seed: seed, Clients: 9, FetchesPerClient: 12,
		Nodes: nodes, Replicas: 1, HotK: 8,
	}
}

// aggregateWireBytes is the run's total client-received wire volume — the
// numerator of aggregate serve throughput.
func aggregateWireBytes(r *Report) int64 {
	var total int64
	for _, rec := range r.Records {
		total += int64(rec.Stats.WireBytes)
	}
	return total
}

// TestClusterThroughputScales is the tentpole acceptance gate: on the same
// seeded workload, a 3-node ring must deliver at least twice the aggregate
// serve throughput of a single node (both shaped by per-node transmit
// lines), while spending within 10% of the single node's compression work
// — peer fetches replace recompression, so adding nodes buys bandwidth,
// not redundant CPU.
func TestClusterThroughputScales(t *testing.T) {
	one, err := Run(clusterShape(21, 1))
	if err != nil {
		t.Fatal(err)
	}
	three, err := Run(clusterShape(21, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range append(one.Violations, three.Violations...) {
		t.Errorf("oracle violation: %s", v)
	}
	for _, r := range []*Report{one, three} {
		for _, rec := range r.Records {
			if rec.Err != "" {
				t.Fatalf("fetch failed on %d-node run: c%02d f%03d %s: %s",
					r.Scenario.Nodes, rec.Client, rec.Index, rec.Name, rec.Err)
			}
		}
	}

	bytes1, bytes3 := aggregateWireBytes(one), aggregateWireBytes(three)
	if bytes1 != bytes3 {
		t.Fatalf("wire volume differs between runs: %d vs %d bytes (schedules should be identical)", bytes1, bytes3)
	}
	tput1 := float64(bytes1) / one.ClientMakespan().Seconds()
	tput3 := float64(bytes3) / three.ClientMakespan().Seconds()
	if tput3 < 2*tput1 {
		t.Errorf("3-node throughput %.0f B/s < 2x single-node %.0f B/s (makespan %v vs %v)",
			tput3, tput1, three.ClientMakespan(), one.ClientMakespan())
	}

	c1, c3 := one.Stats.Compressions, three.Stats.Compressions
	if float64(c3) > 1.1*float64(c1) {
		t.Errorf("3-node run compressed %d artifacts, single node %d — more than 10%% extra CPU", c3, c1)
	}
	if three.Stats.PeerFetches == 0 {
		t.Error("3-node run never peer-fetched; the ring is not routing misses")
	}
	if three.Stats.PeerFetchErrors != 0 {
		t.Errorf("3-node run had %d peer fetch errors on a healthy ring", three.Stats.PeerFetchErrors)
	}
	t.Logf("throughput: 1 node %.0f B/s, 3 nodes %.0f B/s (%.2fx); compressions %d vs %d; peer fetches %d",
		tput1, tput3, tput3/tput1, c1, c3, three.Stats.PeerFetches)
}

// TestClusterDeterministicTrace: a cluster run replays byte-identically
// from its seed, its header carries the cluster shape, and a different
// node count produces a different header (goldens cannot be confused).
func TestClusterDeterministicTrace(t *testing.T) {
	sc := clusterShape(31, 3)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace() != b.Trace() {
		la, lb := strings.Split(a.Trace(), "\n"), strings.Split(b.Trace(), "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				t.Fatalf("cluster trace diverged at line %d:\n  run1: %s\n  run2: %s", i, la[i], lb[i])
			}
		}
		t.Fatal("cluster trace diverged in length")
	}
	head := strings.SplitN(a.Trace(), "\n", 2)[0]
	if !strings.Contains(head, "nodes=3 replicas=1 hotk=8") {
		t.Fatalf("cluster header missing ring shape: %q", head)
	}
	if len(a.PerNode) != 3 {
		t.Fatalf("PerNode has %d entries, want 3", len(a.PerNode))
	}
	var conns int64
	for _, st := range a.PerNode {
		if st.ConnsTotal == 0 {
			t.Error("a node served no client connections; pinning is broken")
		}
		conns += st.ConnsTotal
	}
	if conns != a.Stats.ConnsTotal {
		t.Fatalf("PerNode conns sum %d != aggregate %d", conns, a.Stats.ConnsTotal)
	}
}

// TestClusterChurnAndFaults: the hostile shape — churn broadcasting
// ring-wide invalidations while client fault plans fire — must keep every
// oracle green (the per-key bound relaxes to one per node under churn) and
// still deliver byte-exact payloads on every successful fetch.
func TestClusterChurnAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full cluster soak")
	}
	sc := clusterShape(41, 3)
	sc.Churn = 20
	sc.FaultRate = 0.01
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	okCnt := 0
	for _, rec := range r.Records {
		if rec.Err == "" {
			okCnt++
		}
	}
	if okCnt < len(r.Records)*9/10 {
		t.Errorf("only %d/%d fetches succeeded", okCnt, len(r.Records))
	}
	if r.Elapsed <= 0 || r.Elapsed > time.Hour {
		t.Errorf("implausible virtual elapsed %v", r.Elapsed)
	}
}
