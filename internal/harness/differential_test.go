package harness

import (
	"strings"
	"testing"

	"repro/internal/simnet"
	"repro/internal/workload"
)

// diffScenario is the differential soak shape: a modest fleet on the
// paper's 2 Mb/s operating point, where the dynamic decider's live
// threshold (factor ≈1.03, size ≈1 kB) visibly departs from Eq. 6's
// static one (1.13, 3900 B) — so the dominance check cannot pass
// vacuously — with all four fault modes live.
func diffScenario(seed int64) Scenario {
	return Scenario{
		Seed:             seed,
		Clients:          4,
		FetchesPerClient: 10,
		FaultRate:        0.01,
		Churn:            5,
		Link:             simnet.Link{BytesPerSec: 180_000, Latency: 2_000_000, JitterFrac: 0.10},
		DeadlineClass:    2, // standard
		BudgetJ:          50,
		// The corpus straddles the policies' disagreement band: sub-3900
		// compressible files (raw under Eq. 6's file floor, compressed
		// under the live ~1 kB threshold at 2 Mb/s), marginal text the
		// static factor gate refuses, incompressible noise both refuse,
		// and a multi-block archive.
		Corpus: []CorpusEntry{
			{Name: "memo.xml", Class: workload.ClassXML, Size: 3_000},
			{Name: "note.txt", Class: workload.ClassMail, Size: 2_000},
			{Name: "body.txt", Class: workload.ClassMail, Size: 20_000},
			{Name: "noise.dat", Class: workload.ClassRandom, Size: 30_000},
			{Name: "site.tar", Class: workload.ClassTarHTML, Size: 200_000},
		},
	}
}

// TestDifferentialSoak is the CI differential gate in-process: paired
// static-vs-dynamic runs at the two pinned seeds must pass every
// per-run oracle, deliver byte-exact payloads, and show modeled-energy
// dominance — strictly, at this link rate — for the dynamic policy.
func TestDifferentialSoak(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		d, err := RunPaired(diffScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range d.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
		if !(d.DynamicJ < d.StaticJ) {
			t.Errorf("seed %d: dynamic %.6g J not strictly below static %.6g J at 2 Mb/s — dominance is passing vacuously",
				seed, d.DynamicJ, d.StaticJ)
		}
		t.Logf("seed %d: corpus model energy static %.4g J, dynamic %.4g J (%.2f%% saved)",
			seed, d.StaticJ, d.DynamicJ, 100*(1-d.DynamicJ/d.StaticJ))
	}
}

// TestDynamicDeciderTraceDeterministic: the replay guarantee must
// survive the dynamic decider — same seed, byte-identical trace, and the
// header carries the decider fields so a dynamic golden can never be
// confused with a static one.
func TestDynamicDeciderTraceDeterministic(t *testing.T) {
	sc := Scenario{Seed: 9, Clients: 3, FetchesPerClient: 6, Decider: "dynamic", DeadlineClass: 1, BudgetJ: 10}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace() != b.Trace() {
		t.Fatal("dynamic-decider trace not deterministic")
	}
	head := strings.SplitN(a.Trace(), "\n", 2)[0]
	if !strings.Contains(head, "decider=dynamic class=1 budget=10") {
		t.Fatalf("trace header missing decider fields: %s", head)
	}
	for _, v := range a.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	// The static header must stay untouched when nothing is declared.
	sc.Decider, sc.DeadlineClass, sc.BudgetJ = "", 0, 0
	c, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if head := strings.SplitN(c.Trace(), "\n", 2)[0]; strings.Contains(head, "decider=") {
		t.Fatalf("undeclared scenario grew a decider header field: %s", head)
	}
}
