package harness

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/proxy/faultconn"
	"repro/internal/simnet"
)

// flightPollInterval is how often a singleflight follower re-checks its
// leader's done channel in virtual time on a cluster run. The follower
// cannot block on the channel directly there: it would hold a clock
// ledger token while the leader parks in virtual time on peer-fetch I/O,
// freezing the clock under it.
const flightPollInterval = 250 * time.Microsecond

// nodeName is node ordinal k's ring ID; nodeAddr / peerAddr are its
// client-facing and PXY-P simnet listener names.
func nodeName(k int) string     { return fmt.Sprintf("n%d", k) }
func nodeAddr(k int) string     { return fmt.Sprintf("proxy%d", k) }
func peerAddr(id string) string { return "peer:" + id }

// runCluster executes a Nodes>0 scenario: N proxy servers behind one
// virtual network, each with a shared transmit line at the client link
// rate (a node's NIC serializes its responses, so aggregate serve
// throughput honestly scales with node count), joined into a
// consistent-hash ring by internal/cluster. Clients pin to node
// (client mod Nodes) with exactly the same per-client seed derivations as
// the single-server path; the churn actor registers through a node so
// generation bumps exercise the ring-wide invalidation broadcast.
func runCluster(s Scenario) (*Report, error) {
	goroutinesBefore := runtime.NumGoroutine()

	corpus := buildCorpus(s)
	clock := simnet.NewClock()
	nw := simnet.NewNetwork(clock, s.Link)
	if len(s.Schedule) > 0 {
		if err := nw.SetSchedule(s.Schedule); err != nil {
			return nil, err
		}
	}

	ids := make([]string, s.Nodes)
	for k := range ids {
		ids[k] = nodeName(k)
	}
	// compLog is the cluster-wide compression ledger the per-key oracle
	// reads: every compression on any node records (key, node).
	var compMu sync.Mutex
	compLog := make(map[string][]string)

	peerLink := s.PeerLink
	// One fixed seed for every peer dial: DialLink seeds each endpoint's
	// jitter rng from the link seed alone, so every peer connection
	// replays the same draw sequence no matter how dials interleave.
	peerLink.Seed = mix(s.Seed, 5000)
	dial := func(peer string) (net.Conn, error) {
		return nw.DialLink(peerAddr(peer), peerLink)
	}

	servers := make([]*proxy.Server, s.Nodes)
	nodes := make([]*cluster.Node, s.Nodes)
	for k := 0; k < s.Nodes; k++ {
		id := ids[k]
		srv := proxy.NewServerWith(nil, proxy.Config{
			Clock: clock,
			// Each node gets its own decider instance so per-node metric
			// registries never share counters.
			Decider:  buildDecider(s),
			MaxConns: s.Clients + 2,
			FlightWait: func(done <-chan struct{}) {
				for {
					select {
					case <-done:
						return
					default:
					}
					clock.Sleep(flightPollInterval)
				}
			},
		})
		for _, f := range corpus {
			srv.Register(f.name, f.content)
		}
		n, err := cluster.NewNode(cluster.Config{
			Self:     id,
			Nodes:    ids,
			Replicas: s.Replicas,
			HotK:     s.HotK,
			Dial:     dial,
			Server:   srv,
			Clock:    clock,
			Timeout:  s.Timeout,
			OnCompress: func(key proxy.ArtifactKey) {
				compMu.Lock()
				compLog[cluster.KeyString(key)] = append(compLog[cluster.KeyString(key)], id)
				compMu.Unlock()
			},
		})
		if err != nil {
			return nil, err
		}
		pln, err := nw.Listen(peerAddr(id))
		if err != nil {
			return nil, err
		}
		n.Serve(pln)

		ln, err := nw.Listen(nodeAddr(k))
		if err != nil {
			return nil, err
		}
		// The node's transmitter: all of this node's responses share one
		// line at the client link rate, so a single node cannot serve N
		// clients at N times its radio's capacity.
		if err := nw.SetLine(nodeAddr(k), s.Link); err != nil {
			return nil, err
		}
		srv.Serve(ln)
		servers[k], nodes[k] = srv, n
	}

	records := make([][]FetchRecord, s.Clients)
	tracers := make([]*obs.Tracer, s.Clients)
	done := make(chan int, s.Clients+1)
	running := 0

	for i := 0; i < s.Clients; i++ {
		i := i
		tracer := obs.NewTracer(s.FetchesPerClient + 1)
		tracers[i] = tracer
		records[i] = make([]FetchRecord, 0, s.FetchesPerClient)
		running++
		clock.Go(func() {
			defer func() { done <- i }()
			// Seed derivations are identical to the single-server path, so
			// a cluster run and a 1-node run of the same seed draw the same
			// schedules, fault plans and jitter streams per client.
			sched := rand.New(rand.NewSource(mix(s.Seed, int64(1000+i))))
			plan := faultconn.Plan{
				Seed:         mix(s.Seed, int64(3000+i)),
				FragmentProb: s.FaultRate,
				ResetProb:    s.FaultRate,
				TruncateProb: s.FaultRate,
				BitFlipProb:  s.FaultRate,
			}
			addr := nodeAddr(i % s.Nodes)
			var dials int64
			cli := proxy.NewClient(addr)
			cli.Clock = clock
			cli.Timeout = s.Timeout
			cli.MaxRetries = s.MaxRetries
			cli.RetryBaseDelay = 10 * time.Millisecond
			cli.RetryMaxDelay = 200 * time.Millisecond
			cli.Rand = rand.New(rand.NewSource(mix(s.Seed, int64(2000+i))))
			cli.Tracer = tracer
			cli.DeadlineClass = s.DeadlineClass
			cli.EnergyBudgetJ = s.BudgetJ
			cli.Dial = func() (net.Conn, error) {
				dials++
				link := s.Link
				link.Seed = mix(s.Seed, int64(i)*1_000_000+dials)
				conn, err := nw.DialLink(addr, link)
				if err != nil {
					return nil, err
				}
				return plan.Wrap(conn, dials), nil
			}

			clock.Sleep(time.Duration(i) * time.Millisecond)
			for j := 0; j < s.FetchesPerClient; j++ {
				f := corpus[sched.Intn(len(corpus))]
				scheme := schemes[sched.Intn(len(schemes))]
				mode := modes[sched.Intn(len(modes))]
				fetchStart := clock.Elapsed()
				got, stats, err := cli.Fetch(f.name, scheme, mode)
				rec := FetchRecord{Client: i, Index: j, Name: f.name,
					Scheme: scheme, Mode: mode, Err: errClass(err), Stats: stats,
					Virtual: clock.Elapsed() - fetchStart, VStart: fetchStart}
				if err == nil {
					rec.Raw = len(got)
					rec.CRC = crc32.ChecksumIEEE(got)
				}
				records[i] = append(records[i], rec)
				clock.Sleep(time.Duration(sched.Intn(20)) * time.Millisecond)
			}
		})
	}

	if s.Churn > 0 {
		running++
		clock.Go(func() {
			defer func() { done <- -1 }()
			rng := rand.New(rand.NewSource(mix(s.Seed, 4000)))
			for k := 0; k < s.Churn; k++ {
				clock.Sleep(time.Duration(20+rng.Intn(20)) * time.Millisecond)
				f := corpus[rng.Intn(len(corpus))]
				// Register through a node, not a server: the bump must
				// broadcast ring-wide invalidations, the thing churn is
				// here to stress.
				nodes[rng.Intn(len(nodes))].Register(f.name, f.content)
			}
		})
	}

	for running > 0 {
		<-done
		running--
	}
	elapsed := clock.Elapsed()
	// Nodes first (their peer handlers use the servers), then the servers.
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			return nil, err
		}
	}
	for _, srv := range servers {
		if err := srv.Close(); err != nil {
			return nil, err
		}
	}

	r := &Report{Scenario: s, Elapsed: elapsed}
	for _, srv := range servers {
		st := srv.Stats()
		r.PerNode = append(r.PerNode, st)
		r.Stats = sumStats(r.Stats, st)
	}
	for i := 0; i < s.Clients; i++ {
		r.Records = append(r.Records, records[i]...)
		r.Spans = append(r.Spans, tracers[i].Snapshot())
	}
	r.runOracles(corpus, goroutinesBefore)
	r.checkClusterCompressions(compLog)
	return r, nil
}

// checkClusterCompressions is the tentpole oracle: cluster-wide, an
// artifact key is compressed at most once — the ring owner builds it,
// everyone else peer-fetches or coalesces. Churn relaxes the bound to one
// per node: a requester racing a generation bump can find the owner
// already ahead (ErrStaleGeneration) and degrade to compressing its stale
// generation locally, and in the worst case every node does so once.
func (r *Report) checkClusterCompressions(compLog map[string][]string) {
	limit := 1
	if r.Scenario.Churn > 0 {
		limit = r.Scenario.Nodes
	}
	var total int64
	keys := make([]string, 0, len(compLog))
	for k := range compLog {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		nodes := compLog[k]
		total += int64(len(nodes))
		if len(nodes) > limit {
			r.violate("cluster: key %q compressed %d times (on %v), limit %d",
				k, len(nodes), nodes, limit)
		}
	}
	if total != r.Stats.Compressions {
		r.violate("cluster: compression ledger saw %d compressions, counters say %d",
			total, r.Stats.Compressions)
	}
}

// sumStats adds b's counters into a field-by-field; gauges and the
// latency histogram sum too (bucket bounds are identical across nodes).
func sumStats(a, b proxy.Stats) proxy.Stats {
	a.Requests += b.Requests
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.Coalesced += b.Coalesced
	a.Compressions += b.Compressions
	a.Evictions += b.Evictions
	a.CacheRejects += b.CacheRejects
	a.CacheEntries += b.CacheEntries
	a.CacheBytes += b.CacheBytes
	a.BytesServedRaw += b.BytesServedRaw
	a.BytesServedCompressed += b.BytesServedCompressed
	a.PeerFetches += b.PeerFetches
	a.PeerFetchErrors += b.PeerFetchErrors
	a.RingOwnerHits += b.RingOwnerHits
	a.RingRemoteHits += b.RingRemoteHits
	a.ConnsTotal += b.ConnsTotal
	a.ConnsActive += b.ConnsActive
	a.ConnsRejected += b.ConnsRejected
	a.Errors += b.Errors
	if a.Latency == nil {
		a.Latency = append([]proxy.LatencyBucket(nil), b.Latency...)
	} else {
		for i := range a.Latency {
			if i < len(b.Latency) {
				a.Latency[i].Count += b.Latency[i].Count
			}
		}
	}
	if a.CompressInputBytes == nil {
		a.CompressInputBytes = make(map[string]int64, len(b.CompressInputBytes))
	}
	for k, v := range b.CompressInputBytes {
		a.CompressInputBytes[k] += v
	}
	return a
}
