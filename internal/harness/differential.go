package harness

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/decider"
	"repro/internal/selective"
)

// This file is the differential soak oracle: one scenario, two policies.
// RunPaired executes the same seeded scenario twice — once with the
// static Eq. 6 decider, once with the dynamic queue-aware decider — and
// checks that swapping the policy changed only what a decision policy is
// allowed to change:
//
//   - payloads stay byte-exact: every fetch that succeeded in both runs
//     delivered identical raw bytes (same length, same CRC);
//   - modeled energy dominates: over every (corpus file, scheme)
//     artifact, scored block-by-block with the same live model, the
//     dynamic stream's total joules never exceed the static stream's;
//   - deadlines carry over: on any block where the static stream's
//     choice met the scenario's deadline class, the dynamic choice
//     meets it too.
//
// The re-encode scoring runs the real selective encoder with each policy
// (the exact code path the server's artifact builds use), so the oracle
// exercises the decider where it lives rather than a reimplementation.

// DiffReport is the outcome of one paired static-vs-dynamic run.
type DiffReport struct {
	Static  *Report
	Dynamic *Report
	// StaticJ / DynamicJ are the modeled whole-corpus energies (joules):
	// every corpus file re-encoded under each policy at every soak
	// scheme, scored with the dynamic decider's live model.
	StaticJ  float64
	DynamicJ float64
	// Violations folds both runs' own oracle failures (prefixed with the
	// run they came from) with the differential checks above.
	Violations []string
}

// OK reports whether both runs and every differential check passed.
func (d *DiffReport) OK() bool { return len(d.Violations) == 0 }

// RunPaired runs scenario s under both deciders at the same seed and
// applies the differential checks. The scenario's own Decider field is
// overridden; everything else (seed, fleet shape, faults, schedule) is
// shared, so the two runs draw identical per-client schedules and fault
// plans.
func RunPaired(s Scenario) (*DiffReport, error) {
	st, dy := s, s
	st.Decider = "static"
	dy.Decider = "dynamic"
	repS, err := Run(st)
	if err != nil {
		return nil, fmt.Errorf("static run: %w", err)
	}
	repD, err := Run(dy)
	if err != nil {
		return nil, fmt.Errorf("dynamic run: %w", err)
	}
	d := &DiffReport{Static: repS, Dynamic: repD}
	for _, v := range repS.Violations {
		d.Violations = append(d.Violations, "static run: "+v)
	}
	for _, v := range repD.Violations {
		d.Violations = append(d.Violations, "dynamic run: "+v)
	}
	d.checkPayloads()
	if err := d.checkEnergyDominance(s); err != nil {
		return nil, err
	}
	return d, nil
}

// checkPayloads aligns the two runs' records by (client, index) — the
// seeded schedule derivation is policy-independent, so name, scheme and
// mode must agree — and requires byte-exact payloads wherever both runs
// succeeded. Attempt counts and error outcomes may legitimately differ:
// changing which blocks compress changes wire timing, and with it which
// fault draws land mid-transfer.
func (d *DiffReport) checkPayloads() {
	if len(d.Static.Records) != len(d.Dynamic.Records) {
		d.Violations = append(d.Violations, fmt.Sprintf(
			"differential: %d static records vs %d dynamic", len(d.Static.Records), len(d.Dynamic.Records)))
		return
	}
	for k := range d.Static.Records {
		a, b := d.Static.Records[k], d.Dynamic.Records[k]
		if a.Client != b.Client || a.Index != b.Index || a.Name != b.Name ||
			a.Scheme != b.Scheme || a.Mode != b.Mode {
			d.Violations = append(d.Violations, fmt.Sprintf(
				"differential: schedule diverged at record %d: static c%02d f%03d %s %s %s, dynamic c%02d f%03d %s %s %s",
				k, a.Client, a.Index, a.Name, a.Scheme, a.Mode,
				b.Client, b.Index, b.Name, b.Scheme, b.Mode))
			return
		}
		if a.Err == "" && b.Err == "" && (a.Raw != b.Raw || a.CRC != b.CRC) {
			d.Violations = append(d.Violations, fmt.Sprintf(
				"differential: payload diverged on c%02d f%03d %s: static raw=%d crc=%08x, dynamic raw=%d crc=%08x",
				a.Client, a.Index, a.Name, a.Raw, a.CRC, b.Raw, b.CRC))
		}
	}
}

// checkEnergyDominance re-encodes the scenario corpus under both
// policies at every soak scheme and scores the streams block-by-block
// with the dynamic decider's live model. Dominance must hold per stream
// and in total; the deadline implication must hold per block.
func (d *DiffReport) checkEnergyDominance(s Scenario) error {
	s = s.withDefaults()
	corpus := buildCorpus(s)
	dyn := decider.New(decider.Config{
		Link:  func() (float64, bool) { return s.Link.BytesPerSec / 1e6, false },
		Queue: func() int { return 0 },
		Class: decider.ClassFromByte(s.DeadlineClass),
	})
	rate := s.Link.BytesPerSec / 1e6
	static := selective.PaperDecider{}
	for _, f := range corpus {
		for _, scheme := range schemes {
			c, err := codec.New(scheme, 0)
			if err != nil {
				return err
			}
			encS, err := selective.Encode(f.content, c, static)
			if err != nil {
				return err
			}
			encD, err := selective.Encode(f.content, c, dyn)
			if err != nil {
				return err
			}
			if len(encS.Blocks) != len(encD.Blocks) {
				d.Violations = append(d.Violations, fmt.Sprintf(
					"differential: %s/%s: %d static blocks vs %d dynamic (chunking must be policy-independent)",
					f.name, scheme, len(encS.Blocks), len(encD.Blocks)))
				continue
			}
			var statJ, dynJ float64
			for bi := range encS.Blocks {
				bs, bd := encS.Blocks[bi], encD.Blocks[bi]
				if bs.RawLen != bd.RawLen {
					d.Violations = append(d.Violations, fmt.Sprintf(
						"differential: %s/%s block %d: raw length %d vs %d", f.name, scheme, bi, bs.RawLen, bd.RawLen))
					break
				}
				sJ, sT := scoreBlock(dyn, rate, bs)
				dJ, dT := scoreBlock(dyn, rate, bd)
				statJ += sJ
				dynJ += dJ
				// The deadline implication, blockwise: a deadline the
				// static choice met, the dynamic choice meets too.
				dec := dyn.Decide(decider.BlockContext{
					RawLen: bd.RawLen, CompLen: len(bd.Payload), RateMBps: rate,
					Class: decider.ClassFromByte(s.DeadlineClass),
				})
				if sT <= dec.DeadlineS && dT > dec.DeadlineS*(1+1e-9) {
					d.Violations = append(d.Violations, fmt.Sprintf(
						"differential: %s/%s block %d: dynamic latency %.9gs busts deadline %.9gs the static choice met (%.9gs)",
						f.name, scheme, bi, dT, dec.DeadlineS, sT))
				}
			}
			if dynJ > statJ*(1+1e-9) {
				d.Violations = append(d.Violations, fmt.Sprintf(
					"differential: %s/%s: dynamic stream %.9g J > static %.9g J", f.name, scheme, dynJ, statJ))
			}
			d.StaticJ += statJ
			d.DynamicJ += dynJ
		}
	}
	if d.DynamicJ > d.StaticJ*(1+1e-9) {
		d.Violations = append(d.Violations, fmt.Sprintf(
			"differential: corpus total: dynamic %.9g J > static %.9g J", d.DynamicJ, d.StaticJ))
	}
	return nil
}

// scoreBlock prices one encoded block's chosen option under the live
// model: the compressed branch when the encoder compressed it, the raw
// branch otherwise.
func scoreBlock(dyn *decider.DynamicDecider, rate float64, b selective.Block) (joules, seconds float64) {
	ctx := decider.BlockContext{RawLen: b.RawLen, CompLen: len(b.Payload), RateMBps: rate}
	rawJ, compJ, rawT, compT := dyn.Evaluate(ctx)
	if b.Compressed {
		return compJ, compT
	}
	return rawJ, rawT
}
