package harness

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/energy"
	"repro/internal/proxy"
)

// energyTolerance is the relative error allowed between a fetch span's
// accounted joules and the analytic model recomputed from its transfer
// stats. The span charger distributes the exact Breakdown components, so
// only float summation order separates the two.
const energyTolerance = 1e-9

// runOracles checks every invariant over the finished run and appends
// violations to r.Violations.
func (r *Report) runOracles(corpus []corpusFile, goroutinesBefore int) {
	byName := make(map[string]corpusFile, len(corpus))
	for _, f := range corpus {
		byName[f.name] = f
	}
	r.checkPayloads(byName)
	r.checkEnergyConservation()
	r.checkResumeMonotone()
	r.checkCounters()
	r.checkGoroutines(goroutinesBefore)
}

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// checkPayloads: every successful fetch must have returned the exact
// registered bytes — same length and same content CRC as the corpus file,
// whatever faults, retries and resumes the transfer went through.
func (r *Report) checkPayloads(byName map[string]corpusFile) {
	for _, rec := range r.Records {
		if rec.Err != "" {
			continue
		}
		f, ok := byName[rec.Name]
		if !ok {
			r.violate("payload: c%02d f%03d fetched unknown file %q", rec.Client, rec.Index, rec.Name)
			continue
		}
		if rec.Raw != len(f.content) || rec.CRC != f.crc {
			r.violate("payload: c%02d f%03d %s: got %d bytes crc %08x, corpus %d bytes crc %08x",
				rec.Client, rec.Index, rec.Name, rec.Raw, rec.CRC, len(f.content), f.crc)
		}
		if rec.Stats.RawBytes != len(f.content) {
			r.violate("payload: c%02d f%03d %s: stats.RawBytes %d != %d",
				rec.Client, rec.Index, rec.Name, rec.Stats.RawBytes, len(f.content))
		}
	}
}

// checkEnergyConservation: a successful fetch's span must carry exactly
// the joules the paper's model assigns to its transfer — Eq. 3
// (interleaved) when compressed blocks crossed the wire, Eq. 1 (plain
// download) otherwise — split into the same radio/CPU/idle components.
func (r *Report) checkEnergyConservation() {
	p := energy.Params11Mbps()
	for ci, spans := range r.Spans {
		recs := r.clientRecords(ci)
		if len(spans) != len(recs) {
			r.violate("energy: client %d has %d spans for %d fetches", ci, len(spans), len(recs))
			continue
		}
		for k, sd := range spans {
			rec := recs[k]
			if rec.Err != "" {
				if sd.Err == "" {
					r.violate("energy: c%02d f%03d failed (%s) but span %d carries no error", ci, k, rec.Err, sd.ID)
				}
				continue
			}
			s := float64(rec.Stats.RawBytes) / 1e6
			sc := float64(rec.Stats.WireBytes) / 1e6
			var bd energy.Breakdown
			if rec.Stats.BlocksCompressed > 0 {
				bd = p.InterleavedBreakdown(s, sc)
			} else {
				bd = p.DownloadBreakdown(s)
			}
			got := sd.TotalJoules()
			if !closeRel(got, bd.Total()) {
				r.violate("energy: c%02d f%03d %s: span %.12f J, model %.12f J",
					ci, k, rec.Name, got, bd.Total())
				continue
			}
			byClass := sd.JoulesByClass()
			for _, cmp := range []struct {
				class string
				want  float64
			}{{"radio", bd.RadioJ}, {"cpu", bd.CPUJ}, {"idle", bd.IdleJ}} {
				if !closeRel(byClass[cmp.class], cmp.want) {
					r.violate("energy: c%02d f%03d %s: class %s %.12f J, model %.12f J",
						ci, k, rec.Name, cmp.class, byClass[cmp.class], cmp.want)
				}
			}
		}
	}
}

// checkResumeMonotone: within one fetch the server-granted resume offsets
// (the "resume" phases' byte counts, in attempt order) must never go
// backwards — the verified prefix only grows — and their sum must equal
// the fetch's ResumedBytes counter.
func (r *Report) checkResumeMonotone() {
	for ci, spans := range r.Spans {
		recs := r.clientRecords(ci)
		for k, sd := range spans {
			if k >= len(recs) {
				break
			}
			var last, sum int64
			ok := true
			for _, ph := range sd.Phases {
				if ph.Name != "resume" {
					continue
				}
				if ph.Bytes < last {
					ok = false
				}
				last = ph.Bytes
				sum += ph.Bytes
			}
			if !ok {
				r.violate("resume: c%02d f%03d %s: offsets regressed (last %d)", ci, k, recs[k].Name, last)
			}
			if sum != int64(recs[k].Stats.ResumedBytes) {
				r.violate("resume: c%02d f%03d %s: phase sum %d != stats.ResumedBytes %d",
					ci, k, recs[k].Name, sum, recs[k].Stats.ResumedBytes)
			}
		}
	}
}

// checkCounters reconciles the server's counter snapshot against the
// client-side ledger. With client-side fault injection every dial is
// still accepted and counted, so ConnsTotal == Σ attempts holds exactly
// even on a lossy run; the singleflight identity Compressions + Coalesced
// == CacheMisses holds always. Fault-free runs additionally reconcile
// exactly: one parsed request per connection, zero server errors, and
// payload bytes served == payload bytes received.
func (r *Report) checkCounters() {
	st := r.Stats
	var attempts, cacheable int64
	var clientPayload int64
	anyErr := false
	for _, rec := range r.Records {
		attempts += int64(rec.Stats.Attempts)
		if rec.Err != "" {
			anyErr = true
			continue
		}
		if rec.Mode != proxy.ModeRaw {
			cacheable += int64(rec.Stats.Attempts)
		}
		// Frame overhead actually read: one GET header per attempt, one
		// block header per block, one end frame per completed attempt.
		// Fault-free (attempts == 1) this recovers the exact payload bytes.
		if r.Scenario.FaultRate == 0 {
			overhead := rec.Stats.Attempts*proxy.GetHeaderLen + (rec.Stats.BlocksTotal+rec.Stats.Attempts)*proxy.BlockHeaderLen
			clientPayload += int64(rec.Stats.WireBytes - overhead)
		}
	}
	if st.ConnsRejected != 0 {
		r.violate("counters: %d connections shed (MaxConns too low for the scenario)", st.ConnsRejected)
	}
	if st.ConnsTotal != attempts {
		r.violate("counters: server ConnsTotal %d != client attempts %d", st.ConnsTotal, attempts)
	}
	// The singleflight identity, extended by the cluster term: a miss
	// flight's leader either compresses or peer-fetches, and every
	// follower coalesces. Single-server runs have PeerFetches == 0, so
	// this is the original identity there.
	if st.Compressions+st.Coalesced+st.PeerFetches != st.CacheMisses {
		r.violate("counters: Compressions %d + Coalesced %d + PeerFetches %d != CacheMisses %d",
			st.Compressions, st.Coalesced, st.PeerFetches, st.CacheMisses)
	}
	if st.Requests > st.ConnsTotal {
		r.violate("counters: Requests %d > ConnsTotal %d", st.Requests, st.ConnsTotal)
	}
	if r.Scenario.FaultRate == 0 && !anyErr {
		if st.Requests != st.ConnsTotal {
			r.violate("counters: fault-free but Requests %d != ConnsTotal %d", st.Requests, st.ConnsTotal)
		}
		if st.Errors != 0 {
			r.violate("counters: fault-free but server recorded %d errors", st.Errors)
		}
		if r.Scenario.Nodes > 0 {
			// An owner's Artifact path counts a hit or miss for each peer
			// fetch it serves on top of its own client traffic, so the
			// cluster sum only bounds the client-side count from above.
			if st.CacheHits+st.CacheMisses < cacheable {
				r.violate("counters: CacheHits %d + CacheMisses %d < cacheable attempts %d",
					st.CacheHits, st.CacheMisses, cacheable)
			}
		} else if st.CacheHits+st.CacheMisses != cacheable {
			r.violate("counters: CacheHits %d + CacheMisses %d != cacheable attempts %d",
				st.CacheHits, st.CacheMisses, cacheable)
		}
		if served := st.BytesServedRaw + st.BytesServedCompressed; served != clientPayload {
			r.violate("counters: server served %d payload bytes, clients received %d", served, clientPayload)
		}
	}
}

// checkGoroutines: after the server has drained and every client is done,
// the process must be back to its pre-run goroutine count (the runtime
// gets a short real-time grace period to retire exiting goroutines).
func (r *Report) checkGoroutines(before int) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			r.violate("goroutines: %d before run, %d after", before, runtime.NumGoroutine())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// clientRecords returns client ci's records (they are contiguous and in
// fetch order within the client-major Records slice).
func (r *Report) clientRecords(ci int) []FetchRecord {
	out := make([]FetchRecord, 0, r.Scenario.FetchesPerClient)
	for _, rec := range r.Records {
		if rec.Client == ci {
			out = append(out, rec)
		}
	}
	return out
}

// closeRel reports a ≈ b within energyTolerance (relative, with an
// absolute floor for near-zero values).
func closeRel(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff <= energyTolerance {
		return true
	}
	return diff <= energyTolerance*math.Max(math.Abs(a), math.Abs(b))
}
