package harness

import (
	"fmt"
	"time"
)

// Bounds are the expected-outcome oracles a declarative scenario spec
// pins alongside the structural invariants runOracles always checks: how
// well the run must have gone, not just that the ledgers reconcile. The
// zero value of every field disables that check.
type Bounds struct {
	// MinOKFrac is the minimum fraction of fetches that must succeed.
	MinOKFrac float64
	// MaxVirtual caps the run's virtual elapsed time — the spec's budget
	// for the whole schedule on its scripted link.
	MaxVirtual time.Duration
	// MaxAttempts caps any single fetch's connection attempts.
	MaxAttempts int
	// MaxJoulesPerMB caps the fleet's modeled energy per raw megabyte
	// delivered, summed over every successful fetch's span.
	MaxJoulesPerMB float64
}

// zero reports whether no bound is set.
func (b Bounds) zero() bool {
	return b == Bounds{}
}

// CheckBounds evaluates b against the finished run and returns one
// violation string per breached bound, in the same "oracle: detail"
// shape runOracles uses. It does not mutate the report; callers append
// the result to Violations when bounds are part of the scenario's gate.
func (r *Report) CheckBounds(b Bounds) []string {
	var out []string
	if b.zero() {
		return out
	}
	ok := 0
	worstAttempts, worstClient, worstIndex := 0, 0, 0
	for _, rec := range r.Records {
		if rec.Err == "" {
			ok++
		}
		if rec.Stats.Attempts > worstAttempts {
			worstAttempts, worstClient, worstIndex = rec.Stats.Attempts, rec.Client, rec.Index
		}
	}
	if b.MinOKFrac > 0 && len(r.Records) > 0 {
		frac := float64(ok) / float64(len(r.Records))
		if frac < b.MinOKFrac {
			out = append(out, fmt.Sprintf("bounds: %d/%d fetches ok (%.4f), spec requires >= %.4f",
				ok, len(r.Records), frac, b.MinOKFrac))
		}
	}
	if b.MaxVirtual > 0 && r.Elapsed > b.MaxVirtual {
		out = append(out, fmt.Sprintf("bounds: run took %s virtual, spec allows %s", r.Elapsed, b.MaxVirtual))
	}
	if b.MaxAttempts > 0 && worstAttempts > b.MaxAttempts {
		out = append(out, fmt.Sprintf("bounds: c%02d f%03d used %d attempts, spec allows %d",
			worstClient, worstIndex, worstAttempts, b.MaxAttempts))
	}
	if b.MaxJoulesPerMB > 0 {
		joules, mb := r.EnergyDelivered()
		if mb > 0 {
			if jpm := joules / mb; jpm > b.MaxJoulesPerMB {
				out = append(out, fmt.Sprintf("bounds: %.3f J/MB delivered, spec allows %.3f", jpm, b.MaxJoulesPerMB))
			}
		}
	}
	return out
}

// EnergyDelivered sums the fleet's modeled joules over every finished
// fetch span and the raw megabytes successfully delivered — the two
// numbers behind the joules-per-MB figure the paper optimizes and the
// load generator reports.
func (r *Report) EnergyDelivered() (joules, rawMB float64) {
	for _, spans := range r.Spans {
		for _, sd := range spans {
			joules += sd.TotalJoules()
		}
	}
	for _, rec := range r.Records {
		if rec.Err == "" {
			rawMB += float64(rec.Raw) / 1e6
		}
	}
	return joules, rawMB
}

// EnergyByClass splits the fleet's modeled joules into the paper's
// radio/cpu/idle components, summed over every span.
func (r *Report) EnergyByClass() map[string]float64 {
	out := map[string]float64{}
	for _, spans := range r.Spans {
		for _, sd := range spans {
			for class, j := range sd.JoulesByClass() {
				out[class] += j
			}
		}
	}
	return out
}
