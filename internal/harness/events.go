package harness

import (
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/obs/export"
)

// Events synthesizes the canonical wide-event stream of a finished run:
// one fetch event per record, ordered by (virtual start, request ID),
// with wall-clock and other host-measured fields stripped
// (export.Canonicalize). Everything left is pinned by the scenario seed
// — virtual timestamps, wire bytes, attempts, modeled joules — so the
// same seed always yields byte-identical JSONL, which is what the CI
// event-determinism gate diffs and what the calibrator consumes.
//
// Per-class joules are recomputed from each record's byte counts with
// the same Eq. 1 / Eq. 3 rule the client charges spans with: exact
// model arithmetic rather than re-summed span floats, so the stream
// never wobbles by a ULP across runs. Phase timelines (dial, header,
// recv, backoff, resume — the virtual-time phases) come from the
// clients' span rings.
func (r *Report) Events() []export.Event {
	// The soak fleet models the paper's primary configuration; the
	// energy-conservation oracle charges with the same parameter set.
	p := energy.Params11Mbps()
	evs := make([]export.Event, 0, len(r.Records))
	for _, rec := range r.Records {
		var span obs.SpanData
		if rec.Client < len(r.Spans) && rec.Index < len(r.Spans[rec.Client]) {
			span = r.Spans[rec.Client][rec.Index]
		}
		e := export.Event{
			VNS:              rec.VStart.Nanoseconds(),
			Span:             "fetch",
			ReqID:            span.Attrs["req_id"],
			Name:             rec.Name,
			Scheme:           rec.Scheme.String(),
			Mode:             rec.Mode.String(),
			Device:           export.DeviceIPAQ11,
			LinkBps:          r.Scenario.Link.BytesPerSec,
			Outcome:          "ok",
			RawBytes:         int64(rec.Raw),
			WireBytes:        int64(rec.Stats.WireBytes),
			Blocks:           rec.Stats.BlocksTotal,
			BlocksCompressed: rec.Stats.BlocksCompressed,
			Attempts:         rec.Stats.Attempts,
			ResumedBytes:     int64(rec.Stats.ResumedBytes),
			DurNS:            rec.Virtual.Nanoseconds(),
			Phases:           export.FoldPhases(span.Phases),
		}
		if rec.Err != "" {
			e.Outcome = rec.Err
		} else {
			s := float64(rec.Raw) / 1e6
			sc := float64(rec.Stats.WireBytes) / 1e6
			var bd energy.Breakdown
			if rec.Stats.BlocksCompressed > 0 {
				bd = p.InterleavedBreakdown(s, sc)
			} else {
				bd = p.DownloadBreakdown(s)
			}
			e.RadioJ, e.CPUJ, e.IdleJ = bd.RadioJ, bd.CPUJ, bd.IdleJ
		}
		evs = append(evs, e)
	}
	return export.Canonicalize(evs)
}
