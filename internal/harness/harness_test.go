package harness

import (
	"repro/internal/simnet"
	"repro/internal/workload"

	"strings"
	"testing"
	"time"
)

// TestSoakDeterministicTrace: the same seed must produce a byte-identical
// canonical trace twice in a row — the replay guarantee `energysim soak
// -seed N` and the CI gate rest on. A different seed must diverge (if it
// did not, the trace would not actually capture the schedule).
func TestSoakDeterministicTrace(t *testing.T) {
	sc := Scenario{Seed: 7, Clients: 4, FetchesPerClient: 8, FaultRate: 0.01, Churn: 10}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Trace(), b.Trace()
	if ta != tb {
		la, lb := strings.Split(ta, "\n"), strings.Split(tb, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				t.Fatalf("trace diverged at line %d:\n  run1: %s\n  run2: %s", i, la[i], lb[i])
			}
		}
		t.Fatalf("trace diverged in length: %d vs %d lines", len(la), len(lb))
	}
	sc.Seed = 8
	c, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace() == ta {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSoakDefaultScenario is the full CI soak in-process: ≥500 fetches
// across 10 clients with all four fault modes live and cache churn, every
// oracle green, finishing in bounded wall time because all link and
// backoff waiting happens in virtual time.
func TestSoakDefaultScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full soak")
	}
	sc := Default(11)
	wallStart := time.Now()
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(wallStart)
	for _, v := range r.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if got := len(r.Records); got < 500 {
		t.Fatalf("soak ran %d fetches, want >= 500", got)
	}
	if modes := sc.FaultModes(); modes < 4 {
		t.Fatalf("soak injected %d fault modes, want >= 4", modes)
	}
	okCnt, retried := 0, 0
	for _, rec := range r.Records {
		if rec.Err == "" {
			okCnt++
		}
		if rec.Stats.Attempts > 1 {
			retried++
		}
	}
	if okCnt < len(r.Records)*9/10 {
		t.Errorf("only %d/%d fetches succeeded", okCnt, len(r.Records))
	}
	if retried == 0 {
		t.Error("fault plan never fired; the soak is not exercising retries")
	}
	if r.Elapsed <= 0 {
		t.Error("virtual clock did not advance")
	}
	t.Logf("soak: %d fetches (%d ok, %d retried) in %v virtual, %v wall; %s",
		len(r.Records), okCnt, retried, r.Elapsed, wall, strings.TrimSpace(strings.SplitN(r.Trace(), "\n", 2)[0]))
	if wall > 30*time.Second {
		t.Errorf("soak took %v of wall time, budget 30s", wall)
	}
}

// TestSoakFaultFreeExactReconciliation: with no faults every fetch takes
// exactly one attempt and the counter oracle tightens to equalities
// (Requests == ConnsTotal == fetches, zero errors, payload bytes served
// == payload bytes received). Any slack here means the ledger lies.
func TestSoakFaultFreeExactReconciliation(t *testing.T) {
	sc := Scenario{Seed: 3, Clients: 5, FetchesPerClient: 10, Churn: 5}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	for _, rec := range r.Records {
		if rec.Err != "" {
			t.Errorf("fault-free fetch failed: c%02d f%03d %s: %s", rec.Client, rec.Index, rec.Name, rec.Err)
		}
		if rec.Stats.Attempts != 1 {
			t.Errorf("fault-free fetch used %d attempts: c%02d f%03d", rec.Stats.Attempts, rec.Client, rec.Index)
		}
		if rec.Stats.ResumedBytes != 0 {
			t.Errorf("fault-free fetch resumed %d bytes: c%02d f%03d", rec.Stats.ResumedBytes, rec.Client, rec.Index)
		}
	}
	if r.Stats.ConnsTotal != int64(len(r.Records)) {
		t.Errorf("ConnsTotal %d != %d fetches", r.Stats.ConnsTotal, len(r.Records))
	}
}

// TestSoakChurnForcesRecompression: generation bumps must drop cached
// artifacts — a churned run performs more compressions than a quiet one
// with the same schedule — without breaking a single payload.
func TestSoakChurnForcesRecompression(t *testing.T) {
	quiet := Scenario{Seed: 5, Clients: 4, FetchesPerClient: 10}
	churned := quiet
	churned.Churn = 40
	rq, err := Run(quiet)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(churned)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range append(rq.Violations, rc.Violations...) {
		t.Errorf("oracle violation: %s", v)
	}
	if rc.Stats.Compressions <= rq.Stats.Compressions {
		t.Errorf("churned run compressed %d artifacts, quiet run %d — churn is not dropping the cache",
			rc.Stats.Compressions, rq.Stats.Compressions)
	}
}

// TestSoakCustomCorpusAndSchedule: a scenario with a spec-style corpus
// (one class file, one ratio-knob file) on a scripted link (rate cliff +
// power-save window) must pass every oracle, deliver byte-exact payloads,
// and keep the replay guarantee.
func TestSoakCustomCorpusAndSchedule(t *testing.T) {
	sc := Scenario{
		Name: "custom", Seed: 9, Clients: 3, FetchesPerClient: 6,
		Corpus: []CorpusEntry{
			{Name: "notes.txt", Class: workload.ClassMail, Size: 5_000},
			{Name: "blob.bin", Ratio: 1.6, Size: 30_000},
		},
		Schedule: []simnet.Phase{
			{Start: 100 * time.Millisecond, Rate: 0.18e6},
			{Start: 300 * time.Millisecond, Rate: 0},
			{Start: 400 * time.Millisecond, Rate: 0.6e6},
		},
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	for _, rec := range a.Records {
		if rec.Err != "" {
			t.Errorf("fetch failed: c%02d f%03d %s: %s", rec.Client, rec.Index, rec.Name, rec.Err)
		}
		if rec.Virtual <= 0 {
			t.Errorf("c%02d f%03d: non-positive virtual latency %v", rec.Client, rec.Index, rec.Virtual)
		}
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace() != b.Trace() {
		t.Fatal("custom-corpus scenario is not replayable")
	}
	if !strings.Contains(a.Trace(), "name=custom") || !strings.Contains(a.Trace(), "sched=3") {
		t.Fatalf("trace header missing scenario identity: %q", strings.SplitN(a.Trace(), "\n", 2)[0])
	}
}

// TestCheckBounds: each bound trips on a report that breaches it and
// stays quiet on one that honors it, without mutating Violations.
func TestCheckBounds(t *testing.T) {
	r, err := Run(Scenario{Seed: 13, Clients: 2, FetchesPerClient: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("clean run reported violations: %v", r.Violations)
	}
	if got := r.CheckBounds(Bounds{}); len(got) != 0 {
		t.Errorf("zero bounds produced violations: %v", got)
	}
	ok := Bounds{MinOKFrac: 1.0, MaxVirtual: time.Hour, MaxAttempts: 1, MaxJoulesPerMB: 1e6}
	if got := r.CheckBounds(ok); len(got) != 0 {
		t.Errorf("satisfied bounds produced violations: %v", got)
	}
	joules, mb := r.EnergyDelivered()
	if joules <= 0 || mb <= 0 {
		t.Fatalf("EnergyDelivered = %v J, %v MB", joules, mb)
	}
	tight := Bounds{MaxVirtual: time.Nanosecond, MaxAttempts: 0, MinOKFrac: 0, MaxJoulesPerMB: joules / mb / 2}
	got := r.CheckBounds(tight)
	if len(got) != 2 {
		t.Fatalf("tight bounds produced %d violations, want 2: %v", len(got), got)
	}
	if len(r.Violations) != 0 {
		t.Error("CheckBounds mutated Report.Violations")
	}
}
