// Package harness is the deterministic soak testbed: it runs the
// unmodified proxy server and N concurrent retrying clients over the
// virtual 802.11b network (internal/simnet), entirely in virtual time,
// from a single seed. One Run executes a seeded scenario schedule —
// clients × fetches across schemes and modes, client-side fault plans
// (internal/proxy/faultconn), cache churn — and then checks a set of
// invariant oracles over everything that happened: byte-exact payloads,
// server/client counter reconciliation, energy-accounting conservation
// against the paper's Eq. 1/Eq. 3 model, monotone resume offsets, and
// zero leaked goroutines.
//
// The same seed produces a byte-identical canonical trace (Report.Trace),
// which is what the CI soak gate diffs and what `energysim soak -seed N`
// replays. The trace deliberately excludes wall/virtual timestamps and
// scheduling-dependent counters (cache hits, coalesced flights): those
// vary with goroutine interleaving even though every client's wire
// behavior — attempt counts, fault draws, resume offsets, byte counts —
// is fully determined by the seed.
package harness

import (
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/decider"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/proxy/faultconn"
	"repro/internal/selective"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// Scenario is one seeded soak configuration. The zero value of any field
// selects the default noted on it; Default() is the CI soak shape.
// Scenarios are built two ways: literally in Go (the tests below) or
// compiled from an on-disk declarative spec by internal/scenario.
type Scenario struct {
	// Name labels the scenario in the canonical trace header; empty reads
	// as "default". Spec-driven scenarios carry their spec name so golden
	// traces from different specs can never be confused.
	Name string
	// Seed determines everything: corpus content, per-client schedules,
	// fault plans, link jitter, backoff jitter and request IDs.
	Seed int64
	// Clients is the number of concurrent handheld clients (default 10).
	Clients int
	// FetchesPerClient is each client's schedule length (default 50).
	FetchesPerClient int
	// FaultRate is the per-I/O-call probability of each of the four
	// client-side fault modes (fragment, reset, truncate, bit-flip).
	// Zero injects no faults.
	FaultRate float64
	// Link models the shared 802.11b medium; the zero value selects the
	// paper's 11 Mb/s WaveLAN effective rate with 2 ms hop latency and
	// 10% transmit jitter. Each dial derives its own jitter seed.
	Link simnet.Link
	// Churn is how many times the churn actor re-registers a (randomly
	// chosen) corpus file mid-run, bumping its generation and dropping
	// its cached artifacts without changing its bytes (default 0).
	Churn int
	// MaxRetries is each client's retry budget per fetch (default 30).
	MaxRetries int
	// Timeout is the per-attempt connection deadline in virtual time
	// (default 2 minutes — far beyond any healthy transfer).
	Timeout time.Duration
	// Decider selects the server's selective-mode decision policy: "" or
	// "static" keeps the paper's Equation 6; "dynamic" installs
	// internal/decider's queue-aware policy with its link state pinned to
	// the scenario's base rate and its queue depth pinned to zero — live
	// hooks would couple block decisions to goroutine interleaving and
	// break the canonical-trace replay guarantee.
	Decider string
	// DeadlineClass and BudgetJ are the request attributes every client
	// declares (decider.ClassFromByte vocabulary; joules). Zero values
	// keep clients on the plain GET op, byte-identical to older traces.
	DeadlineClass uint8
	BudgetJ       float64
	// Corpus, when non-empty, replaces the built-in nine-file corpus:
	// each entry is generated from the scenario seed by content class or,
	// when Ratio is set, by the compressibility knob. Entries must have
	// unique names.
	Corpus []CorpusEntry
	// Schedule, when non-empty, scripts the shared medium over virtual
	// time — rate cliffs and power-save pauses — via simnet.SetSchedule.
	// It reshapes timing only: wire behavior (and so the canonical trace)
	// stays pinned by the seed.
	Schedule []simnet.Phase
	// Nodes, when positive, runs the scenario against an N-node
	// consistent-hash proxy cluster instead of the single server: each
	// node fronts its own proxy with a shared transmit line at the client
	// link rate, clients pin to node (client mod Nodes), and cache misses
	// for keys owned elsewhere fetch the finished artifact from the owner
	// over PXY-P instead of recompressing. Zero keeps the original
	// single-server testbed (and its golden traces) untouched.
	Nodes int
	// Replicas is how many ring successors each hot key's artifact is
	// pushed to (cluster runs only; default 0 = no replication).
	Replicas int
	// HotK sizes each node's top-K hot-key admission sketch (cluster runs
	// only; default 0 = no admission or replication).
	HotK int
	// PeerLink models the inter-node backhaul (cluster runs only); the
	// zero value selects a 100 Mb/s wired link with 200 µs latency and no
	// jitter — fast enough that peer fetches beat recompression, slow
	// enough that they are not free.
	PeerLink simnet.Link
}

// CorpusEntry is one generated workload file of a custom scenario corpus.
// Exactly one of Class / Ratio describes its content: a Table 3 content
// class, or a target gzip compression factor for the synthetic knob
// (workload.GenerateRatio).
type CorpusEntry struct {
	Name  string
	Class workload.Class
	Ratio float64
	Size  int
}

// Default is the CI soak shape: 10 clients × 50 fetches (500 total), all
// four fault modes at 1%, cache churn on.
func Default(seed int64) Scenario {
	return Scenario{Seed: seed, FaultRate: 0.01, Churn: 100}
}

func (s Scenario) withDefaults() Scenario {
	if s.Clients <= 0 {
		s.Clients = 10
	}
	if s.FetchesPerClient <= 0 {
		s.FetchesPerClient = 50
	}
	if s.Link == (simnet.Link{}) {
		s.Link = simnet.WaveLAN11()
		s.Link.JitterFrac = 0.10
	}
	if s.MaxRetries <= 0 {
		s.MaxRetries = 30
	}
	if s.Timeout <= 0 {
		s.Timeout = 2 * time.Minute
	}
	if s.Nodes > 0 && s.PeerLink == (simnet.Link{}) {
		s.PeerLink = simnet.Link{BytesPerSec: 12_500_000, Latency: 200 * time.Microsecond}
	}
	return s
}

// FaultModes reports how many distinct fault modes the scenario injects.
func (s Scenario) FaultModes() int {
	if s.FaultRate > 0 {
		return 4 // fragment, reset, truncate, bit-flip
	}
	return 0
}

// corpusFile is one generated workload file served by the scenario.
type corpusFile struct {
	name    string
	class   workload.Class
	size    int
	content []byte
	crc     uint32
}

// defaultCorpus pins the built-in corpus shape: a sub-threshold file
// (< 3900 B, which selective mode must send raw), text/markup/source/
// binary/random classes spanning Table 2's compressibility bands, and a
// multi-block file (> 128 kB, so resume offsets land on interior block
// boundaries).
var defaultCorpus = []CorpusEntry{
	{Name: "tiny.txt", Class: workload.ClassMail, Size: 2_000},
	{Name: "small.xml", Class: workload.ClassXML, Size: 6_000},
	{Name: "mail.txt", Class: workload.ClassMail, Size: 20_000},
	{Name: "page.html", Class: workload.ClassHTML, Size: 40_000},
	{Name: "noise.dat", Class: workload.ClassRandom, Size: 50_000},
	{Name: "src.c", Class: workload.ClassSource, Size: 64_000},
	{Name: "app.bin", Class: workload.ClassBinary, Size: 72_000},
	{Name: "access.log", Class: workload.ClassWebLog, Size: 96_000},
	{Name: "site.tar", Class: workload.ClassTarHTML, Size: 200_000},
}

// buildCorpus generates the scenario's file set from its seed: the custom
// entries when the scenario carries any, the built-in set otherwise.
func buildCorpus(s Scenario) []corpusFile {
	entries := s.Corpus
	if len(entries) == 0 {
		entries = defaultCorpus
	}
	// The knob calibrates against the dataplane's own gzip (level 6),
	// which is deterministic across Go versions — stdlib gzip is not, and
	// a calibration shift would silently move every golden trace.
	gz := codec.MustNew(codec.Gzip, 6)
	measure := func(data []byte) float64 {
		comp, err := gz.Compress(data)
		if err != nil {
			return 1.0 // cannot happen on generated input; read as incompressible
		}
		return codec.Factor(len(data), len(comp))
	}
	out := make([]corpusFile, len(entries))
	for i, sp := range entries {
		gseed := uint64(mix(s.Seed, int64(100+i)))
		var content []byte
		if sp.Ratio > 0 {
			content = workload.GenerateRatio(sp.Size, sp.Ratio, gseed, measure)
		} else {
			content = workload.Generate(sp.Class, sp.Size, gseed)
		}
		out[i] = corpusFile{name: sp.Name, class: sp.Class, size: sp.Size,
			content: content, crc: crc32.ChecksumIEEE(content)}
	}
	return out
}

// corpusDigest folds the corpus shape into the trace header, so traces of
// scenarios that differ only in workload cannot be mistaken for each other.
func corpusDigest(entries []CorpusEntry) uint32 {
	if len(entries) == 0 {
		entries = defaultCorpus
	}
	h := fnv.New32a()
	for _, e := range entries {
		fmt.Fprintf(h, "%s/%d/%g/%d;", e.Name, e.Class, e.Ratio, e.Size)
	}
	return h.Sum32()
}

// FetchRecord is one fetch's deterministic outcome.
type FetchRecord struct {
	Client, Index int
	Name          string
	Scheme        codec.Scheme
	Mode          proxy.Mode
	// Err is "" on success, otherwise a stable error class
	// (busy/notfound/protocol/err) — never a raw error string, so the
	// trace stays byte-stable across Go versions.
	Err   string
	Raw   int
	CRC   uint32
	Stats proxy.FetchStats
	// Virtual is the fetch's duration on the virtual clock, backoff
	// included — the latency the load generator aggregates into fleet
	// percentiles. Like all timing it is excluded from the canonical
	// trace.
	Virtual time.Duration
	// VStart is the fetch's start offset on the virtual clock — the
	// ordering key of the canonical wide-event stream (Report.Events).
	// Virtual timestamps are seed-deterministic (CPU work costs the
	// ledger zero virtual time), unlike anything wall-clock.
	VStart time.Duration
}

// Report is everything one Run produced: the per-fetch records in
// client-major order, the server counter snapshot, each client's span
// ring, and any oracle violations.
type Report struct {
	Scenario Scenario
	Records  []FetchRecord
	// Stats is the server counter snapshot; on a cluster run it is the
	// per-field sum over PerNode, so every single-server identity that
	// distributes over addition keeps holding.
	Stats proxy.Stats
	// PerNode holds each cluster node's own counter snapshot, indexed by
	// node ordinal (nil on single-server runs).
	PerNode []proxy.Stats
	// Spans holds each client's fetch spans, oldest first; span k of
	// client i is fetch k (the tracer ring is sized to hold them all).
	Spans [][]obs.SpanData
	// Elapsed is the virtual time the client schedules took. It is
	// informational and excluded from the canonical trace.
	Elapsed    time.Duration
	Violations []string
}

// OK reports whether every oracle passed.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// ClientMakespan is the virtual time between the first fetch starting and
// the last fetch finishing — the denominator for aggregate-throughput
// comparisons. Unlike Elapsed it excludes the post-run tail where parked
// server read deadlines drain off the virtual clock.
func (r *Report) ClientMakespan() time.Duration {
	var lo, hi time.Duration
	lo = 1 << 62
	for _, rec := range r.Records {
		if rec.VStart < lo {
			lo = rec.VStart
		}
		if end := rec.VStart + rec.Virtual; end > hi {
			hi = end
		}
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Trace renders the canonical scenario trace: one header line, then one
// line per fetch in client-major order. Two runs of the same scenario
// must produce byte-identical traces; anything scheduling-dependent
// (timestamps, cache hit/miss split, joule floats) is deliberately absent.
func (r *Report) Trace() string {
	var b strings.Builder
	s := r.Scenario
	name := s.Name
	if name == "" {
		name = "default"
	}
	fmt.Fprintf(&b, "soak name=%s seed=%d clients=%d fetches=%d fault=%.4f link=%.0fBps lat=%s jitter=%.2f churn=%d corpus=%08x sched=%d",
		name, s.Seed, s.Clients, s.FetchesPerClient, s.FaultRate,
		s.Link.BytesPerSec, s.Link.Latency, s.Link.JitterFrac, s.Churn,
		corpusDigest(s.Corpus), len(s.Schedule))
	if s.Nodes > 0 {
		// The cluster suffix appears only on cluster traces, so every
		// pre-cluster golden stays byte-identical.
		fmt.Fprintf(&b, " nodes=%d replicas=%d hotk=%d peerlink=%.0fBps",
			s.Nodes, s.Replicas, s.HotK, s.PeerLink.BytesPerSec)
	}
	if s.Decider != "" || s.DeadlineClass != 0 || s.BudgetJ != 0 {
		// Same rule as the cluster suffix: the decider fields appear only
		// when a scenario sets them, so pre-decider goldens never shift.
		dec := s.Decider
		if dec == "" {
			dec = "static"
		}
		fmt.Fprintf(&b, " decider=%s class=%d budget=%g", dec, s.DeadlineClass, s.BudgetJ)
	}
	b.WriteByte('\n')
	for _, rec := range r.Records {
		status := rec.Err
		if status == "" {
			status = "ok"
		}
		fmt.Fprintf(&b, "c%02d f%03d %s %s %s %s raw=%d crc=%08x attempts=%d resumed=%d wire=%d blocks=%d/%d\n",
			rec.Client, rec.Index, rec.Name, rec.Scheme, rec.Mode, status,
			rec.Raw, rec.CRC, rec.Stats.Attempts, rec.Stats.ResumedBytes,
			rec.Stats.WireBytes, rec.Stats.BlocksCompressed, rec.Stats.BlocksTotal)
	}
	return b.String()
}

// errClass folds an error into a stable trace token — the same
// vocabulary the wide-event stream uses.
func errClass(err error) string {
	return proxy.ErrorClass(err)
}

// mix spreads (seed, salt) into an independent rng seed (SplitMix64-ish),
// so nearby salts give uncorrelated streams.
func mix(seed, salt int64) int64 {
	z := uint64(seed) ^ (uint64(salt)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

var schemes = []codec.Scheme{codec.Gzip, codec.Compress, codec.Bzip2}
var modes = []proxy.Mode{proxy.ModeRaw, proxy.ModePrecompressed, proxy.ModeOnDemand, proxy.ModeSelective}

// buildDecider constructs the scenario's selective-mode policy: nil for
// the static default (NewServerWith falls back to the paper's Eq. 6), or
// a dynamic decider with both live hooks pinned — the link to the
// scenario's base rate, the queue to zero — so every block decision is a
// pure function of block sizes and the trace replay guarantee holds.
func buildDecider(s Scenario) selective.Decider {
	if s.Decider != "dynamic" {
		return nil
	}
	return decider.New(decider.Config{
		Link:  func() (float64, bool) { return s.Link.BytesPerSec / 1e6, false },
		Queue: func() int { return 0 },
	})
}

// Run executes the scenario and checks every oracle. The returned error
// covers harness plumbing failures only; oracle violations land in
// Report.Violations so a caller can print them alongside the trace.
func Run(s Scenario) (*Report, error) {
	s = s.withDefaults()
	if s.Nodes > 0 {
		return runCluster(s)
	}
	goroutinesBefore := runtime.NumGoroutine()

	corpus := buildCorpus(s)
	clock := simnet.NewClock()
	nw := simnet.NewNetwork(clock, s.Link)
	if len(s.Schedule) > 0 {
		if err := nw.SetSchedule(s.Schedule); err != nil {
			return nil, err
		}
	}
	ln, err := nw.Listen("proxy")
	if err != nil {
		return nil, err
	}
	srv := proxy.NewServerWith(nil, proxy.Config{
		Clock:   clock,
		Decider: buildDecider(s),
		// Never shed: ConnsTotal == Σ attempts must hold exactly, and a
		// busy-shed path would couple one client's timeline to another's.
		MaxConns: s.Clients + 2,
	})
	for _, f := range corpus {
		srv.Register(f.name, f.content)
	}
	srv.Serve(ln)

	records := make([][]FetchRecord, s.Clients)
	tracers := make([]*obs.Tracer, s.Clients)
	done := make(chan int, s.Clients+1)
	running := 0

	for i := 0; i < s.Clients; i++ {
		i := i
		tracer := obs.NewTracer(s.FetchesPerClient + 1)
		tracers[i] = tracer
		records[i] = make([]FetchRecord, 0, s.FetchesPerClient)
		running++
		clock.Go(func() {
			defer func() { done <- i }()
			sched := rand.New(rand.NewSource(mix(s.Seed, int64(1000+i))))
			plan := faultconn.Plan{
				Seed:         mix(s.Seed, int64(3000+i)),
				FragmentProb: s.FaultRate,
				ResetProb:    s.FaultRate,
				TruncateProb: s.FaultRate,
				BitFlipProb:  s.FaultRate,
			}
			var dials int64
			cli := proxy.NewClient("proxy")
			cli.Clock = clock
			cli.Timeout = s.Timeout
			cli.MaxRetries = s.MaxRetries
			cli.RetryBaseDelay = 10 * time.Millisecond
			cli.RetryMaxDelay = 200 * time.Millisecond
			cli.Rand = rand.New(rand.NewSource(mix(s.Seed, int64(2000+i))))
			cli.Tracer = tracer
			cli.DeadlineClass = s.DeadlineClass
			cli.EnergyBudgetJ = s.BudgetJ
			// Each dial gets its own jitter seed (via DialLink) and its own
			// fault stream (via plan.Wrap's per-id rng), both derived from
			// (scenario seed, client, dial ordinal) — so a client's wire
			// behavior replays exactly regardless of how the other clients
			// interleave with it.
			cli.Dial = func() (net.Conn, error) {
				dials++
				link := s.Link
				link.Seed = mix(s.Seed, int64(i)*1_000_000+dials)
				conn, err := nw.DialLink("proxy", link)
				if err != nil {
					return nil, err
				}
				return plan.Wrap(conn, dials), nil
			}

			// Stagger starts so the schedule is not one synchronized burst.
			clock.Sleep(time.Duration(i) * time.Millisecond)
			for j := 0; j < s.FetchesPerClient; j++ {
				f := corpus[sched.Intn(len(corpus))]
				scheme := schemes[sched.Intn(len(schemes))]
				mode := modes[sched.Intn(len(modes))]
				fetchStart := clock.Elapsed()
				got, stats, err := cli.Fetch(f.name, scheme, mode)
				rec := FetchRecord{Client: i, Index: j, Name: f.name,
					Scheme: scheme, Mode: mode, Err: errClass(err), Stats: stats,
					Virtual: clock.Elapsed() - fetchStart, VStart: fetchStart}
				if err == nil {
					rec.Raw = len(got)
					rec.CRC = crc32.ChecksumIEEE(got)
				}
				records[i] = append(records[i], rec)
				clock.Sleep(time.Duration(sched.Intn(20)) * time.Millisecond)
			}
		})
	}

	if s.Churn > 0 {
		running++
		clock.Go(func() {
			defer func() { done <- -1 }()
			rng := rand.New(rand.NewSource(mix(s.Seed, 4000)))
			for k := 0; k < s.Churn; k++ {
				clock.Sleep(time.Duration(20+rng.Intn(20)) * time.Millisecond)
				f := corpus[rng.Intn(len(corpus))]
				// Same bytes, new generation: drops cached artifacts so the
				// dataplane re-compresses, without perturbing any payload
				// oracle or resume offset.
				srv.Register(f.name, f.content)
			}
		})
	}

	for running > 0 {
		<-done
		running--
	}
	elapsed := clock.Elapsed()
	if err := srv.Close(); err != nil {
		return nil, err
	}

	r := &Report{Scenario: s, Stats: srv.Stats(), Elapsed: elapsed}
	for i := 0; i < s.Clients; i++ {
		r.Records = append(r.Records, records[i]...)
		r.Spans = append(r.Spans, tracers[i].Snapshot())
	}
	r.runOracles(corpus, goroutinesBefore)
	return r, nil
}
