package cluster

import (
	"sort"
)

// Sketch dimensions: four independent rows keep the collision
// overestimate negligible at artifact-key cardinalities (dozens of
// distinct keys per node), and 512 counters per row cost 8 KiB total.
const (
	sketchDepth = 4
	sketchWidth = 512
)

// Sketch is a count-min frequency sketch with a top-K candidate table on
// top: Add counts an access, Hot answers "is this key currently among the
// K most-accessed keys seen more than once?" — the admission test for
// caching a peer-fetched artifact locally and the trigger for replicating
// an owned artifact to ring successors. Ties break by key string, so two
// runs observing the same access multiset agree on hotness. Not
// goroutine-safe; the Node serializes access.
type Sketch struct {
	rows [sketchDepth][sketchWidth]uint32
	// cand maps candidate keys to their current count-min estimate. It is
	// pruned to candLimit entries (dropping the smallest) so the sketch
	// stays O(K) even under an adversarial key flood.
	cand map[string]uint32
	k    int
}

// NewSketch returns a sketch admitting the top k keys. k <= 0 yields a
// sketch whose Hot is always false.
func NewSketch(k int) *Sketch {
	return &Sketch{cand: make(map[string]uint32), k: k}
}

func (s *Sketch) candLimit() int { return 4 * s.k }

// Add counts one access to key and returns its new estimate.
func (s *Sketch) Add(key string) uint32 {
	if s.k <= 0 {
		return 0
	}
	est := ^uint32(0)
	h1, h2 := sketchHash(key)
	for d := 0; d < sketchDepth; d++ {
		idx := (h1 + uint64(d)*h2) % sketchWidth
		s.rows[d][idx]++
		if c := s.rows[d][idx]; c < est {
			est = c
		}
	}
	s.cand[key] = est
	if len(s.cand) > s.candLimit() {
		s.prune()
	}
	return est
}

// Hot reports whether key ranks in the top K candidates with an estimate
// of at least 2 (a key seen once is never hot — admission and replication
// exist for repeated traffic).
func (s *Sketch) Hot(key string) bool {
	c, ok := s.cand[key]
	if !ok || c < 2 || s.k <= 0 {
		return false
	}
	rank := 0
	for k2, c2 := range s.cand {
		if c2 > c || (c2 == c && k2 < key) {
			rank++
			if rank >= s.k {
				return false
			}
		}
	}
	return true
}

// prune drops the lowest-count candidates down to candLimit, ties broken
// by key so pruning is deterministic.
func (s *Sketch) prune() {
	type kc struct {
		k string
		c uint32
	}
	all := make([]kc, 0, len(s.cand))
	for k, c := range s.cand {
		all = append(all, kc{k, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].k < all[j].k
	})
	for _, e := range all[s.candLimit():] {
		delete(s.cand, e.k)
	}
}

// sketchHash derives two independent 64-bit hashes for double hashing,
// reusing the ring's finalized hash (raw FNV's structured output causes
// heavy counter collisions on similar keys).
func sketchHash(key string) (uint64, uint64) {
	h1 := hash64(key)
	h2 := hash64(key+"\x9e") | 1 // odd, so strides cover the row
	return h1, h2
}
