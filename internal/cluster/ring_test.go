package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/proxy"
)

func seededKeys(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = KeyString(proxy.ArtifactKey{
			Name:   fmt.Sprintf("file-%05d.bin", rng.Intn(1<<20)),
			Gen:    uint64(1 + rng.Intn(3)),
			Scheme: codec.Gzip,
			FP:     "always",
		})
	}
	return keys
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%c", 'a'+i)
	}
	return out
}

// TestRingDeterministicAcrossOrderings: owners must not depend on the
// membership slice's order — every node builds the ring independently
// from its config, and they must all agree.
func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2", "n2"}, 0)
	for _, k := range seededKeys(1, 2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner disagreement for %q: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance: with hashed vnodes, ownership across a seeded key set
// stays within a reasonable factor of fair share.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{3, 5} {
		ring := NewRing(nodeNames(n), 0)
		counts := map[string]int{}
		keys := seededKeys(2, 20000)
		for _, k := range keys {
			counts[ring.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for node, c := range counts {
			if ratio := float64(c) / fair; ratio < 0.5 || ratio > 1.7 {
				t.Errorf("%d nodes: %s owns %d keys (%.2fx fair share)", n, node, c, ratio)
			}
		}
	}
}

// TestRingRebalanceMovesOnlyFairShare: the consistent-hashing property.
// Adding a node moves ~1/(N+1) of keys, all of them TO the new node;
// removing one moves exactly the departed node's keys, none between
// survivors.
func TestRingRebalanceMovesOnlyFairShare(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		keys := seededKeys(seed, 10000)
		for _, n := range []int{3, 5, 8} {
			nodes := nodeNames(n)
			before := NewRing(nodes, 0)
			grown := NewRing(append(append([]string{}, nodes...), "node-new"), 0)

			moved := 0
			for _, k := range keys {
				ob, og := before.Owner(k), grown.Owner(k)
				if ob != og {
					moved++
					if og != "node-new" {
						t.Fatalf("add: key moved between survivors (%s -> %s)", ob, og)
					}
				}
			}
			frac := float64(moved) / float64(len(keys))
			want := 1.0 / float64(n+1)
			if frac < want*0.5 || frac > want*1.7 {
				t.Errorf("seed %d, %d nodes: add moved %.3f of keys, want ~%.3f", seed, n, frac, want)
			}

			shrunk := NewRing(nodes[1:], 0)
			moved = 0
			for _, k := range keys {
				ob, os := before.Owner(k), shrunk.Owner(k)
				if ob != os {
					moved++
					if ob != nodes[0] {
						t.Fatalf("remove: key moved between survivors (%s -> %s)", ob, os)
					}
				}
			}
			frac = float64(moved) / float64(len(keys))
			want = 1.0 / float64(n)
			if frac < want*0.5 || frac > want*1.7 {
				t.Errorf("seed %d, %d nodes: remove moved %.3f of keys, want ~%.3f", seed, n, frac, want)
			}
		}
	}
}

// TestRingSuccessors: successors are distinct, exclude the owner, and a
// k larger than the membership returns every other node.
func TestRingSuccessors(t *testing.T) {
	ring := NewRing(nodeNames(5), 0)
	for _, k := range seededKeys(3, 500) {
		owner := ring.Owner(k)
		succ := ring.Successors(k, 2)
		if len(succ) != 2 {
			t.Fatalf("want 2 successors, got %v", succ)
		}
		seen := map[string]bool{owner: true}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("successor set %v not distinct from owner %s", succ, owner)
			}
			seen[s] = true
		}
		if all := ring.Successors(k, 99); len(all) != 4 {
			t.Fatalf("want all 4 non-owners, got %v", all)
		}
	}
	if got := ring.Successors("k", 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

// TestSketchHotAdmission: a key becomes hot only after repeated access
// and only while it ranks in the top K; ties break deterministically.
func TestSketchHotAdmission(t *testing.T) {
	s := NewSketch(2)
	if s.Hot("a") {
		t.Fatal("unseen key hot")
	}
	s.Add("a")
	if s.Hot("a") {
		t.Fatal("single-access key hot")
	}
	s.Add("a")
	if !s.Hot("a") {
		t.Fatal("twice-accessed key in top-2 not hot")
	}
	// Flood two hotter keys: "a" (count 2) must fall out of the top 2.
	for i := 0; i < 5; i++ {
		s.Add("b")
		s.Add("c")
	}
	if s.Hot("a") {
		t.Fatal("displaced key still hot")
	}
	if !s.Hot("b") || !s.Hot("c") {
		t.Fatal("dominant keys not hot")
	}
	// Zero-K sketch admits nothing.
	z := NewSketch(0)
	z.Add("x")
	z.Add("x")
	if z.Hot("x") {
		t.Fatal("K=0 sketch admitted a key")
	}
}

// TestSketchPruneBounded: an adversarial key flood keeps the candidate
// table bounded and does not evict the dominant keys.
func TestSketchPruneBounded(t *testing.T) {
	s := NewSketch(4)
	for i := 0; i < 10; i++ {
		s.Add("hot-1")
		s.Add("hot-2")
	}
	for i := 0; i < 1000; i++ {
		s.Add(fmt.Sprintf("cold-%d", i))
	}
	if len(s.cand) > s.candLimit() {
		t.Fatalf("candidate table grew to %d, limit %d", len(s.cand), s.candLimit())
	}
	if !s.Hot("hot-1") || !s.Hot("hot-2") {
		t.Fatal("flood evicted the dominant keys")
	}
}
