// Package cluster turns N proxy servers into a consistent-hash artifact
// tier: a ring of hashed vnodes places every artifact-cache key
// (file, generation, scheme, decider fingerprint) on exactly one owner
// node, a cache miss on any other node fetches the finished compressed
// artifact from the owner over the PXY-P peer protocol instead of
// recompressing, hot keys are admitted into non-owner caches and
// replicated to ring successors, and generation bumps propagate ring-wide
// invalidations — so cluster-wide compression work per key stays at one
// while aggregate serve throughput scales with node count.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/proxy"
)

// DefaultVnodes is the vnode count per node when Config.Vnodes is 0:
// enough that the largest ownership arc of a small ring stays within a
// few percent of fair share, small enough that ring construction is
// trivially cheap.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over node IDs: each node
// projects Vnodes points onto a 64-bit circle and a key belongs to the
// node owning the first point at or clockwise of the key's hash.
// Construction is deterministic in the node-ID set — two nodes building
// rings from the same membership agree on every key's owner.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over nodes with vnodes points per node (0 selects
// DefaultVnodes). Duplicate node IDs collapse; order does not matter.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's member IDs, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Successors returns up to k distinct nodes clockwise of key's owner —
// the replica set for a hot key. The owner itself is excluded.
func (r *Ring) Successors(key string, k int) []string {
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	i := r.search(key)
	owner := r.points[i].node
	out := make([]string, 0, k)
	seen := map[string]bool{owner: true}
	for step := 1; step <= len(r.points) && len(out) < k; step++ {
		n := r.points[(i+step)%len(r.points)].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// search returns the index of the first point at or after key's hash,
// wrapping to 0 past the top of the circle.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is FNV-1a with a splitmix64 finalizer. Raw FNV over short,
// near-sequential strings (vnode labels, file names) leaves visible
// structure in the high bits — measured ownership skew of 3x fair share
// on a 5-node ring — and the avalanche pass removes it.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyString canonicalizes an artifact key for hashing and sketching. The
// generation is part of the identity: bumping a file's generation moves
// its keys to (usually) a different owner, which is also what makes
// stale-generation fetches detectable at the owner.
func KeyString(k proxy.ArtifactKey) string {
	return fmt.Sprintf("%s\x00%d\x00%d\x00%s", k.Name, k.Gen, int(k.Scheme), k.FP)
}
