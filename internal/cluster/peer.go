package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/checksum"
	"repro/internal/codec"
	"repro/internal/proxy"
	"repro/internal/selective"
)

// PXY-P is the inter-proxy peer protocol, framed like PXY3: a CRC on the
// request frame, a CRC on the response status, and a per-block payload
// CRC, with every wire-derived length bounded before allocation.
//
//	request:  "PXYP" | op u8 | keyLen-prefixed fields | crc32(after magic)
//	          key = nameLen u16 | name | gen u64 | scheme u8 | fpLen u16 | fp
//	response: status u8 | crc32(status)
//	blocks:   (fetch-ok responses and put requests)
//	          flag u8 | rawLen u32 | payLen u32 | crc32(payload) | payload
//	          ... terminated by flag 0xFF | count u32 | 0 u32 | crc32(hdr[:9])
//
// Ops: fetch asks the key's owner for the finished artifact; put pushes a
// replica of a hot artifact to a successor; inval raises a file's
// generation floor ring-wide after a registration bump.
const (
	peerMagic = "PXYP"

	peerOpFetch = 0x01
	peerOpPut   = 0x02
	peerOpInval = 0x03

	peerStatusOK       = 0x00
	peerStatusNotOwner = 0x01
	peerStatusStale    = 0x02
	peerStatusNotFound = 0x03
	peerStatusError    = 0x04

	maxPeerName   = 4096
	maxPeerFP     = 256
	maxPeerBlock  = 1 << 21
	maxPeerBlocks = 4096

	peerReqFixedLen   = 4 + 1
	peerBlockHdrLen   = 1 + 4 + 4 + 4
	peerBlockFlagRaw  = 0x00
	peerBlockFlagComp = 0x01
	peerBlockFlagEnd  = 0xFF
)

// ErrPeerProtocol is returned for malformed PXY-P frames.
var ErrPeerProtocol = errors.New("cluster: peer protocol error")

// errNotOwner surfaces a peerStatusNotOwner response: the dialed node no
// longer (or never did) own the key — the caller degrades to local
// compression.
var errNotOwner = errors.New("cluster: peer is not the key's owner")

// peerRequest is one decoded PXY-P request frame.
type peerRequest struct {
	Op  byte
	Key proxy.ArtifactKey
}

func writePeerRequest(w io.Writer, req peerRequest) error {
	name, fp := []byte(req.Key.Name), []byte(req.Key.FP)
	if len(name) > maxPeerName || len(fp) > maxPeerFP {
		return fmt.Errorf("%w: oversized key", ErrPeerProtocol)
	}
	buf := make([]byte, 0, peerReqFixedLen+2+len(name)+8+1+2+len(fp)+4)
	buf = append(buf, peerMagic...)
	buf = append(buf, req.Op)
	var u16 [2]byte
	var u64 [8]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(name)))
	buf = append(buf, u16[:]...)
	buf = append(buf, name...)
	binary.BigEndian.PutUint64(u64[:], req.Key.Gen)
	buf = append(buf, u64[:]...)
	buf = append(buf, byte(req.Key.Scheme))
	binary.BigEndian.PutUint16(u16[:], uint16(len(fp)))
	buf = append(buf, u16[:]...)
	buf = append(buf, fp...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], checksum.CRC32(buf[len(peerMagic):]))
	buf = append(buf, crc[:]...)
	_, err := w.Write(buf)
	return err
}

func readPeerRequest(r io.Reader) (peerRequest, error) {
	hdr := make([]byte, peerReqFixedLen+2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return peerRequest{}, err
	}
	if string(hdr[:len(peerMagic)]) != peerMagic {
		return peerRequest{}, fmt.Errorf("%w: bad magic", ErrPeerProtocol)
	}
	req := peerRequest{Op: hdr[len(peerMagic)]}
	nameLen := int(binary.BigEndian.Uint16(hdr[peerReqFixedLen:]))
	if nameLen > maxPeerName {
		return peerRequest{}, fmt.Errorf("%w: name length %d", ErrPeerProtocol, nameLen)
	}
	mid := make([]byte, nameLen+8+1+2)
	if _, err := io.ReadFull(r, mid); err != nil {
		return peerRequest{}, fmt.Errorf("%w: truncated key: %v", ErrPeerProtocol, err)
	}
	req.Key.Name = string(mid[:nameLen])
	req.Key.Gen = binary.BigEndian.Uint64(mid[nameLen:])
	req.Key.Scheme = codec.Scheme(mid[nameLen+8])
	fpLen := int(binary.BigEndian.Uint16(mid[nameLen+9:]))
	if fpLen > maxPeerFP {
		return peerRequest{}, fmt.Errorf("%w: fp length %d", ErrPeerProtocol, fpLen)
	}
	tail := make([]byte, fpLen+4)
	if _, err := io.ReadFull(r, tail); err != nil {
		return peerRequest{}, fmt.Errorf("%w: truncated key tail: %v", ErrPeerProtocol, err)
	}
	req.Key.FP = string(tail[:fpLen])
	sum := checksum.CRC32(hdr[len(peerMagic):])
	sum = checksum.UpdateCRC32(sum, mid)
	sum = checksum.UpdateCRC32(sum, tail[:fpLen])
	if sum != binary.BigEndian.Uint32(tail[fpLen:]) {
		return peerRequest{}, fmt.Errorf("%w: request CRC mismatch", ErrPeerProtocol)
	}
	return req, nil
}

func writePeerStatus(w io.Writer, status byte) error {
	var buf [5]byte
	buf[0] = status
	binary.BigEndian.PutUint32(buf[1:], checksum.CRC32(buf[:1]))
	_, err := w.Write(buf[:])
	return err
}

func readPeerStatus(r io.Reader) (byte, error) {
	var buf [5]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated status: %v", ErrPeerProtocol, err)
	}
	if checksum.CRC32(buf[:1]) != binary.BigEndian.Uint32(buf[1:]) {
		return 0, fmt.Errorf("%w: status CRC mismatch", ErrPeerProtocol)
	}
	return buf[0], nil
}

// writePeerBlocks frames an artifact's block stream, terminated by an end
// frame carrying the block count.
func writePeerBlocks(w io.Writer, blocks []selective.Block) error {
	var hdr [peerBlockHdrLen]byte
	for _, b := range blocks {
		hdr[0] = peerBlockFlagRaw
		if b.Compressed {
			hdr[0] = peerBlockFlagComp
		}
		binary.BigEndian.PutUint32(hdr[1:5], uint32(b.RawLen))
		binary.BigEndian.PutUint32(hdr[5:9], uint32(len(b.Payload)))
		binary.BigEndian.PutUint32(hdr[9:13], checksum.CRC32(b.Payload))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if len(b.Payload) > 0 {
			if _, err := w.Write(b.Payload); err != nil {
				return err
			}
		}
	}
	hdr[0] = peerBlockFlagEnd
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(blocks)))
	binary.BigEndian.PutUint32(hdr[5:9], 0)
	binary.BigEndian.PutUint32(hdr[9:13], checksum.CRC32(hdr[:9]))
	_, err := w.Write(hdr[:])
	return err
}

// readPeerBlocks decodes a block stream, bounding every length before
// allocation and verifying every payload CRC and the trailing count.
func readPeerBlocks(r io.Reader) ([]selective.Block, error) {
	var blocks []selective.Block
	var hdr [peerBlockHdrLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated block: %v", ErrPeerProtocol, err)
		}
		if hdr[0] == peerBlockFlagEnd {
			if checksum.CRC32(hdr[:9]) != binary.BigEndian.Uint32(hdr[9:13]) {
				return nil, fmt.Errorf("%w: end frame CRC mismatch", ErrPeerProtocol)
			}
			if n := binary.BigEndian.Uint32(hdr[1:5]); int(n) != len(blocks) {
				return nil, fmt.Errorf("%w: stream claims %d blocks, carried %d", ErrPeerProtocol, n, len(blocks))
			}
			return blocks, nil
		}
		if hdr[0] != peerBlockFlagRaw && hdr[0] != peerBlockFlagComp {
			return nil, fmt.Errorf("%w: block flag %#x", ErrPeerProtocol, hdr[0])
		}
		if len(blocks) >= maxPeerBlocks {
			return nil, fmt.Errorf("%w: more than %d blocks", ErrPeerProtocol, maxPeerBlocks)
		}
		rawLen := binary.BigEndian.Uint32(hdr[1:5])
		payLen := binary.BigEndian.Uint32(hdr[5:9])
		if err := selective.CheckWireLens(rawLen, payLen, maxPeerBlock, maxPeerBlock); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPeerProtocol, err)
		}
		if hdr[0] == peerBlockFlagRaw && payLen != rawLen {
			return nil, fmt.Errorf("%w: raw block claims %d raw bytes but carries %d", ErrPeerProtocol, rawLen, payLen)
		}
		payload := make([]byte, payLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: truncated payload: %v", ErrPeerProtocol, err)
		}
		if checksum.CRC32(payload) != binary.BigEndian.Uint32(hdr[9:13]) {
			return nil, fmt.Errorf("%w: block payload CRC mismatch", ErrPeerProtocol)
		}
		blocks = append(blocks, selective.Block{
			Compressed: hdr[0] == peerBlockFlagComp,
			RawLen:     int(rawLen),
			Payload:    payload,
		})
	}
}
