package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/proxy"
)

// testCluster is a ring of proxy servers with PXY-P peer listeners over
// loopback TCP, the transport-level twin of the harness's simnet cluster.
type testCluster struct {
	nodes   map[string]*Node
	servers map[string]*proxy.Server
	addrs   map[string]string
	mu      sync.Mutex
}

func (tc *testCluster) dial(node string) (net.Conn, error) {
	tc.mu.Lock()
	addr, ok := tc.addrs[node]
	tc.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no route to departed node %q", node)
	}
	return net.Dial("tcp", addr)
}

// startCluster brings up proxies and peer listeners for members, with the
// ring built over ringView (which may include departed nodes that get no
// listener). compLog, when non-nil, receives every (node, key) compression.
func startCluster(t *testing.T, members, ringView []string, replicas, hotK int,
	compLog func(node string, key proxy.ArtifactKey)) *testCluster {
	t.Helper()
	tc := &testCluster{
		nodes:   make(map[string]*Node),
		servers: make(map[string]*proxy.Server),
		addrs:   make(map[string]string),
	}
	for _, id := range members {
		id := id
		srv := proxy.NewServerWith(nil, proxy.Config{CacheBytes: 8 << 20})
		cfg := Config{
			Self:     id,
			Nodes:    ringView,
			Replicas: replicas,
			HotK:     hotK,
			Dial:     tc.dial,
			Server:   srv,
		}
		if compLog != nil {
			cfg.OnCompress = func(k proxy.ArtifactKey) { compLog(id, k) }
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n.Serve(ln)
		tc.mu.Lock()
		tc.nodes[id] = n
		tc.servers[id] = srv
		tc.addrs[id] = ln.Addr().String()
		tc.mu.Unlock()
		t.Cleanup(func() {
			n.Close()
			srv.Close()
		})
	}
	return tc
}

// keyOwnedBy finds a registered-file key whose ring owner is the wanted
// node, registering files on every member until one lands there.
func keyOwnedBy(t *testing.T, tc *testCluster, ring *Ring, owner string, members []string) proxy.ArtifactKey {
	t.Helper()
	for i := 0; i < 512; i++ {
		name := fmt.Sprintf("file-%03d.txt", i)
		key := proxy.ArtifactKey{Name: name, Gen: 1, Scheme: codec.Gzip, FP: "always"}
		if ring.Owner(KeyString(key)) != owner {
			continue
		}
		content := bytes.Repeat([]byte(fmt.Sprintf("content of %s; ", name)), 400)
		for _, m := range members {
			tc.servers[m].Register(name, content)
		}
		return key
	}
	t.Fatalf("no key owned by %s in 512 candidates", owner)
	return proxy.ArtifactKey{}
}

// TestPeerFetchCompressesOnceClusterWide: a fetch from a non-owner pulls
// the finished artifact from the owner; the only compression in the
// cluster runs on the owner, and repeating the fetch adds none.
func TestPeerFetchCompressesOnceClusterWide(t *testing.T) {
	members := []string{"na", "nb", "nc"}
	var mu sync.Mutex
	comps := map[string]int{}
	tc := startCluster(t, members, members, 0, 0, func(node string, k proxy.ArtifactKey) {
		mu.Lock()
		comps[node+"/"+KeyString(k)]++
		mu.Unlock()
	})
	ring := tc.nodes["na"].Ring()
	key := keyOwnedBy(t, tc, ring, "nb", members)

	blocks, err := tc.nodes["na"].PeerFetch(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("peer fetch returned no blocks")
	}
	want, err := tc.servers["nb"].Artifact(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(blocks) {
		t.Fatalf("peer artifact has %d blocks, owner's has %d", len(blocks), len(want))
	}
	for i := range want {
		if !bytes.Equal(want[i].Payload, blocks[i].Payload) || want[i].Compressed != blocks[i].Compressed || want[i].RawLen != blocks[i].RawLen {
			t.Fatalf("block %d differs between peer fetch and owner artifact", i)
		}
	}
	if _, err := tc.nodes["nc"].PeerFetch(key); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(comps) != 1 || comps["nb/"+KeyString(key)] != 1 {
		t.Fatalf("cluster compressions = %v, want exactly one on the owner nb", comps)
	}
}

// TestPeerFetchOwnedLocally: the hook refuses keys the ring places on
// this node, so the proxy compresses locally instead of dialing itself.
func TestPeerFetchOwnedLocally(t *testing.T) {
	members := []string{"na", "nb"}
	tc := startCluster(t, members, members, 0, 0, nil)
	ring := tc.nodes["na"].Ring()
	key := keyOwnedBy(t, tc, ring, "na", members)
	if _, err := tc.nodes["na"].PeerFetch(key); !errors.Is(err, proxy.ErrOwnedLocally) {
		t.Fatalf("PeerFetch of an owned key returned %v, want ErrOwnedLocally", err)
	}
}

// TestDepartedOwnerDegradesToLocalCompression: the ring still names a
// node that no longer answers. A real client fetch through the proxy must
// succeed anyway — the miss path eats the peer failure and compresses
// locally — and the error never surfaces to the client.
func TestDepartedOwnerDegradesToLocalCompression(t *testing.T) {
	members := []string{"na", "nb"}
	ringView := []string{"na", "nb", "ndeparted"}
	tc := startCluster(t, members, ringView, 0, 0, nil)
	ring := tc.nodes["na"].Ring()
	key := keyOwnedBy(t, tc, ring, "ndeparted", members)

	// Through the node hook directly: the dial failure propagates...
	if _, err := tc.nodes["na"].PeerFetch(key); err == nil {
		t.Fatal("PeerFetch from a departed owner succeeded")
	}
	// ...but through the full proxy miss path, the client sees success.
	srv := tc.servers["na"]
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := proxy.NewClient(addr)
	content, _, err := client.Fetch(key.Name, codec.Gzip, proxy.ModeOnDemand)
	if err != nil {
		t.Fatalf("client fetch with departed owner failed: %v", err)
	}
	if len(content) == 0 {
		t.Fatal("client got empty content")
	}
	st := srv.Stats()
	if st.PeerFetchErrors != 1 {
		t.Fatalf("PeerFetchErrors = %d, want 1", st.PeerFetchErrors)
	}
	if st.Compressions != 1 {
		t.Fatalf("Compressions = %d, want 1 (local fallback)", st.Compressions)
	}
	if st.Errors != 0 {
		t.Fatalf("client-visible errors = %d, want 0", st.Errors)
	}
}

// TestInvalidationPropagatesRingWide: a Register through the node bumps
// the generation on every member and drops stale cached artifacts, and a
// peer fetch for the stale generation is refused as stale.
func TestInvalidationPropagatesRingWide(t *testing.T) {
	members := []string{"na", "nb", "nc"}
	tc := startCluster(t, members, members, 0, 0, nil)
	ring := tc.nodes["na"].Ring()
	key := keyOwnedBy(t, tc, ring, "nb", members)

	if _, err := tc.nodes["na"].PeerFetch(key); err != nil {
		t.Fatal(err)
	}
	tc.nodes["nc"].Register(key.Name, []byte("generation two content"))

	for _, m := range members {
		gen, ok := tc.servers[m].Generation(key.Name)
		if !ok || gen != 2 {
			t.Fatalf("node %s at generation %d, want 2", m, gen)
		}
	}
	if _, ok := tc.servers["nb"].CachedArtifact(key); ok {
		t.Fatal("owner still caches the invalidated generation")
	}
	if _, err := tc.nodes["na"].PeerFetch(key); !errors.Is(err, proxy.ErrStaleGeneration) {
		t.Fatalf("stale-generation peer fetch returned %v, want ErrStaleGeneration", err)
	}
}

// TestHotKeyAdmissionAndReplication: a key fetched repeatedly turns hot —
// the requester admits it into its local cache, and the owner pushes
// replicas to its ring successors.
func TestHotKeyAdmissionAndReplication(t *testing.T) {
	members := []string{"na", "nb", "nc", "nd"}
	tc := startCluster(t, members, members, 2, 4, nil)
	ring := tc.nodes["na"].Ring()
	key := keyOwnedBy(t, tc, ring, "nb", members)
	ks := KeyString(key)

	// First access: cold everywhere.
	if _, err := tc.nodes["na"].PeerFetch(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := tc.servers["na"].CachedArtifact(key); ok {
		t.Fatal("cold key admitted into the requester cache")
	}
	// Second access: hot on both sides.
	if _, err := tc.nodes["na"].PeerFetch(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := tc.servers["na"].CachedArtifact(key); !ok {
		t.Fatal("hot key not admitted into the requester cache")
	}
	// The owner replicates after answering the fetch, so give the push a
	// moment to land.
	for _, succ := range ring.Successors(ks, 2) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, ok := tc.servers[succ].CachedArtifact(key); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("successor %s has no replica of the hot key", succ)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// A successor holding a replica serves it to peers even though it is
	// not the owner.
	var succ string
	for _, s := range ring.Successors(ks, 2) {
		if s != "na" {
			succ = s
			break
		}
	}
	if succ != "" {
		blocks, _, err := tc.nodes["na"].fetchFrom(succ, key)
		if err != nil {
			t.Fatalf("replica fetch from successor %s failed: %v", succ, err)
		}
		if len(blocks) == 0 {
			t.Fatal("replica fetch returned no blocks")
		}
	}
}

// TestPeerWireRoundTrip: PXY-P frames survive an encode/decode cycle and
// corruption is rejected.
func TestPeerWireRoundTrip(t *testing.T) {
	key := proxy.ArtifactKey{Name: "a/b.txt", Gen: 7, Scheme: codec.Bzip2, FP: "PaperDecider{}"}
	var buf bytes.Buffer
	if err := writePeerRequest(&buf, peerRequest{Op: peerOpFetch, Key: key}); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)
	got, err := readPeerRequest(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != peerOpFetch || got.Key != key {
		t.Fatalf("round trip got %+v", got)
	}
	// Flip a name byte: the CRC must catch it.
	wire[7] ^= 0x40
	if _, err := readPeerRequest(bytes.NewReader(wire)); err == nil {
		t.Fatal("corrupted request accepted")
	}
}
