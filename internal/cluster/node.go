package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs/export"
	"repro/internal/proxy"
	"repro/internal/selective"
	"repro/internal/sim"
)

// Config wires one proxy server into a cluster.
type Config struct {
	// Self is this node's ID; Nodes is the full ring membership (must
	// include Self). Membership is static for the node's lifetime —
	// rebalancing means building a new Node over a new Ring.
	Self  string
	Nodes []string
	// Vnodes per node on the ring; 0 selects DefaultVnodes.
	Vnodes int
	// Replicas is how many ring successors a hot key's artifact is pushed
	// to. 0 disables replication.
	Replicas int
	// HotK sizes the top-K admission sketch: a peer-fetched artifact is
	// cached locally (and an owned artifact replicated) only while its key
	// ranks in the node's top HotK keys with at least two accesses. 0
	// disables admission and replication.
	HotK int
	// Dial opens a transport connection to a peer node ID: simnet inside
	// the harness, TCP in proxyd.
	Dial func(node string) (net.Conn, error)
	// Server is the proxy this node fronts. The node installs its
	// peer-fetch hook on it; the caller keeps ownership and lifecycle.
	Server *proxy.Server
	// Clock supplies deadlines for peer I/O; nil selects the host clock.
	Clock sim.WallClock
	// Timeout bounds one peer exchange end to end. 0 selects 30s.
	Timeout time.Duration
	// Events, when set, receives one wide event per peer fetch this node
	// issues (span "peer-fetch", Node/Peer filled in). VNow, when set,
	// supplies the virtual timestamp those events carry.
	Events *export.Sink
	VNow   func() int64
	// OnCompress, when set, observes every artifact compressed on this
	// node — the cluster-wide at-most-one-compression-per-key oracle hook.
	OnCompress func(proxy.ArtifactKey)
}

// Node is one cluster member: it owns the ring view, serves the PXY-P
// peer listener, and hooks the proxy server's miss path so cache misses
// for keys owned elsewhere fetch the finished artifact instead of
// recompressing.
type Node struct {
	cfg  Config
	ring *Ring

	mu         sync.Mutex
	sketch     *Sketch
	replicated map[string]bool

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewNode builds a node and installs its hooks on cfg.Server. Call Serve
// to start the peer listener, then let the proxy accept client traffic.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" || cfg.Server == nil || cfg.Dial == nil {
		return nil, errors.New("cluster: Config needs Self, Server and Dial")
	}
	ring := NewRing(cfg.Nodes, cfg.Vnodes)
	found := false
	for _, n := range ring.Nodes() {
		if n == cfg.Self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in membership %v", cfg.Self, cfg.Nodes)
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.SystemClock{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	n := &Node{
		cfg:        cfg,
		ring:       ring,
		sketch:     NewSketch(cfg.HotK),
		replicated: make(map[string]bool),
		closed:     make(chan struct{}),
	}
	cfg.Server.SetPeerFetch(n.PeerFetch)
	if cfg.OnCompress != nil {
		cfg.Server.SetOnCompress(cfg.OnCompress)
	}
	return n, nil
}

// Ring exposes the node's ring view (for tests and per-node reporting).
func (n *Node) Ring() *Ring { return n.ring }

// Serve starts the PXY-P peer listener on ln. Like the proxy's accept
// loop, it runs until Close.
func (n *Node) Serve(ln net.Listener) {
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
}

// Close stops the peer listener and waits for in-flight peer exchanges.
// The proxy server it fronts is closed by its owner, not here.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.closed)
		if n.ln != nil {
			err = n.ln.Close()
		}
		n.wg.Wait()
	})
	return err
}

// PeerFetch is the proxy server's miss-path hook: route the key on the
// ring, and fetch the finished artifact from its owner when that is not
// us. A fetched artifact is admitted into the local cache only while the
// key is hot. Every failure degrades to ErrOwnedLocally-style local
// compression at the caller; no error here ever reaches a client.
func (n *Node) PeerFetch(key proxy.ArtifactKey) ([]selective.Block, error) {
	ks := KeyString(key)
	owner := n.ring.Owner(ks)
	if owner == "" || owner == n.cfg.Self {
		return nil, proxy.ErrOwnedLocally
	}
	var vns int64
	if n.cfg.VNow != nil {
		vns = n.cfg.VNow()
	}
	start := n.cfg.Clock.Now()
	blocks, wire, err := n.fetchFrom(owner, key)
	if n.cfg.Events != nil {
		e := export.Event{
			VNS:     vns,
			Span:    "peer-fetch",
			Name:    key.Name,
			Scheme:  key.Scheme.String(),
			Outcome: "ok",
			DurNS:   n.cfg.Clock.Now().Sub(start).Nanoseconds(),
			Node:    n.cfg.Self,
			Peer:    owner,
		}
		if err != nil {
			e.Outcome = "err"
		} else {
			for _, b := range blocks {
				e.RawBytes += int64(b.RawLen)
			}
			e.WireBytes = wire
			e.Blocks = len(blocks)
			for _, b := range blocks {
				if b.Compressed {
					e.BlocksCompressed++
				}
			}
		}
		n.cfg.Events.Record(e)
	}
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.sketch.Add(ks)
	hot := n.sketch.Hot(ks)
	n.mu.Unlock()
	if hot {
		n.cfg.Server.AdmitArtifact(key, blocks)
	}
	return blocks, nil
}

// fetchFrom runs one PXY-P fetch exchange against owner, returning the
// artifact blocks and the wire bytes read.
func (n *Node) fetchFrom(owner string, key proxy.ArtifactKey) ([]selective.Block, int64, error) {
	conn, err := n.cfg.Dial(owner)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(n.cfg.Clock.Now().Add(n.cfg.Timeout))
	if err := writePeerRequest(conn, peerRequest{Op: peerOpFetch, Key: key}); err != nil {
		return nil, 0, err
	}
	status, err := readPeerStatus(conn)
	if err != nil {
		return nil, 0, err
	}
	switch status {
	case peerStatusOK:
	case peerStatusNotOwner:
		return nil, 0, errNotOwner
	case peerStatusStale:
		return nil, 0, proxy.ErrStaleGeneration
	case peerStatusNotFound:
		return nil, 0, proxy.ErrNotFound
	default:
		return nil, 0, fmt.Errorf("%w: fetch status %#x", ErrPeerProtocol, status)
	}
	blocks, err := readPeerBlocks(conn)
	if err != nil {
		return nil, 0, err
	}
	wire := int64(5 + peerBlockHdrLen) // status + end frame
	for _, b := range blocks {
		wire += int64(peerBlockHdrLen + len(b.Payload))
	}
	return blocks, wire, nil
}

// Register stores content on the local proxy and broadcasts the resulting
// generation bump ring-wide, so every node's floor rises and stale
// artifacts become uncacheable everywhere.
func (n *Node) Register(name string, content []byte) {
	n.cfg.Server.Register(name, content)
	gen, _ := n.cfg.Server.Generation(name)
	n.broadcastInval(name, gen)
}

// broadcastInval pushes an invalidation to every other ring member.
// Best-effort: a node that misses it serves ErrStaleGeneration to
// peer fetches until its own registration catches up, which requesters
// degrade from by compressing locally.
func (n *Node) broadcastInval(name string, gen uint64) {
	for _, peer := range n.ring.Nodes() {
		if peer == n.cfg.Self {
			continue
		}
		func() {
			conn, err := n.cfg.Dial(peer)
			if err != nil {
				return
			}
			defer conn.Close()
			_ = conn.SetDeadline(n.cfg.Clock.Now().Add(n.cfg.Timeout))
			if err := writePeerRequest(conn, peerRequest{Op: peerOpInval, Key: proxy.ArtifactKey{Name: name, Gen: gen}}); err != nil {
				return
			}
			_, _ = readPeerStatus(conn)
		}()
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			n.handle(conn)
		}()
	}
}

// handle serves one PXY-P exchange.
func (n *Node) handle(conn net.Conn) {
	_ = conn.SetDeadline(n.cfg.Clock.Now().Add(n.cfg.Timeout))
	req, err := readPeerRequest(conn)
	if err != nil {
		return
	}
	switch req.Op {
	case peerOpFetch:
		n.handleFetch(conn, req.Key)
	case peerOpPut:
		blocks, err := readPeerBlocks(conn)
		if err != nil {
			return
		}
		// The cache's generation floor silently rejects stale pushes.
		n.cfg.Server.AdmitArtifact(req.Key, blocks)
		_ = writePeerStatus(conn, peerStatusOK)
	case peerOpInval:
		n.cfg.Server.SyncGeneration(req.Key.Name, req.Key.Gen)
		_ = writePeerStatus(conn, peerStatusOK)
	default:
		_ = writePeerStatus(conn, peerStatusError)
	}
}

// handleFetch serves an artifact to a peer: from the local cache when we
// hold a replica, by building (cache + singleflight + worker pool) when
// we own the key, and with a not-owner refusal otherwise — the requester
// then compresses locally, so ownership disagreement during membership
// changes can never loop a request around the ring.
func (n *Node) handleFetch(conn net.Conn, key proxy.ArtifactKey) {
	ks := KeyString(key)
	if n.ring.Owner(ks) != n.cfg.Self {
		if blocks, ok := n.cfg.Server.CachedArtifact(key); ok {
			if writePeerStatus(conn, peerStatusOK) == nil {
				_ = writePeerBlocks(conn, blocks)
			}
			return
		}
		_ = writePeerStatus(conn, peerStatusNotOwner)
		return
	}
	blocks, err := n.cfg.Server.Artifact(key)
	switch {
	case err == nil:
	case errors.Is(err, proxy.ErrStaleGeneration):
		_ = writePeerStatus(conn, peerStatusStale)
		return
	case errors.Is(err, proxy.ErrNotFound):
		_ = writePeerStatus(conn, peerStatusNotFound)
		return
	default:
		_ = writePeerStatus(conn, peerStatusError)
		return
	}
	if writePeerStatus(conn, peerStatusOK) == nil {
		_ = writePeerBlocks(conn, blocks)
	}
	n.maybeReplicate(ks, key, blocks)
}

// maybeReplicate counts a peer-serve of an owned key and, the first time
// the key turns hot, pushes its artifact to the ring successors.
func (n *Node) maybeReplicate(ks string, key proxy.ArtifactKey, blocks []selective.Block) {
	if n.cfg.Replicas <= 0 || n.cfg.HotK <= 0 {
		return
	}
	n.mu.Lock()
	n.sketch.Add(ks)
	push := n.sketch.Hot(ks) && !n.replicated[ks]
	if push {
		n.replicated[ks] = true
	}
	n.mu.Unlock()
	if !push {
		return
	}
	for _, succ := range n.ring.Successors(ks, n.cfg.Replicas) {
		func() {
			conn, err := n.cfg.Dial(succ)
			if err != nil {
				return
			}
			defer conn.Close()
			_ = conn.SetDeadline(n.cfg.Clock.Now().Add(n.cfg.Timeout))
			if err := writePeerRequest(conn, peerRequest{Op: peerOpPut, Key: key}); err != nil {
				return
			}
			if err := writePeerBlocks(conn, blocks); err != nil {
				return
			}
			_, _ = readPeerStatus(conn)
		}()
	}
}
