// Package checksum implements the CRC-32 (IEEE 802.3, reflected) and
// Adler-32 checksums from first principles. They are used by the gzip and
// zlib container formats produced by this repository's codecs.
package checksum

// crc32Poly is the reversed (reflected) IEEE 802.3 polynomial.
const crc32Poly = 0xEDB88320

// crc32Table is the byte-at-a-time lookup table for the reflected IEEE
// polynomial; crc32Tables extends it to the 8 shifted tables of the
// slicing-by-8 method (crc32Tables[0] is the classic table).
var crc32Tables = makeCRC32Tables()

func makeCRC32Tables() [8][256]uint32 {
	var t [8][256]uint32
	for i := range t[0] {
		crc := uint32(i)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ crc32Poly
			} else {
				crc >>= 1
			}
		}
		t[0][i] = crc
	}
	// Table j maps a byte processed j positions early: one more table
	// lookup folds in each additional shift of 8 bits.
	for j := 1; j < 8; j++ {
		for i := range t[j] {
			crc := t[j-1][i]
			t[j][i] = t[0][byte(crc)] ^ (crc >> 8)
		}
	}
	return t
}

// CRC32 computes the IEEE CRC-32 of p in one shot.
func CRC32(p []byte) uint32 {
	return UpdateCRC32(0, p)
}

// UpdateCRC32 extends crc with the bytes of p. A zero crc starts a new
// computation, so UpdateCRC32(UpdateCRC32(0, a), b) == CRC32(a || b).
// Bulk input runs through the slicing-by-8 variant (8 bytes per step, one
// table load each); the byte-at-a-time loop handles the tail.
func UpdateCRC32(crc uint32, p []byte) uint32 {
	crc = ^crc
	for len(p) >= 8 {
		crc ^= uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
		crc = crc32Tables[7][byte(crc)] ^
			crc32Tables[6][byte(crc>>8)] ^
			crc32Tables[5][byte(crc>>16)] ^
			crc32Tables[4][byte(crc>>24)] ^
			crc32Tables[3][p[4]] ^
			crc32Tables[2][p[5]] ^
			crc32Tables[1][p[6]] ^
			crc32Tables[0][p[7]]
		p = p[8:]
	}
	for _, b := range p {
		crc = crc32Tables[0][byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}

// adlerMod is the largest prime smaller than 65536.
const adlerMod = 65521

// Adler32 computes the Adler-32 checksum of p in one shot.
func Adler32(p []byte) uint32 {
	return UpdateAdler32(1, p)
}

// UpdateAdler32 extends adler with the bytes of p. A value of 1 starts a new
// computation.
func UpdateAdler32(adler uint32, p []byte) uint32 {
	s1 := adler & 0xffff
	s2 := (adler >> 16) & 0xffff
	// Process in chunks small enough that s2 cannot overflow uint32:
	// 5552 is the standard zlib NMAX.
	const nmax = 5552
	for len(p) > 0 {
		chunk := p
		if len(chunk) > nmax {
			chunk = chunk[:nmax]
		}
		for _, b := range chunk {
			s1 += uint32(b)
			s2 += s1
		}
		s1 %= adlerMod
		s2 %= adlerMod
		p = p[len(chunk):]
	}
	return s2<<16 | s1
}
