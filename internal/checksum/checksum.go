// Package checksum implements the CRC-32 (IEEE 802.3, reflected) and
// Adler-32 checksums from first principles. They are used by the gzip and
// zlib container formats produced by this repository's codecs.
package checksum

// crc32Poly is the reversed (reflected) IEEE 802.3 polynomial.
const crc32Poly = 0xEDB88320

// crc32Table is the byte-at-a-time lookup table for the reflected IEEE
// polynomial.
var crc32Table = makeCRC32Table()

func makeCRC32Table() [256]uint32 {
	var t [256]uint32
	for i := range t {
		crc := uint32(i)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ crc32Poly
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return t
}

// CRC32 computes the IEEE CRC-32 of p in one shot.
func CRC32(p []byte) uint32 {
	return UpdateCRC32(0, p)
}

// UpdateCRC32 extends crc with the bytes of p. A zero crc starts a new
// computation, so UpdateCRC32(UpdateCRC32(0, a), b) == CRC32(a || b).
func UpdateCRC32(crc uint32, p []byte) uint32 {
	crc = ^crc
	for _, b := range p {
		crc = crc32Table[byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}

// adlerMod is the largest prime smaller than 65536.
const adlerMod = 65521

// Adler32 computes the Adler-32 checksum of p in one shot.
func Adler32(p []byte) uint32 {
	return UpdateAdler32(1, p)
}

// UpdateAdler32 extends adler with the bytes of p. A value of 1 starts a new
// computation.
func UpdateAdler32(adler uint32, p []byte) uint32 {
	s1 := adler & 0xffff
	s2 := (adler >> 16) & 0xffff
	// Process in chunks small enough that s2 cannot overflow uint32:
	// 5552 is the standard zlib NMAX.
	const nmax = 5552
	for len(p) > 0 {
		chunk := p
		if len(chunk) > nmax {
			chunk = chunk[:nmax]
		}
		for _, b := range chunk {
			s1 += uint32(b)
			s2 += s1
		}
		s1 %= adlerMod
		s2 %= adlerMod
		p = p[len(chunk):]
	}
	return s2<<16 | s1
}
