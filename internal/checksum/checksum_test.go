package checksum

import (
	"bytes"
	"hash/adler32"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

// The stdlib hashes serve as reference oracles for our from-scratch
// implementations; the codecs themselves use only this package.

func TestCRC32KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
	}{
		{"", 0x00000000},
		{"a", 0xE8B7BE43},
		{"abc", 0x352441C2},
		{"123456789", 0xCBF43926},
		{"The quick brown fox jumps over the lazy dog", 0x414FA339},
	}
	for _, c := range cases {
		if got := CRC32([]byte(c.in)); got != c.want {
			t.Errorf("CRC32(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestAdler32KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
	}{
		{"", 0x00000001},
		{"a", 0x00620062},
		{"abc", 0x024D0127},
		{"Wikipedia", 0x11E60398},
	}
	for _, c := range cases {
		if got := Adler32([]byte(c.in)); got != c.want {
			t.Errorf("Adler32(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		n := rng.Intn(10000)
		p := make([]byte, n)
		rng.Read(p)
		if got, want := CRC32(p), crc32.ChecksumIEEE(p); got != want {
			t.Fatalf("len %d: got %#x want %#x", n, got, want)
		}
	}
}

func TestAdler32MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		n := rng.Intn(20000)
		p := make([]byte, n)
		rng.Read(p)
		if got, want := Adler32(p), adler32.Checksum(p); got != want {
			t.Fatalf("len %d: got %#x want %#x", n, got, want)
		}
	}
}

func TestQuickIncrementalCRCEqualsOneShot(t *testing.T) {
	f := func(a, b []byte) bool {
		inc := UpdateCRC32(UpdateCRC32(0, a), b)
		all := CRC32(append(append([]byte{}, a...), b...))
		return inc == all
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIncrementalAdlerEqualsOneShot(t *testing.T) {
	f := func(a, b []byte) bool {
		inc := UpdateAdler32(UpdateAdler32(1, a), b)
		all := Adler32(append(append([]byte{}, a...), b...))
		return inc == all
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRCDetectsSingleBitFlip(t *testing.T) {
	p := bytes.Repeat([]byte("energy"), 100)
	orig := CRC32(p)
	for i := 0; i < len(p); i += 37 {
		p[i] ^= 0x10
		if CRC32(p) == orig {
			t.Fatalf("bit flip at %d not detected", i)
		}
		p[i] ^= 0x10
	}
}

func TestAdlerLongInputNoOverflow(t *testing.T) {
	p := bytes.Repeat([]byte{0xff}, 1<<20)
	if got, want := Adler32(p), adler32.Checksum(p); got != want {
		t.Fatalf("got %#x want %#x", got, want)
	}
}

func BenchmarkCRC32(b *testing.B) {
	p := make([]byte, 64*1024)
	rand.New(rand.NewSource(3)).Read(p)
	b.SetBytes(int64(len(p)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CRC32(p)
	}
}

func BenchmarkAdler32(b *testing.B) {
	p := make([]byte, 64*1024)
	rand.New(rand.NewSource(4)).Read(p)
	b.SetBytes(int64(len(p)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Adler32(p)
	}
}
