package huffman

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// buildLengthsReference is the original list-materialising package-merge
// implementation, kept verbatim as the differential oracle for the
// counting-based BuildLengthsInto. Its output — including how the unstable
// sort resolves equal-weight ties — is pinned by committed golden traces,
// so the fast path must reproduce it bit for bit.
func buildLengthsReference(freq []int, maxBits int) ([]uint8, error) {
	n := len(freq)
	lengths := make([]uint8, n)
	var used []int
	for i, f := range freq {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", i)
		}
		if f > 0 {
			used = append(used, i)
		}
	}
	switch len(used) {
	case 0:
		return lengths, nil
	case 1:
		lengths[used[0]] = 1
		return lengths, nil
	}
	if maxBits < 1 || len(used) > 1<<maxBits {
		return nil, fmt.Errorf("huffman: %d symbols cannot fit in %d bits", len(used), maxBits)
	}

	type item struct {
		weight int64
		count  []int32 // parallel to used
	}
	leaves := make([]item, len(used))
	for i, s := range used {
		c := make([]int32, len(used))
		c[i] = 1
		leaves[i] = item{weight: int64(freq[s]), count: c}
	}
	sort.Slice(leaves, func(a, b int) bool { return leaves[a].weight < leaves[b].weight })

	merge := func(a, b []item) []item {
		out := make([]item, 0, len(a)+len(b))
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i].weight <= b[j].weight {
				out = append(out, a[i])
				i++
			} else {
				out = append(out, b[j])
				j++
			}
		}
		out = append(out, a[i:]...)
		out = append(out, b[j:]...)
		return out
	}
	pairUp := func(items []item) []item {
		out := make([]item, 0, len(items)/2)
		for i := 0; i+1 < len(items); i += 2 {
			c := make([]int32, len(used))
			for k := range c {
				c[k] = items[i].count[k] + items[i+1].count[k]
			}
			out = append(out, item{weight: items[i].weight + items[i+1].weight, count: c})
		}
		return out
	}

	packages := append([]item{}, leaves...)
	for level := 1; level < maxBits; level++ {
		packages = merge(leaves, pairUp(packages))
	}
	take := 2*len(used) - 2
	counts := make([]int32, len(used))
	for _, it := range packages[:take] {
		for k, c := range it.count {
			counts[k] += c
		}
	}
	for k, s := range used {
		if counts[k] < 1 || counts[k] > int32(maxBits) {
			return nil, fmt.Errorf("huffman: package-merge produced length %d for symbol %d", counts[k], s)
		}
		lengths[s] = uint8(counts[k])
	}
	return lengths, nil
}

// TestBuildLengthsMatchesReference drives the counting package-merge
// against the historical implementation across adversarial shapes: skewed
// and flat distributions, heavy equal-weight ties (where the unstable sort
// permutation decides individual symbol lengths), tight maxBits that force
// length-limiting, and the DEFLATE alphabet sizes the encoder uses.
func TestBuildLengthsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct {
		symbols int
		maxBits int
	}{
		{286, 15}, {30, 15}, {19, 7}, {2, 1}, {4, 2}, {16, 4}, {258, 9},
	}
	for _, sh := range shapes {
		for trial := 0; trial < 200; trial++ {
			freq := make([]int, sh.symbols)
			mode := trial % 4
			for i := range freq {
				switch mode {
				case 0: // sparse geometric
					if rng.Intn(3) == 0 {
						freq[i] = 1 << rng.Intn(20)
					}
				case 1: // dense uniform with many ties
					freq[i] = 1 + rng.Intn(4)
				case 2: // all-equal (pure tie-breaking)
					freq[i] = 7
				default: // mixed heavy/light
					if rng.Intn(2) == 0 {
						freq[i] = rng.Intn(1000)
					}
				}
			}
			want, wantErr := buildLengthsReference(freq, sh.maxBits)
			got, gotErr := BuildLengths(freq, sh.maxBits)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("symbols=%d maxBits=%d trial=%d: err mismatch ref=%v got=%v",
					sh.symbols, sh.maxBits, trial, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			for s := range want {
				if want[s] != got[s] {
					t.Fatalf("symbols=%d maxBits=%d trial=%d mode=%d: symbol %d length %d, reference %d\nfreq=%v",
						sh.symbols, sh.maxBits, trial, mode, s, got[s], want[s], freq)
				}
			}
		}
	}
}

