// Package huffman implements canonical Huffman coding: optimal
// length-limited code construction via the package-merge algorithm,
// canonical code assignment, and a table-driven canonical decoder.
//
// Both the DEFLATE encoder (internal/flate) and the bzip2-style encoder
// (internal/bwt) build their codes here. Codes are produced in canonical
// (MSB-first) form; DEFLATE reverses them for its LSB-first bit stream.
package huffman

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrInvalidLengths is returned when a set of code lengths does not describe
// a valid (complete or empty) prefix code.
var ErrInvalidLengths = errors.New("huffman: invalid code lengths")

// BuildLengths computes optimal code lengths for the given symbol
// frequencies, with no code longer than maxBits, using the package-merge
// algorithm. Symbols with zero frequency get length zero. If only one symbol
// has nonzero frequency it is assigned length one (a degenerate but valid
// prefix code, as in DEFLATE).
func BuildLengths(freq []int, maxBits int) ([]uint8, error) {
	n := len(freq)
	lengths := make([]uint8, n)
	var used []int
	for i, f := range freq {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", i)
		}
		if f > 0 {
			used = append(used, i)
		}
	}
	switch len(used) {
	case 0:
		return lengths, nil
	case 1:
		lengths[used[0]] = 1
		return lengths, nil
	}
	if maxBits < 1 || len(used) > 1<<maxBits {
		return nil, fmt.Errorf("huffman: %d symbols cannot fit in %d bits", len(used), maxBits)
	}

	// Package-merge. Each item carries its weight and a count of how many
	// times each original leaf participates.
	type item struct {
		weight int64
		count  []int32 // parallel to used
	}
	leaves := make([]item, len(used))
	for i, s := range used {
		c := make([]int32, len(used))
		c[i] = 1
		leaves[i] = item{weight: int64(freq[s]), count: c}
	}
	sort.Slice(leaves, func(a, b int) bool { return leaves[a].weight < leaves[b].weight })

	merge := func(a, b []item) []item {
		out := make([]item, 0, len(a)+len(b))
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i].weight <= b[j].weight {
				out = append(out, a[i])
				i++
			} else {
				out = append(out, b[j])
				j++
			}
		}
		out = append(out, a[i:]...)
		out = append(out, b[j:]...)
		return out
	}
	pairUp := func(items []item) []item {
		out := make([]item, 0, len(items)/2)
		for i := 0; i+1 < len(items); i += 2 {
			c := make([]int32, len(used))
			for k := range c {
				c[k] = items[i].count[k] + items[i+1].count[k]
			}
			out = append(out, item{weight: items[i].weight + items[i+1].weight, count: c})
		}
		return out
	}

	packages := append([]item{}, leaves...)
	for level := 1; level < maxBits; level++ {
		packages = merge(leaves, pairUp(packages))
	}
	// The first 2n-2 items of the final list determine the lengths: the
	// length of a leaf is the number of selected items containing it.
	take := 2*len(used) - 2
	counts := make([]int32, len(used))
	for _, it := range packages[:take] {
		for k, c := range it.count {
			counts[k] += c
		}
	}
	for k, s := range used {
		if counts[k] < 1 || counts[k] > int32(maxBits) {
			return nil, fmt.Errorf("huffman: package-merge produced length %d for symbol %d", counts[k], s)
		}
		lengths[s] = uint8(counts[k])
	}
	return lengths, nil
}

// CanonicalCodes assigns canonical codes (MSB-aligned within their length)
// to the given lengths: codes of the same length are consecutive in symbol
// order, and shorter codes lexicographically precede longer ones.
func CanonicalCodes(lengths []uint8) ([]uint32, error) {
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	codes := make([]uint32, len(lengths))
	if maxLen == 0 {
		return codes, nil
	}
	if maxLen > 57 {
		return nil, ErrInvalidLengths
	}
	var count [58]int
	for _, l := range lengths {
		if l > 0 {
			count[l]++
		}
	}
	var next [58]uint32
	code := uint32(0)
	for l := uint8(1); l <= maxLen; l++ {
		code = (code + uint32(count[l-1])) << 1
		next[l] = code
	}
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		codes[s] = next[l]
		next[l]++
		if codes[s] >= 1<<l {
			return nil, ErrInvalidLengths
		}
	}
	return codes, nil
}

// KraftSum returns the Kraft sum of the lengths scaled by 2^scale where
// scale is the maximum length: sum over symbols of 2^(scale-len). A complete
// prefix code has KraftSum == 2^scale.
func KraftSum(lengths []uint8) (sum uint64, scale uint8) {
	for _, l := range lengths {
		if l > scale {
			scale = l
		}
	}
	for _, l := range lengths {
		if l > 0 {
			sum += 1 << (scale - l)
		}
	}
	return sum, scale
}

// BitSource yields one bit per call; both bitio readers satisfy it.
type BitSource interface {
	ReadBit() uint64
}

// Decoder decodes canonical Huffman codes: one bit at a time through
// Decode (the verified fallback), or via two-level lookup tables through
// DecodeLSB/DecodeMSB (see table.go). Decoders are immutable after
// construction and safe for concurrent use; the lookup tables build
// lazily, once per orientation.
type Decoder struct {
	maxLen  int
	first   [58]uint32 // first canonical code of each length
	offset  [58]int32  // index into syms of the first code of each length
	count   [58]int32
	syms    []int32 // symbols ordered by (length, symbol)
	symbols int

	lsbOnce sync.Once
	lsb     *lookupTable
	msbOnce sync.Once
	msb     *lookupTable
}

// NewDecoder builds a decoder for the given canonical code lengths. Lengths
// describing an over-subscribed code are rejected; incomplete codes are
// accepted only in the degenerate single-symbol case (as DEFLATE allows).
func NewDecoder(lengths []uint8) (*Decoder, error) {
	d := &Decoder{}
	nonzero := 0
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > d.maxLen {
			d.maxLen = int(l)
		}
		d.count[l]++
		nonzero++
	}
	if nonzero == 0 {
		return nil, ErrInvalidLengths
	}
	sum, scale := KraftSum(lengths)
	if sum > 1<<scale {
		return nil, ErrInvalidLengths
	}
	if sum < 1<<scale && nonzero != 1 {
		return nil, ErrInvalidLengths
	}
	code := uint32(0)
	idx := int32(0)
	for l := 1; l <= d.maxLen; l++ {
		code = (code + uint32(d.count[l-1])) << 1
		d.first[l] = code
		d.offset[l] = idx
		idx += d.count[l]
	}
	d.syms = make([]int32, nonzero)
	pos := make([]int32, d.maxLen+1)
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		d.syms[d.offset[l]+pos[l]] = int32(s)
		pos[l]++
	}
	d.symbols = nonzero
	return d, nil
}

// Decode reads bits from src until a complete code is seen and returns the
// decoded symbol. It returns an error if the bit pattern is not a valid code
// within the maximum length (possible only for degenerate codes or corrupt
// input past EOF, which the caller detects via the reader's sticky error).
func (d *Decoder) Decode(src BitSource) (int, error) {
	code := uint32(0)
	for l := 1; l <= d.maxLen; l++ {
		code = code<<1 | uint32(src.ReadBit())
		if c := d.count[l]; c > 0 && code >= d.first[l] && code < d.first[l]+uint32(c) {
			return int(d.syms[d.offset[l]+int32(code-d.first[l])]), nil
		}
	}
	return 0, fmt.Errorf("huffman: invalid code %#b", code)
}

// MaxLen reports the longest code length in the decoder's code.
func (d *Decoder) MaxLen() int { return d.maxLen }

// NumSymbols reports the number of symbols with nonzero code length.
func (d *Decoder) NumSymbols() int { return d.symbols }

// Reverse returns the low n bits of v in reversed order, used to emit
// canonical codes into DEFLATE's LSB-first stream.
func Reverse(v uint32, n uint8) uint32 {
	var r uint32
	for i := uint8(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}
