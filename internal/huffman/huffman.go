// Package huffman implements canonical Huffman coding: optimal
// length-limited code construction via the package-merge algorithm,
// canonical code assignment, and a table-driven canonical decoder.
//
// Both the DEFLATE encoder (internal/flate) and the bzip2-style encoder
// (internal/bwt) build their codes here. Codes are produced in canonical
// (MSB-first) form; DEFLATE reverses them for its LSB-first bit stream.
package huffman

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrInvalidLengths is returned when a set of code lengths does not describe
// a valid (complete or empty) prefix code.
var ErrInvalidLengths = errors.New("huffman: invalid code lengths")

// BuildLengths computes optimal code lengths for the given symbol
// frequencies, with no code longer than maxBits, using the package-merge
// algorithm. Symbols with zero frequency get length zero. If only one symbol
// has nonzero frequency it is assigned length one (a degenerate but valid
// prefix code, as in DEFLATE).
func BuildLengths(freq []int, maxBits int) ([]uint8, error) {
	lengths := make([]uint8, len(freq))
	if err := BuildLengthsInto(lengths, freq, maxBits); err != nil {
		return nil, err
	}
	return lengths, nil
}

// pmLeaf is one nonzero-frequency symbol in the package-merge working set.
type pmLeaf struct {
	weight int64
	sym    int32
}

// pmScratch holds the package-merge working state so steady-state encoders
// (which build two or three codes per DEFLATE block) run without per-call
// allocation. Slices grow on demand and are recycled through pmPool.
type pmScratch struct {
	leaves []pmLeaf
	prevW  []int64 // weights of the previous level's merged list
	curW   []int64
	isLeaf [][]bool // per merge level: composition of the merged list
	active []int32  // diff array over sorted leaves
}

var pmPool = sync.Pool{New: func() any { return new(pmScratch) }}

// BuildLengthsInto is BuildLengths writing into a caller-provided slice
// (len(lengths) must equal len(freq)), the zero-steady-state-allocation
// variant the pooled DEFLATE encoder uses. The result is identical to
// BuildLengths for every input, including the order-dependent resolution of
// equal-weight ties.
func BuildLengthsInto(lengths []uint8, freq []int, maxBits int) error {
	if len(lengths) != len(freq) {
		return fmt.Errorf("huffman: lengths size %d != freq size %d", len(lengths), len(freq))
	}
	for i := range lengths {
		lengths[i] = 0
	}
	ps := pmPool.Get().(*pmScratch)
	defer pmPool.Put(ps)
	leaves := ps.leaves[:0]
	for i, f := range freq {
		if f < 0 {
			ps.leaves = leaves
			return fmt.Errorf("huffman: negative frequency for symbol %d", i)
		}
		if f > 0 {
			leaves = append(leaves, pmLeaf{weight: int64(f), sym: int32(i)})
		}
	}
	ps.leaves = leaves
	n := len(leaves)
	switch n {
	case 0:
		return nil
	case 1:
		lengths[leaves[0].sym] = 1
		return nil
	}
	if maxBits < 1 || n > 1<<maxBits {
		return fmt.Errorf("huffman: %d symbols cannot fit in %d bits", n, maxBits)
	}
	// The historical implementation ordered leaves with sort.Slice, whose
	// unstable permutation decides which of two equal-weight symbols gets
	// the longer code. Golden traces pin those bytes, so the same sort (and
	// the same leaf-beats-package tie rule below) is kept deliberately.
	sort.Slice(leaves, func(a, b int) bool { return leaves[a].weight < leaves[b].weight })

	// Counting formulation of package-merge: build each level's merged list
	// (leaves merged with consecutive pairs of the previous list) recording
	// only weights and leaf/package composition, then walk back down from
	// the final list's first 2n-2 items. A taken package at one level
	// activates its two children at the level below; taken leaves are
	// always a prefix of the sorted leaf array, so a diff array over that
	// prefix accumulates every leaf's final code length.
	levels := maxBits - 1
	for len(ps.isLeaf) < levels {
		ps.isLeaf = append(ps.isLeaf, nil)
	}
	prevW := ps.prevW[:0]
	for _, lf := range leaves {
		prevW = append(prevW, lf.weight)
	}
	curW := ps.curW[:0]
	for lvl := 0; lvl < levels; lvl++ {
		npkg := len(prevW) / 2
		curW = curW[:0]
		flags := ps.isLeaf[lvl][:0]
		li, pi := 0, 0
		for li < n || pi < npkg {
			if li < n && (pi >= npkg || leaves[li].weight <= prevW[2*pi]+prevW[2*pi+1]) {
				curW = append(curW, leaves[li].weight)
				flags = append(flags, true)
				li++
			} else {
				curW = append(curW, prevW[2*pi]+prevW[2*pi+1])
				flags = append(flags, false)
				pi++
			}
		}
		ps.isLeaf[lvl] = flags
		// The merged list becomes the next level's package input.
		prevW, curW = curW, prevW
	}
	ps.prevW, ps.curW = prevW, curW

	active := ps.active
	if cap(active) < n+1 {
		active = make([]int32, n+1)
		ps.active = active[:0]
	}
	active = active[:n+1]
	clear(active)
	take := 2*n - 2
	for lvl := levels - 1; lvl >= 0; lvl-- {
		flags := ps.isLeaf[lvl]
		if take > len(flags) {
			return fmt.Errorf("huffman: package-merge take %d exceeds list %d", take, len(flags))
		}
		leafTaken := 0
		for _, isLeaf := range flags[:take] {
			if isLeaf {
				leafTaken++
			}
		}
		active[0]++
		active[leafTaken]--
		take = 2 * (take - leafTaken)
	}
	// The bottom list is the leaves themselves.
	if take > n {
		return fmt.Errorf("huffman: package-merge take %d exceeds %d leaves", take, n)
	}
	active[0]++
	active[take]--

	run := int32(0)
	for k := 0; k < n; k++ {
		run += active[k]
		if run < 1 || run > int32(maxBits) {
			return fmt.Errorf("huffman: package-merge produced length %d for symbol %d", run, leaves[k].sym)
		}
		lengths[leaves[k].sym] = uint8(run)
	}
	return nil
}

// CanonicalCodes assigns canonical codes (MSB-aligned within their length)
// to the given lengths: codes of the same length are consecutive in symbol
// order, and shorter codes lexicographically precede longer ones.
func CanonicalCodes(lengths []uint8) ([]uint32, error) {
	codes := make([]uint32, len(lengths))
	if err := CanonicalCodesInto(codes, lengths); err != nil {
		return nil, err
	}
	return codes, nil
}

// CanonicalCodesInto is CanonicalCodes writing into a caller-provided slice
// (len(codes) must equal len(lengths)); encoders that rebuild codes per
// block use it to stay allocation-free.
func CanonicalCodesInto(codes []uint32, lengths []uint8) error {
	if len(codes) != len(lengths) {
		return ErrInvalidLengths
	}
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	clear(codes)
	if maxLen == 0 {
		return nil
	}
	if maxLen > 57 {
		return ErrInvalidLengths
	}
	var count [58]int
	for _, l := range lengths {
		if l > 0 {
			count[l]++
		}
	}
	var next [58]uint32
	code := uint32(0)
	for l := uint8(1); l <= maxLen; l++ {
		code = (code + uint32(count[l-1])) << 1
		next[l] = code
	}
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		codes[s] = next[l]
		next[l]++
		if codes[s] >= 1<<l {
			return ErrInvalidLengths
		}
	}
	return nil
}

// KraftSum returns the Kraft sum of the lengths scaled by 2^scale where
// scale is the maximum length: sum over symbols of 2^(scale-len). A complete
// prefix code has KraftSum == 2^scale.
func KraftSum(lengths []uint8) (sum uint64, scale uint8) {
	for _, l := range lengths {
		if l > scale {
			scale = l
		}
	}
	for _, l := range lengths {
		if l > 0 {
			sum += 1 << (scale - l)
		}
	}
	return sum, scale
}

// BitSource yields one bit per call; both bitio readers satisfy it.
type BitSource interface {
	ReadBit() uint64
}

// Decoder decodes canonical Huffman codes: one bit at a time through
// Decode (the verified fallback), or via two-level lookup tables through
// DecodeLSB/DecodeMSB (see table.go). Decoders are immutable after
// construction and safe for concurrent use; the lookup tables build
// lazily, once per orientation.
type Decoder struct {
	maxLen  int
	first   [58]uint32 // first canonical code of each length
	offset  [58]int32  // index into syms of the first code of each length
	count   [58]int32
	syms    []int32 // symbols ordered by (length, symbol)
	symbols int

	lsbOnce sync.Once
	lsb     *lookupTable
	msbOnce sync.Once
	msb     *lookupTable
}

// NewDecoder builds a decoder for the given canonical code lengths. Lengths
// describing an over-subscribed code are rejected; incomplete codes are
// accepted only in the degenerate single-symbol case (as DEFLATE allows).
func NewDecoder(lengths []uint8) (*Decoder, error) {
	d := &Decoder{}
	nonzero := 0
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > d.maxLen {
			d.maxLen = int(l)
		}
		d.count[l]++
		nonzero++
	}
	if nonzero == 0 {
		return nil, ErrInvalidLengths
	}
	sum, scale := KraftSum(lengths)
	if sum > 1<<scale {
		return nil, ErrInvalidLengths
	}
	if sum < 1<<scale && nonzero != 1 {
		return nil, ErrInvalidLengths
	}
	code := uint32(0)
	idx := int32(0)
	for l := 1; l <= d.maxLen; l++ {
		code = (code + uint32(d.count[l-1])) << 1
		d.first[l] = code
		d.offset[l] = idx
		idx += d.count[l]
	}
	d.syms = make([]int32, nonzero)
	pos := make([]int32, d.maxLen+1)
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		d.syms[d.offset[l]+pos[l]] = int32(s)
		pos[l]++
	}
	d.symbols = nonzero
	return d, nil
}

// Decode reads bits from src until a complete code is seen and returns the
// decoded symbol. It returns an error if the bit pattern is not a valid code
// within the maximum length (possible only for degenerate codes or corrupt
// input past EOF, which the caller detects via the reader's sticky error).
func (d *Decoder) Decode(src BitSource) (int, error) {
	code := uint32(0)
	for l := 1; l <= d.maxLen; l++ {
		code = code<<1 | uint32(src.ReadBit())
		if c := d.count[l]; c > 0 && code >= d.first[l] && code < d.first[l]+uint32(c) {
			return int(d.syms[d.offset[l]+int32(code-d.first[l])]), nil
		}
	}
	return 0, fmt.Errorf("huffman: invalid code %#b", code)
}

// MaxLen reports the longest code length in the decoder's code.
func (d *Decoder) MaxLen() int { return d.maxLen }

// NumSymbols reports the number of symbols with nonzero code length.
func (d *Decoder) NumSymbols() int { return d.symbols }

// Reverse returns the low n bits of v in reversed order, used to emit
// canonical codes into DEFLATE's LSB-first stream.
func Reverse(v uint32, n uint8) uint32 {
	var r uint32
	for i := uint8(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}
