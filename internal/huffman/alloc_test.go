//go:build !race

package huffman

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// TestDecodeLSBZeroAlloc: after the lazy table build, the fast path must
// not allocate per symbol — it is the inflate inner loop.
func TestDecodeLSBZeroAlloc(t *testing.T) {
	lengths := tableCodes()["deep15"]
	d, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	syms := randomSymbols(lengths, 512, 21)
	enc := encodeSymbolsLSB(t, lengths, syms)
	d.lsbTable() // build outside the measured region

	br := bitio.NewLSBReader(bytes.NewReader(enc))
	allocs := testing.AllocsPerRun(64, func() {
		if _, err := d.DecodeLSB(br); err != nil {
			// Reset and continue once the stream drains.
			br = bitio.NewLSBReader(bytes.NewReader(enc))
		}
	})
	if allocs > 0.5 {
		t.Errorf("DecodeLSB allocates %.2f objects per symbol, want 0", allocs)
	}
}

// TestBuildLengthsIntoZeroSteadyStateAllocs pins the pooled scratch: after
// warm-up, repeated builds over the DEFLATE lit/len alphabet stay within
// sort.Slice's couple of interface/closure allocations — the package-merge
// lists themselves must all come from the pooled scratch. (Excluded under
// -race, whose instrumentation inflates the count.)
func TestBuildLengthsIntoZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	freq := make([]int, 286)
	for i := range freq {
		freq[i] = rng.Intn(5000)
	}
	lengths := make([]uint8, 286)
	if err := BuildLengthsInto(lengths, freq, 15); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := BuildLengthsInto(lengths, freq, 15); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 4 {
		t.Fatalf("BuildLengthsInto allocates %.1f per call, want <= 4", avg)
	}
}
