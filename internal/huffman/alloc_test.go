//go:build !race

package huffman

import (
	"bytes"
	"testing"

	"repro/internal/bitio"
)

// TestDecodeLSBZeroAlloc: after the lazy table build, the fast path must
// not allocate per symbol — it is the inflate inner loop.
func TestDecodeLSBZeroAlloc(t *testing.T) {
	lengths := tableCodes()["deep15"]
	d, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	syms := randomSymbols(lengths, 512, 21)
	enc := encodeSymbolsLSB(t, lengths, syms)
	d.lsbTable() // build outside the measured region

	br := bitio.NewLSBReader(bytes.NewReader(enc))
	allocs := testing.AllocsPerRun(64, func() {
		if _, err := d.DecodeLSB(br); err != nil {
			// Reset and continue once the stream drains.
			br = bitio.NewLSBReader(bytes.NewReader(enc))
		}
	})
	if allocs > 0.5 {
		t.Errorf("DecodeLSB allocates %.2f objects per symbol, want 0", allocs)
	}
}
