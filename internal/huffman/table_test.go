package huffman

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// encodeSymbolsLSB writes syms through the canonical code in DEFLATE's
// LSB-first orientation.
func encodeSymbolsLSB(t *testing.T, lengths []uint8, syms []int) []byte {
	t.Helper()
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		t.Fatalf("CanonicalCodes: %v", err)
	}
	var buf bytes.Buffer
	bw := bitio.NewLSBWriter(&buf)
	for _, s := range syms {
		bw.WriteBits(uint64(Reverse(codes[s], lengths[s])), uint(lengths[s]))
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// encodeSymbolsMSB writes syms in bzip2's MSB-first orientation.
func encodeSymbolsMSB(t *testing.T, lengths []uint8, syms []int) []byte {
	t.Helper()
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		t.Fatalf("CanonicalCodes: %v", err)
	}
	var buf bytes.Buffer
	bw := bitio.NewMSBWriter(&buf)
	for _, s := range syms {
		bw.WriteBits(uint64(codes[s]), uint(lengths[s]))
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// randomSymbols draws n symbols with nonzero code length.
func randomSymbols(lengths []uint8, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	var live []int
	for s, l := range lengths {
		if l > 0 {
			live = append(live, s)
		}
	}
	syms := make([]int, n)
	for i := range syms {
		syms[i] = live[rng.Intn(len(live))]
	}
	return syms
}

// tableCodes are length vectors covering every table shape: all-root,
// root+second-level, max-depth 15-bit DEFLATE codes, 20-bit bzip2-style
// codes, and the degenerate single-symbol code.
func tableCodes() map[string][]uint8 {
	// Complete code with lengths 1..14 plus two 15-bit codes:
	// sum 2^-l = 1/2+...+1/2^14 + 2/2^15 = 1.
	deep15 := make([]uint8, 16)
	for i := 0; i < 14; i++ {
		deep15[i] = uint8(i + 1)
	}
	deep15[14], deep15[15] = 15, 15

	// Same construction pushed to 20 bits for the bzip2 orientation.
	deep20 := make([]uint8, 21)
	for i := 0; i < 19; i++ {
		deep20[i] = uint8(i + 1)
	}
	deep20[19], deep20[20] = 20, 20

	// Flat 8-bit code: exercises pure root decoding.
	flat := make([]uint8, 256)
	for i := range flat {
		flat[i] = 8
	}

	// Mixed code straddling the 9-bit root boundary: 2 codes of 1 and 2
	// bits, the rest 10..12 bits. Kraft: 1/2 + 1/4 = 3/4; remaining 1/4 =
	// 256/2^10 with e.g. 128x10-bit... keep it simple: use BuildLengths on
	// a skewed frequency vector instead, which produces realistic shapes.
	return map[string][]uint8{
		"deep15": deep15,
		"deep20": deep20,
		"flat8":  flat,
		"single": {0, 1}, // degenerate: symbol 1, length 1
	}
}

// TestTableMatchesWalkerLSB holds DecodeLSB equal to the bit-at-a-time
// walker over random symbol streams for every table shape.
func TestTableMatchesWalkerLSB(t *testing.T) {
	for name, lengths := range tableCodes() {
		d, err := NewDecoder(lengths)
		if err != nil {
			t.Fatalf("%s: NewDecoder: %v", name, err)
		}
		if name == "deep15" && len(d.lsbTable().sub) == 0 {
			t.Fatalf("deep15 built no second-level table")
		}
		syms := randomSymbols(lengths, 4096, 1)
		enc := encodeSymbolsLSB(t, lengths, syms)

		fast := bitio.NewLSBReader(bytes.NewReader(enc))
		slow := bitio.NewLSBReader(bytes.NewReader(enc))
		for i, want := range syms {
			gf, err := d.DecodeLSB(fast)
			if err != nil {
				t.Fatalf("%s sym %d: DecodeLSB: %v", name, i, err)
			}
			gs, err := d.Decode(slow)
			if err != nil {
				t.Fatalf("%s sym %d: Decode: %v", name, i, err)
			}
			if gf != want || gs != want {
				t.Fatalf("%s sym %d: fast=%d slow=%d want=%d", name, i, gf, gs, want)
			}
		}
	}
}

// TestTableMatchesWalkerMSB is the MSB-orientation twin, covering the
// 20-bit codes the bzip2-style coder can emit.
func TestTableMatchesWalkerMSB(t *testing.T) {
	for name, lengths := range tableCodes() {
		d, err := NewDecoder(lengths)
		if err != nil {
			t.Fatalf("%s: NewDecoder: %v", name, err)
		}
		if name == "deep20" && len(d.msbTable().sub) == 0 {
			t.Fatalf("deep20 built no second-level table")
		}
		syms := randomSymbols(lengths, 4096, 2)
		enc := encodeSymbolsMSB(t, lengths, syms)

		fast := bitio.NewMSBReader(bytes.NewReader(enc))
		slow := bitio.NewMSBReader(bytes.NewReader(enc))
		for i, want := range syms {
			gf, err := d.DecodeMSB(fast)
			if err != nil {
				t.Fatalf("%s sym %d: DecodeMSB: %v", name, i, err)
			}
			gs, err := d.Decode(slow)
			if err != nil {
				t.Fatalf("%s sym %d: Decode: %v", name, i, err)
			}
			if gf != want || gs != want {
				t.Fatalf("%s sym %d: fast=%d slow=%d want=%d", name, i, gf, gs, want)
			}
		}
	}
}

// TestTableBuiltCodes runs the differential over codes BuildLengths
// produces from skewed frequencies — realistic DEFLATE-shaped trees.
func TestTableBuiltCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		freq := make([]int, 80+rng.Intn(200))
		// Fibonacci-ish growth drives tree depth toward the limit.
		a, b := 1, 1
		for i := range freq {
			if rng.Intn(3) == 0 {
				freq[i] = 0
				continue
			}
			freq[i] = a
			a, b = b, a+b
			if a > 1<<28 {
				a, b = 1, 1
			}
		}
		lengths, err := BuildLengths(freq, 15)
		if err != nil {
			t.Fatalf("BuildLengths: %v", err)
		}
		nonzero := 0
		for _, l := range lengths {
			if l > 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			continue
		}
		d, err := NewDecoder(lengths)
		if err != nil {
			t.Fatalf("NewDecoder: %v", err)
		}
		syms := randomSymbols(lengths, 2048, int64(trial))
		enc := encodeSymbolsLSB(t, lengths, syms)
		fast := bitio.NewLSBReader(bytes.NewReader(enc))
		for i, want := range syms {
			got, err := d.DecodeLSB(fast)
			if err != nil {
				t.Fatalf("trial %d sym %d: %v", trial, i, err)
			}
			if got != want {
				t.Fatalf("trial %d sym %d: got %d want %d", trial, i, got, want)
			}
		}
	}
}

// TestTableDegenerateHole: the unassigned pattern of the single-symbol
// code must error, not loop or return garbage.
func TestTableDegenerateHole(t *testing.T) {
	d, err := NewDecoder([]uint8{1, 0})
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	// Stream of all-ones: the degenerate code assigns only "0".
	br := bitio.NewLSBReader(bytes.NewReader([]byte{0xff}))
	if _, err := d.DecodeLSB(br); err == nil {
		t.Fatal("hole pattern decoded without error")
	}
}

// TestTableTruncatedStream: decoding past the end must surface the
// reader's sticky error rather than fabricate symbols forever.
func TestTableTruncatedStream(t *testing.T) {
	lengths := tableCodes()["deep15"]
	d, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	syms := randomSymbols(lengths, 64, 3)
	enc := encodeSymbolsLSB(t, lengths, syms)
	br := bitio.NewLSBReader(bytes.NewReader(enc[:len(enc)/2]))
	for i := 0; i < len(syms)+16; i++ {
		if _, err := d.DecodeLSB(br); err != nil {
			return // surfaced in finite time
		}
	}
	t.Fatal("truncated stream never surfaced an error")
}

func BenchmarkDecodeWalker(b *testing.B) { benchDecode(b, false) }
func BenchmarkDecodeTable(b *testing.B)  { benchDecode(b, true) }

func benchDecode(b *testing.B, table bool) {
	freq := make([]int, 286)
	rng := rand.New(rand.NewSource(11))
	for i := range freq {
		freq[i] = 1 + rng.Intn(1000)
	}
	lengths, err := BuildLengths(freq, 15)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDecoder(lengths)
	if err != nil {
		b.Fatal(err)
	}
	syms := randomSymbols(lengths, 1<<16, 13)
	codes, _ := CanonicalCodes(lengths)
	var buf bytes.Buffer
	bw := bitio.NewLSBWriter(&buf)
	for _, s := range syms {
		bw.WriteBits(uint64(Reverse(codes[s], lengths[s])), uint(lengths[s]))
	}
	if err := bw.Flush(); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := bitio.NewLSBReader(bytes.NewReader(enc))
		for j := 0; j < len(syms); j++ {
			var err error
			if table {
				_, err = d.DecodeLSB(br)
			} else {
				_, err = d.Decode(br)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
