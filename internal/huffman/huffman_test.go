package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func TestBuildLengthsSimple(t *testing.T) {
	// Classic example: frequencies 1,1,2,4 should give lengths 3,3,2,1.
	lens, err := BuildLengths([]int{1, 1, 2, 4}, 15)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{3, 3, 2, 1}
	for i := range want {
		if lens[i] != want[i] {
			t.Errorf("symbol %d: got len %d, want %d (all: %v)", i, lens[i], want[i], lens)
		}
	}
}

func TestBuildLengthsZeroFreqs(t *testing.T) {
	lens, err := BuildLengths([]int{0, 5, 0, 7, 0}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lens[0] != 0 || lens[2] != 0 || lens[4] != 0 {
		t.Errorf("zero-frequency symbols must get zero length: %v", lens)
	}
	if lens[1] != 1 || lens[3] != 1 {
		t.Errorf("two symbols should get one bit each: %v", lens)
	}
}

func TestBuildLengthsSingleSymbol(t *testing.T) {
	lens, err := BuildLengths([]int{0, 0, 9, 0}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lens[2] != 1 {
		t.Errorf("single used symbol should get length 1, got %v", lens)
	}
}

func TestBuildLengthsEmpty(t *testing.T) {
	lens, err := BuildLengths([]int{0, 0, 0}, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lens {
		if l != 0 {
			t.Fatalf("expected all-zero lengths, got %v", lens)
		}
	}
}

func TestBuildLengthsRespectsMaxBits(t *testing.T) {
	// Exponential frequencies force deep trees without a limit.
	freq := make([]int, 20)
	f := 1
	for i := range freq {
		freq[i] = f
		f *= 2
		if f > 1<<28 {
			f = 1 << 28
		}
	}
	for _, maxBits := range []int{5, 7, 9, 15} {
		lens, err := BuildLengths(freq, maxBits)
		if err != nil {
			t.Fatalf("maxBits %d: %v", maxBits, err)
		}
		for s, l := range lens {
			if int(l) > maxBits {
				t.Errorf("maxBits %d: symbol %d got length %d", maxBits, s, l)
			}
		}
		if sum, scale := KraftSum(lens); sum != 1<<scale {
			t.Errorf("maxBits %d: Kraft sum %d != 2^%d", maxBits, sum, scale)
		}
	}
}

func TestBuildLengthsNegativeFreq(t *testing.T) {
	if _, err := BuildLengths([]int{1, -1}, 15); err == nil {
		t.Fatal("expected error for negative frequency")
	}
}

func TestBuildLengthsTooManySymbols(t *testing.T) {
	freq := make([]int, 10)
	for i := range freq {
		freq[i] = 1
	}
	if _, err := BuildLengths(freq, 3); err == nil {
		t.Fatal("expected error: 10 symbols cannot fit in 3 bits")
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	lens := []uint8{3, 3, 3, 3, 3, 2, 4, 4}
	codes, err := CanonicalCodes(lens)
	if err != nil {
		t.Fatal(err)
	}
	// Every pair must be prefix-free.
	for i := range lens {
		for j := range lens {
			if i == j || lens[i] == 0 || lens[j] == 0 || lens[i] > lens[j] {
				continue
			}
			if codes[j]>>(lens[j]-lens[i]) == codes[i] {
				t.Errorf("code %d (%0*b) is a prefix of code %d (%0*b)",
					i, lens[i], codes[i], j, lens[j], codes[j])
			}
		}
	}
}

func TestKraftOptimality(t *testing.T) {
	// package-merge must not beat the entropy bound and must be within one
	// bit per symbol of it on a simple distribution.
	freq := []int{45, 13, 12, 16, 9, 5}
	lens, err := BuildLengths(freq, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Known optimal Huffman lengths for this classic CLRS example.
	want := []uint8{1, 3, 3, 3, 4, 4}
	var gotCost, wantCost int
	for i := range freq {
		gotCost += freq[i] * int(lens[i])
		wantCost += freq[i] * int(want[i])
	}
	if gotCost != wantCost {
		t.Errorf("total cost %d != optimal %d (lens %v)", gotCost, wantCost, lens)
	}
}

func roundTrip(t *testing.T, data []byte, maxBits int) {
	t.Helper()
	freq := make([]int, 256)
	for _, b := range data {
		freq[b]++
	}
	lens, err := BuildLengths(freq, maxBits)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := CanonicalCodes(lens)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := bitio.NewMSBWriter(&buf)
	for _, b := range data {
		w.WriteBits(uint64(codes[b]), uint(lens[b]))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lens)
	if err != nil {
		t.Fatal(err)
	}
	r := bitio.NewMSBReader(&buf)
	for i, want := range data {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("decode at %d: %v", i, err)
		}
		if byte(got) != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	roundTrip(t, []byte("this is a test of the emergency huffman broadcasting system"), 15)
}

func TestEncodeDecodeRoundTripSkewed(t *testing.T) {
	data := bytes.Repeat([]byte{'a'}, 1000)
	data = append(data, bytes.Repeat([]byte{'b'}, 10)...)
	data = append(data, 'c')
	roundTrip(t, data, 15)
	roundTrip(t, data, 4)
}

func TestQuickRoundTripRandomDistributions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000) + 1
		alpha := rng.Intn(60) + 2
		data := make([]byte, n)
		for i := range data {
			// Zipf-ish skew.
			v := rng.Intn(alpha)
			if rng.Intn(3) > 0 {
				v = rng.Intn(1 + alpha/4)
			}
			data[i] = byte(v)
		}
		freq := make([]int, 256)
		for _, b := range data {
			freq[b]++
		}
		lens, err := BuildLengths(freq, 15)
		if err != nil {
			return false
		}
		codes, err := CanonicalCodes(lens)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		w := bitio.NewMSBWriter(&buf)
		for _, b := range data {
			w.WriteBits(uint64(codes[b]), uint(lens[b]))
		}
		if w.Flush() != nil {
			return false
		}
		dec, err := NewDecoder(lens)
		if err != nil {
			return false
		}
		r := bitio.NewMSBReader(&buf)
		for _, want := range data {
			got, err := dec.Decode(r)
			if err != nil || byte(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNewDecoderRejectsOversubscribed(t *testing.T) {
	// Three codes of length 1 oversubscribe the code space.
	if _, err := NewDecoder([]uint8{1, 1, 1}); err == nil {
		t.Fatal("expected oversubscribed lengths to be rejected")
	}
}

func TestNewDecoderRejectsIncomplete(t *testing.T) {
	// Two symbols with lengths {1,2} leave code space unused.
	if _, err := NewDecoder([]uint8{1, 2}); err == nil {
		t.Fatal("expected incomplete lengths to be rejected")
	}
}

func TestNewDecoderAcceptsDegenerateSingle(t *testing.T) {
	d, err := NewDecoder([]uint8{0, 1, 0})
	if err != nil {
		t.Fatalf("single-symbol code must be accepted: %v", err)
	}
	var buf bytes.Buffer
	w := bitio.NewMSBWriter(&buf)
	w.WriteBits(0, 1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := d.Decode(bitio.NewMSBReader(&buf))
	if err != nil || got != 1 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestReverse(t *testing.T) {
	cases := []struct {
		v    uint32
		n    uint8
		want uint32
	}{
		{0b1, 1, 0b1},
		{0b10, 2, 0b01},
		{0b110, 3, 0b011},
		{0b10110, 5, 0b01101},
	}
	for _, c := range cases {
		if got := Reverse(c.v, c.n); got != c.want {
			t.Errorf("Reverse(%b,%d) = %b, want %b", c.v, c.n, got, c.want)
		}
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	f := func(v uint32, n uint8) bool {
		n = n%32 + 1
		v &= (1 << n) - 1
		return Reverse(Reverse(v, n), n) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildLengths286(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	freq := make([]int, 286)
	for i := range freq {
		freq[i] = rng.Intn(1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildLengths(freq, 15); err != nil {
			b.Fatal(err)
		}
	}
}
