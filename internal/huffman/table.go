package huffman

// Two-level lookup-table decoding (the zlib inflate strategy): a root
// table indexed by the next rootBits of the stream resolves every code of
// length <= rootBits in one probe; longer codes hit a root entry that
// points at a second-level table indexed by the remaining bits. The
// bit-at-a-time walker in Decode stays as the verified fallback — the
// tables are an equivalent projection of the same canonical code, and the
// differential tests hold the two paths equal.

import (
	"fmt"

	"repro/internal/bitio"
)

// Root table index widths. DEFLATE codes are at most 15 bits, so 9 root
// bits resolve the overwhelmingly common short codes in one probe while
// keeping the table 512 entries; the bzip2-style coder allows 20-bit
// codes and gets a 10-bit root.
const (
	lsbRootBits = 9
	msbRootBits = 10
)

// tableEntry is one lookup slot. len == 0 marks a bit pattern no code
// produces (possible only for the degenerate single-symbol code). A root
// entry with bits != 0 is a pointer: sym is the offset of its
// second-level table and bits its index width.
type tableEntry struct {
	sym  int32
	len  uint8
	bits uint8
}

// lookupTable is a decoding table over one bit orientation.
type lookupTable struct {
	rootBits uint
	rootMask uint64
	peek     uint // maxLen: the peek window covering any full code
	root     []tableEntry
	sub      []tableEntry
}

// buildTable constructs the two-level table for the decoder's canonical
// code. msb selects the bzip2 orientation (codes read MSB-first); the
// DEFLATE orientation indexes by the bit-reversed code because the stream
// transmits codes LSB-first.
func (d *Decoder) buildTable(msb bool) *lookupTable {
	rootBits := uint(lsbRootBits)
	if msb {
		rootBits = msbRootBits
	}
	if maxLen := uint(d.maxLen); rootBits > maxLen {
		rootBits = maxLen
	}
	t := &lookupTable{
		rootBits: rootBits,
		rootMask: 1<<rootBits - 1,
		peek:     uint(d.maxLen),
		root:     make([]tableEntry, 1<<rootBits),
	}

	// Walk symbols in canonical (length, symbol) order, regenerating each
	// code the same way the walker's first/offset arrays imply it.
	type longCode struct {
		sym  int32
		len  uint8
		code uint32
	}
	var long []longCode
	for l := 1; l <= d.maxLen; l++ {
		c := d.count[l]
		if c == 0 {
			continue
		}
		for i := int32(0); i < c; i++ {
			sym := d.syms[d.offset[l]+i]
			code := d.first[l] + uint32(i)
			if uint(l) <= rootBits {
				t.fillRoot(sym, uint8(l), code, msb)
			} else {
				long = append(long, longCode{sym: sym, len: uint8(l), code: code})
			}
		}
	}

	// Group long codes by their first rootBits transmitted bits (the
	// canonical MSB prefix) and build one second-level table per group,
	// sized for the longest code in the group.
	for i := 0; i < len(long); {
		prefix := long[i].code >> (uint(long[i].len) - rootBits)
		j := i
		maxLen := uint(0)
		for j < len(long) && long[j].code>>(uint(long[j].len)-rootBits) == prefix {
			if l := uint(long[j].len); l > maxLen {
				maxLen = l
			}
			j++
		}
		subBits := maxLen - rootBits
		off := int32(len(t.sub))
		t.sub = append(t.sub, make([]tableEntry, 1<<subBits)...)
		for _, lc := range long[i:j] {
			tailBits := uint(lc.len) - rootBits
			tail := lc.code & (1<<tailBits - 1)
			if msb {
				// MSB: the tail arrives left-aligned within subBits.
				base := tail << (subBits - tailBits)
				for k := uint32(0); k < 1<<(subBits-tailBits); k++ {
					t.sub[off+int32(base+k)] = tableEntry{sym: lc.sym, len: lc.len}
				}
			} else {
				// LSB: the tail arrives bit-reversed in the low bits.
				base := Reverse(tail, uint8(tailBits))
				for k := uint32(0); k < 1<<(subBits-tailBits); k++ {
					t.sub[off+int32(base|k<<tailBits)] = tableEntry{sym: lc.sym, len: lc.len}
				}
			}
		}
		// Point the root slot at the group's table.
		slot := prefix
		if !msb {
			slot = Reverse(prefix, uint8(rootBits))
		}
		t.root[slot] = tableEntry{sym: off, bits: uint8(subBits)}
		i = j
	}
	return t
}

// fillRoot replicates a short code across every root slot sharing its
// leading transmitted bits.
func (t *lookupTable) fillRoot(sym int32, l uint8, code uint32, msb bool) {
	if msb {
		base := code << (t.rootBits - uint(l))
		for k := uint32(0); k < 1<<(t.rootBits-uint(l)); k++ {
			t.root[base+k] = tableEntry{sym: sym, len: l}
		}
		return
	}
	base := Reverse(code, l)
	for k := uint32(0); k < 1<<(t.rootBits-uint(l)); k++ {
		t.root[base|k<<uint(l)] = tableEntry{sym: sym, len: l}
	}
}

// lsbTable / msbTable build lazily: a decoder pays only for the
// orientation it actually decodes with.
func (d *Decoder) lsbTable() *lookupTable {
	d.lsbOnce.Do(func() { d.lsb = d.buildTable(false) })
	return d.lsb
}

func (d *Decoder) msbTable() *lookupTable {
	d.msbOnce.Do(func() { d.msb = d.buildTable(true) })
	return d.msb
}

// DecodeLSB decodes one symbol from an LSB-first stream (DEFLATE's
// orientation) using the lookup tables: one peek, at most two probes, one
// consume. Reading past the end of the stream surfaces through the
// reader's sticky error, exactly as the bit-at-a-time path does.
func (d *Decoder) DecodeLSB(br *bitio.LSBReader) (int, error) {
	t := d.lsbTable()
	v := br.PeekBits(t.peek)
	e := t.root[v&t.rootMask]
	if e.bits != 0 {
		e = t.sub[e.sym+int32(v>>t.rootBits&(1<<e.bits-1))]
	}
	if e.len == 0 {
		return 0, fmt.Errorf("huffman: invalid code %#b", v)
	}
	br.Consume(uint(e.len))
	if err := br.Err(); err != nil {
		return 0, err
	}
	return int(e.sym), nil
}

// DecodeMSB decodes one symbol from an MSB-first stream (the bzip2-style
// orientation) using the lookup tables.
func (d *Decoder) DecodeMSB(br *bitio.MSBReader) (int, error) {
	t := d.msbTable()
	v := br.PeekBits(t.peek)
	e := t.root[v>>(t.peek-t.rootBits)]
	if e.bits != 0 {
		shift := t.peek - t.rootBits - uint(e.bits)
		e = t.sub[e.sym+int32(v>>shift&(1<<e.bits-1))]
	}
	if e.len == 0 {
		return 0, fmt.Errorf("huffman: invalid code %#b", v)
	}
	br.Consume(uint(e.len))
	if err := br.Err(); err != nil {
		return 0, err
	}
	return int(e.sym), nil
}
