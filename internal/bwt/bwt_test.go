package bwt

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTransformKnownExample(t *testing.T) {
	last, ptr := Transform([]byte("banana"))
	if string(last) != "nnbaaa" {
		t.Errorf("BWT(banana) last column = %q, want nnbaaa", last)
	}
	if ptr != 3 {
		t.Errorf("BWT(banana) ptr = %d, want 3", ptr)
	}
}

func TestTransformInverse(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		[]byte("a"),
		[]byte("ab"),
		[]byte("aaaa"),
		[]byte("banana"),
		[]byte("abracadabra"),
		bytes.Repeat([]byte("ab"), 500),
		[]byte(strings.Repeat("the burrows wheeler transform groups characters. ", 100)),
	}
	for _, c := range cases {
		last, ptr := Transform(c)
		got := Inverse(last, ptr)
		if !bytes.Equal(got, c) {
			t.Errorf("inverse(transform(%q...)) mismatch (len %d)", truncate(c), len(c))
		}
	}
}

func truncate(b []byte) []byte {
	if len(b) > 20 {
		return b[:20]
	}
	return b
}

func TestQuickTransformInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000)
		data := make([]byte, n)
		alpha := 1 + rng.Intn(255)
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		last, ptr := Transform(data)
		return bytes.Equal(Inverse(last, ptr), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformIsPermutation(t *testing.T) {
	data := []byte("mississippi river delta")
	last, _ := Transform(data)
	a := append([]byte{}, data...)
	b := append([]byte{}, last...)
	countsA, countsB := map[byte]int{}, map[byte]int{}
	for i := range a {
		countsA[a[i]]++
		countsB[b[i]]++
	}
	for k, v := range countsA {
		if countsB[k] != v {
			t.Fatalf("BWT is not a permutation: byte %q count %d vs %d", k, v, countsB[k])
		}
	}
}

func TestMTFRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 0, 0},
		[]byte("aaaabbbbcccc"),
		[]byte{255, 0, 255, 1, 128},
	}
	for _, c := range cases {
		if got := mtfDecode(mtfEncode(c)); !bytes.Equal(got, c) {
			t.Errorf("mtf round trip failed for %v", c)
		}
	}
}

func TestMTFFrontBias(t *testing.T) {
	// Runs map to zeros after the first occurrence.
	enc := mtfEncode([]byte("aaaa"))
	if enc[1] != 0 || enc[2] != 0 || enc[3] != 0 {
		t.Errorf("run should encode to zeros: %v", enc)
	}
}

func TestQuickMTFInverse(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(mtfDecode(mtfEncode(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRLE1RoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("abc"),
		[]byte("aaaa"),
		[]byte("aaaaa"),
		bytes.Repeat([]byte{'x'}, 258),
		bytes.Repeat([]byte{'x'}, 259),
		bytes.Repeat([]byte{'x'}, 260),
		bytes.Repeat([]byte{'x'}, 1000),
		append(bytes.Repeat([]byte{'a'}, 4), bytes.Repeat([]byte{'b'}, 4)...),
	}
	for _, c := range cases {
		enc := rle1Encode(c)
		got, err := rle1Decode(enc)
		if err != nil {
			t.Fatalf("decode(%d bytes): %v", len(c), err)
		}
		if !bytes.Equal(got, c) {
			t.Errorf("rle1 round trip failed for len %d", len(c))
		}
	}
}

func TestQuickRLE1Inverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		data := make([]byte, n)
		// Few distinct values to generate runs.
		for i := range data {
			data[i] = byte(rng.Intn(3))
		}
		enc := rle1Encode(data)
		got, err := rle1Decode(enc)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRLE2ZeroRuns(t *testing.T) {
	for run := 0; run <= 200; run++ {
		mtf := make([]byte, run)
		mtf = append(mtf, 5) // terminator value so the run flushes
		syms := rle2Encode(mtf)
		got, err := rle2Decode(syms, 0)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !bytes.Equal(got, mtf) {
			t.Fatalf("run %d: round trip failed", run)
		}
	}
}

func TestRLE2MissingEOB(t *testing.T) {
	if _, err := rle2Decode([]uint16{2, 3}, 0); err == nil {
		t.Fatal("missing EOB accepted")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	random := make([]byte, 50000)
	rng.Read(random)
	cases := map[string][]byte{
		"empty":  nil,
		"one":    {42},
		"text":   []byte(strings.Repeat("block sorting compression via the burrows-wheeler transform. ", 800)),
		"runs":   bytes.Repeat([]byte{'r'}, 100000),
		"random": random,
	}
	for name, data := range cases {
		for _, level := range []int{1, 9} {
			comp, err := Compress(data, level)
			if err != nil {
				t.Fatalf("%s level %d: %v", name, level, err)
			}
			got, err := Decompress(comp, 0)
			if err != nil {
				t.Fatalf("%s level %d: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s level %d: round trip mismatch", name, level)
			}
		}
	}
}

func TestMultiBlockRoundTrip(t *testing.T) {
	// Level 1 = 100k blocks; 350k input = 4 blocks.
	data := []byte(strings.Repeat("multi block content with moderate structure 0123456789. ", 6200))
	comp, err := Compress(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block round trip mismatch")
	}
}

func TestCompressesDeeperThanNothing(t *testing.T) {
	data := []byte(strings.Repeat("the compression rate is generally considerably better than lempel-ziv. ", 1000))
	comp, err := Compress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	if f := float64(len(data)) / float64(len(comp)); f < 10 {
		t.Errorf("bwt factor on repetitive text %.2f, want > 10", f)
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	data := []byte(strings.Repeat("corruption detection ", 500))
	comp, err := Compress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, comp...)
	bad[len(bad)/2] ^= 0x01
	if _, err := Decompress(bad, 0); err == nil {
		t.Fatal("corrupted stream decoded cleanly")
	}
	if _, err := Decompress(comp[:8], 0); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := Decompress([]byte("BZh1xxxx"), 0); err == nil {
		t.Fatal("foreign magic accepted")
	}
}

func TestDecompressMaxSizeGuard(t *testing.T) {
	data := bytes.Repeat([]byte{'q'}, 200000)
	comp, err := Compress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp, 100); err == nil {
		t.Fatal("bomb guard did not trip")
	}
}

func TestLevelValidation(t *testing.T) {
	for _, bad := range []int{0, 10} {
		if _, err := Compress([]byte("x"), bad); err == nil {
			t.Errorf("level %d accepted", bad)
		}
	}
}

func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20000)
		data := make([]byte, n)
		alpha := 1 + rng.Intn(255)
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		comp, err := Compress(data, 1)
		if err != nil {
			return false
		}
		got, err := Decompress(comp, 0)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressLevel9(b *testing.B) {
	data := []byte(strings.Repeat("bwt benchmark corpus with typical textual redundancy 0123456789\n", 1500))
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, 9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := []byte(strings.Repeat("bwt benchmark corpus with typical textual redundancy 0123456789\n", 1500))
	comp, err := Compress(data, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// naiveCyclicSort is the O(n^2 log n) oracle: sort rotation start indices
// by direct cyclic comparison.
func naiveCyclicSort(s []byte) []int {
	n := len(s)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	less := func(a, b int) bool {
		for k := 0; k < n; k++ {
			ca, cb := s[(a+k)%n], s[(b+k)%n]
			if ca != cb {
				return ca < cb
			}
		}
		return false // equal rotations: stable order is fine
	}
	sort.SliceStable(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
	return idx
}

func TestQuickCyclicSortMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		s := make([]byte, n)
		alpha := 1 + rng.Intn(5) // small alphabet: many ties and periods
		for i := range s {
			s[i] = byte(rng.Intn(alpha))
		}
		got := cyclicSort(s)
		want := naiveCyclicSort(s)
		// Compare the rotations themselves (equal rotations may be in any
		// order, so compare lexicographic content, not indices).
		rot := func(p int) string {
			return string(append(append([]byte{}, s[p:]...), s[:p]...))
		}
		for i := range got {
			if rot(got[i]) != rot(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformPeriodicInputs(t *testing.T) {
	for _, s := range []string{"abab", "abcabc", "aaaaaaaa", "abaaba", "xyxyxyxyxy"} {
		last, ptr := Transform([]byte(s))
		got := Inverse(last, ptr)
		if string(got) != s {
			t.Errorf("periodic %q: round trip gave %q", s, got)
		}
	}
}

func TestInverseRejectsBadPointer(t *testing.T) {
	last, _ := Transform([]byte("banana"))
	if out := Inverse(last, -1); out != nil {
		t.Error("negative pointer accepted")
	}
	if out := Inverse(last, len(last)); out != nil {
		t.Error("out-of-range pointer accepted")
	}
}
