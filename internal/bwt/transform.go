// Package bwt implements a bzip2-style block-sorting compressor, the third
// scheme measured by the paper: per block, an initial run-length pass
// (RLE1), the Burrows-Wheeler transform, move-to-front coding, a zero-run
// coder (RLE2 with RUNA/RUNB symbols) and canonical Huffman coding.
//
// Relative to bzip2 1.0.1 the framing is simplified — one Huffman table per
// block instead of up to six with selectors — which costs a few percent of
// compression factor but preserves the computational profile the paper's
// conclusions rest on: noticeably deeper compression than the Lempel-Ziv
// schemes, at a decompression cost several times higher.
package bwt

// Transform computes the Burrows-Wheeler transform of block: the last
// column of the sorted cyclic-rotation matrix, plus the row index at which
// the original block appears.
func Transform(block []byte) ([]byte, int) {
	n := len(block)
	if n == 0 {
		return nil, 0
	}
	sa := cyclicSort(block)
	last := make([]byte, n)
	ptr := 0
	for i, p := range sa {
		if p == 0 {
			ptr = i
			last[i] = block[n-1]
		} else {
			last[i] = block[p-1]
		}
	}
	return last, ptr
}

// cyclicSort returns the start indices of the cyclic rotations of s in
// lexicographic order, using prefix doubling with counting sorts
// (Manber-Myers), O(n log n).
func cyclicSort(s []byte) []int {
	n := len(s)
	sa := make([]int, n)
	rank := make([]int, n)
	tmp := make([]int, n)
	newRank := make([]int, n)
	cntSize := n
	if cntSize < 256 {
		cntSize = 256
	}
	cnt := make([]int, cntSize+1)

	// Initial counting sort by first byte.
	for i := 0; i < 256; i++ {
		cnt[i] = 0
	}
	for _, c := range s {
		cnt[c]++
	}
	for i := 1; i < 256; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := n - 1; i >= 0; i-- {
		cnt[s[i]]--
		sa[cnt[s[i]]] = i
	}
	rank[sa[0]] = 0
	classes := 1
	for i := 1; i < n; i++ {
		if s[sa[i]] != s[sa[i-1]] {
			classes++
		}
		rank[sa[i]] = classes - 1
	}

	// Stop at k >= n as well as classes == n: periodic inputs (e.g. "abab")
	// contain identical rotations that never separate into distinct
	// classes, and identical rotations may appear in any relative order
	// without affecting the transform.
	for k := 1; classes < n && k < n; k <<= 1 {
		// Order by second key: shifting each start back by k gives a
		// sequence already sorted by rank[(i+k) mod n].
		for i := 0; i < n; i++ {
			tmp[i] = sa[i] - k
			if tmp[i] < 0 {
				tmp[i] += n
			}
		}
		// Stable counting sort by first key rank[tmp[i]].
		for i := 0; i < classes; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[rank[tmp[i]]]++
		}
		for i := 1; i < classes; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			c := rank[tmp[i]]
			cnt[c]--
			sa[cnt[c]] = tmp[i]
		}
		// Recompute equivalence classes on (rank[i], rank[i+k]).
		newRank[sa[0]] = 0
		classes = 1
		for i := 1; i < n; i++ {
			cur := [2]int{rank[sa[i]], rank[(sa[i]+k)%n]}
			prev := [2]int{rank[sa[i-1]], rank[(sa[i-1]+k)%n]}
			if cur != prev {
				classes++
			}
			newRank[sa[i]] = classes - 1
		}
		rank, newRank = newRank, rank
	}
	return sa
}

// Inverse reconstructs the original block from its Burrows-Wheeler
// transform and row pointer.
func Inverse(last []byte, ptr int) []byte {
	n := len(last)
	if n == 0 {
		return nil
	}
	if ptr < 0 || ptr >= n {
		return nil
	}
	// Count occurrences, then compute, for each position in the last
	// column, its position in the first column (the "next" vector walk).
	var count [256]int
	for _, c := range last {
		count[c]++
	}
	var base [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		base[c] = sum
		sum += count[c]
	}
	next := make([]int, n)
	var seen [256]int
	for i, c := range last {
		next[base[c]+seen[c]] = i
		seen[c]++
	}
	out := make([]byte, n)
	p := next[ptr]
	for i := 0; i < n; i++ {
		out[i] = last[p]
		p = next[p]
	}
	return out
}
