package bwt

// mtfEncode move-to-front codes data over the full byte alphabet: each
// output value is the current list index of the input byte, which is then
// moved to the front. BWT output is dominated by small indices.
func mtfEncode(data []byte) []byte {
	var list [256]byte
	for i := range list {
		list[i] = byte(i)
	}
	out := make([]byte, len(data))
	for k, b := range data {
		idx := 0
		for list[idx] != b {
			idx++
		}
		out[k] = byte(idx)
		copy(list[1:idx+1], list[:idx])
		list[0] = b
	}
	return out
}

// mtfDecode inverts mtfEncode.
func mtfDecode(data []byte) []byte {
	var list [256]byte
	for i := range list {
		list[i] = byte(i)
	}
	out := make([]byte, len(data))
	for k, idx := range data {
		b := list[idx]
		out[k] = b
		copy(list[1:int(idx)+1], list[:idx])
		list[0] = b
	}
	return out
}

// RLE1 is bzip2's pre-sort run-length pass: a run of 4..255 equal bytes is
// emitted as the 4 bytes followed by a count byte (run-4). Its purpose in
// bzip2 is to bound sorter worst cases on long runs; we keep it for the
// same reason and for format fidelity.

func rle1Encode(data []byte) []byte {
	out := make([]byte, 0, len(data)+len(data)/64+16)
	for i := 0; i < len(data); {
		b := data[i]
		j := i + 1
		for j < len(data) && data[j] == b && j-i < 255+4 {
			j++
		}
		run := j - i
		if run >= 4 {
			out = append(out, b, b, b, b, byte(run-4))
		} else {
			for k := 0; k < run; k++ {
				out = append(out, b)
			}
		}
		i = j
	}
	return out
}

func rle1Decode(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)*2)
	runLen := 0
	var prev byte
	for i := 0; i < len(data); i++ {
		b := data[i]
		if runLen == 4 {
			// b is the extension count for the preceding run of four.
			for k := 0; k < int(b); k++ {
				out = append(out, prev)
			}
			runLen = 0
			continue
		}
		if len(out) > 0 && b == prev {
			runLen++
		} else {
			runLen = 1
		}
		prev = b
		out = append(out, b)
	}
	if runLen == 4 {
		return nil, errMissingRunCount
	}
	return out, nil
}

// RLE2: the MTF stream's zero runs are recoded in bijective base 2 using
// the RUNA/RUNB symbols, exactly as bzip2 does; nonzero MTF values v map to
// symbol v+1 and EOB terminates the block.
const (
	symRUNA = 0
	symRUNB = 1
	symEOB  = 257
	// numSymbols is RUNA, RUNB, 255 shifted MTF values (1..255 -> 2..256)
	// and EOB.
	numSymbols = 258
)

// rle2Encode converts MTF output to the RUNA/RUNB symbol stream,
// terminated by EOB.
func rle2Encode(mtf []byte) []uint16 {
	out := make([]uint16, 0, len(mtf)/2+16)
	run := 0
	flush := func() {
		for run > 0 {
			if run&1 == 1 {
				out = append(out, symRUNA)
				run = (run - 1) >> 1
			} else {
				out = append(out, symRUNB)
				run = (run - 2) >> 1
			}
		}
	}
	for _, v := range mtf {
		if v == 0 {
			run++
			continue
		}
		flush()
		out = append(out, uint16(v)+1)
	}
	flush()
	out = append(out, symEOB)
	return out
}

// rle2Decode inverts rle2Encode; the input must be EOB-terminated.
func rle2Decode(syms []uint16, maxSize int) ([]byte, error) {
	out := make([]byte, 0, len(syms)*2)
	run, bit := 0, 0
	flush := func() bool {
		if run == 0 {
			return true
		}
		if maxSize > 0 && len(out)+run > maxSize {
			return false
		}
		for k := 0; k < run; k++ {
			out = append(out, 0)
		}
		run, bit = 0, 0
		return true
	}
	for _, s := range syms {
		switch {
		case s == symRUNA:
			run += 1 << bit
			bit++
		case s == symRUNB:
			run += 2 << bit
			bit++
		case s == symEOB:
			if !flush() {
				return nil, errBlockTooLarge
			}
			return out, nil
		case s <= 256:
			if !flush() {
				return nil, errBlockTooLarge
			}
			if maxSize > 0 && len(out) >= maxSize {
				return nil, errBlockTooLarge
			}
			out = append(out, byte(s-1))
		default:
			return nil, errBadSymbol
		}
	}
	return nil, errMissingEOB
}
