package bwt

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/checksum"
	"repro/internal/huffman"
)

// Container-level errors.
var (
	ErrCorrupt         = errors.New("bwt: corrupt stream")
	errMissingRunCount = fmt.Errorf("%w: RLE1 run missing count byte", ErrCorrupt)
	errBlockTooLarge   = fmt.Errorf("%w: block exceeds size limit", ErrCorrupt)
	errBadSymbol       = fmt.Errorf("%w: symbol out of range", ErrCorrupt)
	errMissingEOB      = fmt.Errorf("%w: missing end-of-block", ErrCorrupt)
)

const (
	// blockSizeUnit is bzip2's 100k block-size granularity; level N uses
	// N*blockSizeUnit bytes per block.
	blockSizeUnit = 100 * 1000

	maxHuffBits = 20

	magic0 = 'B'
	magic1 = 'Z'
	magic2 = 'r' // our simplified container, not bit-compatible with 'h'
)

// Compress compresses data with block size level*100k (level 1..9; the
// paper uses bzip2 -9).
func Compress(data []byte, level int) ([]byte, error) {
	if level < 1 || level > 9 {
		return nil, fmt.Errorf("bwt: level %d out of range 1..9", level)
	}
	out := &sliceWriter{b: []byte{magic0, magic1, magic2, byte('0' + level)}}
	bw := bitio.NewMSBWriter(out)
	blockSize := level * blockSizeUnit

	for start := 0; start < len(data) || (start == 0 && len(data) == 0); start += blockSize {
		if len(data) == 0 {
			break
		}
		end := start + blockSize
		if end > len(data) {
			end = len(data)
		}
		if err := compressBlock(bw, data[start:end]); err != nil {
			return nil, err
		}
	}
	bw.WriteBits(0, 1) // end-of-stream marker
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return out.b, nil
}

func compressBlock(bw *bitio.MSBWriter, raw []byte) error {
	bw.WriteBits(1, 1) // block marker
	crc := checksum.CRC32(raw)

	rle := rle1Encode(raw)
	last, ptr := Transform(rle)
	mtf := mtfEncode(last)
	syms := rle2Encode(mtf)

	freq := make([]int, numSymbols)
	for _, s := range syms {
		freq[s]++
	}
	lens, err := huffman.BuildLengths(freq, maxHuffBits)
	if err != nil {
		return err
	}
	codes, err := huffman.CanonicalCodes(lens)
	if err != nil {
		return err
	}

	bw.WriteBits(uint64(crc), 32)
	bw.WriteBits(uint64(len(rle)), 32)
	bw.WriteBits(uint64(ptr), 32)
	for _, l := range lens {
		bw.WriteBits(uint64(l), 5)
	}
	for _, s := range syms {
		bw.WriteBits(uint64(codes[s]), uint(lens[s]))
	}
	return bw.Err()
}

// Decompress decodes a stream produced by Compress. maxSize, if positive,
// bounds the total decompressed size.
func Decompress(data []byte, maxSize int) ([]byte, error) {
	return DecompressAppend(nil, data, maxSize)
}

// DecompressAppend is Decompress appending to dst (which may be nil or
// recycled from a pool); maxSize bounds the appended bytes.
func DecompressAppend(dst, data []byte, maxSize int) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if data[0] != magic0 || data[1] != magic1 || data[2] != magic2 {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	level := int(data[3] - '0')
	if level < 1 || level > 9 {
		return nil, fmt.Errorf("%w: bad level %q", ErrCorrupt, data[3])
	}
	br := bitio.NewMSBReader(&sliceReader{b: data[4:]})
	blockLimit := level * blockSizeUnit

	out := dst
	base := len(out)
	for {
		marker := br.ReadBits(1)
		if br.Err() != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, br.Err())
		}
		if marker == 0 {
			break
		}
		block, err := decompressBlock(br, blockLimit)
		if err != nil {
			return nil, err
		}
		if maxSize > 0 && len(out)-base+len(block) > maxSize {
			return nil, fmt.Errorf("%w: output exceeds limit %d", ErrCorrupt, maxSize)
		}
		out = append(out, block...)
	}
	if out == nil {
		out = []byte{}
	}
	return out, nil
}

func decompressBlock(br *bitio.MSBReader, blockLimit int) ([]byte, error) {
	crc := uint32(br.ReadBits(32))
	rleLen := int(br.ReadBits(32))
	ptr := int(br.ReadBits(32))
	if br.Err() != nil {
		return nil, fmt.Errorf("%w: block header: %v", ErrCorrupt, br.Err())
	}
	// RLE1 never expands by more than 25% plus slack; anything bigger than
	// the level's block budget is corrupt.
	if rleLen < 0 || rleLen > blockLimit+blockLimit/4+64 {
		return nil, fmt.Errorf("%w: rle length %d", ErrCorrupt, rleLen)
	}
	if ptr < 0 || (rleLen > 0 && ptr >= rleLen) {
		return nil, fmt.Errorf("%w: pointer %d out of block %d", ErrCorrupt, ptr, rleLen)
	}
	lens := make([]uint8, numSymbols)
	for i := range lens {
		v := br.ReadBits(5)
		if v > maxHuffBits {
			return nil, fmt.Errorf("%w: code length %d", ErrCorrupt, v)
		}
		lens[i] = uint8(v)
	}
	if br.Err() != nil {
		return nil, fmt.Errorf("%w: code lengths: %v", ErrCorrupt, br.Err())
	}
	dec, err := huffman.NewDecoder(lens)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	syms := make([]uint16, 0, rleLen/2+16)
	for {
		s, err := dec.DecodeMSB(br)
		if err != nil {
			return nil, fmt.Errorf("%w: symbol stream", ErrCorrupt)
		}
		syms = append(syms, uint16(s))
		if s == symEOB {
			break
		}
		if len(syms) > 2*rleLen+64 {
			return nil, fmt.Errorf("%w: runaway symbol stream", ErrCorrupt)
		}
	}
	mtf, err := rle2Decode(syms, rleLen)
	if err != nil {
		return nil, err
	}
	if len(mtf) != rleLen {
		return nil, fmt.Errorf("%w: MTF length %d, header says %d", ErrCorrupt, len(mtf), rleLen)
	}
	last := mtfDecode(mtf)
	rle := Inverse(last, ptr)
	raw, err := rle1Decode(rle)
	if err != nil {
		return nil, err
	}
	if checksum.CRC32(raw) != crc {
		return nil, fmt.Errorf("%w: block CRC mismatch", ErrCorrupt)
	}
	return raw, nil
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, errEOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

var errEOF = errors.New("EOF")
