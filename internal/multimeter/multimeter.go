// Package multimeter models the paper's measurement instrument — an HP
// 3458a low-impedance digital multimeter sampling the handheld's supply
// current several hundred times per second, with a software-controlled
// trigger. Energy readings are avg-current × supply-voltage × window, so
// they carry a small, deterministic sampling error relative to the exact
// integral, just as the physical meter did.
package multimeter

import (
	"errors"
	"time"

	"repro/internal/device"
	"repro/internal/sim"
)

// DefaultSampleRate is samples per second; the paper reports "several
// hundred samples per second".
const DefaultSampleRate = 300

// ErrNotTriggered is returned when a reading is requested before a
// completed trigger window.
var ErrNotTriggered = errors.New("multimeter: no completed measurement window")

// Meter samples a device's current draw between Trigger and Stop.
type Meter struct {
	kernel *sim.Kernel
	dev    *device.Device
	rate   float64

	sampling  bool
	startAt   time.Duration
	stopAt    time.Duration
	samples   int
	sumMA     float64
	minMA     float64
	maxMA     float64
	completed bool
}

// New returns a meter attached to dev sampling at rate samples/second.
func New(k *sim.Kernel, dev *device.Device, rate float64) *Meter {
	if rate <= 0 {
		rate = DefaultSampleRate
	}
	return &Meter{kernel: k, dev: dev, rate: rate}
}

// Trigger starts a measurement window at the current simulation time. The
// overhead of the trigger interrupt is under 0.5% per the paper's
// measurement and is not modeled.
func (m *Meter) Trigger() {
	m.sampling = true
	m.completed = false
	m.startAt = m.kernel.Now()
	m.samples = 0
	m.sumMA = 0
	m.minMA = 0
	m.maxMA = 0
	m.scheduleSample()
}

func (m *Meter) scheduleSample() {
	period := time.Duration(float64(time.Second) / m.rate)
	m.kernel.Schedule(period, func() {
		if !m.sampling {
			return
		}
		i := m.dev.CurrentMA()
		if m.samples == 0 || i < m.minMA {
			m.minMA = i
		}
		if m.samples == 0 || i > m.maxMA {
			m.maxMA = i
		}
		m.sumMA += i
		m.samples++
		m.scheduleSample()
	})
}

// Stop closes the measurement window.
func (m *Meter) Stop() {
	if !m.sampling {
		return
	}
	m.sampling = false
	m.stopAt = m.kernel.Now()
	m.completed = true
}

// Reading is one completed measurement window.
type Reading struct {
	Duration time.Duration
	Samples  int
	AvgMA    float64
	MinMA    float64
	MaxMA    float64
	// EnergyJ is avg-current × V × duration, the way the paper derives
	// energy from the meter.
	EnergyJ float64
	// ExactJ is the exact integral over the device trace, for quantifying
	// the sampling error.
	ExactJ float64
}

// Reading returns the last completed measurement.
func (m *Meter) Reading() (Reading, error) {
	if !m.completed {
		return Reading{}, ErrNotTriggered
	}
	r := Reading{
		Duration: m.stopAt - m.startAt,
		Samples:  m.samples,
		MinMA:    m.minMA,
		MaxMA:    m.maxMA,
		ExactJ:   m.dev.EnergyJ(m.startAt, m.stopAt),
	}
	if m.samples > 0 {
		r.AvgMA = m.sumMA / float64(m.samples)
		r.EnergyJ = device.SupplyVoltage * (r.AvgMA / 1000) * r.Duration.Seconds()
	} else {
		// Window shorter than a sample period: fall back to the exact
		// integral, as a real operator would re-range the instrument.
		r.EnergyJ = r.ExactJ
		if r.Duration > 0 {
			r.AvgMA = r.ExactJ / device.SupplyVoltage / r.Duration.Seconds() * 1000
		}
	}
	return r, nil
}
