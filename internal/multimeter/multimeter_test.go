package multimeter

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/sim"
)

func TestConstantCurrentReading(t *testing.T) {
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	m := New(k, d, 300)
	m.Trigger()
	k.Schedule(2*time.Second, func() { m.Stop() })
	k.Run()
	r, err := m.Reading()
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgMA != 310 || r.MinMA != 310 || r.MaxMA != 310 {
		t.Errorf("avg/min/max = %v/%v/%v", r.AvgMA, r.MinMA, r.MaxMA)
	}
	want := 5 * 0.310 * 2
	if math.Abs(r.EnergyJ-want) > 1e-6 {
		t.Errorf("energy %v, want %v", r.EnergyJ, want)
	}
	if math.Abs(r.EnergyJ-r.ExactJ) > 1e-6 {
		t.Errorf("sampled %v vs exact %v should agree on constant current", r.EnergyJ, r.ExactJ)
	}
	if r.Samples < 590 || r.Samples > 610 {
		t.Errorf("samples %d, want ~600", r.Samples)
	}
}

func TestMinMaxTracksStateChanges(t *testing.T) {
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	m := New(k, d, 300)
	m.Trigger()
	k.Schedule(time.Second, func() { d.SetCPU(device.CPUBusy) })
	k.Schedule(2*time.Second, func() { d.SetRadio(device.RadioSleep) })
	k.Schedule(3*time.Second, func() { m.Stop() })
	k.Run()
	r, err := m.Reading()
	if err != nil {
		t.Fatal(err)
	}
	if r.MinMA != 310 {
		t.Errorf("min %v, want 310 (busy+sleep)", r.MinMA)
	}
	if r.MaxMA != 570 {
		t.Errorf("max %v, want 570 (busy+idle)", r.MaxMA)
	}
}

func TestSamplingErrorSmall(t *testing.T) {
	// A fast square wave between states: the sampled average should land
	// within a couple percent of the exact integral.
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	m := New(k, d, 300)
	m.Trigger()
	var toggle func()
	n := 0
	toggle = func() {
		if n >= 2000 {
			m.Stop()
			return
		}
		if n%2 == 0 {
			d.SetCPU(device.CPUBusy)
		} else {
			d.SetCPU(device.CPUIdle)
		}
		n++
		k.Schedule(time.Duration(1+n%3)*time.Millisecond, toggle)
	}
	k.Schedule(0, toggle)
	k.Run()
	r, err := m.Reading()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(r.EnergyJ-r.ExactJ) / r.ExactJ; rel > 0.03 {
		t.Errorf("sampling error %.4f, want < 3%%", rel)
	}
	if rel := math.Abs(r.EnergyJ-r.ExactJ) / r.ExactJ; rel == 0 {
		t.Log("sampled energy exactly equals integral (acceptable but unusual)")
	}
}

func TestReadingBeforeTrigger(t *testing.T) {
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	m := New(k, d, 300)
	if _, err := m.Reading(); !errors.Is(err, ErrNotTriggered) {
		t.Errorf("want ErrNotTriggered, got %v", err)
	}
}

func TestVeryShortWindowFallsBackToExact(t *testing.T) {
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	m := New(k, d, 300)
	m.Trigger()
	k.Schedule(time.Millisecond, func() { m.Stop() }) // < 1 sample period
	k.Run()
	r, err := m.Reading()
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples != 0 {
		t.Errorf("expected 0 samples, got %d", r.Samples)
	}
	want := 5 * 0.310 * 0.001
	if math.Abs(r.EnergyJ-want) > 1e-9 {
		t.Errorf("fallback energy %v, want %v", r.EnergyJ, want)
	}
}

func TestRetrigger(t *testing.T) {
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	m := New(k, d, 300)
	m.Trigger()
	k.Schedule(time.Second, func() { m.Stop() })
	k.Run()
	first, err := m.Reading()
	if err != nil {
		t.Fatal(err)
	}
	m.Trigger()
	k.Schedule(2*time.Second, func() { d.SetCPU(device.CPUBusy) })
	k.Schedule(3*time.Second, func() { m.Stop() })
	k.Run()
	second, err := m.Reading()
	if err != nil {
		t.Fatal(err)
	}
	if second.Duration <= first.Duration {
		t.Errorf("second window %v, first %v", second.Duration, first.Duration)
	}
	if second.MaxMA != 570 {
		t.Errorf("second window max %v", second.MaxMA)
	}
}
