package lzw

// Differential coverage for the append-free table-walk decoder. A
// byte-for-byte cross-check against the standard library is not
// applicable for this scheme: compress/lzw implements the GIF/TIFF
// flavour (no .Z container, different clear-code and first-code
// semantics, per-stream literal width), which is wire-incompatible with
// the ncompress .Z format this package reproduces. The differential here
// is therefore round-trip over the paper's workload corpus — the old
// reversed-scratch decoder and the new backwards-writing decoder were
// held equal on these inputs during the transition — plus an explicit
// fixture that the two formats do not accidentally interdecode.

import (
	"bytes"
	stdlzw "compress/lzw"
	"testing"

	"repro/internal/workload"
)

func TestDifferentialRoundTripCorpus(t *testing.T) {
	classes := []struct {
		name  string
		class workload.Class
	}{
		{"source", workload.ClassSource},
		{"xml", workload.ClassXML},
		{"weblog", workload.ClassWebLog},
		{"binary", workload.ClassBinary},
		{"media", workload.ClassMedia},
		{"mail", workload.ClassMail},
	}
	for _, c := range classes {
		data := workload.Generate(c.class, 128*1024, 5)
		for _, bits := range []int{9, 12, 16} {
			comp, err := Compress(data, bits)
			if err != nil {
				t.Fatalf("%s/-b%d: Compress: %v", c.name, bits, err)
			}
			got, err := Decompress(comp, 0)
			if err != nil {
				t.Fatalf("%s/-b%d: Decompress: %v", c.name, bits, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/-b%d: round trip mismatch", c.name, bits)
			}
		}
	}
}

func TestDecompressAppendExtendsPrefix(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 64*1024, 9)
	comp, err := Compress(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("prior-content")
	out, err := DecompressAppend(append([]byte(nil), prefix...), comp, 0)
	if err != nil {
		t.Fatalf("DecompressAppend: %v", err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) || !bytes.Equal(out[len(prefix):], data) {
		t.Fatal("DecompressAppend did not extend the prefix correctly")
	}
	// maxSize budgets the appended bytes, not the whole slice.
	if _, err := DecompressAppend(append([]byte(nil), prefix...), comp, len(data)); err != nil {
		t.Fatalf("append with exact budget: %v", err)
	}
	if _, err := DecompressAppend(nil, comp, len(data)-1); err == nil {
		t.Fatal("undersized budget not enforced")
	}
}

// TestStdlibFormatMismatch pins the reason there is no stdlib
// cross-decode: a compress/lzw stream has no .Z magic and must be
// rejected, not misparsed.
func TestStdlibFormatMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := stdlzw.NewWriter(&buf, stdlzw.LSB, 8)
	w.Write([]byte("the two wire formats must not interdecode"))
	w.Close()
	if _, err := Decompress(buf.Bytes(), 0); err == nil {
		t.Fatal("decoded a GIF-flavour LZW stream as .Z")
	}
}
