package lzw

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte, maxBits int) []byte {
	t.Helper()
	comp, err := Compress(data, maxBits)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	got, err := Decompress(comp, 0)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, data) {
		i := 0
		for i < len(got) && i < len(data) && got[i] == data[i] {
			i++
		}
		t.Fatalf("round trip mismatch at byte %d: got %d bytes, want %d", i, len(got), len(data))
	}
	return comp
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, nil, 16)
}

func TestRoundTripTiny(t *testing.T) {
	for _, s := range []string{"a", "ab", "aa", "aaa", "abcabcabc", "aaaaaaaaaaaaaaaa"} {
		roundTrip(t, []byte(s), 16)
	}
}

func TestRoundTripKwKwK(t *testing.T) {
	// The classic cScSc pattern that triggers the code==nextCode case.
	roundTrip(t, []byte("abababababababab"), 16)
	roundTrip(t, bytes.Repeat([]byte{'q'}, 1000), 16)
}

func TestRoundTripText(t *testing.T) {
	data := []byte(strings.Repeat("wireless handheld devices download compressed data from proxies. ", 2000))
	comp := roundTrip(t, data, 16)
	if f := float64(len(data)) / float64(len(comp)); f < 2 {
		t.Errorf("text compression factor %.2f, want > 2", f)
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, 200000)
	rng.Read(data)
	comp := roundTrip(t, data, 16)
	// LZW expands random data by up to ~2x at 16-bit codes before the
	// table fills; with a full table each input byte pair costs 16 bits.
	if len(comp) > 2*len(data) {
		t.Errorf("random data blew up: %d -> %d", len(data), len(comp))
	}
}

func TestRoundTripAllWidths(t *testing.T) {
	data := []byte(strings.Repeat("width schedule crossing test 0123456789 ", 4000))
	for maxBits := MinBits; maxBits <= MaxBits; maxBits++ {
		roundTrip(t, data, maxBits)
	}
}

func TestWidthBoundaryCrossings(t *testing.T) {
	// Data with many distinct digrams to march nextCode through every
	// width boundary (512, 1024, ..., 65536).
	rng := rand.New(rand.NewSource(22))
	data := make([]byte, 1<<20)
	rng.Read(data)
	roundTrip(t, data, 16)
	roundTrip(t, data, 12)
}

func TestAdaptiveResetOnShiftingData(t *testing.T) {
	// First half text, second half random: the table learned on text decays
	// on random data, which must eventually trigger a CLEAR, and the stream
	// must still round-trip.
	text := []byte(strings.Repeat("structured prefix content ", 8000))
	rng := rand.New(rand.NewSource(23))
	noise := make([]byte, 600000)
	rng.Read(noise)
	data := append(append([]byte{}, text...), noise...)
	comp := roundTrip(t, data, 12) // small table fills quickly
	// Verify at least one CLEAR appears by decompressing successfully and
	// checking the stream is not the no-reset size... simpler: recompress
	// the halves separately and ensure combined stream handled the shift.
	if len(comp) == 0 {
		t.Fatal("empty compressed stream")
	}
}

func TestMaxBitsValidation(t *testing.T) {
	for _, bad := range []int{0, 8, 17, -1} {
		if _, err := Compress([]byte("x"), bad); err == nil {
			t.Errorf("Compress maxBits %d accepted", bad)
		}
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	if _, err := Decompress([]byte{0x1f}, 0); err == nil {
		t.Fatal("short stream accepted")
	}
	if _, err := Decompress([]byte{0x00, 0x9d, 0x90}, 0); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Decompress([]byte{0x1f, 0x9d, 0x05}, 0); err == nil {
		t.Fatal("bad maxBits accepted")
	}
	// A code referencing beyond the table must fail: craft stream with
	// first 9-bit code = 300 (undefined).
	bad := []byte{0x1f, 0x9d, 0x90, 0x2c, 0x01} // 300 = 0b100101100
	if _, err := Decompress(bad, 0); err == nil {
		t.Fatal("out-of-table code accepted")
	}
}

func TestDecompressMaxSizeGuard(t *testing.T) {
	data := bytes.Repeat([]byte{'z'}, 100000)
	comp, err := Compress(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp, 1000); err == nil {
		t.Fatal("bomb guard did not trip")
	}
	if out, err := Decompress(comp, len(data)); err != nil || len(out) != len(data) {
		t.Fatalf("exact limit should pass: %v", err)
	}
}

func TestHeaderFormat(t *testing.T) {
	comp, err := Compress([]byte("hello"), 14)
	if err != nil {
		t.Fatal(err)
	}
	if comp[0] != 0x1f || comp[1] != 0x9d {
		t.Fatalf("bad magic: % x", comp[:2])
	}
	if comp[2] != 14|blockModeFlag {
		t.Fatalf("bad flags byte: %#x", comp[2])
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30000)
		data := make([]byte, n)
		alpha := 1 + rng.Intn(255)
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		maxBits := MinBits + rng.Intn(MaxBits-MinBits+1)
		comp, err := Compress(data, maxBits)
		if err != nil {
			return false
		}
		got, err := Decompress(comp, 0)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerFactorThanDeflateOnText(t *testing.T) {
	// The paper's Table 2 consistently shows compress below gzip; this is a
	// coarse shape check between the two implementations.
	data := []byte(strings.Repeat("the compression factor comparison between schemes ", 4000))
	lzwOut, err := Compress(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(lzwOut) >= len(data) {
		t.Errorf("compress should shrink repetitive text: %d -> %d", len(data), len(lzwOut))
	}
}

func BenchmarkCompress(b *testing.B) {
	data := []byte(strings.Repeat("lzw benchmark content with moderate redundancy 0123456789\n", 2000))
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := []byte(strings.Repeat("lzw benchmark content with moderate redundancy 0123456789\n", 2000))
	comp, err := Compress(data, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExplicitClearCodeHandling crafts a stream with a mid-stream CLEAR and
// verifies the decoder resets its dictionary and width.
func TestExplicitClearCodeHandling(t *testing.T) {
	// Build by hand with the same bit packing the encoder uses:
	// codes: 'a'(97) 'b'(98) CLEAR(256) 'c'(99) 'd'(100), all 9-bit.
	out := []byte{magicByte1, magicByte2, 16 | blockModeFlag}
	w := &sliceWriter{b: out}
	bw := newTestBitWriter(w)
	for _, code := range []uint16{97, 98, clearCode, 99, 100} {
		bw.write(uint64(code), 9)
	}
	bw.flush()
	got, err := Decompress(w.b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Fatalf("got %q", got)
	}
}

// TestWidthBoundaryExactVector: exactly 255 dictionary insertions keep
// 9-bit codes; the 256th (nextCode=512) widens to 10 — verified through a
// round trip engineered to land on the boundary.
func TestWidthBoundaryExactVector(t *testing.T) {
	// 256 distinct digrams: bytes 0..255 alternated with 0xFF produce a
	// new dictionary entry per step.
	var data []byte
	for i := 0; i < 256; i++ {
		data = append(data, byte(i), 0xFF)
	}
	// Then reuse early digrams so post-widening codes are read back.
	for i := 0; i < 64; i++ {
		data = append(data, byte(i), 0xFF)
	}
	comp, err := Compress(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("boundary round trip: %v", err)
	}
}

// TestMutationNeverPanics: corrupted .Z streams must fail or stay within
// the size bound, never panic or hang.
func TestMutationNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	data := []byte(strings.Repeat("lzw mutation robustness ", 2000))
	comp, err := Compress(data, 12)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 1 << 20
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte{}, comp...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		out, err := Decompress(bad, limit)
		if err == nil && len(out) > limit {
			t.Fatalf("trial %d: limit bypassed", trial)
		}
	}
}
