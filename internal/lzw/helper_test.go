package lzw

import "repro/internal/bitio"

// newTestBitWriter exposes the production bit packing for crafted-stream
// tests.
type testBitWriter struct{ w *bitio.LSBWriter }

func newTestBitWriter(out *sliceWriter) *testBitWriter {
	return &testBitWriter{w: bitio.NewLSBWriter(out)}
}

func (t *testBitWriter) write(v uint64, n uint) { t.w.WriteBits(v, n) }
func (t *testBitWriter) flush()                 { _ = t.w.Flush() }
