// Package lzw implements the LZW compressor of the UNIX compress tool
// (ncompress 4.2.4), the second scheme measured by the paper: a growing
// dictionary with 9- to 16-bit codes and, in block mode, an adaptive
// dictionary reset when the compression ratio starts to decay.
//
// The on-disk framing follows the .Z layout (magic 0x1f 0x9d, a flags byte
// carrying maxBits and the block-mode bit, LSB-first code packing); the
// historical bit-group padding quirk of ncompress is intentionally not
// replicated, so streams are self-consistent rather than bit-identical to
// the 1984 tool.
package lzw

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/bitio"
)

const (
	magicByte1 = 0x1f
	magicByte2 = 0x9d

	blockModeFlag = 0x80
	maxBitsMask   = 0x1f

	// MinBits and MaxBits bound the code width, as in compress -b.
	MinBits = 9
	MaxBits = 16

	clearCode = 256
	firstCode = 257

	// checkGap is how often (input bytes) the block-mode compressor
	// re-evaluates the compression ratio once the table is full.
	checkGap = 10000
)

// ErrCorrupt is returned for structurally invalid .Z streams.
var ErrCorrupt = errors.New("lzw: corrupt stream")

type dictEntry struct {
	key  uint32
	code uint16
}

// hashTable is an open-addressed (prefix, byte) -> code map sized for the
// 16-bit code space.
type hashTable struct {
	entries []dictEntry
	mask    uint32
}

func newHashTable() *hashTable {
	const size = 1 << 17 // 2x the max code count keeps probe chains short
	h := &hashTable{entries: make([]dictEntry, size), mask: size - 1}
	h.clear()
	return h
}

func (h *hashTable) clear() {
	for i := range h.entries {
		h.entries[i].key = ^uint32(0)
	}
}

func key(prefix uint16, b byte) uint32 { return uint32(prefix)<<8 | uint32(b) }

func (h *hashTable) lookup(k uint32) (uint16, bool) {
	i := (k * 2654435761) & h.mask
	for {
		e := h.entries[i]
		if e.key == ^uint32(0) {
			return 0, false
		}
		if e.key == k {
			return e.code, true
		}
		i = (i + 1) & h.mask
	}
}

func (h *hashTable) insert(k uint32, code uint16) {
	i := (k * 2654435761) & h.mask
	for h.entries[i].key != ^uint32(0) {
		i = (i + 1) & h.mask
	}
	h.entries[i] = dictEntry{key: k, code: code}
}

// Compress compresses data in the .Z block-mode format with codes up to
// maxBits wide (9..16). The paper's experiments use "compress -b 16".
func Compress(data []byte, maxBits int) ([]byte, error) {
	if maxBits < MinBits || maxBits > MaxBits {
		return nil, fmt.Errorf("lzw: maxBits %d out of range %d..%d", maxBits, MinBits, MaxBits)
	}
	out := &sliceWriter{b: []byte{magicByte1, magicByte2, byte(maxBits) | blockModeFlag}}
	if len(data) == 0 {
		return out.b, nil
	}
	bw := bitio.NewLSBWriter(out)

	table := newHashTable()
	nextCode := firstCode
	width := uint(MinBits)
	maxCode := 1<<maxBits - 1

	// Ratio-decay bookkeeping for the adaptive reset.
	inBytes, outBits := 0, 0
	lastCheck := 0
	var lastRatio float64

	emit := func(code uint16) {
		bw.WriteBits(uint64(code), width)
		outBits += int(width)
	}

	prefix := uint16(data[0])
	inBytes = 1
	for _, c := range data[1:] {
		inBytes++
		k := key(prefix, c)
		if code, ok := table.lookup(k); ok {
			prefix = code
			continue
		}
		emit(prefix)
		if nextCode <= maxCode {
			table.insert(k, uint16(nextCode))
			nextCode++
			if nextCode == 1<<width && width < uint(maxBits) {
				width++
			}
		} else if inBytes-lastCheck >= checkGap {
			// Table is full: consider clearing when the ratio decays,
			// exactly compress's cl_block policy.
			lastCheck = inBytes
			ratio := float64(inBytes*8) / float64(outBits+1)
			if ratio < lastRatio {
				emit(clearCode)
				table.clear()
				nextCode = firstCode
				width = MinBits
				lastRatio = 0
			} else {
				lastRatio = ratio
			}
		}
		prefix = uint16(c)
	}
	emit(prefix)
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return out.b, nil
}

// Decompress decodes a .Z stream produced by Compress. maxSize, if
// positive, bounds the decompressed size.
func Decompress(data []byte, maxSize int) ([]byte, error) {
	return DecompressAppend(nil, data, maxSize)
}

// DecompressAppend is Decompress appending to dst (which may be nil or
// recycled from a pool); maxSize bounds the appended bytes. Each code's
// string is written backwards straight into the output — the dictionary
// tracks expansion lengths, so there is no scratch buffer and no reverse
// pass.
func DecompressAppend(dst, data []byte, maxSize int) ([]byte, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if data[0] != magicByte1 || data[1] != magicByte2 {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	flags := data[2]
	maxBits := int(flags & maxBitsMask)
	blockMode := flags&blockModeFlag != 0
	if maxBits < MinBits || maxBits > MaxBits {
		return nil, fmt.Errorf("%w: maxBits %d", ErrCorrupt, maxBits)
	}
	body := data[3:]
	out := dst
	base := len(out)
	if len(body) == 0 {
		if out == nil {
			out = []byte{}
		}
		return out, nil
	}
	br := bitio.NewLSBReader(&sliceReader{b: body})

	// suffix/prefixOf map codes back to strings; lenOf caches each code's
	// expansion length so output space is reserved before the chain walk.
	size := 1 << maxBits
	suffix := make([]byte, size)
	prefixOf := make([]uint16, size)
	lenOf := make([]int32, size)
	for i := 0; i < 256; i++ {
		suffix[i] = byte(i)
		lenOf[i] = 1
	}
	nextCode := firstCode
	width := uint(MinBits)

	readCode := func() (uint16, bool) {
		if br.AtEOF() {
			return 0, false
		}
		v := br.ReadBits(width)
		if br.Err() != nil {
			return 0, false
		}
		return uint16(v), true
	}

	prev := int32(-1)
	var prevFirst byte
	for {
		// Mirror the encoder's width schedule: the decoder runs one table
		// entry behind, so it widens one code earlier.
		if prev >= 0 && nextCode == 1<<width-1 && width < uint(maxBits) {
			width++
		}
		code, ok := readCode()
		if !ok {
			break
		}
		if blockMode && code == clearCode {
			nextCode = firstCode
			width = MinBits
			prev = -1
			continue
		}
		// KwKwK: the one code the decoder has not seen yet; its string is
		// prev's string plus prev's first byte.
		kwkwk := prev >= 0 && int(code) == nextCode && nextCode < size
		var n int
		if kwkwk {
			n = int(lenOf[prev]) + 1
		} else {
			if int(code) >= nextCode {
				return nil, fmt.Errorf("%w: code %d beyond table %d", ErrCorrupt, code, nextCode)
			}
			n = int(lenOf[code])
		}
		if n <= 0 {
			return nil, fmt.Errorf("%w: code %d has no expansion", ErrCorrupt, code)
		}
		if maxSize > 0 && len(out)-base+n > maxSize {
			return nil, fmt.Errorf("%w: output exceeds limit %d", ErrCorrupt, maxSize)
		}
		out = slices.Grow(out, n)
		start := len(out)
		out = out[:start+n]
		i := start + n - 1
		c := code
		if kwkwk {
			out[i] = prevFirst
			i--
			c = uint16(prev)
		}
		for c >= 256 {
			out[i] = suffix[c]
			i--
			c = prefixOf[c]
		}
		out[i] = byte(c)
		first := out[start]
		if prev >= 0 && nextCode < size {
			suffix[nextCode] = first
			prefixOf[nextCode] = uint16(prev)
			lenOf[nextCode] = lenOf[prev] + 1
			nextCode++
		}
		prev = int32(code)
		prevFirst = first
	}
	if out == nil {
		out = []byte{}
	}
	return out, nil
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, errEOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

var errEOF = errors.New("EOF")
