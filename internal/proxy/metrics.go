package proxy

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// numLatencyBounds is len(latencyBounds); the histogram carries one extra
// overflow bucket.
const numLatencyBounds = 11

// latencyBounds are the upper edges of the per-connection latency
// histogram buckets; durations at or past the last bound land in the
// overflow bucket.
var latencyBounds = [numLatencyBounds]time.Duration{
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
}

// metrics is the server's hot-path instrumentation. Every field is an
// atomic so the serve path never takes a lock to count.
type metrics struct {
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	coalesced    atomic.Int64
	compressions atomic.Int64
	evictions    atomic.Int64
	cacheRejects atomic.Int64

	bytesRaw        atomic.Int64
	bytesCompressed atomic.Int64

	connsTotal    atomic.Int64
	connsActive   atomic.Int64
	connsRejected atomic.Int64
	errors        atomic.Int64

	latency [numLatencyBounds + 1]atomic.Int64
}

// observeLatency records one connection's wall time.
func (m *metrics) observeLatency(d time.Duration) {
	for i, b := range latencyBounds {
		if d < b {
			m.latency[i].Add(1)
			return
		}
	}
	m.latency[len(latencyBounds)].Add(1)
}

// LatencyBucket is one histogram bucket of a Stats snapshot. UpTo is the
// exclusive upper edge; the overflow bucket has UpTo == 0.
type LatencyBucket struct {
	UpTo  time.Duration
	Count int64
}

// Stats is a point-in-time snapshot of the server's counters, returned by
// Server.Stats.
//
// Counter relationships (exact when the cache never evicts, otherwise
// lower bounds):
//
//	CacheHits + CacheMisses   == cacheable requests served
//	Compressions + Coalesced  == CacheMisses (modulo errored requests)
//	Compressions              == distinct (file, scheme, decider) keys built
type Stats struct {
	// Cache counters. A request that finds its compressed block stream in
	// the cache is a hit; otherwise it is a miss and either runs the
	// compression itself (Compressions) or waits on an identical in-flight
	// compression (Coalesced, the singleflight win).
	CacheHits    int64
	CacheMisses  int64
	Coalesced    int64
	Compressions int64
	Evictions    int64
	// CacheRejects counts artifacts too large for their shard's budget.
	CacheRejects int64
	// CacheEntries / CacheBytes are the cache's current occupancy.
	CacheEntries int
	CacheBytes   int64

	// Payload bytes that crossed the wire in raw and compressed blocks.
	BytesServedRaw        int64
	BytesServedCompressed int64

	// Connection counters. ConnsRejected counts connections turned away
	// with statusBusy at the MaxConns cap.
	ConnsTotal    int64
	ConnsActive   int64
	ConnsRejected int64
	Errors        int64

	// Latency is the per-connection wall-time histogram, one bucket per
	// bound plus a trailing overflow bucket.
	Latency []LatencyBucket
}

// snapshot materialises the atomics into a Stats value.
func (m *metrics) snapshot() Stats {
	s := Stats{
		CacheHits:             m.cacheHits.Load(),
		CacheMisses:           m.cacheMisses.Load(),
		Coalesced:             m.coalesced.Load(),
		Compressions:          m.compressions.Load(),
		Evictions:             m.evictions.Load(),
		CacheRejects:          m.cacheRejects.Load(),
		BytesServedRaw:        m.bytesRaw.Load(),
		BytesServedCompressed: m.bytesCompressed.Load(),
		ConnsTotal:            m.connsTotal.Load(),
		ConnsActive:           m.connsActive.Load(),
		ConnsRejected:         m.connsRejected.Load(),
		Errors:                m.errors.Load(),
	}
	s.Latency = make([]LatencyBucket, 0, len(m.latency))
	for i := range m.latency {
		b := LatencyBucket{Count: m.latency[i].Load()}
		if i < len(latencyBounds) {
			b.UpTo = latencyBounds[i]
		}
		s.Latency = append(s.Latency, b)
	}
	return s
}

// String renders the snapshot as a compact multi-line report, the format
// proxyd prints on SIGUSR1 and at shutdown.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache: %d hits, %d misses, %d coalesced, %d compressions, %d evictions, %d rejects\n",
		s.CacheHits, s.CacheMisses, s.Coalesced, s.Compressions, s.Evictions, s.CacheRejects)
	fmt.Fprintf(&b, "cache occupancy: %d entries, %d bytes\n", s.CacheEntries, s.CacheBytes)
	fmt.Fprintf(&b, "served: %d bytes raw, %d bytes compressed\n", s.BytesServedRaw, s.BytesServedCompressed)
	fmt.Fprintf(&b, "conns: %d total, %d active, %d rejected, %d errors\n",
		s.ConnsTotal, s.ConnsActive, s.ConnsRejected, s.Errors)
	b.WriteString("latency:")
	for _, bk := range s.Latency {
		if bk.Count == 0 {
			continue
		}
		if bk.UpTo == 0 {
			fmt.Fprintf(&b, " [+inf]=%d", bk.Count)
		} else {
			fmt.Fprintf(&b, " [<%v]=%d", bk.UpTo, bk.Count)
		}
	}
	return b.String()
}
