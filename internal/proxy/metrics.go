package proxy

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
)

// numLatencyBounds is len(latencyBounds); the histogram carries one extra
// overflow bucket.
const numLatencyBounds = 11

// latencyBounds are the upper edges of the per-connection latency
// histogram buckets; durations past the last bound land in the overflow
// bucket.
var latencyBounds = [numLatencyBounds]time.Duration{
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
}

// latencyBoundsSeconds is the same edge set in the seconds unit the
// registry histogram uses.
func latencyBoundsSeconds() []float64 {
	out := make([]float64, len(latencyBounds))
	for i, b := range latencyBounds {
		out[i] = b.Seconds()
	}
	return out
}

// metrics is the server's hot-path instrumentation, now backed by the
// obs.Registry so the same instruments that feed Server.Stats (and the
// SIGUSR1 report) also feed the admin plane's /metrics and /statsz — one
// source of truth. Every instrument is an atomic; the serve path never
// takes a lock to count.
type metrics struct {
	requests     *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	coalesced    *obs.Counter
	compressions *obs.Counter
	evictions    *obs.Counter
	cacheRejects *obs.Counter

	bytesRaw        *obs.Counter
	bytesCompressed *obs.Counter

	// Cluster-plane counters: peer artifact fetches the miss path ran
	// instead of compressing locally, and how the ring routed cacheable
	// requests (owner = this node owns the key, remote = a peer does).
	peerFetches     *obs.Counter
	peerFetchErrors *obs.Counter
	ringOwnerHits   *obs.Counter
	ringRemoteHits  *obs.Counter

	connsTotal    *obs.Counter
	connsActive   *obs.Gauge
	connsRejected *obs.Counter
	errors        *obs.Counter

	cacheEntries *obs.Gauge
	cacheBytes   *obs.Gauge
	// compressQueueDepth counts requests currently queued for or holding a
	// compression worker slot — the backlog signal the dynamic decider
	// prices server-side waiting with.
	compressQueueDepth *obs.Gauge

	latency *obs.Histogram

	// Compression-plane instruments: per-scheme input volume (the registry
	// carries no labels, so each scheme gets a suffixed counter) and the
	// server-side compress throughput distribution.
	compressInput [len(compressSchemes)]*obs.Counter
	compressRate  *obs.Histogram
}

// compressSchemes are the schemes the compression-plane counters cover, in
// a fixed order shared by metrics registration and Stats.
var compressSchemes = [4]codec.Scheme{codec.Gzip, codec.Compress, codec.Bzip2, codec.Zlib}

// newMetrics registers the server's instrument set on reg. Metric names
// are part of the admin-plane contract documented in README "Observability".
func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		requests:     reg.Counter("proxy_requests_total", "Requests parsed off accepted connections."),
		cacheHits:    reg.Counter("proxy_cache_hits_total", "Requests served from the artifact cache."),
		cacheMisses:  reg.Counter("proxy_cache_misses_total", "Requests that missed the artifact cache."),
		coalesced:    reg.Counter("proxy_coalesced_total", "Misses that waited on an identical in-flight compression."),
		compressions: reg.Counter("proxy_compressions_total", "Distinct artifacts actually compressed."),
		evictions:    reg.Counter("proxy_cache_evictions_total", "Artifacts evicted by the LRU byte budget."),
		cacheRejects: reg.Counter("proxy_cache_rejects_total", "Artifacts too large for their shard's budget."),

		bytesRaw:        reg.Counter("proxy_bytes_served_raw_total", "Raw block payload bytes written to the wire."),
		bytesCompressed: reg.Counter("proxy_bytes_served_compressed_total", "Compressed block payload bytes written to the wire."),

		peerFetches:     reg.Counter("proxy_peer_fetches_total", "Cache misses satisfied by fetching the artifact from its ring owner."),
		peerFetchErrors: reg.Counter("proxy_peer_fetch_errors_total", "Peer artifact fetches that failed and fell back to local compression."),
		ringOwnerHits:   reg.Counter("proxy_ring_owner_hits_total", "Cache-missing cacheable requests whose key this node owns."),
		ringRemoteHits:  reg.Counter("proxy_ring_remote_hits_total", "Cache-missing cacheable requests whose key a peer owns."),

		connsTotal:    reg.Counter("proxy_conns_total", "Connections accepted and served."),
		connsActive:   reg.Gauge("proxy_conns_active", "Connections currently being served."),
		connsRejected: reg.Counter("proxy_conns_rejected_total", "Connections shed with statusBusy at the MaxConns cap."),
		errors:        reg.Counter("proxy_errors_total", "Connections that ended in an error."),

		cacheEntries: reg.Gauge("proxy_cache_entries", "Artifacts currently cached."),
		cacheBytes:   reg.Gauge("proxy_cache_bytes", "Bytes currently charged to the artifact cache."),

		compressQueueDepth: reg.Gauge("server_compress_queue_depth",
			"Requests queued for or holding a compression worker slot."),

		latency: reg.Histogram("proxy_conn_seconds", "Per-connection wall time.", latencyBoundsSeconds()),

		compressRate: reg.Histogram("server_compress_bytes_per_second",
			"Raw bytes consumed per second of wall time building one artifact (all workers combined), one sample per compression.",
			[]float64{1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30}),
	}
	for i, s := range compressSchemes {
		m.compressInput[i] = reg.Counter("server_compress_input_bytes_total_"+s.String(),
			"Raw bytes submitted to "+s.String()+" compression when building artifacts.")
	}
	return m
}

// observeCompress records one artifact build: its scheme's input volume and
// the build's overall throughput.
func (m *metrics) observeCompress(scheme codec.Scheme, rawBytes int, d time.Duration) {
	for i, s := range compressSchemes {
		if s == scheme {
			m.compressInput[i].Add(int64(rawBytes))
			break
		}
	}
	if sec := d.Seconds(); sec > 0 {
		m.compressRate.Observe(float64(rawBytes) / sec)
	}
}

// observeLatency records one connection's wall time.
func (m *metrics) observeLatency(d time.Duration) {
	m.latency.Observe(d.Seconds())
}

// LatencyBucket is one histogram bucket of a Stats snapshot. UpTo is the
// inclusive upper edge; the overflow bucket has UpTo == 0.
type LatencyBucket struct {
	UpTo  time.Duration
	Count int64
}

// Stats is a point-in-time snapshot of the server's counters, returned by
// Server.Stats. The same instruments back the admin plane, so this
// snapshot, the SIGUSR1 report and /statsz always agree.
//
// Counter relationships (exact when the cache never evicts, otherwise
// lower bounds):
//
//	CacheHits + CacheMisses   == cacheable requests served
//	Compressions + Coalesced  == CacheMisses (modulo errored requests)
//	Compressions              == distinct (file, scheme, decider) keys built
type Stats struct {
	// Requests counts frames successfully parsed off accepted
	// connections (LIST and GET alike).
	Requests int64

	// Cache counters. A request that finds its compressed block stream in
	// the cache is a hit; otherwise it is a miss and either runs the
	// compression itself (Compressions) or waits on an identical in-flight
	// compression (Coalesced, the singleflight win).
	CacheHits    int64
	CacheMisses  int64
	Coalesced    int64
	Compressions int64
	Evictions    int64
	// CacheRejects counts artifacts too large for their shard's budget.
	CacheRejects int64
	// CacheEntries / CacheBytes are the cache's current occupancy.
	CacheEntries int
	CacheBytes   int64
	// CompressQueueDepth is the instantaneous compression backlog:
	// requests queued for or holding a worker slot at snapshot time.
	CompressQueueDepth int64

	// Payload bytes that crossed the wire in raw and compressed blocks.
	BytesServedRaw        int64
	BytesServedCompressed int64

	// Cluster counters: misses satisfied by fetching the compressed
	// artifact from its ring owner (vs recompressing locally), fetches
	// that failed and degraded to local compression, and how the ring
	// routed this node's cache-missing cacheable requests.
	PeerFetches     int64
	PeerFetchErrors int64
	RingOwnerHits   int64
	RingRemoteHits  int64

	// Connection counters. ConnsRejected counts connections turned away
	// with statusBusy at the MaxConns cap.
	ConnsTotal    int64
	ConnsActive   int64
	ConnsRejected int64
	Errors        int64

	// Latency is the per-connection wall-time histogram, one bucket per
	// bound plus a trailing overflow bucket.
	Latency []LatencyBucket

	// CompressInputBytes is raw bytes submitted to each compression scheme
	// when building artifacts, keyed by scheme name.
	CompressInputBytes map[string]int64
}

// snapshot materialises the instruments into a Stats value.
func (m *metrics) snapshot() Stats {
	s := Stats{
		Requests:              m.requests.Value(),
		CacheHits:             m.cacheHits.Value(),
		CacheMisses:           m.cacheMisses.Value(),
		Coalesced:             m.coalesced.Value(),
		Compressions:          m.compressions.Value(),
		Evictions:             m.evictions.Value(),
		CacheRejects:          m.cacheRejects.Value(),
		CompressQueueDepth:    m.compressQueueDepth.Value(),
		BytesServedRaw:        m.bytesRaw.Value(),
		BytesServedCompressed: m.bytesCompressed.Value(),
		PeerFetches:           m.peerFetches.Value(),
		PeerFetchErrors:       m.peerFetchErrors.Value(),
		RingOwnerHits:         m.ringOwnerHits.Value(),
		RingRemoteHits:        m.ringRemoteHits.Value(),
		ConnsTotal:            m.connsTotal.Value(),
		ConnsActive:           m.connsActive.Value(),
		ConnsRejected:         m.connsRejected.Value(),
		Errors:                m.errors.Value(),
	}
	hs := m.latency.Snapshot()
	s.Latency = make([]LatencyBucket, 0, len(hs.Counts))
	for i, c := range hs.Counts {
		b := LatencyBucket{Count: c}
		if i < len(latencyBounds) {
			b.UpTo = latencyBounds[i]
		}
		s.Latency = append(s.Latency, b)
	}
	s.CompressInputBytes = make(map[string]int64, len(compressSchemes))
	for i, sc := range compressSchemes {
		s.CompressInputBytes[sc.String()] = m.compressInput[i].Value()
	}
	return s
}

// String renders the snapshot as a compact multi-line report, the format
// proxyd prints on SIGUSR1 and at shutdown.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests: %d\n", s.Requests)
	fmt.Fprintf(&b, "cache: %d hits, %d misses, %d coalesced, %d compressions, %d evictions, %d rejects\n",
		s.CacheHits, s.CacheMisses, s.Coalesced, s.Compressions, s.Evictions, s.CacheRejects)
	fmt.Fprintf(&b, "cache occupancy: %d entries, %d bytes\n", s.CacheEntries, s.CacheBytes)
	if s.CompressQueueDepth != 0 {
		fmt.Fprintf(&b, "compress queue: %d waiting or running\n", s.CompressQueueDepth)
	}
	fmt.Fprintf(&b, "served: %d bytes raw, %d bytes compressed\n", s.BytesServedRaw, s.BytesServedCompressed)
	fmt.Fprintf(&b, "conns: %d total, %d active, %d rejected, %d errors\n",
		s.ConnsTotal, s.ConnsActive, s.ConnsRejected, s.Errors)
	if s.PeerFetches != 0 || s.PeerFetchErrors != 0 || s.RingOwnerHits != 0 || s.RingRemoteHits != 0 {
		fmt.Fprintf(&b, "cluster: %d peer fetches, %d fetch errors, %d owner hits, %d remote hits\n",
			s.PeerFetches, s.PeerFetchErrors, s.RingOwnerHits, s.RingRemoteHits)
	}
	b.WriteString("compress input:")
	for _, sc := range compressSchemes {
		fmt.Fprintf(&b, " %s=%d", sc, s.CompressInputBytes[sc.String()])
	}
	b.WriteString("\n")
	b.WriteString("latency:")
	for _, bk := range s.Latency {
		if bk.Count == 0 {
			continue
		}
		if bk.UpTo == 0 {
			fmt.Fprintf(&b, " [+inf]=%d", bk.Count)
		} else {
			fmt.Fprintf(&b, " [<%v]=%d", bk.UpTo, bk.Count)
		}
	}
	return b.String()
}
