package proxy

import (
	"bufio"
	"bytes"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/proxy/faultconn"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// retryingClient returns a client tuned for a hostile link: generous retry
// budget, fast backoff so tests stay quick, and a hard per-attempt
// deadline so nothing can hang.
func retryingClient(addr string) *Client {
	cli := NewClient(addr)
	cli.Timeout = 10 * time.Second
	cli.MaxRetries = 40
	cli.RetryBaseDelay = time.Millisecond
	cli.RetryMaxDelay = 20 * time.Millisecond
	return cli
}

// TestFetchCompletesUnderFaults is the acceptance stress test: with a
// seeded fault plan injecting delays, fragmented writes, resets,
// truncations and bit-flips at a 1% per-operation rate on every server
// connection, the retrying/resuming client must complete every fetch with
// CRC-verified content, and the server must shut down without goroutine
// leaks. Run under -race by scripts/ci.sh.
func TestFetchCompletesUnderFaults(t *testing.T) {
	plan := faultconn.Plan{
		Seed:         42,
		DelayProb:    0.05,
		MaxDelay:     200 * time.Microsecond,
		FragmentProb: 0.20,
		ResetProb:    0.01,
		TruncateProb: 0.01,
		BitFlipProb:  0.01,
	}
	srv := NewServerWith(nil, Config{
		WrapConn:    plan.Wrapper(),
		ReadTimeout: 2 * time.Second,
	})
	files := map[string][]byte{
		"small.txt": workload.Generate(workload.ClassMail, 5_000, 1),
		"mid.xml":   workload.Generate(workload.ClassHTML, 300_000, 2),
		"big.bin":   workload.Generate(workload.ClassMail, 700_000, 3),
	}
	for name, content := range files {
		srv.Register(name, content)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	cli := retryingClient(addr)
	modes := []Mode{ModeRaw, ModeOnDemand, ModeSelective}
	fetches, retried := 0, 0
	for rep := 0; rep < 3; rep++ {
		for name, content := range files {
			for _, mode := range modes {
				got, stats, err := cli.Fetch(name, codec.Gzip, mode)
				if err != nil {
					t.Fatalf("rep %d %s %v: %v (attempts %d)", rep, name, mode, err, stats.Attempts)
				}
				if !bytes.Equal(got, content) {
					t.Fatalf("rep %d %s %v: content mismatch (%d vs %d bytes)", rep, name, mode, len(got), len(content))
				}
				fetches++
				if stats.Attempts > 1 {
					retried++
				}
			}
		}
	}
	if retried == 0 {
		t.Errorf("fault plan never fired across %d fetches; the test is not exercising retries", fetches)
	}
	t.Logf("%d fetches completed, %d needed retries", fetches, retried)

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Goroutine-leak check: allow the runtime a moment to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// cutConn delivers only the first `budget` bytes written through it, then
// kills the connection — a deterministic mid-stream truncation.
type cutConn struct {
	net.Conn
	budget int
}

func (c *cutConn) Write(b []byte) (int, error) {
	if c.budget <= 0 {
		c.Conn.Close()
		return 0, faultconn.ErrInjectedReset
	}
	if len(b) > c.budget {
		n, _ := c.Conn.Write(b[:c.budget])
		c.budget = 0
		c.Conn.Close()
		return n, faultconn.ErrInjectedReset
	}
	c.budget -= len(b)
	return c.Conn.Write(b)
}

// TestFetchResumesAfterTruncation: the first connection dies mid-block 2;
// the retry must resume at the block boundary (128 000 raw bytes) rather
// than refetch from zero, and the assembled content must verify.
func TestFetchResumesAfterTruncation(t *testing.T) {
	content := workload.Generate(workload.ClassHTML, 400_000, 7)
	var conns atomic.Int64
	// Cut the first connection mid-way through the second block's payload;
	// later connections are untouched.
	cut := getHeaderLen + blockHeaderLen + 128_000 + blockHeaderLen + 1_000
	srv := NewServerWith(nil, Config{
		WrapConn: func(conn net.Conn) net.Conn {
			if conns.Add(1) == 1 {
				return &cutConn{Conn: conn, budget: cut}
			}
			return conn
		},
	})
	srv.Register("f", content)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := retryingClient(addr)
	got, stats, err := cli.Fetch("f", codec.Gzip, ModeRaw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("resumed content mismatch")
	}
	if stats.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", stats.Attempts)
	}
	if stats.ResumedBytes != 128_000 {
		t.Errorf("resumed %d bytes, want 128000 (one verified block)", stats.ResumedBytes)
	}
	// Attempt 1 received the header and one full block (block 2's frame
	// died mid-payload, so it does not count); attempt 2 received a header,
	// the three remaining blocks, and the end frame. Nothing else.
	if want := 2*getHeaderLen + 5*blockHeaderLen + len(content); stats.WireBytes != want {
		t.Errorf("WireBytes = %d, want %d (only frames actually received)", stats.WireBytes, want)
	}
}

// TestEndFrameCorruptionPreservesResume: a bit-flip in the terminal
// frame's content-CRC field must read as transient link damage — the end
// frame carries a CRC over its own header — not as "the file changed", so
// the retry resumes from the fully verified prefix instead of starting
// over.
func TestEndFrameCorruptionPreservesResume(t *testing.T) {
	content := workload.Generate(workload.ClassHTML, 2_000, 11)
	const blockSize = 500
	var conns atomic.Int64
	addr := maliciousServer(t, func(conn net.Conn) {
		first := conns.Add(1) == 1
		req, err := readRequest(bufio.NewReader(conn))
		if err != nil {
			return
		}
		if err := writeGetHeader(conn, getHeader{Status: statusOK, RawSize: uint64(len(content)), Scheme: codec.Gzip, Offset: req.Offset}); err != nil {
			return
		}
		for i := int(req.Offset); i < len(content); i += blockSize {
			end := i + blockSize
			if end > len(content) {
				end = len(content)
			}
			if err := writeBlock(conn, wireBlock{Flag: blockFlagRaw, RawLen: uint32(end - i), Payload: content[i:end]}); err != nil {
				return
			}
		}
		var endFrame bytes.Buffer
		_ = writeEnd(&endFrame, crcOf(content))
		frame := endFrame.Bytes()
		if first {
			frame[2] ^= 0x40 // flip one bit inside the content-CRC field
		}
		_, _ = conn.Write(frame)
	})
	cli := retryingClient(addr)
	got, stats, err := cli.Fetch("f", codec.Gzip, ModeRaw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch")
	}
	if stats.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", stats.Attempts)
	}
	if stats.ResumedBytes != len(content) {
		t.Errorf("resumed %d bytes, want %d (every block was verified before the bad end frame)", stats.ResumedBytes, len(content))
	}
}

// busyServerFixture stands up a MaxConns=1 server on the virtual network
// and returns the clock, network and a ledger-aware client. The whole
// busy/retry dance — hog occupies the only slot, the fetch backs off,
// the hog's slot frees 100 virtual milliseconds later — runs in virtual
// time, so these tests are immune to host-scheduler stalls that used to
// make the real-time versions flaky.
func busyServerFixture(t *testing.T) (*simnet.Clock, *simnet.Network, *Server, *Client) {
	t.Helper()
	clock := simnet.NewClock()
	nw := simnet.NewNetwork(clock, simnet.Link{BytesPerSec: 1e6, Latency: time.Millisecond})
	ln, err := nw.Listen("proxy")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(nil, Config{MaxConns: 1, Clock: clock})
	srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	cli := NewClient("proxy")
	cli.Clock = clock
	cli.Dial = func() (net.Conn, error) { return nw.Dial("proxy") }
	cli.Timeout = 10 * time.Second
	cli.MaxRetries = 40
	cli.RetryBaseDelay = 10 * time.Millisecond
	cli.RetryMaxDelay = 50 * time.Millisecond
	return clock, nw, srv, cli
}

// hogSlot (called from inside the clock ledger) occupies the server's
// single connection slot with a silent connection and schedules its
// release 100 virtual milliseconds out — the point of the tests is that
// the retrying client rides through. It must run in the same Clock.Run
// as the retrying call: were it in its own Run, the clock would race to
// the release instant the moment that Run's ledger emptied, and the
// retry path under test would never see a busy server.
func hogSlot(t *testing.T, clock *simnet.Clock, nw *simnet.Network) {
	t.Helper()
	hog, err := nw.Dial("proxy")
	if err != nil {
		t.Error(err)
		return
	}
	clock.Go(func() {
		clock.Sleep(100 * time.Millisecond)
		hog.Close()
	})
}

// TestFetchRetriesBusy: the ErrBusy contract ("safe to retry") is
// honored — a fetch that lands on a saturated server succeeds once the
// slot frees up. Runs entirely in virtual time: the backoff sleeps and
// the hog's 100 ms occupancy advance the simnet clock, not the wall.
func TestFetchRetriesBusy(t *testing.T) {
	content := workload.Generate(workload.ClassMail, 10_000, 9)
	clock, nw, srv, cli := busyServerFixture(t)
	srv.Register("f", content)

	var got []byte
	var stats FetchStats
	clock.Run(func() {
		hogSlot(t, clock, nw)
		var err error
		got, stats, err = cli.Fetch("f", codec.Gzip, ModeSelective)
		if err != nil {
			t.Errorf("fetch through busy server: %v", err)
		}
	})
	if t.Failed() {
		return
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch")
	}
	if stats.Attempts < 2 {
		t.Errorf("attempts = %d, want ≥ 2 (first should hit ErrBusy)", stats.Attempts)
	}
}

// TestListRetriesBusy: List honors the same retry contract, also in
// virtual time.
func TestListRetriesBusy(t *testing.T) {
	clock, nw, srv, cli := busyServerFixture(t)
	srv.Register("f", []byte("x"))

	var names []string
	clock.Run(func() {
		hogSlot(t, clock, nw)
		var err error
		names, err = cli.List()
		if err != nil {
			t.Errorf("list through busy server: %v", err)
		}
	})
	if t.Failed() {
		return
	}
	if len(names) != 1 || names[0] != "f" {
		t.Fatalf("names = %v", names)
	}
}
