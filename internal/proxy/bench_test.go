package proxy

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/workload"
)

// BenchmarkServeCacheHit measures the steady-state serve path over real
// loopback TCP: every fetch after the first is a cache hit, so this is the
// number later PRs must not regress — the old global-mutex path paid a
// full re-compression here in on-demand mode.
func BenchmarkServeCacheHit(b *testing.B) {
	srv := NewServer(nil)
	data := workload.Generate(workload.ClassXML, 256_000, 1)
	srv.Register("doc.xml", data)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	// Warm the artifact so the timed region measures hits only.
	if _, _, err := NewClient(addr).Fetch("doc.xml", codec.Gzip, ModeOnDemand); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cli := NewClient(addr)
		for pb.Next() {
			if _, _, err := cli.Fetch("doc.xml", codec.Gzip, ModeOnDemand); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if st := srv.Stats(); st.Compressions != 1 {
		b.Fatalf("cache-hit benchmark compressed %d times", st.Compressions)
	}
}

// BenchmarkServeCacheMissParallel disables the cache so (nearly) every
// fetch compresses on the serving path, cycling over distinct files to
// defeat singleflight coalescing: the worst-case concurrent-miss baseline.
func BenchmarkServeCacheMissParallel(b *testing.B) {
	srv := NewServerWith(nil, Config{CacheBytes: -1})
	const nFiles = 32
	size := 64_000
	for i := 0; i < nFiles; i++ {
		srv.Register(fmt.Sprintf("f%02d.xml", i), workload.Generate(workload.ClassXML, size, uint64(i)))
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	var next atomic.Int64
	b.SetBytes(int64(size))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cli := NewClient(addr)
		for pb.Next() {
			name := fmt.Sprintf("f%02d.xml", next.Add(1)%nFiles)
			if _, _, err := cli.Fetch(name, codec.Gzip, ModeOnDemand); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
