package proxy

// Unit tests for the server's cluster surface (peer.go): the peer-fetch
// consult on the miss path, ring-routing and degradation counters, the
// owner-side Artifact builder, the cached/admit accessors replication
// uses, and generation synchronization. internal/cluster composes these
// into a ring; these tests pin each hook's contract in isolation with a
// scripted PeerFetchFunc.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/codec"
	"repro/internal/selective"
	"repro/internal/workload"
)

// peerServer builds a server with one registered file and a scripted
// peer-fetch hook, serving on a real loopback listener.
func peerServer(t *testing.T, name string, content []byte, pf PeerFetchFunc) (*Server, string) {
	t.Helper()
	srv := NewServerWith(nil, Config{CacheBytes: 1 << 20})
	srv.Register(name, content)
	srv.SetPeerFetch(pf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// TestPeerFetchServesRemoteArtifact: when the hook supplies the finished
// artifact, the miss is served from it — byte-exact, no local
// compression, and the peer/ring counters say what happened.
func TestPeerFetchServesRemoteArtifact(t *testing.T) {
	content := workload.Generate(workload.ClassMail, 60000, 7)
	c := codec.MustNew(codec.Gzip, 0)
	enc, err := selective.Encode(content, c, selective.AlwaysCompress{})
	if err != nil {
		t.Fatal(err)
	}
	var asked []ArtifactKey
	srv, addr := peerServer(t, "m.txt", content, func(key ArtifactKey) ([]selective.Block, error) {
		asked = append(asked, key)
		return enc.Blocks, nil
	})

	got, _, err := NewClient(addr).Fetch("m.txt", codec.Gzip, ModeOnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("peer-served payload differs from registered content")
	}
	if len(asked) != 1 {
		t.Fatalf("peer hook consulted %d times, want 1", len(asked))
	}
	want := ArtifactKey{Name: "m.txt", Gen: 1, Scheme: codec.Gzip, FP: "always"}
	if asked[0] != want {
		t.Fatalf("peer hook asked for %+v, want %+v", asked[0], want)
	}
	st := srv.Stats()
	if st.Compressions != 0 {
		t.Fatalf("local compressions = %d, want 0 (artifact came from the peer)", st.Compressions)
	}
	if st.PeerFetches != 1 || st.PeerFetchErrors != 0 {
		t.Fatalf("peer counters = %d fetches / %d errors, want 1 / 0", st.PeerFetches, st.PeerFetchErrors)
	}
	if st.RingRemoteHits != 1 || st.RingOwnerHits != 0 {
		t.Fatalf("ring routing = %d owner / %d remote, want 0 / 1", st.RingOwnerHits, st.RingRemoteHits)
	}

	// The server does NOT cache what the hook returned — admission is the
	// cluster node's hot-key-gated decision (AdmitArtifact), not the
	// dataplane's. A second miss consults the hook again.
	if _, _, err := NewClient(addr).Fetch("m.txt", codec.Gzip, ModeOnDemand); err != nil {
		t.Fatal(err)
	}
	if len(asked) != 2 {
		t.Fatalf("second miss consulted the hook %d times total, want 2", len(asked))
	}
	if st := srv.Stats(); st.Compressions != 0 || st.PeerFetches != 2 {
		t.Fatalf("after second miss: %d compressions / %d peer fetches, want 0 / 2", st.Compressions, st.PeerFetches)
	}
}

// TestPeerFetchOwnedLocallyCompressesHere: ErrOwnedLocally routes the miss
// to local compression and counts an owner hit, not a peer fetch.
func TestPeerFetchOwnedLocallyCompressesHere(t *testing.T) {
	content := workload.Generate(workload.ClassHTML, 40000, 3)
	srv, addr := peerServer(t, "p.html", content, func(ArtifactKey) ([]selective.Block, error) {
		return nil, ErrOwnedLocally
	})
	got, _, err := NewClient(addr).Fetch("p.html", codec.Gzip, ModeOnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("payload mismatch")
	}
	st := srv.Stats()
	if st.Compressions != 1 {
		t.Fatalf("compressions = %d, want 1", st.Compressions)
	}
	if st.PeerFetches != 0 || st.PeerFetchErrors != 0 {
		t.Fatalf("owned-locally miss touched peer counters: %d / %d", st.PeerFetches, st.PeerFetchErrors)
	}
	if st.RingOwnerHits != 1 || st.RingRemoteHits != 0 {
		t.Fatalf("ring routing = %d owner / %d remote, want 1 / 0", st.RingOwnerHits, st.RingRemoteHits)
	}
}

// TestPeerFetchErrorDegradesToLocal: any other hook error must degrade to
// local compression — the client sees a normal successful fetch, and the
// failure shows up only in PeerFetchErrors.
func TestPeerFetchErrorDegradesToLocal(t *testing.T) {
	content := workload.Generate(workload.ClassSource, 50000, 11)
	srv, addr := peerServer(t, "s.c", content, func(ArtifactKey) ([]selective.Block, error) {
		return nil, errors.New("owner unreachable")
	})
	got, _, err := NewClient(addr).Fetch("s.c", codec.Gzip, ModeOnDemand)
	if err != nil {
		t.Fatalf("peer failure leaked to the client: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("payload mismatch")
	}
	st := srv.Stats()
	if st.Compressions != 1 {
		t.Fatalf("compressions = %d, want 1 (degraded to local)", st.Compressions)
	}
	if st.PeerFetchErrors != 1 || st.PeerFetches != 0 {
		t.Fatalf("peer counters = %d fetches / %d errors, want 0 / 1", st.PeerFetches, st.PeerFetchErrors)
	}
}

// TestOnCompressObserver: every artifact actually compressed locally is
// reported exactly once with its full key; cache hits are not.
func TestOnCompressObserver(t *testing.T) {
	content := workload.Generate(workload.ClassXML, 30000, 5)
	srv := NewServerWith(nil, Config{CacheBytes: 1 << 20})
	srv.Register("d.xml", content)
	var seen []ArtifactKey
	srv.SetOnCompress(func(k ArtifactKey) { seen = append(seen, k) })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 2; i++ {
		if _, _, err := NewClient(addr).Fetch("d.xml", codec.Gzip, ModeOnDemand); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 1 {
		t.Fatalf("observer fired %d times for one compression, want 1", len(seen))
	}
	want := ArtifactKey{Name: "d.xml", Gen: 1, Scheme: codec.Gzip, FP: "always"}
	if seen[0] != want {
		t.Fatalf("observer saw %+v, want %+v", seen[0], want)
	}
	srv.SetOnCompress(nil) // must not panic and must clear the hook
}

// TestArtifactOwnerPath: Artifact builds (and caches) the artifact the way
// an owner serves a peer fetch, and rejects unknown files, mismatched
// generations and foreign decider fingerprints.
func TestArtifactOwnerPath(t *testing.T) {
	content := workload.Generate(workload.ClassMail, 45000, 9)
	srv := NewServerWith(nil, Config{CacheBytes: 1 << 20})
	srv.Register("a.txt", content)
	if fp := srv.DeciderFP(); fp == "" {
		t.Fatal("server has no decider fingerprint")
	}

	key := ArtifactKey{Name: "a.txt", Gen: 1, Scheme: codec.Gzip, FP: "always"}
	blocks, err := srv.Artifact(key)
	if err != nil {
		t.Fatal(err)
	}
	built := &selective.Encoded{Scheme: codec.Gzip, Blocks: blocks}
	dec, err := selective.Decode(built.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, content) {
		t.Fatal("artifact does not round-trip to the registered content")
	}
	if got, ok := srv.CachedArtifact(key); !ok || len(got) != len(blocks) {
		t.Fatal("built artifact did not land in the cache")
	}

	if _, err := srv.Artifact(ArtifactKey{Name: "nope", Gen: 1, Scheme: codec.Gzip, FP: "always"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown file: got %v, want ErrNotFound", err)
	}
	if _, err := srv.Artifact(ArtifactKey{Name: "a.txt", Gen: 99, Scheme: codec.Gzip, FP: "always"}); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("wrong generation: got %v, want ErrStaleGeneration", err)
	}
	if _, err := srv.Artifact(ArtifactKey{Name: "a.txt", Gen: 1, Scheme: codec.Gzip, FP: "martian"}); err == nil {
		t.Fatal("unknown decider fingerprint must be rejected")
	}
}

// TestAdmitAndSyncGeneration: AdmitArtifact installs a replica, a
// generation sync at a higher generation drops it (and a stale sync is a
// no-op), exactly the dance a ring-wide invalidation performs.
func TestAdmitAndSyncGeneration(t *testing.T) {
	content := workload.Generate(workload.ClassHTML, 35000, 13)
	c := codec.MustNew(codec.Gzip, 0)
	enc, err := selective.Encode(content, c, selective.AlwaysCompress{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(nil, Config{CacheBytes: 1 << 20})
	srv.Register("r.html", content)

	key := ArtifactKey{Name: "r.html", Gen: 1, Scheme: codec.Gzip, FP: "always"}
	srv.AdmitArtifact(key, enc.Blocks)
	if _, ok := srv.CachedArtifact(key); !ok {
		t.Fatal("admitted replica not visible")
	}
	if gen, ok := srv.Generation("r.html"); !ok || gen != 1 {
		t.Fatalf("Generation = %d/%v, want 1/true", gen, ok)
	}

	// A stale broadcast (same or lower generation) changes nothing.
	srv.SyncGeneration("r.html", 1)
	if gen, _ := srv.Generation("r.html"); gen != 1 {
		t.Fatalf("stale sync moved the generation to %d", gen)
	}
	// An unknown file's broadcast changes nothing either.
	srv.SyncGeneration("ghost", 5)
	if _, ok := srv.Generation("ghost"); ok {
		t.Fatal("sync invented a generation for an unregistered file")
	}

	// A real invalidation raises the floor and evicts the stale replica.
	srv.SyncGeneration("r.html", 3)
	if gen, _ := srv.Generation("r.html"); gen != 3 {
		t.Fatalf("generation = %d after sync, want 3", gen)
	}
	if _, ok := srv.CachedArtifact(key); ok {
		t.Fatal("stale-generation replica survived the invalidation")
	}
	// And admitting below the floor is silently refused.
	srv.AdmitArtifact(key, enc.Blocks)
	if _, ok := srv.CachedArtifact(key); ok {
		t.Fatal("cache accepted an artifact below its generation floor")
	}
}
