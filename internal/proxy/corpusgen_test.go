//go:build corpusgen

package proxy

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestRegenFuzzCorpus rewrites the checked-in fuzz seeds in the current
// wire format. Run with: go test -tags corpusgen -run TestRegenFuzzCorpus ./internal/proxy
func TestRegenFuzzCorpus(t *testing.T) {
	write := func(fuzzName, seedName string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s/%s (%d bytes)\n", fuzzName, seedName, len(data))
	}

	var get bytes.Buffer
	if err := writeRequest(&get, request{Op: opGet, Name: "index.txt", Scheme: 1, Mode: ModeOnDemand, Offset: 128_000, ReqID: 0xC0FFEE}); err != nil {
		t.Fatal(err)
	}
	write("FuzzReadRequest", "seed-valid-get", get.Bytes())

	var getEx bytes.Buffer
	if err := writeRequest(&getEx, request{Op: opGetEx, Name: "index.txt", Scheme: 1, Mode: ModeSelective, Offset: 128_000, ReqID: 0xC0FFEE, Class: 2, BudgetMJ: 1500}); err != nil {
		t.Fatal(err)
	}
	write("FuzzReadRequest", "seed-valid-getex", getEx.Bytes())
	write("FuzzReadRequest", "seed-bad-magic", append([]byte("QXY3"), get.Bytes()[4:]...))
	write("FuzzReadRequest", "seed-overlong-name", []byte("PXY3\x02\xff\xfe"))
	write("FuzzReadRequest", "seed-bad-crc", append(get.Bytes()[:get.Len()-1], get.Bytes()[get.Len()-1]^0xFF))

	var raw, end bytes.Buffer
	if err := writeBlock(&raw, wireBlock{Flag: blockFlagRaw, RawLen: 4, Payload: []byte("data")}); err != nil {
		t.Fatal(err)
	}
	if err := writeEnd(&end, 0x12345678); err != nil {
		t.Fatal(err)
	}
	write("FuzzReadBlockFrame", "seed-raw-block", raw.Bytes())
	write("FuzzReadBlockFrame", "seed-end-frame", end.Bytes())
	write("FuzzReadBlockFrame", "seed-oversized-payload",
		[]byte("\x01\x00\x00\x00\x08\x7f\xff\xff\xff\x00\x00\x00\x00"))
	write("FuzzReadBlockFrame", "seed-bad-payload-crc",
		append(raw.Bytes()[:raw.Len()-1], raw.Bytes()[raw.Len()-1]^0xFF))
}
