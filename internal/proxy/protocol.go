// Package proxy implements the paper's experimental dataplane as a real
// networked system: a proxy server that stores files and serves them raw,
// precompressed, compressed on demand, or selectively compressed
// block-by-block; and a handheld-side client that downloads over TCP and
// decompresses each block in a pipeline concurrent with reception — the
// user-level interleaving of Section 4.1, with the receive path and the
// decompression path in separate goroutines.
//
// The energy numbers of the reproduction come from the simulation stack
// (internal/pipeline); this package exists so the protocol, the framing and
// the interleaving are exercised for real over sockets, as in the paper's
// testbed.
package proxy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/checksum"
	"repro/internal/codec"
)

// Protocol constants.
const (
	protoMagic = "PXY1"

	opList = 0x01
	opGet  = 0x02

	statusOK       = 0x00
	statusNotFound = 0x01
	statusBadReq   = 0x02
	// statusBusy is returned (and the connection closed) when the server
	// is at its concurrent-connection cap.
	statusBusy = 0x03

	blockFlagRaw        = 0x00
	blockFlagCompressed = 0x01
	blockFlagEnd        = 0xFF

	// maxNameLen bounds file names on the wire.
	maxNameLen = 4096
	// maxBlockWire bounds a single block payload (a compressed 0.128 MB
	// block can only be marginally larger than raw).
	maxBlockWire = 1 << 21
)

// Mode is the transfer mode requested by the client.
type Mode byte

// Transfer modes.
const (
	// ModeRaw transfers the file uncompressed.
	ModeRaw Mode = iota + 1
	// ModePrecompressed serves blocks compressed ahead of time on the
	// proxy (Section 3: "all downloaded files are compressed a priori").
	ModePrecompressed
	// ModeOnDemand compresses blocks while the transfer is in flight
	// (Section 5).
	ModeOnDemand
	// ModeSelective applies the block-by-block adaptive scheme of
	// Section 4.3 (on demand).
	ModeSelective
)

func (m Mode) String() string {
	switch m {
	case ModeRaw:
		return "raw"
	case ModePrecompressed:
		return "precompressed"
	case ModeOnDemand:
		return "on-demand"
	case ModeSelective:
		return "selective"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrProtocol is returned for malformed frames.
var ErrProtocol = errors.New("proxy: protocol error")

// ErrNotFound is returned when the server does not have the file.
var ErrNotFound = errors.New("proxy: file not found")

// ErrBusy is returned when the server sheds the connection at its
// concurrent-connection cap; the request is safe to retry.
var ErrBusy = errors.New("proxy: server busy")

// request is the client->server GET message.
type request struct {
	Op     byte
	Name   string
	Scheme codec.Scheme
	Mode   Mode
}

func writeRequest(w io.Writer, req request) error {
	name := []byte(req.Name)
	if len(name) > maxNameLen {
		return fmt.Errorf("%w: name too long", ErrProtocol)
	}
	buf := make([]byte, 0, len(protoMagic)+1+2+len(name)+2)
	buf = append(buf, protoMagic...)
	buf = append(buf, req.Op)
	var n16 [2]byte
	binary.BigEndian.PutUint16(n16[:], uint16(len(name)))
	buf = append(buf, n16[:]...)
	buf = append(buf, name...)
	buf = append(buf, byte(req.Scheme), byte(req.Mode))
	_, err := w.Write(buf)
	return err
}

func readRequest(r io.Reader) (request, error) {
	hdr := make([]byte, len(protoMagic)+1+2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return request{}, err
	}
	if string(hdr[:len(protoMagic)]) != protoMagic {
		return request{}, fmt.Errorf("%w: bad magic", ErrProtocol)
	}
	req := request{Op: hdr[len(protoMagic)]}
	nameLen := int(binary.BigEndian.Uint16(hdr[len(protoMagic)+1:]))
	if nameLen > maxNameLen {
		return request{}, fmt.Errorf("%w: name length %d", ErrProtocol, nameLen)
	}
	rest := make([]byte, nameLen+2)
	if _, err := io.ReadFull(r, rest); err != nil {
		return request{}, fmt.Errorf("%w: truncated request: %v", ErrProtocol, err)
	}
	req.Name = string(rest[:nameLen])
	req.Scheme = codec.Scheme(rest[nameLen])
	req.Mode = Mode(rest[nameLen+1])
	return req, nil
}

// getHeader is the server->client GET response header.
type getHeader struct {
	Status  byte
	RawSize uint64
	Scheme  codec.Scheme
}

func writeGetHeader(w io.Writer, h getHeader) error {
	var buf [10]byte
	buf[0] = h.Status
	binary.BigEndian.PutUint64(buf[1:9], h.RawSize)
	buf[9] = byte(h.Scheme)
	_, err := w.Write(buf[:])
	return err
}

func readGetHeader(r io.Reader) (getHeader, error) {
	var buf [10]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return getHeader{}, fmt.Errorf("%w: truncated header: %v", ErrProtocol, err)
	}
	return getHeader{
		Status:  buf[0],
		RawSize: binary.BigEndian.Uint64(buf[1:9]),
		Scheme:  codec.Scheme(buf[9]),
	}, nil
}

// wireBlock is one framed block on the wire.
type wireBlock struct {
	Flag    byte
	RawLen  uint32
	Payload []byte
}

func writeBlock(w io.Writer, b wireBlock) error {
	var hdr [9]byte
	hdr[0] = b.Flag
	binary.BigEndian.PutUint32(hdr[1:5], b.RawLen)
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(b.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(b.Payload) > 0 {
		if _, err := w.Write(b.Payload); err != nil {
			return err
		}
	}
	return nil
}

func writeEnd(w io.Writer, crc uint32) error {
	var hdr [9]byte
	hdr[0] = blockFlagEnd
	binary.BigEndian.PutUint32(hdr[1:5], crc)
	_, err := w.Write(hdr[:])
	return err
}

// readBlock returns the next block, or ok=false with the trailing CRC when
// the end marker is reached.
func readBlock(r io.Reader) (b wireBlock, crc uint32, ok bool, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wireBlock{}, 0, false, fmt.Errorf("%w: truncated block: %v", ErrProtocol, err)
	}
	if hdr[0] == blockFlagEnd {
		return wireBlock{}, binary.BigEndian.Uint32(hdr[1:5]), false, nil
	}
	if hdr[0] != blockFlagRaw && hdr[0] != blockFlagCompressed {
		return wireBlock{}, 0, false, fmt.Errorf("%w: flag %#x", ErrProtocol, hdr[0])
	}
	b.Flag = hdr[0]
	b.RawLen = binary.BigEndian.Uint32(hdr[1:5])
	payLen := binary.BigEndian.Uint32(hdr[5:9])
	if payLen > maxBlockWire {
		return wireBlock{}, 0, false, fmt.Errorf("%w: block of %d bytes", ErrProtocol, payLen)
	}
	b.Payload = make([]byte, payLen)
	if _, err := io.ReadFull(r, b.Payload); err != nil {
		return wireBlock{}, 0, false, fmt.Errorf("%w: truncated payload: %v", ErrProtocol, err)
	}
	return b, 0, true, nil
}

// crcOf is a helper around the repository's own CRC-32.
func crcOf(data []byte) uint32 { return checksum.CRC32(data) }
