// Package proxy implements the paper's experimental dataplane as a real
// networked system: a proxy server that stores files and serves them raw,
// precompressed, compressed on demand, or selectively compressed
// block-by-block; and a handheld-side client that downloads over TCP and
// decompresses each block in a pipeline concurrent with reception — the
// user-level interleaving of Section 4.1, with the receive path and the
// decompression path in separate goroutines.
//
// The energy numbers of the reproduction come from the simulation stack
// (internal/pipeline); this package exists so the protocol, the framing and
// the interleaving are exercised for real over sockets, as in the paper's
// testbed.
package proxy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/checksum"
	"repro/internal/codec"
	"repro/internal/selective"
)

// Protocol constants. PXY2 hardened the PXY1 framing for a lossy link:
// the request and the GET response header carry a CRC-32 so a corrupted
// frame is distinguishable from an honest answer, the request carries a
// resume offset (and the response echoes the offset actually granted),
// and every block frame carries a CRC-32 of its payload so a fetch can be
// resumed from the last verified block. PXY3 adds a 64-bit request ID to
// the request frame: the client mints one per fetch (shared by every
// retry attempt), the server tags its logs and trace spans with it, so
// one grep or /tracez query follows a request across both sides of the
// wire.
const (
	protoMagic = "PXY3"

	opList = 0x01
	opGet  = 0x02
	// opGetEx is a GET whose tail carries the request's deadline class and
	// energy budget (the dynamic decider's per-request inputs). It is a
	// separate op rather than a widening of opGet so that clients with no
	// attributes to declare keep emitting byte-identical opGet frames.
	opGetEx = 0x03

	statusOK       = 0x00
	statusNotFound = 0x01
	statusBadReq   = 0x02
	// statusBusy is returned (and the connection closed) when the server
	// is at its concurrent-connection cap.
	statusBusy = 0x03

	blockFlagRaw        = 0x00
	blockFlagCompressed = 0x01
	blockFlagEnd        = 0xFF

	// maxNameLen bounds file names on the wire.
	maxNameLen = 4096
	// maxBlockWire bounds a single block payload (a compressed 0.128 MB
	// block can only be marginally larger than raw).
	maxBlockWire = 1 << 21
	// maxBlockRaw bounds a block's claimed decompressed size, mirroring
	// maxBlockWire: the claim sizes the decompressor's output buffer, so
	// it must be capped before any allocation happens.
	maxBlockRaw = 1 << 21

	// reqFixedLen is magic + op + name length.
	reqFixedLen = 4 + 1 + 2
	// reqTailLen is scheme + mode + offset + request ID + CRC, after the
	// name.
	reqTailLen = 1 + 1 + 8 + 8 + 4
	// reqTailExLen is the opGetEx tail: the opGet tail plus a deadline
	// class byte and a millijoule energy budget, before the CRC.
	reqTailExLen = reqTailLen + 1 + 4
	// getHeaderLen is status + raw size + scheme + offset + CRC.
	getHeaderLen = 1 + 8 + 1 + 8 + 4
	// blockHeaderLen is flag + raw length + payload length + payload CRC.
	blockHeaderLen = 1 + 4 + 4 + 4
)

// Exported frame sizes: the soak harness (internal/harness) reconciles
// the client's WireBytes ledger against the server's payload counters,
// which requires knowing the per-frame overhead it read.
const (
	// GetHeaderLen is the wire size of a GET response header frame.
	GetHeaderLen = getHeaderLen
	// BlockHeaderLen is the wire size of a block (or end) frame header.
	BlockHeaderLen = blockHeaderLen
)

// Mode is the transfer mode requested by the client.
type Mode byte

// Transfer modes.
const (
	// ModeRaw transfers the file uncompressed.
	ModeRaw Mode = iota + 1
	// ModePrecompressed serves blocks compressed ahead of time on the
	// proxy (Section 3: "all downloaded files are compressed a priori").
	ModePrecompressed
	// ModeOnDemand compresses blocks while the transfer is in flight
	// (Section 5).
	ModeOnDemand
	// ModeSelective applies the block-by-block adaptive scheme of
	// Section 4.3 (on demand).
	ModeSelective
)

func (m Mode) String() string {
	switch m {
	case ModeRaw:
		return "raw"
	case ModePrecompressed:
		return "precompressed"
	case ModeOnDemand:
		return "on-demand"
	case ModeSelective:
		return "selective"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrProtocol is returned for malformed frames.
var ErrProtocol = errors.New("proxy: protocol error")

// ErrNotFound is returned when the server does not have the file.
var ErrNotFound = errors.New("proxy: file not found")

// ErrBusy is returned when the server sheds the connection at its
// concurrent-connection cap; the request is safe to retry.
var ErrBusy = errors.New("proxy: server busy")

// request is the client->server GET message. Offset asks the server to
// resume the transfer at that raw-byte position; the server rounds it down
// to a block boundary and echoes the granted offset in the response.
// ReqID is the client-minted correlation ID: every retry attempt of one
// fetch carries the same ID, and the server propagates it into its logs
// and trace spans.
type request struct {
	Op     byte
	Name   string
	Scheme codec.Scheme
	Mode   Mode
	Offset uint64
	ReqID  uint64
	// Class and BudgetMJ ride only on opGetEx frames: the handheld's
	// deadline class (decider.ClassFromByte vocabulary) and its remaining
	// energy budget in millijoules (0 = undeclared). On opGet they are
	// always zero.
	Class    uint8
	BudgetMJ uint32
}

// tailLen is the per-op request tail size after the name.
func (r request) tailLen() int {
	if r.Op == opGetEx {
		return reqTailExLen
	}
	return reqTailLen
}

func writeRequest(w io.Writer, req request) error {
	name := []byte(req.Name)
	if len(name) > maxNameLen {
		return fmt.Errorf("%w: name too long", ErrProtocol)
	}
	buf := make([]byte, 0, reqFixedLen+len(name)+req.tailLen())
	buf = append(buf, protoMagic...)
	buf = append(buf, req.Op)
	var n16 [2]byte
	binary.BigEndian.PutUint16(n16[:], uint16(len(name)))
	buf = append(buf, n16[:]...)
	buf = append(buf, name...)
	buf = append(buf, byte(req.Scheme), byte(req.Mode))
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], req.Offset)
	buf = append(buf, u64[:]...)
	binary.BigEndian.PutUint64(u64[:], req.ReqID)
	buf = append(buf, u64[:]...)
	if req.Op == opGetEx {
		buf = append(buf, req.Class)
		var u32 [4]byte
		binary.BigEndian.PutUint32(u32[:], req.BudgetMJ)
		buf = append(buf, u32[:]...)
	}
	// The CRC covers everything after the magic, so a bit-flipped request
	// is rejected server-side instead of fetching the wrong file.
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crcOf(buf[len(protoMagic):]))
	buf = append(buf, crc[:]...)
	_, err := w.Write(buf)
	return err
}

func readRequest(r io.Reader) (request, error) {
	hdr := make([]byte, reqFixedLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return request{}, err
	}
	if string(hdr[:len(protoMagic)]) != protoMagic {
		return request{}, fmt.Errorf("%w: bad magic", ErrProtocol)
	}
	req := request{Op: hdr[len(protoMagic)]}
	nameLen := int(binary.BigEndian.Uint16(hdr[len(protoMagic)+1:]))
	if nameLen > maxNameLen {
		return request{}, fmt.Errorf("%w: name length %d", ErrProtocol, nameLen)
	}
	rest := make([]byte, nameLen+req.tailLen())
	if _, err := io.ReadFull(r, rest); err != nil {
		return request{}, fmt.Errorf("%w: truncated request: %v", ErrProtocol, err)
	}
	body := rest[:len(rest)-4]
	wantCRC := binary.BigEndian.Uint32(rest[len(rest)-4:])
	sum := checksum.UpdateCRC32(checksum.CRC32(hdr[len(protoMagic):]), body)
	if sum != wantCRC {
		return request{}, fmt.Errorf("%w: request CRC mismatch", ErrProtocol)
	}
	req.Name = string(body[:nameLen])
	req.Scheme = codec.Scheme(body[nameLen])
	req.Mode = Mode(body[nameLen+1])
	req.Offset = binary.BigEndian.Uint64(body[nameLen+2:])
	req.ReqID = binary.BigEndian.Uint64(body[nameLen+10:])
	if req.Op == opGetEx {
		req.Class = body[nameLen+18]
		req.BudgetMJ = binary.BigEndian.Uint32(body[nameLen+19:])
	}
	return req, nil
}

// getHeader is the server->client GET response header. Offset is the
// resume position granted by the server (always a block boundary, never
// past the requested offset); the CRC lets the client tell a corrupted
// header from an honest status byte.
type getHeader struct {
	Status  byte
	RawSize uint64
	Scheme  codec.Scheme
	Offset  uint64
}

func writeGetHeader(w io.Writer, h getHeader) error {
	var buf [getHeaderLen]byte
	buf[0] = h.Status
	binary.BigEndian.PutUint64(buf[1:9], h.RawSize)
	buf[9] = byte(h.Scheme)
	binary.BigEndian.PutUint64(buf[10:18], h.Offset)
	binary.BigEndian.PutUint32(buf[18:22], crcOf(buf[:18]))
	_, err := w.Write(buf[:])
	return err
}

func readGetHeader(r io.Reader) (getHeader, error) {
	var buf [getHeaderLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return getHeader{}, fmt.Errorf("%w: truncated header: %v", ErrProtocol, err)
	}
	if crcOf(buf[:18]) != binary.BigEndian.Uint32(buf[18:22]) {
		return getHeader{}, fmt.Errorf("%w: header CRC mismatch", ErrProtocol)
	}
	return getHeader{
		Status:  buf[0],
		RawSize: binary.BigEndian.Uint64(buf[1:9]),
		Scheme:  codec.Scheme(buf[9]),
		Offset:  binary.BigEndian.Uint64(buf[10:18]),
	}, nil
}

// wireBlock is one framed block on the wire.
type wireBlock struct {
	Flag    byte
	RawLen  uint32
	Payload []byte
}

func writeBlock(w io.Writer, b wireBlock) error {
	var hdr [blockHeaderLen]byte
	hdr[0] = b.Flag
	binary.BigEndian.PutUint32(hdr[1:5], b.RawLen)
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(b.Payload)))
	binary.BigEndian.PutUint32(hdr[9:13], crcOf(b.Payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(b.Payload) > 0 {
		if _, err := w.Write(b.Payload); err != nil {
			return err
		}
	}
	return nil
}

// writeEnd emits the terminal frame. The content CRC it carries is itself
// covered by a CRC over the frame header: without that, a bit-flip in the
// content-CRC field would be indistinguishable from the file having
// changed between attempts, and the client would wrongly discard its
// verified resume prefix.
func writeEnd(w io.Writer, crc uint32) error {
	var hdr [blockHeaderLen]byte
	hdr[0] = blockFlagEnd
	binary.BigEndian.PutUint32(hdr[1:5], crc)
	binary.BigEndian.PutUint32(hdr[9:13], crcOf(hdr[:9]))
	_, err := w.Write(hdr[:])
	return err
}

// readBlock returns the next block, or ok=false with the trailing CRC when
// the end marker is reached. Both length fields are bounded before any
// allocation, and the payload must match its frame CRC — a block that
// readBlock accepts is verified, which is what makes resume offsets safe
// to trust.
//
// The payload buffer is drawn from the codec buffer pool; the caller owns
// it and should hand it back with codec.PutBuf once the block is consumed.
func readBlock(r io.Reader) (b wireBlock, crc uint32, ok bool, err error) {
	var hdr [blockHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wireBlock{}, 0, false, fmt.Errorf("%w: truncated block: %v", ErrProtocol, err)
	}
	if hdr[0] == blockFlagEnd {
		if crcOf(hdr[:9]) != binary.BigEndian.Uint32(hdr[9:13]) {
			return wireBlock{}, 0, false, fmt.Errorf("%w: end frame CRC mismatch", ErrProtocol)
		}
		return wireBlock{}, binary.BigEndian.Uint32(hdr[1:5]), false, nil
	}
	if hdr[0] != blockFlagRaw && hdr[0] != blockFlagCompressed {
		return wireBlock{}, 0, false, fmt.Errorf("%w: flag %#x", ErrProtocol, hdr[0])
	}
	b.Flag = hdr[0]
	b.RawLen = binary.BigEndian.Uint32(hdr[1:5])
	payLen := binary.BigEndian.Uint32(hdr[5:9])
	if err := selective.CheckWireLens(b.RawLen, payLen, maxBlockRaw, maxBlockWire); err != nil {
		return wireBlock{}, 0, false, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	// A raw block's payload IS its raw bytes, so the two lengths must
	// agree. Enforcing that here keeps the per-block RawLen claims an
	// honest budget: downstream, the sum of accepted RawLens bounds the
	// bytes that can reach the output buffer.
	if b.Flag == blockFlagRaw && payLen != b.RawLen {
		return wireBlock{}, 0, false, fmt.Errorf("%w: raw block claims %d raw bytes but carries %d", ErrProtocol, b.RawLen, payLen)
	}
	b.Payload = codec.GetBuf(int(payLen))[:payLen]
	if _, err := io.ReadFull(r, b.Payload); err != nil {
		codec.PutBuf(b.Payload)
		return wireBlock{}, 0, false, fmt.Errorf("%w: truncated payload: %v", ErrProtocol, err)
	}
	if crcOf(b.Payload) != binary.BigEndian.Uint32(hdr[9:13]) {
		codec.PutBuf(b.Payload)
		return wireBlock{}, 0, false, fmt.Errorf("%w: block payload CRC mismatch", ErrProtocol)
	}
	return b, 0, true, nil
}

// crcOf is a helper around the repository's own CRC-32.
func crcOf(data []byte) uint32 { return checksum.CRC32(data) }
