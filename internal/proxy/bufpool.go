package proxy

// Pooled bufio wrappers: the server creates one reader and one writer per
// connection and the client one reader per attempt, so under churn these
// 64 KiB buffers dominated the allocation profile. Reset makes them safe
// to recycle; a pooled wrapper never retains its previous connection.

import (
	"bufio"
	"io"
	"sync"
)

const connBufSize = 64 * 1024

var (
	connReaderPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, connBufSize) }}
	connWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, connBufSize) }}
)

func getConnReader(r io.Reader) *bufio.Reader {
	br := connReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putConnReader(br *bufio.Reader) {
	br.Reset(nil)
	connReaderPool.Put(br)
}

func getConnWriter(w io.Writer) *bufio.Writer {
	bw := connWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// putConnWriter recycles bw; any unflushed bytes are dropped, so the
// caller must Flush first on the success path.
func putConnWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	connWriterPool.Put(bw)
}
