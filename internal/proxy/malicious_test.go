package proxy

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/codec"
)

// maliciousServer runs handler on every accepted connection; handler plays
// the role of a lying or broken proxy.
func maliciousServer(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				handler(conn)
			}()
		}
	}()
	return ln.Addr().String()
}

// hardenedClient is a default (no-retry) client with a deadline so a
// malicious peer can stall but never hang the test.
func hardenedClient(addr string) *Client {
	cli := NewClient(addr)
	cli.Timeout = 10 * time.Second
	return cli
}

// consumeRequest absorbs the client's request so writes cannot race it.
func consumeRequest(conn net.Conn) bool {
	_, err := readRequest(bufio.NewReader(conn))
	return err == nil
}

// fetchAllocDelta runs one Fetch and returns (error, bytes allocated).
// TotalAlloc is cumulative, so the delta is GC-proof.
func fetchAllocDelta(t *testing.T, cli *Client) (error, uint64) {
	t.Helper()
	var m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m1)
	_, _, err := cli.Fetch("x", codec.Gzip, ModeRaw)
	runtime.ReadMemStats(&m2)
	return err, m2.TotalAlloc - m1.TotalAlloc
}

// TestMaliciousLyingRawSize: a header claiming a 1 TB file must be
// rejected as a protocol error without allocating anything proportional
// to the claim.
func TestMaliciousLyingRawSize(t *testing.T) {
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: 1 << 40, Scheme: codec.Gzip})
	})
	err, allocated := fetchAllocDelta(t, hardenedClient(addr))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
	if isTransient(err) {
		t.Error("a CRC-clean oversized claim should be a permanent error")
	}
	if allocated > 16<<20 {
		t.Errorf("allocated %d bytes for a lying header", allocated)
	}
}

// TestMaliciousRawSizeWithinCap: a claim inside MaxFetchBytes must still
// not be trusted for preallocation — the server sends nothing, so the
// fetch must fail having allocated no more than the clamp, not the
// claimed half-gigabyte.
func TestMaliciousRawSizeWithinCap(t *testing.T) {
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: 1 << 29, Scheme: codec.Gzip})
	})
	err, allocated := fetchAllocDelta(t, hardenedClient(addr))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
	if allocated > 16<<20 {
		t.Errorf("allocated %d bytes against a %d-byte claim; prealloc clamp failed", allocated, 1<<29)
	}
}

// TestMaliciousLyingBlockRawLen: a block header claiming a decompressed
// size over the per-block cap must be refused before Decompress sees it.
func TestMaliciousLyingBlockRawLen(t *testing.T) {
	payload := []byte("tiny")
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: 1 << 20, Scheme: codec.Gzip})
		_ = writeBlock(conn, wireBlock{Flag: blockFlagCompressed, RawLen: 0xFFFF0000, Payload: payload})
	})
	err, allocated := fetchAllocDelta(t, hardenedClient(addr))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
	if allocated > 16<<20 {
		t.Errorf("allocated %d bytes for a lying RawLen", allocated)
	}
}

// TestMaliciousOverpromisedBlocks: blocks whose cumulative claimed raw
// size exceeds the header's total must stop the stream.
func TestMaliciousOverpromisedBlocks(t *testing.T) {
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: 1000, Scheme: codec.Gzip})
		chunk := make([]byte, 900)
		for i := 0; i < 4; i++ {
			if err := writeBlock(conn, wireBlock{Flag: blockFlagRaw, RawLen: 900, Payload: chunk}); err != nil {
				return
			}
		}
	})
	if _, _, err := hardenedClient(addr).Fetch("x", codec.Gzip, ModeRaw); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// TestMaliciousRawBlockLenMismatch: raw-flag blocks whose payload length
// disagrees with the claimed RawLen must be refused at the frame boundary.
// Before this check, RawLen=0 blocks with near-cap payloads advanced the
// rawPromised budget by zero while appending megabytes per block — an
// unbounded-memory bypass of MaxFetchBytes.
func TestMaliciousRawBlockLenMismatch(t *testing.T) {
	big := make([]byte, maxBlockWire-1)
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: 1 << 20, Scheme: codec.Gzip})
		// Each frame claims zero raw bytes but carries ~2 MiB.
		for i := 0; i < 64; i++ {
			if err := writeBlock(conn, wireBlock{Flag: blockFlagRaw, RawLen: 0, Payload: big}); err != nil {
				return
			}
		}
	})
	err, allocated := fetchAllocDelta(t, hardenedClient(addr))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
	if allocated > 16<<20 {
		t.Errorf("allocated %d bytes for RawLen-lying raw blocks", allocated)
	}
}

// TestMaliciousGarbageBlockCRC: a corrupted payload CRC fails the frame
// check, not the decompressor.
func TestMaliciousGarbageBlockCRC(t *testing.T) {
	payload := []byte("payload bytes")
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: uint64(len(payload)), Scheme: codec.Gzip})
		var hdr [blockHeaderLen]byte
		hdr[0] = blockFlagRaw
		binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[5:9], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[9:13], crcOf(payload)^0xFFFF)
		_, _ = conn.Write(hdr[:])
		_, _ = conn.Write(payload)
	})
	if _, _, err := hardenedClient(addr).Fetch("x", codec.Gzip, ModeRaw); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// TestMaliciousEarlyEOF: a header followed by silence (connection close)
// must surface as a clean protocol error, not a hang.
func TestMaliciousEarlyEOF(t *testing.T) {
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: 10_000, Scheme: codec.Gzip})
	})
	if _, _, err := hardenedClient(addr).Fetch("x", codec.Gzip, ModeRaw); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// TestMaliciousTruncatedPayload: a block header promising more payload
// than the server delivers must error on the short read.
func TestMaliciousTruncatedPayload(t *testing.T) {
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: 500, Scheme: codec.Gzip})
		var hdr [blockHeaderLen]byte
		hdr[0] = blockFlagRaw
		binary.BigEndian.PutUint32(hdr[1:5], 500)
		binary.BigEndian.PutUint32(hdr[5:9], 500)
		_, _ = conn.Write(hdr[:])
		_, _ = conn.Write(make([]byte, 20)) // then close
	})
	if _, _, err := hardenedClient(addr).Fetch("x", codec.Gzip, ModeRaw); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// TestMaliciousCorruptHeader: a bit-flipped response header must fail its
// CRC — and, unlike an honest status, be treated as transient link damage.
func TestMaliciousCorruptHeader(t *testing.T) {
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		var buf [getHeaderLen]byte
		buf[0] = statusNotFound // honest-looking status...
		// ...but no valid CRC: all-zero trailer will not match.
		_, _ = conn.Write(buf[:])
	})
	_, _, err := hardenedClient(addr).Fetch("x", codec.Gzip, ModeRaw)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
	if errors.Is(err, ErrNotFound) {
		t.Error("corrupt header was trusted as an honest not-found")
	}
	if !isTransient(err) {
		t.Error("a CRC-failed header is link damage and should be retryable")
	}
}

// TestMaliciousGrantedOffsetBeyondRequest: a server granting a resume
// offset past what the client asked for is lying and must be refused.
func TestMaliciousGrantedOffsetBeyondRequest(t *testing.T) {
	addr := maliciousServer(t, func(conn net.Conn) {
		if !consumeRequest(conn) {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: 10_000, Scheme: codec.Gzip, Offset: 9_000})
	})
	if _, _, err := hardenedClient(addr).Fetch("x", codec.Gzip, ModeRaw); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}
