package proxy

import (
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
)

// TestObserveCompress: one artifact build lands its input bytes on the
// right per-scheme counter, feeds the throughput histogram, and surfaces in
// both the Stats snapshot and the registry text the admin plane serves.
func TestObserveCompress(t *testing.T) {
	reg := obs.NewRegistry()
	m := newMetrics(reg)

	m.observeCompress(codec.Gzip, 1<<20, 100*time.Millisecond) // 10 MiB/s
	m.observeCompress(codec.Gzip, 1<<20, 50*time.Millisecond)
	m.observeCompress(codec.Bzip2, 4096, time.Millisecond)
	m.observeCompress(codec.Gzip, 123, 0) // zero duration: count bytes, skip rate

	s := m.snapshot()
	if got := s.CompressInputBytes["gzip"]; got != 2<<20+123 {
		t.Fatalf("gzip input bytes = %d, want %d", got, 2<<20+123)
	}
	if got := s.CompressInputBytes["bzip2"]; got != 4096 {
		t.Fatalf("bzip2 input bytes = %d, want 4096", got)
	}
	if got := s.CompressInputBytes["zlib"]; got != 0 {
		t.Fatalf("zlib input bytes = %d, want 0", got)
	}

	hs := m.compressRate.Snapshot()
	var samples int64
	for _, c := range hs.Counts {
		samples += c
	}
	if samples != 3 {
		t.Fatalf("throughput histogram holds %d samples, want 3", samples)
	}

	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"server_compress_bytes_per_second",
		"server_compress_input_bytes_total_gzip",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("registry text missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(s.String(), "compress input:") {
		t.Fatalf("Stats.String() missing compress line:\n%s", s.String())
	}
}
