package proxy

import (
	"hash/fnv"
	"sync"

	"repro/internal/codec"
	"repro/internal/selective"
)

// cacheKey identifies one compressed artifact: a named file at a specific
// registration generation, compressed under a scheme and a decision
// policy. The generation makes entries for replaced file content
// unreachable without a global invalidation scan.
type cacheKey struct {
	name   string
	gen    uint64
	scheme codec.Scheme
	fp     string
}

// entryOverhead approximates the bookkeeping cost of a cached entry
// beyond its payload bytes, so the byte budget does not undercount many
// tiny artifacts.
const entryOverhead = 128

// cacheEntry is one artifact on a shard's intrusive LRU list.
type cacheEntry struct {
	key        cacheKey
	blocks     []selective.Block
	bytes      int64
	prev, next *cacheEntry
}

// cacheShard is one lock domain of the cache: a map for lookup and a
// doubly-linked LRU list (sentinel head; head.next is most recent).
type cacheShard struct {
	mu       sync.Mutex
	entries  map[cacheKey]*cacheEntry
	head     cacheEntry // sentinel
	curBytes int64
	budget   int64
}

func (sh *cacheShard) init(budget int64) {
	sh.entries = make(map[cacheKey]*cacheEntry)
	sh.head.prev = &sh.head
	sh.head.next = &sh.head
	sh.budget = budget
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.next = sh.head.next
	e.prev = &sh.head
	sh.head.next.prev = e
	sh.head.next = e
}

// blockCache is the sharded, byte-budgeted artifact cache. The budget is
// split evenly across shards so eviction decisions never take a global
// lock.
type blockCache struct {
	shards  []cacheShard
	metrics *metrics

	// floors maps a file name to the minimum generation put accepts for
	// it. One name's generations land on different shards (shardFor mixes
	// the generation into the hash), so the floor must be global: without
	// it, a singleflight fill racing a generation bump can re-insert a
	// stale-generation artifact after the bump's invalidation scan ran.
	floorMu sync.RWMutex
	floors  map[string]uint64
}

func newBlockCache(totalBytes int64, nShards int, m *metrics) *blockCache {
	if nShards < 1 {
		nShards = 1
	}
	c := &blockCache{shards: make([]cacheShard, nShards), metrics: m, floors: make(map[string]uint64)}
	per := totalBytes / int64(nShards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

func (c *blockCache) shardFor(k cacheKey) *cacheShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k.name))
	_, _ = h.Write([]byte{byte(k.scheme),
		byte(k.gen), byte(k.gen >> 8), byte(k.gen >> 16), byte(k.gen >> 24)})
	_, _ = h.Write([]byte(k.fp))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// entrySize is the budget charge for caching blocks.
func entrySize(k cacheKey, blocks []selective.Block) int64 {
	n := int64(entryOverhead + len(k.name) + len(k.fp))
	for _, b := range blocks {
		n += int64(len(b.Payload)) + 32
	}
	return n
}

// get returns the cached block stream for k and refreshes its recency.
func (c *blockCache) get(k cacheKey) ([]selective.Block, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[k]
	if !ok {
		return nil, false
	}
	sh.unlink(e)
	sh.pushFront(e)
	return e.blocks, true
}

// put inserts (or replaces) k's block stream, evicting least-recently-used
// entries until the shard fits its budget. Artifacts larger than the whole
// shard budget are rejected rather than churning the shard empty.
func (c *blockCache) put(k cacheKey, blocks []selective.Block) {
	c.floorMu.RLock()
	floor := c.floors[k.name]
	c.floorMu.RUnlock()
	if k.gen < floor {
		// A fill for an invalidated generation finished after the bump:
		// caching it would resurrect stale content for the cache's
		// lifetime, because no future invalidation scan targets it.
		return
	}
	size := entrySize(k, blocks)
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if size > sh.budget {
		if c.metrics != nil {
			c.metrics.cacheRejects.Add(1)
		}
		return
	}
	if old, ok := sh.entries[k]; ok {
		sh.unlink(old)
		delete(sh.entries, k)
		sh.curBytes -= old.bytes
	}
	for sh.curBytes+size > sh.budget && sh.head.prev != &sh.head {
		lru := sh.head.prev
		sh.unlink(lru)
		delete(sh.entries, lru.key)
		sh.curBytes -= lru.bytes
		if c.metrics != nil {
			c.metrics.evictions.Add(1)
		}
	}
	e := &cacheEntry{key: k, blocks: blocks, bytes: size}
	sh.entries[k] = e
	sh.pushFront(e)
	sh.curBytes += size
}

// dropName removes every entry for the named file, in any generation,
// scheme or policy.
func (c *blockCache) dropName(name string) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.name == name {
				sh.unlink(e)
				delete(sh.entries, k)
				sh.curBytes -= e.bytes
			}
		}
		sh.mu.Unlock()
	}
}

// invalidate raises name's generation floor to minGen and drops every
// entry below it. Register (and cluster-propagated generation bumps) call
// this instead of a bare dropName: the floor closes the race where a
// singleflight fill for the old generation completes after the scan and
// would otherwise re-insert the stale artifact.
func (c *blockCache) invalidate(name string, minGen uint64) {
	c.floorMu.Lock()
	if c.floors[name] < minGen {
		c.floors[name] = minGen
	}
	c.floorMu.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.name == name && k.gen < minGen {
				sh.unlink(e)
				delete(sh.entries, k)
				sh.curBytes -= e.bytes
			}
		}
		sh.mu.Unlock()
	}
}

// len and bytes report total occupancy across shards.
func (c *blockCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

func (c *blockCache) bytes() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.curBytes
		sh.mu.Unlock()
	}
	return n
}
