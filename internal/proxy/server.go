package proxy

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/codec"
	"repro/internal/selective"
)

// Server is the proxy: a stationary machine that stores files and serves
// them to handheld clients over TCP, optionally compressing them ahead of
// time or on demand.
type Server struct {
	decider selective.Decider

	mu    sync.Mutex
	files map[string][]byte
	// precomp caches per-(file, scheme) precompressed block streams.
	precomp map[string]map[codec.Scheme][]selective.Block

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewServer returns a server using the given decision model for selective
// mode (nil selects the paper's Equation 6).
func NewServer(decider selective.Decider) *Server {
	if decider == nil {
		decider = selective.PaperDecider{}
	}
	return &Server{
		decider: decider,
		files:   make(map[string][]byte),
		precomp: make(map[string]map[codec.Scheme][]selective.Block),
		closed:  make(chan struct{}),
	}
}

// Register stores a file under name. Content is copied.
func (s *Server) Register(name string, content []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = append([]byte{}, content...)
	delete(s.precomp, name)
}

// Files lists registered file names, sorted.
func (s *Server) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Precompress compresses name's blocks with scheme ahead of time, as the
// Section 3 experiments assume ("compressed a priori and stored on the
// proxy server").
func (s *Server) Precompress(name string, scheme codec.Scheme) error {
	s.mu.Lock()
	content, ok := s.files[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	blocks, err := s.compressBlocks(content, scheme, selective.AlwaysCompress{})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.precomp[name] == nil {
		s.precomp[name] = make(map[codec.Scheme][]selective.Block)
	}
	s.precomp[name][scheme] = blocks
	return nil
}

func (s *Server) compressBlocks(content []byte, scheme codec.Scheme, d selective.Decider) ([]selective.Block, error) {
	c, err := codec.New(scheme, 0)
	if err != nil {
		return nil, err
	}
	enc, err := selective.Encode(content, c, d)
	if err != nil {
		return nil, err
	}
	return enc.Blocks, nil
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops run until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			// One request per connection, as the paper's one-shot
			// downloads do.
			_ = s.handle(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight connections. It is
// safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.ln != nil {
			err = s.ln.Close()
		}
		s.wg.Wait()
	})
	return err
}

func (s *Server) handle(conn net.Conn) error {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriterSize(conn, 64*1024)
	defer bw.Flush()

	req, err := readRequest(br)
	if err != nil {
		return err
	}
	switch req.Op {
	case opList:
		return s.handleList(bw)
	case opGet:
		return s.handleGet(bw, req)
	default:
		return writeGetHeader(bw, getHeader{Status: statusBadReq})
	}
}

func (s *Server) handleList(bw *bufio.Writer) error {
	names := s.Files()
	var hdr [5]byte
	hdr[0] = statusOK
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(names)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, n := range names {
		var n16 [2]byte
		binary.BigEndian.PutUint16(n16[:], uint16(len(n)))
		if _, err := bw.Write(n16[:]); err != nil {
			return err
		}
		if _, err := bw.Write([]byte(n)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (s *Server) handleGet(bw *bufio.Writer, req request) error {
	s.mu.Lock()
	content, ok := s.files[req.Name]
	s.mu.Unlock()
	if !ok {
		return writeGetHeader(bw, getHeader{Status: statusNotFound})
	}
	if err := writeGetHeader(bw, getHeader{
		Status:  statusOK,
		RawSize: uint64(len(content)),
		Scheme:  req.Scheme,
	}); err != nil {
		return err
	}

	blocks, err := s.blocksFor(req, content)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		flag := byte(blockFlagRaw)
		if b.Compressed {
			flag = blockFlagCompressed
		}
		wb := wireBlock{Flag: flag, RawLen: uint32(b.RawLen), Payload: b.Payload}
		if err := writeBlock(bw, wb); err != nil {
			return err
		}
		// Flush per block so the client's pipeline can overlap
		// decompression with the next block's arrival.
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	if err := writeEnd(bw, crcOf(content)); err != nil {
		return err
	}
	return bw.Flush()
}

// blocksFor materialises the block stream for a request; ModeOnDemand and
// ModeSelective compress here, on the serving path.
func (s *Server) blocksFor(req request, content []byte) ([]selective.Block, error) {
	switch req.Mode {
	case ModeRaw:
		return s.compressBlocks(content, codec.Gzip, selective.NeverCompress{})
	case ModePrecompressed:
		s.mu.Lock()
		blocks := s.precomp[req.Name][req.Scheme]
		s.mu.Unlock()
		if blocks != nil {
			return blocks, nil
		}
		// Not cached: compress now and cache for the next request.
		if err := s.Precompress(req.Name, req.Scheme); err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.precomp[req.Name][req.Scheme], nil
	case ModeOnDemand:
		return s.compressBlocks(content, req.Scheme, selective.AlwaysCompress{})
	case ModeSelective:
		return s.compressBlocks(content, req.Scheme, s.decider)
	default:
		return nil, fmt.Errorf("%w: mode %d", ErrProtocol, int(req.Mode))
	}
}
