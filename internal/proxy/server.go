package proxy

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/selective"
	"repro/internal/sim"
)

// ErrClosing is returned to requests caught by a server shutdown.
var ErrClosing = errors.New("proxy: server closing")

// Config tunes the server's dataplane. The zero value selects defaults.
type Config struct {
	// CacheBytes is the total byte budget for the compressed-artifact
	// cache, split evenly across shards. 0 selects 64 MiB; negative
	// disables caching (every cacheable request compresses, modulo
	// singleflight coalescing).
	CacheBytes int64
	// Shards is the cache's lock-domain count. 0 selects 16.
	Shards int
	// Workers bounds how many compressions run concurrently; requests
	// beyond the bound queue (backpressure) instead of spawning unbounded
	// compression work. 0 selects GOMAXPROCS.
	Workers int
	// MaxConns caps concurrent connections; excess connections receive
	// statusBusy and are closed. 0 selects 256.
	MaxConns int
	// ReadTimeout bounds how long the server waits for a client's request
	// frame. 0 selects 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds serving the whole response. 0 selects 2m.
	WriteTimeout time.Duration
	// WrapConn, when set, wraps every accepted connection before the
	// server touches it. It is the hook the fault-injection transport
	// (internal/proxy/faultconn) plugs into, so the whole stack can be
	// exercised over a deliberately hostile link.
	WrapConn func(net.Conn) net.Conn
	// Clock supplies the time source for connection deadlines and the
	// latency histogram; nil selects the host clock. The deterministic
	// testbed (internal/simnet) injects its virtual clock here, which
	// keeps the server's deadlines on the same timeline as the virtual
	// link it is serving over.
	Clock sim.WallClock
	// FlightWait, when set, is how a singleflight follower waits for its
	// leader's done channel. The default receives directly, which is
	// right on a real clock; the virtual-time cluster harness substitutes
	// a poll in virtual time, because a follower blocking in real time
	// holds a clock ledger token the leader needs released while it parks
	// on peer-fetch I/O.
	FlightWait func(done <-chan struct{})

	// Metrics is the registry the server's instruments live on; sharing
	// one registry between a server and its admin endpoint (or several
	// servers) is how their series end up in one /metrics page. Nil
	// creates a private registry — Stats keeps working either way.
	Metrics *obs.Registry
	// Tracer retains per-request spans for /tracez. Nil creates a ring of
	// defaultTraceCap spans.
	Tracer *obs.Tracer
	// Logger receives structured request/error logs tagged with the
	// client-propagated request ID. Nil discards.
	Logger *slog.Logger
	// Decider, when set, is the selective-mode decision policy for servers
	// built with a nil decider argument — the way proxyd injects the
	// dynamic, calibration-fed decider without every NewServerWith caller
	// growing a parameter. An explicit decider argument wins; nil both
	// here and there selects the paper's Equation 6.
	Decider selective.Decider
	// Events, when set, receives one wide event per finished serve span
	// via a tee on the tracer's Finish path, and backs the admin plane's
	// /eventsz endpoint. The sink never blocks the dataplane (full
	// buffers drop and count); its lifecycle belongs to the caller.
	Events *export.Sink
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Minute
	}
	return c
}

// Server is the proxy: a stationary machine that stores files and serves
// them to handheld clients over TCP, optionally compressing them ahead of
// time or on demand. Compressed block streams are cached in a sharded LRU
// keyed by (file, generation, scheme, decision policy); concurrent
// requests for the same uncached key coalesce into one compression, and
// compressions run under a bounded worker budget.
type Server struct {
	decider   selective.Decider
	deciderFP string
	cfg       Config

	reg    *obs.Registry
	tracer *obs.Tracer
	events *export.Sink
	log    *slog.Logger
	clock  sim.WallClock

	mu    sync.Mutex
	files map[string][]byte
	gens  map[string]uint64

	cache   *blockCache // nil when caching is disabled
	flights flightGroup
	metrics *metrics
	// workerSem bounds concurrent compressions (the worker pool): a slot
	// must be held while compressBlocks runs.
	workerSem chan struct{}
	// connSem bounds concurrent connections.
	connSem chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	// onCompress, when set before Listen, observes each artifact build
	// (test hook for the singleflight guarantees; the cluster layer hooks
	// it via SetOnCompress for hot-key replication and oracles).
	onCompress func(cacheKey)
	// peerFetch, when set (SetPeerFetch), lets a flight leader satisfy a
	// cache miss by fetching the compressed artifact from the key's ring
	// owner instead of compressing locally.
	peerFetch PeerFetchFunc
}

// Fingerprints for the fixed policies of the non-selective modes.
const (
	fpAlways = "always"
	fpNever  = "never"
)

// defaultTraceCap is the span ring size when Config.Tracer is nil.
const defaultTraceCap = 256

// deciderFingerprint distinguishes decision policies in cache keys, so two
// servers' (or a reconfigured server's) artifacts never alias.
func deciderFingerprint(d selective.Decider) string {
	// A decider that names its own policy (the dynamic decider does, with
	// its coefficient set and deadline class baked in) is trusted over the
	// reflective fallback: its fingerprint changes exactly when its
	// decisions can, so dynamic and static artifacts never alias even when
	// both would choose identically on some content.
	if f, ok := d.(interface{ Fingerprint() string }); ok {
		return f.Fingerprint()
	}
	switch d.(type) {
	case selective.AlwaysCompress:
		return fpAlways
	case selective.NeverCompress:
		return fpNever
	default:
		return fmt.Sprintf("%T%+v", d, d)
	}
}

// NewServer returns a server with the default Config using the given
// decision model for selective mode (nil selects the paper's Equation 6).
func NewServer(decider selective.Decider) *Server {
	return NewServerWith(decider, Config{})
}

// NewServerWith returns a server with an explicit dataplane configuration.
func NewServerWith(decider selective.Decider, cfg Config) *Server {
	if decider == nil {
		decider = cfg.Decider
	}
	if decider == nil {
		decider = selective.PaperDecider{}
	}
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(defaultTraceCap)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = sim.SystemClock{}
	}
	if cfg.Events != nil {
		// The wide-event tee: every span the tracer retains also flattens
		// into one event on the sink, so /eventsz and an exported JSONL
		// stream see exactly what /tracez sees.
		cfg.Events.Bind(reg)
		sink := cfg.Events
		tracer.SetOnFinish(func(d obs.SpanData) { sink.Record(export.FromSpan(d)) })
	}
	s := &Server{
		decider:   decider,
		deciderFP: deciderFingerprint(decider),
		cfg:       cfg,
		reg:       reg,
		tracer:    tracer,
		events:    cfg.Events,
		log:       logger,
		clock:     clock,
		metrics:   newMetrics(reg),
		files:     make(map[string][]byte),
		gens:      make(map[string]uint64),
		workerSem: make(chan struct{}, cfg.Workers),
		connSem:   make(chan struct{}, cfg.MaxConns),
		conns:     make(map[net.Conn]struct{}),
		closed:    make(chan struct{}),
	}
	if cfg.CacheBytes > 0 {
		s.cache = newBlockCache(cfg.CacheBytes, cfg.Shards, s.metrics)
	}
	s.flights.wait = cfg.FlightWait
	// A queue-aware decider gets the live compression-queue depth (the
	// decider_* counters land on the same registry). Both bindings are
	// optional interfaces so this package needs no decider dependency.
	if qa, ok := decider.(interface{ BindQueueDepth(func() int) }); ok {
		qa.BindQueueDepth(func() int { return int(s.metrics.compressQueueDepth.Value()) })
	}
	if mb, ok := decider.(interface{ BindMetrics(*obs.Registry) }); ok {
		mb.BindMetrics(reg)
	}
	return s
}

// Register stores a file under name. Content is copied. Re-registering a
// name bumps its generation and drops its cached artifacts.
func (s *Server) Register(name string, content []byte) {
	s.mu.Lock()
	s.files[name] = append([]byte{}, content...)
	s.gens[name]++
	gen := s.gens[name]
	s.mu.Unlock()
	if s.cache != nil {
		// Invalidate below the new generation rather than bare-dropping:
		// the generation floor also blocks a concurrent singleflight fill
		// for the old generation from re-inserting its artifact after the
		// scan (see blockCache.invalidate).
		s.cache.invalidate(name, gen)
	}
}

// Files lists registered file names, sorted.
func (s *Server) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the server's counters. The SIGUSR1 report,
// /statsz and /metrics all read through here (or through the registry the
// same instruments live on), so every exposure of the counters agrees.
func (s *Server) Stats() Stats {
	s.refreshGauges()
	st := s.metrics.snapshot()
	if s.cache != nil {
		st.CacheEntries = s.cache.len()
		st.CacheBytes = s.cache.bytes()
	}
	return st
}

// refreshGauges folds current occupancy into the registry gauges, so a
// raw registry snapshot (the admin /metrics page) carries the same cache
// occupancy a Stats call reports.
func (s *Server) refreshGauges() {
	if s.cache != nil {
		s.metrics.cacheEntries.Set(int64(s.cache.len()))
		s.metrics.cacheBytes.Set(s.cache.bytes())
	}
}

// lookup returns the named file's content and current generation.
func (s *Server) lookup(name string) (content []byte, gen uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	content, ok = s.files[name]
	return content, s.gens[name], ok
}

// Precompress compresses name's blocks with scheme ahead of time, as the
// Section 3 experiments assume ("compressed a priori and stored on the
// proxy server"). It warms the artifact cache; a subsequent
// ModePrecompressed (or ModeOnDemand) request for the same scheme is a
// cache hit.
func (s *Server) Precompress(name string, scheme codec.Scheme) error {
	content, gen, ok := s.lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	key := cacheKey{name: name, gen: gen, scheme: scheme, fp: fpAlways}
	_, err := s.getOrCompress(key, content, scheme, selective.AlwaysCompress{}, nil, false)
	return err
}

func (s *Server) compressBlocks(content []byte, scheme codec.Scheme, d selective.Decider) ([]selective.Block, error) {
	c, err := codec.New(scheme, 0)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	enc, err := selective.EncodeParallel(content, c, d, s.spawnCompress)
	if err != nil {
		return nil, err
	}
	s.metrics.observeCompress(scheme, len(content), time.Since(start))
	return enc.Blocks, nil
}

// spawnCompress offers a block-compression task an extra worker-pool slot.
// The compressing request already holds one slot (acquired in
// getOrCompress), so extra slots are taken non-blocking: when the pool is
// saturated the task runs inline on the leader's slot instead of queueing —
// a single cache miss fans out across idle workers without ever
// deadlocking on or oversubscribing the bounded pool.
func (s *Server) spawnCompress(task func()) bool {
	select {
	case s.workerSem <- struct{}{}:
	default:
		return false
	}
	go func() {
		defer func() { <-s.workerSem }()
		task()
	}()
	return true
}

// getOrCompress is the cache/singleflight/worker-pool fast path: return
// the cached artifact, or build it exactly once per key under a bounded
// compression slot while identical concurrent requests wait for the
// result. The span, when present, gains a cache-hit / cache-miss phase
// and, for flights this request led, a compress-on-demand phase.
// allowPeer enables the cluster peer-fetch consult: a flight leader on a
// non-owner node asks the key's ring owner for the finished artifact
// before burning local compression CPU, and degrades to compressing
// locally on any peer failure — never surfacing an error to the client.
func (s *Server) getOrCompress(key cacheKey, content []byte, scheme codec.Scheme, d selective.Decider, span *obs.Span, allowPeer bool) ([]selective.Block, error) {
	lookupStart := time.Now()
	if s.cache != nil {
		if blocks, ok := s.cache.get(key); ok {
			s.metrics.cacheHits.Add(1)
			span.Phase("cache-hit", "", lookupStart, time.Since(lookupStart), int64(len(content)))
			return blocks, nil
		}
		s.metrics.cacheMisses.Add(1)
		span.Phase("cache-miss", "", lookupStart, time.Since(lookupStart), 0)
	}
	ranCompression := false
	peerFetched := false
	blocks, err, _ := s.flights.do(key, func() ([]selective.Block, error) {
		// Double-check under the flight: a previous leader may have
		// populated the cache between our miss and winning the flight.
		if s.cache != nil {
			if b, ok := s.cache.get(key); ok {
				return b, nil
			}
		}
		if allowPeer && s.peerFetch != nil {
			fetchStart := time.Now()
			pb, perr := s.peerFetch(ArtifactKey{Name: key.name, Gen: key.gen, Scheme: key.scheme, FP: key.fp})
			switch {
			case perr == nil:
				peerFetched = true
				s.metrics.peerFetches.Add(1)
				s.metrics.ringRemoteHits.Add(1)
				span.PhaseDetail("peer-fetch", "", "fetched the artifact from its ring owner", fetchStart, time.Since(fetchStart), int64(len(content)))
				return pb, nil
			case errors.Is(perr, ErrOwnedLocally):
				s.metrics.ringOwnerHits.Add(1)
			default:
				// Owner unreachable, departed, or at a different
				// generation: degrade to local compression.
				s.metrics.ringRemoteHits.Add(1)
				s.metrics.peerFetchErrors.Add(1)
			}
		}
		// Backpressure: block for a worker slot rather than compressing
		// unboundedly; abort if the server is shutting down. The gauge
		// covers the whole queued-or-compressing window — it is the queue
		// depth the dynamic decider reads to price server-side waiting.
		s.metrics.compressQueueDepth.Add(1)
		defer s.metrics.compressQueueDepth.Add(-1)
		select {
		case s.workerSem <- struct{}{}:
		case <-s.closed:
			return nil, ErrClosing
		}
		defer func() { <-s.workerSem }()
		ranCompression = true
		s.metrics.compressions.Add(1)
		if s.onCompress != nil {
			s.onCompress(key)
		}
		compStart := time.Now()
		b, err := s.compressBlocks(content, scheme, d)
		span.Phase("compress-on-demand", "", compStart, time.Since(compStart), int64(len(content)))
		if err != nil {
			return nil, err
		}
		if s.cache != nil {
			s.cache.put(key, b)
		}
		return b, nil
	})
	if err == nil && !ranCompression && !peerFetched {
		// Either another request's flight produced the result or the
		// double-check hit: this request's compression was coalesced away.
		s.metrics.coalesced.Add(1)
		span.PhaseDetail("coalesced", "", "waited on an identical in-flight compression", lookupStart, time.Since(lookupStart), 0)
	}
	return blocks, err
}

// chunkRaw frames content as raw blocks without touching a codec.
func chunkRaw(content []byte) []selective.Block {
	n := (len(content) + selective.BlockSize - 1) / selective.BlockSize
	if n == 0 {
		return nil
	}
	blocks := make([]selective.Block, 0, n)
	for off := 0; off < len(content); off += selective.BlockSize {
		end := off + selective.BlockSize
		if end > len(content) {
			end = len(content)
		}
		blocks = append(blocks, selective.Block{RawLen: end - off, Payload: content[off:end]})
	}
	return blocks
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops run until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.Serve(ln), nil
}

// Serve starts accepting connections on an already-bound listener and
// returns its address. This is how the deterministic testbed hands the
// server a virtual (internal/simnet) listener; Listen is the TCP
// convenience wrapper around it.
func (s *Server) Serve(ln net.Listener) string {
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.cfg.WrapConn != nil {
			conn = s.cfg.WrapConn(conn)
		}
		select {
		case s.connSem <- struct{}{}:
		default:
			// Over the connection cap: tell the client we are busy and
			// shed the connection instead of queueing it invisibly.
			s.metrics.connsRejected.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				_ = conn.SetDeadline(s.clock.Now().Add(time.Second))
				_ = writeGetHeader(conn, getHeader{Status: statusBusy})
				// Absorb the client's request before closing so the close
				// does not RST the busy reply out of its receive buffer.
				var buf [512]byte
				_, _ = conn.Read(buf[:])
			}()
			continue
		}
		s.trackConn(conn, true)
		s.wg.Add(1)
		go func() {
			start := s.clock.Now()
			s.metrics.connsTotal.Add(1)
			s.metrics.connsActive.Add(1)
			defer func() {
				s.metrics.connsActive.Add(-1)
				s.metrics.observeLatency(s.clock.Now().Sub(start))
				s.trackConn(conn, false)
				conn.Close()
				<-s.connSem
				s.wg.Done()
			}()
			// One request per connection, as the paper's one-shot
			// downloads do.
			if err := s.handle(conn); err != nil {
				s.metrics.errors.Add(1)
				s.log.Warn("request failed", "remote", conn.RemoteAddr().String(), "err", err)
			}
		}()
	}
}

func (s *Server) trackConn(conn net.Conn, add bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// Close stops the listener and gracefully drains: connections mid-request
// are unblocked (their pending reads expire immediately) while in-flight
// compressions and response writes run to completion. It is safe to call
// more than once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.ln != nil {
			err = s.ln.Close()
		}
		// Expire pending request reads so idle connections cannot hold the
		// drain hostage for ReadTimeout; writes (responses in flight)
		// proceed untouched.
		s.connMu.Lock()
		for conn := range s.conns {
			_ = conn.SetReadDeadline(s.clock.Now())
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *Server) handle(conn net.Conn) (err error) {
	br := getConnReader(conn)
	defer putConnReader(br)
	bw := getConnWriter(conn)
	defer putConnWriter(bw)
	defer bw.Flush()

	span := s.tracer.Start("serve")
	span.SetAttr("remote", conn.RemoteAddr().String())
	defer func() {
		span.Fail(err)
		span.Finish()
	}()

	// A client must present its whole request within ReadTimeout, and the
	// full response must drain within WriteTimeout.
	if err := conn.SetReadDeadline(s.clock.Now().Add(s.cfg.ReadTimeout)); err != nil {
		return err
	}
	readStart := time.Now()
	req, err := readRequest(br)
	if err != nil {
		return err
	}
	span.Phase("read-request", "", readStart, time.Since(readStart), 0)
	span.SetAttr("req_id", obs.ReqID(req.ReqID))
	s.metrics.requests.Add(1)
	if err := conn.SetWriteDeadline(s.clock.Now().Add(s.cfg.WriteTimeout)); err != nil {
		return err
	}
	switch req.Op {
	case opList:
		span.SetAttr("op", "list")
		return s.handleList(bw)
	case opGet, opGetEx:
		span.SetAttr("op", "get")
		span.SetAttr("name", req.Name)
		span.SetAttr("scheme", req.Scheme.String())
		span.SetAttr("mode", req.Mode.String())
		s.log.Debug("get", slog.String("name", req.Name), slog.String("mode", req.Mode.String()),
			slog.Uint64("offset", req.Offset), obs.ReqIDAttr(req.ReqID))
		return s.handleGet(bw, req, span)
	default:
		return writeGetHeader(bw, getHeader{Status: statusBadReq})
	}
}

func (s *Server) handleList(bw *bufio.Writer) error {
	names := s.Files()
	var hdr [5]byte
	hdr[0] = statusOK
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(names)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, n := range names {
		var n16 [2]byte
		binary.BigEndian.PutUint16(n16[:], uint16(len(n)))
		if _, err := bw.Write(n16[:]); err != nil {
			return err
		}
		if _, err := bw.Write([]byte(n)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (s *Server) handleGet(bw *bufio.Writer, req request, span *obs.Span) error {
	content, gen, ok := s.lookup(req.Name)
	if !ok {
		return writeGetHeader(bw, getHeader{Status: statusNotFound})
	}

	blocks, err := s.blocksFor(req, content, gen, span)
	if err != nil {
		return err
	}
	// Resume: grant the largest block boundary at or below the requested
	// offset and serve from there. Block boundaries are deterministic per
	// (file, scheme, mode), so a client that verified N raw bytes on a
	// previous attempt is handed exactly the blocks it is missing.
	start, granted := 0, uint64(0)
	for start < len(blocks) && granted+uint64(blocks[start].RawLen) <= req.Offset {
		granted += uint64(blocks[start].RawLen)
		start++
	}
	if err := writeGetHeader(bw, getHeader{
		Status:  statusOK,
		RawSize: uint64(len(content)),
		Scheme:  req.Scheme,
		Offset:  granted,
	}); err != nil {
		return err
	}
	writeStart := time.Now()
	var wrote int64
	for _, b := range blocks[start:] {
		flag := byte(blockFlagRaw)
		if b.Compressed {
			flag = blockFlagCompressed
			s.metrics.bytesCompressed.Add(int64(len(b.Payload)))
		} else {
			s.metrics.bytesRaw.Add(int64(len(b.Payload)))
		}
		wb := wireBlock{Flag: flag, RawLen: uint32(b.RawLen), Payload: b.Payload}
		if err := writeBlock(bw, wb); err != nil {
			return err
		}
		wrote += int64(blockHeaderLen + len(b.Payload))
		// Flush per block so the client's pipeline can overlap
		// decompression with the next block's arrival.
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	span.Phase("write-blocks", "", writeStart, time.Since(writeStart), wrote)
	if err := writeEnd(bw, crcOf(content)); err != nil {
		return err
	}
	return bw.Flush()
}

// blocksFor materialises the block stream for a request. ModeRaw chunks
// without compression; every compressing mode goes through the cache and
// singleflight, so concurrent load amortises the server-side compute.
func (s *Server) blocksFor(req request, content []byte, gen uint64, span *obs.Span) ([]selective.Block, error) {
	var d selective.Decider
	var fp string
	switch req.Mode {
	case ModeRaw:
		return chunkRaw(content), nil
	case ModePrecompressed, ModeOnDemand:
		// Both serve the whole file compressed; they share artifacts. The
		// modes differ only in when the paper's testbed pays the compute,
		// which the cache now amortises either way.
		d, fp = selective.AlwaysCompress{}, fpAlways
	case ModeSelective:
		d, fp = s.decider, s.deciderFP
		// An opGetEx request that declared attributes gets a per-request
		// policy derivation when the decider supports it (the dynamic
		// decider folds the deadline class into its fingerprint, so blocks
		// shaped by a stricter deadline never serve a laxer request from
		// cache, or vice versa).
		if req.Class != 0 || req.BudgetMJ != 0 {
			if pr, ok := s.decider.(interface {
				ForRequest(uint8, uint32) (selective.Decider, string)
			}); ok {
				d, fp = pr.ForRequest(req.Class, req.BudgetMJ)
			}
		}
	default:
		return nil, fmt.Errorf("%w: mode %d", ErrProtocol, int(req.Mode))
	}
	key := cacheKey{name: req.Name, gen: gen, scheme: req.Scheme, fp: fp}
	return s.getOrCompress(key, content, req.Scheme, d, span, true)
}
