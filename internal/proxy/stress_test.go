package proxy

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/checksum"
	"repro/internal/codec"
	"repro/internal/workload"
)

// TestServerConcurrentClients hammers the server with 32 goroutine clients
// over overlapping (file, scheme, mode) tuples and asserts:
//
//	(a) no data corruption — every fetch's CRC-32 matches the registered
//	    content (internal/checksum);
//	(b) singleflight — compressBlocks ran at most once per cache key;
//	(c) the Stats() counters reconcile exactly with observed traffic.
//
// Run under `go test -race`; the CI target does.
func TestServerConcurrentClients(t *testing.T) {
	// All files span multiple 128 KB blocks so the pipeline and framing are
	// exercised, but stay small enough that -race runs finish quickly.
	files := map[string][]byte{
		"doc.xml":   workload.Generate(workload.ClassXML, 200_000, 1),
		"app.bin":   workload.Generate(workload.ClassBinary, 150_000, 2),
		"mail.mbox": workload.Generate(workload.ClassMail, 160_000, 3),
		"mixed.tar": workload.MixedFile(256_000, 4),
	}
	wantCRC := make(map[string]uint32, len(files))
	for n, data := range files {
		wantCRC[n] = checksum.CRC32(data)
	}

	// Budget large enough that nothing evicts: with zero evictions the
	// singleflight guarantee is exact, not just overwhelmingly likely.
	srv := NewServerWith(nil, Config{CacheBytes: 256 << 20, Workers: 4})
	var compressMu sync.Mutex
	compressed := make(map[cacheKey]int)
	srv.onCompress = func(k cacheKey) {
		compressMu.Lock()
		compressed[k]++
		compressMu.Unlock()
	}
	for n, data := range files {
		srv.Register(n, data)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	names := []string{"doc.xml", "app.bin", "mail.mbox", "mixed.tar"}
	schemes := []codec.Scheme{codec.Gzip, codec.Zlib}
	modes := []Mode{ModeOnDemand, ModeSelective, ModeRaw}

	const (
		clients          = 32
		fetchesPerClient = 8
	)
	var (
		wg            sync.WaitGroup
		countMu       sync.Mutex
		cacheableReqs int64
		totalReqs     int64
	)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			cli := NewClient(addr)
			var cacheable, total int64
			for j := 0; j < fetchesPerClient; j++ {
				name := names[rng.Intn(len(names))]
				scheme := schemes[rng.Intn(len(schemes))]
				mode := modes[rng.Intn(len(modes))]
				got, _, err := cli.Fetch(name, scheme, mode)
				if err != nil {
					errs[i] = fmt.Errorf("fetch %s/%v/%v: %w", name, scheme, mode, err)
					return
				}
				if checksum.CRC32(got) != wantCRC[name] || len(got) != len(files[name]) {
					errs[i] = fmt.Errorf("%s/%v/%v: content corrupted", name, scheme, mode)
					return
				}
				total++
				if mode != ModeRaw {
					cacheable++
				}
			}
			countMu.Lock()
			cacheableReqs += cacheable
			totalReqs += total
			countMu.Unlock()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	st := srv.Stats()

	// (b) singleflight: at most one compression per key, and never more
	// keys than the (file, scheme, policy) product.
	compressMu.Lock()
	distinctKeys := len(compressed)
	for k, n := range compressed {
		if n != 1 {
			t.Errorf("key %+v compressed %d times, want exactly 1", k, n)
		}
	}
	compressMu.Unlock()
	if max := int64(len(names) * len(schemes) * 2); int64(distinctKeys) > max {
		t.Errorf("%d distinct keys compressed, want <= %d", distinctKeys, max)
	}
	if st.Compressions != int64(distinctKeys) {
		t.Errorf("Compressions = %d, want %d (one per distinct key)", st.Compressions, distinctKeys)
	}
	if st.Evictions != 0 {
		t.Errorf("unexpected evictions (%d) under a 256 MiB budget", st.Evictions)
	}

	// (c) counters reconcile with observed traffic.
	if st.CacheHits+st.CacheMisses != cacheableReqs {
		t.Errorf("hits(%d)+misses(%d) = %d, want %d cacheable requests",
			st.CacheHits, st.CacheMisses, st.CacheHits+st.CacheMisses, cacheableReqs)
	}
	if st.Compressions+st.Coalesced != st.CacheMisses {
		t.Errorf("compressions(%d)+coalesced(%d) != misses(%d)",
			st.Compressions, st.Coalesced, st.CacheMisses)
	}
	if st.ConnsTotal != totalReqs {
		t.Errorf("ConnsTotal = %d, want %d", st.ConnsTotal, totalReqs)
	}
	if st.ConnsActive != 0 {
		t.Errorf("ConnsActive = %d after drain, want 0", st.ConnsActive)
	}
	if st.Errors != 0 {
		t.Errorf("server recorded %d errors", st.Errors)
	}
	if st.BytesServedRaw == 0 || st.BytesServedCompressed == 0 {
		t.Errorf("served bytes raw=%d compressed=%d, want both nonzero",
			st.BytesServedRaw, st.BytesServedCompressed)
	}
	var latTotal int64
	for _, b := range st.Latency {
		latTotal += b.Count
	}
	if latTotal != totalReqs {
		t.Errorf("latency histogram holds %d observations, want %d", latTotal, totalReqs)
	}
}

// TestServerBusySheds drives more simultaneous connections than MaxConns
// allows and checks that the overflow is refused with ErrBusy, that served
// requests still verify, and that the rejection is counted.
func TestServerBusySheds(t *testing.T) {
	srv := NewServerWith(nil, Config{MaxConns: 2, Workers: 1})
	data := workload.Generate(workload.ClassXML, 400_000, 7)
	srv.Register("doc.xml", data)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const attempts = 24
	var wg sync.WaitGroup
	var busy, ok, other int64
	var mu sync.Mutex
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := NewClient(addr).Fetch("doc.xml", codec.Gzip, ModeOnDemand)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				if checksum.CRC32(got) != checksum.CRC32(data) {
					other++
				} else {
					ok++
				}
			case errors.Is(err, ErrBusy):
				busy++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("%d fetches failed with unexpected errors or corruption", other)
	}
	if ok == 0 {
		t.Fatal("no fetch succeeded under the connection cap")
	}
	st := srv.Stats()
	if st.ConnsRejected != busy {
		t.Errorf("ConnsRejected = %d, clients saw %d ErrBusy", st.ConnsRejected, busy)
	}
	if busy+ok != attempts {
		t.Errorf("busy(%d)+ok(%d) != %d attempts", busy, ok, attempts)
	}
}

// TestCloseDrainsInflightTransfers starts a large on-demand fetch and
// closes the server mid-flight: the fetch must complete intact (graceful
// drain), not be cut off.
func TestCloseDrainsInflightTransfers(t *testing.T) {
	srv := NewServerWith(nil, Config{Workers: 2})
	data := workload.Generate(workload.ClassSource, 1_500_000, 5)
	srv.Register("big.src", data)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	srv.onCompress = func(cacheKey) { close(started) }

	type result struct {
		crc uint32
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		got, _, err := NewClient(addr).Fetch("big.src", codec.Gzip, ModeOnDemand)
		resCh <- result{checksum.CRC32(got), err}
	}()

	<-started // compression (and hence the response) is in flight
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight fetch aborted by Close: %v", res.err)
	}
	if res.crc != checksum.CRC32(data) {
		t.Fatal("in-flight fetch corrupted by Close")
	}
}
