//go:build !race

package proxy

// Allocation gate for the event-export hook: a client with no sink
// configured must pay nothing for the telemetry plane — the nil check in
// emitFetchEvent is the entire cost. Excluded under the race detector,
// which instruments allocations.

import (
	"testing"

	"repro/internal/codec"
)

func TestEmitFetchEventNoSinkZeroAlloc(t *testing.T) {
	c := NewClient("127.0.0.1:0")
	stats := FetchStats{RawBytes: 1_000_000, WireBytes: 400_000, BlocksTotal: 8, BlocksCompressed: 8, Attempts: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		c.emitFetchEvent(1, "f", codec.Gzip, ModeSelective, nil, stats, 0, nil)
	})
	if allocs != 0 {
		t.Errorf("emitFetchEvent with nil sink allocated %.1f times per call, want 0", allocs)
	}
}
