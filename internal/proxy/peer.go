package proxy

import (
	"errors"

	"repro/internal/codec"
	"repro/internal/selective"
)

// This file is the server's cluster surface: the hooks and artifact
// accessors internal/cluster wires a consistent-hash ring of proxies
// through. The server itself knows nothing about rings or peers — it
// exposes "consult a peer on a miss" (SetPeerFetch), "observe every
// compression" (SetOnCompress), and generation-aware artifact access
// (Artifact / CachedArtifact / AdmitArtifact / SyncGeneration), and the
// cluster node composes them into peer fetch, hot-key replication and
// ring-wide invalidation.

// ArtifactKey identifies one compressed artifact cluster-wide: a named
// file at a registration generation, compressed under a scheme and a
// decision-policy fingerprint. It is the exported mirror of the cache
// key, and what the consistent-hash ring hashes.
type ArtifactKey struct {
	Name   string
	Gen    uint64
	Scheme codec.Scheme
	FP     string
}

// ErrOwnedLocally is returned by a PeerFetchFunc when the ring places the
// key on this node: the caller should compress locally, it IS the owner.
var ErrOwnedLocally = errors.New("proxy: artifact key owned locally")

// ErrStaleGeneration is returned by Artifact when the requested
// generation does not match this node's current generation for the file —
// the requester's view of the ring is behind (or ahead of) an
// invalidation that is still propagating.
var ErrStaleGeneration = errors.New("proxy: stale artifact generation")

// PeerFetchFunc fetches the finished compressed artifact for key from its
// ring owner. A nil error means blocks is the complete artifact;
// ErrOwnedLocally means this node owns the key; any other error degrades
// the miss to local compression (never to a client-visible failure).
type PeerFetchFunc func(key ArtifactKey) ([]selective.Block, error)

// SetPeerFetch installs the peer-fetch consult on the miss path. Must be
// called before the server starts accepting traffic.
func (s *Server) SetPeerFetch(f PeerFetchFunc) { s.peerFetch = f }

// SetOnCompress installs an observer called for every artifact actually
// compressed on this node (cluster replication and the at-most-one-
// compression-per-key oracle hook). Must be set before traffic.
func (s *Server) SetOnCompress(f func(ArtifactKey)) {
	if f == nil {
		s.onCompress = nil
		return
	}
	s.onCompress = func(k cacheKey) {
		f(ArtifactKey{Name: k.name, Gen: k.gen, Scheme: k.scheme, FP: k.fp})
	}
}

// DeciderFP returns the fingerprint of this server's selective-mode
// decision policy — the FP a cluster node advertises for selective keys.
func (s *Server) DeciderFP() string { return s.deciderFP }

// Generation returns the server's current generation for name.
func (s *Server) Generation(name string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen, ok := s.gens[name]
	return gen, ok
}

// SyncGeneration raises this node's generation for name to at least gen
// and invalidates cached artifacts below it. Cluster invalidation
// broadcasts land here; it never lowers a generation (a stale broadcast
// arriving late is a no-op).
func (s *Server) SyncGeneration(name string, gen uint64) {
	s.mu.Lock()
	if _, ok := s.files[name]; !ok || s.gens[name] >= gen {
		s.mu.Unlock()
		return
	}
	s.gens[name] = gen
	s.mu.Unlock()
	if s.cache != nil {
		s.cache.invalidate(name, gen)
	}
}

// deciderFor maps a policy fingerprint back to a decider this server can
// run — the fixed policies, or its own configured selective decider.
func (s *Server) deciderFor(fp string) (selective.Decider, bool) {
	switch fp {
	case fpAlways:
		return selective.AlwaysCompress{}, true
	case fpNever:
		return selective.NeverCompress{}, true
	case s.deciderFP:
		return s.decider, true
	}
	return nil, false
}

// Artifact returns the finished compressed artifact for key, building it
// (cache + singleflight + worker pool, all counters live) when absent.
// This is what a ring owner runs to serve a peer fetch: the peer-fetch
// consult is disabled on this path, so ownership confusion during ring
// churn can never forward a request in a cycle.
func (s *Server) Artifact(key ArtifactKey) ([]selective.Block, error) {
	content, gen, ok := s.lookup(key.Name)
	if !ok {
		return nil, ErrNotFound
	}
	if gen != key.Gen {
		return nil, ErrStaleGeneration
	}
	d, ok := s.deciderFor(key.FP)
	if !ok {
		return nil, errors.New("proxy: unknown decider fingerprint " + key.FP)
	}
	k := cacheKey{name: key.Name, gen: key.Gen, scheme: key.Scheme, fp: key.FP}
	return s.getOrCompress(k, content, key.Scheme, d, nil, false)
}

// CachedArtifact returns key's artifact if (and only if) it is already in
// the local cache, touching no hit/miss counters: the probe a non-owner
// uses to serve a peer fetch from a replicated copy.
func (s *Server) CachedArtifact(key ArtifactKey) ([]selective.Block, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.get(cacheKey{name: key.Name, gen: key.Gen, scheme: key.Scheme, fp: key.FP})
}

// AdmitArtifact inserts a peer-built artifact into the local cache (hot-
// key admission and replication pushes). The cache's generation floor
// silently rejects artifacts for invalidated generations.
func (s *Server) AdmitArtifact(key ArtifactKey, blocks []selective.Block) {
	if s.cache == nil {
		return
	}
	s.cache.put(cacheKey{name: key.Name, gen: key.Gen, scheme: key.Scheme, fp: key.FP}, blocks)
}
