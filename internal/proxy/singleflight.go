package proxy

import (
	"sync"

	"repro/internal/selective"
)

// flightCall is one in-flight compression; followers block on done.
type flightCall struct {
	done   chan struct{}
	blocks []selective.Block
	err    error
}

// flightGroup gives singleflight semantics to artifact construction: N
// simultaneous requests for the same uncached cacheKey run the build
// function exactly once; the other N-1 wait for and share its result.
type flightGroup struct {
	mu sync.Mutex
	m  map[cacheKey]*flightCall
	// wait, when set, is how a follower blocks on its leader's done
	// channel (Config.FlightWait); nil receives directly.
	wait func(done <-chan struct{})
}

// do runs fn for key unless an identical call is already in flight, in
// which case it waits for that call instead. shared reports whether this
// caller received another caller's result. Results are not retained: once
// the leader returns and all waiters are released, the key is forgotten,
// so errors are retried by the next request rather than cached.
func (g *flightGroup) do(key cacheKey, fn func() ([]selective.Block, error)) (blocks []selective.Block, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[cacheKey]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		if g.wait != nil {
			g.wait(c.done)
		} else {
			<-c.done
		}
		return c.blocks, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.blocks, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.blocks, c.err, false
}
