package proxy

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"repro/internal/obs"
)

// adminStatsz is the /statsz document: the same Stats snapshot the
// SIGUSR1 report prints (one source of truth), plus process-level context
// an operator wants next to it.
type adminStatsz struct {
	Stats      Stats  `json:"stats"`
	Goroutines int    `json:"goroutines"`
	UptimeMS   int64  `json:"uptime_ms"`
	StartedAt  string `json:"started_at"`
}

// AdminHandler returns the server's admin plane, served by proxyd's
// -admin listener (and mountable anywhere an http.Handler fits):
//
//	/healthz       liveness: "ok" while the server has not been closed
//	/metrics       Prometheus text exposition of the metrics registry
//	/statsz        JSON Stats snapshot — the same snapshot SIGUSR1 prints
//	/tracez        JSON array of recent request spans, oldest first
//	/debug/pprof/  the standard Go profiling endpoints
//
// The handler holds no locks across requests and reads the same atomics
// the dataplane writes, so scraping it is safe under full load.
func (s *Server) AdminHandler() http.Handler {
	started := time.Now()
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-s.closed:
			http.Error(w, "closing", http.StatusServiceUnavailable)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte("ok\n"))
		}
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.refreshGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, s.reg.Snapshot())
	})

	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		doc := adminStatsz{
			Stats:      s.Stats(),
			Goroutines: runtime.NumGoroutine(),
			UptimeMS:   time.Since(started).Milliseconds(),
			StartedAt:  started.UTC().Format(time.RFC3339),
		}
		writeAdminJSON(w, doc)
	})

	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		writeAdminJSON(w, s.tracer.Snapshot())
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

func writeAdminJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
