package proxy

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

// adminStatsz is the /statsz document: the same Stats snapshot the
// SIGUSR1 report prints (one source of truth), plus process-level context
// an operator wants next to it.
type adminStatsz struct {
	Stats      Stats  `json:"stats"`
	Goroutines int    `json:"goroutines"`
	UptimeMS   int64  `json:"uptime_ms"`
	StartedAt  string `json:"started_at"`
}

// AdminHandler returns the server's admin plane, served by proxyd's
// -admin listener (and mountable anywhere an http.Handler fits):
//
//	/healthz       liveness: "ok" while the server has not been closed
//	/metrics       Prometheus text exposition of the metrics registry
//	/statsz        JSON Stats snapshot — the same snapshot SIGUSR1 prints
//	/tracez        JSON array of recent request spans, oldest first
//	/eventsz       JSON array of recent wide events (Config.Events ring)
//	/debug/pprof/  the standard Go profiling endpoints
//
// /tracez and /eventsz take ?name= (keep only spans/events with that
// span name, e.g. "fetch" or "serve") and ?limit=N (keep only the most
// recent N after filtering), so an operator can pull just the slice they
// want from a busy proxyd.
//
// The handler holds no locks across requests and reads the same atomics
// the dataplane writes, so scraping it is safe under full load.
func (s *Server) AdminHandler() http.Handler {
	started := time.Now()
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-s.closed:
			http.Error(w, "closing", http.StatusServiceUnavailable)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte("ok\n"))
		}
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.refreshGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, s.reg.Snapshot())
	})

	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		doc := adminStatsz{
			Stats:      s.Stats(),
			Goroutines: runtime.NumGoroutine(),
			UptimeMS:   time.Since(started).Milliseconds(),
			StartedAt:  started.UTC().Format(time.RFC3339),
		}
		writeAdminJSON(w, doc)
	})

	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		spans := s.tracer.Snapshot()
		if spans == nil {
			spans = []obs.SpanData{}
		}
		if name := r.URL.Query().Get("name"); name != "" {
			kept := spans[:0]
			for _, d := range spans {
				if d.Name == name {
					kept = append(kept, d)
				}
			}
			spans = kept
		}
		spans = spans[len(spans)-adminLimit(r, len(spans)):]
		writeAdminJSON(w, spans)
	})

	mux.HandleFunc("/eventsz", func(w http.ResponseWriter, r *http.Request) {
		events := s.events.Recent()
		if events == nil {
			events = []export.Event{}
		}
		if name := r.URL.Query().Get("name"); name != "" {
			kept := events[:0]
			for _, e := range events {
				if e.Span == name {
					kept = append(kept, e)
				}
			}
			events = kept
		}
		events = events[len(events)-adminLimit(r, len(events)):]
		writeAdminJSON(w, events)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// adminLimit resolves ?limit=N against a slice of n entries: the count to
// keep from the tail (most recent). Absent, unparsable or out-of-range
// values keep everything.
func adminLimit(r *http.Request, n int) int {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return n
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 || v > n {
		return n
	}
	return v
}

func writeAdminJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
