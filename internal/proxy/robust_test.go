package proxy

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/workload"
)

// dialRaw opens a raw connection to the test server.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func robustServer(t *testing.T) (string, *Server) {
	t.Helper()
	srv := NewServer(nil)
	srv.Register("f.txt", workload.Generate(workload.ClassMail, 20_000, 1))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, srv
}

// TestServerSurvivesGarbageRequests: random bytes must not wedge or crash
// the server; a subsequent well-formed fetch must still succeed.
func TestServerSurvivesGarbageRequests(t *testing.T) {
	addr, _ := robustServer(t)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		conn := dialRaw(t, addr)
		junk := make([]byte, rng.Intn(200))
		rng.Read(junk)
		_, _ = conn.Write(junk)
		conn.Close()
	}
	cli := NewClient(addr)
	got, _, err := cli.Fetch("f.txt", codec.Gzip, ModeSelective)
	if err != nil {
		t.Fatalf("fetch after garbage: %v", err)
	}
	if len(got) != 20_000 {
		t.Fatalf("got %d bytes", len(got))
	}
}

// TestServerHandlesEarlyDisconnect: clients that vanish mid-request must
// not leak goroutines that block Close.
func TestServerHandlesEarlyDisconnect(t *testing.T) {
	addr, srv := robustServer(t)
	for i := 0; i < 10; i++ {
		conn := dialRaw(t, addr)
		// Send only part of a valid request header.
		_, _ = conn.Write([]byte("PXY1"))
		conn.Close()
	}
	done := make(chan struct{})
	go func() {
		_ = srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close blocked after early disconnects")
	}
}

// TestServerRejectsBadOp: an unknown opcode gets a bad-request status, not
// a hang.
func TestServerRejectsBadOp(t *testing.T) {
	addr, _ := robustServer(t)
	conn := dialRaw(t, addr)
	if err := writeRequest(conn, request{Op: 0x7F, Name: "f.txt"}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	hdr, err := readGetHeader(br)
	if err != nil {
		t.Fatalf("no response to bad op: %v", err)
	}
	if hdr.Status != statusBadReq {
		t.Errorf("status %d, want bad request", hdr.Status)
	}
}

// TestServerRejectsOverlongName: a name-length field beyond the cap is
// refused without reading the body.
func TestServerRejectsOverlongName(t *testing.T) {
	addr, _ := robustServer(t)
	conn := dialRaw(t, addr)
	// Hand-craft a request with nameLen = 0xFFFF.
	frame := append([]byte(protoMagic), opGet, 0xFF, 0xFF)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection rather than wait for 64k of
	// name bytes.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	_, err := conn.Read(buf)
	if err == nil {
		// A response (likely none) or EOF both fine; a timeout is not.
		return
	}
	if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server hung on overlong name")
	}
}

// TestClientRejectsOversizedBlockFrame: a malicious server advertising a
// giant block payload must be refused client-side.
func TestClientRejectsOversizedBlockFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := readRequest(bufio.NewReader(conn)); err != nil {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: 100, Scheme: codec.Gzip})
		// Block frame with a payload length over the cap.
		var hdr [blockHeaderLen]byte
		hdr[0] = blockFlagCompressed
		hdr[5] = 0xFF
		hdr[6] = 0xFF
		hdr[7] = 0xFF
		hdr[8] = 0xFF
		_, _ = conn.Write(hdr[:])
		_, _ = io.Copy(io.Discard, conn)
	}()
	cli := NewClient(ln.Addr().String())
	cli.Timeout = 10 * time.Second
	if _, _, err := cli.Fetch("x", codec.Gzip, ModeRaw); err == nil {
		t.Fatal("oversized block frame accepted")
	}
}

// TestClientDetectsWrongCRC: a server returning corrupted content is
// caught by the end-to-end CRC.
func TestClientDetectsWrongCRC(t *testing.T) {
	content := []byte("the true content")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := readRequest(bufio.NewReader(conn)); err != nil {
			return
		}
		_ = writeGetHeader(conn, getHeader{Status: statusOK, RawSize: uint64(len(content)), Scheme: codec.Gzip})
		_ = writeBlock(conn, wireBlock{Flag: blockFlagRaw, RawLen: uint32(len(content)), Payload: content})
		_ = writeEnd(conn, 0xDEADBEEF) // wrong CRC
	}()
	cli := NewClient(ln.Addr().String())
	if _, _, err := cli.Fetch("x", codec.Gzip, ModeRaw); err == nil {
		t.Fatal("wrong CRC accepted")
	}
}

// TestPipelineOrderingPreserved: with many blocks the decompressor must
// reassemble them in order even though it runs concurrently.
func TestPipelineOrderingPreserved(t *testing.T) {
	srv := NewServer(nil)
	// Sequence-stamped content so any reordering is detectable.
	var buf bytes.Buffer
	for i := 0; i < 300_000/8; i++ {
		_, _ = buf.WriteString(string(rune('a' + i%26)))
		_, _ = buf.WriteString("1234567")
	}
	content := buf.Bytes()
	srv.Register("seq", content)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(addr)
	for i := 0; i < 5; i++ {
		got, _, err := cli.Fetch("seq", codec.Zlib, ModeOnDemand)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("pipeline reordered content")
		}
	}
}
