package proxy

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/workload"
)

// TestEventExportEndToEnd drives the live (non-deterministic) telemetry
// path: a client sink must see one fetch event per Fetch with the right
// outcome class and model-exact joules, the server sink must see serve
// events via the tracer tee, and /eventsz must serve the ring with ?name=
// and ?limit= filtering. /tracez must honor the same filters.
func TestEventExportEndToEnd(t *testing.T) {
	srvSink := export.NewSink(nil, 32, 32)
	defer srvSink.Close()
	srv := NewServerWith(nil, Config{
		Tracer: obs.NewTracer(16),
		Events: srvSink,
	})
	srv.Register("f", workload.Generate(workload.ClassHTML, 300_000, 3))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	cliSink := export.NewSink(nil, 32, 32)
	defer cliSink.Close()
	cli := retryingClient(addr)
	cli.Tracer = obs.NewTracer(8)
	cli.Events = cliSink
	cli.DeviceClass = export.DeviceIPAQ11
	cli.LinkRateBps = 1.375e6

	_, stats, err := cli.Fetch("f", codec.Gzip, ModeOnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Fetch("absent", codec.Gzip, ModeRaw); err == nil {
		t.Fatal("fetch of absent file succeeded")
	}

	// --- Client sink: both outcomes, identity fields, exact joules.
	waitFor(t, func() bool { return len(cliSink.Recent()) == 2 })
	evs := cliSink.Recent()
	ok := evs[0]
	if ok.Span != "fetch" || ok.Outcome != "ok" || ok.Name != "f" ||
		ok.Scheme != codec.Gzip.String() || ok.Mode != ModeOnDemand.String() ||
		ok.Device != export.DeviceIPAQ11 || ok.LinkBps != 1.375e6 {
		t.Errorf("ok event = %+v", ok)
	}
	if ok.RawBytes != int64(stats.RawBytes) || ok.WireBytes != int64(stats.WireBytes) ||
		ok.BlocksCompressed != stats.BlocksCompressed || ok.Attempts != stats.Attempts {
		t.Errorf("ok event bytes disagree with FetchStats: %+v vs %+v", ok, stats)
	}
	if ok.Time == "" || len(ok.Phases) == 0 {
		t.Errorf("live event missing wall time or phases: %+v", ok)
	}
	p := energy.Params11Mbps()
	want := p.InterleavedEnergy(float64(stats.RawBytes)/1e6, float64(stats.WireBytes)/1e6)
	if math.Abs(ok.TotalJoules()-want) > 1e-9 {
		t.Errorf("ok event total = %g J, model says %g J", ok.TotalJoules(), want)
	}
	if bad := evs[1]; bad.Outcome != "notfound" || bad.Name != "absent" || bad.TotalJoules() != 0 {
		t.Errorf("failed event = %+v, want outcome notfound with no joules", bad)
	}

	// --- Server sink via the tracer tee, surfaced on /eventsz.
	waitFor(t, func() bool { return len(srvSink.Recent()) == 2 })
	var all []export.Event
	mustGetJSON(t, admin.URL+"/eventsz", &all)
	if len(all) != 2 {
		t.Fatalf("/eventsz returned %d events, want 2", len(all))
	}
	for _, e := range all {
		if e.Span != "serve" || e.ReqID == "" {
			t.Errorf("serve event = %+v", e)
		}
	}
	// Answering "not found" is a successful serve; the error class lives on
	// the client's fetch event, not the server's.
	if all[0].Name != "f" || all[1].Name != "absent" {
		t.Errorf("serve names = %q, %q; want f then absent", all[0].Name, all[1].Name)
	}

	var limited []export.Event
	mustGetJSON(t, admin.URL+"/eventsz?limit=1", &limited)
	if len(limited) != 1 || limited[0].Name != "absent" {
		t.Errorf("?limit=1 = %+v, want just the most recent serve (absent)", limited)
	}
	var none []export.Event
	mustGetJSON(t, admin.URL+"/eventsz?name=fetch", &none)
	if none == nil || len(none) != 0 {
		t.Errorf("?name=fetch = %+v, want empty (not null) array", none)
	}

	// --- /tracez takes the same filters.
	var spans []obs.SpanData
	mustGetJSON(t, admin.URL+"/tracez?name=serve&limit=1", &spans)
	if len(spans) != 1 || spans[0].Name != "serve" {
		t.Errorf("/tracez?name=serve&limit=1 = %+v", spans)
	}
	mustGetJSON(t, admin.URL+"/tracez?name=nosuch", &spans)
	if spans == nil || len(spans) != 0 {
		t.Errorf("/tracez?name=nosuch = %+v, want empty array", spans)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustGetJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal(httpGet(t, url), v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
