package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/workload"
)

// findHistogram returns the named histogram from a registry snapshot.
func findHistogram(t *testing.T, snap obs.Snapshot, name string) obs.HistogramSnapshot {
	t.Helper()
	for _, h := range snap.Histograms {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("histogram %q not in snapshot", name)
	return obs.HistogramSnapshot{}
}

// findCounter returns the named counter's value from a registry snapshot.
func findCounter(t *testing.T, snap obs.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q not in snapshot", name)
	return 0
}

// promValue extracts a bare metric sample ("name 42") from Prometheus text.
func promValue(t *testing.T, text, name string) int64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %q not in exposition:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %q value %q: %v", name, m[1], err)
	}
	return int64(v)
}

// httpGet fetches an admin endpoint body.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return body
}

// TestObservabilityEndToEnd is the acceptance test for the telemetry
// plane: against a fault-injected server, a traced fetch must retry and
// resume, and afterwards Server.Stats, /statsz, /metrics and /tracez must
// tell one consistent story, the client's span must carry per-phase joules
// summing to the energy model's answer for the same sizes, and the client
// registry must have recorded the backoff, resume and error-classification
// instruments. Shutdown must not leak goroutines.
func TestObservabilityEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	content := workload.Generate(workload.ClassHTML, 400_000, 7)
	// Cut the first connection mid-way through the second block, forcing
	// exactly one retry that resumes from the 128 000-byte block boundary.
	cut := getHeaderLen + blockHeaderLen + 128_000 + blockHeaderLen + 1_000
	var conns atomic.Int64
	srvReg := obs.NewRegistry()
	srvTracer := obs.NewTracer(16)
	srv := NewServerWith(nil, Config{
		WrapConn: func(conn net.Conn) net.Conn {
			if conns.Add(1) == 1 {
				return &cutConn{Conn: conn, budget: cut}
			}
			return conn
		},
		Metrics: srvReg,
		Tracer:  srvTracer,
	})
	srv.Register("f", content)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	cli := retryingClient(addr)
	cliReg := obs.NewRegistry()
	cliTracer := obs.NewTracer(8)
	cli.Metrics = cliReg
	cli.Tracer = cliTracer

	// Fetch 1: raw mode through the cut — the block sizes on the wire are
	// the raw 128 000-byte blocks the budget was sized for, so the first
	// connection dies mid-block 2 and the retry resumes one verified block
	// in. This exercises the Eq. 1 (plain download) energy path.
	got, stats, err := cli.Fetch("f", codec.Gzip, ModeRaw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch")
	}
	if stats.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (cut must force one retry)", stats.Attempts)
	}
	if stats.ResumedBytes != 128_000 {
		t.Fatalf("resumed %d bytes, want 128000", stats.ResumedBytes)
	}
	if stats.BackoffSlept <= 0 {
		t.Error("BackoffSlept not recorded for a retried fetch")
	}

	// Fetches 2 and 3: compressed on demand — a cache miss that compresses,
	// then a hit on the same artifact. Fetch 2 exercises the Eq. 3
	// (interleaved) energy path.
	_, statsC, err := cli.Fetch("f", codec.Gzip, ModeOnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if statsC.BlocksCompressed == 0 {
		t.Fatal("on-demand fetch moved no compressed blocks")
	}
	if _, _, err := cli.Fetch("f", codec.Gzip, ModeOnDemand); err != nil {
		t.Fatal(err)
	}

	// --- Server side: Stats(), /statsz, /metrics and /tracez must agree.
	ss := srv.Stats()
	if ss.ConnsTotal != 4 {
		t.Errorf("ConnsTotal = %d, want 4 (two attempts + miss + hit)", ss.ConnsTotal)
	}
	if ss.Requests != 4 {
		t.Errorf("Requests = %d, want 4", ss.Requests)
	}
	if ss.CacheHits < 1 || ss.Compressions < 1 {
		t.Errorf("cache story: hits=%d compressions=%d, want both ≥ 1", ss.CacheHits, ss.Compressions)
	}

	var statsz struct {
		Stats      Stats `json:"stats"`
		Goroutines int   `json:"goroutines"`
	}
	if err := json.Unmarshal(httpGet(t, admin.URL+"/statsz"), &statsz); err != nil {
		t.Fatal(err)
	}
	if statsz.Goroutines <= 0 {
		t.Error("statsz goroutines missing")
	}
	if fmt.Sprint(statsz.Stats) != fmt.Sprint(ss) {
		t.Errorf("/statsz disagrees with Server.Stats:\n%v\nvs\n%v", statsz.Stats, ss)
	}

	prom := string(httpGet(t, admin.URL+"/metrics"))
	for name, want := range map[string]int64{
		"proxy_requests_total":     ss.Requests,
		"proxy_conns_total":        ss.ConnsTotal,
		"proxy_cache_hits_total":   ss.CacheHits,
		"proxy_compressions_total": ss.Compressions,
	} {
		if got := promValue(t, prom, name); got != want {
			t.Errorf("/metrics %s = %d, Stats says %d", name, got, want)
		}
	}

	// --- Correlation: the client-minted request ID must appear on the
	// client span and on one server span per attempt.
	cspans := cliTracer.Snapshot()
	if len(cspans) != 3 {
		t.Fatalf("client tracer holds %d spans, want 3", len(cspans))
	}
	span1 := cspans[0]
	reqID := span1.Attrs["req_id"]
	if reqID == "" || reqID == obs.ReqID(0) {
		t.Fatalf("client span req_id = %q", reqID)
	}
	var tracez []obs.SpanData
	if err := json.Unmarshal(httpGet(t, admin.URL+"/tracez"), &tracez); err != nil {
		t.Fatal(err)
	}
	matched := 0
	for _, sp := range tracez {
		if sp.Attrs["req_id"] == reqID {
			matched++
		}
	}
	if matched != 2 {
		t.Errorf("server /tracez has %d spans with req_id %s, want 2 (one per attempt)", matched, reqID)
	}

	// --- Energy attribution: each span's per-phase joules must sum to the
	// model's whole-transfer answer for the same raw/wire sizes, per class.
	p := energy.Params11Mbps()
	closeTo := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	// Raw fetch (span 1): Eq. 1, no CPU component.
	bdRaw := p.DownloadBreakdown(float64(stats.RawBytes) / 1e6)
	byClass := span1.JoulesByClass()
	if !closeTo(byClass[obs.ClassRadio], bdRaw.RadioJ) {
		t.Errorf("raw-span radio joules %v, model says %v", byClass[obs.ClassRadio], bdRaw.RadioJ)
	}
	if byClass[obs.ClassCPU] != 0 {
		t.Errorf("raw-span cpu joules %v, want 0", byClass[obs.ClassCPU])
	}
	if !closeTo(byClass[obs.ClassIdle], bdRaw.IdleJ) {
		t.Errorf("raw-span idle joules %v, model says %v", byClass[obs.ClassIdle], bdRaw.IdleJ)
	}
	if want := p.DownloadEnergy(float64(stats.RawBytes) / 1e6); !closeTo(span1.TotalJoules(), want) {
		t.Errorf("raw-span total %v J, DownloadEnergy says %v J", span1.TotalJoules(), want)
	}
	// Compressed fetch (span 2): Eq. 3, all three components.
	spanC := cspans[1]
	s := float64(statsC.RawBytes) / 1e6
	sc := float64(statsC.WireBytes) / 1e6
	bd := p.InterleavedBreakdown(s, sc)
	byClassC := spanC.JoulesByClass()
	if !closeTo(byClassC[obs.ClassRadio], bd.RadioJ) {
		t.Errorf("radio joules %v, model says %v", byClassC[obs.ClassRadio], bd.RadioJ)
	}
	if !closeTo(byClassC[obs.ClassCPU], bd.CPUJ) {
		t.Errorf("cpu joules %v, model says %v", byClassC[obs.ClassCPU], bd.CPUJ)
	}
	if !closeTo(byClassC[obs.ClassIdle], bd.IdleJ) {
		t.Errorf("idle joules %v, model says %v", byClassC[obs.ClassIdle], bd.IdleJ)
	}
	if want := p.InterleavedEnergy(s, sc); !closeTo(spanC.TotalJoules(), want) {
		t.Errorf("span total %v J, InterleavedEnergy says %v J", spanC.TotalJoules(), want)
	}

	// --- Client instruments: backoff, resume and error classification.
	cs := cliReg.Snapshot()
	if h := findHistogram(t, cs, "client_backoff_sleep_seconds"); h.Count < 1 {
		t.Errorf("backoff histogram count = %d, want ≥ 1", h.Count)
	}
	h := findHistogram(t, cs, "client_resumed_bytes")
	if h.Count != 1 || h.Sum != float64(stats.ResumedBytes) {
		t.Errorf("resumed-bytes histogram count=%d sum=%v, FetchStats says %d", h.Count, h.Sum, stats.ResumedBytes)
	}
	if h := findHistogram(t, cs, "client_fetch_attempts"); h.Count != 3 || h.Sum != 4 {
		t.Errorf("attempts histogram count=%d sum=%v, want 3 fetches totalling 4 attempts", h.Count, h.Sum)
	}
	if v := findCounter(t, cs, "client_errors_transient_total"); v != 1 {
		t.Errorf("transient errors = %d, want 1", v)
	}
	if v := findCounter(t, cs, "client_errors_permanent_total"); v != 0 {
		t.Errorf("permanent errors = %d, want 0", v)
	}

	// --- Shutdown: /healthz flips to 503 and nothing leaks.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after Close = %d, want 503", resp.StatusCode)
	}
	admin.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestPermanentErrorClassification: a not-found answer is the server's
// honest word, so it must land in the permanent counter and not be
// retried.
func TestPermanentErrorClassification(t *testing.T) {
	srv := NewServer(nil)
	srv.Register("present", []byte("x"))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := retryingClient(addr)
	cli.Metrics = obs.NewRegistry()
	_, stats, err := cli.Fetch("absent", codec.Gzip, ModeRaw)
	if err == nil {
		t.Fatal("fetch of absent file succeeded")
	}
	if stats.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (permanent errors must not retry)", stats.Attempts)
	}
	cs := cli.Metrics.Snapshot()
	if v := findCounter(t, cs, "client_errors_permanent_total"); v != 1 {
		t.Errorf("permanent errors = %d, want 1", v)
	}
	if v := findCounter(t, cs, "client_errors_transient_total"); v != 0 {
		t.Errorf("transient errors = %d, want 0", v)
	}
}
