package proxy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/selective"
)

// blocksOfSize builds a one-block stream whose cache charge is
// predictable: entrySize = entryOverhead + len(name) + payload + 32.
func blocksOfSize(payload int) []selective.Block {
	return []selective.Block{{RawLen: payload, Payload: make([]byte, payload)}}
}

func key1(name string) cacheKey {
	return cacheKey{name: name, gen: 1, scheme: codec.Gzip, fp: fpAlways}
}

// oneShardCache keeps every key in a single lock domain so eviction order
// is fully deterministic.
func oneShardCache(budget int64, m *metrics) *blockCache {
	return newBlockCache(budget, 1, m)
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	// Budget fits exactly three single-block entries of this shape.
	name := "aaaa"
	per := entrySize(key1(name), blocksOfSize(1000))
	m := newMetrics(obs.NewRegistry())
	c := oneShardCache(3*per, m)

	for _, n := range []string{"aaaa", "bbbb", "cccc"} {
		c.put(key1(n), blocksOfSize(1000))
	}
	if got := c.len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	// Refresh "aaaa" so "bbbb" is now least recently used.
	if _, ok := c.get(key1("aaaa")); !ok {
		t.Fatal("aaaa missing")
	}
	c.put(key1("dddd"), blocksOfSize(1000))

	if _, ok := c.get(key1("bbbb")); ok {
		t.Error("bbbb should have been evicted as LRU")
	}
	for _, n := range []string{"aaaa", "cccc", "dddd"} {
		if _, ok := c.get(key1(n)); !ok {
			t.Errorf("%s evicted, want retained", n)
		}
	}
	if got := m.evictions.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestCacheByteAccounting(t *testing.T) {
	m := newMetrics(obs.NewRegistry())
	c := oneShardCache(1<<20, m)
	want := int64(0)
	for i := 0; i < 10; i++ {
		k := key1(fmt.Sprintf("file%04d", i))
		b := blocksOfSize(100 * (i + 1))
		c.put(k, b)
		want += entrySize(k, b)
	}
	if got := c.bytes(); got != want {
		t.Fatalf("bytes = %d, want %d", got, want)
	}
	// Replacing a key must not double-count.
	k := key1("file0003")
	c.put(k, blocksOfSize(5000))
	want += entrySize(k, blocksOfSize(5000)) - entrySize(k, blocksOfSize(400))
	if got := c.bytes(); got != want {
		t.Fatalf("bytes after replace = %d, want %d", got, want)
	}
	// dropName frees the bytes.
	c.dropName("file0003")
	want -= entrySize(k, blocksOfSize(5000))
	if got := c.bytes(); got != want {
		t.Fatalf("bytes after drop = %d, want %d", got, want)
	}
	if got := c.len(); got != 9 {
		t.Fatalf("len after drop = %d, want 9", got)
	}
}

func TestCacheBudgetNeverExceeded(t *testing.T) {
	m := newMetrics(obs.NewRegistry())
	budget := int64(8 * 1024)
	c := oneShardCache(budget, m)
	for i := 0; i < 200; i++ {
		c.put(key1(fmt.Sprintf("f%03d", i)), blocksOfSize(500+i))
		if got := c.bytes(); got > budget {
			t.Fatalf("after put %d: %d bytes > budget %d", i, got, budget)
		}
	}
	if m.evictions.Value() == 0 {
		t.Error("expected evictions under a tight budget")
	}
}

func TestCacheRejectsOversizedArtifact(t *testing.T) {
	m := newMetrics(obs.NewRegistry())
	c := oneShardCache(1024, m)
	c.put(key1("small"), blocksOfSize(100))
	c.put(key1("huge"), blocksOfSize(10_000))
	if _, ok := c.get(key1("huge")); ok {
		t.Error("artifact larger than the shard budget was cached")
	}
	if _, ok := c.get(key1("small")); !ok {
		t.Error("oversized put evicted an unrelated resident entry")
	}
	if got := m.cacheRejects.Value(); got != 1 {
		t.Errorf("rejects = %d, want 1", got)
	}
}

func TestCacheGenerationsDoNotAlias(t *testing.T) {
	c := oneShardCache(1<<20, nil)
	k1 := cacheKey{name: "f", gen: 1, scheme: codec.Gzip, fp: fpAlways}
	k2 := cacheKey{name: "f", gen: 2, scheme: codec.Gzip, fp: fpAlways}
	c.put(k1, blocksOfSize(10))
	if _, ok := c.get(k2); ok {
		t.Fatal("generation 2 read generation 1's artifact")
	}
	c.put(k2, blocksOfSize(20))
	b1, _ := c.get(k1)
	b2, _ := c.get(k2)
	if len(b1[0].Payload) != 10 || len(b2[0].Payload) != 20 {
		t.Fatal("generations aliased")
	}
	// dropName removes both generations.
	c.dropName("f")
	if c.len() != 0 {
		t.Fatalf("len = %d after dropName", c.len())
	}
}

func TestCacheShardDistribution(t *testing.T) {
	c := newBlockCache(64<<20, 16, nil)
	seen := make(map[*cacheShard]int)
	for i := 0; i < 2000; i++ {
		k := cacheKey{name: fmt.Sprintf("file-%d.dat", i), gen: 1, scheme: codec.Scheme(1 + i%4), fp: fpAlways}
		seen[c.shardFor(k)]++
	}
	if len(seen) != 16 {
		t.Fatalf("keys landed on %d/16 shards", len(seen))
	}
	for sh, n := range seen {
		// 2000 keys over 16 shards averages 125; a shard under 40 or over
		// 320 means the hash is badly skewed.
		if n < 40 || n > 320 {
			t.Errorf("shard %p got %d keys, want roughly balanced", sh, n)
		}
	}
}

// TestCacheEvictionDuringSingleflight interleaves a slow singleflight
// build with concurrent puts that churn the shard: exactly one build may
// run (followers either share the flight or hit the cache the leader
// filled — the server's double-check pattern), the leader's eventual put
// must stay within budget, and every waiter must receive the built blocks.
func TestCacheEvictionDuringSingleflight(t *testing.T) {
	m := newMetrics(obs.NewRegistry())
	budget := int64(4 * 1024)
	c := oneShardCache(budget, m)
	var g flightGroup

	target := key1("contested")
	building := make(chan struct{})
	release := make(chan struct{})
	var builds atomic.Int32

	var wg sync.WaitGroup
	results := make([][]selective.Block, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				blocks, err, _ := g.do(target, func() ([]selective.Block, error) {
					close(building)
					<-release
					builds.Add(1)
					b := blocksOfSize(600)
					c.put(target, b)
					return b, nil
				})
				if err != nil {
					t.Error(err)
				}
				results[i] = blocks
				return
			}
			<-building
			blocks, err, _ := g.do(target, func() ([]selective.Block, error) {
				// Late arrival after the leader's flight completed: the
				// double-check must find the leader's artifact instead of
				// rebuilding.
				if b, ok := c.get(target); ok {
					return b, nil
				}
				builds.Add(1)
				return blocksOfSize(600), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = blocks
		}(i)
	}

	// While the leader is parked mid-build, churn the shard so evictions
	// interleave with the flight.
	<-building
	for i := 0; i < 50; i++ {
		c.put(key1(fmt.Sprintf("churn%02d", i)), blocksOfSize(700))
	}
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds ran for one contested key, want 1", n)
	}
	for i, b := range results {
		if len(b) != 1 || len(b[0].Payload) != 600 {
			t.Fatalf("waiter %d got wrong blocks: %v", i, b)
		}
	}
	if got := c.bytes(); got > budget {
		t.Fatalf("budget exceeded after interleaved churn: %d > %d", got, budget)
	}
	if m.evictions.Value() == 0 {
		t.Error("expected evictions during churn")
	}
}

// TestCacheInvalidateFloorRejectsStaleFill: after a generation-bump
// invalidation, a put for the invalidated generation (a singleflight fill
// that was already past the invalidation scan) must be rejected by the
// generation floor — one name's generations land on different shards, so
// only a global floor can close this race.
func TestCacheInvalidateFloorRejectsStaleFill(t *testing.T) {
	c := newBlockCache(1<<20, 8, nil)
	k1 := key1("f")
	k2 := k1
	k2.gen = 2

	c.put(k1, blocksOfSize(100))
	c.invalidate("f", 2)
	if _, ok := c.get(k1); ok {
		t.Fatal("invalidate left the stale-generation entry cached")
	}
	// The racing fill completes after the scan: must stay out.
	c.put(k1, blocksOfSize(100))
	if _, ok := c.get(k1); ok {
		t.Fatal("stale-generation fill re-inserted after invalidate")
	}
	// The new generation is admitted normally.
	c.put(k2, blocksOfSize(100))
	if _, ok := c.get(k2); !ok {
		t.Fatal("current-generation artifact rejected")
	}
	// A late, lower invalidation must not lower the floor.
	c.invalidate("f", 1)
	c.put(k1, blocksOfSize(100))
	if _, ok := c.get(k1); ok {
		t.Fatal("floor lowered by a stale invalidation")
	}
	if _, ok := c.get(k2); !ok {
		t.Fatal("stale invalidation dropped the current generation")
	}
}

// TestGenerationBumpDuringSingleflightFill: a Register (generation bump +
// invalidation) landing while a singleflight fill for the old generation
// is mid-compression must not let that fill resurrect the stale artifact
// when it completes. The onCompress hook fires inside the flight, after
// the leader won it but before its put — exactly the window the bare
// dropName scan used to leave open.
func TestGenerationBumpDuringSingleflightFill(t *testing.T) {
	srv := NewServerWith(nil, Config{CacheBytes: 1 << 20})
	oldContent := make([]byte, 4096)
	newContent := make([]byte, 4096)
	for i := range newContent {
		newContent[i] = byte(i)
	}
	srv.Register("f", oldContent) // generation 1

	bumped := false
	srv.onCompress = func(k cacheKey) {
		if !bumped && k.gen == 1 {
			bumped = true
			srv.Register("f", newContent) // generation 2: invalidates below it
		}
	}
	stale := cacheKey{name: "f", gen: 1, scheme: codec.Gzip, fp: fpAlways}
	if _, err := srv.getOrCompress(stale, oldContent, codec.Gzip, selective.AlwaysCompress{}, nil, false); err != nil {
		t.Fatal(err)
	}
	if !bumped {
		t.Fatal("test hook never fired: fill did not run a compression")
	}
	if _, ok := srv.cache.get(stale); ok {
		t.Fatal("stale-generation artifact cached after a concurrent generation bump")
	}
	// The current generation builds and caches cleanly.
	if err := srv.Precompress("f", codec.Gzip); err != nil {
		t.Fatal(err)
	}
	fresh := cacheKey{name: "f", gen: 2, scheme: codec.Gzip, fp: fpAlways}
	if _, ok := srv.cache.get(fresh); !ok {
		t.Fatal("current-generation artifact not cached")
	}
}
