package proxy

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/workload"
)

// startServer spins up a server on a loopback port with the standard test
// corpus registered.
func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(nil)
	srv.Register("doc.xml", workload.Generate(workload.ClassXML, 600_000, 1))
	srv.Register("app.bin", workload.Generate(workload.ClassBinary, 400_000, 2))
	srv.Register("noise.dat", workload.Generate(workload.ClassRandom, 300_000, 3))
	srv.Register("mixed.tar", workload.MixedFile(640_000, 4))
	srv.Register("tiny.txt", []byte("below the 3900-byte threshold"))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, NewClient(addr)
}

func TestList(t *testing.T) {
	_, cli := startServer(t)
	names, err := cli.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"app.bin", "doc.xml", "mixed.tar", "noise.dat", "tiny.txt"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("got %v, want %v", names, want)
		}
	}
}

func TestFetchAllModesAllSchemes(t *testing.T) {
	srv, cli := startServer(t)
	content := workload.Generate(workload.ClassXML, 600_000, 1)
	for _, scheme := range codec.Schemes() {
		if err := srv.Precompress("doc.xml", scheme); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeRaw, ModePrecompressed, ModeOnDemand, ModeSelective} {
			got, stats, err := cli.Fetch("doc.xml", scheme, mode)
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, mode, err)
			}
			if !bytes.Equal(got, content) {
				t.Fatalf("%v/%v: content mismatch", scheme, mode)
			}
			if stats.RawBytes != len(content) {
				t.Errorf("%v/%v: raw bytes %d", scheme, mode, stats.RawBytes)
			}
			if mode == ModeRaw && stats.BlocksCompressed != 0 {
				t.Errorf("raw mode compressed %d blocks", stats.BlocksCompressed)
			}
			if mode != ModeRaw && stats.Factor < 5 {
				t.Errorf("%v/%v: factor %.2f on highly compressible xml", scheme, mode, stats.Factor)
			}
		}
	}
}

func TestSelectiveSkipsIncompressible(t *testing.T) {
	_, cli := startServer(t)
	got, stats, err := cli.Fetch("noise.dat", codec.Zlib, ModeSelective)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksCompressed != 0 {
		t.Errorf("selective compressed %d/%d random blocks", stats.BlocksCompressed, stats.BlocksTotal)
	}
	if len(got) != 300_000 {
		t.Errorf("got %d bytes", len(got))
	}
	// On-demand blind compression, by contrast, compresses everything.
	_, blind, err := cli.Fetch("noise.dat", codec.Zlib, ModeOnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if blind.BlocksCompressed != blind.BlocksTotal {
		t.Errorf("on-demand left %d blocks raw", blind.BlocksTotal-blind.BlocksCompressed)
	}
	if blind.WireBytes < stats.WireBytes {
		t.Errorf("blind wire %d should exceed selective %d on random data", blind.WireBytes, stats.WireBytes)
	}
}

func TestSelectiveMixedFile(t *testing.T) {
	_, cli := startServer(t)
	got, stats, err := cli.Fetch("mixed.tar", codec.Zlib, ModeSelective)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, workload.MixedFile(640_000, 4)) {
		t.Fatal("content mismatch")
	}
	if stats.BlocksCompressed == 0 || stats.BlocksCompressed == stats.BlocksTotal {
		t.Errorf("mixed file: %d/%d blocks compressed", stats.BlocksCompressed, stats.BlocksTotal)
	}
}

func TestTinyFileStaysRaw(t *testing.T) {
	_, cli := startServer(t)
	got, stats, err := cli.Fetch("tiny.txt", codec.Gzip, ModeSelective)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "below the 3900-byte threshold" {
		t.Fatalf("got %q", got)
	}
	if stats.BlocksCompressed != 0 {
		t.Error("sub-threshold file compressed")
	}
}

func TestNotFound(t *testing.T) {
	_, cli := startServer(t)
	if _, _, err := cli.Fetch("missing", codec.Gzip, ModeRaw); err == nil {
		t.Fatal("expected not-found error")
	}
}

func TestConcurrentFetches(t *testing.T) {
	_, cli := startServer(t)
	want := workload.Generate(workload.ClassBinary, 400_000, 2)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mode := []Mode{ModeRaw, ModeOnDemand, ModeSelective, ModePrecompressed}[i%4]
			got, _, err := cli.Fetch("app.bin", codec.Gzip, mode)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, want) {
				errs[i] = ErrProtocol
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("fetch %d: %v", i, err)
		}
	}
}

func TestPrecompressUnknownFile(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Precompress("nope", codec.Gzip); err == nil {
		t.Fatal("expected error")
	}
}

func TestRegisterCopiesContent(t *testing.T) {
	srv := NewServer(nil)
	data := []byte("mutable")
	srv.Register("f", data)
	data[0] = 'X'
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, _, err := NewClient(addr).Fetch("f", codec.Gzip, ModeRaw)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "mutable" {
		t.Errorf("server content aliased caller slice: %q", got)
	}
}
