package proxy

import (
	"bytes"
	"testing"
)

// FuzzReadRequest throws arbitrary bytes at the PXY1 request parser:
// malformed magic, truncated frames and oversized length fields must
// produce errors, never a panic or an over-allocation; frames the parser
// accepts must survive a write/read round trip unchanged.
func FuzzReadRequest(f *testing.F) {
	// Well-formed GET and LIST requests.
	f.Add([]byte("PXY1\x02\x00\x07doc.xml\x01\x03"))
	f.Add([]byte("PXY1\x01\x00\x00\x00\x00"))
	// Bad magic, truncation at every interesting boundary, oversized name.
	f.Add([]byte("QXY1\x02\x00\x07doc.xml\x01\x03"))
	f.Add([]byte("PXY1"))
	f.Add([]byte("PXY1\x02"))
	f.Add([]byte("PXY1\x02\x00\x07doc"))
	f.Add([]byte("PXY1\x02\xff\xff"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(req.Name) > maxNameLen {
			t.Fatalf("accepted name of %d bytes, cap is %d", len(req.Name), maxNameLen)
		}
		var buf bytes.Buffer
		if err := writeRequest(&buf, req); err != nil {
			t.Fatalf("re-encode of accepted request failed: %v", err)
		}
		back, err := readRequest(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted request failed: %v", err)
		}
		if back != req {
			t.Fatalf("round trip changed request: %+v != %+v", back, req)
		}
	})
}

// FuzzReadBlockFrame does the same for the block framing: oversized
// payload lengths must be refused before allocation, unknown flags must
// error, and accepted frames must round-trip.
func FuzzReadBlockFrame(f *testing.F) {
	// Raw block, compressed block, end frame.
	f.Add([]byte("\x00\x00\x00\x00\x05\x00\x00\x00\x05hello"))
	f.Add([]byte("\x01\x00\x00\x01\x00\x00\x00\x00\x04zzzz"))
	f.Add([]byte("\xff\xde\xad\xbe\xef\x00\x00\x00\x00"))
	// Oversized payload length, bad flag, truncated header and payload.
	f.Add([]byte("\x01\x00\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte("\x07\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("\x00\x00\x00"))
	f.Add([]byte("\x00\x00\x00\x00\x05\x00\x00\x00\x05he"))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, crc, ok, err := readBlock(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !ok {
			// End frame: re-encode and confirm the CRC survives.
			var buf bytes.Buffer
			if err := writeEnd(&buf, crc); err != nil {
				t.Fatal(err)
			}
			_, crc2, ok2, err := readBlock(&buf)
			if err != nil || ok2 || crc2 != crc {
				t.Fatalf("end frame round trip: crc %d->%d ok=%v err=%v", crc, crc2, ok2, err)
			}
			return
		}
		if len(b.Payload) > maxBlockWire {
			t.Fatalf("accepted payload of %d bytes, cap is %d", len(b.Payload), maxBlockWire)
		}
		var buf bytes.Buffer
		if err := writeBlock(&buf, b); err != nil {
			t.Fatal(err)
		}
		back, _, ok2, err := readBlock(&buf)
		if err != nil || !ok2 {
			t.Fatalf("re-decode of accepted block failed: ok=%v err=%v", ok2, err)
		}
		if back.Flag != b.Flag || back.RawLen != b.RawLen || !bytes.Equal(back.Payload, b.Payload) {
			t.Fatal("round trip changed block")
		}
	})
}
