package proxy

import (
	"bytes"
	"testing"
)

// FuzzReadRequest throws arbitrary bytes at the PXY3 request parser:
// malformed magic, truncated frames and oversized length fields must
// produce errors, never a panic or an over-allocation; frames the parser
// accepts must survive a write/read round trip unchanged.
func FuzzReadRequest(f *testing.F) {
	// Well-formed GET (with a resume offset and a request ID) and LIST
	// requests, built by the writer so their trailing CRCs are valid.
	var get, getEx, list bytes.Buffer
	_ = writeRequest(&get, request{Op: opGet, Name: "doc.xml", Scheme: 1, Mode: ModeSelective, Offset: 128_000, ReqID: 0xFEED})
	_ = writeRequest(&getEx, request{Op: opGetEx, Name: "doc.xml", Scheme: 1, Mode: ModeSelective, Offset: 128_000, ReqID: 0xFEED, Class: 3, BudgetMJ: 2500})
	_ = writeRequest(&list, request{Op: opList})
	f.Add(get.Bytes())
	f.Add(getEx.Bytes())
	f.Add(list.Bytes())
	// An extended GET truncated at the old tail length: the CRC must
	// refuse it rather than the parser misreading the attribute bytes.
	f.Add(getEx.Bytes()[:getEx.Len()-5])
	// Bad magic (including the previous protocol generation), bad CRC,
	// truncation at every interesting boundary, oversized name.
	f.Add([]byte("QXY3\x02\x00\x07doc.xml\x01\x03"))
	f.Add(append(get.Bytes()[:get.Len()-1], 0xAA)) // last CRC byte flipped
	f.Add([]byte("PXY2\x02\x00\x07doc"))
	f.Add([]byte("PXY3"))
	f.Add([]byte("PXY3\x02"))
	f.Add([]byte("PXY3\x02\x00\x07doc"))
	f.Add([]byte("PXY3\x02\xff\xff"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(req.Name) > maxNameLen {
			t.Fatalf("accepted name of %d bytes, cap is %d", len(req.Name), maxNameLen)
		}
		var buf bytes.Buffer
		if err := writeRequest(&buf, req); err != nil {
			t.Fatalf("re-encode of accepted request failed: %v", err)
		}
		back, err := readRequest(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted request failed: %v", err)
		}
		if back != req {
			t.Fatalf("round trip changed request: %+v != %+v", back, req)
		}
	})
}

// FuzzReadBlockFrame does the same for the block framing: oversized
// payload or raw lengths must be refused before allocation, unknown flags
// and payload-CRC mismatches must error, and accepted frames must
// round-trip.
func FuzzReadBlockFrame(f *testing.F) {
	// Raw block, compressed block, end frame, built by the writers so the
	// payload CRCs are valid.
	var raw, comp, end bytes.Buffer
	_ = writeBlock(&raw, wireBlock{Flag: blockFlagRaw, RawLen: 5, Payload: []byte("hello")})
	_ = writeBlock(&comp, wireBlock{Flag: blockFlagCompressed, RawLen: 256, Payload: []byte("zzzz")})
	_ = writeEnd(&end, 0xDEADBEEF)
	f.Add(raw.Bytes())
	f.Add(comp.Bytes())
	f.Add(end.Bytes())
	// Oversized payload length, oversized raw length, bad flag, corrupted
	// payload (CRC mismatch), truncated header and payload.
	f.Add([]byte("\x01\x00\x00\x00\x00\xff\xff\xff\xff\x00\x00\x00\x00"))
	f.Add([]byte("\x01\xff\xff\xff\xff\x00\x00\x00\x04\x00\x00\x00\x00zzzz"))
	f.Add([]byte("\x07\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(append(raw.Bytes()[:raw.Len()-1], 'X'))
	f.Add([]byte("\x00\x00\x00"))
	f.Add(raw.Bytes()[:raw.Len()-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		b, crc, ok, err := readBlock(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !ok {
			// End frame: re-encode and confirm the CRC survives.
			var buf bytes.Buffer
			if err := writeEnd(&buf, crc); err != nil {
				t.Fatal(err)
			}
			_, crc2, ok2, err := readBlock(&buf)
			if err != nil || ok2 || crc2 != crc {
				t.Fatalf("end frame round trip: crc %d->%d ok=%v err=%v", crc, crc2, ok2, err)
			}
			return
		}
		if len(b.Payload) > maxBlockWire {
			t.Fatalf("accepted payload of %d bytes, cap is %d", len(b.Payload), maxBlockWire)
		}
		var buf bytes.Buffer
		if err := writeBlock(&buf, b); err != nil {
			t.Fatal(err)
		}
		back, _, ok2, err := readBlock(&buf)
		if err != nil || !ok2 {
			t.Fatalf("re-decode of accepted block failed: ok=%v err=%v", ok2, err)
		}
		if back.Flag != b.Flag || back.RawLen != b.RawLen || !bytes.Equal(back.Payload, b.Payload) {
			t.Fatal("round trip changed block")
		}
	})
}
