// Package faultconn is a fault-injection transport: net.Conn and
// net.Listener wrappers that damage traffic according to a seeded,
// deterministic plan — injected delays, fragmented writes, mid-stream
// resets, truncation, and payload bit-flips. It models the lossy 802.11b
// link of the paper's testbed so the proxy protocol, the retrying client,
// and the whole stress suite can be exercised over a hostile wire instead
// of a loopback that never fails.
//
// Determinism: every wrapped connection draws its fault schedule from a
// PRNG seeded with Plan.Seed combined with the connection's id, so a given
// (plan, connection-order) pair replays the same faults run after run.
package faultconn

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is the error surfaced locally when the plan kills a
// connection mid-operation; the peer observes a reset or an EOF.
var ErrInjectedReset = errors.New("faultconn: injected connection reset")

// Plan describes a deterministic fault schedule. All probabilities are in
// [0, 1]. Reset, Truncate, Delay and Fragment fire per I/O call; BitFlip
// fires per byte moved.
type Plan struct {
	// Seed picks the fault schedule; the same seed replays the same
	// faults for the same connection order.
	Seed int64

	// DelayProb injects a pause of up to MaxDelay before an I/O call.
	DelayProb float64
	// MaxDelay bounds injected delays (default 2ms when DelayProb > 0).
	MaxDelay time.Duration

	// FragmentProb splits a write into two underlying writes, exercising
	// frame reassembly across packet boundaries.
	FragmentProb float64

	// ResetProb kills the connection before the I/O call: the local side
	// gets ErrInjectedReset, the peer a RST/EOF.
	ResetProb float64

	// TruncateProb writes only a prefix of the buffer, then kills the
	// connection — the peer sees a cleanly delivered partial stream.
	TruncateProb float64

	// BitFlipProb flips one random bit of an I/O call's buffer: applied to
	// bytes returned by Read and, without mutating the caller's buffer, to
	// bytes passed to Write. Per-call (not per-byte), so a "1% fault rate"
	// corrupts about one frame in a hundred — the regime where the frame
	// CRCs and resume machinery earn their keep.
	BitFlipProb float64
}

// enabled reports whether the plan can inject anything at all.
func (p Plan) enabled() bool {
	return p.DelayProb > 0 || p.FragmentProb > 0 || p.ResetProb > 0 ||
		p.TruncateProb > 0 || p.BitFlipProb > 0
}

// Wrap returns conn with the plan's faults applied. id selects the
// per-connection deterministic fault stream; callers accepting many
// connections should hand out sequential ids.
func (p Plan) Wrap(conn net.Conn, id int64) net.Conn {
	if !p.enabled() {
		return conn
	}
	if p.DelayProb > 0 && p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Millisecond
	}
	// SplitMix64-style spread so nearby ids get uncorrelated streams.
	seed := p.Seed + id*0x1E3779B97F4A7C15
	seed ^= seed >> 30
	return &faultConn{Conn: conn, plan: p, rng: rand.New(rand.NewSource(seed))}
}

// Wrapper returns a hook suitable for proxy.Config.WrapConn: each call
// wraps the connection with the next sequential id.
func (p Plan) Wrapper() func(net.Conn) net.Conn {
	var n atomic.Int64
	return func(conn net.Conn) net.Conn { return p.Wrap(conn, n.Add(1)) }
}

// Listener wraps ln so every accepted connection carries the plan's
// faults, with sequential deterministic ids.
func (p Plan) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, plan: p}
}

type faultListener struct {
	net.Listener
	plan Plan
	n    atomic.Int64
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.plan.Wrap(conn, l.n.Add(1)), nil
}

// faultConn applies a Plan to one connection. The PRNG is shared by the
// read and write paths, so it is guarded by a mutex; fault decisions are
// drawn under the lock, the I/O itself happens outside it.
type faultConn struct {
	net.Conn
	plan   Plan
	mu     sync.Mutex
	rng    *rand.Rand
	downed atomic.Bool
}

// decision is one I/O call's predrawn fault outcome.
type decision struct {
	delay    time.Duration
	reset    bool
	truncate int // bytes to deliver before killing the conn; -1 = off
	fragment int // split point for writes; -1 = off
	flip     int // bit index to flip in the buffer; -1 = off
}

// draw rolls the plan's dice for an operation on n bytes.
func (c *faultConn) draw(n int, writing bool) decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := decision{truncate: -1, fragment: -1, flip: -1}
	p := c.plan
	if p.DelayProb > 0 && c.rng.Float64() < p.DelayProb {
		d.delay = time.Duration(c.rng.Int63n(int64(p.MaxDelay) + 1))
	}
	if p.ResetProb > 0 && c.rng.Float64() < p.ResetProb {
		d.reset = true
		return d
	}
	if writing {
		if p.TruncateProb > 0 && c.rng.Float64() < p.TruncateProb {
			if n > 0 {
				d.truncate = c.rng.Intn(n)
			} else {
				d.truncate = 0
			}
			return d
		}
		if p.FragmentProb > 0 && n > 1 && c.rng.Float64() < p.FragmentProb {
			d.fragment = 1 + c.rng.Intn(n-1)
		}
	}
	if p.BitFlipProb > 0 && n > 0 && c.rng.Float64() < p.BitFlipProb {
		d.flip = c.rng.Intn(n * 8)
	}
	return d
}

// kill tears the connection down so the peer observes a hard failure. For
// TCP the linger is zeroed first, turning the close into a RST instead of
// an orderly FIN — that is what a vanished handheld looks like.
func (c *faultConn) kill() {
	if c.downed.Swap(true) {
		return
	}
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
}

func (c *faultConn) Read(b []byte) (int, error) {
	if c.downed.Load() {
		return 0, ErrInjectedReset
	}
	d := c.draw(len(b), false)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.reset {
		c.kill()
		return 0, ErrInjectedReset
	}
	n, err := c.Conn.Read(b)
	if n > 0 && d.flip >= 0 && d.flip/8 < n {
		// Only corrupt a byte that actually arrived.
		b[d.flip/8] ^= 1 << (d.flip % 8)
	}
	return n, err
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.downed.Load() {
		return 0, ErrInjectedReset
	}
	d := c.draw(len(b), true)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.reset {
		c.kill()
		return 0, ErrInjectedReset
	}
	if d.flip >= 0 {
		// Never mutate the caller's buffer: corrupt a copy.
		dup := append([]byte(nil), b...)
		dup[d.flip/8] ^= 1 << (d.flip % 8)
		b = dup
	}
	if d.truncate >= 0 {
		n := 0
		if d.truncate > 0 {
			n, _ = c.Conn.Write(b[:d.truncate])
		}
		c.kill()
		return n, ErrInjectedReset
	}
	if d.fragment > 0 {
		n, err := c.Conn.Write(b[:d.fragment])
		if err != nil {
			return n, err
		}
		m, err := c.Conn.Write(b[d.fragment:])
		return n + m, err
	}
	return c.Conn.Write(b)
}

func (c *faultConn) Close() error {
	if c.downed.Swap(true) {
		return nil
	}
	return c.Conn.Close()
}
