package faultconn

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// memConn is a deterministic in-memory net.Conn: reads come from r,
// writes land in w, and writeCalls counts underlying Write invocations.
type memConn struct {
	r          *bytes.Reader
	w          bytes.Buffer
	closed     bool
	writeCalls int
}

func (c *memConn) Read(b []byte) (int, error)  { return c.r.Read(b) }
func (c *memConn) Write(b []byte) (int, error) { c.writeCalls++; return c.w.Write(b) }
func (c *memConn) Close() error                { c.closed = true; return nil }

func (c *memConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *memConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

// TestWriteBitFlipDeterministic: the same (seed, id) must corrupt the same
// bit run after run, the corruption must be exactly one bit, and the
// caller's buffer must stay untouched.
func TestWriteBitFlipDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, BitFlipProb: 1}
	data := payload(1024)
	orig := append([]byte(nil), data...)

	run := func() []byte {
		mc := &memConn{r: bytes.NewReader(nil)}
		fc := plan.Wrap(mc, 3)
		if n, err := fc.Write(data); err != nil || n != len(data) {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
		return mc.w.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and id produced different corruption")
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("caller's buffer was mutated")
	}
	diff := 0
	for i := range a {
		for bit := 0; bit < 8; bit++ {
			if (a[i]^orig[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diff)
	}
}

// TestDifferentConnIDsDiverge: distinct connection ids under one seed must
// draw distinct fault streams.
func TestDifferentConnIDsDiverge(t *testing.T) {
	plan := Plan{Seed: 7, BitFlipProb: 1}
	data := payload(4096)
	out := func(id int64) []byte {
		mc := &memConn{r: bytes.NewReader(nil)}
		fc := plan.Wrap(mc, id)
		_, _ = fc.Write(data)
		return mc.w.Bytes()
	}
	if bytes.Equal(out(1), out(2)) {
		t.Fatal("conn ids 1 and 2 flipped the same bit; fault streams are correlated")
	}
}

// TestReadBitFlip: the read path corrupts arriving bytes the same way.
func TestReadBitFlip(t *testing.T) {
	data := payload(512)
	mc := &memConn{r: bytes.NewReader(data)}
	fc := Plan{Seed: 11, BitFlipProb: 1}.Wrap(mc, 1)
	got := make([]byte, len(data))
	n, err := fc.Read(got)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got[:n], data[:n]) {
		t.Fatal("read-path bit flip never fired at probability 1")
	}
}

// TestFragmentDeliversEverything: fragmentation must split the underlying
// writes without losing or corrupting a byte.
func TestFragmentDeliversEverything(t *testing.T) {
	data := payload(2048)
	mc := &memConn{r: bytes.NewReader(nil)}
	fc := Plan{Seed: 5, FragmentProb: 1}.Wrap(mc, 1)
	n, err := fc.Write(data)
	if err != nil || n != len(data) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(mc.w.Bytes(), data) {
		t.Fatal("fragmented write corrupted data")
	}
	if mc.writeCalls != 2 {
		t.Fatalf("underlying writes = %d, want 2", mc.writeCalls)
	}
}

// TestResetKillsConnection: a reset surfaces ErrInjectedReset, closes the
// underlying conn, and poisons later operations.
func TestResetKillsConnection(t *testing.T) {
	mc := &memConn{r: bytes.NewReader(payload(10))}
	fc := Plan{Seed: 1, ResetProb: 1}.Wrap(mc, 1)
	if _, err := fc.Write(payload(10)); err != ErrInjectedReset {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if !mc.closed {
		t.Fatal("underlying conn not closed")
	}
	if _, err := fc.Read(make([]byte, 4)); err != ErrInjectedReset {
		t.Fatalf("post-reset read err = %v", err)
	}
}

// TestTruncateWritesPrefix: truncation delivers a strict prefix and then
// kills the connection with an error, never a silent short write.
func TestTruncateWritesPrefix(t *testing.T) {
	data := payload(1000)
	mc := &memConn{r: bytes.NewReader(nil)}
	fc := Plan{Seed: 3, TruncateProb: 1}.Wrap(mc, 1)
	n, err := fc.Write(data)
	if err == nil {
		t.Fatal("truncation must report an error")
	}
	if n >= len(data) {
		t.Fatalf("truncation delivered %d of %d bytes", n, len(data))
	}
	if !bytes.Equal(mc.w.Bytes(), data[:n]) {
		t.Fatal("delivered bytes are not a clean prefix")
	}
	if !mc.closed {
		t.Fatal("underlying conn not closed")
	}
}

// TestZeroPlanIsTransparent: an empty plan must return the conn unwrapped.
func TestZeroPlanIsTransparent(t *testing.T) {
	mc := &memConn{r: bytes.NewReader(nil)}
	if got := (Plan{Seed: 9}).Wrap(mc, 1); got != net.Conn(mc) {
		t.Fatal("zero plan wrapped the conn")
	}
}
