package proxy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/selective"
	"repro/internal/sim"
)

// Client defaults.
const (
	// defaultMaxFetchBytes caps a fetch's total raw size (1 GiB): a server
	// header claiming more is rejected before any allocation.
	defaultMaxFetchBytes = 1 << 30
	// maxPrealloc clamps the output buffer's up-front capacity. The claimed
	// RawSize only seeds the allocation up to this bound; beyond it the
	// buffer grows with the bytes that actually arrive, so a lying header
	// cannot cost more memory than the data the server really sends.
	maxPrealloc = 1 << 20

	defaultRetryBase = 50 * time.Millisecond
	defaultRetryMax  = 2 * time.Second
)

// Client is the handheld side: it fetches files from the proxy and
// decompresses arriving blocks in a pipeline concurrent with reception
// (the user-level interleaving of Section 4.1). Every length field that
// arrives off the wire is bounded before it sizes an allocation, and
// transient failures — ErrBusy shedding, dial errors, resets, corrupted
// frames on a lossy link — are retried with exponential backoff, resuming
// an interrupted fetch from the last CRC-verified block.
type Client struct {
	addr string
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// Timeout, when positive, bounds each attempt of a List or Fetch call
	// via a connection deadline, so a stalled proxy cannot wedge the
	// handheld.
	Timeout time.Duration
	// MaxFetchBytes caps the total raw size of one fetch; a CRC-clean
	// header claiming more fails permanently. 0 selects 1 GiB.
	MaxFetchBytes int64
	// MaxRetries is how many additional attempts a List or Fetch makes
	// after a transient failure. 0 disables retries (every failure is
	// final), matching the pre-retry behavior.
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff (default 50ms); the
	// delay doubles per attempt up to RetryMaxDelay (default 2s), with
	// jitter in [d/2, d) to decorrelate retry storms.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// Tracer, when set, receives one span per Fetch: the phase timeline
	// (dial, header, recv, decompress, verify, backoff, resume) across
	// every attempt, charged with modeled joules on success so the trace
	// shows radio vs CPU energy the way the paper's model splits it.
	Tracer *obs.Tracer
	// EnergyParams is the model used to charge finished fetch spans; nil
	// selects the paper's 11 Mb/s parameters.
	EnergyParams *energy.Params
	// Metrics, when set, records the handheld-side instruments: backoff
	// actually slept, resumed bytes, attempts per fetch, and the
	// permanent-vs-transient error classification — the numbers that make
	// a fault-rate run diagnosable without a debugger.
	Metrics *obs.Registry
	// Logger receives structured per-attempt logs tagged with the fetch's
	// request ID (the same ID the server logs). Nil discards.
	Logger *slog.Logger
	// Events, when set, receives one wide event per finished Fetch (both
	// outcomes) carrying the transfer's bytes, phases, attempts and
	// modeled per-class joules. Nil costs the fetch hot path nothing —
	// not even an allocation.
	Events *export.Sink
	// DeadlineClass, when nonzero, declares this handheld's latency class
	// to the server (decider.ClassFromByte vocabulary: 1 relaxed, 2
	// standard, 3 strict). EnergyBudgetJ, when positive, declares its
	// remaining energy budget in joules (advisory; the server counts
	// over-budget decisions, it never degrades the transfer). Either being
	// set upgrades requests to the extended GET op; both zero keeps the
	// wire frames byte-identical to a pre-extension client.
	DeadlineClass uint8
	EnergyBudgetJ float64
	// DeviceClass tags emitted events with the handheld's device class
	// (e.g. export.DeviceIPAQ11), the calibrator's grouping key. Empty is
	// read downstream as the paper's primary 11 Mb/s configuration.
	DeviceClass string
	// LinkRateBps tags emitted events with the modeled link rate in bytes
	// per second, purely informational.
	LinkRateBps float64

	// Clock supplies the time source for connection deadlines, retry
	// backoff sleeps and span phase timestamps; nil selects the host
	// clock. The deterministic testbed (internal/simnet) injects its
	// virtual clock here, so a retrying fetch's backoff advances
	// simulated time instead of stalling the test for real seconds.
	Clock sim.WallClock
	// Dial, when set, replaces TCP dialing entirely (DialTimeout is then
	// unused; Timeout still applies as a connection deadline). The
	// testbed injects a virtual-network dialer — optionally wrapped in a
	// faultconn plan — through this hook.
	Dial func() (net.Conn, error)
	// Rand, when set, drives the retry backoff jitter and request-ID
	// minting, making one client's wire behavior reproducible from a
	// seed. Nil uses the global math/rand source. A non-nil Rand must not
	// be shared with other goroutines.
	Rand *rand.Rand

	metricsOnce sync.Once
	cm          clientMetrics
}

// clock resolves the configured or default time source.
func (c *Client) clock() sim.WallClock {
	if c.Clock != nil {
		return c.Clock
	}
	return sim.SystemClock{}
}

// randInt63n draws from the injected source, or the global one.
func (c *Client) randInt63n(n int64) int64 {
	if c.Rand != nil {
		return c.Rand.Int63n(n)
	}
	return rand.Int63n(n)
}

// randUint64 draws from the injected source, or the global one.
func (c *Client) randUint64() uint64 {
	if c.Rand != nil {
		return c.Rand.Uint64()
	}
	return rand.Uint64()
}

// clientMetrics are the handheld-side instruments, resolved lazily from
// Client.Metrics. All instruments are nil (and absorb everything) when no
// registry is configured.
type clientMetrics struct {
	backoffSeconds  *obs.Histogram
	resumedBytes    *obs.Histogram
	attempts        *obs.Histogram
	decompressRate  *obs.Histogram
	errorsTransient *obs.Counter
	errorsPermanent *obs.Counter
}

// metrics resolves the instrument set on first use.
func (c *Client) metrics() *clientMetrics {
	c.metricsOnce.Do(func() {
		reg := c.Metrics // nil registry hands out nil instruments
		c.cm = clientMetrics{
			backoffSeconds: reg.Histogram("client_backoff_sleep_seconds",
				"Retry backoff actually slept, one sample per sleep.",
				[]float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2, 5}),
			resumedBytes: reg.Histogram("client_resumed_bytes",
				"Raw bytes a retry attempt did not re-transfer, one sample per resumed attempt.",
				[]float64{1 << 10, 16 << 10, 128 << 10, 1 << 20, 16 << 20, 256 << 20}),
			attempts: reg.Histogram("client_fetch_attempts",
				"Connections one Fetch call used (1 = no retries).",
				[]float64{1, 2, 3, 5, 10, 20, 40}),
			decompressRate: reg.Histogram("client_decompress_bytes_per_second",
				"Raw bytes produced per second of decompressor busy time, one sample per attempt that decompressed blocks.",
				[]float64{1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30}),
			errorsTransient: reg.Counter("client_errors_transient_total",
				"Attempt failures classified as link damage (retried)."),
			errorsPermanent: reg.Counter("client_errors_permanent_total",
				"Attempt failures classified as the server's honest answer (not retried)."),
		}
	})
	return &c.cm
}

// logger returns the configured logger or a discard logger.
func (c *Client) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return obs.NopLogger()
}

// NewClient returns a client for the proxy at addr.
func NewClient(addr string) *Client {
	return &Client{addr: addr, DialTimeout: 10 * time.Second}
}

// permanentError marks a failure retrying cannot fix: the frame that
// carried it was CRC-verified, so it is the server's honest answer rather
// than link damage.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return &permanentError{err: err} }

// ErrorClass folds a client-visible error into a stable class token
// (busy/notfound/protocol/err, "" for nil) — the vocabulary canonical
// traces and wide events use, so exported streams never carry raw error
// strings that vary across Go versions.
func ErrorClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBusy):
		return "busy"
	case errors.Is(err, ErrNotFound):
		return "notfound"
	case errors.Is(err, ErrProtocol):
		return "protocol"
	default:
		return "err"
	}
}

// isTransient reports whether retrying can plausibly fix err. Anything not
// explicitly marked permanent is considered link damage: on a lossy WLAN a
// truncated frame, a reset, or a CRC mismatch is indistinguishable from
// loss, and the paper's testbed treats retransmission as the norm.
func isTransient(err error) bool {
	var pe *permanentError
	return !errors.As(err, &pe)
}

func (c *Client) maxFetch() int64 {
	if c.MaxFetchBytes > 0 {
		return c.MaxFetchBytes
	}
	return defaultMaxFetchBytes
}

// backoffDelay is the sleep before retry number attempt (0-based):
// exponential with full jitter, capped at RetryMaxDelay.
func (c *Client) backoffDelay(attempt int) time.Duration {
	base := c.RetryBaseDelay
	if base <= 0 {
		base = defaultRetryBase
	}
	maxd := c.RetryMaxDelay
	if maxd <= 0 {
		maxd = defaultRetryMax
	}
	d := base
	for i := 0; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(c.randInt63n(int64(half)+1))
	}
	return d
}

// dial connects and applies the per-call deadline.
func (c *Client) dial() (net.Conn, error) {
	var conn net.Conn
	var err error
	if c.Dial != nil {
		conn, err = c.Dial()
	} else {
		conn, err = net.DialTimeout("tcp", c.addr, c.DialTimeout)
	}
	if err != nil {
		return nil, err
	}
	if c.Timeout > 0 {
		if err := conn.SetDeadline(c.clock().Now().Add(c.Timeout)); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return conn, nil
}

// FetchStats reports what crossed the wire.
type FetchStats struct {
	RawBytes         int
	WireBytes        int // frames actually received (headers, blocks, end frames), summed across attempts
	BlocksTotal      int
	BlocksCompressed int
	Factor           float64
	// Attempts is how many connections the fetch used (1 = no retries).
	Attempts int
	// ResumedBytes counts raw bytes retry attempts did NOT re-transfer
	// because the server granted a resume offset.
	ResumedBytes int
	// BackoffSlept is the total wall time spent sleeping between attempts.
	BackoffSlept time.Duration
	// DecompressWall is the wall time the decompression goroutine spent
	// busy (host-machine time; energy accounting uses the simulator, not
	// this number).
	DecompressWall time.Duration
}

// List fetches the server's file catalogue, retrying transient failures up
// to MaxRetries times.
func (c *Client) List() ([]string, error) {
	var names []string
	err := c.withRetries(func() error {
		var err error
		names, err = c.listOnce()
		return err
	})
	return names, err
}

// withRetries runs op, sleeping and re-running on transient failures.
func (c *Client) withRetries(op func() error) error {
	cm := c.metrics()
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		transient := isTransient(err)
		if transient {
			cm.errorsTransient.Add(1)
		} else {
			cm.errorsPermanent.Add(1)
		}
		if attempt >= c.MaxRetries || !transient {
			return err
		}
		clk := c.clock()
		start := clk.Now()
		clk.Sleep(c.backoffDelay(attempt))
		cm.backoffSeconds.Observe(clk.Now().Sub(start).Seconds())
	}
}

func (c *Client) listOnce() ([]string, error) {
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := writeRequest(conn, request{Op: opList}); err != nil {
		return nil, err
	}
	br := getConnReader(conn)
	defer putConnReader(br)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	switch hdr[0] {
	case statusOK:
	case statusBusy:
		return nil, ErrBusy
	default:
		return nil, fmt.Errorf("%w: status %d", ErrProtocol, hdr[0])
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: %d names", ErrProtocol, n)
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var n16 [2]byte
		if _, err := io.ReadFull(br, n16[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		nameLen := int(binary.BigEndian.Uint16(n16[:]))
		if nameLen > maxNameLen {
			return nil, fmt.Errorf("%w: name length %d", ErrProtocol, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		names = append(names, string(name))
	}
	return names, nil
}

// budgetMilliJoules folds a joule budget into the wire's uint32
// millijoule field, saturating instead of overflowing (a budget past ~4.3
// megajoules is indistinguishable from unlimited anyway).
func budgetMilliJoules(j float64) uint32 {
	if !(j > 0) { // also rejects NaN
		return 0
	}
	mj := j * 1000
	if mj >= float64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(mj)
}

// decoded is one block's decompression outcome, in order.
type decoded struct {
	data []byte
	err  error
}

// Fetch downloads name with the given scheme and mode, returning the
// verified content and transfer statistics. Reception and decompression
// run in separate goroutines: block i decompresses while block i+1 is on
// the wire. Transient failures are retried up to MaxRetries times; each
// retry resumes from the last verified block (every block payload is
// CRC-checked on receipt, so the prefix accumulated before a failure is
// trustworthy).
func (c *Client) Fetch(name string, scheme codec.Scheme, mode Mode) ([]byte, FetchStats, error) {
	var stats FetchStats
	var verified []byte
	cm := c.metrics()
	// The request ID is minted once per Fetch and shared by every retry
	// attempt, so the server's logs and /tracez spans correlate all the
	// connections one logical fetch opened.
	reqID := c.randUint64()
	span := c.Tracer.Start("fetch")
	span.SetAttr("req_id", obs.ReqID(reqID))
	span.SetAttr("name", name)
	span.SetAttr("scheme", scheme.String())
	span.SetAttr("mode", mode.String())
	log := c.logger().With("req_id", obs.ReqID(reqID), "name", name)
	vStart := c.clock().Now()
	for attempt := 0; ; attempt++ {
		stats.Attempts++
		out, reset, err := c.fetchOnce(name, scheme, mode, reqID, verified, &stats, span)
		if err == nil {
			stats.RawBytes = len(out)
			stats.Factor = codec.Factor(stats.RawBytes, stats.WireBytes)
			cm.attempts.Observe(float64(stats.Attempts))
			c.chargeSpan(span, stats)
			span.Finish()
			c.emitFetchEvent(reqID, name, scheme, mode, span, stats, c.clock().Now().Sub(vStart), nil)
			return out, stats, nil
		}
		transient := isTransient(err)
		if transient {
			cm.errorsTransient.Add(1)
		} else {
			cm.errorsPermanent.Add(1)
		}
		if reset {
			// Content-level CRC failure with frame-verified blocks: the
			// file changed between attempts. The resume prefix is useless.
			verified = nil
		} else {
			verified = out
		}
		if attempt >= c.MaxRetries || !transient {
			cm.attempts.Observe(float64(stats.Attempts))
			span.Fail(err)
			span.Finish()
			c.emitFetchEvent(reqID, name, scheme, mode, span, stats, c.clock().Now().Sub(vStart), err)
			log.Warn("fetch failed", "attempts", stats.Attempts, "err", err)
			return nil, stats, err
		}
		log.Debug("retrying after transient failure", "attempt", stats.Attempts, "err", err)
		clk := c.clock()
		bstart := clk.Now()
		clk.Sleep(c.backoffDelay(attempt))
		slept := clk.Now().Sub(bstart)
		stats.BackoffSlept += slept
		cm.backoffSeconds.Observe(slept.Seconds())
		span.PhaseDetail("backoff", "", fmt.Sprintf("after attempt %d", stats.Attempts), bstart, slept, 0)
	}
}

// chargeSpan attributes the finished transfer's modeled energy to the
// span's phases: Eq. 3's interleaved model when compressed blocks crossed
// the wire, Eq. 1's plain download otherwise (the same rule hhfetch's
// energy report applies). Radio joules spread over the dial/header/recv
// phases byte-weighted, CPU joules over decompress/verify
// duration-weighted, and the idle residual lands in one accounting entry,
// so the span's TotalJoules equals the model's whole-transfer answer
// exactly (see energy.Breakdown).
func (c *Client) chargeSpan(span *obs.Span, stats FetchStats) {
	if span == nil {
		return
	}
	p := c.EnergyParams
	if p == nil {
		def := energy.Params11Mbps()
		p = &def
	}
	s := float64(stats.RawBytes) / 1e6
	sc := float64(stats.WireBytes) / 1e6
	var bd energy.Breakdown
	if stats.BlocksCompressed > 0 {
		bd = p.InterleavedBreakdown(s, sc)
	} else {
		bd = p.DownloadBreakdown(s)
	}
	span.DistributeJoules(obs.ClassRadio, bd.RadioJ)
	span.DistributeJoules(obs.ClassCPU, bd.CPUJ)
	span.AccountPhase("idle", obs.ClassIdle, bd.IdleJ)
}

// emitFetchEvent publishes one wide event for a finished fetch (either
// outcome) to the configured sink. The nil-sink guard comes first so the
// default path costs one branch and zero allocations; everything the
// event needs is only materialised past it. Joules are recomputed from
// the byte counts with the same Eq. 1 / Eq. 3 rule chargeSpan applies,
// so the event's per-class totals equal the model's answer exactly even
// when no tracer (and thus no charged span) is configured.
func (c *Client) emitFetchEvent(reqID uint64, name string, scheme codec.Scheme, mode Mode, span *obs.Span, stats FetchStats, dur time.Duration, err error) {
	if c.Events == nil {
		return
	}
	e := export.Event{
		Time:             time.Now().UTC().Format(time.RFC3339Nano),
		Span:             "fetch",
		ReqID:            obs.ReqID(reqID),
		Name:             name,
		Scheme:           scheme.String(),
		Mode:             mode.String(),
		Device:           c.DeviceClass,
		LinkBps:          c.LinkRateBps,
		Outcome:          "ok",
		RawBytes:         int64(stats.RawBytes),
		WireBytes:        int64(stats.WireBytes),
		Blocks:           stats.BlocksTotal,
		BlocksCompressed: stats.BlocksCompressed,
		Attempts:         stats.Attempts,
		ResumedBytes:     int64(stats.ResumedBytes),
		DurNS:            dur.Nanoseconds(),
		Phases:           export.FoldPhases(span.Data().Phases),
	}
	if err != nil {
		e.Outcome = ErrorClass(err)
	} else {
		p := c.EnergyParams
		if p == nil {
			def := energy.Params11Mbps()
			p = &def
		}
		s := float64(stats.RawBytes) / 1e6
		sc := float64(stats.WireBytes) / 1e6
		var bd energy.Breakdown
		if stats.BlocksCompressed > 0 {
			bd = p.InterleavedBreakdown(s, sc)
		} else {
			bd = p.DownloadBreakdown(s)
		}
		e.RadioJ, e.CPUJ, e.IdleJ = bd.RadioJ, bd.CPUJ, bd.IdleJ
	}
	c.Events.Record(e)
}

// fetchOnce runs a single connection's worth of a fetch. verified is the
// raw prefix already CRC-verified by earlier attempts; the returned slice
// extends (a server-granted prefix of) it with this attempt's verified
// blocks. reset reports that the caller must discard the resume state.
// Phases this attempt goes through are recorded on span (nil-safe), tagged
// with the attempt number so a multi-attempt trace reads as a timeline.
func (c *Client) fetchOnce(name string, scheme codec.Scheme, mode Mode, reqID uint64, verified []byte, stats *FetchStats, span *obs.Span) (out []byte, reset bool, err error) {
	attemptDetail := fmt.Sprintf("attempt %d", stats.Attempts)
	out = verified
	// Radio-facing phases (dial, header, recv) are stamped from the
	// injected clock, so under the virtual testbed a span's timeline shows
	// the modeled link time, not host-scheduler noise. CPU busy phases
	// (decompress) keep host-time durations — that is what they measure.
	clk := c.clock()
	dialStart := clk.Now()
	conn, err := c.dial()
	span.PhaseDetail("dial", obs.ClassRadio, attemptDetail, dialStart, clk.Now().Sub(dialStart), 0)
	if err != nil {
		return out, false, err
	}
	defer conn.Close()

	hdrStart := clk.Now()
	req := request{Op: opGet, Name: name, Scheme: scheme, Mode: mode, Offset: uint64(len(verified)), ReqID: reqID}
	if c.DeadlineClass != 0 || c.EnergyBudgetJ > 0 {
		req.Op = opGetEx
		req.Class = c.DeadlineClass
		req.BudgetMJ = budgetMilliJoules(c.EnergyBudgetJ)
	}
	if err := writeRequest(conn, req); err != nil {
		return out, false, err
	}
	br := getConnReader(conn)
	defer putConnReader(br)
	hdr, err := readGetHeader(br)
	if err != nil {
		return out, false, err
	}
	// Frame bytes are accounted where they are actually read: an attempt
	// that died at dial or mid-header contributes nothing, so WireBytes
	// stays honest across retries.
	stats.WireBytes += getHeaderLen
	span.PhaseDetail("header", obs.ClassRadio, attemptDetail, hdrStart, clk.Now().Sub(hdrStart), getHeaderLen)
	// The header survived its CRC, so its status and fields are the
	// server's honest answer: size/scheme violations are permanent, not
	// link damage.
	switch hdr.Status {
	case statusOK:
	case statusNotFound:
		return out, false, permanent(fmt.Errorf("%w: %q", ErrNotFound, name))
	case statusBusy:
		return out, false, ErrBusy
	default:
		return out, false, permanent(fmt.Errorf("%w: status %d", ErrProtocol, hdr.Status))
	}
	maxFetch := c.maxFetch()
	if hdr.RawSize > uint64(maxFetch) || !selective.FitsInt(hdr.RawSize) {
		return out, false, permanent(fmt.Errorf("%w: claimed size %d exceeds fetch limit %d", ErrProtocol, hdr.RawSize, maxFetch))
	}
	if hdr.Offset > uint64(len(verified)) {
		return out, false, permanent(fmt.Errorf("%w: granted offset %d beyond requested %d", ErrProtocol, hdr.Offset, len(verified)))
	}
	// The server may grant less than requested (block alignment, or zero
	// after a re-registration); trim the resume prefix to what it granted.
	out = verified[:hdr.Offset]
	stats.ResumedBytes += int(hdr.Offset)
	if hdr.Offset > 0 {
		c.metrics().resumedBytes.Observe(float64(hdr.Offset))
		span.PhaseDetail("resume", "", attemptDetail, clk.Now(), 0, int64(hdr.Offset))
	}

	dec, err := codec.New(hdr.Scheme, 0)
	if err != nil {
		return out, false, permanent(fmt.Errorf("%w: %v", ErrProtocol, err))
	}

	// Clamp the up-front allocation: trust the claimed size only up to
	// maxPrealloc, then grow with the bytes that actually arrive. out is
	// handed to the caller, so it cannot come from the buffer pool.
	if need := int(hdr.RawSize); cap(out) == 0 && need > 0 {
		out = make([]byte, 0, min(need, maxPrealloc))
	}

	// Pipeline: the receive loop (this goroutine, standing in for the
	// kernel interrupt handler) hands blocks to the decompressor
	// goroutine. Channel capacity 1: the decompressor works on block i
	// while block i+1 is being received.
	//
	// Buffer ownership: block payloads come from the codec buffer pool
	// (readBlock draws them); the decompressor recycles a compressed
	// payload as soon as it is decoded, and its output rides a pooled
	// scratch buffer that drainOne recycles after appending — so a
	// steady-state fetch uses O(1) pooled buffers regardless of block
	// count. A raw payload passes through to drainOne unchanged.
	blocksCh := make(chan wireBlock, 1)
	resultCh := make(chan decoded, 1)
	done := make(chan struct{})
	var decompWall time.Duration
	var decompBytes int64

	go func() {
		defer close(done)
		for b := range blocksCh {
			start := time.Now()
			var d decoded
			if b.Flag == blockFlagCompressed {
				raw, err := codec.DecompressInto(dec, codec.GetBuf(int(b.RawLen)), b.Payload, int(b.RawLen))
				codec.PutBuf(b.Payload)
				if err == nil && len(raw) != int(b.RawLen) {
					err = fmt.Errorf("%w: block raw length %d, header %d", ErrProtocol, len(raw), b.RawLen)
				}
				if err != nil {
					codec.PutBuf(raw)
					raw = nil
				}
				decompBytes += int64(len(raw))
				d = decoded{data: raw, err: err}
			} else {
				d = decoded{data: b.Payload}
			}
			decompWall += time.Since(start)
			resultCh <- d
		}
		close(resultCh)
	}()

	var wantCRC uint32
	var recvErr error
	pending := 0
	recvStart := clk.Now()
	recvBytes := 0
	// rawPromised tracks the raw bytes the accepted block headers have
	// claimed so far; it may never exceed the header's total.
	rawPromised := hdr.Offset

	drainOne := func() error {
		d := <-resultCh
		pending--
		if d.err != nil {
			return d.err
		}
		out = append(out, d.data...)
		codec.PutBuf(d.data)
		// readBlock guarantees a raw block's payload matches its RawLen and
		// the decompressor checks the same for compressed blocks, so the
		// rawPromised budget already bounds this; re-check here so the
		// memory guarantee does not depend on code in another file.
		if uint64(len(out)) > hdr.RawSize {
			return fmt.Errorf("%w: %d raw bytes received, header says %d", ErrProtocol, len(out), hdr.RawSize)
		}
		return nil
	}

recvLoop:
	for {
		b, crc, ok, err := readBlock(br)
		if err != nil {
			recvErr = err
			break
		}
		if !ok {
			wantCRC = crc
			stats.WireBytes += blockHeaderLen // end frame
			recvBytes += blockHeaderLen
			break recvLoop
		}
		rawPromised += uint64(b.RawLen)
		if rawPromised > hdr.RawSize {
			codec.PutBuf(b.Payload)
			recvErr = fmt.Errorf("%w: blocks claim %d raw bytes, header says %d", ErrProtocol, rawPromised, hdr.RawSize)
			break
		}
		stats.BlocksTotal++
		stats.WireBytes += blockHeaderLen + len(b.Payload)
		recvBytes += blockHeaderLen + len(b.Payload)
		if b.Flag == blockFlagCompressed {
			stats.BlocksCompressed++
		}
		// Keep at most one result outstanding so memory stays bounded.
		for pending > 1 {
			if err := drainOne(); err != nil {
				codec.PutBuf(b.Payload) // b never reached the decompressor
				recvErr = err
				break recvLoop
			}
		}
		blocksCh <- b
		pending++
	}
	close(blocksCh)
	for pending > 0 {
		if err := drainOne(); err != nil && recvErr == nil {
			recvErr = err
		}
	}
	<-done
	stats.DecompressWall += decompWall
	span.PhaseDetail("recv", obs.ClassRadio, attemptDetail, recvStart, clk.Now().Sub(recvStart), int64(recvBytes))
	if decompWall > 0 {
		// The decompressor goroutine runs concurrently with reception
		// (Section 4.1's interleaving), so this phase overlaps recv: it
		// starts inside the recv window and carries only busy time.
		span.PhaseDetail("decompress", obs.ClassCPU, attemptDetail+", overlaps recv", recvStart, decompWall, 0)
		if decompBytes > 0 {
			// Decompression throughput is what the paper's td term models
			// (td = 0.161*s + 0.161*sc + 0.004): the faster this phase, the
			// less CPU time competes with the radio's tail energy.
			c.metrics().decompressRate.Observe(float64(decompBytes) / decompWall.Seconds())
		}
	}

	if recvErr != nil {
		return out, false, recvErr
	}
	if uint64(len(out)) != hdr.RawSize {
		return out, false, fmt.Errorf("%w: got %d bytes, header says %d", ErrProtocol, len(out), hdr.RawSize)
	}
	verifyStart := time.Now()
	contentCRC := crcOf(out)
	verifyWall := time.Since(verifyStart)
	span.PhaseDetail("verify", obs.ClassCPU, attemptDetail, clk.Now(), verifyWall, 0)
	if contentCRC != wantCRC {
		// Every block passed its frame CRC, so a whole-content mismatch
		// means the pieces come from different file generations: poison
		// the resume state before retrying.
		return nil, true, fmt.Errorf("%w: content CRC mismatch", ErrProtocol)
	}
	return out, false, nil
}
