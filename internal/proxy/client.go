package proxy

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/codec"
)

// Client is the handheld side: it fetches files from the proxy and
// decompresses arriving blocks in a pipeline concurrent with reception
// (the user-level interleaving of Section 4.1).
type Client struct {
	addr string
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// Timeout, when positive, bounds a whole List or Fetch call via a
	// connection deadline, so a stalled proxy cannot wedge the handheld.
	Timeout time.Duration
}

// NewClient returns a client for the proxy at addr.
func NewClient(addr string) *Client {
	return &Client{addr: addr, DialTimeout: 10 * time.Second}
}

// dial connects and applies the per-call deadline.
func (c *Client) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.DialTimeout)
	if err != nil {
		return nil, err
	}
	if c.Timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return conn, nil
}

// FetchStats reports what crossed the wire.
type FetchStats struct {
	RawBytes         int
	WireBytes        int // block payloads + framing
	BlocksTotal      int
	BlocksCompressed int
	Factor           float64
	// DecompressWall is the wall time the decompression goroutine spent
	// busy (host-machine time; energy accounting uses the simulator, not
	// this number).
	DecompressWall time.Duration
}

// List fetches the server's file catalogue.
func (c *Client) List() ([]string, error) {
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := writeRequest(conn, request{Op: opList}); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	switch hdr[0] {
	case statusOK:
	case statusBusy:
		return nil, ErrBusy
	default:
		return nil, fmt.Errorf("%w: status %d", ErrProtocol, hdr[0])
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: %d names", ErrProtocol, n)
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var n16 [2]byte
		if _, err := io.ReadFull(br, n16[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		nameLen := int(binary.BigEndian.Uint16(n16[:]))
		if nameLen > maxNameLen {
			return nil, fmt.Errorf("%w: name length %d", ErrProtocol, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		names = append(names, string(name))
	}
	return names, nil
}

// decoded is one block's decompression outcome, in order.
type decoded struct {
	data []byte
	err  error
}

// Fetch downloads name with the given scheme and mode, returning the
// verified content and transfer statistics. Reception and decompression
// run in separate goroutines: block i decompresses while block i+1 is on
// the wire.
func (c *Client) Fetch(name string, scheme codec.Scheme, mode Mode) ([]byte, FetchStats, error) {
	var stats FetchStats
	conn, err := c.dial()
	if err != nil {
		return nil, stats, err
	}
	defer conn.Close()

	if err := writeRequest(conn, request{Op: opGet, Name: name, Scheme: scheme, Mode: mode}); err != nil {
		return nil, stats, err
	}
	br := bufio.NewReaderSize(conn, 64*1024)
	hdr, err := readGetHeader(br)
	if err != nil {
		return nil, stats, err
	}
	switch hdr.Status {
	case statusOK:
	case statusNotFound:
		return nil, stats, fmt.Errorf("%w: %q", ErrNotFound, name)
	case statusBusy:
		return nil, stats, ErrBusy
	default:
		return nil, stats, fmt.Errorf("%w: status %d", ErrProtocol, hdr.Status)
	}

	dec, err := codec.New(hdr.Scheme, 0)
	if err != nil {
		return nil, stats, fmt.Errorf("%w: %v", ErrProtocol, err)
	}

	// Pipeline: the receive loop (this goroutine, standing in for the
	// kernel interrupt handler) hands blocks to the decompressor
	// goroutine. Channel capacity 1: the decompressor works on block i
	// while block i+1 is being received.
	blocksCh := make(chan wireBlock, 1)
	resultCh := make(chan decoded, 1)
	done := make(chan struct{})
	var out []byte
	var decompWall time.Duration

	go func() {
		defer close(done)
		for b := range blocksCh {
			start := time.Now()
			var d decoded
			if b.Flag == blockFlagCompressed {
				raw, err := dec.Decompress(b.Payload, int(b.RawLen))
				if err == nil && len(raw) != int(b.RawLen) {
					err = fmt.Errorf("%w: block raw length %d, header %d", ErrProtocol, len(raw), b.RawLen)
				}
				d = decoded{data: raw, err: err}
			} else {
				d = decoded{data: b.Payload}
			}
			decompWall += time.Since(start)
			resultCh <- d
		}
		close(resultCh)
	}()

	var wantCRC uint32
	var recvErr error
	pending := 0
	out = make([]byte, 0, int(hdr.RawSize))

	drainOne := func() error {
		d := <-resultCh
		pending--
		if d.err != nil {
			return d.err
		}
		out = append(out, d.data...)
		return nil
	}

recvLoop:
	for {
		b, crc, ok, err := readBlock(br)
		if err != nil {
			recvErr = err
			break
		}
		if !ok {
			wantCRC = crc
			break recvLoop
		}
		stats.BlocksTotal++
		stats.WireBytes += 9 + len(b.Payload)
		if b.Flag == blockFlagCompressed {
			stats.BlocksCompressed++
		}
		// Keep at most one result outstanding so memory stays bounded.
		for pending > 1 {
			if err := drainOne(); err != nil {
				recvErr = err
				break recvLoop
			}
		}
		blocksCh <- b
		pending++
	}
	close(blocksCh)
	for pending > 0 {
		if err := drainOne(); err != nil && recvErr == nil {
			recvErr = err
		}
	}
	<-done
	stats.DecompressWall = decompWall

	if recvErr != nil {
		return nil, stats, recvErr
	}
	if uint64(len(out)) != hdr.RawSize {
		return nil, stats, fmt.Errorf("%w: got %d bytes, header says %d", ErrProtocol, len(out), hdr.RawSize)
	}
	if crcOf(out) != wantCRC {
		return nil, stats, fmt.Errorf("%w: content CRC mismatch", ErrProtocol)
	}
	stats.RawBytes = len(out)
	stats.WireBytes += 10 + 9 // response header + end frame
	stats.Factor = codec.Factor(stats.RawBytes, stats.WireBytes)
	return out, stats, nil
}
