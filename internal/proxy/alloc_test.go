//go:build !race

package proxy

// Allocation gates for the pooled dataplane. These assert the O(1)
// buffers-per-block property the buffer pool exists to provide; they are
// excluded under the race detector, which instruments allocations and
// would make the counts meaningless.

import (
	"bytes"
	"testing"

	"repro/internal/codec"
)

// TestReadBlockPooledAllocs: once the pool is warm, reading a verified
// 128 KiB block must not allocate a fresh payload. The budget of 2 covers
// the slice-header box sync.Pool needs on Put; the payload buffer itself
// (the 128 KiB that used to be a per-block make) must come from the pool.
func TestReadBlockPooledAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, 128*1024)
	var frame bytes.Buffer
	if err := writeBlock(&frame, wireBlock{Flag: blockFlagRaw, RawLen: uint32(len(payload)), Payload: payload}); err != nil {
		t.Fatal(err)
	}
	wire := frame.Bytes()

	// Warm the pool's size class.
	r := bytes.NewReader(wire)
	b, _, ok, err := readBlock(r)
	if err != nil || !ok {
		t.Fatalf("warmup readBlock: ok=%v err=%v", ok, err)
	}
	codec.PutBuf(b.Payload)

	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(wire)
		b, _, ok, err := readBlock(r)
		if err != nil || !ok {
			t.Fatalf("readBlock: ok=%v err=%v", ok, err)
		}
		codec.PutBuf(b.Payload)
	})
	if allocs > 2 {
		t.Errorf("readBlock allocates %.1f objects per block, want <= 2 (payload not pooled?)", allocs)
	}
}

// TestGetBufRecycles pins the pool contract the dataplane relies on:
// capacity classes round up, and a returned buffer is handed out again.
func TestGetBufRecycles(t *testing.T) {
	b := codec.GetBuf(100_000)
	if cap(b) < 100_000 {
		t.Fatalf("GetBuf(100000) cap = %d", cap(b))
	}
	b = append(b, 1, 2, 3)
	codec.PutBuf(b)
	c := codec.GetBuf(100_000)
	if len(c) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(c))
	}
	if cap(c) < 100_000 {
		t.Fatalf("recycled buffer cap = %d", cap(c))
	}
}
