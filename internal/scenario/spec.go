// Package scenario turns declarative on-disk spec files into seeded
// soak runs over the deterministic testbed. A spec pins a fleet shape
// (clients × fetches), a link schedule (rate cliffs, power-save
// windows), a workload corpus (Table 3 content classes or numeric
// compressibility targets), and the expected-outcome bounds the run
// must honor — the way elastic-package lays out data-driven system
// tests as a corpus of self-describing directories. Compiled scenarios
// run through internal/harness, so every spec inherits the invariant
// oracles and the canonical-trace replay guarantee: one golden trace
// per (spec, seed) is committed under testdata/scenarios/golden and CI
// diffs every run against it.
package scenario

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/workload"
)

// Spec is one parsed scenario file. The zero value of every field means
// "not specified": Compile leaves harness defaults in charge, and
// Format omits the line. Parse and Format are exact inverses over any
// successfully parsed spec — the fuzz target pins
// Parse(Format(spec)) == spec — so specs can be rewritten losslessly.
type Spec struct {
	// Name labels the scenario; LoadDir requires it to match the file's
	// base name so golden traces can never be attributed to the wrong
	// spec.
	Name string
	// Clients and Fetches set the fleet shape (harness defaults 10×50).
	Clients int
	Fetches int
	// Fault is the per-I/O-call probability of each injected fault mode.
	Fault float64
	// Churn is how many mid-run cache-dropping re-registrations the
	// churn actor performs.
	Churn int
	// MaxRetries and Timeout are each client's per-fetch retry budget
	// and per-attempt virtual deadline.
	MaxRetries int
	Timeout    time.Duration
	// Decider selects the server's selective-mode decision policy:
	// "static" (the paper's Equation 6, also the "" default) or "dynamic"
	// (the queue-aware, link-adaptive decider of internal/decider).
	Decider string
	// Deadline is the fleet's declared deadline class ("none", "relaxed",
	// "standard", "strict"); "" leaves requests undeclared. Budget is each
	// client's advisory energy budget in joules (0 = undeclared). Both
	// ride the extended GET op, so a spec setting neither replays
	// byte-identically to the pre-attribute grammar.
	Deadline string
	Budget   float64
	// Link is the base shared medium; the zero value selects the
	// paper's 11 Mb/s WaveLAN shape.
	Link Link
	// LinkAt scripts rate changes at virtual-time offsets; PowerSave
	// scripts windows where the medium pauses entirely. Together they
	// compile into the simnet link schedule.
	LinkAt    []RateChange
	PowerSave []Window
	// Cluster, when Nodes > 0, runs the scenario against an N-node
	// consistent-hash proxy ring instead of the single server; the zero
	// value keeps the single-server testbed.
	Cluster ClusterSpec
	// PeerLink shapes the inter-node backhaul of a cluster scenario; the
	// zero value selects the harness's 100 Mb/s wired default.
	PeerLink Link
	// Files is the workload corpus; empty keeps the harness's built-in
	// nine-file mix.
	Files []FileSpec
	// Expect are the outcome bounds checked after the run.
	Expect Expect
}

// ClusterSpec is the ring shape of a cluster scenario: node count, how
// many ring successors each hot key replicates to, and the size of each
// node's top-K hot-key admission sketch.
type ClusterSpec struct {
	Nodes    int
	Replicas int
	HotK     int
}

// Link is the base medium shape: bytes/sec, one-way hop latency, and
// the ±fractional per-transfer jitter.
type Link struct {
	Rate    float64
	Latency time.Duration
	Jitter  float64
}

// RateChange reschedules the medium to Rate bytes/sec at virtual time At.
type RateChange struct {
	At   time.Duration
	Rate float64
}

// Window is a power-save pause: the medium carries nothing from Start
// for Dur.
type Window struct {
	Start time.Duration
	Dur   time.Duration
}

// FileSpec is one corpus file. Exactly one of Class / Ratio describes
// its content: a Table 3 content class, or a target gzip factor for the
// compressibility knob.
type FileSpec struct {
	Name  string
	Class workload.Class
	Ratio float64
	Size  int
}

// Expect is the spec's outcome gate; zero fields are unchecked.
type Expect struct {
	MinOK          float64
	MaxVirtual     time.Duration
	MaxAttempts    int
	MaxJoulesPerMB float64
}

// classTokens maps the spec grammar's one-word class names to Table 3
// content classes. Kept in sync with workload.Class by TestClassTokens.
var classTokens = map[string]workload.Class{
	"xml":        workload.ClassXML,
	"html":       workload.ClassHTML,
	"weblog":     workload.ClassWebLog,
	"tarhtml":    workload.ClassTarHTML,
	"source":     workload.ClassSource,
	"postscript": workload.ClassPostscript,
	"pdf":        workload.ClassPDF,
	"binary":     workload.ClassBinary,
	"classfile":  workload.ClassClassFile,
	"audio":      workload.ClassAudio,
	"graphic":    workload.ClassGraphic,
	"media":      workload.ClassMedia,
	"random":     workload.ClassRandom,
	"mail":       workload.ClassMail,
	"script":     workload.ClassScript,
}

// classToken is the reverse map, for Format.
var classToken = func() map[workload.Class]string {
	m := make(map[workload.Class]string, len(classTokens))
	for tok, c := range classTokens {
		m[c] = tok
	}
	return m
}()

// Parse reads the line-oriented spec grammar. Lines are split on
// whitespace; blank lines and lines whose first character is '#' are
// skipped. Later lines override earlier ones for scalar keys; list keys
// (file, linkat, powersave) append in order. Parse performs only
// syntactic checks — range and budget caps live in Validate — but it
// never panics on any input and never accepts a value Format cannot
// reproduce (NaN is rejected so round-tripping stays exact).
func Parse(data []byte) (*Spec, error) {
	s := &Spec{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line[0] == '#' {
			continue
		}
		f := strings.Fields(line)
		var err error
		switch f[0] {
		case "scenario":
			err = wantArgs(f, 1, func() error { s.Name = f[1]; return nil })
		case "clients":
			err = wantArgs(f, 1, func() error { s.Clients, err = pInt(f[1]); return err })
		case "fetches":
			err = wantArgs(f, 1, func() error { s.Fetches, err = pInt(f[1]); return err })
		case "fault":
			err = wantArgs(f, 1, func() error { s.Fault, err = pFloat(f[1]); return err })
		case "churn":
			err = wantArgs(f, 1, func() error { s.Churn, err = pInt(f[1]); return err })
		case "maxretries":
			err = wantArgs(f, 1, func() error { s.MaxRetries, err = pInt(f[1]); return err })
		case "timeout":
			err = wantArgs(f, 1, func() error { s.Timeout, err = pDur(f[1]); return err })
		case "decider":
			err = wantArgs(f, 1, func() error { s.Decider = f[1]; return nil })
		case "deadline":
			err = wantArgs(f, 1, func() error { s.Deadline = f[1]; return nil })
		case "budget":
			err = wantArgs(f, 1, func() error { s.Budget, err = pFloat(f[1]); return err })
		case "link":
			err = parsePairs(f[1:], map[string]func(string) error{
				"rate":    func(v string) (e error) { s.Link.Rate, e = pFloat(v); return },
				"latency": func(v string) (e error) { s.Link.Latency, e = pDur(v); return },
				"jitter":  func(v string) (e error) { s.Link.Jitter, e = pFloat(v); return },
			})
		case "cluster":
			err = parsePairs(f[1:], map[string]func(string) error{
				"nodes":    func(v string) (e error) { s.Cluster.Nodes, e = pInt(v); return },
				"replicas": func(v string) (e error) { s.Cluster.Replicas, e = pInt(v); return },
				"hotk":     func(v string) (e error) { s.Cluster.HotK, e = pInt(v); return },
			})
		case "peerlink":
			err = parsePairs(f[1:], map[string]func(string) error{
				"rate":    func(v string) (e error) { s.PeerLink.Rate, e = pFloat(v); return },
				"latency": func(v string) (e error) { s.PeerLink.Latency, e = pDur(v); return },
				"jitter":  func(v string) (e error) { s.PeerLink.Jitter, e = pFloat(v); return },
			})
		case "linkat":
			err = wantArgs(f, 3, func() error {
				if f[2] != "rate" {
					return fmt.Errorf("want `linkat DUR rate F`, got %q", f[2])
				}
				var rc RateChange
				if rc.At, err = pDur(f[1]); err != nil {
					return err
				}
				if rc.Rate, err = pFloat(f[3]); err != nil {
					return err
				}
				s.LinkAt = append(s.LinkAt, rc)
				return nil
			})
		case "powersave":
			err = wantArgs(f, 2, func() error {
				var w Window
				if w.Start, err = pDur(f[1]); err != nil {
					return err
				}
				if w.Dur, err = pDur(f[2]); err != nil {
					return err
				}
				s.PowerSave = append(s.PowerSave, w)
				return nil
			})
		case "file":
			if len(f) < 2 {
				err = fmt.Errorf("file needs a name")
				break
			}
			fs := FileSpec{Name: f[1]}
			err = parsePairs(f[2:], map[string]func(string) error{
				"class": func(v string) error {
					c, ok := classTokens[v]
					if !ok {
						return fmt.Errorf("unknown content class %q", v)
					}
					fs.Class = c
					return nil
				},
				"ratio": func(v string) (e error) { fs.Ratio, e = pFloat(v); return },
				"size":  func(v string) (e error) { fs.Size, e = pInt(v); return },
			})
			if err == nil {
				s.Files = append(s.Files, fs)
			}
		case "expect":
			err = wantArgs(f, 2, func() error {
				switch f[1] {
				case "minok":
					s.Expect.MinOK, err = pFloat(f[2])
				case "maxvirtual":
					s.Expect.MaxVirtual, err = pDur(f[2])
				case "maxattempts":
					s.Expect.MaxAttempts, err = pInt(f[2])
				case "maxjoulespermb":
					s.Expect.MaxJoulesPerMB, err = pFloat(f[2])
				default:
					err = fmt.Errorf("unknown expect bound %q", f[1])
				}
				return err
			})
		default:
			err = fmt.Errorf("unknown directive %q", f[0])
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return s, nil
}

// Format renders s in the spec grammar, emitting set fields in a fixed
// order. Parse(Format(s)) reproduces s exactly for any parsed spec.
func Format(s *Spec) []byte {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "scenario %s\n", s.Name)
	}
	if s.Clients != 0 {
		fmt.Fprintf(&b, "clients %d\n", s.Clients)
	}
	if s.Fetches != 0 {
		fmt.Fprintf(&b, "fetches %d\n", s.Fetches)
	}
	if s.Fault != 0 {
		fmt.Fprintf(&b, "fault %s\n", ff(s.Fault))
	}
	if s.Churn != 0 {
		fmt.Fprintf(&b, "churn %d\n", s.Churn)
	}
	if s.MaxRetries != 0 {
		fmt.Fprintf(&b, "maxretries %d\n", s.MaxRetries)
	}
	if s.Timeout != 0 {
		fmt.Fprintf(&b, "timeout %s\n", s.Timeout)
	}
	if s.Decider != "" {
		fmt.Fprintf(&b, "decider %s\n", s.Decider)
	}
	if s.Deadline != "" {
		fmt.Fprintf(&b, "deadline %s\n", s.Deadline)
	}
	if s.Budget != 0 {
		fmt.Fprintf(&b, "budget %s\n", ff(s.Budget))
	}
	if s.Link != (Link{}) {
		fmt.Fprintf(&b, "link rate %s latency %s jitter %s\n", ff(s.Link.Rate), s.Link.Latency, ff(s.Link.Jitter))
	}
	if s.Cluster != (ClusterSpec{}) {
		fmt.Fprintf(&b, "cluster nodes %d replicas %d hotk %d\n", s.Cluster.Nodes, s.Cluster.Replicas, s.Cluster.HotK)
	}
	if s.PeerLink != (Link{}) {
		fmt.Fprintf(&b, "peerlink rate %s latency %s jitter %s\n", ff(s.PeerLink.Rate), s.PeerLink.Latency, ff(s.PeerLink.Jitter))
	}
	for _, rc := range s.LinkAt {
		fmt.Fprintf(&b, "linkat %s rate %s\n", rc.At, ff(rc.Rate))
	}
	for _, w := range s.PowerSave {
		fmt.Fprintf(&b, "powersave %s %s\n", w.Start, w.Dur)
	}
	for _, fs := range s.Files {
		fmt.Fprintf(&b, "file %s", fs.Name)
		if fs.Class != 0 {
			fmt.Fprintf(&b, " class %s", classToken[fs.Class])
		}
		if fs.Ratio != 0 {
			fmt.Fprintf(&b, " ratio %s", ff(fs.Ratio))
		}
		if fs.Size != 0 {
			fmt.Fprintf(&b, " size %d", fs.Size)
		}
		b.WriteByte('\n')
	}
	if s.Expect.MinOK != 0 {
		fmt.Fprintf(&b, "expect minok %s\n", ff(s.Expect.MinOK))
	}
	if s.Expect.MaxVirtual != 0 {
		fmt.Fprintf(&b, "expect maxvirtual %s\n", s.Expect.MaxVirtual)
	}
	if s.Expect.MaxAttempts != 0 {
		fmt.Fprintf(&b, "expect maxattempts %d\n", s.Expect.MaxAttempts)
	}
	if s.Expect.MaxJoulesPerMB != 0 {
		fmt.Fprintf(&b, "expect maxjoulespermb %s\n", ff(s.Expect.MaxJoulesPerMB))
	}
	return []byte(b.String())
}

// nameRE bounds scenario and file names to tokens that are safe as
// filenames, trace-header fields and registry label values.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// Validation caps. These are deliberately tight: every committed spec
// replays in CI at multiple seeds, the fuzzer drives Validate on
// arbitrary parsed specs, and a spec is a test fixture, not a
// production config — so budgets are sized for "largest soak worth
// gating on", and the 10k-client load-generation shape stays inside
// them.
const (
	maxFiles       = 64
	maxFileSize    = 4 << 20
	maxClients     = 20000
	maxTotalFetch  = 200000
	maxFault       = 0.2
	minRatio       = 1.02
	maxRatio       = 16.0
	minRate        = 1e3
	maxRate        = 1e9
	maxSchedEvents = 32
	maxHorizon     = 24 * time.Hour
	maxNodes       = 16
	maxBudgetJ     = 1e6
)

// deadlineTokens maps the grammar's deadline-class names onto the wire's
// class byte (the decider.ClassFromByte vocabulary). Kept in sync with
// internal/decider by TestDeadlineTokens.
var deadlineTokens = map[string]uint8{
	"none":     0,
	"relaxed":  1,
	"standard": 2,
	"strict":   3,
}

// Validate checks ranges, budgets and cross-field rules. A valid spec
// is guaranteed to compile into a runnable harness scenario: in
// particular the link schedule always ends un-paused, so no run can
// park its writers forever.
func (s *Spec) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario name %q: want %s", s.Name, nameRE)
	}
	if s.Clients < 0 || s.Clients > maxClients {
		return fmt.Errorf("clients %d outside [0, %d]", s.Clients, maxClients)
	}
	if s.Fetches < 0 {
		return fmt.Errorf("fetches %d negative", s.Fetches)
	}
	ec, ef := s.Clients, s.Fetches
	if ec == 0 {
		ec = 10
	}
	if ef == 0 {
		ef = 50
	}
	if ec*ef > maxTotalFetch {
		return fmt.Errorf("%d clients × %d fetches = %d total, budget is %d", ec, ef, ec*ef, maxTotalFetch)
	}
	if s.Fault < 0 || s.Fault > maxFault {
		return fmt.Errorf("fault %g outside [0, %g]", s.Fault, maxFault)
	}
	if s.Churn < 0 || s.Churn > 10000 {
		return fmt.Errorf("churn %d outside [0, 10000]", s.Churn)
	}
	if s.MaxRetries < 0 || s.MaxRetries > 100 {
		return fmt.Errorf("maxretries %d outside [0, 100]", s.MaxRetries)
	}
	if s.Timeout < 0 || s.Timeout > time.Hour {
		return fmt.Errorf("timeout %s outside [0, 1h]", s.Timeout)
	}
	if s.Decider != "" && s.Decider != "static" && s.Decider != "dynamic" {
		return fmt.Errorf("decider %q: want static or dynamic", s.Decider)
	}
	if _, ok := deadlineTokens[s.Deadline]; !ok && s.Deadline != "" {
		return fmt.Errorf("deadline %q: want none/relaxed/standard/strict", s.Deadline)
	}
	if s.Budget < 0 || s.Budget > maxBudgetJ {
		return fmt.Errorf("budget %g outside [0, %g]", s.Budget, float64(maxBudgetJ))
	}
	if s.Link != (Link{}) {
		if s.Link.Rate < minRate || s.Link.Rate > maxRate {
			return fmt.Errorf("link rate %g outside [%g, %g]", s.Link.Rate, minRate, maxRate)
		}
		if s.Link.Latency < 0 || s.Link.Latency > 10*time.Second {
			return fmt.Errorf("link latency %s outside [0, 10s]", s.Link.Latency)
		}
		if s.Link.Jitter < 0 || s.Link.Jitter > 1 {
			return fmt.Errorf("link jitter %g outside [0, 1]", s.Link.Jitter)
		}
	}
	if s.Cluster.Nodes < 0 || s.Cluster.Nodes > maxNodes {
		return fmt.Errorf("cluster nodes %d outside [0, %d]", s.Cluster.Nodes, maxNodes)
	}
	if s.Cluster.Nodes == 0 && s.Cluster != (ClusterSpec{}) {
		return fmt.Errorf("cluster replicas/hotk need nodes > 0")
	}
	if s.Cluster.Nodes > 0 {
		if s.Cluster.Replicas < 0 || s.Cluster.Replicas >= s.Cluster.Nodes {
			return fmt.Errorf("cluster replicas %d outside [0, nodes-1=%d]", s.Cluster.Replicas, s.Cluster.Nodes-1)
		}
		if s.Cluster.HotK < 0 || s.Cluster.HotK > 4096 {
			return fmt.Errorf("cluster hotk %d outside [0, 4096]", s.Cluster.HotK)
		}
	}
	if s.PeerLink != (Link{}) {
		if s.Cluster.Nodes == 0 {
			return fmt.Errorf("peerlink needs cluster nodes > 0")
		}
		if s.PeerLink.Rate < minRate || s.PeerLink.Rate > maxRate {
			return fmt.Errorf("peerlink rate %g outside [%g, %g]", s.PeerLink.Rate, minRate, maxRate)
		}
		if s.PeerLink.Latency < 0 || s.PeerLink.Latency > 10*time.Second {
			return fmt.Errorf("peerlink latency %s outside [0, 10s]", s.PeerLink.Latency)
		}
		if s.PeerLink.Jitter < 0 || s.PeerLink.Jitter > 1 {
			return fmt.Errorf("peerlink jitter %g outside [0, 1]", s.PeerLink.Jitter)
		}
	}
	if len(s.LinkAt)+len(s.PowerSave) > maxSchedEvents {
		return fmt.Errorf("%d schedule events, budget is %d", len(s.LinkAt)+len(s.PowerSave), maxSchedEvents)
	}
	for i, rc := range s.LinkAt {
		if rc.At < 0 || rc.At > maxHorizon {
			return fmt.Errorf("linkat[%d] at %s outside [0, %s]", i, rc.At, maxHorizon)
		}
		if i > 0 && rc.At <= s.LinkAt[i-1].At {
			return fmt.Errorf("linkat[%d] at %s not after linkat[%d] at %s", i, rc.At, i-1, s.LinkAt[i-1].At)
		}
		if rc.Rate < minRate || rc.Rate > maxRate {
			return fmt.Errorf("linkat[%d] rate %g outside [%g, %g]", i, rc.Rate, minRate, maxRate)
		}
	}
	for i, w := range s.PowerSave {
		if w.Start < 0 || w.Dur <= 0 || w.Start+w.Dur > maxHorizon {
			return fmt.Errorf("powersave[%d] [%s, +%s] outside (0, %s]", i, w.Start, w.Dur, maxHorizon)
		}
		if i > 0 && w.Start < s.PowerSave[i-1].Start+s.PowerSave[i-1].Dur {
			return fmt.Errorf("powersave[%d] at %s overlaps powersave[%d]", i, w.Start, i-1)
		}
	}
	if len(s.Files) > maxFiles {
		return fmt.Errorf("%d files, budget is %d", len(s.Files), maxFiles)
	}
	seen := map[string]bool{}
	for i, fs := range s.Files {
		if !nameRE.MatchString(fs.Name) {
			return fmt.Errorf("file[%d] name %q: want %s", i, fs.Name, nameRE)
		}
		if seen[fs.Name] {
			return fmt.Errorf("file[%d] duplicate name %q", i, fs.Name)
		}
		seen[fs.Name] = true
		if (fs.Class == 0) == (fs.Ratio == 0) {
			return fmt.Errorf("file %q: want exactly one of class / ratio", fs.Name)
		}
		if fs.Ratio != 0 && (fs.Ratio < minRatio || fs.Ratio > maxRatio) {
			return fmt.Errorf("file %q ratio %g outside [%g, %g]", fs.Name, fs.Ratio, minRatio, maxRatio)
		}
		if fs.Size < 1 || fs.Size > maxFileSize {
			return fmt.Errorf("file %q size %d outside [1, %d]", fs.Name, fs.Size, maxFileSize)
		}
	}
	if s.Expect.MinOK < 0 || s.Expect.MinOK > 1 {
		return fmt.Errorf("expect minok %g outside [0, 1]", s.Expect.MinOK)
	}
	if s.Expect.MaxVirtual < 0 || s.Expect.MaxVirtual > maxHorizon {
		return fmt.Errorf("expect maxvirtual %s outside [0, %s]", s.Expect.MaxVirtual, maxHorizon)
	}
	if s.Expect.MaxAttempts < 0 || s.Expect.MaxAttempts > 1000 {
		return fmt.Errorf("expect maxattempts %d outside [0, 1000]", s.Expect.MaxAttempts)
	}
	if s.Expect.MaxJoulesPerMB < 0 {
		return fmt.Errorf("expect maxjoulespermb %g negative", s.Expect.MaxJoulesPerMB)
	}
	return nil
}

func wantArgs(f []string, n int, apply func() error) error {
	if len(f) != n+1 {
		return fmt.Errorf("%s wants %d argument(s), got %d", f[0], n, len(f)-1)
	}
	return apply()
}

// parsePairs consumes `key value` pairs in any order. An empty list is
// allowed — explicit zeros parse to a zero struct that Format renders
// with no pairs at all, and the round-trip contract must hold for it;
// Validate is what rejects meaningless entries.
func parsePairs(f []string, keys map[string]func(string) error) error {
	if len(f)%2 != 0 {
		return fmt.Errorf("dangling key %q", f[len(f)-1])
	}
	for i := 0; i < len(f); i += 2 {
		apply, ok := keys[f[i]]
		if !ok {
			ks := make([]string, 0, len(keys))
			for k := range keys {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			return fmt.Errorf("unknown key %q, want one of %s", f[i], strings.Join(ks, "/"))
		}
		if err := apply(f[i+1]); err != nil {
			return err
		}
	}
	return nil
}

func pInt(tok string) (int, error) {
	return strconv.Atoi(tok)
}

func pFloat(tok string) (float64, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, err
	}
	// NaN breaks the Parse/Format round-trip (NaN != NaN) and Inf is
	// never a meaningful knob value; reject both at the syntax layer.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", tok)
	}
	return v, nil
}

func pDur(tok string) (time.Duration, error) {
	return time.ParseDuration(tok)
}

// ff formats a float the way Parse reads it back exactly.
func ff(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
