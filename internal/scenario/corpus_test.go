package scenario

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden scenario traces from the current implementation")

// corpusDir is the committed scenario corpus; goldenDir holds one
// canonical trace per (spec, seed).
const (
	corpusDir = "../../testdata/scenarios"
	goldenDir = "../../testdata/scenarios/golden"
)

// goldenSeeds are the seeds every committed spec is pinned at. CI adds
// a fresh wall-clock seed on top (scripts/ci.sh) to keep the corpus
// honest about seeds nobody tuned for.
var goldenSeeds = []int64{1, 2}

// TestCorpusGoldenTraces runs every committed spec at every golden seed
// and diffs the canonical trace byte-for-byte against the committed
// golden file. Any intentional behavior change re-records with
// `go test ./internal/scenario -run TestCorpusGoldenTraces -update`
// — and the diff of the golden files then documents the change in
// review. Runs must also be clean: no structural-oracle violation and
// no breached expect bound.
func TestCorpusGoldenTraces(t *testing.T) {
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 6 {
		t.Fatalf("scenario corpus has %d specs, floor is 6", len(specs))
	}
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range goldenSeeds {
				rep, err := s.Run(seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, v := range rep.Violations {
					t.Errorf("seed %d: %s", seed, v)
				}
				got := rep.Trace()
				path := filepath.Join(goldenDir, fmt.Sprintf("%s.seed%d.trace", s.Name, seed))
				if *update {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update to record): %v", err)
				}
				if got != string(want) {
					t.Errorf("seed %d: trace diverged from %s:\n%s", seed, path, firstDiff(string(want), got))
				}
			}
		})
	}
}

// TestCorpusDeterminism extends the harness's replay guarantee to the
// whole committed corpus: for every spec, the same seed must produce a
// byte-identical canonical trace twice over, and a different seed must
// produce a different one (a trace that ignored its seed would make the
// golden gate vacuous). Seeds here are deliberately not the golden
// seeds, so determinism holds off the recorded path too.
func TestCorpusDeterminism(t *testing.T) {
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			a1, err := s.Run(7)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := s.Run(7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Run(8)
			if err != nil {
				t.Fatal(err)
			}
			if a1.Trace() != a2.Trace() {
				t.Errorf("seed 7 replay diverged:\n%s", firstDiff(a1.Trace(), a2.Trace()))
			}
			if a1.Trace() == b.Trace() {
				t.Error("seeds 7 and 8 produced identical traces")
			}
		})
	}
}

// firstDiff renders the first line where two traces disagree.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, w, g)
		}
	}
	return "traces equal"
}
