package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/simnet"
)

// Compile lowers a validated spec into a runnable harness scenario at
// the given seed. The spec never carries a seed: the whole point of the
// corpus is that any spec replays at any seed, so seeds arrive from the
// caller (golden-trace tests pin 1 and 2; CI adds a fresh one each run).
func (s *Spec) Compile(seed int64) harness.Scenario {
	sc := harness.Scenario{
		Name:             s.Name,
		Seed:             seed,
		Clients:          s.Clients,
		FetchesPerClient: s.Fetches,
		FaultRate:        s.Fault,
		Churn:            s.Churn,
		MaxRetries:       s.MaxRetries,
		Timeout:          s.Timeout,
		Decider:          s.Decider,
		DeadlineClass:    deadlineTokens[s.Deadline],
		BudgetJ:          s.Budget,
	}
	if s.Link != (Link{}) {
		sc.Link = simnet.Link{BytesPerSec: s.Link.Rate, Latency: s.Link.Latency, JitterFrac: s.Link.Jitter}
	}
	if s.Cluster.Nodes > 0 {
		sc.Nodes = s.Cluster.Nodes
		sc.Replicas = s.Cluster.Replicas
		sc.HotK = s.Cluster.HotK
		if s.PeerLink != (Link{}) {
			sc.PeerLink = simnet.Link{BytesPerSec: s.PeerLink.Rate, Latency: s.PeerLink.Latency, JitterFrac: s.PeerLink.Jitter}
		}
	}
	for _, fs := range s.Files {
		sc.Corpus = append(sc.Corpus, harness.CorpusEntry{
			Name: fs.Name, Class: fs.Class, Ratio: fs.Ratio, Size: fs.Size,
		})
	}
	sc.Schedule = compileSchedule(s.baseRate(), s.LinkAt, s.PowerSave)
	return sc
}

// baseRate is the medium rate in force before any linkat event — the
// spec's link line, or the harness's WaveLAN 11 Mb/s default.
func (s *Spec) baseRate() float64 {
	if s.Link.Rate > 0 {
		return s.Link.Rate
	}
	return simnet.WaveLAN11().BytesPerSec
}

// compileSchedule lowers linkat rate changes and power-save windows
// into the flat phase list simnet executes: walk every boundary instant
// in time order, evaluate the rate in force just after it (the last
// rate change at or before it, masked to zero inside any power-save
// window), and emit a phase wherever the rate actually changes. A
// validated spec always compiles to a schedule that ends un-paused,
// because windows are finite and every linkat rate is positive.
func compileSchedule(base float64, linkat []RateChange, ps []Window) []simnet.Phase {
	if len(linkat) == 0 && len(ps) == 0 {
		return nil
	}
	set := map[time.Duration]bool{}
	for _, rc := range linkat {
		set[rc.At] = true
	}
	for _, w := range ps {
		set[w.Start] = true
		set[w.Start+w.Dur] = true
	}
	bounds := make([]time.Duration, 0, len(set))
	for t := range set {
		bounds = append(bounds, t)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	rateAt := func(t time.Duration) float64 {
		for _, w := range ps {
			if t >= w.Start && t < w.Start+w.Dur {
				return 0
			}
		}
		r := base
		for _, rc := range linkat {
			if rc.At <= t {
				r = rc.Rate
			}
		}
		return r
	}

	var phases []simnet.Phase
	prev := base
	for _, t := range bounds {
		if r := rateAt(t); r != prev {
			phases = append(phases, simnet.Phase{Start: t, Rate: r})
			prev = r
		}
	}
	return phases
}

// Bounds converts the spec's expect lines into the harness's
// outcome-oracle form.
func (s *Spec) Bounds() harness.Bounds {
	return harness.Bounds{
		MinOKFrac:      s.Expect.MinOK,
		MaxVirtual:     s.Expect.MaxVirtual,
		MaxAttempts:    s.Expect.MaxAttempts,
		MaxJoulesPerMB: s.Expect.MaxJoulesPerMB,
	}
}

// Run compiles and executes the spec at seed, then folds any breached
// expect bound into the report's violations alongside the structural
// oracles, so callers have a single pass/fail surface.
func (s *Spec) Run(seed int64) (*harness.Report, error) {
	rep, err := harness.Run(s.Compile(seed))
	if err != nil {
		return nil, err
	}
	rep.Violations = append(rep.Violations, rep.CheckBounds(s.Bounds())...)
	return rep, nil
}

// Load reads, parses and validates one spec file, and requires the
// scenario name to match the file's base name (sans .scn) so a golden
// trace can never be attributed to the wrong spec.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if want := strings.TrimSuffix(filepath.Base(path), ".scn"); s.Name != want {
		return nil, fmt.Errorf("%s: scenario name %q does not match file name %q", path, s.Name, want)
	}
	return s, nil
}

// LoadDir loads every *.scn spec directly under dir, sorted by name.
// It errors on an empty corpus: a scenario gate that silently checks
// nothing is worse than no gate.
func LoadDir(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.scn"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.scn specs in %s", dir)
	}
	sort.Strings(paths)
	specs := make([]*Spec, 0, len(paths))
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}
