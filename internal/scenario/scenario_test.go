package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/workload"
)

const fullSpec = `# every directive the grammar knows
scenario kitchen-sink
clients 4
fetches 6
fault 0.02
churn 3
maxretries 12
timeout 90s
decider dynamic
deadline standard
budget 25
link rate 180000 latency 5ms jitter 0.1
cluster nodes 2 replicas 1 hotk 8
peerlink rate 240000 latency 1ms jitter 0.05
linkat 200ms rate 600000
linkat 1s rate 180000
powersave 400ms 100ms
file notes.txt class mail size 4096
file blob.bin ratio 2.5 size 20000
expect minok 0.95
expect maxvirtual 10m
expect maxattempts 20
expect maxjoulespermb 500
`

func TestParseFullSpec(t *testing.T) {
	s, err := Parse([]byte(fullSpec))
	if err != nil {
		t.Fatal(err)
	}
	want := &Spec{
		Name: "kitchen-sink", Clients: 4, Fetches: 6, Fault: 0.02, Churn: 3,
		MaxRetries: 12, Timeout: 90 * time.Second,
		Decider: "dynamic", Deadline: "standard", Budget: 25,
		Link:      Link{Rate: 180000, Latency: 5 * time.Millisecond, Jitter: 0.1},
		Cluster:   ClusterSpec{Nodes: 2, Replicas: 1, HotK: 8},
		PeerLink:  Link{Rate: 240000, Latency: time.Millisecond, Jitter: 0.05},
		LinkAt:    []RateChange{{200 * time.Millisecond, 600000}, {time.Second, 180000}},
		PowerSave: []Window{{400 * time.Millisecond, 100 * time.Millisecond}},
		Files: []FileSpec{
			{Name: "notes.txt", Class: workload.ClassMail, Size: 4096},
			{Name: "blob.bin", Ratio: 2.5, Size: 20000},
		},
		Expect: Expect{MinOK: 0.95, MaxVirtual: 10 * time.Minute, MaxAttempts: 20, MaxJoulesPerMB: 500},
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("parsed\n%#v\nwant\n%#v", s, want)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("full spec invalid: %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, src := range []string{
		fullSpec,
		"scenario tiny\n",
		"scenario x\nfile a.bin ratio 1.5 size 10\n# comment\nclients 3\n",
		"scenario neg\nclients -7\nfault -0.5\ntimeout -3s\n", // invalid but parseable
	} {
		s, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		again, err := Parse(Format(s))
		if err != nil {
			t.Fatalf("reparse of %q: %v", Format(s), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Errorf("round trip changed spec:\n%#v\n%#v", s, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"frobnicate 3\n", "unknown directive"},
		{"clients\n", "wants 1 argument"},
		{"clients three\n", "invalid syntax"},
		{"fault NaN\n", "non-finite"},
		{"fault +Inf\n", "non-finite"},
		{"timeout 5\n", "missing unit"},
		{"link rate\n", "dangling key"},
		{"link speed 3\n", "unknown key"},
		{"budget much\n", "invalid syntax"},
		{"peerlink rate x\n", "invalid syntax"},
		{"linkat 1s speed 3\n", "linkat DUR rate F"},
		{"file\n", "file needs a name"},
		{"file x class warez size 9\n", "unknown content class"},
		{"expect maxfun 3\n", "unknown expect bound"},
	} {
		if _, err := Parse([]byte(tc.src)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Spec { return &Spec{Name: "ok", Clients: 2, Fetches: 2} }
	for name, breaks := range map[string]func(*Spec){
		"no name":         func(s *Spec) { s.Name = "" },
		"bad name":        func(s *Spec) { s.Name = "No Spaces Allowed" },
		"clients cap":     func(s *Spec) { s.Clients = maxClients + 1 },
		"fetch budget":    func(s *Spec) { s.Clients, s.Fetches = 1000, 1000 },
		"fault cap":       func(s *Spec) { s.Fault = 0.5 },
		"link rate low":   func(s *Spec) { s.Link.Rate = 10 },
		"jitter range":    func(s *Spec) { s.Link = Link{Rate: 1e6, Jitter: 2} },
		"linkat order":    func(s *Spec) { s.LinkAt = []RateChange{{time.Second, 1e6}, {time.Second, 2e6}} },
		"linkat rate":     func(s *Spec) { s.LinkAt = []RateChange{{time.Second, 0}} },
		"ps overlap":      func(s *Spec) { s.PowerSave = []Window{{0, time.Second}, {500 * time.Millisecond, time.Second}} },
		"ps empty":        func(s *Spec) { s.PowerSave = []Window{{time.Second, 0}} },
		"file both":       func(s *Spec) { s.Files = []FileSpec{{Name: "x", Class: workload.ClassXML, Ratio: 2, Size: 10}} },
		"file neither":    func(s *Spec) { s.Files = []FileSpec{{Name: "x", Size: 10}} },
		"file dup":        func(s *Spec) { s.Files = []FileSpec{{Name: "x", Ratio: 2, Size: 10}, {Name: "x", Ratio: 3, Size: 10}} },
		"file size":       func(s *Spec) { s.Files = []FileSpec{{Name: "x", Ratio: 2, Size: maxFileSize + 1}} },
		"ratio range":     func(s *Spec) { s.Files = []FileSpec{{Name: "x", Ratio: 40, Size: 10}} },
		"minok range":     func(s *Spec) { s.Expect.MinOK = 1.5 },
		"sched budget":    func(s *Spec) { s.LinkAt = make([]RateChange, maxSchedEvents+1) },
		"neg maxretries":  func(s *Spec) { s.MaxRetries = -1 },
		"timeout horizon": func(s *Spec) { s.Timeout = 2 * time.Hour },
		"bad decider":     func(s *Spec) { s.Decider = "oracle" },
		"bad deadline":    func(s *Spec) { s.Deadline = "whenever" },
		"budget range":    func(s *Spec) { s.Budget = maxBudgetJ + 1 },
		"neg budget":      func(s *Spec) { s.Budget = -1 },
		"neg fetches":     func(s *Spec) { s.Fetches = -1 },
		"churn range":     func(s *Spec) { s.Churn = 20000 },
		"link latency":    func(s *Spec) { s.Link = Link{Rate: 1e6, Latency: time.Minute} },
		"nodes cap":       func(s *Spec) { s.Cluster.Nodes = maxNodes + 1 },
		"orphan hotk":     func(s *Spec) { s.Cluster.HotK = 8 },
		"replicas range":  func(s *Spec) { s.Cluster = ClusterSpec{Nodes: 2, Replicas: 2} },
		"hotk range":      func(s *Spec) { s.Cluster = ClusterSpec{Nodes: 2, HotK: 5000} },
		"orphan peerlink": func(s *Spec) { s.PeerLink = Link{Rate: 1e6} },
		"peerlink rate":   func(s *Spec) { s.Cluster.Nodes = 2; s.PeerLink = Link{Rate: 10} },
		"peerlink lat":    func(s *Spec) { s.Cluster.Nodes = 2; s.PeerLink = Link{Rate: 1e6, Latency: time.Minute} },
		"peerlink jitter": func(s *Spec) { s.Cluster.Nodes = 2; s.PeerLink = Link{Rate: 1e6, Jitter: 2} },
		"linkat horizon":  func(s *Spec) { s.LinkAt = []RateChange{{maxHorizon + time.Second, 1e6}} },
		"file budget":     func(s *Spec) { s.Files = make([]FileSpec, maxFiles+1) },
		"file name":       func(s *Spec) { s.Files = []FileSpec{{Name: "bad name", Ratio: 2, Size: 10}} },
		"maxvirtual cap":  func(s *Spec) { s.Expect.MaxVirtual = maxHorizon + time.Hour },
		"maxattempts cap": func(s *Spec) { s.Expect.MaxAttempts = 2000 },
		"neg joules":      func(s *Spec) { s.Expect.MaxJoulesPerMB = -1 },
	} {
		s := base()
		breaks(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %#v", name, s)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

// TestCompileSchedule: the boundary walk must mask linkat rates to zero
// inside power-save windows, restore the scheduled (not base) rate on
// resume, and merge boundaries that do not change the rate.
func TestCompileSchedule(t *testing.T) {
	got := compileSchedule(1000,
		[]RateChange{{200 * time.Millisecond, 500}, {600 * time.Millisecond, 2000}},
		[]Window{{400 * time.Millisecond, 300 * time.Millisecond}},
	)
	want := []simnet.Phase{
		{Start: 200 * time.Millisecond, Rate: 500},
		{Start: 400 * time.Millisecond, Rate: 0},
		// 600ms linkat lands inside the window: masked, no phase.
		{Start: 700 * time.Millisecond, Rate: 2000}, // resume at scheduled rate
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compiled %v, want %v", got, want)
	}
	if compileSchedule(1000, nil, nil) != nil {
		t.Fatal("empty schedule should compile to nil")
	}
	// A linkat at the base rate produces no phase at all.
	if got := compileSchedule(1000, []RateChange{{time.Second, 1000}}, nil); got != nil {
		t.Fatalf("no-op linkat compiled to %v", got)
	}
}

// TestCompile: a full spec lowers into the harness scenario it names.
func TestCompile(t *testing.T) {
	s, err := Parse([]byte(fullSpec))
	if err != nil {
		t.Fatal(err)
	}
	sc := s.Compile(42)
	if sc.Name != "kitchen-sink" || sc.Seed != 42 || sc.Clients != 4 || sc.FetchesPerClient != 6 {
		t.Fatalf("compiled shape wrong: %+v", sc)
	}
	if sc.Link.BytesPerSec != 180000 || sc.Link.Latency != 5*time.Millisecond {
		t.Fatalf("compiled link wrong: %+v", sc.Link)
	}
	if len(sc.Corpus) != 2 || sc.Corpus[0].Class != workload.ClassMail || sc.Corpus[1].Ratio != 2.5 {
		t.Fatalf("compiled corpus wrong: %+v", sc.Corpus)
	}
	if sc.Nodes != 2 || sc.Replicas != 1 || sc.HotK != 8 || sc.PeerLink.BytesPerSec != 240000 {
		t.Fatalf("compiled cluster wrong: nodes=%d replicas=%d hotk=%d peerlink=%+v",
			sc.Nodes, sc.Replicas, sc.HotK, sc.PeerLink)
	}
	if sc.Decider != "dynamic" || sc.DeadlineClass != deadlineTokens["standard"] || sc.BudgetJ != 25 {
		t.Fatalf("compiled decider wrong: decider=%q class=%d budget=%g",
			sc.Decider, sc.DeadlineClass, sc.BudgetJ)
	}
	if len(sc.Schedule) == 0 {
		t.Fatal("schedule did not compile")
	}
	b := s.Bounds()
	if b.MinOKFrac != 0.95 || b.MaxAttempts != 20 {
		t.Fatalf("bounds wrong: %+v", b)
	}
}

// TestSpecRunBounds: Run folds breached expect bounds into Violations.
// An impossible virtual-time budget must trip; the structural oracles
// must stay green.
func TestSpecRunBounds(t *testing.T) {
	s := &Spec{Name: "impossible", Clients: 2, Fetches: 2,
		Files:  []FileSpec{{Name: "a.txt", Class: workload.ClassMail, Size: 2000}},
		Expect: Expect{MaxVirtual: time.Nanosecond}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.HasPrefix(v, "bounds:") {
			found = true
		} else {
			t.Errorf("structural oracle violation: %s", v)
		}
	}
	if !found {
		t.Fatal("1ns budget did not trip the maxvirtual bound")
	}
}

// TestClassTokens: the grammar must name every Table 3 content class
// exactly once, both directions.
func TestClassTokens(t *testing.T) {
	for c := workload.ClassXML; c <= workload.ClassScript; c++ {
		tok, ok := classToken[c]
		if !ok {
			t.Errorf("class %v has no grammar token", c)
			continue
		}
		if classTokens[tok] != c {
			t.Errorf("token %q maps to %v, not %v", tok, classTokens[tok], c)
		}
	}
	if len(classTokens) != int(workload.ClassScript-workload.ClassXML)+1 {
		t.Errorf("%d tokens for %d classes", len(classTokens), int(workload.ClassScript-workload.ClassXML)+1)
	}
}
