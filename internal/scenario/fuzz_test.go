package scenario

import (
	"reflect"
	"testing"
)

// FuzzScenarioSpec pins the parser's two safety contracts: it never
// panics on arbitrary bytes (specs are hand-edited files; a typo must
// produce a line-numbered error, not a crash), and every spec it does
// accept survives Parse(Format(spec)) == spec exactly, so rewriting a
// spec file is always lossless. Validate is driven too — it must be
// total over anything Parse accepts. The seed corpus under
// testdata/fuzz covers every directive, the failure shapes the unit
// tests pin, and grammar near-misses.
func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(fullSpec))
	f.Add([]byte("scenario x\n"))
	f.Add([]byte(""))
	f.Add([]byte("# only a comment\n\n"))
	f.Add([]byte("clients 5\nclients 6\n"))
	f.Add([]byte("file a ratio 2 size 100 ratio 3\n"))
	f.Add([]byte("linkat 1s rate 1e6\npowersave 2s 500ms\n"))
	f.Add([]byte("expect minok 0.5\nexpect minok 2\n"))
	f.Add([]byte("timeout 2562047h47m16.854775807s\n"))
	f.Add([]byte("fault 1e-300\nlink rate 1e308 latency 1ns jitter 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		_ = s.Validate() // must be total, never panic
		out := Format(s)
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("Format produced unparseable spec: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip changed spec:\nfirst:  %#v\nsecond: %#v\nformatted:\n%s", s, again, out)
		}
	})
}
