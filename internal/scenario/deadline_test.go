package scenario

import (
	"testing"

	"repro/internal/decider"
)

// TestDeadlineTokens pins the grammar's deadline vocabulary to
// internal/decider's: every token must parse to the class whose wire
// byte the spec compiles to, and every class must spell itself as a
// token the grammar accepts. A drift here would silently reinterpret
// committed specs.
func TestDeadlineTokens(t *testing.T) {
	for tok, b := range deadlineTokens {
		c, ok := decider.ParseClass(tok)
		if !ok {
			t.Errorf("grammar token %q unknown to decider.ParseClass", tok)
			continue
		}
		if uint8(c) != b {
			t.Errorf("token %q: grammar byte %d, decider class %d", tok, b, uint8(c))
		}
	}
	for c := decider.ClassNone; c <= decider.ClassStrict; c++ {
		b, ok := deadlineTokens[c.String()]
		if !ok {
			t.Errorf("decider class %d spells %q, not a grammar token", uint8(c), c.String())
			continue
		}
		if b != uint8(c) {
			t.Errorf("class %v: grammar maps %q to byte %d, want %d", c, c.String(), b, uint8(c))
		}
	}
	if len(deadlineTokens) != 4 {
		t.Errorf("deadlineTokens has %d entries, want 4", len(deadlineTokens))
	}
}
