// Package fit provides the least-squares machinery the paper uses to
// calibrate its energy model: simple linear regression for download energy
// (E = m·s + cs, Figure 8b), multiple linear regression for decompression
// time (td = a·s + b·sc + c, Figure 8a), and the error statistics the paper
// reports (average relative error, maximum error, R²).
package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are (near-)singular,
// e.g. when predictors are collinear or there are too few points.
var ErrSingular = errors.New("fit: singular system")

// Linear fits y = slope*x + intercept by ordinary least squares.
func Linear(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("fit: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, 0, fmt.Errorf("fit: need at least 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, 0, ErrSingular
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// Multiple fits y = coef[0]*X[i][0] + ... + coef[k-1]*X[i][k-1] + coef[k]
// (an intercept is appended automatically) by solving the normal equations.
func Multiple(x [][]float64, y []float64) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("fit: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, errors.New("fit: no data")
	}
	k := len(x[0])
	dim := k + 1 // + intercept
	if len(x) < dim {
		return nil, fmt.Errorf("fit: %d points cannot determine %d coefficients", len(x), dim)
	}
	// Build X'X and X'y with the intercept column folded in.
	xtx := make([][]float64, dim)
	for i := range xtx {
		xtx[i] = make([]float64, dim)
	}
	xty := make([]float64, dim)
	row := make([]float64, dim)
	for i := range x {
		if len(x[i]) != k {
			return nil, fmt.Errorf("fit: ragged row %d", i)
		}
		copy(row, x[i])
		row[k] = 1
		for a := 0; a < dim; a++ {
			for b := 0; b < dim; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * y[i]
		}
	}
	return solve(xtx, xty)
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// the inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := m[i][n]
		for j := i + 1; j < n; j++ {
			v -= m[i][j] * out[j]
		}
		out[i] = v / m[i][i]
	}
	return out, nil
}

// Stats holds the goodness-of-fit figures the paper reports.
type Stats struct {
	// R2 is the coefficient of determination.
	R2 float64
	// AvgRelErr is the mean of |pred-obs|/obs over points with obs != 0,
	// the paper's "average error rate".
	AvgRelErr float64
	// MaxRelErr is the largest |pred-obs|/obs.
	MaxRelErr float64
}

// Evaluate computes fit statistics for predictions against observations.
func Evaluate(pred, obs []float64) (Stats, error) {
	if len(pred) != len(obs) {
		return Stats{}, fmt.Errorf("fit: length mismatch %d vs %d", len(pred), len(obs))
	}
	if len(obs) == 0 {
		return Stats{}, errors.New("fit: no data")
	}
	var mean float64
	for _, v := range obs {
		mean += v
	}
	mean /= float64(len(obs))
	var ssRes, ssTot float64
	var sumRel, maxRel float64
	nRel := 0
	for i := range obs {
		d := pred[i] - obs[i]
		ssRes += d * d
		t := obs[i] - mean
		ssTot += t * t
		if obs[i] != 0 {
			rel := math.Abs(d / obs[i])
			sumRel += rel
			if rel > maxRel {
				maxRel = rel
			}
			nRel++
		}
	}
	s := Stats{MaxRelErr: maxRel}
	if nRel > 0 {
		s.AvgRelErr = sumRel / float64(nRel)
	}
	if ssTot > 0 {
		s.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		s.R2 = 1
	}
	return s, nil
}

// RelErrors returns the paper's per-point error rate series:
// (calculated - measured) / measured.
func RelErrors(pred, obs []float64) ([]float64, error) {
	if len(pred) != len(obs) {
		return nil, fmt.Errorf("fit: length mismatch %d vs %d", len(pred), len(obs))
	}
	out := make([]float64, len(obs))
	for i := range obs {
		if obs[i] == 0 {
			return nil, fmt.Errorf("fit: zero observation at %d", i)
		}
		out[i] = (pred[i] - obs[i]) / obs[i]
	}
	return out, nil
}
