package fit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3.519*v + 0.012 // the paper's download-energy line
	}
	slope, icept, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 3.519, 1e-9) || !almostEqual(icept, 0.012, 1e-9) {
		t.Errorf("got %v, %v", slope, icept)
	}
}

func TestLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var x, y []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 10
		x = append(x, v)
		y = append(y, 2.5*v+1.0+rng.NormFloat64()*0.01)
	}
	slope, icept, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 2.5, 0.01) || !almostEqual(icept, 1.0, 0.01) {
		t.Errorf("got %v, %v", slope, icept)
	}
}

func TestLinearDegenerate(t *testing.T) {
	if _, _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := Linear([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("constant x should be singular, got %v", err)
	}
	if _, _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMultipleExact(t *testing.T) {
	// The paper's decompression-time model: td = 0.161 s + 0.161 sc + 0.004.
	rng := rand.New(rand.NewSource(52))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		s := rng.Float64() * 10
		sc := s / (1 + rng.Float64()*20)
		x = append(x, []float64{s, sc})
		y = append(y, 0.161*s+0.161*sc+0.004)
	}
	coef, err := Multiple(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.161, 0.161, 0.004}
	for i := range want {
		if !almostEqual(coef[i], want[i], 1e-6) {
			t.Errorf("coef[%d] = %v, want %v", i, coef[i], want[i])
		}
	}
}

func TestMultipleSingular(t *testing.T) {
	// Perfectly collinear predictors.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := Multiple(x, y); !errors.Is(err, ErrSingular) {
		t.Errorf("collinear predictors should be singular, got %v", err)
	}
}

func TestMultipleValidation(t *testing.T) {
	if _, err := Multiple(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Multiple([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := Multiple([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestEvaluatePerfectFit(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	s, err := Evaluate(obs, obs)
	if err != nil {
		t.Fatal(err)
	}
	if s.R2 != 1 || s.AvgRelErr != 0 || s.MaxRelErr != 0 {
		t.Errorf("perfect fit stats: %+v", s)
	}
}

func TestEvaluateKnownErrors(t *testing.T) {
	obs := []float64{10, 10}
	pred := []float64{11, 9}
	s, err := Evaluate(pred, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.AvgRelErr, 0.1, 1e-12) || !almostEqual(s.MaxRelErr, 0.1, 1e-12) {
		t.Errorf("stats: %+v", s)
	}
}

func TestRelErrors(t *testing.T) {
	out, err := RelErrors([]float64{11, 8}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 0.1, 1e-12) || !almostEqual(out[1], -0.2, 1e-12) {
		t.Errorf("got %v", out)
	}
	if _, err := RelErrors([]float64{1}, []float64{0}); err == nil {
		t.Error("zero observation accepted")
	}
}

// TestQuickLinearRecovery: for random non-degenerate lines, the fit
// recovers slope and intercept.
func TestQuickLinearRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := rng.Float64()*20 - 10
		icept := rng.Float64()*4 - 2
		var x, y []float64
		for i := 0; i < 50; i++ {
			v := rng.Float64() * 100
			x = append(x, v)
			y = append(y, slope*v+icept)
		}
		gs, gi, err := Linear(x, y)
		return err == nil && almostEqual(gs, slope, 1e-6) && almostEqual(gi, icept, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResidualOrthogonality: OLS residuals are orthogonal to the
// predictor and sum to zero (normal-equation invariant).
func TestQuickResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var x, y []float64
		for i := 0; i < 40; i++ {
			x = append(x, rng.Float64()*10)
			y = append(y, rng.Float64()*10)
		}
		slope, icept, err := Linear(x, y)
		if errors.Is(err, ErrSingular) {
			return true
		}
		if err != nil {
			return false
		}
		var sumR, sumRX float64
		for i := range x {
			r := y[i] - (slope*x[i] + icept)
			sumR += r
			sumRX += r * x[i]
		}
		return math.Abs(sumR) < 1e-6 && math.Abs(sumRX) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
