package lz77

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func tokenize(t testing.TB, data []byte, level int) []Token {
	t.Helper()
	m, err := NewMatcher(level)
	if err != nil {
		t.Fatal(err)
	}
	var toks []Token
	m.Tokenize(data, func(tok Token) { toks = append(toks, tok) })
	return toks
}

func roundTrip(t *testing.T, data []byte, level int) []Token {
	t.Helper()
	toks := tokenize(t, data, level)
	got, err := Expand(nil, toks)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(data))
	}
	return toks
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, nil, 9)
}

func TestRoundTripTiny(t *testing.T) {
	for _, s := range []string{"a", "ab", "abc", "aaaa", "abab"} {
		for level := 1; level <= 9; level++ {
			roundTrip(t, []byte(s), level)
		}
	}
}

func TestRoundTripText(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 200))
	for level := 1; level <= 9; level++ {
		toks := roundTrip(t, data, level)
		if len(toks) >= len(data) {
			t.Errorf("level %d: repetitive text produced no matches (%d tokens for %d bytes)",
				level, len(toks), len(data))
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 100*1024)
	rng.Read(data)
	for _, level := range []int{1, 6, 9} {
		roundTrip(t, data, level)
	}
}

func TestRoundTripLongRun(t *testing.T) {
	data := bytes.Repeat([]byte{0}, 300*1024)
	toks := roundTrip(t, data, 9)
	// A long zero run must compress to very few tokens (RLE via dist=1).
	if len(toks) > len(data)/100 {
		t.Errorf("zero run: %d tokens for %d bytes", len(toks), len(data))
	}
}

func TestRoundTripBeyondWindow(t *testing.T) {
	// Repeat a phrase with a gap larger than the window, so matches must be
	// found only within 32 KB.
	phrase := []byte("wireless energy measurement on the handheld device ")
	var data []byte
	rng := rand.New(rand.NewSource(8))
	filler := make([]byte, WindowSize+1000)
	rng.Read(filler)
	data = append(data, phrase...)
	data = append(data, filler...)
	data = append(data, phrase...)
	toks := roundTrip(t, data, 9)
	for _, tok := range toks {
		if !tok.IsLiteral() && int(tok.Dist) > MaxDist {
			t.Fatalf("distance %d exceeds window", tok.Dist)
		}
	}
}

func TestTokensCoverInputExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(5000)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(8)) // compressible
		}
		toks := tokenize(t, data, 1+rng.Intn(9))
		total := 0
		for _, tok := range toks {
			total += tok.Advance()
		}
		if total != n {
			t.Fatalf("tokens cover %d bytes, want %d", total, n)
		}
	}
}

func TestMatchBounds(t *testing.T) {
	data := []byte(strings.Repeat("abcdefgh", 10000))
	toks := tokenize(t, data, 9)
	for _, tok := range toks {
		if tok.IsLiteral() {
			continue
		}
		if int(tok.Len) < MinMatch || int(tok.Len) > MaxMatch {
			t.Fatalf("match length %d out of bounds", tok.Len)
		}
		if int(tok.Dist) < 1 || int(tok.Dist) > MaxDist {
			t.Fatalf("match distance %d out of bounds", tok.Dist)
		}
	}
}

func TestHigherLevelNeverWorseTokensOnText(t *testing.T) {
	data := []byte(strings.Repeat("energy model for compressed downloading over wireless lan ", 500))
	n1 := len(tokenize(t, data, 1))
	n9 := len(tokenize(t, data, 9))
	if n9 > n1 {
		t.Errorf("level 9 produced more tokens (%d) than level 1 (%d)", n9, n1)
	}
}

func TestLevelConfigRange(t *testing.T) {
	for _, bad := range []int{0, 10, -3} {
		if _, err := LevelConfig(bad); err == nil {
			t.Errorf("LevelConfig(%d) should fail", bad)
		}
		if _, err := NewMatcher(bad); err == nil {
			t.Errorf("NewMatcher(%d) should fail", bad)
		}
	}
	for level := 1; level <= 9; level++ {
		if _, err := LevelConfig(level); err != nil {
			t.Errorf("LevelConfig(%d): %v", level, err)
		}
	}
}

func TestExpandRejectsBadDistance(t *testing.T) {
	if _, err := Expand(nil, []Token{Match(3, 1)}); err == nil {
		t.Fatal("expected error for distance beyond output")
	}
	if _, err := Expand([]byte{1, 2}, []Token{Match(3, 5)}); err == nil {
		t.Fatal("expected error for distance beyond output")
	}
}

func TestExpandOverlappingCopy(t *testing.T) {
	// dist < len is the classic overlapping RLE copy.
	out, err := Expand([]byte{'x'}, []Token{Match(10, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "xxxxxxxxxxx" {
		t.Fatalf("got %q", out)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	m, err := NewMatcher(6)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4000)
		data := make([]byte, n)
		alpha := 1 + rng.Intn(255)
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		var toks []Token
		m.Tokenize(data, func(tok Token) { toks = append(toks, tok) })
		got, err := Expand(nil, toks)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatcherReusableAcrossBuffers(t *testing.T) {
	m, err := NewMatcher(9)
	if err != nil {
		t.Fatal(err)
	}
	a := []byte(strings.Repeat("first buffer content ", 100))
	b := []byte(strings.Repeat("second, different content ", 100))
	for _, data := range [][]byte{a, b, a} {
		var toks []Token
		m.Tokenize(data, func(tok Token) { toks = append(toks, tok) })
		got, err := Expand(nil, toks)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("reuse round-trip failed: %v", err)
		}
	}
}

func BenchmarkTokenizeLevel1(b *testing.B) { benchTokenize(b, 1) }
func BenchmarkTokenizeLevel6(b *testing.B) { benchTokenize(b, 6) }
func BenchmarkTokenizeLevel9(b *testing.B) { benchTokenize(b, 9) }

func benchTokenize(b *testing.B, level int) {
	data := []byte(strings.Repeat("a benchmark corpus line with moderate redundancy 0123456789\n", 2000))
	m, err := NewMatcher(level)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tokenize(data, func(Token) {})
	}
}
