// Package lz77 implements the sliding-window string matcher at the heart of
// the LZ77/DEFLATE family: a 32 KB window, hash-chain candidate search and
// lazy matching, with the level-1..9 effort configuration popularised by
// zlib. The paper's winning scheme (gzip 1.2.4, level 9) is built on exactly
// this matcher.
package lz77

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
)

// Matching parameters fixed by the DEFLATE format.
const (
	MinMatch   = 3
	MaxMatch   = 258
	WindowSize = 32 * 1024
	MaxDist    = WindowSize
)

const (
	hashBits = 15
	hashSize = 1 << hashBits
	hashMask = hashSize - 1
)

// Token is a single LZ77 output symbol: either a literal byte (Len == 0) or
// a back-reference of Len bytes at distance Dist.
type Token struct {
	Len  uint16
	Dist uint16
	Lit  byte
}

// Literal constructs a literal token.
func Literal(b byte) Token { return Token{Lit: b} }

// Match constructs a back-reference token.
func Match(length, dist int) Token {
	return Token{Len: uint16(length), Dist: uint16(dist)}
}

// IsLiteral reports whether the token is a literal byte.
func (t Token) IsLiteral() bool { return t.Len == 0 }

// Advance reports how many input bytes the token covers.
func (t Token) Advance() int {
	if t.Len == 0 {
		return 1
	}
	return int(t.Len)
}

// Config controls matcher effort, mirroring zlib's configuration_table.
type Config struct {
	// GoodLength: once a match of at least this length is found, reduce
	// chain search effort for the lazy candidate.
	GoodLength int
	// MaxLazy: do not attempt lazy matching when the current match is at
	// least this long.
	MaxLazy int
	// NiceLength: stop searching the chain when a match of this length is
	// found.
	NiceLength int
	// MaxChain: maximum hash-chain positions examined per match attempt.
	MaxChain int
	// Lazy enables one-byte-deferred (lazy) matching.
	Lazy bool
}

// LevelConfig returns the effort configuration for compression levels 1-9.
// The table mirrors zlib 1.1.3, the library the paper measured.
func LevelConfig(level int) (Config, error) {
	switch level {
	case 1:
		return Config{GoodLength: 4, MaxLazy: 4, NiceLength: 8, MaxChain: 4}, nil
	case 2:
		return Config{GoodLength: 4, MaxLazy: 5, NiceLength: 16, MaxChain: 8}, nil
	case 3:
		return Config{GoodLength: 4, MaxLazy: 6, NiceLength: 32, MaxChain: 32}, nil
	case 4:
		return Config{GoodLength: 4, MaxLazy: 4, NiceLength: 16, MaxChain: 16, Lazy: true}, nil
	case 5:
		return Config{GoodLength: 8, MaxLazy: 16, NiceLength: 32, MaxChain: 32, Lazy: true}, nil
	case 6:
		return Config{GoodLength: 8, MaxLazy: 16, NiceLength: 128, MaxChain: 128, Lazy: true}, nil
	case 7:
		return Config{GoodLength: 8, MaxLazy: 32, NiceLength: 128, MaxChain: 256, Lazy: true}, nil
	case 8:
		return Config{GoodLength: 32, MaxLazy: 128, NiceLength: 258, MaxChain: 1024, Lazy: true}, nil
	case 9:
		return Config{GoodLength: 32, MaxLazy: 258, NiceLength: 258, MaxChain: 4096, Lazy: true}, nil
	default:
		return Config{}, fmt.Errorf("lz77: level %d out of range 1..9", level)
	}
}

// Matcher tokenises input using hash-chain search over a sliding window.
// A Matcher is reusable via Reset and not safe for concurrent use.
type Matcher struct {
	cfg   Config
	level int
	head  []int32
	prev  []int32
}

// NewMatcher returns a matcher at the given compression level.
func NewMatcher(level int) (*Matcher, error) {
	cfg, err := LevelConfig(level)
	if err != nil {
		return nil, err
	}
	m := &Matcher{
		cfg:   cfg,
		level: level,
		head:  make([]int32, hashSize),
		prev:  make([]int32, WindowSize),
	}
	m.reset()
	return m, nil
}

// matcherPools recycles matchers per level: the head/prev arrays are 256 KB
// of state that the compress-on-demand hot path would otherwise allocate
// (and fault in) on every call.
var matcherPools [9]sync.Pool

// GetMatcher returns a pooled matcher for the level, allocating one only
// when the pool is empty. Pair with PutMatcher.
func GetMatcher(level int) (*Matcher, error) {
	if level < 1 || level > 9 {
		return nil, fmt.Errorf("lz77: level %d out of range 1..9", level)
	}
	if v := matcherPools[level-1].Get(); v != nil {
		return v.(*Matcher), nil
	}
	return NewMatcher(level)
}

// PutMatcher recycles a matcher obtained from GetMatcher (or NewMatcher).
// The matcher must not be used after being put back.
func PutMatcher(m *Matcher) {
	if m == nil {
		return
	}
	matcherPools[m.level-1].Put(m)
}

func (m *Matcher) reset() {
	for i := range m.head {
		m.head[i] = -1
	}
	for i := range m.prev {
		m.prev[i] = -1
	}
}

func hash4(data []byte, i int) uint32 {
	// Multiplicative hash over 4 bytes; good dispersion for text and binary.
	v := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
	return (v * 2654435761) >> (32 - hashBits) & hashMask
}

func hash3(data []byte, i int) uint32 {
	v := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16
	return (v * 506832829) >> (32 - hashBits) & hashMask
}

func (m *Matcher) hashAt(data []byte, i int) uint32 {
	if i+4 <= len(data) {
		return hash4(data, i)
	}
	return hash3(data, i)
}

func (m *Matcher) insert(data []byte, i int) {
	h := m.hashAt(data, i)
	m.prev[i&(WindowSize-1)] = m.head[h]
	m.head[h] = int32(i)
}

// findMatch searches the hash chain for the longest match at position i,
// requiring it to beat prevLen. It returns length 0 when nothing longer is
// found.
func (m *Matcher) findMatch(data []byte, i, prevLen, maxChain int) (length, dist int) {
	limit := i - MaxDist
	if limit < 0 {
		limit = 0
	}
	maxLen := len(data) - i
	if maxLen > MaxMatch {
		maxLen = MaxMatch
	}
	if maxLen < MinMatch {
		return 0, 0
	}
	nice := m.cfg.NiceLength
	if nice > maxLen {
		nice = maxLen
	}
	best := prevLen
	bestDist := 0
	if best >= maxLen {
		// Nothing at this position can beat the pending match; every
		// candidate would fail the end-bytes quick reject below.
		return 0, 0
	}
	// Quick-reject pair: a candidate can only beat the current best if it
	// matches through byte best, so compare the two bytes ending there in
	// one load. Hoisted out of the chain walk and refreshed when best
	// improves (best < maxLen holds throughout, keeping i+best in bounds).
	// All chain entries are positions this Tokenize call inserted before
	// reaching i, so every candidate j satisfies j < i and the loads below
	// stay in bounds.
	var scanEnd uint16
	if best >= 1 {
		scanEnd = binary.LittleEndian.Uint16(data[i+best-1:])
	}
	// The fixed-size array views let the compiler drop bounds checks on the
	// masked chain loads in the hot walk.
	prev := (*[WindowSize]int32)(m.prev)
	cand := m.head[m.hashAt(data, i)]
	for chain := 0; chain < maxChain && cand >= int32(limit); chain++ {
		j := int(cand)
		// Quick reject: the two bytes closing the would-be match.
		if best >= 1 && binary.LittleEndian.Uint16(data[j+best-1:]) != scanEnd {
			cand = prev[j&(WindowSize-1)]
			continue
		}
		l := matchLen(data, j, i, maxLen)
		if l > best {
			best = l
			bestDist = i - j
			if l >= nice {
				break
			}
			scanEnd = binary.LittleEndian.Uint16(data[i+best-1:])
		}
		cand = prev[j&(WindowSize-1)]
	}
	if bestDist == 0 || best < MinMatch {
		return 0, 0
	}
	return best, bestDist
}

// matchLen compares 8 bytes per step; j < i keeps every load inside data
// because i+maxLen <= len(data).
func matchLen(data []byte, j, i, maxLen int) int {
	n := 0
	for n+8 <= maxLen {
		x := binary.LittleEndian.Uint64(data[j+n:]) ^ binary.LittleEndian.Uint64(data[i+n:])
		if x != 0 {
			return n + bits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for n < maxLen && data[j+n] == data[i+n] {
		n++
	}
	return n
}

// Tokenize scans data and emits LZ77 tokens through emit. The token stream
// exactly covers data: the sum of Advance() over all tokens equals
// len(data). Reset state is cleared per call, so each call tokenises an
// independent buffer (one compression "member").
func (m *Matcher) Tokenize(data []byte, emit func(Token)) {
	m.reset()
	n := len(data)
	if n == 0 {
		return
	}
	i := 0
	// Pending lazy literal state.
	prevLen, prevDist := 0, 0
	havePrev := false
	for i < n {
		if n-i < MinMatch {
			if havePrev {
				emit(Literal(data[i-1]))
				havePrev = false
			}
			for ; i < n; i++ {
				emit(Literal(data[i]))
			}
			break
		}
		if havePrev && prevLen >= m.cfg.MaxLazy {
			// The pending match is already long enough that the lazy
			// comparison below could never prefer a new one (prevLen >=
			// MaxLazy fails its guard); skip the search entirely, as zlib
			// does. Emitting here is the same decision the comparison would
			// reach.
			emit(Match(prevLen, prevDist))
			end := i - 1 + prevLen
			for k := i; k < end && k+MinMatch <= n; k++ {
				m.insert(data, k)
			}
			i = end
			havePrev = false
			continue
		}
		chain := m.cfg.MaxChain
		searchFloor := 0
		if havePrev {
			if prevLen >= m.cfg.GoodLength {
				chain >>= 2
			}
			// zlib's prev_length pruning: the lazy comparison only cares
			// whether this position beats the pending match, so the search
			// may reject anything not longer than prevLen. findMatch then
			// returns 0 when nothing beats it, which leaves the curLen >
			// prevLen decision unchanged.
			searchFloor = prevLen
		}
		curLen, curDist := m.findMatch(data, i, searchFloor, chain)

		if !m.cfg.Lazy {
			if curLen >= MinMatch {
				emit(Match(curLen, curDist))
				// Insert positions covered by the match (bounded for speed
				// at low levels, as zlib does for short inserts).
				end := i + curLen
				m.insert(data, i)
				for k := i + 1; k < end && k+MinMatch <= n; k++ {
					m.insert(data, k)
				}
				i = end
			} else {
				emit(Literal(data[i]))
				m.insert(data, i)
				i++
			}
			continue
		}

		// Lazy matching: compare this position's match with the previous
		// position's pending match.
		if havePrev {
			if curLen > prevLen && prevLen < m.cfg.MaxLazy {
				// The new match is better: the previous byte becomes a
				// literal and the new match stays pending.
				emit(Literal(data[i-1]))
				prevLen, prevDist = curLen, curDist
				m.insert(data, i)
				i++
				continue
			}
			// Previous match wins; emit it anchored at i-1.
			emit(Match(prevLen, prevDist))
			end := i - 1 + prevLen
			for k := i; k < end && k+MinMatch <= n; k++ {
				m.insert(data, k)
			}
			i = end
			havePrev = false
			continue
		}
		if curLen >= MinMatch && curLen < m.cfg.MaxLazy {
			// Defer the decision by one byte.
			prevLen, prevDist = curLen, curDist
			havePrev = true
			m.insert(data, i)
			i++
			continue
		}
		if curLen >= MinMatch {
			emit(Match(curLen, curDist))
			end := i + curLen
			m.insert(data, i)
			for k := i + 1; k < end && k+MinMatch <= n; k++ {
				m.insert(data, k)
			}
			i = end
			continue
		}
		emit(Literal(data[i]))
		m.insert(data, i)
		i++
	}
	if havePrev {
		emit(Literal(data[n-1]))
	}
}

// Expand reconstructs the original bytes from a token stream, appending to
// dst. It is the decoding half of the LZ77 layer and is shared by tests and
// the DEFLATE decoder's copy loop.
func Expand(dst []byte, tokens []Token) ([]byte, error) {
	for _, t := range tokens {
		if t.IsLiteral() {
			dst = append(dst, t.Lit)
			continue
		}
		d := int(t.Dist)
		if d <= 0 || d > len(dst) {
			return nil, fmt.Errorf("lz77: invalid distance %d at output size %d", d, len(dst))
		}
		for k := 0; k < int(t.Len); k++ {
			dst = append(dst, dst[len(dst)-d])
		}
	}
	return dst, nil
}
