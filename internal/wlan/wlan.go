// Package wlan models the paper's Lucent WaveLAN (Orinoco) IEEE 802.11b
// link at packet granularity: nominal bit rates with their measured
// effective data rates and CPU-idle fractions, the power-saving mode's 25%
// throughput penalty, and per-packet active/idle alternation that creates
// the idle windows interleaved decompression reclaims.
package wlan

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/sim"
)

// PacketBytes is the modeled per-packet payload (Ethernet-class MTU minus
// headers, as on the paper's TCP downloads).
const PacketBytes = 1460

// PowerSavePenalty is the effective-rate reduction in power-saving mode:
// "the effective data rate decreases by about 25% in the power-saving
// mode, due to the overhead to switch between the states".
const PowerSavePenalty = 0.25

// SetupTime is the connection start-up interval; at the idle-state current
// it charges the paper's fitted cs = 0.012 J
// (0.012 J / (5 V * 0.310 A) = 7.742 ms).
const SetupTime = 7742 * time.Microsecond

// RateConfig describes one nominal 802.11b rate as the paper measured it.
type RateConfig struct {
	Name          string
	NominalMbps   float64
	EffectiveMBps float64 // end-to-end data rate including idle gaps
	IdleFrac      float64 // CPU-idle fraction of total downloading time
	// GapRadio is the radio state during CPU-idle gaps: at 11 Mb/s packets
	// arrive in bursts and the radio idles between them; at 2 Mb/s the
	// radio stays in receive essentially the whole time and only the CPU
	// idles.
	GapRadio device.RadioState
}

// Rate11Mbps is the paper's primary setting: ~0.6 MB/s effective
// (602 KB/s measured), 40% CPU-idle time.
func Rate11Mbps() RateConfig {
	return RateConfig{
		Name:          "11Mb/s",
		NominalMbps:   11,
		EffectiveMBps: 0.6,
		IdleFrac:      0.40,
		GapRadio:      device.RadioIdle,
	}
}

// Rate2Mbps is the validation setting of Section 4.2: 180 KB/s effective,
// 81.5% CPU-idle time.
func Rate2Mbps() RateConfig {
	return RateConfig{
		Name:          "2Mb/s",
		NominalMbps:   2,
		EffectiveMBps: 0.18,
		IdleFrac:      0.815,
		GapRadio:      device.RadioRecv,
	}
}

// Rate5_5Mbps interpolates the intermediate 802.11b rate (not measured by
// the paper; used by the bit-rate sweep example).
func Rate5_5Mbps() RateConfig {
	return RateConfig{
		Name:          "5.5Mb/s",
		NominalMbps:   5.5,
		EffectiveMBps: 0.40,
		IdleFrac:      0.55,
		GapRadio:      device.RadioIdle,
	}
}

// Rate1Mbps extrapolates the lowest 802.11b rate (not measured by the
// paper; used by the bit-rate sweep example).
func Rate1Mbps() RateConfig {
	return RateConfig{
		Name:          "1Mb/s",
		NominalMbps:   1,
		EffectiveMBps: 0.10,
		IdleFrac:      0.87,
		GapRadio:      device.RadioRecv,
	}
}

// Rates returns the configured rate points, fastest first.
func Rates() []RateConfig {
	return []RateConfig{Rate11Mbps(), Rate5_5Mbps(), Rate2Mbps(), Rate1Mbps()}
}

// GapConsumer receives the CPU-idle windows between packet arrivals;
// device.Worker implements it to run decompression inside them.
type GapConsumer interface {
	Window(d time.Duration)
}

// Link simulates downloads onto a device.
type Link struct {
	kernel *sim.Kernel
	dev    *device.Device
	rate   RateConfig
}

// NewLink returns a link for the device at the given rate.
func NewLink(k *sim.Kernel, dev *device.Device, rate RateConfig) (*Link, error) {
	if rate.EffectiveMBps <= 0 || rate.IdleFrac < 0 || rate.IdleFrac >= 1 {
		return nil, fmt.Errorf("wlan: invalid rate config %+v", rate)
	}
	return &Link{kernel: k, dev: dev, rate: rate}, nil
}

// Rate returns the link's rate configuration.
func (l *Link) Rate() RateConfig { return l.rate }

// EffectiveMBps returns the current effective data rate, accounting for
// the power-saving penalty.
func (l *Link) EffectiveMBps() float64 {
	r := l.rate.EffectiveMBps
	if l.dev.PowerSave() {
		r *= 1 - PowerSavePenalty
	}
	return r
}

// DownloadTime returns the modeled wall time to download n bytes,
// excluding connection setup.
func (l *Link) DownloadTime(n int) time.Duration {
	return time.Duration(float64(n) / 1e6 / l.EffectiveMBps() * float64(time.Second))
}

// Download schedules the reception of n bytes starting now.
//
// Per packet: an active slice (radio recv + CPU servicing the NIC at the
// calibrated composite current) followed by a CPU-idle gap in the rate's
// gap radio state. onDelivered, if non-nil, runs at the end of each active
// slice with the cumulative byte count — block assembly and decompression
// scheduling hang off it. gaps, if non-nil, is granted each idle window.
// onDone runs when the last byte has been delivered (gaps included).
func (l *Link) Download(n int, onDelivered func(total int), gaps GapConsumer, onDone func()) {
	if n <= 0 {
		l.kernel.Schedule(0, func() {
			if onDone != nil {
				onDone()
			}
		})
		return
	}
	// Connection setup: radio idle at the base state, charging ~cs.
	l.dev.SetRadio(device.RadioIdle)
	l.kernel.Schedule(SetupTime, func() { l.packet(0, n, onDelivered, gaps, onDone) })
}

// Transfer is Download without the connection setup charge, for chaining
// block transfers over an established connection (compression on demand).
// Unlike Download, the final packet's idle gap is kept (granted to gaps),
// since the stream continues with the next block.
func (l *Link) Transfer(n int, onDelivered func(total int), gaps GapConsumer, onDone func()) {
	if n <= 0 {
		l.kernel.Schedule(0, func() {
			if onDone != nil {
				onDone()
			}
		})
		return
	}
	l.packetKeepGap(0, n, onDelivered, gaps, onDone)
}

// packetKeepGap is the packet loop variant that schedules onDone after the
// final inter-packet gap rather than eliding it.
func (l *Link) packetKeepGap(delivered, total int, onDelivered func(int), gaps GapConsumer, onDone func()) {
	remaining := total - delivered
	chunk := PacketBytes
	if chunk > remaining {
		chunk = remaining
	}
	interval := time.Duration(float64(chunk) / 1e6 / l.EffectiveMBps() * float64(time.Second))
	active := time.Duration(float64(interval) * (1 - l.rate.IdleFrac))
	gap := interval - active

	l.dev.SetRadio(device.RadioRecv)
	l.dev.SetNICActive(true)
	l.kernel.Schedule(active, func() {
		l.dev.SetNICActive(false)
		l.dev.SetRadio(l.rate.GapRadio)
		newTotal := delivered + chunk
		if onDelivered != nil {
			onDelivered(newTotal)
		}
		if gaps != nil {
			gaps.Window(gap)
		}
		l.kernel.Schedule(gap, func() {
			if newTotal >= total {
				l.dev.SetRadio(device.RadioIdle)
				if onDone != nil {
					onDone()
				}
				return
			}
			l.packetKeepGap(newTotal, total, onDelivered, gaps, onDone)
		})
	})
}

func (l *Link) packet(delivered, total int, onDelivered func(int), gaps GapConsumer, onDone func()) {
	remaining := total - delivered
	chunk := PacketBytes
	if chunk > remaining {
		chunk = remaining
	}
	interval := time.Duration(float64(chunk) / 1e6 / l.EffectiveMBps() * float64(time.Second))
	active := time.Duration(float64(interval) * (1 - l.rate.IdleFrac))
	gap := interval - active

	l.dev.SetRadio(device.RadioRecv)
	l.dev.SetNICActive(true)
	l.kernel.Schedule(active, func() {
		l.dev.SetNICActive(false)
		l.dev.SetRadio(l.rate.GapRadio)
		newTotal := delivered + chunk
		if onDelivered != nil {
			onDelivered(newTotal)
		}
		if newTotal >= total {
			// Final gap is not part of the transfer; finish now.
			l.dev.SetRadio(device.RadioIdle)
			if onDone != nil {
				onDone()
			}
			return
		}
		if gaps != nil {
			gaps.Window(gap)
		}
		l.kernel.Schedule(gap, func() {
			l.packet(newTotal, total, onDelivered, gaps, onDone)
		})
	})
}
