package wlan

import (
	"math"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/sim"
)

func setup(rate RateConfig) (*sim.Kernel, *device.Device, *Link) {
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	l, err := NewLink(k, d, rate)
	if err != nil {
		panic(err)
	}
	return k, d, l
}

func TestDownloadTimeMatchesEffectiveRate(t *testing.T) {
	k, _, l := setup(Rate11Mbps())
	done := time.Duration(-1)
	l.Download(600_000, nil, nil, func() { done = k.Now() })
	k.Run()
	if done < 0 {
		t.Fatal("onDone never fired")
	}
	// 0.6 MB at 0.6 MB/s ~= 1 s (+ setup, - final gap).
	got := done.Seconds()
	if math.Abs(got-1.0) > 0.02 {
		t.Errorf("download time %.4f s, want ~1.0", got)
	}
}

func TestPlainDownloadEnergyMatchesPaperLine(t *testing.T) {
	// E = 3.519*s + 0.012 J at 11 Mb/s, per the paper's fitted line.
	for _, sMB := range []float64{0.5, 1.0, 3.0, 8.0} {
		k, d, l := setup(Rate11Mbps())
		var end time.Duration
		l.Download(int(sMB*1e6), nil, nil, func() { end = k.Now() })
		k.Run()
		got := d.EnergyJ(0, end)
		want := 3.519*sMB + 0.012
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("s=%.1f MB: E=%.4f J, want %.4f (±1%%)", sMB, got, want)
		}
	}
}

func TestIdleFractionObserved(t *testing.T) {
	k, d, l := setup(Rate11Mbps())
	var end time.Duration
	l.Download(2_000_000, nil, nil, func() { end = k.Now() })
	k.Run()
	// Integrate time spent at the idle current (310 mA).
	trace := d.Trace()
	var idle time.Duration
	for i, seg := range trace {
		segEnd := end
		if i+1 < len(trace) {
			segEnd = trace[i+1].Start
		}
		if seg.CurrentMA == 310 && segEnd > seg.Start {
			idle += segEnd - seg.Start
		}
	}
	frac := idle.Seconds() / (end - SetupTime).Seconds()
	if math.Abs(frac-0.40) > 0.02 {
		t.Errorf("idle fraction %.3f, want ~0.40", frac)
	}
}

func TestPowerSaveSlowsAndSaves(t *testing.T) {
	n := 1_000_000
	k1, d1, l1 := setup(Rate11Mbps())
	var end1 time.Duration
	l1.Download(n, nil, nil, func() { end1 = k1.Now() })
	k1.Run()

	k2, d2, l2 := setup(Rate11Mbps())
	d2.SetPowerSave(true)
	var end2 time.Duration
	l2.Download(n, nil, nil, func() { end2 = k2.Now() })
	k2.Run()

	if !(end2 > end1) {
		t.Errorf("power save should slow the download: %v vs %v", end2, end1)
	}
	slowdown := end2.Seconds() / end1.Seconds()
	if math.Abs(slowdown-1/(1-PowerSavePenalty)) > 0.05 {
		t.Errorf("slowdown %.3f, want ~%.3f", slowdown, 1/(1-PowerSavePenalty))
	}
	// For a pure download, the 25% slowdown outweighs the lower PS
	// currents — which is exactly why the paper leaves power saving off
	// for gzip and enables it only for bzip2's long decompressions. The
	// penalty must be small (a few percent), not a win.
	e1 := d1.EnergyJ(0, end1)
	e2 := d2.EnergyJ(0, end2)
	if !(e2 > e1) {
		t.Errorf("power-save pure download should cost slightly more: %.3f vs %.3f J", e2, e1)
	}
	if (e2-e1)/e1 > 0.05 {
		t.Errorf("power-save penalty %.1f%% too large", 100*(e2-e1)/e1)
	}
}

func TestPowerSaveWinsWithLongIdleTail(t *testing.T) {
	// Download followed by a long CPU-only phase (bzip2-style): with power
	// saving on, the radio idles at 110 mA instead of 310 mA during the
	// tail, which must dominate the download penalty.
	n := 200_000
	tail := 3 * time.Second

	run := func(ps bool) float64 {
		k, d, l := setup(Rate11Mbps())
		d.SetPowerSave(ps)
		w := device.NewWorker(k, d)
		var end time.Duration
		l.Download(n, nil, nil, func() {
			w.Add(tail)
			end = w.Drain()
		})
		k.Run()
		return d.EnergyJ(0, end)
	}
	eOff, eOn := run(false), run(true)
	if !(eOn < eOff) {
		t.Errorf("power save should win with a long decompress tail: %.3f vs %.3f J", eOn, eOff)
	}
}

func TestOnDeliveredMonotonic(t *testing.T) {
	k, _, l := setup(Rate11Mbps())
	last := 0
	calls := 0
	l.Download(100_000, func(total int) {
		if total <= last {
			t.Fatalf("delivered total went backwards: %d after %d", total, last)
		}
		last = total
		calls++
	}, nil, nil)
	k.Run()
	if last != 100_000 {
		t.Errorf("final delivered %d", last)
	}
	wantCalls := (100_000 + PacketBytes - 1) / PacketBytes
	if calls != wantCalls {
		t.Errorf("delivered callbacks %d, want %d", calls, wantCalls)
	}
}

func TestGapWindowsGranted(t *testing.T) {
	k, d, l := setup(Rate11Mbps())
	w := device.NewWorker(k, d)
	w.Add(50 * time.Millisecond)
	l.Download(500_000, nil, w, func() {})
	k.Run()
	if w.Pending() != 0 {
		t.Errorf("worker still has %v pending after ample gaps", w.Pending())
	}
	if w.BusyTotal() != 50*time.Millisecond {
		t.Errorf("busy total %v", w.BusyTotal())
	}
}

func TestInterleavingRaisesGapCurrentNotTime(t *testing.T) {
	n := 1_000_000
	// Baseline.
	k1, _, l1 := setup(Rate11Mbps())
	var end1 time.Duration
	l1.Download(n, nil, nil, func() { end1 = k1.Now() })
	k1.Run()
	// With CPU work that fits comfortably in the gaps.
	k2, d2, l2 := setup(Rate11Mbps())
	w := device.NewWorker(k2, d2)
	var end2 time.Duration
	l2.Download(n, func(total int) {
		w.Add(100 * time.Microsecond) // well under each ~1 ms gap
	}, w, func() { end2 = k2.Now() })
	k2.Run()
	if end2 != end1 {
		t.Errorf("interleaved work changed download time: %v vs %v", end2, end1)
	}
}

func TestZeroByteDownload(t *testing.T) {
	k, _, l := setup(Rate11Mbps())
	called := false
	l.Download(0, nil, nil, func() { called = true })
	k.Run()
	if !called {
		t.Error("onDone not called for empty download")
	}
}

func TestRate2MbpsProfile(t *testing.T) {
	k, d, l := setup(Rate2Mbps())
	var end time.Duration
	l.Download(1_000_000, nil, nil, func() { end = k.Now() })
	k.Run()
	if math.Abs(end.Seconds()-1.0/0.18) > 0.2 {
		t.Errorf("2 Mb/s download time %.2f s, want ~5.56", end.Seconds())
	}
	// Per-MB energy should be far higher than at 11 Mb/s (radio stays in
	// recv through the gaps): ~12.3 J/MB.
	e := d.EnergyJ(0, end)
	if e < 10 || e > 14 {
		t.Errorf("2 Mb/s per-MB energy %.2f J, want ~12.3", e)
	}
}

func TestInvalidRateRejected(t *testing.T) {
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	if _, err := NewLink(k, d, RateConfig{EffectiveMBps: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewLink(k, d, RateConfig{EffectiveMBps: 1, IdleFrac: 1.5}); err == nil {
		t.Error("idle fraction > 1 accepted")
	}
}

func TestWorkerDrain(t *testing.T) {
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	w := device.NewWorker(k, d)
	w.Add(2 * time.Second)
	end := w.Drain()
	if end != 2*time.Second {
		t.Errorf("drain end %v", end)
	}
	k.Run()
	if d.CPU() != device.CPUIdle {
		t.Error("CPU not idle after drain")
	}
	// The busy window charges busy-idle current.
	e := d.EnergyJ(0, 2*time.Second)
	want := 5 * 0.570 * 2
	if math.Abs(e-want) > 1e-9 {
		t.Errorf("drain energy %.4f, want %.4f", e, want)
	}
}
