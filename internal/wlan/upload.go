package wlan

import (
	"time"

	"repro/internal/device"
)

// Upload schedules the transmission of n bytes starting now — the upload
// direction the paper's introduction raises ("lively captured voice and
// pictures") and leaves to future work. It mirrors Download with the radio
// in send states; per packet, an active slice at the send-side composite
// current is followed by a CPU-idle gap granted to gaps (where compression
// of the next block can run). onDone fires after the final gap.
func (l *Link) Upload(n int, gaps GapConsumer, onDone func()) {
	if n <= 0 {
		l.kernel.Schedule(0, func() {
			if onDone != nil {
				onDone()
			}
		})
		return
	}
	l.dev.SetRadio(device.RadioIdle)
	l.kernel.Schedule(SetupTime, func() { l.uploadPacket(0, n, gaps, onDone) })
}

func (l *Link) uploadPacket(sent, total int, gaps GapConsumer, onDone func()) {
	remaining := total - sent
	chunk := PacketBytes
	if chunk > remaining {
		chunk = remaining
	}
	interval := time.Duration(float64(chunk) / 1e6 / l.EffectiveMBps() * float64(time.Second))
	active := time.Duration(float64(interval) * (1 - l.rate.IdleFrac))
	gap := interval - active

	l.dev.SetRadio(device.RadioSend)
	l.dev.SetNICSending(true)
	l.kernel.Schedule(active, func() {
		l.dev.SetNICSending(false)
		l.dev.SetRadio(l.rate.GapRadio)
		newTotal := sent + chunk
		if gaps != nil {
			gaps.Window(gap)
		}
		l.kernel.Schedule(gap, func() {
			if newTotal >= total {
				l.dev.SetRadio(device.RadioIdle)
				if onDone != nil {
					onDone()
				}
				return
			}
			l.uploadPacket(newTotal, total, gaps, onDone)
		})
	})
}
