package selective

import (
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/workload"
)

// Property tests for the Equation 6 decision procedure. These do not
// check particular numbers; they check the shape of the decision surface
// that the selective scheme's correctness argument rests on.

// TestDecisionMonotoneInCompressionRatio: for a fixed raw size, "compress"
// must be monotone in the compression factor — if Eq. 6 says compress at
// factor f, it must also say compress at every better factor. A violation
// would mean the decider can flip back to "don't compress" as compression
// gets MORE effective, which breaks the threshold-factor framing of
// Section 4.3 (compress iff f exceeds a per-size threshold). Checked for
// both the paper's literal constants and the first-principles model,
// across seeded random raw sizes spanning both branches of Eq. 6.
func TestDecisionMonotoneInCompressionRatio(t *testing.T) {
	model := ModelDecider{Params: energy.Params11Mbps()}
	deciders := []struct {
		name string
		fn   func(raw, comp int) bool
	}{
		{"paper", PaperDecider{}.ShouldCompress},
		{"model", model.ShouldCompress},
	}
	rng := rand.New(rand.NewSource(61))
	var sizes []int
	for i := 0; i < 200; i++ {
		// Cover below and above the 0.128 MB branch point, and the exact
		// block size the selective encoder feeds the decider.
		sizes = append(sizes, 1+rng.Intn(2_000_000))
	}
	sizes = append(sizes, 1, 3_899, 3_900, 127_999, 128_000, BlockSize, 1_000_000)

	for _, d := range deciders {
		for _, raw := range sizes {
			// Sweep compressed size downward (factor improves); once the
			// decision turns true it must never turn false again.
			turned := false
			for comp := raw; comp >= 1; comp -= 1 + comp/64 {
				got := d.fn(raw, comp)
				if turned && !got {
					t.Fatalf("%s: non-monotone decision at raw=%d: compress at a worse factor but not at comp=%d",
						d.name, raw, comp)
				}
				turned = turned || got
			}
			// Sanity anchors: no decider may compress when the output is
			// not smaller, and a near-infinite factor on a large file must
			// compress.
			if d.fn(raw, raw) {
				t.Fatalf("%s: compresses at factor 1.0 (raw=%d)", d.name, raw)
			}
			if raw >= 128_000 && !d.fn(raw, 1) {
				t.Fatalf("%s: refuses to compress raw=%d at factor %d", d.name, raw, raw)
			}
		}
	}
}

// TestDecisionMonotoneThresholdFactor cross-checks the sweep against the
// model's closed-form threshold: the decision must flip exactly where
// ThresholdFactor says it does (within one sweep step).
func TestDecisionMonotoneThresholdFactor(t *testing.T) {
	p := energy.Params11Mbps()
	d := ModelDecider{Params: p}
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 100; i++ {
		raw := 10_000 + rng.Intn(1_500_000)
		thr := p.ThresholdFactor(float64(raw) / 1e6)
		if thr <= 1 {
			continue
		}
		// Just below the threshold factor: must not compress; comfortably
		// above: must compress. (±2% keeps clear of the boundary itself.)
		below := int(float64(raw) / (thr * 0.98))
		above := int(float64(raw) / (thr * 1.02))
		if below > 0 && d.ShouldCompress(raw, below) {
			t.Fatalf("raw=%d: compresses below threshold factor %.3f", raw, thr)
		}
		if above > 0 && !d.ShouldCompress(raw, above) {
			t.Fatalf("raw=%d: refuses above threshold factor %.3f", raw, thr)
		}
	}
}

// TestSelectiveNeverWorseThanRaw is the paper's headline claim for the
// adaptive scheme ("the compression tool no longer incurs higher energy
// cost than no compression for any file"), stated as an exact property of
// the model-driven decider: for ANY input, summing the Table 1 energy
// model over the encoder's per-block choices can never exceed sending
// every block raw. This holds by construction — a block is compressed only
// when InterleavedEnergy beats DownloadEnergy for that block — and this
// test pins the construction against regressions in either the encoder's
// decision plumbing or the model.
func TestSelectiveNeverWorseThanRaw(t *testing.T) {
	p := energy.Params11Mbps()
	d := ModelDecider{Params: p}
	c := codec.MustNew(codec.Zlib, 0)
	rng := rand.New(rand.NewSource(63))

	classes := []workload.Class{
		workload.ClassMail, workload.ClassHTML, workload.ClassXML,
		workload.ClassSource, workload.ClassRandom, workload.ClassBinary,
	}
	for i := 0; i < 60; i++ {
		class := classes[rng.Intn(len(classes))]
		size := 1 + rng.Intn(900_000)
		data := workload.Generate(class, size, uint64(1000+i))

		enc, err := Encode(data, c, d)
		if err != nil {
			t.Fatal(err)
		}
		var selective, allRaw float64
		for _, b := range enc.Blocks {
			s := float64(b.RawLen) / 1e6
			allRaw += p.DownloadEnergy(s)
			if b.Compressed {
				selective += p.InterleavedEnergy(s, float64(len(b.Payload))/1e6)
			} else {
				selective += p.DownloadEnergy(s)
			}
		}
		if selective > allRaw {
			t.Errorf("%v/%dB: selective modeled energy %.6f J > all-raw %.6f J",
				class, size, selective, allRaw)
		}
	}
}
