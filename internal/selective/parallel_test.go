package selective_test

// Determinism tests for the parallel selective encoder: block contents land
// at fixed indices, so the container bytes are a pure function of the input
// and codec — never of whether (or where) the per-block work ran.

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/selective"
	"repro/internal/workload"
)

// TestEncodeParallelMatchesSequential compares the goroutine-spawning path
// against the inline path, and a saturated spawn (always refusing, forcing
// inline fallback) against both.
func TestEncodeParallelMatchesSequential(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 700*1000, 21)
	c := codec.MustNew(codec.Gzip, 0)
	d := selective.ModelDecider{}

	seq, err := selective.Encode(data, c, d)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	spawnAll := func(task func()) bool {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task()
		}()
		return true
	}
	par, err := selective.EncodeParallel(data, c, d, spawnAll)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	spawnNone := func(task func()) bool { return false }
	inline, err := selective.EncodeParallel(data, c, d, spawnNone)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(par.Bytes(), seq.Bytes()) {
		t.Fatal("parallel encode bytes differ from sequential")
	}
	if !bytes.Equal(inline.Bytes(), seq.Bytes()) {
		t.Fatal("saturated-spawn encode bytes differ from sequential")
	}

	dec, err := selective.Decode(par.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("parallel container does not round trip")
	}
}

// TestEncodeBlocksParallelOrdering: with many small blocks and maximal
// goroutine interleaving, block order and per-block flags must still match
// the sequential encoder exactly.
func TestEncodeBlocksParallelOrdering(t *testing.T) {
	data := workload.Generate(workload.ClassMail, 256*1024, 4)
	c := codec.MustNew(codec.Zlib, 6)
	d := selective.AlwaysCompress{}
	const blockSize = 8 * 1024

	seq, err := selective.EncodeBlocks(data, c, d, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	par, err := selective.EncodeBlocksParallel(data, c, d, blockSize, func(task func()) bool {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task()
		}()
		return true
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Blocks) != len(seq.Blocks) {
		t.Fatalf("parallel produced %d blocks, sequential %d", len(par.Blocks), len(seq.Blocks))
	}
	for i := range par.Blocks {
		if par.Blocks[i].Compressed != seq.Blocks[i].Compressed ||
			!bytes.Equal(par.Blocks[i].Payload, seq.Blocks[i].Payload) {
			t.Fatalf("block %d differs between parallel and sequential", i)
		}
	}
}
