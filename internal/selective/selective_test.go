package selective

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/workload"
)

func gzipCodec(t testing.TB) codec.Codec {
	t.Helper()
	c, err := codec.New(codec.Zlib, 9)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func modelDecider() ModelDecider {
	return ModelDecider{Params: energy.Params11Mbps()}
}

func TestRoundTripText(t *testing.T) {
	data := []byte(strings.Repeat("selective compression of mixed content ", 20000))
	enc, err := Encode(data, gzipCodec(t), modelDecider())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	st := enc.Stats()
	if st.BlocksCompressed != st.BlocksTotal {
		t.Errorf("compressible text: %d/%d blocks compressed", st.BlocksCompressed, st.BlocksTotal)
	}
	if st.Factor < 5 {
		t.Errorf("container factor %.2f", st.Factor)
	}
}

func TestRandomDataAllRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := make([]byte, 600_000)
	rng.Read(data)
	enc, err := Encode(data, gzipCodec(t), modelDecider())
	if err != nil {
		t.Fatal(err)
	}
	st := enc.Stats()
	if st.BlocksCompressed != 0 {
		t.Errorf("random data: %d blocks compressed", st.BlocksCompressed)
	}
	// Overhead must be only framing: a few bytes per 128 KB block.
	if st.WireBytes > st.RawBytes+st.BlocksTotal*16+32 {
		t.Errorf("raw overhead too high: %d vs %d", st.WireBytes, st.RawBytes)
	}
	got, err := Decode(enc.Bytes(), 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestSmallFileNeverCompressed(t *testing.T) {
	// Below the 3900-byte threshold even perfectly compressible data goes
	// raw.
	data := bytes.Repeat([]byte{'a'}, 3000)
	enc, err := Encode(data, gzipCodec(t), modelDecider())
	if err != nil {
		t.Fatal(err)
	}
	if enc.Stats().BlocksCompressed != 0 {
		t.Error("sub-threshold file was compressed")
	}
	// Just above the threshold it should compress.
	data = bytes.Repeat([]byte{'a'}, 5000)
	enc, err = Encode(data, gzipCodec(t), modelDecider())
	if err != nil {
		t.Fatal(err)
	}
	if enc.Stats().BlocksCompressed == 0 {
		t.Error("above-threshold compressible file went raw")
	}
}

func TestMixedFilePerBlockDecisions(t *testing.T) {
	data := workload.MixedFile(1024*1024, 9)
	enc, err := Encode(data, gzipCodec(t), modelDecider())
	if err != nil {
		t.Fatal(err)
	}
	st := enc.Stats()
	if st.BlocksCompressed == 0 || st.BlocksCompressed == st.BlocksTotal {
		t.Errorf("mixed file should split decisions: %d/%d", st.BlocksCompressed, st.BlocksTotal)
	}
	got, err := Decode(enc.Bytes(), 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
}

// TestNeverLargerThanRawPlusFraming is the paper's headline property: the
// adaptive scheme never materially exceeds the uncompressed transfer.
func TestNeverLargerThanRawPlusFraming(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400_000)
		data := make([]byte, n)
		alpha := 1 + rng.Intn(255)
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		enc, err := Encode(data, gzipCodec(t), modelDecider())
		if err != nil {
			return false
		}
		st := enc.Stats()
		blocks := n/BlockSize + 1
		if st.WireBytes > n+blocks*blockHeaderLen+headerLen+1 {
			return false
		}
		got, err := Decode(enc.Bytes(), 0)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyInput(t *testing.T) {
	enc, err := Encode(nil, gzipCodec(t), modelDecider())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("decoded %d bytes", len(got))
	}
}

func TestPaperDeciderMatchesModelDecider(t *testing.T) {
	m := modelDecider()
	p := PaperDecider{}
	agree, total := 0, 0
	for _, raw := range []int{5000, 50_000, 128_000, 400_000} {
		for _, f := range []float64{1.05, 1.2, 1.5, 3, 10} {
			comp := int(float64(raw) / f)
			total++
			if m.ShouldCompress(raw, comp) == p.ShouldCompress(raw, comp) {
				agree++
			}
		}
	}
	if agree < total-2 {
		t.Errorf("model and paper deciders agree on only %d/%d", agree, total)
	}
	if p.MinSizeBytes() != 3900 {
		t.Errorf("paper threshold %d", p.MinSizeBytes())
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	data := []byte(strings.Repeat("corruption ", 2000))
	enc, err := Encode(data, gzipCodec(t), AlwaysCompress{})
	if err != nil {
		t.Fatal(err)
	}
	stream := enc.Bytes()
	if _, err := Decode(stream[:10], 0); err == nil {
		t.Error("truncated container accepted")
	}
	bad := append([]byte{}, stream...)
	bad[0] = 'X'
	if _, err := Decode(bad, 0); err == nil {
		t.Error("bad magic accepted")
	}
	bad2 := append([]byte{}, stream...)
	bad2[headerLen] = 0x42 // invalid flag
	if _, err := Decode(bad2, 0); err == nil {
		t.Error("bad flag accepted")
	}
	if _, err := Decode(stream[:len(stream)-1], 0); err == nil {
		t.Error("missing end marker accepted")
	}
}

func TestDecodeMaxSizeGuard(t *testing.T) {
	data := bytes.Repeat([]byte{'g'}, 300_000)
	enc, err := Encode(data, gzipCodec(t), AlwaysCompress{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc.Bytes(), 1000); err == nil {
		t.Error("bomb guard did not trip")
	}
}

func TestCompressionSchemesOtherThanZlib(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 300_000, 3)
	for _, s := range codec.Schemes() {
		c, err := codec.New(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := Encode(data, c, modelDecider())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got, err := Decode(enc.Bytes(), 0)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%v round trip: %v", s, err)
		}
	}
}

func TestParseReturnsBlockLayout(t *testing.T) {
	data := workload.MixedFile(512*1024, 4)
	enc, err := Encode(data, gzipCodec(t), modelDecider())
	if err != nil {
		t.Fatal(err)
	}
	blocks, scheme, err := Parse(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if scheme != codec.Zlib {
		t.Errorf("scheme %v", scheme)
	}
	if len(blocks) != len(enc.Blocks) {
		t.Errorf("parsed %d blocks, encoded %d", len(blocks), len(enc.Blocks))
	}
	total := 0
	for _, b := range blocks {
		total += b.RawLen
	}
	if total != len(data) {
		t.Errorf("raw lengths sum to %d", total)
	}
}

// TestContainerMutationNeverPanicsOrLies: single-byte mutations of a valid
// container must fail or decode to the exact original (per-block lengths
// and the codec's own integrity checks catch corruption).
func TestContainerMutationNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	data := workload.MixedFile(300_000, 6)
	enc, err := Encode(data, gzipCodec(t), modelDecider())
	if err != nil {
		t.Fatal(err)
	}
	stream := enc.Bytes()
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte{}, stream...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		out, err := Decode(bad, 2*len(data))
		if err == nil && len(out) > 2*len(data) {
			t.Fatalf("trial %d: bomb guard bypassed (%d bytes)", trial, len(out))
		}
	}
}

func TestEncodeBlocksCustomSizes(t *testing.T) {
	data := workload.MixedFile(600_000, 8)
	for _, bs := range []int{16_000, 64_000, 256_000, 1_000_000} {
		enc, err := EncodeBlocks(data, gzipCodec(t), modelDecider(), bs)
		if err != nil {
			t.Fatalf("bs %d: %v", bs, err)
		}
		got, err := Decode(enc.Bytes(), 0)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("bs %d: round trip: %v", bs, err)
		}
		wantBlocks := (len(data) + bs - 1) / bs
		if enc.Stats().BlocksTotal != wantBlocks {
			t.Errorf("bs %d: %d blocks, want %d", bs, enc.Stats().BlocksTotal, wantBlocks)
		}
	}
	if _, err := EncodeBlocks(data, gzipCodec(t), modelDecider(), 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestUploadDeciderBehaviour(t *testing.T) {
	d := UploadDecider{
		Params:    energy.Params11Mbps(),
		PerInMB:   0.36, // handheld zlib -1
		PerOutMB:  0.072,
		PerStream: 0.0045,
	}
	// High factor on a full block: compress.
	if !d.ShouldCompress(128_000, 16_000) {
		t.Error("factor 8 upload block should compress")
	}
	// Marginal factor: the compression cost kills it.
	if d.ShouldCompress(128_000, 120_000) {
		t.Error("factor 1.07 upload block should go raw")
	}
	if d.MinSizeBytes() < 3000 {
		t.Errorf("upload min size %d implausibly low", d.MinSizeBytes())
	}
}
