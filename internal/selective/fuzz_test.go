package selective

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/workload"
)

// fuzzSeedContainer builds a small valid SEL1 container for seeding the
// parser corpus: one compressed block and one raw block.
func fuzzSeedContainer(tb testing.TB) []byte {
	tb.Helper()
	c := codec.MustNew(codec.Zlib, 0)
	enc, err := Encode(workload.Generate(workload.ClassXML, 10_000, 5), c,
		AlwaysCompress{})
	if err != nil {
		tb.Fatal(err)
	}
	enc.Blocks = append(enc.Blocks, Block{RawLen: 3, Payload: []byte("abc")})
	return enc.Bytes()
}

// FuzzSELRoundTrip is the differential round-trip target: for any input
// and any scheme, Decode(Encode(x).Bytes()) must reproduce x exactly, and
// Parse must see the same block layout the encoder produced. This is the
// container-format half of the proxy's end-to-end payload oracle, isolated
// so the fuzzer can drive it without a network in the loop.
func FuzzSELRoundTrip(f *testing.F) {
	f.Add([]byte(nil), byte(0))
	f.Add([]byte("hello hello hello hello"), byte(1))
	f.Add(workload.Generate(workload.ClassMail, 5_000, 1), byte(2))
	f.Add(workload.Generate(workload.ClassRandom, 2_000, 2), byte(3))
	f.Add(workload.Generate(workload.ClassHTML, 200_000, 3), byte(0))
	d := ModelDecider{Params: energy.Params11Mbps()}
	f.Fuzz(func(t *testing.T, data []byte, schemeByte byte) {
		if len(data) > 512_000 {
			t.Skip("bound compression cost per exec")
		}
		scheme := codec.Scheme(schemeByte%4 + 1)
		c, err := codec.New(scheme, 0)
		if err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		enc, err := Encode(data, c, d)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		stream := enc.Bytes()

		blocks, gotScheme, err := Parse(stream)
		if err != nil {
			t.Fatalf("parse own output: %v", err)
		}
		if gotScheme != scheme || len(blocks) != len(enc.Blocks) {
			t.Fatalf("parse: scheme %v blocks %d, encoded %v/%d",
				gotScheme, len(blocks), scheme, len(enc.Blocks))
		}
		back, err := Decode(stream, len(data))
		if err != nil {
			t.Fatalf("decode own output: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip: %d bytes in, %d out", len(data), len(back))
		}
	})
}

// FuzzSELParse hardens Parse/Decode against arbitrary wire bytes: no
// input may panic or over-allocate, and any container Parse accepts must
// survive a rebuild — re-serialising the parsed blocks and parsing again
// yields the identical layout (Parse ignores trailing bytes after the end
// marker, so the comparison is on the parsed form, not the raw stream).
// The corpus is seeded with a valid container plus truncations and
// single-bit flips of it, per the wire-hardening tests in internal/proxy.
func FuzzSELParse(f *testing.F) {
	valid := fuzzSeedContainer(f)
	f.Add(valid)
	for _, cut := range []int{0, 1, 4, 5, 6, headerLen + blockHeaderLen, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(valid[:cut])
		}
	}
	for _, bit := range []int{0, 7, 32, 39, 80} {
		if bit/8 < len(valid) {
			flipped := append([]byte(nil), valid...)
			flipped[bit/8] ^= 1 << (bit % 8)
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, stream []byte) {
		blocks, scheme, err := Parse(stream)
		if err != nil {
			return
		}
		rebuilt := (&Encoded{Scheme: scheme, Blocks: blocks}).Bytes()
		blocks2, scheme2, err := Parse(rebuilt)
		if err != nil {
			t.Fatalf("rebuilt container does not parse: %v", err)
		}
		if scheme2 != scheme || len(blocks2) != len(blocks) {
			t.Fatalf("rebuild changed layout: %v/%d vs %v/%d",
				scheme2, len(blocks2), scheme, len(blocks))
		}
		for i := range blocks {
			if blocks2[i].Compressed != blocks[i].Compressed ||
				blocks2[i].RawLen != blocks[i].RawLen ||
				!bytes.Equal(blocks2[i].Payload, blocks[i].Payload) {
				t.Fatalf("rebuild changed block %d", i)
			}
		}
		// Decode must not panic either; errors are fine (the scheme byte
		// or payloads may be garbage), output size is capped.
		_, _ = Decode(stream, MaxPlausibleRawLen)
	})
}
