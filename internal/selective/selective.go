// Package selective implements the paper's block-by-block adaptive
// compression scheme (Section 4.3, Figure 10): data is processed in
// compression-buffer-sized blocks; a block is stored raw if it is below the
// threshold size or if compressing it fails the Equation 6 energy test, and
// compressed otherwise. Files below the file threshold (3900 bytes) are
// never compressed. With this scheme "the compression tool no longer incurs
// higher energy cost than no compression for any file".
package selective

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/energy"
)

// BlockSize is the compression buffer of the paper's modified zlib
// (0.128 MB).
const BlockSize = 128 * 1000

// Container framing.
const (
	magic0, magic1, magic2, magic3 = 'S', 'E', 'L', '1'

	flagRaw        = 0x00
	flagCompressed = 0x01
	flagEnd        = 0xFF

	headerLen      = 5 // magic + scheme byte
	blockHeaderLen = 9 // flag + rawLen + payloadLen
)

// ErrCorrupt is returned for malformed containers.
var ErrCorrupt = errors.New("selective: corrupt container")

// Decider is the compression decision test. ShouldCompress is consulted
// with a block's raw and compressed sizes; MinSizeBytes is the threshold
// below which blocks (and whole files) are sent raw without even trying.
type Decider interface {
	ShouldCompress(rawBytes, compBytes int) bool
	MinSizeBytes() int
}

// ModelDecider drives decisions from the analytic energy model.
type ModelDecider struct {
	Params energy.Params
}

var _ Decider = ModelDecider{}

// ShouldCompress applies Equation 6 via the model.
func (d ModelDecider) ShouldCompress(rawBytes, compBytes int) bool {
	return d.Params.ShouldCompress(float64(rawBytes)/1e6, float64(compBytes)/1e6)
}

// MinSizeBytes returns the model's file-size threshold (≈3900 bytes).
func (d ModelDecider) MinSizeBytes() int {
	return int(d.Params.ThresholdSizeBytes())
}

// PaperDecider applies the paper's literal Equation 6 constants.
type PaperDecider struct{}

var _ Decider = PaperDecider{}

// ShouldCompress applies the published Equation 6.
func (PaperDecider) ShouldCompress(rawBytes, compBytes int) bool {
	return energy.PaperShouldCompress(rawBytes, compBytes)
}

// MinSizeBytes returns the paper's 3900-byte threshold.
func (PaperDecider) MinSizeBytes() int { return energy.PaperFileThresholdBytes }

// AlwaysCompress compresses every block (the non-adaptive baseline).
type AlwaysCompress struct{}

var _ Decider = AlwaysCompress{}

// ShouldCompress always returns true.
func (AlwaysCompress) ShouldCompress(int, int) bool { return true }

// MinSizeBytes returns zero.
func (AlwaysCompress) MinSizeBytes() int { return 0 }

// NeverCompress sends every block raw (the uncompressed baseline wrapped
// in the same framing).
type NeverCompress struct{}

var _ Decider = NeverCompress{}

// ShouldCompress always returns false.
func (NeverCompress) ShouldCompress(int, int) bool { return false }

// MinSizeBytes returns the largest int so even huge blocks skip the
// compression attempt.
func (NeverCompress) MinSizeBytes() int { return int(^uint(0) >> 1) }

// Block is one framed block of an encoded stream.
type Block struct {
	Compressed bool
	RawLen     int
	Payload    []byte
}

// WireLen is the block's on-the-wire size including framing.
func (b Block) WireLen() int { return blockHeaderLen + len(b.Payload) }

// Encoded is the result of selectively compressing a buffer.
type Encoded struct {
	Scheme codec.Scheme
	Blocks []Block
}

// Stats summarises an encoded stream.
type Stats struct {
	RawBytes         int
	WireBytes        int
	BlocksTotal      int
	BlocksCompressed int
	Factor           float64
}

// Stats computes summary statistics.
func (e *Encoded) Stats() Stats {
	s := Stats{BlocksTotal: len(e.Blocks)}
	for _, b := range e.Blocks {
		s.RawBytes += b.RawLen
		s.WireBytes += b.WireLen()
		if b.Compressed {
			s.BlocksCompressed++
		}
	}
	s.WireBytes += headerLen + 1 // container header + end marker
	s.Factor = codec.Factor(s.RawBytes, s.WireBytes)
	return s
}

// Bytes serialises the container.
func (e *Encoded) Bytes() []byte {
	st := e.Stats()
	out := make([]byte, 0, st.WireBytes)
	out = append(out, magic0, magic1, magic2, magic3, byte(e.Scheme))
	var hdr [blockHeaderLen]byte
	for _, b := range e.Blocks {
		if b.Compressed {
			hdr[0] = flagCompressed
		} else {
			hdr[0] = flagRaw
		}
		binary.BigEndian.PutUint32(hdr[1:5], uint32(b.RawLen))
		binary.BigEndian.PutUint32(hdr[5:9], uint32(len(b.Payload)))
		out = append(out, hdr[:]...)
		out = append(out, b.Payload...)
	}
	return append(out, flagEnd)
}

// Encode selectively compresses data with the codec per Figure 10 using
// the paper's 0.128 MB blocks. Note "send the raw data" in the figure
// means writing the raw block into the (pre)compressed stream.
func Encode(data []byte, c codec.Codec, d Decider) (*Encoded, error) {
	return EncodeBlocks(data, c, d, BlockSize)
}

// EncodeBlocks is Encode with an explicit block size, used by the
// block-size ablation study.
func EncodeBlocks(data []byte, c codec.Codec, d Decider, blockSize int) (*Encoded, error) {
	return EncodeBlocksParallel(data, c, d, blockSize, nil)
}

// EncodeParallel is Encode with block compression fanned out through spawn:
// each block's compress-and-decide step may run on a worker (spawn returns
// true after arranging to run the task) or inline (spawn is nil, or returns
// false — the caller's backpressure signal). Blocks are independent and land
// at fixed indices, so the encoded stream is byte-identical to Encode's for
// every spawn policy and worker count.
func EncodeParallel(data []byte, c codec.Codec, d Decider, spawn func(task func()) bool) (*Encoded, error) {
	return EncodeBlocksParallel(data, c, d, BlockSize, spawn)
}

// EncodeBlocksParallel is EncodeBlocks with the spawn hook of EncodeParallel.
// The codec must be safe for concurrent use when spawn is non-nil (every
// codec in this repository is).
func EncodeBlocksParallel(data []byte, c codec.Codec, d Decider, blockSize int, spawn func(task func()) bool) (*Encoded, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("selective: block size %d", blockSize)
	}
	e := &Encoded{Scheme: c.Scheme()}
	if len(data) == 0 {
		return e, nil
	}
	minSize := d.MinSizeBytes()
	// Whole-file rule: below the threshold size the file is not to be
	// compressed before transferring.
	wholeFileRaw := len(data) < minSize

	n := (len(data) + blockSize - 1) / blockSize
	e.Blocks = make([]Block, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for bi := 0; bi < n; bi++ {
		off := bi * blockSize
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		bi, raw := bi, data[off:end]
		task := func() {
			defer wg.Done()
			e.Blocks[bi], errs[bi] = encodeBlock(raw, off, c, d, wholeFileRaw, minSize)
		}
		wg.Add(1)
		if spawn == nil || !spawn(task) {
			task()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// encodeBlock applies Figure 10's per-block decision to one raw block.
func encodeBlock(raw []byte, off int, c codec.Codec, d Decider, wholeFileRaw bool, minSize int) (Block, error) {
	blk := Block{RawLen: len(raw), Payload: raw}
	if wholeFileRaw || len(raw) < minSize {
		return blk, nil
	}
	comp, err := c.Compress(raw)
	if err != nil {
		return Block{}, fmt.Errorf("selective: compress block at %d: %w", off, err)
	}
	if d.ShouldCompress(len(raw), len(comp)) {
		blk.Compressed = true
		blk.Payload = comp
	}
	return blk, nil
}

// Decode parses and decompresses a container produced by Encode. maxSize,
// if positive, bounds the decoded size.
func Decode(stream []byte, maxSize int) ([]byte, error) {
	blocks, scheme, err := Parse(stream)
	if err != nil {
		return nil, err
	}
	c, err := codec.New(scheme, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out := []byte{}
	for i, b := range blocks {
		if maxSize > 0 && len(out)+b.RawLen > maxSize {
			return nil, fmt.Errorf("%w: output exceeds limit %d", ErrCorrupt, maxSize)
		}
		if !b.Compressed {
			out = append(out, b.Payload...)
			continue
		}
		raw, err := c.Decompress(b.Payload, b.RawLen)
		if err != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrCorrupt, i, err)
		}
		if len(raw) != b.RawLen {
			return nil, fmt.Errorf("%w: block %d length %d, header says %d", ErrCorrupt, i, len(raw), b.RawLen)
		}
		out = append(out, raw...)
	}
	return out, nil
}

// Wire-length validation helpers, shared by this container format and the
// proxy's PXY2 framing (internal/proxy). Length fields that arrive off the
// wire are attacker-controlled: they must be bounded BEFORE they size an
// allocation, a slice, or a decompression, and compared as unsigned values
// so 32-bit platforms cannot be tricked through an int overflow.

// MaxPlausibleRawLen is the largest raw block length any container or wire
// frame of this repository may claim: 16 of the paper's 0.128 MB
// compression buffers, covering every block size the ablation study uses.
const MaxPlausibleRawLen = 16 * BlockSize

// CheckWireLens validates a frame's untrusted 32-bit length fields against
// explicit caps. rawLen is the claimed decompressed size (it drives the
// decompressor's output allocation), payLen the claimed payload size (it
// drives the read/slice). The comparison stays in uint32 so no conversion
// can wrap on any platform.
func CheckWireLens(rawLen, payLen, maxRaw, maxPay uint32) error {
	if rawLen > maxRaw {
		return fmt.Errorf("claimed raw length %d exceeds cap %d", rawLen, maxRaw)
	}
	if payLen > maxPay {
		return fmt.Errorf("claimed payload length %d exceeds cap %d", payLen, maxPay)
	}
	return nil
}

// FitsInt reports whether an untrusted unsigned 64-bit wire value converts
// to int without overflow on this platform (true for all values on 64-bit,
// values below 2^31 on 32-bit).
func FitsInt(v uint64) bool { return v <= uint64(^uint(0)>>1) }

// Parse splits a container into blocks without decompressing.
func Parse(stream []byte) ([]Block, codec.Scheme, error) {
	if len(stream) < headerLen+1 {
		return nil, 0, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if stream[0] != magic0 || stream[1] != magic1 || stream[2] != magic2 || stream[3] != magic3 {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	scheme := codec.Scheme(stream[4])
	pos := headerLen
	var blocks []Block
	for {
		if pos >= len(stream) {
			return nil, 0, fmt.Errorf("%w: missing end marker", ErrCorrupt)
		}
		flag := stream[pos]
		if flag == flagEnd {
			return blocks, scheme, nil
		}
		if flag != flagRaw && flag != flagCompressed {
			return nil, 0, fmt.Errorf("%w: flag %#x at %d", ErrCorrupt, flag, pos)
		}
		if pos+blockHeaderLen > len(stream) {
			return nil, 0, fmt.Errorf("%w: truncated block header", ErrCorrupt)
		}
		rawLen := binary.BigEndian.Uint32(stream[pos+1 : pos+5])
		payLen := binary.BigEndian.Uint32(stream[pos+5 : pos+9])
		pos += blockHeaderLen
		// Bound both claimed lengths in uint32 space before the payload is
		// sliced: a 32-bit build must never see these fields as ints while
		// they can still be ≥ 2^31.
		if err := CheckWireLens(rawLen, payLen, MaxPlausibleRawLen, 2*MaxPlausibleRawLen); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if uint64(payLen) > uint64(len(stream)-pos) {
			return nil, 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
		}
		b := Block{Compressed: flag == flagCompressed, RawLen: int(rawLen), Payload: stream[pos : pos+int(payLen)]}
		if !b.Compressed && payLen != rawLen {
			return nil, 0, fmt.Errorf("%w: raw block length mismatch", ErrCorrupt)
		}
		blocks = append(blocks, b)
		pos += int(payLen)
	}
}

// UploadDecider drives per-block decisions for the upload direction, where
// the cost side is the handheld's compression time rather than
// decompression: compress iff the predicted compressed-upload energy
// (Equations 1-4 mirrored, with tc from the handheld cost model) beats the
// raw upload.
type UploadDecider struct {
	Params energy.Params
	// PerInMB / PerOutMB are the handheld compression cost coefficients
	// (seconds per MB of input / output); PerStream is the fixed setup.
	PerInMB, PerOutMB, PerStream float64
}

var _ Decider = UploadDecider{}

// ShouldCompress applies the upload energy comparison to one block.
func (d UploadDecider) ShouldCompress(rawBytes, compBytes int) bool {
	s := float64(rawBytes) / 1e6
	sc := float64(compBytes) / 1e6
	tc := d.PerInMB*s + d.PerOutMB*sc + d.PerStream
	return d.Params.ShouldCompressUpload(s, sc, tc)
}

// MinSizeBytes returns the upload file-size threshold for this cost model.
func (d UploadDecider) MinSizeBytes() int {
	v := d.Params.UploadThresholdSizeBytes(d.PerInMB, d.PerStream)
	if v > 1e12 {
		return 1 << 40
	}
	return int(v)
}
