package simnet

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"time"
)

// errConnReset is what an endpoint's Write reports when the peer has
// closed: the virtual analogue of ECONNRESET. The proxy client treats it
// (like every error not marked permanent) as transient link damage.
var errConnReset = errors.New("simnet: connection reset by peer")

// simAddr is a net.Addr for virtual endpoints.
type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// endpoint is one side of a virtual connection. All mutable state is
// guarded by the clock's lock. At most one goroutine may block in Read
// and one in Write at a time (the proxy's per-connection handlers and the
// client's fetch loop are sequential, so this matches usage); Close and
// deadline setters may be called from any goroutine, including ones
// outside the clock ledger — they never park.
type endpoint struct {
	c    *Clock
	nw   *Network // nil-able owner; carries the scripted link schedule
	peer *endpoint
	link Link
	// rng draws this direction's transmit jitter.
	rng           *rand.Rand
	local, remote simAddr

	// line, when non-nil, is the node-wide transmitter this endpoint's
	// writes serialize on (a server-side endpoint accepted from a
	// listener with an attached line). nil keeps per-endpoint pacing.
	line *line

	// nextFree is when this endpoint's outgoing link finishes its current
	// transmission; writes queue behind it (serialization, not loss).
	nextFree time.Duration
	// lastArrival is the latest delivery this endpoint has scheduled at
	// the peer; the close marker must not overtake it.
	lastArrival time.Duration

	// buf holds delivered-but-unread chunks, oldest first.
	buf [][]byte
	// rwait / wwait are the currently parked reader / writer, if any.
	rwait, wwait *waiter
	// rdl / wdl are the read / write deadlines; zero means none.
	rdl, wdl time.Time
	// closed is set by the local Close; peerClosed when the peer's close
	// marker has propagated across the link (reads then drain to EOF).
	closed, peerClosed bool
	// handoff marks a server-side endpoint still carrying the busy token
	// Accept attached for its handler goroutine; Close releases it.
	handoff bool
}

// expiredLocked reports whether deadline dl has passed in virtual time.
func (e *endpoint) expiredLocked(dl time.Time) bool {
	return !dl.IsZero() && !dl.After(e.c.epoch.Add(e.c.kern.Now()))
}

// untilLocked converts absolute deadline dl to a delay from virtual now.
func (e *endpoint) untilLocked(dl time.Time) time.Duration {
	return dl.Sub(e.c.epoch) - e.c.kern.Now()
}

// Read returns buffered delivered bytes, parking in virtual time while
// none are available. Data already delivered is returned even when the
// deadline has passed (matching kernel socket buffers); EOF surfaces only
// after the peer's close marker has both arrived and been preceded by
// every scheduled delivery.
func (e *endpoint) Read(b []byte) (int, error) {
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if e.closed {
			return 0, net.ErrClosed
		}
		if len(e.buf) > 0 {
			n := copy(b, e.buf[0])
			if n == len(e.buf[0]) {
				e.buf = e.buf[1:]
			} else {
				e.buf[0] = e.buf[0][n:]
			}
			return n, nil
		}
		if e.peerClosed {
			return 0, io.EOF
		}
		if e.expiredLocked(e.rdl) {
			return 0, os.ErrDeadlineExceeded
		}
		w := &waiter{}
		e.rwait = w
		var tm *timer
		if !e.rdl.IsZero() {
			// Wake at the deadline and re-evaluate: the loop re-derives
			// the timeout, which also handles a deadline that was extended
			// while we were parked.
			tm = c.scheduleLocked(e.untilLocked(e.rdl), func() { c.wakeLocked(w, nil) })
		}
		c.parkLocked(w)
		e.rwait = nil
		if tm != nil {
			tm.stopped = true
		}
		if w.err != nil {
			return 0, w.err
		}
	}
}

// Write serializes b onto the outgoing link: the call occupies the link
// for len(b)/rate (+ jitter) of virtual time — queueing behind earlier
// writes — and the bytes arrive at the peer one latency later. The
// sender parks until its transmission slot completes, which is what
// paces the proxy server at the modeled 802.11b rate.
func (e *endpoint) Write(b []byte) (int, error) {
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.closed {
		return 0, net.ErrClosed
	}
	if e.peerClosed {
		return 0, errConnReset
	}
	if e.expiredLocked(e.wdl) {
		return 0, os.ErrDeadlineExceeded
	}
	if len(b) == 0 {
		return 0, nil
	}
	now := c.kern.Now()
	start := now
	var done time.Duration
	if e.line != nil {
		// Shared node transmitter: queue behind every other connection on
		// this node, at the line's rate. Jitter still comes from this
		// endpoint's own stream so per-connection draws stay deterministic.
		if e.line.nextFree > start {
			start = e.line.nextFree
		}
		done = start + e.line.link.txTime(len(b), e.rng)
		e.line.nextFree = done
		e.nextFree = done
	} else {
		if e.nextFree > start {
			start = e.nextFree
		}
		if e.nw != nil && e.nw.sched != nil {
			done = e.nw.sched.txDone(start, len(b), e.link, e.rng)
		} else {
			done = start + e.link.txTime(len(b), e.rng)
		}
		e.nextFree = done
	}
	arrival := done + e.link.Latency
	if arrival > e.lastArrival {
		e.lastArrival = arrival
	}
	data := append([]byte(nil), b...)
	pe := e.peer
	c.scheduleLocked(arrival-now, func() {
		if pe.closed {
			return // delivered into a closed socket: dropped
		}
		pe.buf = append(pe.buf, data)
		if pe.rwait != nil {
			c.wakeLocked(pe.rwait, nil)
		}
	})
	for {
		now = c.kern.Now()
		if now >= done {
			return len(b), nil
		}
		if e.closed {
			return 0, net.ErrClosed
		}
		if e.peerClosed {
			// The peer hung up while our bytes were in flight; fail the
			// write so the sender notices the disconnect promptly.
			return 0, errConnReset
		}
		if e.expiredLocked(e.wdl) {
			return 0, os.ErrDeadlineExceeded
		}
		wakeAt := done
		if !e.wdl.IsZero() {
			if dl := e.wdl.Sub(c.epoch); dl < wakeAt {
				wakeAt = dl
			}
		}
		w := &waiter{}
		e.wwait = w
		tm := c.scheduleLocked(wakeAt-now, func() { c.wakeLocked(w, nil) })
		c.parkLocked(w)
		e.wwait = nil
		tm.stopped = true
		if w.err != nil {
			return 0, w.err
		}
	}
}

// Close shuts the endpoint: local waiters unblock with net.ErrClosed, a
// close marker propagates to the peer ordered after this direction's last
// scheduled delivery (so the peer drains all data before seeing EOF), and
// a server-side endpoint releases its accept handoff token. Close never
// parks and is safe from any goroutine; closing twice is a no-op.
func (e *endpoint) Close() error {
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if e.rwait != nil {
		c.wakeLocked(e.rwait, nil)
	}
	if e.wwait != nil {
		c.wakeLocked(e.wwait, nil)
	}
	at := e.link.Latency
	if rem := e.lastArrival - c.kern.Now(); rem > at {
		at = rem
	}
	pe := e.peer
	c.scheduleLocked(at, func() {
		if pe.closed {
			return
		}
		pe.peerClosed = true
		if pe.rwait != nil {
			c.wakeLocked(pe.rwait, nil)
		}
		if pe.wwait != nil {
			c.wakeLocked(pe.wwait, nil)
		}
	})
	if e.handoff {
		e.handoff = false
		c.dropTokenLocked()
	}
	return nil
}

func (e *endpoint) LocalAddr() net.Addr  { return e.local }
func (e *endpoint) RemoteAddr() net.Addr { return e.remote }

// SetReadDeadline installs t as the virtual-time read deadline; a parked
// reader is woken to re-evaluate immediately, so expiring the deadline
// (Server.Close's drain does exactly this) unblocks it synchronously.
func (e *endpoint) SetReadDeadline(t time.Time) error {
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	e.rdl = t
	if e.rwait != nil {
		c.wakeLocked(e.rwait, nil)
	}
	return nil
}

// SetWriteDeadline installs t as the virtual-time write deadline.
func (e *endpoint) SetWriteDeadline(t time.Time) error {
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	e.wdl = t
	if e.wwait != nil {
		c.wakeLocked(e.wwait, nil)
	}
	return nil
}

// SetDeadline sets both deadlines.
func (e *endpoint) SetDeadline(t time.Time) error {
	e.SetReadDeadline(t)
	return e.SetWriteDeadline(t)
}
