// Package simnet is the deterministic testbed transport: an in-memory
// net.Conn / net.Listener pair driven by the internal/sim virtual clock,
// with a configurable 802.11b link model (bandwidth, per-hop latency,
// seeded jitter). The unmodified proxy server and client run end-to-end
// on it in virtual time — transfer times, I/O deadlines and retry backoff
// advance the simulated clock, not the host clock — so a multi-client
// hostile-link soak that would take minutes of wall time over real TCP
// replays in milliseconds, bit-identically, from a seed.
//
// # How virtual time advances
//
// The clock keeps a ledger of "busy" goroutines: goroutines the clock
// knows about that are currently runnable. Virtual time is frozen while
// any of them runs — CPU work (compression, CRC, scheduling) costs zero
// virtual time, exactly like the paper's analytical model, which charges
// time only to the link and to the modeled td term. When the last busy
// goroutine parks (a blocked Read, a Sleep, a paced Write, an Accept),
// the clock pops the earliest pending event from the internal/sim kernel,
// jumps to its timestamp and runs it; events wake parked goroutines,
// making them busy again. The result is a deterministic interleaving: a
// goroutine's wall-clock speed never influences what virtual time it
// observes.
//
// Goroutines enter the ledger three ways: explicitly via Clock.Go /
// Clock.Run (harness clients, test bodies), implicitly when a goroutine
// first calls Accept on a listener (the proxy's accept loop), and via a
// handoff token attached to each accepted connection that covers the
// per-connection handler goroutine the server spawns (released when the
// handler closes the connection). Goroutines outside the ledger must not
// block on simnet primitives — doing so panics with a diagnostic — but
// may freely perform non-blocking operations (Close, deadline pokes),
// which is what Server.Close does during drain.
package simnet

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// Clock is the concurrent virtual clock. It implements sim.WallClock, so
// a proxy Client or Server configured with it runs its sleeps and
// deadlines in virtual time. All simnet state (connections, listeners)
// is guarded by the clock's single lock: within one Clock there is one
// timeline and one source of ordering.
type Clock struct {
	mu   sync.Mutex
	kern *sim.Kernel
	// epoch anchors virtual time zero to a wall instant, so Now() returns
	// ordinary time.Time values (logs and span timestamps stay readable).
	epoch time.Time
	// busy counts ledger goroutines currently runnable. Time may only
	// advance when it is zero.
	busy int
	// parked counts goroutines blocked in parkLocked, for diagnostics.
	parked int
}

// NewClock returns a virtual clock at virtual time zero, anchored so that
// Now() starts at (approximately) the real present.
func NewClock() *Clock {
	return &Clock{kern: sim.NewKernel(), epoch: time.Now()}
}

// waiter is one parked goroutine. woken and err are guarded by the clock
// lock; wakeLocked transfers a busy token to the waiter as it wakes it.
// Each waiter sleeps on its own condition variable (lazily created when it
// actually has to wait), so waking one costs one Signal instead of a
// broadcast to every parked goroutine — the difference between O(1) and
// O(clients) per event on a 10,000-client soak.
type waiter struct {
	woken bool
	err   error
	cond  *sync.Cond
}

// timer is a cancellable scheduled callback.
type timer struct{ stopped bool }

// Now returns the current virtual time as a wall-anchored time.Time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch.Add(c.kern.Now())
}

// Elapsed returns the virtual time elapsed since the clock started.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kern.Now()
}

// Sleep parks the calling goroutine for d of virtual time. The caller
// must be in the ledger (Go/Run, or a proxy goroutine covered by an
// accept handoff).
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := &waiter{}
	c.scheduleLocked(d, func() { c.wakeLocked(w, nil) })
	c.parkLocked(w)
}

// Go runs fn on a new goroutine registered in the ledger: the clock will
// not advance past a moment where fn is runnable.
func (c *Clock) Go(fn func()) {
	c.mu.Lock()
	c.busy++
	c.mu.Unlock()
	go func() {
		defer c.exit()
		fn()
	}()
}

// Run executes fn on a ledger goroutine and blocks the caller until it
// returns. It is how code outside the ledger (a test body, a CLI main)
// drives blocking simnet operations: the caller waits on a plain channel,
// invisible to the clock, while fn runs in virtual time.
func (c *Clock) Run(fn func()) {
	done := make(chan struct{})
	c.Go(func() {
		defer close(done)
		fn()
	})
	<-done
}

// exit removes a ledger goroutine that is returning.
func (c *Clock) exit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropTokenLocked()
}

// dropTokenLocked releases one busy token outside a park (goroutine exit,
// accept-loop deregistration, handler-close handoff release) and, when
// that quiesces the system, advances time until someone wakes.
func (c *Clock) dropTokenLocked() {
	c.busy--
	if c.busy < 0 {
		panic("simnet: busy-token ledger went negative (released a token never acquired)")
	}
	c.kickLocked()
}

// kickLocked advances virtual time while the system is quiescent: no
// ledger goroutine runnable, at least one event pending. Each step may
// wake parked goroutines (making busy > 0 again), which stops the loop.
func (c *Clock) kickLocked() {
	for c.busy == 0 && c.kern.Pending() > 0 {
		c.kern.Step()
	}
}

// parkLocked blocks the calling ledger goroutine until w is woken,
// releasing its busy token for the duration. The goroutine that takes
// busy to zero advances the clock itself (kickLocked); every other parked
// goroutine sleeps on its own waiter cond until a wake targets it.
// Called with the lock held; returns with it held.
func (c *Clock) parkLocked(w *waiter) {
	c.busy--
	if c.busy < 0 {
		panic("simnet: blocking call from a goroutine outside the clock ledger; wrap it in Clock.Run or Clock.Go")
	}
	c.parked++
	// If parking just quiesced the system, advance time from right here
	// until some waiter (possibly this one) becomes runnable. Every path
	// that decrements busy kicks, so whenever busy is 0 with events
	// pending, exactly one goroutine is inside this loop stepping them.
	c.kickLocked()
	if !w.woken {
		w.cond = sync.NewCond(&c.mu)
		for !w.woken {
			// Another ledger goroutine is runnable (it will advance time
			// when it parks or exits) or the system is fully idle (an
			// outside goroutine — Server.Close, a new Clock.Go — must
			// intervene). Either way our wake arrives as a targeted Signal.
			w.cond.Wait()
		}
	}
	c.parked--
}

// wakeLocked marks w woken, transferring a busy token to it on its
// behalf — the token is held from this instant, before the goroutine is
// scheduled, so time cannot slip past the wakeup. Waking an already-woken
// waiter is a no-op (a deadline poke racing a delivery, say).
func (c *Clock) wakeLocked(w *waiter, err error) {
	if w.woken {
		return
	}
	w.woken = true
	w.err = err
	c.busy++
	if w.cond != nil {
		w.cond.Signal()
	}
}

// scheduleLocked enqueues fn after d of virtual time and returns a handle
// that cancels it (the callback checks the flag under the clock lock).
func (c *Clock) scheduleLocked(d time.Duration, fn func()) *timer {
	t := &timer{}
	c.kern.Schedule(d, func() {
		if !t.stopped {
			fn()
		}
	})
	return t
}
