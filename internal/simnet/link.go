package simnet

import (
	"math/rand"
	"time"
)

// Link models one hop of the testbed WLAN: a serialization rate, a
// one-way latency, and optional seeded jitter. Each connection's two
// directions are independent instances of the same Link, so a full-rate
// download does not slow the request/ACK direction (the paper's
// downloads are effectively one-way bulk transfers).
type Link struct {
	// BytesPerSec is the effective one-way data rate, MAC overhead
	// included. The paper's measured WaveLAN numbers: 0.6 MB/s effective
	// at nominal 11 Mb/s, 0.18 MB/s at 2 Mb/s (energy.Params.RateMBps
	// uses the same figures, which is what keeps the harness's modeled
	// transfer times and its Eq. 1/Eq. 3 energy accounting on one
	// timeline). Zero or negative means infinitely fast.
	BytesPerSec float64
	// Latency is the one-way propagation + queueing delay per hop.
	Latency time.Duration
	// JitterFrac, when positive, stretches each write's transmit time by
	// a uniform draw from [0, JitterFrac] of itself — contention and
	// retransmission variance. Draws come from the per-direction seeded
	// stream, so a given (Seed, write sequence) always produces the same
	// timeline.
	JitterFrac float64
	// Seed seeds the two per-direction jitter streams.
	Seed int64
}

// WaveLAN11 is the paper's primary configuration: 11 Mb/s nominal,
// 0.6 MB/s effective (Table 1 / Section 3.1), ~2 ms one-way latency.
func WaveLAN11() Link {
	return Link{BytesPerSec: 0.6e6, Latency: 2 * time.Millisecond}
}

// WaveLAN2 is the Section 4.2 validation configuration: 2 Mb/s nominal,
// 0.18 MB/s effective.
func WaveLAN2() Link {
	return Link{BytesPerSec: 0.18e6, Latency: 5 * time.Millisecond}
}

// txTime returns the virtual time serializing n bytes takes on l,
// drawing jitter from rng when configured.
func (l Link) txTime(n int, rng *rand.Rand) time.Duration {
	if l.BytesPerSec <= 0 || n <= 0 {
		return 0
	}
	secs := float64(n) / l.BytesPerSec
	if l.JitterFrac > 0 && rng != nil {
		secs *= 1 + l.JitterFrac*rng.Float64()
	}
	return time.Duration(secs * float64(time.Second))
}

// dirSeed derives the jitter seed for one direction of a connection from
// the link seed (splitmix64-style spreading, so adjacent seeds do not
// produce correlated streams).
func dirSeed(seed int64, salt uint64) int64 {
	z := uint64(seed) + salt*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
