package simnet

import (
	"fmt"
	"time"
)

// line models a node's single physical transmitter (its NIC or radio):
// every server-side endpoint accepted from one listener shares the same
// transmit serialization point, so N concurrent responses from one node
// queue behind each other instead of each enjoying the full link rate.
// Without a line, pacing is per-connection (each direction of each conn
// owns a private nextFree), which models independent client radios well
// but lets a single server scale its aggregate output without bound.
// All fields are guarded by the clock's lock.
type line struct {
	link     Link
	nextFree time.Duration
}

// SetLine attaches a shared transmit line with capacity link to the named
// listener: from then on, connections accepted there serialize their
// server-to-client writes on that line. Jitter for each transmission is
// still drawn from the writing endpoint's own seeded stream, so per-
// connection draw sequences remain deterministic. Existing connections
// are unaffected; only connections dialed after SetLine join the line.
func (nw *Network) SetLine(name string, link Link) error {
	nw.clock.mu.Lock()
	defer nw.clock.mu.Unlock()
	l, ok := nw.listeners[name]
	if !ok || l.closed {
		return fmt.Errorf("simnet: no listener %q to attach a line to", name)
	}
	l.line = &line{link: link}
	return nil
}
