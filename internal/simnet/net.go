package simnet

import (
	"fmt"
	"math/rand"
	"net"
)

// Network is a set of named virtual listeners sharing one Clock. It is
// the factory for both ends of every connection: Listen binds a name,
// Dial reaches it over a Link.
type Network struct {
	clock *Clock
	link  Link
	// Guarded by clock.mu, like all simnet state.
	listeners map[string]*Listener
	connSeq   int
	// sched, when non-nil, scripts the shared medium's rate over virtual
	// time (rate cliffs, power-save pauses); see SetSchedule.
	sched *Schedule
}

// NewNetwork returns a network on clock whose Dial uses link by default.
func NewNetwork(clock *Clock, link Link) *Network {
	return &Network{clock: clock, link: link, listeners: make(map[string]*Listener)}
}

// Clock returns the network's virtual clock.
func (nw *Network) Clock() *Clock { return nw.clock }

// Listener is a virtual net.Listener. Accept must be called from a
// goroutine that is NOT otherwise in the clock ledger (the proxy server's
// plain accept-loop goroutine): each Accept call joins the ledger for its
// own duration, and each accepted connection carries one extra busy token
// covering the handler goroutine the server spawns for it, released when
// that handler closes the connection.
type Listener struct {
	c       *Clock
	nw      *Network
	name    string
	pending []*endpoint
	waiters []*waiter
	// backlog counts busy tokens held on behalf of pending connections
	// that arrived while no Accept was parked. The accept loop is a plain
	// goroutine the clock cannot see between Accept calls; the backlog
	// token freezes virtual time from the instant a connection request
	// lands until that loop (eventually, in real time) accepts it —
	// otherwise the clock could race past the dialer's deadlines while
	// the acceptor was merely unlucky with the host scheduler.
	backlog int
	closed  bool
	// line, when non-nil, is the shared transmitter server-side endpoints
	// accepted from this listener serialize on; see Network.SetLine.
	line *line
}

// Listen binds a virtual listener under name. Names are flat (no port
// semantics); binding a taken name is an error.
func (nw *Network) Listen(name string) (*Listener, error) {
	nw.clock.mu.Lock()
	defer nw.clock.mu.Unlock()
	if _, ok := nw.listeners[name]; ok {
		return nil, fmt.Errorf("simnet: address %q already bound", name)
	}
	l := &Listener{c: nw.clock, nw: nw, name: name}
	nw.listeners[name] = l
	return l, nil
}

// Accept returns the next established connection, parking in virtual
// time while none is pending.
func (l *Listener) Accept() (net.Conn, error) {
	c := l.c
	c.mu.Lock()
	defer c.mu.Unlock()
	// Join the ledger for the duration of the call: between Accept calls
	// the accept loop's (zero-virtual-time) bookkeeping is covered by the
	// returned connection's handoff token.
	c.busy++
	defer c.dropTokenLocked()
	for {
		if l.closed {
			return nil, net.ErrClosed
		}
		if len(l.pending) > 0 {
			ep := l.pending[0]
			l.pending = l.pending[1:]
			if l.backlog > 0 {
				// This connection's arrival froze the clock; our call token
				// keeps busy positive, so dropping it here cannot kick.
				l.backlog--
				c.dropTokenLocked()
			}
			ep.handoff = true
			c.busy++
			return ep, nil
		}
		w := &waiter{}
		l.waiters = append(l.waiters, w)
		c.parkLocked(w)
		for i, o := range l.waiters {
			if o == w {
				l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
				break
			}
		}
		if w.err != nil {
			return nil, w.err
		}
	}
}

// Close unbinds the listener and fails parked and future Accepts.
// Established connections are unaffected.
func (l *Listener) Close() error {
	c := l.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	delete(l.nw.listeners, l.name)
	for _, w := range l.waiters {
		c.wakeLocked(w, net.ErrClosed)
	}
	// Orphaned pending connections will never be accepted; release their
	// backlog tokens so the clock can move again (their dialers then run
	// into deadlines or EOF on their own timelines).
	for l.backlog > 0 {
		l.backlog--
		c.dropTokenLocked()
	}
	return nil
}

// Addr returns the listener's virtual address.
func (l *Listener) Addr() net.Addr { return simAddr(l.name) }

// Dial connects to the named listener over the network's default link.
// The caller must be in the clock ledger (Clock.Go / Clock.Run): the call
// parks for the connection handshake (one round trip of virtual time).
func (nw *Network) Dial(name string) (net.Conn, error) {
	return nw.DialLink(name, nw.link)
}

// DialLink connects to the named listener over an explicit link — the
// hook a harness uses to give each connection its own seeded jitter
// stream.
func (nw *Network) DialLink(name string, link Link) (net.Conn, error) {
	c := nw.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := nw.listeners[name]
	if !ok || l.closed {
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: simAddr(name),
			Err: fmt.Errorf("connection refused (no listener %q)", name)}
	}
	nw.connSeq++
	id := nw.connSeq
	caddr := simAddr(fmt.Sprintf("sim-peer-%d", id))
	cep := &endpoint{c: c, nw: nw, link: link, local: caddr, remote: simAddr(name),
		rng: rand.New(rand.NewSource(dirSeed(link.Seed, 1)))}
	sep := &endpoint{c: c, nw: nw, link: link, local: simAddr(name), remote: caddr,
		rng: rand.New(rand.NewSource(dirSeed(link.Seed, 2))), line: l.line}
	cep.peer, sep.peer = sep, cep

	w := &waiter{}
	// The connection request reaches the listener after one one-way
	// latency; the handshake completes at the dialer one round trip out.
	c.scheduleLocked(link.Latency, func() {
		if l.closed {
			c.wakeLocked(w, &net.OpError{Op: "dial", Net: "sim", Addr: simAddr(name),
				Err: fmt.Errorf("connection refused (listener closed)")})
			return
		}
		l.pending = append(l.pending, sep)
		if len(l.waiters) > 0 {
			c.wakeLocked(l.waiters[0], nil)
		} else {
			// No Accept is parked: hold a busy token until one arrives, so
			// virtual time cannot outrun the accept loop. (A listener that
			// is never accepted from freezes the clock — like dialing a
			// bound port whose accept queue nobody drains.)
			l.backlog++
			c.busy++
		}
	})
	c.scheduleLocked(2*link.Latency, func() { c.wakeLocked(w, nil) })
	c.parkLocked(w)
	if w.err != nil {
		return nil, w.err
	}
	return cep, nil
}

// ensure interface compliance
var (
	_ net.Listener = (*Listener)(nil)
	_ net.Conn     = (*endpoint)(nil)
)
