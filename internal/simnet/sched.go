package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Phase is one step of a scripted link schedule: from Start (virtual time
// since the clock's epoch) onward, the medium serializes at Rate bytes per
// second. Rate <= 0 pauses the link entirely — a power-save window or a
// dead-air fault — and transmissions in flight resume when a later phase
// restores a positive rate. Before the first phase the connection's own
// Link rate applies; per-hop Latency and the per-direction jitter streams
// always come from the Link, so a schedule reshapes the timeline without
// touching any seeded randomness.
type Phase struct {
	Start time.Duration
	Rate  float64
}

// Schedule is an immutable, time-sorted phase list shared by every
// connection of a Network. It is installed once, before traffic starts,
// via Network.SetSchedule; endpoints read it under the clock lock.
type Schedule struct {
	phases []Phase
}

// NewSchedule validates and freezes a phase list: phases must be in
// strictly increasing Start order and the final phase must leave the link
// running (a schedule that ends paused would park writers forever, which
// in virtual time is a deadlock, not slowness).
func NewSchedule(phases []Phase) (*Schedule, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("simnet: empty schedule")
	}
	for i, p := range phases {
		if p.Start < 0 {
			return nil, fmt.Errorf("simnet: phase %d starts at negative time %s", i, p.Start)
		}
		if i > 0 && p.Start <= phases[i-1].Start {
			return nil, fmt.Errorf("simnet: phase %d start %s not after phase %d start %s",
				i, p.Start, i-1, phases[i-1].Start)
		}
	}
	if last := phases[len(phases)-1]; last.Rate <= 0 {
		return nil, fmt.Errorf("simnet: final phase (start %s) leaves the link paused forever", last.Start)
	}
	return &Schedule{phases: append([]Phase(nil), phases...)}, nil
}

// rateAt returns the rate in effect at virtual time t (base before the
// first phase) and the time the current phase ends (0 when it never does).
func (s *Schedule) rateAt(t time.Duration, base float64) (rate float64, until time.Duration) {
	// First phase strictly after t; the one before it governs t.
	i := sort.Search(len(s.phases), func(i int) bool { return s.phases[i].Start > t })
	rate = base
	if i > 0 {
		rate = s.phases[i-1].Rate
	}
	if i < len(s.phases) {
		until = s.phases[i].Start
	}
	return rate, until
}

// txDone returns when a transmission of n bytes that may begin at start
// finishes under the schedule, draining bytes at each phase's rate and
// stalling through paused phases. Jitter stretches the byte count once per
// write — the same single rng draw the constant-rate path makes — so a
// link's seeded timeline stays a pure function of (seed, write sequence)
// whether or not a schedule is installed.
func (s *Schedule) txDone(start time.Duration, n int, base Link, rng *rand.Rand) time.Duration {
	if n <= 0 {
		return start
	}
	bytes := float64(n)
	if base.JitterFrac > 0 && rng != nil {
		bytes *= 1 + base.JitterFrac*rng.Float64()
	}
	t := start
	for bytes > 0 {
		rate, until := s.rateAt(t, base.BytesPerSec)
		if rate <= 0 {
			// Paused. NewSchedule guarantees a later running phase exists.
			t = until
			continue
		}
		need := time.Duration(bytes / rate * float64(time.Second))
		if until == 0 || t+need <= until {
			return t + need
		}
		bytes -= (until - t).Seconds() * rate
		t = until
	}
	return t
}

// SetSchedule installs a scripted link schedule on the network. Every
// connection — existing and future — follows it: each write serializes at
// the rate in effect when its transmission slot runs, pausing through
// power-save phases. Call it before traffic starts; installing a schedule
// mid-transfer only affects writes issued afterwards.
func (nw *Network) SetSchedule(phases []Phase) error {
	s, err := NewSchedule(phases)
	if err != nil {
		return err
	}
	nw.clock.mu.Lock()
	defer nw.clock.mu.Unlock()
	nw.sched = s
	return nil
}
