package simnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// TestLineSerializesNodeWrites: with a shared line on the listener, two
// concurrent 1 MB responses from one node must serialize on the node's
// transmitter — both finish around 2 virtual seconds at 1 MB/s, not 1 —
// whereas per-connection pacing (no line) would let each response enjoy
// the full rate in parallel.
func TestLineSerializesNodeWrites(t *testing.T) {
	c := NewClock()
	link := Link{BytesPerSec: 1e6, Latency: time.Millisecond}
	nw := NewNetwork(c, link)
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLine("srv", link); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for off := 0; off < len(payload); off += 64 << 10 {
					if _, err := conn.Write(payload[off : off+64<<10]); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	waitAcceptorParked(t, c, ln)
	finished := make(chan time.Duration, 2)
	c.Run(func() {
		for i := 0; i < 2; i++ {
			c.Go(func() {
				conn, err := nw.Dial("srv")
				if err != nil {
					t.Error(err)
					return
				}
				got, err := io.ReadAll(conn)
				if err != nil || len(got) != len(payload) {
					t.Errorf("read %d bytes, err %v", len(got), err)
				}
				finished <- c.Elapsed() // before Close's marker moves the clock
				conn.Close()
			})
		}
	})
	a, b := <-finished, <-finished
	ln.Close()
	lo, hi := 1900*time.Millisecond, 2100*time.Millisecond
	for _, e := range []time.Duration{a, b} {
		if e < lo || e > hi {
			t.Fatalf("transfer finished at %v, want ~[%v, %v] (serialized on the line)", e, lo, hi)
		}
	}
}

// TestSetLineUnknownListener: attaching a line to an unbound name fails.
func TestSetLineUnknownListener(t *testing.T) {
	nw := NewNetwork(NewClock(), Link{})
	if err := nw.SetLine("nosuch", Link{BytesPerSec: 1e6}); err == nil {
		t.Fatal("SetLine on unbound name succeeded")
	}
}
