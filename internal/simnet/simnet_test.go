package simnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSleepAdvancesVirtualTime: a ten-virtual-second sleep must cost
// virtually nothing in wall time and exactly ten seconds on the clock.
func TestSleepAdvancesVirtualTime(t *testing.T) {
	c := NewClock()
	wallStart := time.Now()
	c.Run(func() { c.Sleep(10 * time.Second) })
	if got := c.Elapsed(); got != 10*time.Second {
		t.Fatalf("Elapsed = %v, want 10s", got)
	}
	if wall := time.Since(wallStart); wall > 5*time.Second {
		t.Fatalf("virtual sleep took %v of wall time", wall)
	}
}

// TestConcurrentSleepsInterleave: sleepers wake in virtual-time order
// regardless of goroutine scheduling.
func TestConcurrentSleepsInterleave(t *testing.T) {
	c := NewClock()
	order := make(chan time.Duration, 3)
	c.Run(func() {
		for _, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond} {
			d := d
			c.Go(func() {
				c.Sleep(d)
				order <- c.Elapsed()
			})
		}
		c.Sleep(20 * time.Millisecond)
		order <- c.Elapsed()
	})
	// The 30 ms sleeper outlives the Run body; its own park drives the
	// clock to its wake time once everyone else has exited.
	got := []time.Duration{<-order, <-order, <-order}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wake order[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// waitAcceptorParked blocks (in real time) until a goroutine is parked in
// l.Accept. The proxy's accept loop is a plain goroutine invisible to the
// clock until its first Accept call, so a test that wants an exactly
// reproducible timeline syncs here before dialing; without it the first
// dial's listener-side timeline can shift by one latency depending on
// which side reaches the clock first.
func waitAcceptorParked(t *testing.T, c *Clock, l *Listener) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(l.waiters)
		c.mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("acceptor never parked in Accept")
}

// transfer pushes payload through a fresh network at the given link and
// returns the received bytes and the virtual instant the last byte (and
// EOF) was observed.
func transfer(t *testing.T, link Link, payload []byte) ([]byte, time.Duration) {
	t.Helper()
	c := NewClock()
	nw := NewNetwork(c, link)
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for off := 0; off < len(payload); off += 64 << 10 {
			end := min(off+64<<10, len(payload))
			if _, err := conn.Write(payload[off:end]); err != nil {
				return
			}
		}
	}()
	waitAcceptorParked(t, c, ln)
	var got []byte
	var done time.Duration
	c.Run(func() {
		conn, err := nw.Dial("srv")
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		got, err = io.ReadAll(conn)
		if err != nil {
			t.Error(err)
		}
		done = c.Elapsed() // measured before the deferred Close's marker moves the clock
	})
	ln.Close()
	return got, done
}

// TestTransferPacedAtLinkRate: 1 MB over a 1 MB/s link must take ~1
// virtual second (plus handshake and delivery latencies) and arrive
// byte-exact, in far less wall time.
func TestTransferPacedAtLinkRate(t *testing.T) {
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	wallStart := time.Now()
	got, elapsed := transfer(t, Link{BytesPerSec: float64(len(payload)), Latency: time.Millisecond}, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes", len(got))
	}
	lo, hi := time.Second, time.Second+50*time.Millisecond
	if elapsed < lo || elapsed > hi {
		t.Fatalf("virtual transfer time %v, want ~[%v, %v]", elapsed, lo, hi)
	}
	if wall := time.Since(wallStart); wall > 10*time.Second {
		t.Fatalf("virtual transfer took %v of wall time", wall)
	}
}

// TestJitterDeterministicPerSeed: the same seed gives the same virtual
// timeline; different seeds give different ones.
func TestJitterDeterministicPerSeed(t *testing.T) {
	payload := make([]byte, 256<<10)
	link := Link{BytesPerSec: 1e6, Latency: time.Millisecond, JitterFrac: 0.25}
	run := func(seed int64) time.Duration {
		l := link
		l.Seed = seed
		_, elapsed := transfer(t, l, payload)
		return elapsed
	}
	a, b, c := run(7), run(7), run(8)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a == c {
		t.Fatalf("different seeds collided at %v", a)
	}
}

// TestReadDeadlineFiresInVirtualTime: a read deadline on a silent peer
// returns os.ErrDeadlineExceeded at the deadline's virtual instant.
func TestReadDeadlineFiresInVirtualTime(t *testing.T) {
	c := NewClock()
	nw := NewNetwork(c, Link{Latency: time.Millisecond})
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
		// Park in a read (like a real handler) so the accepted side's
		// handoff token is lent back to the clock and time can advance;
		// the close at test end unblocks it. Never writes.
		var b [1]byte
		conn.Read(b[:])
	}()
	waitAcceptorParked(t, c, ln)
	var firedAt time.Duration
	c.Run(func() {
		conn, err := nw.Dial("srv")
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		if err := conn.SetReadDeadline(c.Now().Add(500 * time.Millisecond)); err != nil {
			t.Error(err)
			return
		}
		var buf [1]byte
		_, err = conn.Read(buf[:])
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("Read error = %v, want deadline exceeded", err)
		}
		firedAt = c.Elapsed()
	})
	// Handshake (2 ms) + 500 ms deadline.
	if want := 502 * time.Millisecond; firedAt != want {
		t.Fatalf("deadline fired at %v, want %v", firedAt, want)
	}
	(<-accepted).Close()
	ln.Close()
}

// TestExpiredDeadlineWakesParkedReader: expiring the deadline from a
// goroutine outside the clock ledger (what Server.Close's drain does)
// must unblock a parked reader.
func TestExpiredDeadlineWakesParkedReader(t *testing.T) {
	c := NewClock()
	nw := NewNetwork(c, Link{Latency: time.Millisecond})
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	connCh := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		connCh <- conn
		var b [1]byte
		conn.Read(b[:]) // park, lending the handoff token back
	}()
	dialed := make(chan net.Conn, 1)
	readErr := make(chan error, 1)
	go c.Run(func() {
		conn, err := nw.Dial("srv")
		if err != nil {
			t.Error(err)
			return
		}
		dialed <- conn
		var buf [1]byte
		_, err = conn.Read(buf[:]) // parks forever: no data, no deadline
		readErr <- err
	})
	conn := <-dialed
	time.Sleep(20 * time.Millisecond) // let the reader park
	if err := conn.SetReadDeadline(c.Now()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-readErr:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("Read error = %v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("expiring the deadline did not unblock the reader")
	}
	conn.Close()
	(<-connCh).Close()
	ln.Close()
}

// TestCloseDeliversEOFAfterData: data written before Close must drain at
// the reader before EOF surfaces, even when Close follows immediately.
func TestCloseDeliversEOFAfterData(t *testing.T) {
	c := NewClock()
	nw := NewNetwork(c, Link{BytesPerSec: 1e6, Latency: time.Millisecond})
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("last words before the close marker")
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write(msg)
		conn.Close()
	}()
	c.Run(func() {
		conn, err := nw.Dial("srv")
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		got, err := io.ReadAll(conn)
		if err != nil {
			t.Errorf("ReadAll: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("got %q, want %q", got, msg)
		}
	})
	ln.Close()
}

// TestWriteAfterPeerCloseFails: once the peer's close marker lands,
// writes report a reset — the disconnect signal the proxy server relies
// on to abandon a dead transfer.
func TestWriteAfterPeerCloseFails(t *testing.T) {
	c := NewClock()
	nw := NewNetwork(c, Link{BytesPerSec: 1e6, Latency: time.Millisecond})
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	result := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var werr error
		for i := 0; i < 100 && werr == nil; i++ {
			_, werr = conn.Write(make([]byte, 32<<10))
		}
		result <- werr
	}()
	c.Run(func() {
		conn, err := nw.Dial("srv")
		if err != nil {
			t.Error(err)
			return
		}
		var buf [4096]byte
		conn.Read(buf[:]) // take one chunk, then hang up mid-transfer
		conn.Close()
	})
	select {
	case err := <-result:
		if err == nil {
			t.Fatal("writes into a closed peer never failed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer never observed the disconnect")
	}
	ln.Close()
}

// TestDialClosedListenerRefused: dialing an unbound or closed name fails
// without parking.
func TestDialClosedListenerRefused(t *testing.T) {
	c := NewClock()
	nw := NewNetwork(c, Link{Latency: time.Millisecond})
	if _, err := nw.Dial("nobody"); err == nil {
		t.Fatal("dial to unbound name succeeded")
	}
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if _, err := nw.Dial("srv"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

// schedTransfer pushes payload through a network carrying the given link
// schedule and returns the virtual instant the receiver saw EOF.
func schedTransfer(t *testing.T, link Link, phases []Phase, payload []byte) time.Duration {
	t.Helper()
	c := NewClock()
	nw := NewNetwork(c, link)
	if err := nw.SetSchedule(phases); err != nil {
		t.Fatal(err)
	}
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write(payload)
	}()
	waitAcceptorParked(t, c, ln)
	var done time.Duration
	c.Run(func() {
		conn, err := nw.Dial("srv")
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		if _, err := io.ReadAll(conn); err != nil {
			t.Error(err)
		}
		done = c.Elapsed()
	})
	return done
}

// TestScheduleRateCliff: a mid-transfer rate drop stretches exactly the
// bytes serialized after the cliff. 1500 B at 1000 B/s dropping to 500 B/s
// at t=1s: the first 1000 B take the first second, the remaining 500 B a
// further second — EOF at 2s (latency zero keeps the arithmetic exact).
func TestScheduleRateCliff(t *testing.T) {
	link := Link{BytesPerSec: 1000}
	phases := []Phase{{Start: time.Second, Rate: 500}}
	done := schedTransfer(t, link, phases, bytes.Repeat([]byte{7}, 1500))
	if done != 2*time.Second {
		t.Fatalf("EOF at %v, want 2s", done)
	}
}

// TestSchedulePowerSavePause: a paused phase stalls the transmission for
// its whole window, then the link resumes at the restored rate. 1500 B at
// 1000 B/s with the link dark over [1s, 2s): 1000 B by 1s, dead air to 2s,
// the rest by 2.5s.
func TestSchedulePowerSavePause(t *testing.T) {
	link := Link{BytesPerSec: 1000}
	phases := []Phase{{Start: time.Second, Rate: 0}, {Start: 2 * time.Second, Rate: 1000}}
	done := schedTransfer(t, link, phases, bytes.Repeat([]byte{7}, 1500))
	if done != 2500*time.Millisecond {
		t.Fatalf("EOF at %v, want 2.5s", done)
	}
}

// TestScheduleValidation: out-of-order phases and schedules that end
// paused (an eternal power-save window would deadlock every writer) must
// be rejected before any traffic runs.
func TestScheduleValidation(t *testing.T) {
	nw := NewNetwork(NewClock(), Link{BytesPerSec: 1000})
	cases := [][]Phase{
		nil,
		{{Start: time.Second, Rate: 100}, {Start: time.Second, Rate: 200}},
		{{Start: 2 * time.Second, Rate: 100}, {Start: time.Second, Rate: 200}},
		{{Start: -time.Second, Rate: 100}},
		{{Start: time.Second, Rate: 0}},
	}
	for i, phases := range cases {
		if err := nw.SetSchedule(phases); err == nil {
			t.Errorf("case %d: bad schedule accepted", i)
		}
	}
	if err := nw.SetSchedule([]Phase{{Start: time.Second, Rate: 0}, {Start: 2 * time.Second, Rate: 1}}); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

// TestManyParkedGoroutines: ten thousand concurrent sleepers — the
// loadgen fleet shape — must drain without the wakeup path degrading into
// a broadcast storm. The test goroutine stays outside the ledger (a plain
// WaitGroup wait), so time starts advancing as soon as every sleeper has
// parked.
func TestManyParkedGoroutines(t *testing.T) {
	c := NewClock()
	const n = 10_000
	var wg sync.WaitGroup
	var sum atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			c.Sleep(time.Duration(i%97+1) * time.Millisecond)
			sum.Add(1)
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fleet of sleepers did not drain")
	}
	if got := sum.Load(); got != n {
		t.Fatalf("%d of %d sleepers ran", got, n)
	}
	// Time may begin advancing while later sleepers are still being
	// spawned, so the fleet drains somewhere past one full sleep span but
	// nowhere near the sum of all sleeps.
	if got := c.Elapsed(); got < 97*time.Millisecond || got > time.Second {
		t.Fatalf("Elapsed = %v, want within [97ms, 1s]", got)
	}
}
