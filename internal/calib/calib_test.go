package calib_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/calib"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/obs/export"
)

// TestCalibrationRecoversTable1 is the pipeline's end-to-end oracle: run
// a fault-free soak, export its canonical telemetry, serialize it through
// JSONL, and re-fit the energy model purely from what came back. The
// fitted td(s, sc) and E(s) coefficients must recover the paper's
// Table 1 / Figure 8 parameters to within 1% relative error (in practice
// they match to float precision) with R² ≥ 0.999 — any drift anywhere in
// the span/charge/export/decode path breaks this.
func TestCalibrationRecoversTable1(t *testing.T) {
	sc := harness.Default(1)
	sc.Clients = 4
	sc.FetchesPerClient = 10
	sc.FaultRate = 0
	sc.Churn = 0
	r, err := harness.Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	// Through the wire format, not in-memory structs: the calibrator's
	// contract is the JSONL stream.
	var buf bytes.Buffer
	if err := export.WriteJSONL(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	fits, err := calib.FromJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 1 || fits[0].Device != export.DeviceIPAQ11 {
		t.Fatalf("fits = %+v, want exactly one for %s", fits, export.DeviceIPAQ11)
	}
	f := fits[0]
	if f.TdN < 4 || f.EN < 2 {
		t.Fatalf("too few samples: %d compressed, %d raw", f.TdN, f.EN)
	}
	if !f.Within(0.01) {
		t.Errorf("max coefficient deviation %g exceeds 1%%: %+v", f.MaxCoefRelErr(), f)
	}
	if f.TdStats.R2 < 0.999 || f.EStats.R2 < 0.999 {
		t.Errorf("R² = %g (td), %g (E), want ≥ 0.999 each", f.TdStats.R2, f.EStats.R2)
	}

	ref := energy.Params11Mbps()
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"a", f.TdA, ref.TdA},
		{"b", f.TdB, ref.TdB},
		{"c", f.TdC, ref.TdC},
		{"m_eff", f.ESlope, calib.RefESlope(ref)},
		{"cs", f.EIntercept, ref.Cs},
		{"m", f.M, ref.M},
	} {
		if math.Abs(c.got-c.want) > 0.01*math.Abs(c.want) {
			t.Errorf("coefficient %s = %v, want %v", c.name, c.got, c.want)
		}
	}

	rep := calib.Render(fits)
	if !strings.Contains(rep, "within 1%: yes") {
		t.Errorf("report does not attest the fit:\n%s", rep)
	}
}

// TestCalibrateRejectsUnusableStreams: empty streams and streams with
// only failed fetches must error rather than report a vacuous fit.
func TestCalibrateRejectsUnusableStreams(t *testing.T) {
	if _, err := calib.Calibrate(nil); err == nil {
		t.Error("empty stream must not calibrate")
	}
	bad := []export.Event{
		{Span: "fetch", Outcome: "busy", RawBytes: 100, Device: export.DeviceIPAQ11},
		{Span: "serve", Outcome: "ok", RawBytes: 100, Device: export.DeviceIPAQ11},
	}
	if _, err := calib.Calibrate(bad); err == nil {
		t.Error("stream with no usable fetch events must not calibrate")
	}
}

// TestRefParams maps device tokens to Table 1 parameter sets and rejects
// unknown classes.
func TestRefParams(t *testing.T) {
	if p, ok := calib.RefParams(export.DeviceIPAQ11); !ok || p.RateMBps != energy.Params11Mbps().RateMBps {
		t.Errorf("11 Mb/s params wrong: %+v ok=%v", p, ok)
	}
	if p, ok := calib.RefParams(export.DeviceIPAQ2); !ok || p.RateMBps != energy.Params2Mbps().RateMBps {
		t.Errorf("2 Mb/s params wrong: %+v ok=%v", p, ok)
	}
	if _, ok := calib.RefParams("android-54mbps"); ok {
		t.Error("unknown device class must not resolve")
	}
}
