// Package calib is the calibration stage of the telemetry pipeline: it
// re-derives the paper's device energy-model parameters (Table 1,
// Figure 8a/8b) from an exported wide-event stream, exactly the way the
// paper derived them from measured traces — multiple linear regression
// for decompression time td = a·s + b·sc + c over compressed transfers,
// and simple linear regression for download energy E = m_eff·s + cs over
// uncompressed ones — then scores the fit against the hardcoded
// parameters (R², average relative error, per-coefficient deviation).
//
// On a soak's canonical event stream the fitted coefficients recover
// Table 1 essentially exactly, which makes calibration an end-to-end
// integrity oracle over the whole span/energy accounting path: any drift
// in how fetches are charged, exported or summed shows up as a
// coefficient deviation. It is also the data feed the queue-aware
// compression decider (ROADMAP) trains on.
package calib

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/energy"
	"repro/internal/fit"
	"repro/internal/obs/export"
)

// RefParams returns the hardcoded Table 1 parameter set for a device
// class (export.DeviceIPAQ11 / export.DeviceIPAQ2), false for classes
// the table does not cover.
func RefParams(device string) (energy.Params, bool) {
	switch device {
	case export.DeviceIPAQ11, "":
		// Events with no device tag calibrate against the paper's primary
		// configuration, matching the client's EnergyParams default.
		return energy.Params11Mbps(), true
	case export.DeviceIPAQ2:
		return energy.Params2Mbps(), true
	default:
		return energy.Params{}, false
	}
}

// RefESlope is the reference E(s) slope: the Figure 8b m_eff that folds
// the idle term into the per-MB cost (3.519 J/MB at 11 Mb/s, from
// m + idleFrac·pi/rate).
func RefESlope(p energy.Params) float64 {
	return p.M + p.IdleFrac*p.Pi/p.RateMBps
}

// Fit is one device class's fitted model with its goodness-of-fit.
type Fit struct {
	Device string

	// td(s, sc) = TdA·s + TdB·sc + TdC, fitted by multiple regression
	// over TdN compressed transfers (td observed as cpu_j / pd).
	TdA, TdB, TdC float64
	TdN           int
	TdStats       fit.Stats

	// E(s) = ESlope·s + EIntercept, fitted by simple regression over EN
	// uncompressed transfers' total joules (Figure 8b's form).
	ESlope, EIntercept float64
	EN                 int
	EStats             fit.Stats

	// M is the receive-copy coefficient recovered from ESlope by removing
	// the idle term — directly comparable to Table 1's m.
	M float64

	// Ref is the hardcoded parameter set the fit is scored against.
	Ref energy.Params
}

// MaxCoefRelErr is the largest relative deviation of the five fitted
// coefficients (a, b, c, m_eff, cs) from their references.
func (f Fit) MaxCoefRelErr() float64 {
	rel := func(got, want float64) float64 {
		if want == 0 {
			return math.Abs(got)
		}
		return math.Abs(got-want) / math.Abs(want)
	}
	max := rel(f.TdA, f.Ref.TdA)
	for _, v := range []float64{
		rel(f.TdB, f.Ref.TdB),
		rel(f.TdC, f.Ref.TdC),
		rel(f.ESlope, RefESlope(f.Ref)),
		rel(f.EIntercept, f.Ref.Cs),
	} {
		if v > max {
			max = v
		}
	}
	return max
}

// Within reports whether every fitted coefficient sits within tol
// relative error of its reference.
func (f Fit) Within(tol float64) bool { return f.MaxCoefRelErr() <= tol }

// Calibrate groups an event stream by device class and fits each group,
// using successful fetch events only. Device classes without a reference
// parameter set, or with too few usable samples for either regression,
// are skipped (too few for both yields no Fit for that device). The
// result is sorted by device class.
func Calibrate(events []export.Event) ([]Fit, error) {
	byDev := make(map[string][]export.Event)
	for _, e := range events {
		if e.Span != "fetch" || e.Outcome != "ok" || e.RawBytes <= 0 {
			continue
		}
		byDev[e.Device] = append(byDev[e.Device], e)
	}
	devices := make([]string, 0, len(byDev))
	for d := range byDev {
		devices = append(devices, d)
	}
	sort.Strings(devices)

	var fits []Fit
	for _, dev := range devices {
		ref, ok := RefParams(dev)
		if !ok {
			continue
		}
		f, ok, err := calibrateOne(dev, ref, byDev[dev])
		if err != nil {
			return nil, fmt.Errorf("calib: device %q: %w", dev, err)
		}
		if ok {
			fits = append(fits, f)
		}
	}
	if len(fits) == 0 {
		return nil, fmt.Errorf("calib: no device class had enough usable events (need compressed and raw fetch events with outcome ok)")
	}
	return fits, nil
}

func calibrateOne(dev string, ref energy.Params, events []export.Event) (Fit, bool, error) {
	f := Fit{Device: dev, Ref: ref}

	// Compressed transfers observe td through the model's own charge:
	// cpu_j = td·pd, so td = cpu_j / pd — the event stream's equivalent
	// of the paper timing decompression runs.
	var tdX [][]float64
	var tdY []float64
	// Uncompressed transfers observe whole-download energy directly.
	var eX, eY []float64
	for _, e := range events {
		s := float64(e.RawBytes) / 1e6
		sc := float64(e.WireBytes) / 1e6
		if e.BlocksCompressed > 0 {
			if e.CPUJ <= 0 {
				continue
			}
			tdX = append(tdX, []float64{s, sc})
			tdY = append(tdY, e.CPUJ/ref.Pd)
		} else {
			eX = append(eX, s)
			eY = append(eY, e.TotalJoules())
		}
	}

	fitted := false
	if len(tdY) >= 4 {
		coef, err := fit.Multiple(tdX, tdY)
		if err == nil {
			f.TdA, f.TdB, f.TdC = coef[0], coef[1], coef[2]
			f.TdN = len(tdY)
			pred := make([]float64, len(tdY))
			for i, x := range tdX {
				pred[i] = f.TdA*x[0] + f.TdB*x[1] + f.TdC
			}
			f.TdStats, err = fit.Evaluate(pred, tdY)
			if err != nil {
				return f, false, err
			}
			fitted = true
		} else if err != fit.ErrSingular {
			return f, false, err
		}
	}
	if len(eY) >= 2 {
		slope, intercept, err := fit.Linear(eX, eY)
		if err == nil {
			f.ESlope, f.EIntercept = slope, intercept
			f.EN = len(eY)
			f.M = slope - ref.IdleFrac*ref.Pi/ref.RateMBps
			pred := make([]float64, len(eY))
			for i, x := range eX {
				pred[i] = slope*x + intercept
			}
			f.EStats, err = fit.Evaluate(pred, eY)
			if err != nil {
				return f, false, err
			}
			fitted = true
		} else if err != fit.ErrSingular {
			return f, false, err
		}
	}
	return f, fitted, nil
}

// FromJSONL reads an event stream and calibrates it.
func FromJSONL(r io.Reader) ([]Fit, error) {
	events, err := export.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	return Calibrate(events)
}

// Render prints the calibration report: fitted coefficients next to
// their Table 1 references with goodness-of-fit, one block per device.
func Render(fits []Fit) string {
	var b strings.Builder
	for _, f := range fits {
		ref := f.Ref
		fmt.Fprintf(&b, "calibration %s: %d compressed + %d raw samples\n", f.Device, f.TdN, f.EN)
		if f.TdN > 0 {
			fmt.Fprintf(&b, "  td(s,sc) = %.6f*s + %.6f*sc + %.6f   [table1 %.3f/%.3f/%.3f]  R2=%.6f avgrel=%.2e\n",
				f.TdA, f.TdB, f.TdC, ref.TdA, ref.TdB, ref.TdC, f.TdStats.R2, f.TdStats.AvgRelErr)
		}
		if f.EN > 0 {
			fmt.Fprintf(&b, "  E(s)     = %.6f*s + %.6f          [fig8b  %.3f/%.3f]      R2=%.6f avgrel=%.2e\n",
				f.ESlope, f.EIntercept, RefESlope(ref), ref.Cs, f.EStats.R2, f.EStats.AvgRelErr)
			fmt.Fprintf(&b, "  derived m = %.6f J/MB   [table1 %.3f]\n", f.M, ref.M)
		}
		within := "no"
		if f.Within(0.01) {
			within = "yes"
		}
		fmt.Fprintf(&b, "  max coefficient deviation %.2e (within 1%%: %s)\n", f.MaxCoefRelErr(), within)
	}
	return b.String()
}
