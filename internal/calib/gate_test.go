package calib_test

import (
	"strings"
	"testing"

	"repro/internal/calib"
	"repro/internal/energy"
)

// exactFit builds a Fit whose five gated coefficients sit exactly on
// their references, with sample counts large enough that nothing reads
// as "regression did not run".
func exactFit() calib.Fit {
	ref := energy.Params11Mbps()
	return calib.Fit{
		Device: "ipaq-11mbps",
		TdA:    ref.TdA, TdB: ref.TdB, TdC: ref.TdC, TdN: 100,
		ESlope: calib.RefESlope(ref), EIntercept: ref.Cs, EN: 100,
		M:   ref.M,
		Ref: ref,
	}
}

// TestWithinGateOnPerturbedFit is the calibration gate's sensitivity
// check: the 1% CI gate (Within(0.01)) must actually trip. A fit with
// any single coefficient off by 2% must fail the gate, one off by 0.5%
// must pass it, and the exact fit must report (near-)zero deviation —
// so a regression that silently skews one coefficient can never ride
// through on the other four being perfect.
func TestWithinGateOnPerturbedFit(t *testing.T) {
	if f := exactFit(); f.MaxCoefRelErr() > 1e-12 {
		t.Fatalf("exact fit reports deviation %g, want ~0", f.MaxCoefRelErr())
	}

	perturb := map[string]func(*calib.Fit, float64){
		"TdA":        func(f *calib.Fit, k float64) { f.TdA *= k },
		"TdB":        func(f *calib.Fit, k float64) { f.TdB *= k },
		"TdC":        func(f *calib.Fit, k float64) { f.TdC *= k },
		"ESlope":     func(f *calib.Fit, k float64) { f.ESlope *= k },
		"EIntercept": func(f *calib.Fit, k float64) { f.EIntercept *= k },
	}
	for name, bend := range perturb {
		for _, dir := range []float64{1.02, 0.98} {
			f := exactFit()
			bend(&f, dir)
			if f.Within(0.01) {
				t.Errorf("%s×%g: 2%% coefficient error passed the 1%% gate (deviation %g)",
					name, dir, f.MaxCoefRelErr())
			}
			if got := f.MaxCoefRelErr(); got < 0.019 || got > 0.021 {
				t.Errorf("%s×%g: deviation %g, want ≈0.02", name, dir, got)
			}
		}
		f := exactFit()
		bend(&f, 1.005)
		if !f.Within(0.01) {
			t.Errorf("%s×1.005: 0.5%% coefficient error failed the 1%% gate (deviation %g)",
				name, f.MaxCoefRelErr())
		}
	}
}

// TestRenderFlagsPerturbedFit: the human-facing calibration report must
// say "within 1%: no" for the perturbed fit — that string is what the CI
// grep gates on.
func TestRenderFlagsPerturbedFit(t *testing.T) {
	good, bad := exactFit(), exactFit()
	bad.TdB *= 1.02
	out := calib.Render([]calib.Fit{good, bad})
	if n := strings.Count(out, "within 1%: yes"); n != 1 {
		t.Errorf("report has %d 'within 1%%: yes' lines, want exactly 1 (the exact fit):\n%s", n, out)
	}
	if strings.Count(out, "within 1%: no") != 1 {
		t.Errorf("report does not flag the perturbed fit:\n%s", out)
	}
}
