package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMSendAboveM(t *testing.T) {
	p := Params11Mbps()
	if !(p.MSend() > p.M) {
		t.Errorf("send energy per MB (%v) should exceed receive (%v)", p.MSend(), p.M)
	}
	if math.Abs(p.MSend()-2.55)/2.55 > 0.01 {
		t.Errorf("MSend = %v, want ~2.55 J/MB", p.MSend())
	}
}

func TestUploadEnergyLinear(t *testing.T) {
	p := Params11Mbps()
	e1 := p.UploadEnergy(1)
	e2 := p.UploadEnergy(2)
	if math.Abs((e2-p.Cs)-2*(e1-p.Cs)) > 1e-9 {
		t.Errorf("upload energy not linear: %v, %v", e1, e2)
	}
	if p.UploadEnergy(0) != 0 {
		t.Error("zero upload should cost nothing")
	}
}

func TestUploadCompressedBeatsRawAtHighFactor(t *testing.T) {
	p := Params11Mbps()
	s := 2.0
	sc := s / 10
	tc := 0.4 * s // fast compressor
	if !p.ShouldCompressUpload(s, sc, tc) {
		t.Error("factor 10 with a fast compressor should pay off")
	}
	if !(p.UploadCompressedEnergy(s, sc, tc) < p.UploadEnergy(s)) {
		t.Error("energy comparison inconsistent with decision")
	}
}

func TestUploadSlowCompressorLoses(t *testing.T) {
	p := Params11Mbps()
	s := 2.0
	sc := s / 1.2 // marginal factor
	tc := 1.0 * s // slow level-9-style compressor
	if p.ShouldCompressUpload(s, sc, tc) {
		t.Error("marginal factor with a slow compressor should not pay off")
	}
}

func TestUploadThresholdFactorMonotoneInCost(t *testing.T) {
	p := Params11Mbps()
	fast := p.UploadThresholdFactor(4.0, 0.36)
	slow := p.UploadThresholdFactor(4.0, 0.93)
	if !(slow > fast) {
		t.Errorf("slower compressor should need a higher factor: %v vs %v", slow, fast)
	}
	if fast < 1.01 || slow > 10 {
		t.Errorf("thresholds implausible: %v, %v", fast, slow)
	}
}

func TestUploadThresholdSize(t *testing.T) {
	p := Params11Mbps()
	th := p.UploadThresholdSizeBytes(0.36, 0.0045)
	// The upload side has both the cs floor and the compression lead-in,
	// so its threshold should be at least the download one.
	if th < 3000 {
		t.Errorf("upload threshold %v bytes implausibly low", th)
	}
	if math.IsInf(th, 1) {
		t.Error("threshold should be finite for a fast compressor")
	}
	// An absurdly slow compressor can never pay for itself: decompressing
	// 1 MB of savings costs more than the radio.
	if !math.IsInf(p.UploadThresholdSizeBytes(100, 0.0045), 1) {
		t.Error("100 s/MB compressor should never pay off")
	}
}

func TestQuickUploadDecisionConsistent(t *testing.T) {
	p := Params11Mbps()
	f := func(sRaw, fRaw, cRaw uint16) bool {
		s := 0.05 + float64(sRaw%800)/100
		factor := 1.05 + float64(fRaw%200)/20
		sc := s / factor
		tc := (0.1 + float64(cRaw%100)/100) * s
		should := p.ShouldCompressUpload(s, sc, tc)
		cheaper := p.UploadCompressedEnergy(s, sc, tc) < p.UploadEnergy(s)
		return should == cheaper
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUploadCompressedTimeIncludesLeadIn(t *testing.T) {
	p := Params11Mbps()
	s, sc, tc := 2.0, 0.5, 0.8
	tCompressed := p.UploadCompressedTime(s, sc, tc)
	if !(tCompressed > p.UploadTime(sc)) {
		t.Error("compressed upload time must include the lead-in")
	}
}
