package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDownloadEnergyMatchesPaperLine(t *testing.T) {
	p := Params11Mbps()
	for _, s := range []float64{0.01, 0.1, 0.5, 1, 3, 9.5} {
		got := p.DownloadEnergy(s)
		want := PaperDownloadEnergy(s)
		// The paper rounds its slope to 3.519; ours is 2.486 + 1.55·2/3.
		if math.Abs(got-want)/want > 1e-3 {
			t.Errorf("s=%v: E=%v, want %v", s, got, want)
		}
	}
}

func TestInterleavedMatchesPaperClosedFormLarge(t *testing.T) {
	p := Params11Mbps()
	// For s > 0.128 and td >= ti' the model must equal the paper's Eq. 5
	// second branch exactly.
	cases := []struct{ s, f float64 }{
		{1, 2}, {1, 5}, {3, 2.5}, {8, 18}, {2, 1.3},
	}
	for _, c := range cases {
		sc := c.s / c.f
		got := p.InterleavedEnergy(c.s, sc)
		want := PaperInterleavedEnergy(c.s, sc)
		if math.Abs(got-want)/want > 0.001 {
			t.Errorf("s=%v F=%v: E=%v, paper %v", c.s, c.f, got, want)
		}
	}
}

func TestInterleavedNearBranchBoundary(t *testing.T) {
	// The paper's Eq. 5 splits branches at the approximate condition
	// F = 3.14 − 0.265/s (it neglects ti1); the exact Eq. 3 may pick the
	// other branch close to the boundary, where both branches are within
	// a few percent of each other anyway.
	p := Params11Mbps()
	for _, c := range []struct{ s, f float64 }{{3, 3}, {0.2, 1.5}, {1, 2.9}} {
		sc := c.s / c.f
		got := p.InterleavedEnergy(c.s, sc)
		want := PaperInterleavedEnergy(c.s, sc)
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("s=%v F=%v: E=%v vs paper %v (>8%%)", c.s, c.f, got, want)
		}
	}
}

func TestInterleavedMatchesPaperClosedFormSmall(t *testing.T) {
	p := Params11Mbps()
	for _, c := range []struct{ s, f float64 }{{0.05, 2}, {0.1, 4}, {0.128, 3}} {
		sc := c.s / c.f
		got := p.InterleavedEnergy(c.s, sc)
		want := PaperInterleavedEnergySmall(c.s, sc)
		if math.Abs(got-want)/want > 0.001 {
			t.Errorf("s=%v F=%v: E=%v, paper %v", c.s, c.f, got, want)
		}
	}
}

func TestEquation6Thresholds(t *testing.T) {
	p := Params11Mbps()
	// The model's decision must agree with the paper's published Eq. 6 on
	// a dense grid.
	disagreements := 0
	total := 0
	for _, sB := range []int{1000, 3000, 3900, 5000, 10_000, 50_000, 127_000, 200_000, 1_000_000, 8_000_000} {
		for _, f := range []float64{1.01, 1.1, 1.13, 1.2, 1.3, 1.5, 2, 5, 20} {
			scB := int(float64(sB) / f)
			if scB == 0 {
				continue
			}
			total++
			if p.ShouldCompress(float64(sB)/1e6, float64(scB)/1e6) != PaperShouldCompress(sB, scB) {
				disagreements++
			}
		}
	}
	// Boundary cases may flip either way; bulk agreement must hold.
	if disagreements > total/20 {
		t.Errorf("model disagrees with paper Eq.6 on %d/%d points", disagreements, total)
	}
}

func TestFileThresholdNear3900Bytes(t *testing.T) {
	p := Params11Mbps()
	got := p.ThresholdSizeBytes()
	if math.Abs(got-PaperFileThresholdBytes)/PaperFileThresholdBytes > 0.05 {
		t.Errorf("file threshold %v bytes, paper says ~3900", got)
	}
}

func TestThresholdFactorLargeFile(t *testing.T) {
	p := Params11Mbps()
	// For large files Eq. 6 reduces to F > ~1.13.
	f := p.ThresholdFactor(5.0)
	if math.Abs(f-1.13) > 0.02 {
		t.Errorf("large-file threshold factor %v, want ~1.13", f)
	}
	// Below the file threshold no factor works.
	if !math.IsInf(p.ThresholdFactor(0.003), 1) {
		t.Errorf("3 KB file should never benefit")
	}
}

func TestSleepCrossoverNearPaper(t *testing.T) {
	p := Params11Mbps()
	got := p.SleepCrossoverFactor()
	if math.Abs(got-PaperSleepCrossoverFactor) > 1.0 {
		t.Errorf("sleep crossover factor %v, paper derives ~4.6", got)
	}
}

func TestFillIdleFactor2Mbps(t *testing.T) {
	p := Params2Mbps()
	got := p.FillIdleFactor()
	if math.Abs(got-PaperFillIdleFactor2Mbps)/PaperFillIdleFactor2Mbps > 0.25 {
		t.Errorf("2 Mb/s fill-idle factor %v, paper derives ~27", got)
	}
	// At 11 Mb/s it is far smaller.
	f11 := Params11Mbps().FillIdleFactor()
	if f11 >= got {
		t.Errorf("11 Mb/s fill factor (%v) should be below 2 Mb/s (%v)", f11, got)
	}
}

func TestInterleavingAlwaysBeatsSequential(t *testing.T) {
	p := Params11Mbps()
	f := func(sRaw, fRaw uint16) bool {
		s := 0.01 + float64(sRaw%1000)/100 // 0.01..10 MB
		factor := 1.01 + float64(fRaw%200)/10
		sc := s / factor
		return p.InterleavedEnergy(s, sc) <= p.SequentialEnergy(s, sc)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedEnergyMonotoneInSc(t *testing.T) {
	p := Params11Mbps()
	s := 2.0
	prev := math.Inf(-1)
	for sc := 0.05; sc <= s; sc += 0.05 {
		e := p.InterleavedEnergy(s, sc)
		if e < prev {
			t.Fatalf("E_int not monotone at sc=%v", sc)
		}
		prev = e
	}
}

func TestIdleSplitSumsToIdleTime(t *testing.T) {
	p := Params11Mbps()
	f := func(sRaw, fRaw uint16) bool {
		s := 0.001 + float64(sRaw%1000)/100
		factor := 1.0 + float64(fRaw%100)/10
		sc := s / factor
		tp, t1 := p.IdleSplit(s, sc)
		return tp >= -1e-12 && t1 >= -1e-12 && almost(tp+t1, p.IdleTime(sc), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdleTimeIs40PercentOfDownload(t *testing.T) {
	p := Params11Mbps()
	s := 3.0
	if !almost(p.IdleTime(s), 0.4*s/0.6, 1e-12) {
		t.Errorf("ti = %v", p.IdleTime(s))
	}
}

func TestLowFactorLosesEnergy(t *testing.T) {
	p := Params11Mbps()
	// The paper: net loss of 2-14% for low factors even with interleaving.
	s := 1.0
	sc := s / 1.05
	plain := p.DownloadEnergy(s)
	comp := p.InterleavedEnergy(s, sc)
	if comp <= plain {
		t.Errorf("F=1.05 should lose energy: %v vs %v", comp, plain)
	}
	loss := (comp - plain) / plain
	if loss < 0.01 || loss > 0.20 {
		t.Errorf("loss %.1f%% outside the paper's 2-14%% ballpark", loss*100)
	}
}

func TestHighFactorLargeFileSavesSubstantially(t *testing.T) {
	p := Params11Mbps()
	s := 3.0
	sc := s / 18.23 // nes96.xml's gzip factor
	saving := 1 - p.InterleavedEnergy(s, sc)/p.DownloadEnergy(s)
	if saving < 0.75 {
		t.Errorf("high-factor saving %.2f, want > 0.75", saving)
	}
}

func TestInterleavedTimeNeverBelowTransfer(t *testing.T) {
	p := Params11Mbps()
	f := func(sRaw, fRaw uint16) bool {
		s := 0.01 + float64(sRaw%500)/100
		factor := 1.01 + float64(fRaw%150)/10
		sc := s / factor
		ti := p.InterleavedTime(s, sc)
		return ti >= p.DownloadTime(sc)-1e-12 && ti <= p.SequentialTime(s, sc)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShouldCompressRejectsDegenerate(t *testing.T) {
	p := Params11Mbps()
	if p.ShouldCompress(0, 0) || p.ShouldCompress(1, 0) || p.ShouldCompress(0, 1) {
		t.Error("degenerate sizes must not compress")
	}
}

func TestWithDecompressCost(t *testing.T) {
	p := Params11Mbps().WithDecompressCost(0.55, 0.35, 0.01)
	if !almost(p.DecompressTime(1, 0.2), 0.55+0.35*0.2+0.01, 1e-12) {
		t.Errorf("bzip2-style td = %v", p.DecompressTime(1, 0.2))
	}
	// Heavier decompression must raise the break-even factor.
	if p.ThresholdFactor(2.0) <= Params11Mbps().ThresholdFactor(2.0) {
		t.Error("heavier codec should need a higher factor")
	}
}

func TestParamsString(t *testing.T) {
	if s := Params11Mbps().String(); s == "" {
		t.Error("empty String()")
	}
}

func TestPaperDecompressTimeFit(t *testing.T) {
	// td(1 MB raw, 0.25 MB compressed) from the published fit.
	got := PaperDecompressTime(1.0, 0.25)
	want := 0.161 + 0.161*0.25 + 0.004
	if !almost(got, want, 1e-12) {
		t.Errorf("td = %v, want %v", got, want)
	}
	// The model with default parameters matches the published fit.
	p := Params11Mbps()
	if !almost(p.DecompressTime(1.0, 0.25), got, 1e-12) {
		t.Error("model td diverges from the published fit")
	}
}

func TestPaper2MbpsScCoefficient(t *testing.T) {
	// The 2 Mb/s closed form's sc coefficient (12.4291 J/MB) should match
	// the model's per-MB compressed download cost within a few percent;
	// the s coefficient is a known typo (see EXPERIMENTS.md).
	p := Params2Mbps()
	perMB := p.M + p.IdleFrac/p.RateMBps*p.Pi
	if math.Abs(perMB-12.4291)/12.4291 > 0.05 {
		t.Errorf("2 Mb/s per-MB cost %.3f, paper's sc coefficient 12.4291", perMB)
	}
	// And the literal helper stays as published.
	got := PaperInterleavedEnergy2Mbps(1.0, 0.25)
	want := 2.0125 + 12.4291*0.25 + 0.0275
	if !almost(got, want, 1e-9) {
		t.Errorf("published form = %v, want %v", got, want)
	}
}
