// Package energy implements the paper's analytical energy model for
// compressed downloading over a wireless LAN (Section 4): the download
// energy equation (Eq. 1), sequential compressed downloading (Eq. 2),
// interleaved downloading (Eqs. 3-4), the closed forms of Eq. 5 and the
// compression-decision thresholds of Eq. 6, including the 3900-byte file
// threshold and the sleep-vs-interleave crossover factor.
//
// All sizes are in megabytes and energies in joules, matching the paper's
// units. With the default 11 Mb/s parameters the model reproduces the
// paper's fitted constants exactly:
//
//	E(s)        = 3.519·s + 0.012
//	E_int(s,sc) = 0.2093·s + 3.7283·sc + 0.0172      (s > 0.128 MB)
//	E_int(s,sc) = 0.4589·s + 3.9779·sc + 0.0234      (s ≤ 0.128 MB)
//	compress iff 1.13/F < 1 − 0.00157/s               (s > 0.128 MB)
//	compress iff 1.30/F < 1 − 0.00372/s               (s ≤ 0.128 MB)
//	never compress below ≈ 3900 bytes
package energy

import (
	"fmt"
	"math"
)

// Params are the measured model parameters for one link configuration.
type Params struct {
	// RateMBps is the effective download rate including idle gaps
	// (0.6 MB/s at nominal 11 Mb/s; 0.18 at 2 Mb/s).
	RateMBps float64
	// IdleFrac is the CPU-idle fraction of total downloading time
	// (0.4 at 11 Mb/s, 0.815 at 2 Mb/s).
	IdleFrac float64
	// M is the energy to receive and copy one MB (J/MB); the paper fits
	// m = 2.486 at 11 Mb/s.
	M float64
	// Cs is the communication start-up energy (J); the paper fits 0.012.
	Cs float64
	// Pi is the power during CPU-idle intervals (W); 1.55 W (310 mA) at
	// 11 Mb/s where the radio idles between packets, 2.15 W (430 mA) at
	// 2 Mb/s where the radio stays in receive.
	Pi float64
	// Pd is the average power while decompressing with the radio idle and
	// power saving off: 2.85 W (570 mA).
	Pd float64
	// PdSleep is the decompression power with the radio in power-save
	// idle: 1.70 W (340 mA), the value the paper plugs into Eq. 2 for the
	// sleep-mode comparison.
	PdSleep float64
	// PiSleep is the idle power with power saving on: 0.55 W (110 mA).
	PiSleep float64
	// TdA, TdB, TdC: decompression time td = TdA·s + TdB·sc + TdC
	// (seconds; the paper's Figure 8(a) fit for gzip/zlib).
	TdA, TdB, TdC float64
	// BufMB is the decompression buffer: the first BufMB·sc/s of the
	// compressed stream must arrive before decompression can start
	// (0.128 MB).
	BufMB float64
}

// Params11Mbps returns the paper's primary experimental configuration.
func Params11Mbps() Params {
	return Params{
		RateMBps: 0.6,
		IdleFrac: 0.40,
		M:        2.486,
		Cs:       0.012,
		Pi:       1.55,
		Pd:       2.85,
		PdSleep:  1.70,
		PiSleep:  0.55,
		TdA:      0.161,
		TdB:      0.161,
		TdC:      0.004,
		BufMB:    0.128,
	}
}

// Params2Mbps returns the Section 4.2 validation configuration. At 2 Mb/s
// the radio remains in receive through the CPU-idle gaps, so Pi is the
// idle-CPU/receiving-radio power (430 mA → 2.15 W) and the per-MB receive
// coefficient is slightly higher (longer active servicing per byte).
func Params2Mbps() Params {
	p := Params11Mbps()
	p.RateMBps = 0.18
	p.IdleFrac = 0.815
	p.M = 2.556
	p.Pi = 2.15
	// Decompression during the gaps happens with the radio still in
	// receive: busy+recv draws 620 mA -> 3.10 W.
	p.Pd = 3.10
	return p
}

// DownloadTime returns the wall time in seconds to download s MB.
func (p Params) DownloadTime(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return s / p.RateMBps
}

// IdleTime returns ti, the total CPU-idle time (s) while downloading s MB:
// ti = IdleFrac · s / rate (Eq. 4 preamble).
func (p Params) IdleTime(s float64) float64 {
	return p.IdleFrac * p.DownloadTime(s)
}

// IdleSplit returns (ti', ti1) per Eq. 4: ti1 is the idle time while the
// first compressed buffer (BufMB of raw data) arrives, unusable for
// decompression; ti' is the remainder.
func (p Params) IdleSplit(s, sc float64) (tiPrime, ti1 float64) {
	ti := p.IdleTime(sc)
	if s < p.BufMB {
		// Sub-buffer file: all idle time precedes the first (only)
		// decompressable buffer. Exactly buffer-sized inputs — the
		// selective scheme's blocks — count as the large case.
		return 0, ti
	}
	firstChunk := p.BufMB * sc / s // compressed bytes of the first buffer
	ti1 = p.IdleFrac * firstChunk / p.RateMBps
	return ti - ti1, ti1
}

// DownloadEnergy returns Eq. 1: E = m·s + cs + ti·pi, the energy to
// download s MB uncompressed.
func (p Params) DownloadEnergy(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return p.M*s + p.Cs + p.IdleTime(s)*p.Pi
}

// DecompressTime returns td for raw size s and compressed size sc (MB).
func (p Params) DecompressTime(s, sc float64) float64 {
	return p.TdA*s + p.TdB*sc + p.TdC
}

// SequentialEnergy returns Eq. 2: download the compressed file, then
// decompress, without interleaving and without power saving.
func (p Params) SequentialEnergy(s, sc float64) float64 {
	tiPrime, ti1 := p.IdleSplit(s, sc)
	return p.M*sc + p.Cs + (tiPrime+ti1)*p.Pi + p.DecompressTime(s, sc)*p.Pd
}

// SleepEnergy returns Eq. 2 with the radio put to power-save sleep during
// the decompression phase (pd = PdSleep), the alternative to interleaving
// discussed in Section 4.2.
func (p Params) SleepEnergy(s, sc float64) float64 {
	tiPrime, ti1 := p.IdleSplit(s, sc)
	return p.M*sc + p.Cs + (tiPrime+ti1)*p.Pi + p.DecompressTime(s, sc)*p.PdSleep
}

// InterleavedEnergy returns Eq. 3: decompression of block i overlaps the
// download of block i+1, reclaiming idle time at power pd instead of pi.
func (p Params) InterleavedEnergy(s, sc float64) float64 {
	tiPrime, ti1 := p.IdleSplit(s, sc)
	td := p.DecompressTime(s, sc)
	if tiPrime > td {
		// Decompression fits in the idle windows.
		return p.M*sc + p.Cs + td*p.Pd + (tiPrime-td+ti1)*p.Pi
	}
	return p.M*sc + p.Cs + td*p.Pd + ti1*p.Pi
}

// Breakdown attributes one transfer's modeled energy to the hardware that
// spends it: RadioJ is receive plus communication start-up energy
// (m·sc + cs), CPUJ is decompression energy (td·pd), and IdleJ is the
// CPU-idle residual (pi·idle time not reclaimed by interleaving). The
// three parts sum exactly to the corresponding whole-transfer equation,
// which is what lets a phase-level trace carry per-phase joules whose
// total equals the model's answer.
type Breakdown struct {
	RadioJ float64
	CPUJ   float64
	IdleJ  float64
}

// Total is the whole-transfer energy, the sum of the three parts.
func (b Breakdown) Total() float64 { return b.RadioJ + b.CPUJ + b.IdleJ }

// InterleavedBreakdown splits Eq. 3 — InterleavedEnergy(s, sc) — into its
// radio, CPU and idle components. The identity
//
//	bd.RadioJ + bd.CPUJ + bd.IdleJ == InterleavedEnergy(s, sc)
//
// holds exactly (same floating-point terms, same order of combination).
func (p Params) InterleavedBreakdown(s, sc float64) Breakdown {
	if s <= 0 || sc <= 0 {
		return Breakdown{}
	}
	tiPrime, ti1 := p.IdleSplit(s, sc)
	td := p.DecompressTime(s, sc)
	bd := Breakdown{RadioJ: p.M*sc + p.Cs, CPUJ: td * p.Pd}
	if tiPrime > td {
		bd.IdleJ = (tiPrime - td + ti1) * p.Pi
	} else {
		bd.IdleJ = ti1 * p.Pi
	}
	return bd
}

// DownloadBreakdown splits Eq. 1 — DownloadEnergy(s) — the same way; an
// uncompressed transfer has no CPU component.
func (p Params) DownloadBreakdown(s float64) Breakdown {
	if s <= 0 {
		return Breakdown{}
	}
	return Breakdown{RadioJ: p.M*s + p.Cs, IdleJ: p.IdleTime(s) * p.Pi}
}

// InterleavedTime returns the wall time of an interleaved compressed
// download: the transfer time plus any decompression overhang beyond the
// usable idle windows.
func (p Params) InterleavedTime(s, sc float64) float64 {
	tiPrime, _ := p.IdleSplit(s, sc)
	td := p.DecompressTime(s, sc)
	t := p.DownloadTime(sc)
	if td > tiPrime {
		t += td - tiPrime
	}
	return t
}

// SequentialTime returns the wall time without interleaving: transfer then
// full decompression.
func (p Params) SequentialTime(s, sc float64) float64 {
	return p.DownloadTime(sc) + p.DecompressTime(s, sc)
}

// ShouldCompress reports whether compressing is predicted to save energy
// (Eq. 6): interleaved compressed download vs plain download.
func (p Params) ShouldCompress(s, sc float64) bool {
	if s <= 0 || sc <= 0 {
		return false
	}
	return p.InterleavedEnergy(s, sc) < p.DownloadEnergy(s)
}

// ThresholdFactor returns the minimum compression factor at which
// compression saves energy for a file of s MB (∞ if no factor suffices).
func (p Params) ThresholdFactor(s float64) float64 {
	if s <= 0 {
		return math.Inf(1)
	}
	// E_int is monotone in sc; bisect on sc in (0, s].
	if !p.ShouldCompress(s, s*1e-9) {
		return math.Inf(1)
	}
	lo, hi := s*1e-9, s
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if p.ShouldCompress(s, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return s / lo
}

// ThresholdSizeBytes returns the file size below which compression can
// never save energy, however high the factor — the paper derives 3900
// bytes. It is found by bisecting on s with sc → 0.
func (p Params) ThresholdSizeBytes() float64 {
	eps := 1e-9
	lo, hi := 1e-9, 10.0 // MB
	if p.ShouldCompress(lo, lo*eps) {
		return 0
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if p.ShouldCompress(mid, mid*eps) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi * 1e6
}

// SleepCrossoverFactor returns the compression factor above which putting
// the radio to sleep during (non-interleaved) decompression beats
// interleaving — the paper derives ≈ 4.6 at 11 Mb/s. It is computed for a
// representative large file and is insensitive to s.
func (p Params) SleepCrossoverFactor() float64 {
	const s = 4.0 // MB, large file
	lo, hi := 1.0, 1000.0
	// SleepEnergy - InterleavedEnergy decreases as F grows (sc shrinks):
	// sleep saves more decompression power while interleave reclaims less
	// idle. Find the sign change.
	diff := func(f float64) float64 {
		sc := s / f
		return p.SleepEnergy(s, sc) - p.InterleavedEnergy(s, sc)
	}
	if diff(lo) < 0 {
		return lo
	}
	if diff(hi) > 0 {
		return math.Inf(1)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if diff(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// FillIdleFactor returns the compression factor needed for decompression
// work to completely fill the idle time (td >= ti'); the paper derives
// ≈ 27 at 2 Mb/s. Computed for a representative large file.
func (p Params) FillIdleFactor() float64 {
	const s = 4.0
	lo, hi := 1.0001, 100000.0
	diff := func(f float64) float64 {
		sc := s / f
		tiPrime, _ := p.IdleSplit(s, sc)
		return p.DecompressTime(s, sc) - tiPrime
	}
	if diff(lo) >= 0 {
		return lo
	}
	if diff(hi) < 0 {
		return math.Inf(1)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if diff(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// String summarises the parameter set.
func (p Params) String() string {
	return fmt.Sprintf("rate=%.2fMB/s idle=%.1f%% m=%.3fJ/MB cs=%.3fJ pi=%.2fW pd=%.2fW",
		p.RateMBps, p.IdleFrac*100, p.M, p.Cs, p.Pi, p.Pd)
}
