package energy

// This file carries the paper's literal published constants, used by the
// experiment harness to print paper-vs-reproduction comparisons. The model
// in energy.go reproduces these from first principles; keeping the literal
// values separate lets EXPERIMENTS.md report both.

// PaperDownloadEnergy is the paper's fitted line E = 3.519·s + 0.012 (J, s
// in MB) for plain downloading at 11 Mb/s (Figure 8(b), 7.2% average
// error).
func PaperDownloadEnergy(s float64) float64 {
	return 3.519*s + 0.012
}

// PaperDecompressTime is the paper's fitted gzip decompression time
// td = 0.161·s + 0.161·sc + 0.004 (Figure 8(a); 3% average error, 13%
// max, R² = 96.7%).
func PaperDecompressTime(s, sc float64) float64 {
	return 0.161*s + 0.161*sc + 0.004
}

// PaperInterleavedEnergy is the paper's Equation 5 closed form. For
// s > 0.128 MB it has two branches split at F = 3.14 − 0.265/s:
//
//   - high factors (decompression outruns the shrunken idle windows,
//     ti' ≤ td): E = 0.4589·s + 2.945·sc + 0.132/F + 0.0234 — this is
//     m·sc + cs + td·pd + ti1·pi with the 0.132/F term being ti1·pi;
//   - low factors (idle windows absorb all decompression, ti' > td):
//     E = 0.2093·s + 3.729·sc + 0.0172 — the idle-reclaim form
//     m·sc + cs + td·(pd−pi) + ti·pi.
//
// Both derive exactly from Eqs. 1-4 with the Table 1 powers; see DESIGN.md.
func PaperInterleavedEnergy(s, sc float64) float64 {
	if s < 0.128 {
		return PaperInterleavedEnergySmall(s, sc)
	}
	f := s / sc
	if f > 3.14-0.265/s {
		return 0.4589*s + 2.945*sc + 0.132/f + 0.0234
	}
	return 0.2093*s + 3.729*sc + 0.0172
}

// PaperInterleavedEnergySmall is Equation 5's s <= 0.128 MB branch:
// E = 0.4589·s + 3.9784·sc + 0.0234.
func PaperInterleavedEnergySmall(s, sc float64) float64 {
	return 0.4589*s + 3.9784*sc + 0.0234
}

// PaperInterleavedEnergy2Mbps is the Section 4.2 estimate at the 2 Mb/s
// nominal rate for compression factors below the fill-idle threshold of
// 27: E = 2.0125·s + 12.4291·sc + 0.0275 (s > 0.128 MB).
func PaperInterleavedEnergy2Mbps(s, sc float64) float64 {
	return 2.0125*s + 12.4291*sc + 0.0275
}

// PaperShouldCompress is the paper's Equation 6 decision test.
func PaperShouldCompress(sBytes, scBytes int) bool {
	s := float64(sBytes) / 1e6
	sc := float64(scBytes) / 1e6
	if sc <= 0 || s <= 0 {
		return false
	}
	f := s / sc
	// Exactly buffer-sized inputs (the selective scheme's 0.128 MB
	// blocks) use the large-file branch: mid-stream blocks do overlap.
	if s >= 0.128 {
		return 1.13/f < 1-0.00157/s
	}
	return 1.30/f < 1-0.00372/s
}

// PaperFileThresholdBytes is the file size below which the paper never
// compresses (Section 4.3).
const PaperFileThresholdBytes = 3900

// PaperSleepCrossoverFactor is the paper's derived factor above which
// sleep-mode decompression beats interleaving at 11 Mb/s.
const PaperSleepCrossoverFactor = 4.6

// PaperFillIdleFactor2Mbps is the paper's derived factor needed to fill
// all idle time with decompression at 2 Mb/s.
const PaperFillIdleFactor2Mbps = 27.0

// WithDecompressCost returns a copy of p with the decompression-time
// coefficients replaced, to model schemes other than gzip (the harness
// takes them from device.DecompressCost).
func (p Params) WithDecompressCost(perOutMB, perInMB, perStream float64) Params {
	p.TdA, p.TdB, p.TdC = perOutMB, perInMB, perStream
	return p
}
