package energy

import "math"

// Upload-direction model — the trade-off the paper's introduction raises
// for "lively captured voice and pictures" and leaves to further study
// (Section 7). The structure mirrors Equations 1-4 with the roles
// reversed: the handheld pays CPU energy to *compress* before sending, and
// the radio saving comes from transmitting fewer bytes. Transmit draws
// slightly more than receive (send composite 510 mA vs 497.2 mA), so the
// per-MB send energy is MSend = M * 510/497.2 ≈ 2.55 J/MB at 11 Mb/s.

// sendRatio is the send/receive composite current ratio.
const sendRatio = 510.0 / 497.2

// MSend returns the energy to transmit one MB (J/MB).
func (p Params) MSend() float64 { return p.M * sendRatio }

// UploadTime returns the wall time to upload s MB.
func (p Params) UploadTime(s float64) float64 { return p.DownloadTime(s) }

// UploadEnergy is the uncompressed-upload mirror of Eq. 1:
// E = msend·s + cs + ti·pi.
func (p Params) UploadEnergy(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return p.MSend()*s + p.Cs + p.IdleTime(s)*p.Pi
}

// UploadCompressedEnergy mirrors Eq. 3 for the upload direction: the
// handheld compresses block i+1 (tc seconds of CPU work in total) while
// transmitting block i. tc comes from the handheld compression cost model
// (device.HandheldCompressCost), not the fitted decompression line.
func (p Params) UploadCompressedEnergy(s, sc, tc float64) float64 {
	tiPrime, ti1 := p.IdleSplit(s, sc)
	if tiPrime > tc {
		return p.MSend()*sc + p.Cs + tc*p.Pd + (tiPrime-tc+ti1)*p.Pi
	}
	return p.MSend()*sc + p.Cs + tc*p.Pd + ti1*p.Pi
}

// UploadCompressedTime is the upload mirror of InterleavedTime, plus the
// lead-in compression of the first buffer which cannot overlap anything.
func (p Params) UploadCompressedTime(s, sc, tc float64) float64 {
	tiPrime, _ := p.IdleSplit(s, sc)
	t := p.UploadTime(sc)
	if tc > tiPrime {
		t += tc - tiPrime
	}
	// First-buffer lead-in: the share of tc covering the first BufMB.
	if s > 0 {
		frac := p.BufMB / s
		if frac > 1 {
			frac = 1
		}
		t += tc * frac
	}
	return t
}

// ShouldCompressUpload reports whether compressing before uploading is
// predicted to save energy.
func (p Params) ShouldCompressUpload(s, sc, tc float64) bool {
	if s <= 0 || sc <= 0 {
		return false
	}
	return p.UploadCompressedEnergy(s, sc, tc) < p.UploadEnergy(s)
}

// UploadThresholdSizeBytes returns the upload size below which
// compression can never pay off (sc -> 0), for a handheld compression
// cost of tcPerInMB seconds per raw MB plus a fixed tcFixed seconds of
// per-stream setup (the term that creates the small-file floor, as TdC
// does on the download side).
func (p Params) UploadThresholdSizeBytes(tcPerInMB, tcFixed float64) float64 {
	should := func(s float64) bool {
		return p.ShouldCompressUpload(s, s*1e-9, tcPerInMB*s+tcFixed)
	}
	lo, hi := 1e-9, 10.0
	if should(lo) {
		return 0
	}
	if !should(hi) {
		return math.Inf(1)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if should(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi * 1e6
}

// UploadThresholdFactor returns the minimum compression factor at which
// compressing an upload of s MB pays off, given a compression cost of
// tcPerMB seconds per raw MB (handheld-side). Returns +Inf when no factor
// suffices.
func (p Params) UploadThresholdFactor(s, tcPerMB float64) float64 {
	tc := tcPerMB * s
	if !p.ShouldCompressUpload(s, s*1e-9, tc) {
		return math.Inf(1)
	}
	lo, hi := s*1e-9, s
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if p.ShouldCompressUpload(s, mid, tc) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return s / lo
}
