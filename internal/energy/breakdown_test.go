package energy

import (
	"math"
	"testing"
)

// TestInterleavedBreakdownSums: the radio/CPU/idle attribution must sum
// exactly to Eq. 3 for both measured link configurations, across file
// sizes spanning the sub-buffer and large-file regimes and a range of
// compression factors. The trace layer leans on this identity — per-phase
// joules in a span add up to the model's whole-transfer answer.
func TestInterleavedBreakdownSums(t *testing.T) {
	for _, p := range []Params{Params11Mbps(), Params2Mbps()} {
		for _, s := range []float64{0.004, 0.05, 0.128, 0.5, 1, 4} {
			for _, f := range []float64{1.1, 2, 3.5, 10} {
				sc := s / f
				bd := p.InterleavedBreakdown(s, sc)
				want := p.InterleavedEnergy(s, sc)
				if got := bd.Total(); math.Abs(got-want) > 1e-12*math.Max(1, want) {
					t.Errorf("%v s=%g sc=%g: breakdown total %g != InterleavedEnergy %g", p, s, sc, got, want)
				}
				if bd.RadioJ != p.M*sc+p.Cs {
					t.Errorf("s=%g sc=%g: RadioJ = %g, want %g", s, sc, bd.RadioJ, p.M*sc+p.Cs)
				}
				if bd.CPUJ != p.DecompressTime(s, sc)*p.Pd {
					t.Errorf("s=%g sc=%g: CPUJ = %g, want td*Pd", s, sc, bd.CPUJ)
				}
				if bd.RadioJ < 0 || bd.CPUJ < 0 || bd.IdleJ < 0 {
					t.Errorf("s=%g sc=%g: negative component %+v", s, sc, bd)
				}
			}
		}
	}
}

// TestDownloadBreakdownSums: same identity for the uncompressed Eq. 1.
func TestDownloadBreakdownSums(t *testing.T) {
	for _, p := range []Params{Params11Mbps(), Params2Mbps()} {
		for _, s := range []float64{0.001, 0.128, 1, 4} {
			bd := p.DownloadBreakdown(s)
			want := p.DownloadEnergy(s)
			if got := bd.Total(); math.Abs(got-want) > 1e-12*math.Max(1, want) {
				t.Errorf("s=%g: breakdown total %g != DownloadEnergy %g", s, got, want)
			}
			if bd.CPUJ != 0 {
				t.Errorf("s=%g: uncompressed download must have zero CPU energy, got %g", s, bd.CPUJ)
			}
		}
	}
}

// TestBreakdownDegenerate: non-positive sizes attribute nothing.
func TestBreakdownDegenerate(t *testing.T) {
	p := Params11Mbps()
	for _, bd := range []Breakdown{
		p.InterleavedBreakdown(0, 0),
		p.InterleavedBreakdown(-1, 0.5),
		p.InterleavedBreakdown(1, 0),
		p.DownloadBreakdown(0),
	} {
		if bd.Total() != 0 {
			t.Errorf("degenerate breakdown = %+v, want zero", bd)
		}
	}
}
