package experiment

import (
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/fit"
	"repro/internal/pipeline"
	"repro/internal/wlan"
	"repro/internal/workload"
)

// IdleBreakdown reproduces Figure 3's observation: the fraction of the
// download spent CPU-idle and the fraction of download energy burnt in
// those idle intervals (~40% and ~30% at 11 Mb/s).
type IdleBreakdown struct {
	SizeBytes       int
	IdleTimeFrac    float64
	IdleEnergyFrac  float64
	TotalEnergyJ    float64
	DownloadSeconds float64
}

// Fig3IdleBreakdown measures a plain download's idle time and energy
// shares.
func (c Config) Fig3IdleBreakdown(sizeBytes int) (IdleBreakdown, error) {
	data := workload.Generate(workload.ClassSource, sizeBytes, 3)
	res, err := c.runSpec(pipeline.Spec{Data: data, Mode: pipeline.ModePlain})
	if err != nil {
		return IdleBreakdown{}, err
	}
	p := energy.Params11Mbps()
	s := float64(sizeBytes) / 1e6
	idleT := p.IdleTime(s)
	idleE := idleT * p.Pi
	return IdleBreakdown{
		SizeBytes:       sizeBytes,
		IdleTimeFrac:    idleT / res.TotalSeconds.Seconds(),
		IdleEnergyFrac:  idleE / res.ExactEnergyJ,
		TotalEnergyJ:    res.ExactEnergyJ,
		DownloadSeconds: res.TotalSeconds.Seconds(),
	}, nil
}

// RenderFig3 formats the idle breakdown.
func RenderFig3(b IdleBreakdown) string {
	return fmt.Sprintf(`Figure 3: energy breakdown of download-then-decompress (plain download phase)
size: %d bytes  download: %.3f s  energy: %.3f J
CPU-idle time share of download: %.1f%% (paper: ~40%%)
idle-interval share of download energy: %.1f%% (paper: ~30%%)
`, b.SizeBytes, b.DownloadSeconds, b.TotalEnergyJ, b.IdleTimeFrac*100, b.IdleEnergyFrac*100)
}

// InterleaveScenario is one of Figure 4's two cases.
type InterleaveScenario struct {
	Label          string
	Factor         float64
	IdleWindowsSec float64 // usable idle time during the transfer
	DecompressSec  float64
	OverhangSec    float64 // decompression continuing past the download
}

// Fig4Scenarios runs a high-factor file (decompression fits in the idle
// windows, case (a)) and a low-factor file (decompression slower than
// downloading, case (b)).
func (c Config) Fig4Scenarios() ([]InterleaveScenario, error) {
	cases := []struct {
		label string
		class workload.Class
		size  int
	}{
		// Idle time scales with the compressed size, so the low-factor
		// file is the one whose idle windows absorb all decompression
		// (case a); the high-factor file overruns them (case b) — the
		// paper's F = 3.14 branch constant marks the crossover.
		{"(a) idle time > decompression", workload.ClassBinary, 1_500_000},
		{"(b) idle time < decompression", workload.ClassXML, 1_500_000},
	}
	var out []InterleaveScenario
	for _, cs := range cases {
		data := workload.Generate(cs.class, cs.size, 17)
		res, err := c.runSpec(pipeline.Spec{Data: data, Scheme: codec.Zlib, Mode: pipeline.ModeInterleaved})
		if err != nil {
			return nil, err
		}
		p := energy.Params11Mbps()
		tiPrime, _ := p.IdleSplit(float64(res.RawBytes)/1e6, float64(res.WireBytes)/1e6)
		overhang := res.TotalSeconds - res.TransferSeconds
		out = append(out, InterleaveScenario{
			Label:          cs.label,
			Factor:         res.Factor,
			IdleWindowsSec: tiPrime,
			DecompressSec:  res.DecompressSeconds.Seconds(),
			OverhangSec:    overhang.Seconds(),
		})
	}
	return out, nil
}

// RenderFig4 formats the two interleaving scenarios.
func RenderFig4(scenarios []InterleaveScenario) string {
	var b strings.Builder
	b.WriteString("Figure 4: interleaving scenarios (P(i) decompressed while P(i+1) downloads)\n")
	for _, s := range scenarios {
		fmt.Fprintf(&b, "%s: factor %.2f, usable idle %.3fs, decompression %.3fs, overhang past download %.3fs\n",
			s.Label, s.Factor, s.IdleWindowsSec, s.DecompressSec, s.OverhangSec)
	}
	return b.String()
}

// ErrorPoint is one file's model-vs-measurement error.
type ErrorPoint struct {
	Spec      workload.FileSpec
	Factor    float64
	Measured  float64
	Predicted float64
	RelError  float64 // (calculated - measured) / measured
}

// ErrorSeries is a Figure 7/9-style error-rate series.
type ErrorSeries struct {
	Label       string
	Large       []ErrorPoint
	Small       []ErrorPoint
	AvgAbsLarge float64
	AvgAbsSmall float64
}

// interleaveErrors computes the Eq. 3 prediction error against the metered
// simulation for zlib-with-interleaving at the given rate.
func (c Config) interleaveErrors(label string, rate wlan.RateConfig) (ErrorSeries, error) {
	model := modelFor(codec.Zlib, rate)
	series := ErrorSeries{Label: label}
	large, small := c.corpus()
	run := func(specs []workload.FileSpec) ([]ErrorPoint, error) {
		var pts []ErrorPoint
		for _, spec := range specs {
			data := spec.Generate()
			res, err := c.runSpec(pipeline.Spec{
				Data: data, Scheme: codec.Zlib, Mode: pipeline.ModeInterleaved, Rate: rate,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			s := float64(res.RawBytes) / 1e6
			sc := float64(res.WireBytes) / 1e6
			pred := model.InterleavedEnergy(s, sc)
			meas := res.MeteredEnergyJ
			pts = append(pts, ErrorPoint{
				Spec: spec, Factor: res.Factor,
				Measured: meas, Predicted: pred,
				RelError: (pred - meas) / meas,
			})
		}
		return pts, nil
	}
	var err error
	if series.Large, err = run(large); err != nil {
		return series, err
	}
	if series.Small, err = run(small); err != nil {
		return series, err
	}
	series.AvgAbsLarge = avgAbs(series.Large)
	series.AvgAbsSmall = avgAbs(series.Small)
	return series, nil
}

func avgAbs(pts []ErrorPoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		if p.RelError < 0 {
			sum -= p.RelError
		} else {
			sum += p.RelError
		}
	}
	return sum / float64(len(pts))
}

// Fig7InterleaveErrors reproduces Figure 7: energy-estimation error for
// interleaving at 11 Mb/s (paper: ~2.5% large, ~9.1% small).
func (c Config) Fig7InterleaveErrors() (ErrorSeries, error) {
	return c.interleaveErrors("11Mb/s interleaving model error", wlan.Rate11Mbps())
}

// Fig9BitrateErrors reproduces Figure 9: the same error series at 11 and
// 2 Mb/s.
func (c Config) Fig9BitrateErrors() ([]ErrorSeries, error) {
	s11, err := c.interleaveErrors("11Mb/s", wlan.Rate11Mbps())
	if err != nil {
		return nil, err
	}
	s2, err := c.interleaveErrors("2Mb/s", wlan.Rate2Mbps())
	if err != nil {
		return nil, err
	}
	return []ErrorSeries{s11, s2}, nil
}

// RenderErrorSeries formats a Figure 7/9 error series.
func RenderErrorSeries(title string, series ...ErrorSeries) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, s := range series {
		fmt.Fprintf(&b, "[%s] avg |error|: large %.1f%%, small %.1f%%\n",
			s.Label, s.AvgAbsLarge*100, s.AvgAbsSmall*100)
		b.WriteString(header(
			fmt.Sprintf("%-24s", "file"),
			fmt.Sprintf("%8s", "factor"),
			fmt.Sprintf("%12s", "measured J"),
			fmt.Sprintf("%12s", "model J"),
			fmt.Sprintf("%10s", "error"),
		))
		for _, p := range append(append([]ErrorPoint{}, s.Large...), s.Small...) {
			fmt.Fprintf(&b, "%-24s%8.2f%12.4f%12.4f%10s\n",
				p.Spec.Name, p.Factor, p.Measured, p.Predicted, pct(p.RelError))
		}
	}
	return b.String()
}

// FitResult holds a Figure 8 regression outcome.
type FitResult struct {
	Label  string
	Coefs  []float64
	Paper  []float64
	Points int
	Stats  fit.Stats
}

// Fig8Fits reproduces Figure 8: (a) the decompression-time multiple
// regression td = a·s + b·sc + c and (b) the download-energy line
// E = m'·s + c'. Both are fitted to simulated measurements and compared
// with the paper's published coefficients.
func (c Config) Fig8Fits() ([]FitResult, error) {
	// (a) decompression time across the corpus (sequential runs, gzip).
	var x [][]float64
	var y []float64
	large, small := c.corpus()
	for _, spec := range append(append([]workload.FileSpec{}, large...), small...) {
		data := spec.Generate()
		res, err := c.runSpec(pipeline.Spec{Data: data, Scheme: codec.Gzip, Mode: pipeline.ModeSequential})
		if err != nil {
			return nil, err
		}
		x = append(x, []float64{float64(res.RawBytes) / 1e6, float64(res.WireBytes) / 1e6})
		y = append(y, res.DecompressSeconds.Seconds())
	}
	coefs, err := fit.Multiple(x, y)
	if err != nil {
		return nil, err
	}
	pred := make([]float64, len(y))
	for i := range x {
		pred[i] = coefs[0]*x[i][0] + coefs[1]*x[i][1] + coefs[2]
	}
	stA, err := fit.Evaluate(pred, y)
	if err != nil {
		return nil, err
	}
	fitA := FitResult{
		Label:  "(a) td = a*s + b*sc + c",
		Coefs:  coefs,
		Paper:  []float64{0.161, 0.161, 0.004},
		Points: len(y),
		Stats:  stA,
	}

	// (b) plain download energy over a size sweep.
	var xs, ys []float64
	for _, n := range []int{50_000, 150_000, 400_000, 900_000, 1_600_000, 2_500_000, 4_000_000} {
		size := int(float64(n) * c.scale() * 4)
		if size < 20_000 {
			size = 20_000
		}
		data := workload.Generate(workload.ClassSource, size, uint64(n))
		res, err := c.runSpec(pipeline.Spec{Data: data, Mode: pipeline.ModePlain})
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(size)/1e6)
		ys = append(ys, res.MeteredEnergyJ)
	}
	slope, icept, err := fit.Linear(xs, ys)
	if err != nil {
		return nil, err
	}
	predB := make([]float64, len(ys))
	for i := range xs {
		predB[i] = slope*xs[i] + icept
	}
	stB, err := fit.Evaluate(predB, ys)
	if err != nil {
		return nil, err
	}
	fitB := FitResult{
		Label:  "(b) E = m*s + cs",
		Coefs:  []float64{slope, icept},
		Paper:  []float64{3.519, 0.012},
		Points: len(ys),
		Stats:  stB,
	}
	return []FitResult{fitA, fitB}, nil
}

// RenderFig8 formats the fit results.
func RenderFig8(fits []FitResult) string {
	var b strings.Builder
	b.WriteString("Figure 8: model fitting (measured coefficients vs paper)\n")
	for _, f := range fits {
		fmt.Fprintf(&b, "%s  [%d points]\n  fitted:", f.Label, f.Points)
		for _, v := range f.Coefs {
			fmt.Fprintf(&b, " %.4f", v)
		}
		b.WriteString("\n  paper: ")
		for _, v := range f.Paper {
			fmt.Fprintf(&b, " %.4f", v)
		}
		fmt.Fprintf(&b, "\n  R^2 = %.4f, avg |err| = %.2f%%, max |err| = %.2f%%\n",
			f.Stats.R2, f.Stats.AvgRelErr*100, f.Stats.MaxRelErr*100)
	}
	return b.String()
}

// ThresholdSummary reports the derived decision thresholds next to the
// paper's (Sections 4.2-4.3).
type ThresholdSummary struct {
	FileThresholdBytes   float64
	LargeFactorThreshold float64
	SleepCrossover       float64
	FillIdleFactor2Mbps  float64
}

// Thresholds derives the paper's headline decision constants from the
// model.
func Thresholds() ThresholdSummary {
	p11 := energy.Params11Mbps()
	p2 := energy.Params2Mbps()
	return ThresholdSummary{
		FileThresholdBytes:   p11.ThresholdSizeBytes(),
		LargeFactorThreshold: p11.ThresholdFactor(4.0),
		SleepCrossover:       p11.SleepCrossoverFactor(),
		FillIdleFactor2Mbps:  p2.FillIdleFactor(),
	}
}

// RenderThresholds formats the derived constants.
func RenderThresholds(t ThresholdSummary) string {
	return fmt.Sprintf(`Derived decision thresholds (model | paper)
file-size threshold: %.0f bytes | 3900 bytes
large-file factor threshold: %.3f | 1.13
sleep-vs-interleave crossover factor: %.2f | 4.6
fill-idle factor at 2 Mb/s: %.1f | 27
`, t.FileThresholdBytes, t.LargeFactorThreshold, t.SleepCrossover, t.FillIdleFactor2Mbps)
}
