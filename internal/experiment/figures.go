package experiment

import (
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Bar is one vertical bar of a comparison figure: a scheme/configuration
// run against one file, normalised to the uncompressed download.
type Bar struct {
	Label     string
	Scheme    codec.Scheme
	RelTime   float64 // total time / plain download time
	RelEnergy float64 // exact energy / plain download energy

	// Stacked components (seconds): transfer (lower), decompression
	// (upper), and visible (non-overlapped) compression for on-demand.
	DownloadSec float64
	DecompSec   float64
	CompressSec float64

	Result pipeline.Result
}

// FileComparison is one group of bars (one file) in a figure.
type FileComparison struct {
	Spec  workload.FileSpec
	Plain pipeline.Result
	Bars  []Bar
}

func (c Config) compare(spec workload.FileSpec, runs []pipeline.Spec, labels []string) (FileComparison, error) {
	data := spec.Generate()
	plain, err := c.plainFor(data, runs[0].Rate)
	if err != nil {
		return FileComparison{}, err
	}
	fc := FileComparison{Spec: spec, Plain: plain}
	for i, r := range runs {
		r.Data = data
		res, err := c.runSpec(r)
		if err != nil {
			return FileComparison{}, fmt.Errorf("%s/%s: %w", spec.Name, labels[i], err)
		}
		bar := Bar{
			Label:       labels[i],
			Scheme:      r.Scheme,
			RelTime:     res.TotalSeconds.Seconds() / plain.TotalSeconds.Seconds(),
			RelEnergy:   res.ExactEnergyJ / plain.ExactEnergyJ,
			DownloadSec: res.TransferSeconds.Seconds() - res.StallSeconds.Seconds(),
			DecompSec:   res.DecompressSeconds.Seconds(),
			CompressSec: res.StallSeconds.Seconds(),
			Result:      res,
		}
		fc.Bars = append(fc.Bars, bar)
	}
	return fc, nil
}

// SchemeComparison reproduces Figures 1 and 2: per file, download+
// decompress with gzip, compress and bzip2 (precompressed on the proxy;
// bzip2 with power saving enabled, as the paper presents its energy).
func (c Config) SchemeComparison() ([]FileComparison, error) {
	large, small := c.corpus()
	specs := append(append([]workload.FileSpec{}, large...), small...)
	out := make([]FileComparison, 0, len(specs))
	for _, spec := range specs {
		runs := []pipeline.Spec{
			{Scheme: codec.Gzip, Mode: pipeline.ModeSequential},
			{Scheme: codec.Compress, Mode: pipeline.ModeSequential},
			{Scheme: codec.Bzip2, Mode: pipeline.ModeSequential, SleepDuringDecompress: true},
		}
		fc, err := c.compare(spec, runs, []string{"gzip", "compress", "bzip2"})
		if err != nil {
			return nil, err
		}
		out = append(out, fc)
	}
	return out, nil
}

// InterleavingComparison reproduces Figures 5 and 6: gzip without
// interleaving, zlib without interleaving, and zlib with interleaving.
func (c Config) InterleavingComparison() ([]FileComparison, error) {
	large, small := c.corpus()
	specs := append(append([]workload.FileSpec{}, large...), small...)
	out := make([]FileComparison, 0, len(specs))
	for _, spec := range specs {
		runs := []pipeline.Spec{
			{Scheme: codec.Gzip, Mode: pipeline.ModeSequential},
			{Scheme: codec.Zlib, Mode: pipeline.ModeSequential},
			{Scheme: codec.Zlib, Mode: pipeline.ModeInterleaved},
		}
		fc, err := c.compare(spec, runs, []string{"gzip", "zlib", "zlib+intl"})
		if err != nil {
			return nil, err
		}
		out = append(out, fc)
	}
	return out, nil
}

// selectiveAffected returns the files the block-by-block scheme can
// change: low-factor and mixed-content entries, plus a synthetic tar-like
// mixed file of the kind Section 4.3 calls out.
func (c Config) selectiveAffected() []workload.FileSpec {
	var out []workload.FileSpec
	large, small := c.corpus()
	for _, s := range append(append([]workload.FileSpec{}, large...), small...) {
		if s.PaperGzip < 1.3 || s.Class == workload.ClassPDF || s.Class == workload.ClassTarHTML {
			out = append(out, s)
		}
	}
	mixed := workload.FileSpec{
		Name: "slides.tar", Size: int(2_000_000 * c.scale()), Class: workload.ClassTarHTML,
		Description: "synthetic tar mixing text and media blocks", Large: true,
		PaperGzip: 1.5, PaperCompress: 1.2, PaperBzip2: 1.6,
	}
	if mixed.Size < 512_000 {
		mixed.Size = 512_000
	}
	return append(out, mixed)
}

// SelectiveComparison reproduces Figure 11: gzip (sequential), zlib blind
// interleaved, and zlib with the block-by-block adaptive scheme, on the
// files the scheme affects.
func (c Config) SelectiveComparison() ([]FileComparison, error) {
	specs := c.selectiveAffected()
	out := make([]FileComparison, 0, len(specs))
	for _, spec := range specs {
		data := dataFor(spec)
		plain, err := c.plainFor(data, pipeline.Spec{}.Rate)
		if err != nil {
			return nil, err
		}
		runs := []pipeline.Spec{
			{Scheme: codec.Gzip, Mode: pipeline.ModeSequential},
			{Scheme: codec.Zlib, Mode: pipeline.ModeInterleaved},
			{Scheme: codec.Zlib, Mode: pipeline.ModeInterleaved, Selective: true},
		}
		labels := []string{"gzip", "zlib+intl", "zlib+adaptive"}
		fc := FileComparison{Spec: spec, Plain: plain}
		for i, r := range runs {
			r.Data = data
			res, err := c.runSpec(r)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", spec.Name, labels[i], err)
			}
			fc.Bars = append(fc.Bars, Bar{
				Label:       labels[i],
				Scheme:      r.Scheme,
				RelTime:     res.TotalSeconds.Seconds() / plain.TotalSeconds.Seconds(),
				RelEnergy:   res.ExactEnergyJ / plain.ExactEnergyJ,
				DownloadSec: res.TransferSeconds.Seconds(),
				DecompSec:   res.DecompressSeconds.Seconds(),
				Result:      res,
			})
		}
		out = append(out, fc)
	}
	return out, nil
}

// dataFor generates spec's content, using the mixed generator for the
// synthetic tar entry.
func dataFor(spec workload.FileSpec) []byte {
	if spec.Name == "slides.tar" {
		return workload.MixedFile(spec.Size, 42)
	}
	return spec.Generate()
}

// OnDemandComparison reproduces Figures 12 and 13: compression on demand
// with gzip and compress (whole-file, visible compression time) against
// the revised zlib (block-adaptive, compression overlapped with
// transmission, interleaved decompression). Large files only, as in the
// paper.
func (c Config) OnDemandComparison() ([]FileComparison, error) {
	large, _ := c.corpus()
	out := make([]FileComparison, 0, len(large))
	for _, spec := range large {
		runs := []pipeline.Spec{
			{Scheme: codec.Gzip, Mode: pipeline.ModeInterleaved, OnDemand: true, OnDemandWholeFile: true},
			{Scheme: codec.Compress, Mode: pipeline.ModeInterleaved, OnDemand: true, OnDemandWholeFile: true},
			{Scheme: codec.Zlib, Mode: pipeline.ModeInterleaved, OnDemand: true, Selective: true},
		}
		fc, err := c.compare(spec, runs, []string{"gzip", "compress", "zlib+intl"})
		if err != nil {
			return nil, err
		}
		out = append(out, fc)
	}
	return out, nil
}

// RenderBars formats a comparison figure as rows of relative values with
// stacked components. metric selects "time" or "energy".
func RenderBars(title, metric string, comps []FileComparison) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(header(
		fmt.Sprintf("%-24s", "file"),
		fmt.Sprintf("%-14s", "bar"),
		fmt.Sprintf("%10s", "relative"),
		fmt.Sprintf("%10s", "download"),
		fmt.Sprintf("%10s", "decomp"),
		fmt.Sprintf("%10s", "compress"),
		fmt.Sprintf("%8s", "factor"),
	))
	for _, fc := range comps {
		for i, bar := range fc.Bars {
			name := ""
			if i == 0 {
				name = fc.Spec.Name
			}
			rel := bar.RelTime
			if metric == "energy" {
				rel = bar.RelEnergy
			}
			fmt.Fprintf(&b, "%-24s%-14s%10.3f%9.3fs%9.3fs%9.3fs%8.2f\n",
				name, bar.Label, rel, bar.DownloadSec, bar.DecompSec, bar.CompressSec, bar.Result.Factor)
		}
	}
	return b.String()
}
