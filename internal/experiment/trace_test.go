package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestTraceCapturesIdleFraction(t *testing.T) {
	traces, err := Config{}.Trace(400_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces", len(traces))
	}
	plain := traces[0]
	// Sum idle time (310 mA) over the plain download: ~40%.
	var idle float64
	for _, seg := range plain.Segments {
		if seg.CurrentMA == 310 {
			idle += seg.EndSec - seg.StartSec
		}
	}
	if frac := idle / plain.TotalSec; math.Abs(frac-0.40) > 0.03 {
		t.Errorf("plain idle fraction %.3f", frac)
	}
	// The interleaved trace must contain busy-decompress segments.
	inter := traces[1]
	var busy float64
	for _, seg := range inter.Segments {
		if seg.CurrentMA == 570 {
			busy += seg.EndSec - seg.StartSec
		}
	}
	if busy == 0 {
		t.Error("no decompression segments in the interleaved trace")
	}
	// Segments must be contiguous and ordered.
	for _, tr := range traces {
		prevEnd := 0.0
		for i, seg := range tr.Segments {
			if seg.StartSec < prevEnd-1e-9 {
				t.Fatalf("%s: segment %d overlaps", tr.Label, i)
			}
			if seg.EndSec <= seg.StartSec {
				t.Fatalf("%s: segment %d empty", tr.Label, i)
			}
			prevEnd = seg.EndSec
		}
	}
}

func TestTraceRenders(t *testing.T) {
	traces, err := Config{}.Trace(200_000)
	if err != nil {
		t.Fatal(err)
	}
	csv := RenderTraceCSV(traces)
	if !strings.Contains(csv, "start_s,end_s,current_mA") {
		t.Error("CSV header missing")
	}
	if !strings.Contains(csv, "497.2") {
		t.Error("CSV missing NIC-service current")
	}
	sum := RenderTraceSummary(traces)
	if !strings.Contains(sum, "310.0 mA") {
		t.Error("summary missing idle level")
	}
}
