// Package experiment regenerates every table and figure of the paper's
// evaluation: it runs the real codecs over the synthetic Table 2 corpus on
// the simulated iPAQ/WaveLAN stack and renders the same rows and series the
// paper reports, alongside the paper's published numbers where available.
package experiment

import (
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/pipeline"
	"repro/internal/wlan"
	"repro/internal/workload"
)

// Config controls corpus scaling and measurement detail. The zero value is
// usable: full Table 2 sizes, 300 samples/s metering.
type Config struct {
	// Scale multiplies large-file sizes (small files keep their absolute
	// sizes; the thresholds are absolute). 0 means 1.0 (paper sizes).
	Scale float64
	// MeterRate is the multimeter sampling rate (0 = 300/s).
	MeterRate float64
	// LargeSubset / SmallSubset limit each file group to the first N
	// entries (0 = all), for fast test runs.
	LargeSubset, SmallSubset int
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

// corpus returns the (scaled, subsetted) corpus: large files first, small
// after, preserving the figures' ordering.
func (c Config) corpus() (large, small []workload.FileSpec) {
	for _, s := range workload.ScaledCorpus(c.scale()) {
		if s.Large {
			large = append(large, s)
		} else {
			small = append(small, s)
		}
	}
	if c.LargeSubset > 0 && c.LargeSubset < len(large) {
		large = large[:c.LargeSubset]
	}
	if c.SmallSubset > 0 && c.SmallSubset < len(small) {
		small = small[:c.SmallSubset]
	}
	return large, small
}

// modelFor returns the analytic energy model for a scheme at a rate,
// substituting the scheme's decompression cost coefficients.
func modelFor(scheme codec.Scheme, rate wlan.RateConfig) energy.Params {
	var p energy.Params
	switch rate.NominalMbps {
	case 2:
		p = energy.Params2Mbps()
	default:
		p = energy.Params11Mbps()
	}
	cost := device.DecompressCost(scheme)
	return p.WithDecompressCost(cost.PerOutMB, cost.PerInMB, cost.PerStream)
}

// runSpec executes one pipeline experiment.
func (c Config) runSpec(spec pipeline.Spec) (pipeline.Result, error) {
	if spec.MeterRate == 0 {
		spec.MeterRate = c.MeterRate
	}
	return pipeline.Run(spec)
}

// plainFor returns the uncompressed-download baseline for data.
func (c Config) plainFor(data []byte, rate wlan.RateConfig) (pipeline.Result, error) {
	return c.runSpec(pipeline.Spec{Data: data, Mode: pipeline.ModePlain, Rate: rate})
}

// header renders a fixed-width table header with a separator line.
func header(cols ...string) string {
	var b strings.Builder
	for _, col := range cols {
		b.WriteString(col)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len([]rune(b.String()))-1))
	b.WriteByte('\n')
	return b.String()
}

// pct formats a fraction as a signed percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", f*100) }
