package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/device"
	"repro/internal/multimeter"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PowerRow is one row of Table 1: a device state and its measured current.
type PowerRow struct {
	CPU        device.CPUState
	Radio      device.RadioState
	PowerSave  bool
	NICService bool
	MeasuredMA float64
	TableMA    float64 // the constant from the paper's Table 1
}

// Table1 reproduces the power-parameter table by putting the simulated
// device in each state and reading the metered average current.
func Table1() []PowerRow {
	pt := device.DefaultPowerTable()
	type state struct {
		cpu   device.CPUState
		radio device.RadioState
		ps    bool
		nic   bool
	}
	states := []state{
		{device.CPUIdle, device.RadioSleep, false, false},
		{device.CPUBusy, device.RadioSleep, false, false},
		{device.CPUIdle, device.RadioIdle, false, false},
		{device.CPUIdle, device.RadioIdle, true, false},
		{device.CPUBusy, device.RadioIdle, false, false},
		{device.CPUBusy, device.RadioIdle, true, false},
		{device.CPUIdle, device.RadioRecv, false, false},
		{device.CPUIdle, device.RadioRecv, true, false},
		{device.CPUBusy, device.RadioRecv, false, false},
		{device.CPUBusy, device.RadioRecv, true, false},
		{device.CPUIdle, device.RadioRecv, false, true},
		{device.CPUIdle, device.RadioRecv, true, true},
	}
	rows := make([]PowerRow, 0, len(states))
	for _, st := range states {
		k := sim.NewKernel()
		d := device.New(k, pt)
		d.SetCPU(st.cpu)
		d.SetRadio(st.radio)
		d.SetPowerSave(st.ps)
		d.SetNICActive(st.nic)
		m := multimeter.New(k, d, 0)
		m.Trigger()
		k.Schedule(time.Second, m.Stop)
		k.Run()
		r, err := m.Reading()
		if err != nil {
			continue
		}
		want := pt.Current(st.cpu, st.radio, st.ps)
		if st.nic {
			want = pt.NICServiceOff
			if st.ps {
				want = pt.NICServiceOn
			}
		}
		rows = append(rows, PowerRow{
			CPU: st.cpu, Radio: st.radio, PowerSave: st.ps, NICService: st.nic,
			MeasuredMA: r.AvgMA, TableMA: want,
		})
	}
	return rows
}

// RenderTable1 formats the power table.
func RenderTable1(rows []PowerRow) string {
	var b strings.Builder
	b.WriteString("Table 1: power parameters (mA at 5 V)\n")
	b.WriteString(header(
		fmt.Sprintf("%-10s", "iPAQ"),
		fmt.Sprintf("%-10s", "WaveLAN"),
		fmt.Sprintf("%-12s", "PowerSaving"),
		fmt.Sprintf("%10s", "measured"),
		fmt.Sprintf("%10s", "paper"),
	))
	for _, r := range rows {
		cpu := r.CPU.String()
		if r.NICService {
			cpu = "- (NIC)"
		}
		ps := "off"
		if r.PowerSave {
			ps = "on"
		}
		fmt.Fprintf(&b, "%-10s%-10s%-12s%10.1f%10.1f\n", cpu, r.Radio, ps, r.MeasuredMA, r.TableMA)
	}
	return b.String()
}

// FactorRow is one row of Table 2: a file and its compression factors.
type FactorRow struct {
	Spec     workload.FileSpec
	SizeUsed int
	Gzip     float64
	Compress float64
	Bzip2    float64
}

// Table2 compresses every corpus file with the three schemes at the
// paper's settings and reports the measured factors next to the published
// ones.
func (c Config) Table2() ([]FactorRow, error) {
	large, small := c.corpus()
	specs := append(append([]workload.FileSpec{}, large...), small...)
	rows := make([]FactorRow, 0, len(specs))
	for _, spec := range specs {
		data := spec.Generate()
		row := FactorRow{Spec: spec, SizeUsed: len(data)}
		for _, s := range codec.Schemes() {
			cdc, err := codec.New(s, 0)
			if err != nil {
				return nil, err
			}
			comp, err := cdc.Compress(data)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", spec.Name, s, err)
			}
			f := codec.Factor(len(data), len(comp))
			switch s {
			case codec.Gzip:
				row.Gzip = f
			case codec.Compress:
				row.Compress = f
			case codec.Bzip2:
				row.Bzip2 = f
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 formats the factor table with paper-vs-measured columns.
func RenderTable2(rows []FactorRow) string {
	var b strings.Builder
	b.WriteString("Table 2: test files and compression factors (measured | paper)\n")
	b.WriteString(header(
		fmt.Sprintf("%-24s", "name"),
		fmt.Sprintf("%10s", "size"),
		fmt.Sprintf("%16s", "gzip"),
		fmt.Sprintf("%16s", "compress"),
		fmt.Sprintf("%16s", "bzip2"),
	))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s%10d%8.2f |%5.2f%9.2f |%5.2f%9.2f |%5.2f\n",
			r.Spec.Name, r.SizeUsed,
			r.Gzip, r.Spec.PaperGzip,
			r.Compress, r.Spec.PaperCompress,
			r.Bzip2, r.Spec.PaperBzip2)
	}
	return b.String()
}

// Table3Rows returns the file-description table.
func Table3Rows() []workload.FileSpec { return workload.Table2() }

// RenderTable3 formats the file descriptions.
func RenderTable3() string {
	var b strings.Builder
	b.WriteString("Table 3: test file type information\n")
	b.WriteString(header(fmt.Sprintf("%-24s", "name"), fmt.Sprintf("%-40s", "description")))
	for _, s := range Table3Rows() {
		fmt.Fprintf(&b, "%-24s%-40s\n", s.Name, s.Description)
	}
	return b.String()
}
