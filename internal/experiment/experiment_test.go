package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/wlan"
)

// testConfig keeps runs fast: large files scaled to ~1/40, few files per
// group.
func testConfig() Config {
	return Config{Scale: 1.0 / 40, LargeSubset: 6, SmallSubset: 4}
}

func TestTable1MatchesPaperConstants(t *testing.T) {
	rows := Table1()
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.MeasuredMA-r.TableMA) > 0.5 {
			t.Errorf("%v/%v ps=%v: measured %.1f vs table %.1f",
				r.CPU, r.Radio, r.PowerSave, r.MeasuredMA, r.TableMA)
		}
	}
	if out := RenderTable1(rows); !strings.Contains(out, "Table 1") {
		t.Error("render missing title")
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	rows, err := testConfig().Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// bzip2 should generally lead, compress generally trail (allow
		// slack for the incompressible files where all are ~1).
		if r.Spec.PaperGzip > 2 {
			if !(r.Bzip2 > r.Compress) {
				t.Errorf("%s: bzip2 %.2f should beat compress %.2f", r.Spec.Name, r.Bzip2, r.Compress)
			}
			if !(r.Gzip > r.Compress) {
				t.Errorf("%s: gzip %.2f should beat compress %.2f", r.Spec.Name, r.Gzip, r.Compress)
			}
		}
		if r.Spec.PaperGzip <= 1.1 && r.Gzip > 1.3 {
			t.Errorf("%s: incompressible file got factor %.2f", r.Spec.Name, r.Gzip)
		}
	}
	if out := RenderTable2(rows); !strings.Contains(out, "nes96.xml") {
		t.Error("render missing file names")
	}
	if out := RenderTable3(); !strings.Contains(out, "a xml webpage") {
		t.Error("table 3 render missing descriptions")
	}
}

func TestSchemeComparisonShape(t *testing.T) {
	cfg := Config{Scale: 1.0 / 40, LargeSubset: 4, SmallSubset: 2}
	comps, err := cfg.SchemeComparison()
	if err != nil {
		t.Fatal(err)
	}
	gzWins := 0
	for _, fc := range comps {
		if !fc.Spec.Large || fc.Spec.PaperGzip < 2 {
			continue
		}
		gz := fc.Bars[0].RelEnergy
		lz := fc.Bars[1].RelEnergy
		bz := fc.Bars[2].RelEnergy
		if gz < 1 && gz <= lz && gz <= bz {
			gzWins++
		}
		// All schemes must save energy on the high-factor files.
		if fc.Spec.PaperGzip > 5 && (gz > 0.7 || lz > 0.8 || bz > 0.8) {
			t.Errorf("%s: high-factor file not saving (gz %.2f lz %.2f bz %.2f)",
				fc.Spec.Name, gz, lz, bz)
		}
	}
	if gzWins < 2 {
		t.Errorf("gzip won only %d large compressible files", gzWins)
	}
	if out := RenderBars("Figure 2", "energy", comps); !strings.Contains(out, "gzip") {
		t.Error("render missing bars")
	}
}

func TestInterleavingComparisonShape(t *testing.T) {
	cfg := Config{Scale: 1.0 / 40, LargeSubset: 3, SmallSubset: 1}
	comps, err := cfg.InterleavingComparison()
	if err != nil {
		t.Fatal(err)
	}
	for _, fc := range comps {
		if !fc.Spec.Large {
			continue
		}
		zlibSeq := fc.Bars[1]
		zlibIntl := fc.Bars[2]
		if !(zlibIntl.RelEnergy <= zlibSeq.RelEnergy+1e-9) {
			t.Errorf("%s: interleaving raised energy %.3f -> %.3f",
				fc.Spec.Name, zlibSeq.RelEnergy, zlibIntl.RelEnergy)
		}
		if !(zlibIntl.RelTime <= zlibSeq.RelTime+1e-9) {
			t.Errorf("%s: interleaving raised time %.3f -> %.3f",
				fc.Spec.Name, zlibSeq.RelTime, zlibIntl.RelTime)
		}
	}
}

func TestSelectiveComparisonNeverLoses(t *testing.T) {
	cfg := Config{Scale: 1.0 / 40, LargeSubset: 23, SmallSubset: 1}
	comps, err := cfg.SelectiveComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) < 3 {
		t.Fatalf("only %d affected files", len(comps))
	}
	for _, fc := range comps {
		adaptive := fc.Bars[2]
		if adaptive.RelEnergy > 1.02 {
			t.Errorf("%s: adaptive scheme costs %.3fx plain energy", fc.Spec.Name, adaptive.RelEnergy)
		}
		blind := fc.Bars[1]
		if adaptive.RelEnergy > blind.RelEnergy*1.03 {
			t.Errorf("%s: adaptive (%.3f) worse than blind (%.3f)",
				fc.Spec.Name, adaptive.RelEnergy, blind.RelEnergy)
		}
	}
}

func TestOnDemandComparisonShape(t *testing.T) {
	cfg := Config{Scale: 1.0 / 40, LargeSubset: 4}
	comps, err := cfg.OnDemandComparison()
	if err != nil {
		t.Fatal(err)
	}
	for _, fc := range comps {
		gz, lz, zl := fc.Bars[0], fc.Bars[1], fc.Bars[2]
		// The revised zlib masks compression: no visible compress bar.
		if zl.CompressSec > 0.3*zl.DownloadSec+0.05 {
			t.Errorf("%s: zlib visible compression %.3fs", fc.Spec.Name, zl.CompressSec)
		}
		// gzip should beat compress in nearly all compressible cases.
		if fc.Spec.PaperGzip > 2.2 && gz.RelEnergy > lz.RelEnergy*1.15 {
			t.Errorf("%s: on-demand gzip %.3f much worse than compress %.3f",
				fc.Spec.Name, gz.RelEnergy, lz.RelEnergy)
		}
	}
}

func TestFig3Breakdown(t *testing.T) {
	b, err := testConfig().Fig3IdleBreakdown(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.IdleTimeFrac-0.40) > 0.03 {
		t.Errorf("idle time fraction %.3f, want ~0.40", b.IdleTimeFrac)
	}
	if math.Abs(b.IdleEnergyFrac-0.30) > 0.04 {
		t.Errorf("idle energy fraction %.3f, want ~0.30", b.IdleEnergyFrac)
	}
	if out := RenderFig3(b); !strings.Contains(out, "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFig4Scenarios(t *testing.T) {
	scenarios, err := testConfig().Fig4Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2 {
		t.Fatalf("got %d scenarios", len(scenarios))
	}
	a, b := scenarios[0], scenarios[1]
	if !(a.Factor < b.Factor) {
		t.Errorf("scenario (a) should be the low-factor one: %.2f vs %.2f", a.Factor, b.Factor)
	}
	// Case (a): the idle windows absorb all decompression, no overhang.
	if !(a.DecompressSec < a.IdleWindowsSec) {
		t.Errorf("case (a) should fit in idle windows: %.3f vs %.3f", a.DecompressSec, a.IdleWindowsSec)
	}
	// Case (b): decompression exceeds the usable idle windows.
	if !(b.DecompressSec > b.IdleWindowsSec) {
		t.Errorf("case (b) should overrun idle windows: %.3f vs %.3f", b.DecompressSec, b.IdleWindowsSec)
	}
	if out := RenderFig4(scenarios); !strings.Contains(out, "Figure 4") {
		t.Error("render missing title")
	}
}

func TestFig7ErrorsSmall(t *testing.T) {
	series, err := testConfig().Fig7InterleaveErrors()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 2.5% (large) and 9.1% (small); our simulator obeys
	// the same primitives, so errors must stay moderate.
	if series.AvgAbsLarge > 0.08 {
		t.Errorf("large-file model error %.1f%%", series.AvgAbsLarge*100)
	}
	if series.AvgAbsSmall > 0.20 {
		t.Errorf("small-file model error %.1f%%", series.AvgAbsSmall*100)
	}
	if out := RenderErrorSeries("Figure 7", series); !strings.Contains(out, "avg |error|") {
		t.Error("render missing summary")
	}
}

func TestFig8FitsRecoverCoefficients(t *testing.T) {
	fits, err := testConfig().Fig8Fits()
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 2 {
		t.Fatalf("got %d fits", len(fits))
	}
	td := fits[0]
	if math.Abs(td.Coefs[0]-0.161) > 0.02 {
		t.Errorf("td slope on s: %.4f, want ~0.161", td.Coefs[0])
	}
	if td.Stats.R2 < 0.95 {
		t.Errorf("td fit R^2 %.3f, paper reports 96.7%%", td.Stats.R2)
	}
	e := fits[1]
	if math.Abs(e.Coefs[0]-3.519)/3.519 > 0.03 {
		t.Errorf("download energy slope %.4f, want ~3.519", e.Coefs[0])
	}
	if math.Abs(e.Coefs[1]-0.012) > 0.02 {
		t.Errorf("download energy intercept %.4f, want ~0.012", e.Coefs[1])
	}
	if out := RenderFig8(fits); !strings.Contains(out, "Figure 8") {
		t.Error("render missing title")
	}
}

func TestFig9BothRates(t *testing.T) {
	// Large files must stay above the 0.128 MB buffer for the large-file
	// branch of the model to apply, so scale less aggressively here.
	cfg := Config{Scale: 1.0 / 8, LargeSubset: 3, SmallSubset: 2}
	series, err := cfg.Fig9BitrateErrors()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if s.AvgAbsLarge > 0.12 {
			t.Errorf("[%s] large error %.1f%%", s.Label, s.AvgAbsLarge*100)
		}
	}
}

func TestThresholdsNearPaper(t *testing.T) {
	th := Thresholds()
	if math.Abs(th.FileThresholdBytes-3900) > 200 {
		t.Errorf("file threshold %.0f", th.FileThresholdBytes)
	}
	if math.Abs(th.LargeFactorThreshold-1.13) > 0.02 {
		t.Errorf("factor threshold %.3f", th.LargeFactorThreshold)
	}
	if out := RenderThresholds(th); !strings.Contains(out, "3900") {
		t.Error("render missing paper constants")
	}
}

func TestModelForSchemes(t *testing.T) {
	for _, s := range codec.Schemes() {
		p11 := modelFor(s, wlan.Rate11Mbps())
		if p11.TdA <= 0 {
			t.Errorf("%v: bad 11 Mb/s model", s)
		}
		p2 := modelFor(s, wlan.Rate2Mbps())
		if p2.RateMBps != 0.18 {
			t.Errorf("%v: 2 Mb/s model rate %.2f", s, p2.RateMBps)
		}
	}
}
