package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TraceResult is a captured device-current timeline for one experiment.
type TraceResult struct {
	Label    string
	Segments []TraceSegment
	TotalSec float64
	EnergyJ  float64
}

// TraceSegment is one constant-current interval.
type TraceSegment struct {
	StartSec  float64
	EndSec    float64
	CurrentMA float64
}

// Trace captures the current timeline of a plain download and an
// interleaved compressed download of the same content — the raw data
// behind Figures 3 and 4.
func (c Config) Trace(sizeBytes int) ([]TraceResult, error) {
	data := workload.Generate(workload.ClassSource, sizeBytes, 29)
	out := make([]TraceResult, 0, 2)
	for _, cs := range []struct {
		label string
		spec  pipeline.Spec
	}{
		{"plain download", pipeline.Spec{Data: data, Mode: pipeline.ModePlain, CaptureTrace: true}},
		{"gzip interleaved", pipeline.Spec{Data: data, Scheme: codec.Gzip, Mode: pipeline.ModeInterleaved, CaptureTrace: true}},
	} {
		res, err := c.runSpec(cs.spec)
		if err != nil {
			return nil, err
		}
		tr := TraceResult{Label: cs.label, TotalSec: res.TotalSeconds.Seconds(), EnergyJ: res.ExactEnergyJ}
		for i, seg := range res.Trace {
			end := res.TotalSeconds
			if i+1 < len(res.Trace) {
				end = res.Trace[i+1].Start
			}
			if end <= seg.Start {
				continue
			}
			tr.Segments = append(tr.Segments, TraceSegment{
				StartSec:  seg.Start.Seconds(),
				EndSec:    end.Seconds(),
				CurrentMA: seg.CurrentMA,
			})
		}
		out = append(out, tr)
	}
	return out, nil
}

// RenderTraceCSV emits the timeline as CSV (start_s,end_s,current_mA per
// row, one block per trace), suitable for external plotting.
func RenderTraceCSV(traces []TraceResult) string {
	var b strings.Builder
	for _, tr := range traces {
		fmt.Fprintf(&b, "# %s: %.4f s, %.4f J, %d segments\n", tr.Label, tr.TotalSec, tr.EnergyJ, len(tr.Segments))
		b.WriteString("start_s,end_s,current_mA\n")
		for _, seg := range tr.Segments {
			fmt.Fprintf(&b, "%.6f,%.6f,%.1f\n", seg.StartSec, seg.EndSec, seg.CurrentMA)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTraceSummary prints a compact histogram of time per current level.
func RenderTraceSummary(traces []TraceResult) string {
	var b strings.Builder
	b.WriteString("Device current timelines (Figure 3/4 raw data)\n")
	for _, tr := range traces {
		fmt.Fprintf(&b, "[%s] total %.3f s, %.3f J\n", tr.Label, tr.TotalSec, tr.EnergyJ)
		perLevel := map[float64]time.Duration{}
		for _, seg := range tr.Segments {
			perLevel[seg.CurrentMA] += time.Duration((seg.EndSec - seg.StartSec) * float64(time.Second))
		}
		for _, level := range []float64{90, 110, 310, 340, 430, 462.5, 497.2, 570, 620} {
			if d, ok := perLevel[level]; ok {
				fmt.Fprintf(&b, "  %6.1f mA: %8.3f s (%4.1f%%)\n", level, d.Seconds(), 100*d.Seconds()/tr.TotalSec)
			}
		}
	}
	return b.String()
}
