package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/multimeter"
	"repro/internal/pipeline"
	"repro/internal/selective"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/wlan"
	"repro/internal/workload"
)

// Ablation studies for the design choices DESIGN.md calls out: the gzip
// effort level the paper fixes at 9, the 0.128 MB block size of the
// selective scheme, and the multimeter sampling rate. Plus the upload
// extension the paper's introduction raises and leaves to future work.

// LevelRow is one compression-level data point.
type LevelRow struct {
	Level       int
	Factor      float64
	CompressMB  float64 // host-side compression throughput, MB/s
	InterleaveJ float64 // modeled interleaved download energy
}

// AblationLevels sweeps gzip levels 1-9 on representative text: the paper
// notes "a high compression factor does not increase the decompression
// speed and energy much", so level 9 is almost free energy — this study
// quantifies it.
func (c Config) AblationLevels() ([]LevelRow, error) {
	data := workload.Generate(workload.ClassSource, int(2_000_000*c.scale()*8)+200_000, 13)
	model := energy.Params11Mbps()
	s := float64(len(data)) / 1e6
	rows := make([]LevelRow, 0, 9)
	for level := 1; level <= 9; level++ {
		cdc, err := codec.New(codec.Gzip, level)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		comp, err := cdc.Compress(data)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		sc := float64(len(comp)) / 1e6
		row := LevelRow{
			Level:       level,
			Factor:      codec.Factor(len(data), len(comp)),
			InterleaveJ: model.InterleavedEnergy(s, sc),
		}
		if elapsed > 0 {
			row.CompressMB = s / elapsed
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblationLevels formats the level sweep.
func RenderAblationLevels(rows []LevelRow) string {
	var b strings.Builder
	b.WriteString("Ablation: gzip compression level (text workload)\n")
	b.WriteString(header(
		fmt.Sprintf("%-8s", "level"),
		fmt.Sprintf("%10s", "factor"),
		fmt.Sprintf("%14s", "comp MB/s"),
		fmt.Sprintf("%16s", "download J"),
	))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d%10.3f%14.2f%16.4f\n", r.Level, r.Factor, r.CompressMB, r.InterleaveJ)
	}
	return b.String()
}

// BlockSizeRow is one selective-block-size data point on mixed content.
type BlockSizeRow struct {
	BlockBytes       int
	WireBytes        int
	Factor           float64
	BlocksCompressed int
	BlocksTotal      int
	EnergyJ          float64 // modeled interleaved energy of the container
}

// AblationBlockSize sweeps the selective scheme's block size on a mixed
// tar-like file. Small blocks track content boundaries tightly but pay
// per-block compression restarts; large blocks dilute the per-block
// decision — 128 kB is the paper's compromise.
func (c Config) AblationBlockSize() ([]BlockSizeRow, error) {
	data := workload.MixedFile(int(2_048_000*c.scale()*8)+512_000, 21)
	cdc, err := codec.New(codec.Zlib, 9)
	if err != nil {
		return nil, err
	}
	model := energy.Params11Mbps()
	s := float64(len(data)) / 1e6
	var rows []BlockSizeRow
	for _, bs := range []int{16_000, 32_000, 64_000, 128_000, 256_000, 512_000} {
		enc, err := selective.EncodeBlocks(data, cdc, selective.PaperDecider{}, bs)
		if err != nil {
			return nil, err
		}
		st := enc.Stats()
		rows = append(rows, BlockSizeRow{
			BlockBytes:       bs,
			WireBytes:        st.WireBytes,
			Factor:           st.Factor,
			BlocksCompressed: st.BlocksCompressed,
			BlocksTotal:      st.BlocksTotal,
			EnergyJ:          model.InterleavedEnergy(s, float64(st.WireBytes)/1e6),
		})
	}
	return rows, nil
}

// RenderAblationBlockSize formats the block-size sweep.
func RenderAblationBlockSize(rows []BlockSizeRow) string {
	var b strings.Builder
	b.WriteString("Ablation: selective-scheme block size (mixed tar-like file)\n")
	b.WriteString(header(
		fmt.Sprintf("%-12s", "block"),
		fmt.Sprintf("%12s", "wire"),
		fmt.Sprintf("%10s", "factor"),
		fmt.Sprintf("%14s", "compressed"),
		fmt.Sprintf("%12s", "energy J"),
	))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d%12d%10.3f%8d/%-5d%12.4f\n",
			r.BlockBytes, r.WireBytes, r.Factor, r.BlocksCompressed, r.BlocksTotal, r.EnergyJ)
	}
	return b.String()
}

// MeterRateRow is one sampling-rate data point.
type MeterRateRow struct {
	SamplesPerSec float64
	Samples       int
	SampledJ      float64
	ExactJ        float64
	RelError      float64
}

// AblationMeterRate sweeps the multimeter sampling rate over a bursty
// interleaved download: the paper's instrument took "several hundred
// samples per second"; this shows how the reading converges.
func (c Config) AblationMeterRate() ([]MeterRateRow, error) {
	data := workload.Generate(workload.ClassSource, 800_000, 23)
	var rows []MeterRateRow
	for _, rate := range []float64{20, 50, 100, 300, 1000, 3000} {
		res, err := pipeline.Run(pipeline.Spec{
			Data: data, Scheme: codec.Gzip, Mode: pipeline.ModeInterleaved,
			MeterRate: rate,
		})
		if err != nil {
			return nil, err
		}
		rel := 0.0
		if res.ExactEnergyJ != 0 {
			rel = (res.MeteredEnergyJ - res.ExactEnergyJ) / res.ExactEnergyJ
		}
		rows = append(rows, MeterRateRow{
			SamplesPerSec: rate,
			SampledJ:      res.MeteredEnergyJ,
			ExactJ:        res.ExactEnergyJ,
			RelError:      rel,
		})
	}
	return rows, nil
}

// RenderAblationMeterRate formats the sampling-rate sweep.
func RenderAblationMeterRate(rows []MeterRateRow) string {
	var b strings.Builder
	b.WriteString("Ablation: multimeter sampling rate (interleaved gzip download)\n")
	b.WriteString(header(
		fmt.Sprintf("%-12s", "samples/s"),
		fmt.Sprintf("%12s", "sampled J"),
		fmt.Sprintf("%12s", "exact J"),
		fmt.Sprintf("%10s", "error"),
	))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.0f%12.4f%12.4f%10s\n", r.SamplesPerSec, r.SampledJ, r.ExactJ, pct(r.RelError))
	}
	return b.String()
}

// UploadRow is one file x strategy upload outcome.
type UploadRow struct {
	Spec      workload.FileSpec
	Strategy  string
	Factor    float64
	EnergyJ   float64
	RelEnergy float64 // vs raw upload
	StallSec  float64
}

// UploadComparison runs the upload-direction extension over a corpus
// slice: raw upload vs compressed at the paper's level 9, at the fast
// level 1, and level 1 with the adaptive per-block test. The handheld's
// 206 MHz CPU makes level-9 compression nearly break even — the study's
// finding is that uploads want a light compressor setting.
func (c Config) UploadComparison() ([]UploadRow, error) {
	large, _ := c.corpus()
	var rows []UploadRow
	for _, spec := range large {
		data := spec.Generate()
		plain, err := pipeline.RunUpload(pipeline.UploadSpec{Data: data, Rate: wlan.Rate11Mbps(), MeterRate: c.MeterRate})
		if err != nil {
			return nil, err
		}
		rows = append(rows, UploadRow{
			Spec: spec, Strategy: "raw", Factor: 1,
			EnergyJ: plain.ExactEnergyJ, RelEnergy: 1,
		})
		for _, strat := range []struct {
			name      string
			level     int
			selective bool
		}{{"zlib -9", 9, false}, {"zlib -1", 1, false}, {"zlib -1 adaptive", 1, true}} {
			res, err := pipeline.RunUpload(pipeline.UploadSpec{
				Data: data, Scheme: codec.Zlib, Level: strat.level, Compressed: true,
				Selective: strat.selective, Rate: wlan.Rate11Mbps(), MeterRate: c.MeterRate,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, UploadRow{
				Spec: spec, Strategy: strat.name, Factor: res.Factor,
				EnergyJ:   res.ExactEnergyJ,
				RelEnergy: res.ExactEnergyJ / plain.ExactEnergyJ,
				StallSec:  res.StallSeconds.Seconds(),
			})
		}
	}
	return rows, nil
}

// RenderUploadComparison formats the upload extension table.
func RenderUploadComparison(rows []UploadRow) string {
	var b strings.Builder
	b.WriteString("Extension: upload direction (handheld compresses, then sends)\n")
	b.WriteString(header(
		fmt.Sprintf("%-24s", "file"),
		fmt.Sprintf("%-14s", "strategy"),
		fmt.Sprintf("%8s", "factor"),
		fmt.Sprintf("%12s", "energy J"),
		fmt.Sprintf("%10s", "relative"),
		fmt.Sprintf("%10s", "stall s"),
	))
	prev := ""
	for _, r := range rows {
		name := ""
		if r.Spec.Name != prev {
			name = r.Spec.Name
			prev = r.Spec.Name
		}
		fmt.Fprintf(&b, "%-24s%-14s%8.2f%12.4f%10.3f%10.3f\n",
			name, r.Strategy, r.Factor, r.EnergyJ, r.RelEnergy, r.StallSec)
	}
	return b.String()
}

// meterProbe is a tiny self-check used by tests: a one-second constant
// read through the full meter path.
func meterProbe() float64 {
	k := sim.NewKernel()
	d := device.New(k, device.DefaultPowerTable())
	m := multimeter.New(k, d, 0)
	m.Trigger()
	k.Schedule(time.Second, m.Stop)
	k.Run()
	r, err := m.Reading()
	if err != nil {
		return 0
	}
	return r.EnergyJ
}

// PolicyRow is one idle-management policy outcome (Section 2's sleep-mode
// discussion, quantified).
type PolicyRow struct {
	Policy          session.Policy
	Accuracy        float64
	EnergyJ         float64
	IdleEnergyJ     float64
	AvgExtraLatency time.Duration
	Mispredictions  int
}

// PolicyComparison runs a browse-like session under always-on, hardware
// power saving, and predictive sleep at several prediction accuracies.
func (c Config) PolicyComparison() ([]PolicyRow, error) {
	reqs := session.WebSession(30, 4*time.Second, 120_000, 17)
	var rows []PolicyRow
	run := func(p session.Policy, acc float64) error {
		res, err := session.Run(session.Spec{
			Requests: reqs, Policy: p, PredictAccuracy: acc, Seed: 23,
		})
		if err != nil {
			return err
		}
		rows = append(rows, PolicyRow{
			Policy: p, Accuracy: acc,
			EnergyJ: res.EnergyJ, IdleEnergyJ: res.IdleEnergyJ,
			AvgExtraLatency: res.AvgExtraLatency, Mispredictions: res.Mispredictions,
		})
		return nil
	}
	if err := run(session.AlwaysOn, 0); err != nil {
		return nil, err
	}
	if err := run(session.HardwarePS, 0); err != nil {
		return nil, err
	}
	for _, acc := range []float64{1.0, 0.9, 0.7, 0.5, 0.0} {
		if err := run(session.PredictiveSleep, acc); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderPolicyComparison formats the policy study.
func RenderPolicyComparison(rows []PolicyRow) string {
	var b strings.Builder
	b.WriteString("Radio idle-management policies (Section 2 discussion, 30-request browse session)\n")
	b.WriteString(header(
		fmt.Sprintf("%-18s", "policy"),
		fmt.Sprintf("%10s", "accuracy"),
		fmt.Sprintf("%12s", "energy J"),
		fmt.Sprintf("%12s", "idle J"),
		fmt.Sprintf("%14s", "avg latency"),
		fmt.Sprintf("%8s", "misses"),
	))
	for _, r := range rows {
		acc := "-"
		if r.Policy == session.PredictiveSleep {
			acc = fmt.Sprintf("%.0f%%", r.Accuracy*100)
		}
		fmt.Fprintf(&b, "%-18v%10s%12.3f%12.3f%14s%8d\n",
			r.Policy, acc, r.EnergyJ, r.IdleEnergyJ, r.AvgExtraLatency, r.Mispredictions)
	}
	return b.String()
}

// BatteryRow is one strategy's downloads-per-charge figure.
type BatteryRow struct {
	Strategy      string
	PerDownloadJ  float64
	Downloads     int
	LifeExtension float64 // vs the uncompressed baseline
}

// BatteryComparison converts the headline experiment into the paper's
// motivating quantity: how many downloads of a representative page mix
// one iPAQ battery charge sustains under each strategy.
func (c Config) BatteryComparison() ([]BatteryRow, error) {
	// Representative mix: one XML page, one binary, one media file,
	// 400 kB total (scaled).
	var mix [][]byte
	for _, name := range []string{"nes96.xml", "pegwit", "image01.jpg"} {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("corpus file %s missing", name)
		}
		mix = append(mix, spec.ScaledTo(0.05, 0).Generate())
	}
	battery := device.IPAQBattery()

	run := func(strategy string, spec func(data []byte) pipeline.Spec) (BatteryRow, error) {
		var total float64
		for _, data := range mix {
			res, err := c.runSpec(spec(data))
			if err != nil {
				return BatteryRow{}, err
			}
			total += res.ExactEnergyJ
		}
		return BatteryRow{
			Strategy:     strategy,
			PerDownloadJ: total,
			Downloads:    battery.Operations(total),
		}, nil
	}

	plain, err := run("uncompressed", func(d []byte) pipeline.Spec {
		return pipeline.Spec{Data: d, Mode: pipeline.ModePlain}
	})
	if err != nil {
		return nil, err
	}
	blind, err := run("gzip blind", func(d []byte) pipeline.Spec {
		return pipeline.Spec{Data: d, Scheme: codec.Gzip, Mode: pipeline.ModeInterleaved}
	})
	if err != nil {
		return nil, err
	}
	adaptive, err := run("zlib adaptive", func(d []byte) pipeline.Spec {
		return pipeline.Spec{Data: d, Scheme: codec.Zlib, Mode: pipeline.ModeInterleaved, Selective: true}
	})
	if err != nil {
		return nil, err
	}
	rows := []BatteryRow{plain, blind, adaptive}
	for i := range rows {
		rows[i].LifeExtension = battery.LifeExtension(plain.PerDownloadJ, rows[i].PerDownloadJ)
	}
	return rows, nil
}

// RenderBatteryComparison formats the battery study.
func RenderBatteryComparison(rows []BatteryRow) string {
	var b strings.Builder
	b.WriteString("Battery life (iPAQ 1500 mAh pack, 3-file page mix per 'download')\n")
	b.WriteString(header(
		fmt.Sprintf("%-16s", "strategy"),
		fmt.Sprintf("%14s", "J/download"),
		fmt.Sprintf("%14s", "downloads"),
		fmt.Sprintf("%12s", "life gain"),
	))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s%14.3f%14d%11.2fx\n", r.Strategy, r.PerDownloadJ, r.Downloads, r.LifeExtension)
	}
	return b.String()
}
