package experiment

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestAblationLevels(t *testing.T) {
	rows, err := Config{Scale: 1.0 / 40}.AblationLevels()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Factor must not decrease materially with level, and level 9 must
	// beat level 1.
	if !(rows[8].Factor > rows[0].Factor) {
		t.Errorf("level 9 factor %.3f should beat level 1 %.3f", rows[8].Factor, rows[0].Factor)
	}
	// Higher factor -> lower modeled energy.
	if !(rows[8].InterleaveJ < rows[0].InterleaveJ) {
		t.Errorf("level 9 energy %.4f should beat level 1 %.4f", rows[8].InterleaveJ, rows[0].InterleaveJ)
	}
	if out := RenderAblationLevels(rows); !strings.Contains(out, "level") {
		t.Error("render missing header")
	}
}

func TestAblationBlockSize(t *testing.T) {
	rows, err := Config{Scale: 1.0 / 40}.AblationBlockSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	var best, at128 float64
	best = math.Inf(1)
	for _, r := range rows {
		if r.EnergyJ < best {
			best = r.EnergyJ
		}
		if r.BlockBytes == 128_000 {
			at128 = r.EnergyJ
		}
		// Large blocks legitimately dilute decisions into all-compress;
		// fine-grained ones must split them.
		if r.BlockBytes <= 128_000 && (r.BlocksCompressed == 0 || r.BlocksCompressed == r.BlocksTotal) {
			t.Errorf("block %d: degenerate decisions %d/%d", r.BlockBytes, r.BlocksCompressed, r.BlocksTotal)
		}
	}
	// The paper's 128 kB should be within a few percent of the best point.
	if at128 > best*1.05 {
		t.Errorf("128k energy %.4f vs best %.4f", at128, best)
	}
	if out := RenderAblationBlockSize(rows); !strings.Contains(out, "128000") {
		t.Error("render missing 128k row")
	}
}

func TestAblationMeterRate(t *testing.T) {
	rows, err := Config{}.AblationMeterRate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Error at >= 300 samples/s must be under 3%; the coarsest rate may
	// be worse than the finest.
	for _, r := range rows {
		if r.SamplesPerSec >= 300 && math.Abs(r.RelError) > 0.03 {
			t.Errorf("rate %.0f: error %.3f", r.SamplesPerSec, r.RelError)
		}
	}
	if out := RenderAblationMeterRate(rows); !strings.Contains(out, "samples/s") {
		t.Error("render missing header")
	}
}

func TestUploadComparisonShape(t *testing.T) {
	cfg := Config{Scale: 1.0 / 40, LargeSubset: 3}
	rows, err := cfg.UploadComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 files x 4 strategies
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 0; i < len(rows); i += 4 {
		raw, slow, fast, adaptive := rows[i], rows[i+1], rows[i+2], rows[i+3]
		if raw.Strategy != "raw" || slow.Strategy != "zlib -9" {
			t.Fatalf("row ordering broken: %v %v", raw.Strategy, slow.Strategy)
		}
		// The finding: the fast level must clearly beat the slow level on
		// the handheld, and win against raw on compressible files.
		if fast.EnergyJ >= slow.EnergyJ {
			t.Errorf("%s: zlib -1 (%.4f J) should beat zlib -9 (%.4f J) on the handheld",
				raw.Spec.Name, fast.EnergyJ, slow.EnergyJ)
		}
		// Single-block files cannot overlap compression with sending (the
		// whole file is the lead-in), so only multi-block files must win
		// decisively.
		if raw.Spec.PaperGzip > 5 && raw.Spec.Size > 256_000 && fast.RelEnergy > 0.8 {
			t.Errorf("%s: fast compressed upload rel %.3f, want < 0.8", raw.Spec.Name, fast.RelEnergy)
		}
		if adaptive.RelEnergy > fast.RelEnergy*1.15 {
			t.Errorf("%s: adaptive upload %.3f much worse than fast %.3f",
				raw.Spec.Name, adaptive.RelEnergy, fast.RelEnergy)
		}
	}
	if out := RenderUploadComparison(rows); !strings.Contains(out, "strategy") {
		t.Error("render missing header")
	}
}

func TestMeterProbe(t *testing.T) {
	// 1 s at 310 mA, 5 V.
	if got := meterProbe(); math.Abs(got-1.55) > 0.01 {
		t.Errorf("probe %.4f J, want 1.55", got)
	}
}

func TestPolicyComparisonShape(t *testing.T) {
	rows, err := Config{}.PolicyComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	on, ps := rows[0], rows[1]
	if !(ps.EnergyJ < on.EnergyJ/2) {
		t.Errorf("hardware PS should at least halve session energy: %.1f vs %.1f", ps.EnergyJ, on.EnergyJ)
	}
	perfect := rows[2]
	if !(perfect.EnergyJ < ps.EnergyJ) {
		t.Errorf("perfect predictive sleep should beat PS: %.1f vs %.1f", perfect.EnergyJ, ps.EnergyJ)
	}
	// Latency grows monotonically as accuracy drops.
	prev := time.Duration(-1)
	for _, r := range rows[2:] {
		if r.AvgExtraLatency < prev {
			t.Errorf("latency not monotone: %v after %v", r.AvgExtraLatency, prev)
		}
		prev = r.AvgExtraLatency
	}
	if out := RenderPolicyComparison(rows); !strings.Contains(out, "predictive-sleep") {
		t.Error("render missing policy rows")
	}
}

func TestBatteryComparisonShape(t *testing.T) {
	rows, err := Config{}.BatteryComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	plain, blind, adaptive := rows[0], rows[1], rows[2]
	if plain.LifeExtension != 1.0 {
		t.Errorf("baseline extension %v", plain.LifeExtension)
	}
	if !(adaptive.Downloads > blind.Downloads && blind.Downloads > plain.Downloads) {
		t.Errorf("downloads ordering broken: %d, %d, %d",
			plain.Downloads, blind.Downloads, adaptive.Downloads)
	}
	if adaptive.LifeExtension < 1.3 {
		t.Errorf("adaptive life gain %.2fx, want > 1.3x", adaptive.LifeExtension)
	}
	if out := RenderBatteryComparison(rows); !strings.Contains(out, "life gain") {
		t.Error("render missing header")
	}
}
