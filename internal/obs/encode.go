package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-labelled buckets with _sum and
// _count series. Output is deterministic: metrics appear sorted by name
// within each kind, counters first, then gauges, then histograms.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, m := range s.Counters {
		if err := writeScalar(w, m, "counter"); err != nil {
			return err
		}
	}
	for _, m := range s.Gauges {
		if err := writeScalar(w, m, "gauge"); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := writeHistogram(w, h); err != nil {
			return err
		}
	}
	return nil
}

func writeScalar(w io.Writer, m MetricSnapshot, kind string) error {
	if m.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.Name, kind, m.Name, m.Value)
	return err
}

func writeHistogram(w io.Writer, h HistogramSnapshot) error {
	if h.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", h.Name, h.Help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
		return err
	}
	// Prometheus buckets are cumulative; ours are disjoint. Accumulate.
	var cum int64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.Name, formatFloat(h.Sum), h.Name, h.Count)
	return err
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders a registry snapshot as indented JSON.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
