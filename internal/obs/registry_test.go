package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives counters, gauges and a histogram
// from many goroutines (run under -race by scripts/ci.sh) and checks the
// final totals reconcile exactly.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every goroutine re-resolves its instruments, exercising the
			// get-or-create fast path concurrently with creation.
			c := reg.Counter("hits_total", "hammered counter")
			g := reg.Gauge("active", "hammered gauge")
			h := reg.Histogram("latency_seconds", "hammered histogram", []float64{0.25, 0.5, 0.75})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%4) / 4.0) // 0, .25, .5, .75 round-robin
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers * perWorker)
	if got := reg.Counter("hits_total", "").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := reg.Gauge("active", "").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	hs := reg.Histogram("latency_seconds", "", nil).Snapshot()
	if hs.Count != total {
		t.Errorf("histogram count = %d, want %d", hs.Count, total)
	}
	// Snapshot consistency: the reported count is the sum of its buckets.
	var sum int64
	for _, c := range hs.Counts {
		sum += c
	}
	if sum != hs.Count {
		t.Errorf("sum of buckets %d != count %d", sum, hs.Count)
	}
	// 0 and .25 land in bucket le=0.25; .5 in le=0.5; .75 in le=0.75.
	want := []int64{total / 2, total / 4, total / 4, 0}
	for i, c := range hs.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	wantSum := float64(workers) * perWorker / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(hs.Sum-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", hs.Sum, wantSum)
	}
}

// TestHistogramBucketEdges pins the le (inclusive upper bound) semantics.
func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3} {
		h.Observe(v)
	}
	hs := h.Snapshot()
	want := []int64{2, 2, 1} // le=1: {0.5, 1}; le=2: {1.5, 2}; overflow: {3}
	for i, c := range hs.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

// TestPrometheusGolden pins the text exposition format byte for byte.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "Requests served.").Add(42)
	reg.Gauge("conns_active", "Open connections.").Set(3)
	h := reg.Histogram("conn_seconds", "Connection wall time.", []float64{0.001, 0.5})
	h.Observe(0.0005)
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(9)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total 42
# HELP conns_active Open connections.
# TYPE conns_active gauge
conns_active 3
# HELP conn_seconds Connection wall time.
# TYPE conn_seconds histogram
conn_seconds_bucket{le="0.001"} 1
conn_seconds_bucket{le="0.5"} 3
conn_seconds_bucket{le="+Inf"} 4
conn_seconds_sum 9.5005
conn_seconds_count 4
`
	if got := buf.String(); got != golden {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestSnapshotJSON checks the JSON encoder emits a parsable document with
// the same numbers the registry holds.
func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "help").Add(7)
	reg.Histogram("h", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if len(round.Counters) != 1 || round.Counters[0].Value != 7 {
		t.Errorf("counters = %+v", round.Counters)
	}
	if len(round.Histograms) != 1 || round.Histograms[0].Count != 1 {
		t.Errorf("histograms = %+v", round.Histograms)
	}
}

// TestNilInstruments: every instrument and the registry itself absorb all
// operations when nil, so call sites never branch on telemetry being
// wired.
func TestNilInstruments(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x", "", []float64{1})
	c.Inc()
	c.Add(5)
	g.Set(2)
	g.Add(-1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil instruments must read zero")
	}
	if s := reg.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

// TestRegistryKindConflictPanics: one name, two kinds is a programming
// error the registry must refuse loudly.
func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic registering a counter name as a gauge")
		}
	}()
	reg.Gauge("m", "")
}

// TestMetricNameValidation rejects names Prometheus would refuse.
func TestMetricNameValidation(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "9leading", "has-dash", "has space", "dotted.name"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", bad)
				}
			}()
			reg.Counter(bad, "")
		}()
	}
	reg.Counter("ok_name_2", "") // must not panic
}

// TestPrometheusFloatFormat pins the shortest-round-trip float rendering
// used for bounds and sums.
func TestPrometheusFloatFormat(t *testing.T) {
	for v, want := range map[float64]string{0.001: "0.001", 2.5: "2.5", 10: "10"} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if !strings.Contains(formatFloat(1e21), "e+21") {
		t.Errorf("large floats should use scientific notation, got %q", formatFloat(1e21))
	}
}
