package agg

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

func ev(vns int64, scheme, device, outcome string, rawB int64, durNS int64, joules float64) export.Event {
	return export.Event{
		VNS: vns, Span: "fetch", Scheme: scheme, Device: device, Outcome: outcome,
		RawBytes: rawB, WireBytes: rawB / 2, DurNS: durNS, RadioJ: joules,
	}
}

// TestAggregatorWindowsAndKeys: events split into windows by virtual
// offset and into series by (scheme, device); failed events count as
// errors but contribute no bytes or joules; the snapshot comes out
// sorted by (window, scheme, device).
func TestAggregatorWindowsAndKeys(t *testing.T) {
	a := New(time.Second)
	a.Observe(ev(0.5e9, "gzip/selective", "ipaq-11mbps", "ok", 1e6, 10e6, 3.5))
	a.Observe(ev(0.6e9, "gzip/selective", "ipaq-11mbps", "ok", 1e6, 20e6, 3.5))
	a.Observe(ev(0.7e9, "gzip/selective", "ipaq-11mbps", "busy", 1e6, 5e6, 99))
	a.Observe(ev(0.8e9, "bzip2/raw", "ipaq-11mbps", "ok", 2e6, 30e6, 7))
	a.Observe(ev(1.5e9, "gzip/selective", "ipaq-11mbps", "ok", 4e6, 40e6, 14))

	snap := a.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d series, want 3", len(snap))
	}
	// Sorted: window 0 bzip2, window 0 gzip, window 1 gzip.
	if snap[0].Scheme != "bzip2/raw" || snap[0].Index != 0 ||
		snap[1].Scheme != "gzip/selective" || snap[1].Index != 0 ||
		snap[2].Scheme != "gzip/selective" || snap[2].Index != 1 {
		t.Fatalf("order wrong: %+v", snap)
	}
	g0 := snap[1]
	if g0.Count != 3 || g0.Errors != 1 {
		t.Errorf("window 0 gzip count=%d errors=%d, want 3/1", g0.Count, g0.Errors)
	}
	if g0.RawB != 2e6 || g0.Joules != 7 {
		t.Errorf("failed event leaked into totals: rawB=%d joules=%g", g0.RawB, g0.Joules)
	}
	if got := g0.JoulesPerMB(); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("JoulesPerMB = %g, want 3.5", got)
	}
	if g0.Latency.Count != 2 {
		t.Errorf("latency histogram saw %d samples, want 2 (errors excluded)", g0.Latency.Count)
	}
	if g0.Start != 0 || g0.End != time.Second {
		t.Errorf("window 0 spans [%s, %s), want [0s, 1s)", g0.Start, g0.End)
	}
	if snap[2].Start != time.Second {
		t.Errorf("window 1 starts at %s, want 1s", snap[2].Start)
	}

	// Render is a smoke check: one header plus one line per series.
	if lines := strings.Count(Render(snap), "\n"); lines != 4 {
		t.Errorf("Render emitted %d lines, want 4", lines)
	}

	var nilAgg *Aggregator
	nilAgg.Observe(ev(0, "x", "y", "ok", 1, 1, 1))
	if nilAgg.Snapshot() != nil {
		t.Error("nil aggregator must absorb everything")
	}
}

// TestP50P99P999 reads the fleet quantiles through the interpolated
// histogram path.
func TestP50P99P999(t *testing.T) {
	h := obs.NewHistogram(latencyBounds())
	for i := 0; i < 1000; i++ {
		h.Observe(0.004) // all samples inside the (0.002, 0.004] bucket
	}
	p50, p99, p999 := P50P99P999(h.Snapshot())
	if p50 <= 0.002 || p50 > 0.004 || p99 <= p50 || p999 < p99 || p999 > 0.004 {
		t.Errorf("quantiles %g/%g/%g not inside the populated bucket", p50, p99, p999)
	}
	p50, _, _ = P50P99P999(obs.HistogramSnapshot{})
	if !math.IsNaN(p50) {
		t.Errorf("empty distribution p50 = %g, want NaN", p50)
	}
}

// TestPercentile pins the exact sample-quantile semantics loadgen reports
// moved here: index int(q*n)-1 clamped into range, 0 on empty input.
func TestPercentile(t *testing.T) {
	s := []time.Duration{10, 20, 30, 40}
	for q, want := range map[float64]time.Duration{0: 10, 0.25: 10, 0.5: 20, 0.99: 30, 1: 40} {
		if got := Percentile(s, q); got != want {
			t.Errorf("Percentile(%g) = %d, want %d", q, got, want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty Percentile = %d, want 0", got)
	}
}
