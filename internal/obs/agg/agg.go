// Package agg is the windowed-aggregation stage of the telemetry
// pipeline: it rolls a wide-event stream (internal/obs/export) into
// fixed-width time windows keyed by (scheme, device class), reusing the
// obs Histogram for per-window latency and joules-per-MB distributions.
// Windows are cut on whichever timeline the events carry — virtual
// nanoseconds on canonical soak streams, wall offsets on live ones — and
// snapshots come out fully sorted, so a rollup of a deterministic stream
// is itself deterministic.
//
// The package also owns the repository's quantile math: the exact
// sample-based Percentile the load generator reports, and the
// interpolated HistogramSnapshot.Quantile wrappers (P50/P99/P999) for
// bucketed distributions.
package agg

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

// Key identifies one rollup series inside a window.
type Key struct {
	Scheme string
	Device string
}

// latencyBounds covers 1 ms .. ~2 min of per-fetch latency, doubling —
// the same shape loadgen's fleet histogram uses.
func latencyBounds() []float64 {
	out := make([]float64, 0, 18)
	for ms := 1.0; ms <= 131072; ms *= 2 {
		out = append(out, ms/1e3)
	}
	return out
}

// jPerMBBounds spans the model's range: a well-compressed interleaved
// transfer lands near 1 J/MB, a plain 11 Mb/s download at 3.5, and a
// 2 Mb/s one near 12.
var jPerMBBounds = []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 5, 6, 8, 12, 20}

// cell accumulates one (window, key) series.
type cell struct {
	count   int64
	errors  int64
	rawB    int64
	wireB   int64
	joules  float64
	latency *obs.Histogram
	jPerMB  *obs.Histogram
}

// Aggregator rolls events into fixed-width windows. All methods are safe
// for concurrent use; a nil *Aggregator absorbs everything.
type Aggregator struct {
	width time.Duration

	mu    sync.Mutex
	cells map[int64]map[Key]*cell
}

// New returns an aggregator cutting windows of the given width (minimum
// 1 ns, so index arithmetic never divides by zero).
func New(width time.Duration) *Aggregator {
	if width <= 0 {
		width = time.Second
	}
	return &Aggregator{width: width, cells: make(map[int64]map[Key]*cell)}
}

// Observe rolls one event into the window containing its virtual start
// offset. Live callers with no virtual epoch use ObserveAt with a wall
// offset of their choosing.
func (a *Aggregator) Observe(e export.Event) {
	a.ObserveAt(time.Duration(e.VNS), e)
}

// ObserveAt rolls one event into the window containing offset at.
func (a *Aggregator) ObserveAt(at time.Duration, e export.Event) {
	if a == nil {
		return
	}
	k := Key{Scheme: e.Scheme, Device: e.Device}
	idx := int64(at / a.width)
	a.mu.Lock()
	byKey := a.cells[idx]
	if byKey == nil {
		byKey = make(map[Key]*cell)
		a.cells[idx] = byKey
	}
	c := byKey[k]
	if c == nil {
		c = &cell{
			latency: obs.NewHistogram(latencyBounds()),
			jPerMB:  obs.NewHistogram(jPerMBBounds),
		}
		byKey[k] = c
	}
	c.count++
	failed := e.Outcome != "ok" && e.Outcome != ""
	var j float64
	if failed {
		c.errors++
	} else {
		c.rawB += e.RawBytes
		c.wireB += e.WireBytes
		j = e.TotalJoules()
		c.joules += j
	}
	a.mu.Unlock()
	if failed {
		return
	}
	// Histograms are internally atomic; observe outside the map lock.
	c.latency.Observe(time.Duration(e.DurNS).Seconds())
	if mb := float64(e.RawBytes) / 1e6; mb > 0 && j > 0 {
		c.jPerMB.Observe(j / mb)
	}
}

// WindowSnapshot is one (window, key) series materialised.
type WindowSnapshot struct {
	// Index is the window ordinal; the window spans [Start, End).
	Index      int64
	Start, End time.Duration
	Scheme     string
	Device     string

	// Count is all events observed; Errors the non-ok subset. Bytes and
	// joules cover successful events only.
	Count  int64
	Errors int64
	RawB   int64
	WireB  int64
	Joules float64

	// Latency is the per-fetch duration distribution (seconds); JPerMB
	// the joules-per-raw-MB distribution.
	Latency obs.HistogramSnapshot
	JPerMB  obs.HistogramSnapshot
}

// JoulesPerMB is the window's aggregate energy cost of delivery.
func (w WindowSnapshot) JoulesPerMB() float64 {
	if w.RawB == 0 {
		return 0
	}
	return w.Joules / (float64(w.RawB) / 1e6)
}

// Snapshot materialises every window, sorted by (window index, scheme,
// device) — a deterministic order for deterministic inputs.
func (a *Aggregator) Snapshot() []WindowSnapshot {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []WindowSnapshot
	for idx, byKey := range a.cells {
		for k, c := range byKey {
			out = append(out, WindowSnapshot{
				Index:  idx,
				Start:  time.Duration(idx) * a.width,
				End:    time.Duration(idx+1) * a.width,
				Scheme: k.Scheme,
				Device: k.Device,
				Count:  c.count,
				Errors: c.errors,
				RawB:   c.rawB,
				WireB:  c.wireB,
				Joules: c.joules,

				Latency: c.latency.Snapshot(),
				JPerMB:  c.jPerMB.Snapshot(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Index != out[j].Index {
			return out[i].Index < out[j].Index
		}
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// Render prints the rollup as a fixed-width text table, one line per
// (window, scheme, device) series.
func Render(windows []WindowSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %-12s %6s %4s %9s %8s %8s %8s %8s\n",
		"window", "scheme", "device", "n", "err", "rawMB", "J/MB", "p50ms", "p99ms", "p999ms")
	for _, w := range windows {
		p50, p99, p999 := P50P99P999(w.Latency)
		fmt.Fprintf(&b, "%-12s %-18s %-12s %6d %4d %9.3f %8.3f %8.1f %8.1f %8.1f\n",
			w.Start.String(), w.Scheme, w.Device, w.Count, w.Errors,
			float64(w.RawB)/1e6, w.JoulesPerMB(), p50*1e3, p99*1e3, p999*1e3)
	}
	return b.String()
}

// P50P99P999 reads the three fleet-report quantiles from a bucketed
// distribution (interpolated; NaN on an empty histogram).
func P50P99P999(h obs.HistogramSnapshot) (p50, p99, p999 float64) {
	return h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999)
}

// Percentile reads the q-quantile from an ascending sample slice — the
// exact (non-interpolated) form fleet reports use for virtual latencies.
// An empty slice returns 0.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
