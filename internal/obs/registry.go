// Package obs is the repository's telemetry layer: a dependency-free
// metrics registry (lock-cheap counters, gauges and fixed-bucket
// histograms with Prometheus-text and JSON encoders), a span tracer that
// keeps per-request phase timelines in a bounded ring buffer and lets each
// finished span carry modeled joules — so a trace attributes radio vs CPU
// energy exactly as the paper's model does — and structured-logging
// helpers around log/slog with request-ID propagation.
//
// Every instrument is nil-safe: a nil *Counter, *Gauge, *Histogram, *Span
// or *Tracer absorbs all operations, so hot paths can record telemetry
// unconditionally and components that were never given a registry cost a
// predictable nil check instead of a branch per call site.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All operations are a
// single atomic; a nil counter absorbs everything.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0 for the Prometheus
// exposition to stay meaningful; this is not enforced on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v <= Bounds[i] (and > Bounds[i-1]); one extra overflow bucket counts
// everything past the last bound. Observe is two atomics (bucket + sum),
// never a lock.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; len(bounds) is the overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// NewHistogram returns a standalone histogram with the given strictly
// increasing bucket upper bounds, for callers (like the windowed
// aggregator) that need histograms outside any registry and therefore
// outside the Prometheus naming contract.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not strictly increasing")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// HistogramSnapshot is one histogram's point-in-time state. Counts has
// len(Bounds)+1 entries, the last being the overflow bucket; Count is the
// sum of Counts, so "sum of buckets == count" holds by construction.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Help   string    `json:"help,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot materialises the histogram. The per-bucket loads are not a
// single atomic cut, but Count is derived from the loaded buckets, so the
// snapshot is always internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucketed
// counts by linear interpolation inside the containing bucket. An empty
// histogram returns NaN. A quantile landing in the overflow bucket
// returns the last finite bound — the histogram cannot see past it — and
// the first bucket interpolates from an implicit lower edge of 0 (or
// Bounds[0] when the edge set starts at or below zero).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample the quantile falls on.
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if rank > cum {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no upper edge to interpolate toward.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		} else if s.Bounds[0] <= 0 {
			lo = s.Bounds[0]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// MetricSnapshot is one counter or gauge in a registry snapshot.
type MetricSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time view of a whole registry, ready for the
// Prometheus-text and JSON encoders. Slices are sorted by metric name.
type Snapshot struct {
	Counters   []MetricSnapshot    `json:"counters"`
	Gauges     []MetricSnapshot    `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Registry owns named instruments. Get-or-create methods are safe for
// concurrent use and idempotent: asking twice for the same name returns
// the same instrument. Names must be Prometheus-compatible
// ([a-zA-Z_][a-zA-Z0-9_]*); registering one name as two different kinds
// panics, since that is a programming error no caller can recover from.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*counterEntry
	gauges map[string]*gaugeEntry
	hists  map[string]*histEntry
}

type counterEntry struct {
	help string
	c    *Counter
}

type gaugeEntry struct {
	help string
	g    *Gauge
}

type histEntry struct {
	help string
	h    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*counterEntry),
		gauges: make(map[string]*gaugeEntry),
		hists:  make(map[string]*histEntry),
	}
}

// checkName panics on names the Prometheus exposition format would reject.
func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// checkKind panics when name is already registered as another kind.
func (r *Registry) checkKind(name, want string) {
	if _, ok := r.counts[name]; ok && want != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// Counter returns (creating if needed) the named counter. Nil registries
// return a nil counter, which absorbs all operations.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.RLock()
	e, ok := r.counts[name]
	r.mu.RUnlock()
	if ok {
		return e.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.counts[name]; ok {
		return e.c
	}
	r.checkKind(name, "counter")
	e = &counterEntry{help: help, c: &Counter{}}
	r.counts[name] = e
	return e.c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.RLock()
	e, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return e.g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.gauges[name]; ok {
		return e.g
	}
	r.checkKind(name, "gauge")
	e = &gaugeEntry{help: help, g: &Gauge{}}
	r.gauges[name] = e
	return e.g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket upper bounds, which must be strictly increasing. Asking
// again for an existing histogram ignores bounds and returns the original.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.RLock()
	e, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return e.h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.hists[name]; ok {
		return e.h
	}
	r.checkKind(name, "histogram")
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = &histEntry{help: help, h: h}
	return h
}

// Snapshot materialises every instrument, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, e := range r.counts {
		s.Counters = append(s.Counters, MetricSnapshot{Name: name, Help: e.help, Value: e.c.Value()})
	}
	for name, e := range r.gauges {
		s.Gauges = append(s.Gauges, MetricSnapshot{Name: name, Help: e.help, Value: e.g.Value()})
	}
	for name, e := range r.hists {
		hs := e.h.Snapshot()
		hs.Name, hs.Help = name, e.help
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
