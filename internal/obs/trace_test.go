package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// TestTracerRingEviction fills a small ring past capacity and checks the
// survivors are the most recently finished spans, oldest first.
func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 1; i <= 5; i++ {
		sp := tr.Start(fmt.Sprintf("span-%d", i))
		sp.Finish()
	}
	got := tr.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d spans, want 3", len(got))
	}
	for i, want := range []string{"span-3", "span-4", "span-5"} {
		if got[i].Name != want {
			t.Errorf("slot %d = %q, want %q", i, got[i].Name, want)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	// IDs are monotone, so eviction order is also ID order.
	if !(got[0].ID < got[1].ID && got[1].ID < got[2].ID) {
		t.Errorf("snapshot not in finish order: ids %d, %d, %d", got[0].ID, got[1].ID, got[2].ID)
	}
}

// TestSpanPhasesAndAttrs exercises the recording API, including from a
// second goroutine the way the client's decompressor records phases.
func TestSpanPhasesAndAttrs(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("fetch")
	sp.SetAttr("name", "f.xml")
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sp.Phase("decompress", ClassCPU, start, 5*time.Millisecond, 1000)
	}()
	sp.Phase("recv", ClassRadio, start, 10*time.Millisecond, 2000)
	wg.Wait()
	sp.Fail(errors.New("boom"))
	sp.Finish()

	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	d := spans[0]
	if d.Attrs["name"] != "f.xml" || d.Err != "boom" || len(d.Phases) != 2 {
		t.Fatalf("span = %+v", d)
	}
	if d.End.Before(d.Start) {
		t.Error("End precedes Start")
	}
}

// TestDistributeJoules checks byte-weighted attribution, the exact-total
// guarantee, and the synthetic phase fallback.
func TestDistributeJoules(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.Start("fetch")
	now := time.Now()
	sp.Phase("header", ClassRadio, now, time.Millisecond, 100)
	sp.Phase("recv", ClassRadio, now, time.Millisecond, 300)
	sp.Phase("decompress", ClassCPU, now, 2*time.Millisecond, 0)
	sp.Phase("backoff", "", now, time.Millisecond, 0)

	sp.DistributeJoules(ClassRadio, 4.0) // byte-weighted: 1 J + 3 J
	sp.DistributeJoules(ClassCPU, 0.5)   // single phase takes it all
	sp.AccountPhase("idle", ClassIdle, 0.25)
	sp.DistributeJoules("unseen", 0.125) // no phase: synthetic entry
	sp.Finish()

	d := tr.Snapshot()[0]
	by := d.JoulesByClass()
	if math.Abs(by[ClassRadio]-4.0) > 1e-12 {
		t.Errorf("radio = %g, want 4", by[ClassRadio])
	}
	if math.Abs(by[ClassCPU]-0.5) > 1e-12 {
		t.Errorf("cpu = %g, want 0.5", by[ClassCPU])
	}
	if math.Abs(by[ClassIdle]-0.25) > 1e-12 {
		t.Errorf("idle = %g, want 0.25", by[ClassIdle])
	}
	if math.Abs(d.TotalJoules()-4.875) > 1e-12 {
		t.Errorf("total = %g, want 4.875", d.TotalJoules())
	}
	// Byte weighting: header got 1/4 of the radio energy.
	if math.Abs(d.Phases[0].Joules-1.0) > 1e-12 {
		t.Errorf("header joules = %g, want 1", d.Phases[0].Joules)
	}
	// The unclassified backoff phase carries no energy.
	if d.Phases[3].Joules != 0 {
		t.Errorf("backoff joules = %g, want 0", d.Phases[3].Joules)
	}
}

// TestDistributeJoulesDurationWeight: with no bytes anywhere, weights fall
// back to duration.
func TestDistributeJoulesDurationWeight(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.Start("s")
	now := time.Now()
	sp.Phase("a", ClassCPU, now, 1*time.Millisecond, 0)
	sp.Phase("b", ClassCPU, now, 3*time.Millisecond, 0)
	sp.DistributeJoules(ClassCPU, 8)
	d := sp.Data()
	if math.Abs(d.Phases[0].Joules-2) > 1e-9 || math.Abs(d.Phases[1].Joules-6) > 1e-9 {
		t.Errorf("duration weighting wrong: %g, %g", d.Phases[0].Joules, d.Phases[1].Joules)
	}
}

// TestNilTracerAndSpan: the nil paths must absorb everything.
func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	sp.SetAttr("k", "v")
	sp.Phase("p", ClassRadio, time.Now(), time.Second, 1)
	sp.PhaseDetail("p", "", "d", time.Now(), 0, 0)
	sp.AccountPhase("i", ClassIdle, 1)
	sp.DistributeJoules(ClassRadio, 1)
	sp.Fail(errors.New("x"))
	sp.Finish()
	if d := sp.Data(); d.ID != 0 || len(d.Phases) != 0 {
		t.Error("nil span must read zero")
	}
	if tr.Snapshot() != nil || tr.Len() != 0 {
		t.Error("nil tracer must read empty")
	}
}

// TestSpanDataJSON: the wire shape /tracez and hhfetch -trace emit.
func TestSpanDataJSON(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.Start("fetch")
	sp.SetAttr("req_id", ReqID(0xabc))
	sp.Phase("recv", ClassRadio, time.Now(), time.Millisecond, 42)
	sp.AccountPhase("idle", ClassIdle, 0.5)
	sp.Finish()
	raw, err := json.Marshal(tr.Snapshot()[0])
	if err != nil {
		t.Fatal(err)
	}
	var round SpanData
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatal(err)
	}
	if round.Attrs["req_id"] != "0000000000000abc" {
		t.Errorf("req_id = %q", round.Attrs["req_id"])
	}
	if len(round.Phases) != 2 || round.Phases[0].Bytes != 42 || round.Phases[1].Joules != 0.5 {
		t.Errorf("phases = %+v", round.Phases)
	}
}

// TestDataIsACopy: mutating the span after Data must not alias.
func TestDataIsACopy(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.Start("s")
	sp.SetAttr("k", "v1")
	sp.Phase("a", "", time.Now(), 0, 0)
	d := sp.Data()
	sp.SetAttr("k", "v2")
	sp.Phase("b", "", time.Now(), 0, 0)
	if d.Attrs["k"] != "v1" || len(d.Phases) != 1 {
		t.Error("Data must deep-copy attrs and phases")
	}
}
