package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Energy classes a phase can be charged under. The split mirrors the
// paper's model: radio covers receive and communication start-up energy
// (m·s + cs of Eq. 1), cpu covers decompression (td·pd), and idle is the
// residual CPU-idle energy (ti·pi) that interleaving could not reclaim.
// Phases with an empty class carry no modeled energy.
const (
	ClassRadio = "radio"
	ClassCPU   = "cpu"
	ClassIdle  = "idle"
)

// Phase is one labelled interval inside a span: a name ("dial", "recv",
// "decompress", …), its offset from the span start and duration, the
// bytes it handled, and — once the span is charged — the modeled joules
// attributed to it.
type Phase struct {
	Name string `json:"name"`
	// Class groups the phase for energy attribution: ClassRadio,
	// ClassCPU, ClassIdle, or "" for phases outside the model (backoff
	// sleeps, resume accounting).
	Class string `json:"class,omitempty"`
	// Start is the offset from the span's start (nanoseconds in JSON).
	Start time.Duration `json:"start_ns"`
	// Duration is the phase's wall time. Interleaved phases (decompress
	// overlapping receive) may overlap other phases; durations need not
	// tile the span.
	Duration time.Duration `json:"duration_ns"`
	Bytes    int64         `json:"bytes,omitempty"`
	Joules   float64       `json:"joules,omitempty"`
	// Detail carries free-form context ("attempt 2", "cache hit").
	Detail string `json:"detail,omitempty"`
}

// SpanData is a finished (or copied) span: the immutable value stored in
// the tracer's ring buffer, returned by snapshots, and marshalled by
// /tracez and hhfetch -trace.
type SpanData struct {
	ID    uint64            `json:"id"`
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Start time.Time         `json:"start"`
	End   time.Time         `json:"end"`
	Err   string            `json:"err,omitempty"`
	// Phases are in the order they were recorded, which is start order
	// for the single-goroutine paths and close to it elsewhere.
	Phases []Phase `json:"phases"`
}

// TotalJoules sums the modeled energy over all phases.
func (d SpanData) TotalJoules() float64 {
	var j float64
	for _, p := range d.Phases {
		j += p.Joules
	}
	return j
}

// JoulesByClass sums the modeled energy per energy class.
func (d SpanData) JoulesByClass() map[string]float64 {
	out := make(map[string]float64)
	for _, p := range d.Phases {
		if p.Joules != 0 {
			out[p.Class] += p.Joules
		}
	}
	return out
}

// Span is an in-progress trace. Its mutator methods are safe for
// concurrent use (the client's decompressor goroutine records phases
// while the receive loop does) and nil-safe, so instrumented code never
// branches on whether tracing is enabled.
type Span struct {
	t  *Tracer
	mu sync.Mutex
	d  SpanData
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d.Attrs == nil {
		s.d.Attrs = make(map[string]string)
	}
	s.d.Attrs[key] = value
}

// Phase records an interval that started at the given wall time.
func (s *Span) Phase(name, class string, start time.Time, dur time.Duration, bytes int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Phases = append(s.d.Phases, Phase{
		Name:     name,
		Class:    class,
		Start:    start.Sub(s.d.Start),
		Duration: dur,
		Bytes:    bytes,
	})
}

// PhaseDetail records an interval with a free-form detail string.
func (s *Span) PhaseDetail(name, class, detail string, start time.Time, dur time.Duration, bytes int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Phases = append(s.d.Phases, Phase{
		Name:     name,
		Class:    class,
		Start:    start.Sub(s.d.Start),
		Duration: dur,
		Bytes:    bytes,
		Detail:   detail,
	})
}

// AccountPhase appends a zero-duration accounting entry carrying joules
// directly — the idle-residual energy of the paper's model, which belongs
// to no recorded interval.
func (s *Span) AccountPhase(name, class string, joules float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Phases = append(s.d.Phases, Phase{Name: name, Class: class, Joules: joules})
}

// DistributeJoules spreads total joules over the span's phases of the
// given class, weighted by Bytes when any phase of the class moved bytes,
// by Duration otherwise, and evenly as a last resort. If the span has no
// phase of the class, a synthetic accounting phase is appended so no
// energy is silently dropped. The span's total modeled energy therefore
// increases by exactly total.
func (s *Span) DistributeJoules(class string, total float64) {
	if s == nil || total == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var idx []int
	var byteSum, durSum float64
	for i, p := range s.d.Phases {
		if p.Class == class {
			idx = append(idx, i)
			byteSum += float64(p.Bytes)
			durSum += p.Duration.Seconds()
		}
	}
	if len(idx) == 0 {
		s.d.Phases = append(s.d.Phases, Phase{Name: class, Class: class, Joules: total})
		return
	}
	weight := func(p Phase) float64 { return 1 }
	wsum := float64(len(idx))
	switch {
	case byteSum > 0:
		weight, wsum = func(p Phase) float64 { return float64(p.Bytes) }, byteSum
	case durSum > 0:
		weight, wsum = func(p Phase) float64 { return p.Duration.Seconds() }, durSum
	}
	// Give the last phase the exact remainder so rounding never loses or
	// invents energy relative to total.
	rest := total
	for n, i := range idx {
		if n == len(idx)-1 {
			s.d.Phases[i].Joules += rest
			break
		}
		share := total * weight(s.d.Phases[i]) / wsum
		s.d.Phases[i].Joules += share
		rest -= share
	}
}

// Fail records the error the span ended with.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Err = err.Error()
}

// Data returns a copy of the span's current state, usable before or after
// Finish (hhfetch -trace prints the fetch span it owns this way).
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.copyLocked()
}

func (s *Span) copyLocked() SpanData {
	d := s.d
	d.Phases = append([]Phase(nil), s.d.Phases...)
	if s.d.Attrs != nil {
		d.Attrs = make(map[string]string, len(s.d.Attrs))
		for k, v := range s.d.Attrs {
			d.Attrs[k] = v
		}
	}
	return d
}

// Finish stamps the end time and publishes the span to its tracer's ring
// buffer. Finish is idempotent in effect only if called once; call it
// exactly once, typically via defer.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.d.End = time.Now()
	d := s.copyLocked()
	t := s.t
	s.mu.Unlock()
	if t != nil {
		t.push(d)
	}
}

// Tracer hands out spans and retains the most recent finished ones in a
// fixed-capacity ring buffer: old traces are evicted in finish order, so
// memory stays bounded no matter the request rate.
type Tracer struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []SpanData
	head  int // next write position
	count int
	// onFinish, when set, observes every finished span after it lands in
	// the ring — the tee the wide-event export sink hangs off, so a live
	// tracer can feed /eventsz without the dataplane knowing about sinks.
	onFinish func(SpanData)
}

// NewTracer returns a tracer retaining up to capacity finished spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SpanData, capacity)}
}

// Start begins a span. A nil tracer returns a nil span, which absorbs all
// operations.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, d: SpanData{
		ID:    t.nextID.Add(1),
		Name:  name,
		Start: time.Now(),
	}}
}

// SetOnFinish installs a hook observing every span after it is pushed to
// the ring. The hook runs outside the tracer's lock, on the goroutine that
// called Finish; it must not block. A nil tracer ignores the call.
func (t *Tracer) SetOnFinish(fn func(SpanData)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onFinish = fn
	t.mu.Unlock()
}

func (t *Tracer) push(d SpanData) {
	t.mu.Lock()
	t.ring[t.head] = d
	t.head = (t.head + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	fn := t.onFinish
	t.mu.Unlock()
	if fn != nil {
		fn(d)
	}
}

// Snapshot returns the retained spans, oldest finished first. The result
// is sized exactly to Len(): an idle tracer returns nil, not a slice with
// the ring's full capacity behind it.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 {
		return nil
	}
	out := make([]SpanData, 0, t.count)
	start := t.head - t.count
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Len reports how many finished spans the tracer currently retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}
