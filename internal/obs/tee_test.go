package obs

import (
	"errors"
	"fmt"
	"testing"
)

// TestTracerSnapshotSizing is the regression test for the ring snapshot
// allocation: an empty tracer returns nil (no allocation at all), and a
// partially filled ring allocates exactly Len() slots, not the ring's
// full capacity.
func TestTracerSnapshotSizing(t *testing.T) {
	tr := NewTracer(64)
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("empty tracer Snapshot = %v, want nil", got)
	}
	for i := 0; i < 2; i++ {
		tr.Start(fmt.Sprintf("s%d", i)).Finish()
	}
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("len = %d, want 2", len(snap))
	}
	if cap(snap) != tr.Len() {
		t.Errorf("cap = %d, want Len() = %d (snapshot must not size to ring capacity)", cap(snap), tr.Len())
	}
}

// TestTracerOnFinishTee: the Finish tee must see every finished span with
// its recorded state (the export sink rides this hook), and a nil tracer
// must absorb SetOnFinish.
func TestTracerOnFinishTee(t *testing.T) {
	tr := NewTracer(2)
	var seen []SpanData
	tr.SetOnFinish(func(d SpanData) { seen = append(seen, d) })

	sp := tr.Start("serve")
	sp.SetAttr("name", "f.xml")
	sp.Finish()
	sp2 := tr.Start("serve")
	sp2.Fail(errors.New("boom"))
	sp2.Finish()

	if len(seen) != 2 {
		t.Fatalf("tee saw %d spans, want 2", len(seen))
	}
	if seen[0].Attrs["name"] != "f.xml" || seen[0].Err != "" {
		t.Errorf("first teed span = %+v", seen[0])
	}
	if seen[1].Err != "boom" {
		t.Errorf("second teed span err = %q, want boom", seen[1].Err)
	}

	var nilTr *Tracer
	nilTr.SetOnFinish(func(SpanData) { t.Error("nil tracer must not invoke the tee") })
	nilTr.Start("x").Finish()
}
