package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger returns a text-format slog logger writing to w at the given
// level. It is the one place the repository configures logging, so every
// component's output lines up (proxyd and hhfetch both route through it).
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything — the default for
// library components so instrumented code can log unconditionally.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// ParseLevel maps the CLI spellings to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q", s)
	}
}

// ReqID renders a wire request ID the way every log line and span
// attribute spells it, so a grep for one ID crosses the client/server
// boundary.
func ReqID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ReqIDAttr is the slog attribute carrying a request ID.
func ReqIDAttr(id uint64) slog.Attr { return slog.String("req_id", ReqID(id)) }
