package obs

import (
	"math"
	"testing"
)

// TestQuantileInterpolation pins the linear interpolation inside a bucket:
// four samples in a single (0, 10] bucket spread evenly across it.
func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10})
	for i := 0; i < 4; i++ {
		h.Observe(3) // bucket membership is all that matters
	}
	s := h.Snapshot()
	for q, want := range map[float64]float64{0.25: 2.5, 0.5: 5, 1: 10} {
		if got := s.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", q, got, want)
		}
	}
	// Out-of-range q clamps rather than extrapolating.
	if got := s.Quantile(-1); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Quantile(-1) = %g, want 2.5 (clamped to first sample)", got)
	}
	if got := s.Quantile(2); math.Abs(got-10) > 1e-12 {
		t.Errorf("Quantile(2) = %g, want 10 (clamped to last sample)", got)
	}
}

// TestQuantileOverflowBucket: a quantile landing past the last finite
// bound cannot be interpolated — it reports the last bound, the largest
// value the histogram can still vouch for.
func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(50)
	s := h.Snapshot()
	if got := s.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %g, want 2 (last finite bound)", got)
	}
	if got := s.Quantile(0.99); got != 2 {
		t.Errorf("Quantile(0.99) = %g, want 2 (overflow bucket)", got)
	}
	// The first sample still resolves inside its real bucket.
	if got := s.Quantile(0.01); math.Abs(got-1) > 1e-12 {
		t.Errorf("Quantile(0.01) = %g, want 1", got)
	}
}

// TestQuantileEmpty: no samples (or no bounds at all) must read NaN, not a
// fake zero a dashboard would happily plot.
func TestQuantileEmpty(t *testing.T) {
	if got := NewHistogram([]float64{1}).Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %g, want NaN", got)
	}
	if got := (HistogramSnapshot{Count: 3}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("boundless snapshot Quantile = %g, want NaN", got)
	}
}

// TestQuantileNonPositiveFirstBound: when the bucket edges start at or
// below zero the first bucket interpolates from its own bound, not from
// an implicit 0 above it.
func TestQuantileNonPositiveFirstBound(t *testing.T) {
	s := HistogramSnapshot{Bounds: []float64{0, 10}, Counts: []int64{3, 0, 0}, Count: 3}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %g, want 0 (bucket bounded above by 0)", got)
	}
}

// TestNewHistogramValidatesBounds: standalone histograms keep the
// registry's strictly-increasing invariant.
func TestNewHistogramValidatesBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-increasing bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}
