package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"testing"
)

// TestWriteJSONGolden pins the JSON exposition byte for byte: field names,
// field order, indentation. /statsz consumers parse this shape.
func TestWriteJSONGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total", "Requests.").Add(3)
	reg.Gauge("active", "").Set(-2)
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.25, 1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "counters": [
    {
      "name": "reqs_total",
      "help": "Requests.",
      "value": 3
    }
  ],
  "gauges": [
    {
      "name": "active",
      "value": -2
    }
  ],
  "histograms": [
    {
      "name": "lat_seconds",
      "help": "Latency.",
      "bounds": [
        0.25,
        1
      ],
      "counts": [
        1,
        1,
        1
      ],
      "count": 3,
      "sum": 2.75
    }
  ]
}
`
	if got := buf.String(); got != golden {
		t.Errorf("JSON mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestPrometheusHistogramRoundTrip re-parses the rendered text and checks
// it reconstructs the snapshot exactly: cumulative le-buckets must match
// the disjoint counts' running sum, +Inf must equal the total count, and
// _sum/_count must round-trip through the float formatter.
func TestPrometheusHistogramRoundTrip(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "", []float64{0.001, 0.5, 8})
	for _, v := range []float64{0.0005, 0.25, 0.25, 3, 100} {
		h.Observe(v)
	}
	snap := reg.Snapshot().Histograms[0]

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	bucketRe := regexp.MustCompile(`(?m)^h_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	matches := bucketRe.FindAllStringSubmatch(text, -1)
	if len(matches) != len(snap.Bounds)+1 {
		t.Fatalf("found %d bucket lines, want %d:\n%s", len(matches), len(snap.Bounds)+1, text)
	}
	var cum int64
	for i, m := range matches {
		got, _ := strconv.ParseInt(m[2], 10, 64)
		if i < len(snap.Bounds) {
			cum += snap.Counts[i]
			le, err := strconv.ParseFloat(m[1], 64)
			if err != nil || le != snap.Bounds[i] {
				t.Errorf("bucket %d le = %q, want %v", i, m[1], snap.Bounds[i])
			}
			if got != cum {
				t.Errorf("bucket le=%s = %d, want cumulative %d", m[1], got, cum)
			}
		} else {
			if m[1] != "+Inf" {
				t.Errorf("last bucket le = %q, want +Inf", m[1])
			}
			if got != snap.Count {
				t.Errorf("+Inf bucket = %d, want count %d", got, snap.Count)
			}
		}
	}

	sumRe := regexp.MustCompile(`(?m)^h_seconds_sum (\S+)$`)
	sum, err := strconv.ParseFloat(sumRe.FindStringSubmatch(text)[1], 64)
	if err != nil || sum != snap.Sum {
		t.Errorf("_sum = %v (err %v), want %v", sum, err, snap.Sum)
	}
	countRe := regexp.MustCompile(`(?m)^h_seconds_count (\d+)$`)
	count, _ := strconv.ParseInt(countRe.FindStringSubmatch(text)[1], 10, 64)
	if count != snap.Count {
		t.Errorf("_count = %d, want %d", count, snap.Count)
	}
}
