// Package export is the wide-event stage of the telemetry pipeline: one
// structured JSONL event per finished fetch or serve span, carrying
// everything downstream consumers need — the aggregator's rollup keys
// (scheme, device class), the calibrator's regression inputs (raw and
// wire bytes, per-class joules), and the operator's context (request ID,
// attempts, resumed bytes, outcome, per-phase durations).
//
// Two producer paths feed events:
//
//   - Live: a Sink attached to a proxy client or (via the Tracer's
//     Finish tee) a server. Record never blocks the dataplane — events
//     ride a bounded channel to a single drain goroutine that encodes
//     them; a full buffer drops the event and counts the drop. The sink
//     also keeps a bounded ring of recent events for /eventsz.
//   - Post-run: the soak harness synthesizes the canonical event stream
//     from its deterministic records (harness Report.Events), so the
//     same seed always yields byte-identical JSONL.
//
// The Event JSON schema is a stable contract (README "Telemetry and
// calibration"): fields may be added, never renamed or re-ordered.
package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Device-class tokens for Event.Device, part of the schema contract.
// They name the paper's two measured iPAQ/WaveLAN configurations; the
// calibrator maps them to Table 1 parameter sets.
const (
	DeviceIPAQ11 = "ipaq-11mbps"
	DeviceIPAQ2  = "ipaq-2mbps"
)

// Event is one wide event: the flattened, self-describing record of a
// finished fetch or serve span. Field order is the wire order; it is part
// of the schema contract.
type Event struct {
	// Time is the wall-clock span start (RFC3339Nano). Canonical streams
	// strip it: wall time is host noise under the virtual testbed.
	Time string `json:"time,omitempty"`
	// VNS is the span's start offset on the virtual clock in nanoseconds,
	// the deterministic ordering key of canonical streams. Live events
	// (no virtual epoch) carry 0.
	VNS int64 `json:"v_ns"`
	// Span is the span name: "fetch" (client side) or "serve" (proxy side).
	Span string `json:"span"`
	// ReqID is the %016x request ID shared by the client's fetch span and
	// every server serve span its attempts opened.
	ReqID string `json:"req_id,omitempty"`
	// Name is the file name fetched or served.
	Name string `json:"name,omitempty"`
	// Scheme and Mode are the transfer's compression scheme and mode.
	Scheme string `json:"scheme,omitempty"`
	Mode   string `json:"mode,omitempty"`
	// Device is the handheld's device class (e.g. "ipaq-11mbps"), the
	// calibrator's grouping key.
	Device string `json:"device,omitempty"`
	// LinkBps is the modeled link rate in bytes per second.
	LinkBps float64 `json:"link_bps,omitempty"`
	// Outcome is "ok" or a stable error class (busy/notfound/protocol/err
	// on canonical streams; live events may carry the raw error text).
	Outcome string `json:"outcome"`

	// RawBytes and WireBytes are the transfer's s and sc in bytes: raw
	// payload delivered and frame bytes that crossed the wire (headers,
	// blocks, end frames, summed across attempts).
	RawBytes  int64 `json:"raw_bytes"`
	WireBytes int64 `json:"wire_bytes"`
	// Blocks / BlocksCompressed count the block frames received; a
	// nonzero BlocksCompressed selects the interleaved energy model.
	Blocks           int `json:"blocks,omitempty"`
	BlocksCompressed int `json:"blocks_compressed,omitempty"`
	// Attempts is the connections the fetch used (1 = no retries);
	// ResumedBytes is raw bytes retries did not re-transfer.
	Attempts     int   `json:"attempts,omitempty"`
	ResumedBytes int64 `json:"resumed_bytes,omitempty"`

	// DurNS is the span's duration in nanoseconds — virtual time on
	// canonical streams, wall time on live ones.
	DurNS int64 `json:"dur_ns"`
	// Phases are the span's phases folded by (name, class): durations,
	// bytes and joules summed across attempts.
	Phases []PhaseSum `json:"phases,omitempty"`

	// Per-class modeled joules (the paper's radio / cpu / idle split).
	// Their sum is the whole-transfer model estimate.
	RadioJ float64 `json:"radio_j"`
	CPUJ   float64 `json:"cpu_j"`
	IdleJ  float64 `json:"idle_j"`

	// Node and Peer identify cluster traffic: the node that emitted the
	// event and, for "peer-fetch" spans, the ring owner it fetched from.
	// Appended fields per the schema contract; both empty outside cluster
	// mode, so pre-cluster streams are unchanged.
	Node string `json:"node,omitempty"`
	Peer string `json:"peer,omitempty"`
}

// TotalJoules is the whole-transfer modeled energy.
func (e Event) TotalJoules() float64 { return e.RadioJ + e.CPUJ + e.IdleJ }

// PhaseSum is one folded phase group of an event.
type PhaseSum struct {
	Name   string  `json:"name"`
	Class  string  `json:"class,omitempty"`
	NS     int64   `json:"ns"`
	Bytes  int64   `json:"bytes,omitempty"`
	Joules float64 `json:"joules,omitempty"`
}

// FoldPhases groups a span's phases by (name, class) in first-appearance
// order, summing durations, bytes and joules — a retrying fetch's three
// recv phases fold into one "recv" entry covering all attempts.
func FoldPhases(phases []obs.Phase) []PhaseSum {
	if len(phases) == 0 {
		return nil
	}
	type key struct{ name, class string }
	idx := make(map[key]int, len(phases))
	out := make([]PhaseSum, 0, len(phases))
	for _, p := range phases {
		k := key{p.Name, p.Class}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, PhaseSum{Name: p.Name, Class: p.Class})
		}
		out[i].NS += p.Duration.Nanoseconds()
		out[i].Bytes += p.Bytes
		out[i].Joules += p.Joules
	}
	return out
}

// FromSpan flattens a finished span into an event: attributes become the
// identity fields, phases fold by (name, class), and the per-class joule
// totals come from the span's charged phases. The caller fills in fields
// the span cannot know (device class, link rate, byte totals).
func FromSpan(d obs.SpanData) Event {
	e := Event{
		Span:    d.Name,
		ReqID:   d.Attrs["req_id"],
		Name:    d.Attrs["name"],
		Scheme:  d.Attrs["scheme"],
		Mode:    d.Attrs["mode"],
		Outcome: "ok",
		Phases:  FoldPhases(d.Phases),
	}
	if !d.Start.IsZero() {
		e.Time = d.Start.UTC().Format("2006-01-02T15:04:05.999999999Z07:00")
		e.DurNS = d.End.Sub(d.Start).Nanoseconds()
	}
	if d.Err != "" {
		e.Outcome = d.Err
	}
	by := d.JoulesByClass()
	e.RadioJ = by[obs.ClassRadio]
	e.CPUJ = by[obs.ClassCPU]
	e.IdleJ = by[obs.ClassIdle]
	return e
}

// Canonicalize returns the deterministic form of an event stream: events
// sorted by (virtual start, request ID, span), wall-clock timestamps
// stripped, and host-measured CPU phase entries removed (decompress and
// verify wall durations vary run to run even under the virtual clock; the
// cpu_j class total is model-derived and exact, so no information the
// calibrator needs is lost). Two runs of the same seeded scenario produce
// byte-identical canonical JSONL.
func Canonicalize(events []Event) []Event {
	out := make([]Event, len(events))
	for i, e := range events {
		e.Time = ""
		var phases []PhaseSum
		for _, p := range e.Phases {
			if p.Class == obs.ClassCPU {
				continue
			}
			phases = append(phases, p)
		}
		e.Phases = phases
		out[i] = e
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].VNS != out[j].VNS {
			return out[i].VNS < out[j].VNS
		}
		if out[i].ReqID != out[j].ReqID {
			return out[i].ReqID < out[j].ReqID
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// WriteJSONL encodes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL event stream, tolerating blank lines.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("export: event %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// Sink delivers events to an optional io.Writer as JSONL without ever
// blocking the producer, and retains the most recent events in a bounded
// ring for /eventsz. Record enqueues on a bounded channel; one drain
// goroutine encodes and writes. When the buffer is full the event is
// dropped and counted — backpressure must never reach the dataplane.
// A nil *Sink absorbs all operations, matching the obs idiom.
type Sink struct {
	ch   chan Event
	done chan struct{}

	mu    sync.Mutex
	ring  []Event
	head  int
	count int
	wErr  error

	// closeMu serializes Record against Close: sends take the read side,
	// so Close can mark the sink closed and close the channel without a
	// send-on-closed-channel race.
	closeMu   sync.RWMutex
	closed    bool
	closeOnce sync.Once

	recorded atomic.Int64
	droppedN atomic.Int64

	// Registry counters, nil until Bind; the atomics above keep counts
	// available to tests and Stats without a registry.
	eventsTotal  *obs.Counter
	droppedTotal *obs.Counter
}

// Default sink shape: the buffer absorbs a burst of a full connection
// backlog; the ring keeps a /tracez-sized page of recent events.
const (
	defaultBuffer = 1024
	defaultRing   = 256
)

// NewSink starts a sink draining to w (nil keeps the ring only). buffer
// and ring sizes fall back to defaults when <= 0. Close releases the
// drain goroutine.
func NewSink(w io.Writer, buffer, ring int) *Sink {
	if buffer <= 0 {
		buffer = defaultBuffer
	}
	if ring <= 0 {
		ring = defaultRing
	}
	s := &Sink{
		ch:   make(chan Event, buffer),
		done: make(chan struct{}),
		ring: make([]Event, ring),
	}
	go s.drain(w)
	return s
}

func (s *Sink) drain(w io.Writer) {
	defer close(s.done)
	var bw *bufio.Writer
	var enc *json.Encoder
	if w != nil {
		bw = bufio.NewWriter(w)
		enc = json.NewEncoder(bw)
	}
	for e := range s.ch {
		s.mu.Lock()
		s.ring[s.head] = e
		s.head = (s.head + 1) % len(s.ring)
		if s.count < len(s.ring) {
			s.count++
		}
		if enc != nil && s.wErr == nil {
			s.wErr = enc.Encode(e)
		}
		s.mu.Unlock()
	}
	if bw != nil {
		s.mu.Lock()
		if err := bw.Flush(); err != nil && s.wErr == nil {
			s.wErr = err
		}
		s.mu.Unlock()
	}
}

// Bind registers the sink's drop accounting on a registry:
// export_events_total and export_events_dropped_total.
func (s *Sink) Bind(reg *obs.Registry) {
	if s == nil {
		return
	}
	s.eventsTotal = reg.Counter("export_events_total",
		"Wide events accepted by the export sink.")
	s.droppedTotal = reg.Counter("export_events_dropped_total",
		"Wide events dropped because the sink buffer was full.")
}

// Record enqueues an event, dropping it (and counting the drop) when the
// buffer is full or the sink is closed. It never blocks.
func (s *Sink) Record(e Event) {
	if s == nil {
		return
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		s.droppedN.Add(1)
		s.droppedTotal.Inc()
		return
	}
	select {
	case s.ch <- e:
		s.recorded.Add(1)
		s.eventsTotal.Inc()
	default:
		s.droppedN.Add(1)
		s.droppedTotal.Inc()
	}
}

// Recent returns the retained events, oldest first, sized to the count
// actually retained.
func (s *Sink) Recent() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return nil
	}
	out := make([]Event, 0, s.count)
	start := s.head - s.count
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.count; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}

// Recorded and Dropped report the sink's lifetime accept/drop counts.
func (s *Sink) Recorded() int64 {
	if s == nil {
		return 0
	}
	return s.recorded.Load()
}

func (s *Sink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.droppedN.Load()
}

// Close drains buffered events, flushes the writer and stops the drain
// goroutine, returning the first write error the sink hit. Record after
// Close drops (and counts) the event rather than panicking.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		s.closeMu.Lock()
		s.closed = true
		close(s.ch)
		s.closeMu.Unlock()
	})
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wErr
}
