package export

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestEventJSONGolden pins the wire schema byte for byte — field names and
// field order are a stable contract (README "Telemetry and calibration").
func TestEventJSONGolden(t *testing.T) {
	e := Event{
		Time:             "2026-08-08T00:00:00Z",
		VNS:              1500000,
		Span:             "fetch",
		ReqID:            "0000000000000001",
		Name:             "nes96.xml",
		Scheme:           "gzip",
		Mode:             "selective",
		Device:           DeviceIPAQ11,
		LinkBps:          600000,
		Outcome:          "ok",
		RawBytes:         1000000,
		WireBytes:        400000,
		Blocks:           8,
		BlocksCompressed: 6,
		Attempts:         2,
		ResumedBytes:     128000,
		DurNS:            2000000,
		Phases:           []PhaseSum{{Name: "recv", Class: obs.ClassRadio, NS: 1000, Bytes: 400000, Joules: 1.5}},
		RadioJ:           1.9,
		CPUJ:             0.22,
		IdleJ:            0.8,
	}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"time":"2026-08-08T00:00:00Z","v_ns":1500000,"span":"fetch",` +
		`"req_id":"0000000000000001","name":"nes96.xml","scheme":"gzip","mode":"selective",` +
		`"device":"ipaq-11mbps","link_bps":600000,"outcome":"ok","raw_bytes":1000000,` +
		`"wire_bytes":400000,"blocks":8,"blocks_compressed":6,"attempts":2,"resumed_bytes":128000,` +
		`"dur_ns":2000000,"phases":[{"name":"recv","class":"radio","ns":1000,"bytes":400000,"joules":1.5}],` +
		`"radio_j":1.9,"cpu_j":0.22,"idle_j":0.8}`
	if string(raw) != golden {
		t.Errorf("schema drift:\n--- got ---\n%s\n--- want ---\n%s", raw, golden)
	}
}

// TestFoldPhases: retries repeat phase names; folding must merge by
// (name, class) in first-appearance order and sum the numbers.
func TestFoldPhases(t *testing.T) {
	got := FoldPhases([]obs.Phase{
		{Name: "dial", Class: obs.ClassRadio, Duration: time.Millisecond, Joules: 0.1},
		{Name: "recv", Class: obs.ClassRadio, Duration: 2 * time.Millisecond, Bytes: 100, Joules: 1},
		{Name: "backoff", Duration: 4 * time.Millisecond},
		{Name: "recv", Class: obs.ClassRadio, Start: time.Millisecond, Duration: 3 * time.Millisecond, Bytes: 200, Joules: 2},
	})
	want := []PhaseSum{
		{Name: "dial", Class: obs.ClassRadio, NS: 1e6, Joules: 0.1},
		{Name: "recv", Class: obs.ClassRadio, NS: 5e6, Bytes: 300, Joules: 3},
		{Name: "backoff", NS: 4e6},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FoldPhases = %+v, want %+v", got, want)
	}
	if FoldPhases(nil) != nil {
		t.Error("no phases must fold to nil, not an empty slice")
	}
}

// TestFromSpan: attributes become identity fields, charged phases become
// the per-class joule totals, and a failed span carries its error as the
// outcome.
func TestFromSpan(t *testing.T) {
	tr := obs.NewTracer(2)
	sp := tr.Start("serve")
	sp.SetAttr("req_id", obs.ReqID(7))
	sp.SetAttr("name", "f")
	sp.SetAttr("scheme", "gzip")
	sp.SetAttr("mode", "ondemand")
	sp.Phase("send", obs.ClassRadio, time.Now(), time.Millisecond, 500)
	sp.DistributeJoules(obs.ClassRadio, 2.5)
	sp.AccountPhase("idle", obs.ClassIdle, 0.5)
	sp.Finish()
	e := FromSpan(tr.Snapshot()[0])

	if e.Span != "serve" || e.ReqID != obs.ReqID(7) || e.Name != "f" ||
		e.Scheme != "gzip" || e.Mode != "ondemand" || e.Outcome != "ok" {
		t.Errorf("identity fields wrong: %+v", e)
	}
	if e.Time == "" || e.DurNS < 0 {
		t.Errorf("wall clock fields missing: time=%q dur=%d", e.Time, e.DurNS)
	}
	if e.RadioJ != 2.5 || e.IdleJ != 0.5 || e.CPUJ != 0 {
		t.Errorf("joules = %v/%v/%v, want 2.5/0/0.5", e.RadioJ, e.CPUJ, e.IdleJ)
	}
	if e.TotalJoules() != 3.0 {
		t.Errorf("total = %v, want 3", e.TotalJoules())
	}

	spErr := tr.Start("serve")
	spErr.Fail(errBoom{})
	spErr.Finish()
	if e := FromSpan(tr.Snapshot()[1]); e.Outcome != "boom" {
		t.Errorf("failed span outcome = %q, want boom", e.Outcome)
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

// TestCanonicalize: wall time stripped, CPU phases dropped, deterministic
// (VNS, ReqID, Span) order, input untouched.
func TestCanonicalize(t *testing.T) {
	in := []Event{
		{Time: "t2", VNS: 20, Span: "fetch", ReqID: "b"},
		{Time: "t1", VNS: 10, Span: "serve", ReqID: "a",
			Phases: []PhaseSum{
				{Name: "recv", Class: obs.ClassRadio, NS: 1},
				{Name: "decompress", Class: obs.ClassCPU, NS: 2},
			}},
		{Time: "t0", VNS: 10, Span: "fetch", ReqID: "a"},
	}
	got := Canonicalize(in)
	if in[0].Time != "t2" {
		t.Fatal("Canonicalize mutated its input")
	}
	wantOrder := []string{"fetch", "serve", "fetch"}
	for i, e := range got {
		if e.Time != "" {
			t.Errorf("event %d kept wall time %q", i, e.Time)
		}
		if e.Span != wantOrder[i] {
			t.Errorf("order[%d] = %s/%s, want span %s", i, e.ReqID, e.Span, wantOrder[i])
		}
	}
	if got[0].ReqID != "a" || got[1].ReqID != "a" || got[2].ReqID != "b" {
		t.Errorf("req order = %s,%s,%s, want a,a,b", got[0].ReqID, got[1].ReqID, got[2].ReqID)
	}
	if len(got[1].Phases) != 1 || got[1].Phases[0].Name != "recv" {
		t.Errorf("CPU phase not dropped: %+v", got[1].Phases)
	}
}

// TestJSONLRoundTrip: Write then Read must reproduce the events exactly,
// tolerating blank lines between objects.
func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{VNS: 1, Span: "fetch", Outcome: "ok", RawBytes: 10, RadioJ: 1.25},
		{VNS: 2, Span: "serve", Outcome: "busy"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
	got, err := ReadJSONL(strings.NewReader(buf.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\n%+v\nvs\n%+v", got, events)
	}
	if _, err := ReadJSONL(strings.NewReader(`{"v_ns": "not a number"}`)); err == nil {
		t.Error("malformed stream must error")
	}
}

// blockingWriter blocks every Write until released, signalling when the
// first Write begins — the lever for making the drop path deterministic.
type blockingWriter struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
	buf     bytes.Buffer
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.started) })
	<-w.release
	return w.buf.Write(p)
}

// TestSinkDeliversAndRings: events reach the writer as JSONL and the ring
// keeps the most recent events oldest-first.
func TestSinkDeliversAndRings(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, 16, 4)
	for i := 1; i <= 6; i++ {
		s.Record(Event{VNS: int64(i), Span: "fetch"})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || s.Recorded() != 6 || s.Dropped() != 0 {
		t.Fatalf("drained %d events, recorded=%d dropped=%d", len(got), s.Recorded(), s.Dropped())
	}
	recent := s.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	for i, e := range recent {
		if e.VNS != int64(i+3) {
			t.Errorf("ring[%d].VNS = %d, want %d (oldest first)", i, e.VNS, i+3)
		}
	}
}

// TestSinkDropsWhenFull: with the drain goroutine wedged in a Write and
// the buffer full, Record must drop and count instead of blocking, and
// the bound counters must agree.
func TestSinkDropsWhenFull(t *testing.T) {
	w := &blockingWriter{started: make(chan struct{}), release: make(chan struct{})}
	s := NewSink(w, 1, 4)
	reg := obs.NewRegistry()
	s.Bind(reg)

	// The first event is larger than the drain's bufio buffer, so its
	// encode writes through to the wedged writer instead of being absorbed.
	s.Record(Event{VNS: 1, Name: strings.Repeat("x", 8192)})
	<-w.started
	s.Record(Event{VNS: 2}) // fills the 1-slot buffer
	s.Record(Event{VNS: 3}) // must drop
	if got := s.Dropped(); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Recorded() != 2 {
		t.Errorf("Recorded = %d, want 2", s.Recorded())
	}
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		switch c.Name {
		case "export_events_total":
			if c.Value != 2 {
				t.Errorf("export_events_total = %d, want 2", c.Value)
			}
		case "export_events_dropped_total":
			if c.Value != 1 {
				t.Errorf("export_events_dropped_total = %d, want 1", c.Value)
			}
		}
	}
	got, err := ReadJSONL(&w.buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("writer got %d events, want 2", len(got))
	}
}

// TestSinkCloseSemantics: Record after Close drops instead of panicking,
// double Close is safe, and a nil sink absorbs everything.
func TestSinkCloseSemantics(t *testing.T) {
	s := NewSink(nil, 4, 4)
	s.Record(Event{VNS: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Record(Event{VNS: 2})
	if s.Dropped() != 1 || s.Recorded() != 1 {
		t.Errorf("after close: recorded=%d dropped=%d, want 1/1", s.Recorded(), s.Dropped())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(s.Recent()) != 1 {
		t.Errorf("ring lost the pre-close event")
	}

	var nilSink *Sink
	nilSink.Record(Event{})
	if nilSink.Recent() != nil || nilSink.Recorded() != 0 || nilSink.Dropped() != 0 || nilSink.Close() != nil {
		t.Error("nil sink must absorb all operations")
	}
}
