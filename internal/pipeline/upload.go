package pipeline

import (
	"errors"
	"time"

	"repro/internal/codec"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/multimeter"
	"repro/internal/selective"
	"repro/internal/sim"
	"repro/internal/wlan"
)

// uploadProbeBytes is the sample size the adaptive uploader compresses to
// estimate a block's factor before committing to a full compression.
const uploadProbeBytes = 16_000

// UploadSpec describes one simulated upload experiment — the direction the
// paper raises in its introduction (live-captured voice and pictures) and
// leaves to future work. The handheld compresses on its own CPU
// (device.HandheldCompressCost) and transmits; compression of block i+1
// overlaps the transmission of block i via the inter-packet idle windows,
// mirroring the download-side interleaving.
type UploadSpec struct {
	// Data is the raw content to upload.
	Data []byte
	// Scheme is the compression scheme; Compressed must be set for it to
	// take effect.
	Scheme codec.Scheme
	// Level is the codec level (0 = paper setting).
	Level int
	// Compressed selects compress-then-send (pipelined); false uploads
	// the raw bytes.
	Compressed bool
	// Selective applies the Equation 6 per-block test before compressing
	// each block (with the raw/compressed framing of Section 4.3).
	Selective bool
	// Rate is the link configuration (defaults to 11 Mb/s).
	Rate wlan.RateConfig
	// MeterRate is the multimeter sampling rate (0 = 300/s).
	MeterRate float64
}

// RunUpload executes the upload experiment and reports the same result
// structure as downloads (CompressSeconds lands in DecompressSeconds'
// place: it is the CPU-busy time).
func RunUpload(spec UploadSpec) (Result, error) {
	if spec.Rate.EffectiveMBps == 0 {
		spec.Rate = wlan.Rate11Mbps()
	}
	blocks, wireBytes, stats, err := buildUploadBlocks(spec)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		RawBytes:         len(spec.Data),
		WireBytes:        wireBytes,
		Factor:           codec.Factor(len(spec.Data), wireBytes),
		BlocksTotal:      stats.total,
		BlocksCompressed: stats.compressed,
	}

	k := sim.NewKernel()
	dev := device.New(k, device.DefaultPowerTable())
	link, err := wlan.NewLink(k, dev, spec.Rate)
	if err != nil {
		return Result{}, err
	}
	meter := multimeter.New(k, dev, spec.MeterRate)
	worker := device.NewWorker(k, dev)

	var totalEnd time.Duration
	var stall time.Duration

	meter.Trigger()
	if len(blocks) == 0 {
		link.Upload(wireBytes, nil, func() {
			totalEnd = k.Now()
			meter.Stop()
		})
	} else {
		var sendBlock func(i int)
		sendBlock = func(i int) {
			if i >= len(blocks) {
				totalEnd = k.Now()
				meter.Stop()
				return
			}
			// Block i must be fully compressed before its bytes exist to
			// send; any leftover work stalls the radio (CPU busy).
			start := func() {
				// Queue the next block's compression to run inside this
				// transmission's idle windows.
				if i+1 < len(blocks) {
					worker.Add(blocks[i+1].work)
				}
				link.Upload(blocks[i].wireBytes, worker, func() { sendBlock(i + 1) })
			}
			if worker.Pending() > 0 {
				wait := worker.Pending()
				stall += wait
				end := worker.Drain()
				k.At(end, start)
				return
			}
			start()
		}
		// Lead-in: compress block 0 before anything can be sent.
		worker.Add(blocks[0].work)
		stall += blocks[0].work
		end := worker.Drain()
		k.At(end, func() { sendBlock(0) })
	}
	k.Run()

	if totalEnd == 0 && res.RawBytes > 0 {
		return Result{}, errors.New("pipeline: upload did not complete")
	}
	res.TotalSeconds = totalEnd
	res.TransferSeconds = totalEnd
	res.DecompressSeconds = worker.BusyTotal() // CPU-busy (compression) time
	res.StallSeconds = stall
	reading, err := meter.Reading()
	if err != nil {
		return Result{}, err
	}
	res.MeteredEnergyJ = reading.EnergyJ
	res.ExactEnergyJ = reading.ExactJ
	res.AvgCurrentMA = reading.AvgMA
	res.MaxCurrentMA = reading.MaxMA
	return res, nil
}

// buildUploadBlocks compresses the payload on the "handheld" and derives
// per-block wire sizes and compression costs.
func buildUploadBlocks(spec UploadSpec) ([]wireBlock, int, blockStats, error) {
	if !spec.Compressed {
		return nil, len(spec.Data), blockStats{}, nil
	}
	c, err := codec.New(spec.Scheme, spec.Level)
	if err != nil {
		return nil, 0, blockStats{}, err
	}
	cost := device.HandheldCompressCost(spec.Scheme).ScaledForLevel(spec.Level)

	decider := selective.Decider(selective.AlwaysCompress{})
	if spec.Selective {
		decider = selective.UploadDecider{
			Params:    energy.Params11Mbps(),
			PerInMB:   cost.PerInMB,
			PerOutMB:  cost.PerOutMB,
			PerStream: cost.PerStream,
		}
	}
	enc, err := selective.Encode(spec.Data, c, decider)
	if err != nil {
		return nil, 0, blockStats{}, err
	}
	st := enc.Stats()
	stats := blockStats{total: st.BlocksTotal, compressed: st.BlocksCompressed}
	blocks := make([]wireBlock, 0, len(enc.Blocks))
	for _, b := range enc.Blocks {
		wb := wireBlock{wireBytes: b.WireLen()}
		if b.Compressed {
			wb.work = cost.Seconds(b.RawLen, len(b.Payload), 1)
		} else {
			// A rejected block costs a cheap probe, not a full attempt:
			// the adaptive uploader compresses a 16 kB sample of the
			// block and extrapolates the factor before deciding (the
			// decision itself is idealised as if the full factor were
			// known). A plain raw block costs only the copy.
			wb.work = time.Duration(rawCopyCostPerMB * float64(b.RawLen) / 1e6 * float64(time.Second))
			if spec.Selective && b.RawLen >= decider.MinSizeBytes() {
				probe := b.RawLen
				if probe > uploadProbeBytes {
					probe = uploadProbeBytes
				}
				wb.work += cost.Seconds(probe, probe, 1)
			}
		}
		blocks = append(blocks, wb)
	}
	return blocks, st.WireBytes, stats, nil
}
