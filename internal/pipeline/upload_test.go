package pipeline

import (
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/workload"
)

func mustUpload(t testing.TB, spec UploadSpec) Result {
	t.Helper()
	res, err := RunUpload(spec)
	if err != nil {
		t.Fatalf("RunUpload: %v", err)
	}
	return res
}

func TestUploadPlainMatchesModel(t *testing.T) {
	p := energy.Params11Mbps()
	for _, n := range []int{300_000, 1_000_000} {
		data := workload.Generate(workload.ClassAudio, n, 3)
		res := mustUpload(t, UploadSpec{Data: data})
		want := p.UploadEnergy(float64(n) / 1e6)
		if rel := math.Abs(res.ExactEnergyJ-want) / want; rel > 0.02 {
			t.Errorf("n=%d: sim %.4f vs model %.4f (%.1f%%)", n, res.ExactEnergyJ, want, rel*100)
		}
	}
}

func TestUploadCompressionSavesOnText(t *testing.T) {
	// "Lively captured" content that compresses well: uploading the
	// compressed form must save despite the handheld's slow compressor.
	data := workload.Generate(workload.ClassWebLog, 2_000_000, 5)
	plain := mustUpload(t, UploadSpec{Data: data})
	comp := mustUpload(t, UploadSpec{Data: data, Scheme: codec.Zlib, Compressed: true})
	if comp.ExactEnergyJ >= plain.ExactEnergyJ {
		t.Errorf("compressed upload %.3f J should beat plain %.3f J at factor %.2f",
			comp.ExactEnergyJ, plain.ExactEnergyJ, comp.Factor)
	}
}

func TestUploadCompressionLosesOnRandom(t *testing.T) {
	data := workload.Generate(workload.ClassRandom, 1_000_000, 5)
	plain := mustUpload(t, UploadSpec{Data: data})
	comp := mustUpload(t, UploadSpec{Data: data, Scheme: codec.Zlib, Compressed: true})
	if comp.ExactEnergyJ <= plain.ExactEnergyJ {
		t.Errorf("blind compressed upload of random data should lose: %.3f vs %.3f J",
			comp.ExactEnergyJ, plain.ExactEnergyJ)
	}
	// Selective upload skips the doomed blocks and stays near plain.
	sel := mustUpload(t, UploadSpec{Data: data, Scheme: codec.Zlib, Compressed: true, Selective: true})
	if sel.ExactEnergyJ >= comp.ExactEnergyJ {
		t.Errorf("selective upload %.3f J should beat blind %.3f J on random data",
			sel.ExactEnergyJ, comp.ExactEnergyJ)
	}
}

func TestUploadCostsMoreThanDownloadPerByte(t *testing.T) {
	data := workload.Generate(workload.ClassAudio, 1_000_000, 7)
	up := mustUpload(t, UploadSpec{Data: data})
	down := mustRun(t, Spec{Data: data, Mode: ModePlain})
	if !(up.ExactEnergyJ > down.ExactEnergyJ) {
		t.Errorf("transmit (%.3f J) should cost more than receive (%.3f J)",
			up.ExactEnergyJ, down.ExactEnergyJ)
	}
}

func TestUploadStallIncludesLeadIn(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 1_000_000, 9)
	comp := mustUpload(t, UploadSpec{Data: data, Scheme: codec.Gzip, Compressed: true})
	if comp.StallSeconds == 0 {
		t.Error("first-block compression lead-in should appear as stall")
	}
	if comp.DecompressSeconds == 0 {
		t.Error("compression CPU time not recorded")
	}
}

func TestUploadEmptyData(t *testing.T) {
	res := mustUpload(t, UploadSpec{Data: nil})
	if res.ExactEnergyJ != 0 && res.RawBytes != 0 {
		t.Errorf("empty upload: %+v", res)
	}
}

func TestUploadModelThreshold(t *testing.T) {
	// The handheld compressor is ~9x slower than the proxy, so the upload
	// break-even factor must exceed the download one.
	p := energy.Params11Mbps()
	cost := device.HandheldCompressCost(codec.Gzip)
	upThresh := p.UploadThresholdFactor(4.0, cost.PerInMB)
	downThresh := p.ThresholdFactor(4.0)
	if !(upThresh > downThresh) {
		t.Errorf("upload threshold %.3f should exceed download %.3f", upThresh, downThresh)
	}
	if upThresh > 3 {
		t.Errorf("upload threshold %.3f implausibly high", upThresh)
	}
}

func TestUploadCompressedModelAgreement(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 2_000_000, 11)
	res := mustUpload(t, UploadSpec{Data: data, Scheme: codec.Gzip, Compressed: true})
	p := energy.Params11Mbps()
	s := float64(res.RawBytes) / 1e6
	sc := float64(res.WireBytes) / 1e6
	tc := res.DecompressSeconds.Seconds()
	want := p.UploadCompressedEnergy(s, sc, tc)
	if rel := math.Abs(res.ExactEnergyJ-want) / want; rel > 0.10 {
		t.Errorf("sim %.4f vs model %.4f (%.1f%%)", res.ExactEnergyJ, want, rel*100)
	}
}
