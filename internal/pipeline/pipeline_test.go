package pipeline

import (
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/selective"
	"repro/internal/wlan"
	"repro/internal/workload"
)

func mustRun(t testing.TB, spec Spec) Result {
	t.Helper()
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func textData(n int) []byte { return workload.Generate(workload.ClassSource, n, 123) }

func TestPlainDownloadMatchesModel(t *testing.T) {
	p := energy.Params11Mbps()
	for _, n := range []int{200_000, 1_000_000, 3_000_000} {
		res := mustRun(t, Spec{Data: textData(n), Mode: ModePlain})
		want := p.DownloadEnergy(float64(n) / 1e6)
		if rel := math.Abs(res.ExactEnergyJ-want) / want; rel > 0.02 {
			t.Errorf("n=%d: sim %.4f J vs model %.4f J (%.2f%%)", n, res.ExactEnergyJ, want, rel*100)
		}
	}
}

func TestInterleavedMatchesModel(t *testing.T) {
	p := energy.Params11Mbps()
	n := 2_000_000
	data := textData(n)
	res := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeInterleaved})
	s := float64(n) / 1e6
	sc := float64(res.WireBytes) / 1e6
	want := p.InterleavedEnergy(s, sc)
	if rel := math.Abs(res.ExactEnergyJ-want) / want; rel > 0.06 {
		t.Errorf("sim %.4f J vs model %.4f J (%.1f%%)", res.ExactEnergyJ, want, rel*100)
	}
}

func TestSequentialMatchesModel(t *testing.T) {
	p := energy.Params11Mbps()
	n := 2_000_000
	res := mustRun(t, Spec{Data: textData(n), Scheme: codec.Gzip, Mode: ModeSequential})
	s := float64(n) / 1e6
	sc := float64(res.WireBytes) / 1e6
	want := p.SequentialEnergy(s, sc)
	if rel := math.Abs(res.ExactEnergyJ-want) / want; rel > 0.06 {
		t.Errorf("sim %.4f J vs model %.4f J (%.1f%%)", res.ExactEnergyJ, want, rel*100)
	}
}

func TestInterleavingBeatsSequential(t *testing.T) {
	data := textData(3_000_000)
	seq := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeSequential})
	inter := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeInterleaved})
	if !(inter.ExactEnergyJ < seq.ExactEnergyJ) {
		t.Errorf("interleaved %.3f J should beat sequential %.3f J", inter.ExactEnergyJ, seq.ExactEnergyJ)
	}
	if !(inter.TotalSeconds < seq.TotalSeconds) {
		t.Errorf("interleaved %v should be faster than sequential %v", inter.TotalSeconds, seq.TotalSeconds)
	}
}

func TestCompressionSavesOnCompressibleData(t *testing.T) {
	data := workload.Generate(workload.ClassXML, 2_000_000, 5)
	plain := mustRun(t, Spec{Data: data, Mode: ModePlain})
	comp := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeInterleaved})
	if comp.ExactEnergyJ >= plain.ExactEnergyJ/3 {
		t.Errorf("XML at factor %.1f should cut energy >3x: %.3f vs %.3f J",
			comp.Factor, comp.ExactEnergyJ, plain.ExactEnergyJ)
	}
}

func TestCompressionLosesOnRandomData(t *testing.T) {
	data := workload.Generate(workload.ClassRandom, 1_000_000, 5)
	plain := mustRun(t, Spec{Data: data, Mode: ModePlain})
	comp := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeInterleaved})
	if comp.ExactEnergyJ <= plain.ExactEnergyJ {
		t.Errorf("random data should lose with blind compression: %.3f vs %.3f J",
			comp.ExactEnergyJ, plain.ExactEnergyJ)
	}
}

func TestSelectiveNeverLoses(t *testing.T) {
	// The paper's Section 4.3 claim, on the worst case for blind
	// compression: incompressible data.
	for _, seed := range []uint64{1, 2, 3} {
		data := workload.Generate(workload.ClassRandom, 1_000_000, seed)
		plain := mustRun(t, Spec{Data: data, Mode: ModePlain})
		sel := mustRun(t, Spec{Data: data, Scheme: codec.Zlib, Mode: ModeInterleaved, Selective: true})
		if sel.ExactEnergyJ > plain.ExactEnergyJ*1.01 {
			t.Errorf("seed %d: selective %.3f J exceeds plain %.3f J", seed, sel.ExactEnergyJ, plain.ExactEnergyJ)
		}
		if sel.BlocksCompressed != 0 {
			t.Errorf("seed %d: %d random blocks compressed", seed, sel.BlocksCompressed)
		}
	}
}

func TestSelectiveStillWinsOnCompressible(t *testing.T) {
	data := workload.Generate(workload.ClassWebLog, 2_000_000, 7)
	plain := mustRun(t, Spec{Data: data, Mode: ModePlain})
	sel := mustRun(t, Spec{Data: data, Scheme: codec.Zlib, Mode: ModeInterleaved, Selective: true})
	if sel.ExactEnergyJ >= plain.ExactEnergyJ/2 {
		t.Errorf("selective on logs: %.3f vs plain %.3f J", sel.ExactEnergyJ, plain.ExactEnergyJ)
	}
}

func TestSelectiveMixedBeatsBlindCompression(t *testing.T) {
	data := workload.MixedFile(2_000_000, 11)
	blind := mustRun(t, Spec{Data: data, Scheme: codec.Zlib, Mode: ModeInterleaved})
	sel := mustRun(t, Spec{Data: data, Scheme: codec.Zlib, Mode: ModeInterleaved, Selective: true})
	if sel.ExactEnergyJ >= blind.ExactEnergyJ*1.02 {
		t.Errorf("selective %.3f J should not exceed blind %.3f J on mixed data",
			sel.ExactEnergyJ, blind.ExactEnergyJ)
	}
	if sel.BlocksCompressed == 0 || sel.BlocksCompressed == sel.BlocksTotal {
		t.Errorf("mixed file decisions %d/%d", sel.BlocksCompressed, sel.BlocksTotal)
	}
}

func TestOnDemandZlibPipelineMasksCompression(t *testing.T) {
	// The revised zlib of Section 5 compresses block i+1 while block i
	// transmits: time and energy stay close to the precompressed run.
	data := textData(2_000_000)
	pre := mustRun(t, Spec{Data: data, Scheme: codec.Zlib, Mode: ModeInterleaved})
	dem := mustRun(t, Spec{Data: data, Scheme: codec.Zlib, Mode: ModeInterleaved, OnDemand: true})
	if dem.TotalSeconds.Seconds() > pre.TotalSeconds.Seconds()*1.3 {
		t.Errorf("on-demand %.3fs much slower than precompressed %.3fs",
			dem.TotalSeconds.Seconds(), pre.TotalSeconds.Seconds())
	}
	if dem.StallSeconds > dem.TotalSeconds/4 {
		t.Errorf("zlib on-demand stalled %.1f%% of the time",
			100*dem.StallSeconds.Seconds()/dem.TotalSeconds.Seconds())
	}
}

func TestOnDemandWholeFileShowsCompressionTime(t *testing.T) {
	// The stock gzip tool compresses the whole file first (the visible
	// compression component of Figure 12); the block pipeline masks it.
	data := textData(2_000_000)
	whole := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeInterleaved,
		OnDemand: true, OnDemandWholeFile: true})
	piped := mustRun(t, Spec{Data: data, Scheme: codec.Zlib, Mode: ModeInterleaved, OnDemand: true})
	if whole.TotalSeconds <= piped.TotalSeconds {
		t.Errorf("whole-file on-demand (%.3fs) should be slower than block-pipelined (%.3fs)",
			whole.TotalSeconds.Seconds(), piped.TotalSeconds.Seconds())
	}
	if whole.StallSeconds == 0 {
		t.Error("whole-file on-demand should stall during up-front compression")
	}
}

func TestOnDemandBzip2StallsMore(t *testing.T) {
	data := textData(1_500_000)
	gz := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeInterleaved, OnDemand: true})
	bz := mustRun(t, Spec{Data: data, Scheme: codec.Bzip2, Mode: ModeInterleaved, OnDemand: true})
	if bz.StallSeconds <= gz.StallSeconds {
		t.Errorf("bzip2 on-demand should stall more: %v vs %v", bz.StallSeconds, gz.StallSeconds)
	}
}

func TestBzip2SleepModeHelps(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 2_000_000, 9)
	plain := mustRun(t, Spec{Data: data, Scheme: codec.Bzip2, Mode: ModeSequential})
	sleep := mustRun(t, Spec{Data: data, Scheme: codec.Bzip2, Mode: ModeSequential, SleepDuringDecompress: true})
	if !(sleep.ExactEnergyJ < plain.ExactEnergyJ) {
		t.Errorf("sleep during bzip2 decompress should save: %.3f vs %.3f J",
			sleep.ExactEnergyJ, plain.ExactEnergyJ)
	}
}

func TestGzipBeatsBzip2AndCompressOnEnergy(t *testing.T) {
	// The paper's headline (Figure 2): gzip wins on typical compressible
	// content; bzip2 runs with power saving as in the paper.
	data := workload.Generate(workload.ClassPostscript, 2_000_000, 13)
	gz := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeSequential})
	lz := mustRun(t, Spec{Data: data, Scheme: codec.Compress, Mode: ModeSequential})
	bz := mustRun(t, Spec{Data: data, Scheme: codec.Bzip2, Mode: ModeSequential, SleepDuringDecompress: true})
	if !(gz.ExactEnergyJ < lz.ExactEnergyJ) {
		t.Errorf("gzip %.3f J should beat compress %.3f J", gz.ExactEnergyJ, lz.ExactEnergyJ)
	}
	if !(gz.ExactEnergyJ < bz.ExactEnergyJ) {
		t.Errorf("gzip %.3f J should beat bzip2 %.3f J", gz.ExactEnergyJ, bz.ExactEnergyJ)
	}
}

func Test2MbpsFavoursCompression(t *testing.T) {
	// At 2 Mb/s communication is so expensive that even modest factors pay
	// off strongly (paper Section 4.2).
	data := workload.Generate(workload.ClassBinary, 1_000_000, 17)
	plain := mustRun(t, Spec{Data: data, Mode: ModePlain, Rate: wlan.Rate2Mbps()})
	comp := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeInterleaved, Rate: wlan.Rate2Mbps()})
	saving := 1 - comp.ExactEnergyJ/plain.ExactEnergyJ
	if saving < 0.3 {
		t.Errorf("2 Mb/s saving %.2f, want > 0.3 at factor %.2f", saving, comp.Factor)
	}
}

func TestMeteredCloseToExact(t *testing.T) {
	data := textData(1_000_000)
	res := mustRun(t, Spec{Data: data, Scheme: codec.Gzip, Mode: ModeInterleaved})
	if rel := math.Abs(res.MeteredEnergyJ-res.ExactEnergyJ) / res.ExactEnergyJ; rel > 0.05 {
		t.Errorf("meter error %.2f%%", rel*100)
	}
}

func TestModeRequired(t *testing.T) {
	if _, err := Run(Spec{Data: []byte("x")}); err == nil {
		t.Error("missing mode accepted")
	}
}

func TestCustomDecider(t *testing.T) {
	data := workload.Generate(workload.ClassRandom, 500_000, 21)
	res := mustRun(t, Spec{
		Data: data, Scheme: codec.Zlib, Mode: ModeInterleaved,
		Selective: true, Decider: selective.AlwaysCompress{},
	})
	if res.BlocksCompressed != res.BlocksTotal {
		t.Errorf("AlwaysCompress left %d/%d blocks raw",
			res.BlocksTotal-res.BlocksCompressed, res.BlocksTotal)
	}
}
