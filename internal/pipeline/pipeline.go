// Package pipeline executes complete simulated download experiments: it
// compresses real bytes with the real codecs, then replays the transfer on
// the simulated device/link/meter stack in one of the paper's modes —
// plain download, download-then-decompress (optionally with the radio put
// to sleep), interleaved block-by-block decompression (Section 4.1),
// selective block-adaptive streams (Section 4.3), and compression on
// demand with server-side overlap (Section 5).
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/device"
	"repro/internal/multimeter"
	"repro/internal/selective"
	"repro/internal/sim"
	"repro/internal/wlan"
)

// Mode selects the experiment execution strategy.
type Mode int

// Experiment modes.
const (
	// ModePlain downloads the raw bytes with no compression.
	ModePlain Mode = iota + 1
	// ModeSequential downloads the compressed stream, then decompresses.
	ModeSequential
	// ModeInterleaved decompresses block i while downloading block i+1.
	ModeInterleaved
)

// rawCopyCostPerMB is the CPU time to move a raw (uncompressed) selective
// block out of the receive buffer.
const rawCopyCostPerMB = 0.02

// blockRaw is the interleaving granularity in raw bytes (the 0.128 MB
// compression buffer).
const blockRaw = selective.BlockSize

// Spec describes one experiment.
type Spec struct {
	// Data is the raw file content.
	Data []byte
	// Scheme is the compression scheme (ignored for ModePlain).
	Scheme codec.Scheme
	// Level is the codec level; 0 selects the paper's setting.
	Level int
	// Mode is the execution strategy.
	Mode Mode
	// Selective wraps the data in the block-adaptive container of
	// Section 4.3 instead of one whole-file stream.
	Selective bool
	// Decider drives selective decisions (defaults to the paper's Eq. 6).
	Decider selective.Decider
	// OnDemand makes the proxy compress during the transfer (Section 5):
	// block i+1 is compressed while block i transmits, and the client may
	// stall when the server falls behind. Stall windows are granted to the
	// decompression worker, so waiting burns no extra energy beyond idle.
	OnDemand bool
	// OnDemandWholeFile models the stock gzip/compress tools, which (as
	// the paper measured them) compress the entire file before the
	// transfer starts instead of pipelining block by block; the revised
	// zlib of Section 5 uses the block pipeline instead.
	OnDemandWholeFile bool
	// Rate is the link configuration (defaults to 11 Mb/s).
	Rate wlan.RateConfig
	// PowerSave enables the WaveLAN power-saving mode for the whole run.
	PowerSave bool
	// SleepDuringDecompress puts the radio to sleep for the decompression
	// phase (meaningful for ModeSequential; the paper uses it for bzip2).
	SleepDuringDecompress bool
	// MeterRate is the multimeter sampling rate (samples/s; default 300).
	MeterRate float64
	// CaptureTrace records the device's current trace in the result, for
	// timeline rendering (Figures 3-4 style).
	CaptureTrace bool
}

// Result reports everything the paper's figures need.
type Result struct {
	RawBytes  int
	WireBytes int
	Factor    float64

	TransferSeconds   time.Duration // setup + on-air time (incl. stalls)
	TotalSeconds      time.Duration // until last byte decompressed
	DecompressSeconds time.Duration // CPU-busy decompression time
	StallSeconds      time.Duration // link idle waiting for the server

	MeteredEnergyJ float64 // avg-current reading, as the paper measures
	ExactEnergyJ   float64 // exact trace integral
	AvgCurrentMA   float64
	MaxCurrentMA   float64

	BlocksTotal      int
	BlocksCompressed int

	// Trace is the device current trace (only when Spec.CaptureTrace).
	Trace []device.Segment
}

// wireBlock is one transfer unit with its decompression cost and, for
// on-demand runs, the earliest time the server can start sending it.
type wireBlock struct {
	wireBytes int
	work      time.Duration
	readyAt   time.Duration
}

// Run executes the experiment.
func Run(spec Spec) (Result, error) {
	if spec.Mode == 0 {
		return Result{}, errors.New("pipeline: mode not set")
	}
	if spec.Rate.EffectiveMBps == 0 {
		spec.Rate = wlan.Rate11Mbps()
	}
	if spec.Decider == nil {
		spec.Decider = selective.PaperDecider{}
	}

	blocks, wireBytes, stats, err := buildBlocks(spec)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		RawBytes:         len(spec.Data),
		WireBytes:        wireBytes,
		Factor:           codec.Factor(len(spec.Data), wireBytes),
		BlocksTotal:      stats.total,
		BlocksCompressed: stats.compressed,
	}

	k := sim.NewKernel()
	dev := device.New(k, device.DefaultPowerTable())
	dev.SetPowerSave(spec.PowerSave)
	link, err := wlan.NewLink(k, dev, spec.Rate)
	if err != nil {
		return Result{}, err
	}
	meter := multimeter.New(k, dev, spec.MeterRate)
	worker := device.NewWorker(k, dev)

	var transferEnd, totalEnd time.Duration
	var stall time.Duration
	// completed flips when a mode's finish callback actually ran; checking
	// it (instead of a totalEnd==0 sentinel) keeps zero-byte experiments,
	// whose end time legitimately is 0, from reporting a half-run result.
	var completed bool

	meter.Trigger()
	switch spec.Mode {
	case ModePlain:
		link.Download(res.RawBytes, nil, nil, func() {
			transferEnd = k.Now()
			totalEnd = transferEnd
			completed = true
			meter.Stop()
		})
	case ModeSequential:
		link.Download(wireBytes, nil, nil, func() {
			transferEnd = k.Now()
			if spec.SleepDuringDecompress {
				// The paper uses the hardware power-saving mechanism for
				// this (the card mostly sleeps): busy+PS-idle draws
				// 340 mA = 1.70 W, the pd it plugs into Eq. 2.
				dev.SetPowerSave(true)
			}
			for _, b := range blocks {
				worker.Add(b.work)
			}
			end := worker.Drain()
			k.At(end, func() {
				if spec.SleepDuringDecompress {
					dev.SetPowerSave(spec.PowerSave)
				}
				totalEnd = k.Now()
				completed = true
				meter.Stop()
			})
		})
	case ModeInterleaved:
		if spec.OnDemand {
			runOnDemand(k, link, worker, blocks, &transferEnd, &totalEnd, &completed, &stall, meter)
		} else {
			runInterleaved(k, link, worker, blocks, wireBytes, &transferEnd, &totalEnd, &completed, meter)
		}
	default:
		return Result{}, fmt.Errorf("pipeline: unknown mode %d", spec.Mode)
	}
	k.Run()

	if !completed {
		return Result{}, errors.New("pipeline: experiment did not complete")
	}
	res.TransferSeconds = transferEnd
	res.TotalSeconds = totalEnd
	res.DecompressSeconds = worker.BusyTotal()
	res.StallSeconds = stall
	reading, err := meter.Reading()
	if err != nil {
		return Result{}, err
	}
	res.MeteredEnergyJ = reading.EnergyJ
	res.ExactEnergyJ = reading.ExactJ
	res.AvgCurrentMA = reading.AvgMA
	res.MaxCurrentMA = reading.MaxMA
	if spec.CaptureTrace {
		res.Trace = dev.Trace()
	}
	return res, nil
}

type blockStats struct{ total, compressed int }

// buildBlocks compresses the payload and derives the per-block transfer
// schedule.
func buildBlocks(spec Spec) ([]wireBlock, int, blockStats, error) {
	raw := spec.Data
	if spec.Mode == ModePlain {
		return nil, len(raw), blockStats{}, nil
	}
	c, err := codec.New(spec.Scheme, spec.Level)
	if err != nil {
		return nil, 0, blockStats{}, err
	}
	decompCost := device.DecompressCost(spec.Scheme)
	proxyCost := device.ProxyCompressCost(spec.Scheme).ScaledForLevel(spec.Level)

	var blocks []wireBlock
	var stats blockStats

	if spec.Selective {
		enc, err := selective.Encode(raw, c, spec.Decider)
		if err != nil {
			return nil, 0, blockStats{}, err
		}
		st := enc.Stats()
		stats = blockStats{total: st.BlocksTotal, compressed: st.BlocksCompressed}
		for _, b := range enc.Blocks {
			wb := wireBlock{wireBytes: b.WireLen()}
			if b.Compressed {
				wb.work = decompCost.Seconds(len(b.Payload), b.RawLen, 1)
				wb.readyAt = proxyCost.Seconds(b.RawLen, len(b.Payload), 1)
			} else {
				wb.work = time.Duration(rawCopyCostPerMB * float64(b.RawLen) / 1e6 * float64(time.Second))
			}
			blocks = append(blocks, wb)
		}
		return finishSchedule(spec, blocks, st.WireBytes, stats)
	}

	comp, err := c.Compress(raw)
	if err != nil {
		return nil, 0, blockStats{}, err
	}
	// Partition into 128 KB raw blocks with proportional compressed
	// shares, the granularity at which zlib hands blocks to the
	// decompressor.
	n := len(raw)
	numBlocks := (n + blockRaw - 1) / blockRaw
	if numBlocks == 0 {
		numBlocks = 1
	}
	stats = blockStats{total: numBlocks, compressed: numBlocks}
	prevWire := 0
	for i := 0; i < numBlocks; i++ {
		rawStart := i * blockRaw
		rawEnd := rawStart + blockRaw
		if rawEnd > n {
			rawEnd = n
		}
		wireEnd := len(comp)
		if n > 0 {
			wireEnd = int(int64(len(comp)) * int64(rawEnd) / int64(n))
		}
		// One shared stream: fixed start-up costs are charged on the
		// first block only.
		wb := wireBlock{wireBytes: wireEnd - prevWire}
		if i == 0 {
			wb.work = decompCost.Seconds(wb.wireBytes, rawEnd-rawStart, 1)
			wb.readyAt = proxyCost.Seconds(rawEnd-rawStart, wb.wireBytes, 1)
		} else {
			wb.work = decompCost.MarginalSeconds(wb.wireBytes, rawEnd-rawStart, 1)
			wb.readyAt = proxyCost.MarginalSeconds(rawEnd-rawStart, wb.wireBytes, 1)
		}
		prevWire = wireEnd
		blocks = append(blocks, wb)
	}
	return finishSchedule(spec, blocks, len(comp), stats)
}

// finishSchedule converts per-block proxy compression costs into absolute
// server-side ready times (sequential compression pipeline) for on-demand
// runs, or clears them for precompressed runs.
func finishSchedule(spec Spec, blocks []wireBlock, wire int, stats blockStats) ([]wireBlock, int, blockStats, error) {
	if !spec.OnDemand {
		for i := range blocks {
			blocks[i].readyAt = 0
		}
		return blocks, wire, stats, nil
	}
	if spec.OnDemandWholeFile {
		// The whole file is compressed up front; the client waits for the
		// full compression, then streams without stalls.
		var total time.Duration
		for i := range blocks {
			total += blocks[i].readyAt
			blocks[i].readyAt = 0
		}
		if len(blocks) > 0 {
			blocks[0].readyAt = total
		}
		return blocks, wire, stats, nil
	}
	var clock time.Duration
	for i := range blocks {
		clock += blocks[i].readyAt // compression duration of this block
		blocks[i].readyAt = clock
	}
	return blocks, wire, stats, nil
}

// runInterleaved downloads the whole wire stream, queueing each block's
// decompression work as its last byte arrives; the worker consumes the
// packet gaps.
func runInterleaved(k *sim.Kernel, link *wlan.Link, worker *device.Worker,
	blocks []wireBlock, wireBytes int, transferEnd, totalEnd *time.Duration, completed *bool, meter *multimeter.Meter) {

	thresholds := make([]int, len(blocks))
	sum := 0
	for i, b := range blocks {
		sum += b.wireBytes
		thresholds[i] = sum
	}
	next := 0
	link.Download(wireBytes, func(total int) {
		for next < len(blocks) && total >= thresholds[next] {
			worker.Add(blocks[next].work)
			next++
		}
	}, worker, func() {
		*transferEnd = k.Now()
		for ; next < len(blocks); next++ { // rounding leftovers
			worker.Add(blocks[next].work)
		}
		end := worker.Drain()
		k.At(end, func() {
			*totalEnd = k.Now()
			*completed = true
			meter.Stop()
		})
	})
}

// runOnDemand chains per-block transfers, stalling (radio idle, worker
// granted the window) when the server's compression pipeline is behind.
func runOnDemand(k *sim.Kernel, link *wlan.Link, worker *device.Worker,
	blocks []wireBlock, transferEnd, totalEnd *time.Duration, completed *bool, stall *time.Duration, meter *multimeter.Meter) {

	var sendBlock func(i int)
	finish := func() {
		*transferEnd = k.Now()
		end := worker.Drain()
		k.At(end, func() {
			*totalEnd = k.Now()
			*completed = true
			meter.Stop()
		})
	}
	sendBlock = func(i int) {
		if i >= len(blocks) {
			finish()
			return
		}
		b := blocks[i]
		start := func() {
			link.Transfer(b.wireBytes, nil, worker, func() {
				worker.Add(b.work)
				sendBlock(i + 1)
			})
		}
		if wait := b.readyAt - k.Now(); wait > 0 {
			*stall += wait
			worker.Window(wait)
			k.Schedule(wait, start)
			return
		}
		start()
	}
	// Connection setup, then the block chain.
	k.Schedule(wlan.SetupTime, func() { sendBlock(0) })
}
