// Link-state parameter adaptation and the calib.Fit → energy.Params
// adapter: the two input channels that turn the static Table 1 model
// into the live model DynamicDecider decides against.
package decider

import (
	"fmt"
	"math"
	"os"

	"repro/internal/calib"
	"repro/internal/energy"
	"repro/internal/wlan"
)

// linkAnchor pins the rate-dependent coefficients at one of the measured
// 802.11b operating points (internal/wlan's Table-1-derived rate set).
// Between anchors the decider interpolates linearly; beyond them it
// clamps — extrapolating idle fractions past the measured range would
// leave the model's validity envelope.
type linkAnchor struct {
	rateMBps float64 // effective application-layer rate
	idleFrac float64 // fraction of download time the radio idles
	m        float64 // receive-copy energy, J/MB
	pi       float64 // idle power, W
	pd       float64 // busy (decompress) power, W
}

// linkAnchors is ordered by rate: 1, 2, 5.5, 11 Mb/s nominal. The 1 and
// 2 Mb/s points share the paper's Section 4.2 coefficient set (the radio
// receives into deeper buffers and idles hotter); 5.5 and 11 Mb/s share
// the Table 1 set.
var linkAnchors = []linkAnchor{
	{rateMBps: 0.10, idleFrac: 0.87, m: 2.556, pi: 2.15, pd: 3.10},
	{rateMBps: 0.18, idleFrac: 0.815, m: 2.556, pi: 2.15, pd: 3.10},
	{rateMBps: 0.40, idleFrac: 0.55, m: 2.486, pi: 1.55, pd: 2.85},
	{rateMBps: 0.60, idleFrac: 0.40, m: 2.486, pi: 1.55, pd: 2.85},
}

// lerpAnchor interpolates the anchor table at rate, clamping outside the
// measured range.
func lerpAnchor(rate float64) linkAnchor {
	if rate <= linkAnchors[0].rateMBps {
		a := linkAnchors[0]
		a.rateMBps = rate
		return a
	}
	last := linkAnchors[len(linkAnchors)-1]
	if rate >= last.rateMBps {
		last.rateMBps = rate
		return last
	}
	for i := 1; i < len(linkAnchors); i++ {
		lo, hi := linkAnchors[i-1], linkAnchors[i]
		if rate > hi.rateMBps {
			continue
		}
		t := (rate - lo.rateMBps) / (hi.rateMBps - lo.rateMBps)
		return linkAnchor{
			rateMBps: rate,
			idleFrac: lo.idleFrac + t*(hi.idleFrac-lo.idleFrac),
			m:        lo.m + t*(hi.m-lo.m),
			pi:       lo.pi + t*(hi.pi-lo.pi),
			pd:       lo.pd + t*(hi.pd-lo.pd),
		}
	}
	return last
}

// ParamsForLink adapts base to a live link state. The rate-dependent
// coefficients (rate, idle fraction, idle/busy power) come from the
// measured anchor table; the calibration-bearing coefficients (td's
// a/b/c, the stream constant cs) stay base's, and the receive-copy m is
// scaled so a calibrated offset at base's own rate carries across rates
// proportionally (at the static Table 1 values the scaling is exactly 1,
// so ParamsForLink(Params11Mbps(), 0.6, false) == Params11Mbps()).
//
// Power-save mode costs wlan.PowerSavePenalty of the effective rate and
// drops the idle radio draw to the sleep-mode current (the radio dozes
// between beacons; receive still needs it awake, so pd is unchanged).
//
// The function is total: non-finite or non-positive rates read as base's
// rate, and the result is always finite with a strictly positive rate —
// FuzzDynamicDecide leans on this.
func ParamsForLink(base energy.Params, rateMBps float64, powerSave bool) energy.Params {
	rate := rateMBps
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		rate = base.RateMBps
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		rate = energy.Params11Mbps().RateMBps
	}
	// Clamp to a physically meaningful band: 10 kB/s (far below 1 Mb/s
	// nominal) up to 125 MB/s (gigabit); the model's closed forms stay
	// finite and monotone inside it.
	rate = math.Min(math.Max(rate, 0.01), 125)
	if powerSave {
		rate *= 1 - wlan.PowerSavePenalty
	}

	a := lerpAnchor(rate)
	p := base
	p.RateMBps = rate
	p.IdleFrac = a.idleFrac

	// Carry a calibrated m across rates proportionally to the anchor
	// curve; a base already at an anchor value passes through unchanged.
	baseAnchor := lerpAnchor(clampRate(base.RateMBps))
	if baseAnchor.m > 0 && base.M > 0 {
		p.M = a.m * (base.M / baseAnchor.m)
	} else {
		p.M = a.m
	}
	p.Pi = a.pi
	p.Pd = a.pd
	if powerSave {
		// Idle gaps are spent dozing at the sleep current.
		if base.PiSleep > 0 {
			p.Pi = base.PiSleep
		}
	}
	return p
}

func clampRate(r float64) float64 {
	if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return energy.Params11Mbps().RateMBps
	}
	return math.Min(math.Max(r, 0.01), 125)
}

// ParamsFromFit overlays a fleet calibration on its reference parameter
// set: the fitted td(s, sc) coefficients replace Table 1's when the td
// regression ran, and the fitted E(s) line replaces the receive-copy m
// and stream constant cs when the energy regression ran. The bool
// reports whether any fitted coefficient was applied — false means the
// caller should fall back to the static set (the fallback order README
// documents: calib → static).
func ParamsFromFit(f calib.Fit) (energy.Params, bool) {
	p := f.Ref
	if p.RateMBps <= 0 {
		p = energy.Params11Mbps()
	}
	applied := false
	if f.TdN > 0 && finiteAll(f.TdA, f.TdB, f.TdC) {
		p.TdA, p.TdB, p.TdC = f.TdA, f.TdB, f.TdC
		applied = true
	}
	if f.EN > 0 && finiteAll(f.M, f.EIntercept) && f.M > 0 {
		p.M = f.M
		p.Cs = f.EIntercept
		applied = true
	}
	return p, applied
}

func finiteAll(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// LoadCalibration reads a wide-event JSONL stream (the telemetry export
// format), calibrates it, and returns the fit for the requested device
// class ("" means the first fitted device). It is the loader behind
// `proxyd -calib FILE` and the property suite's use of the committed
// soak-seed1 stream.
func LoadCalibration(path, device string) (calib.Fit, error) {
	f, err := os.Open(path)
	if err != nil {
		return calib.Fit{}, err
	}
	defer f.Close()
	fits, err := calib.FromJSONL(f)
	if err != nil {
		return calib.Fit{}, fmt.Errorf("calibrating %s: %w", path, err)
	}
	if len(fits) == 0 {
		return calib.Fit{}, fmt.Errorf("calibrating %s: no device had enough samples", path)
	}
	if device == "" {
		return fits[0], nil
	}
	for _, fit := range fits {
		if fit.Device == device {
			return fit, nil
		}
	}
	return calib.Fit{}, fmt.Errorf("calibrating %s: no fit for device %q", path, device)
}
