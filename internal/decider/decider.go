// Package decider implements the dynamic, queue-aware compression
// decision the ROADMAP's open decider item calls for: instead of the
// paper's static Equation 6 test against hardcoded Table 1 constants, a
// DynamicDecider re-evaluates the energy model per block against live
// state — the current effective link rate and power-save flag, the
// server's compression-queue depth, and a per-client deadline class —
// using calibrated coefficients when a fleet calibration (internal/calib)
// is loaded and the static Table 1 set otherwise.
//
// The decision rule is chosen so two properties hold by construction on
// every block, for every link state (the property suite sweeps them):
//
//  1. Dominance: the dynamic choice never costs more modeled joules than
//     the static Eq. 6 choice, because the static choice is always in
//     the candidate set and both are scored with the same live model.
//  2. Deadline safety: the dynamic choice never violates a deadline the
//     static choice met. The deadline for a block is slack·rawT (raw
//     transfer time times the class's slack factor, slack ≥ 1), so the
//     raw option is always deadline-feasible; the compressed option is
//     admitted when it meets the deadline — or unconditionally when the
//     static choice itself busts the deadline, in which case energy wins
//     (property 2 is vacuous there and property 1 must still hold).
//
// The per-client energy budget is advisory telemetry only: letting it
// flip a decision would break dominance, so it surfaces as
// Decision.OverBudget and a decider_over_budget_total counter, never as
// a different choice.
package decider

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/selective"
)

// Class is a deadline class: how much latency slack, relative to sending
// the block uncompressed, a client grants the decider to spend on
// compression wins. The zero value imposes no deadline.
type Class uint8

const (
	// ClassNone imposes no latency constraint: pure energy minimization.
	ClassNone Class = 0
	// ClassRelaxed allows 4x the raw transfer time (background syncs).
	ClassRelaxed Class = 1
	// ClassStandard allows 1.5x the raw transfer time (interactive).
	ClassStandard Class = 2
	// ClassStrict allows exactly the raw transfer time: compression is
	// admitted only when it is latency-free relative to sending the
	// block uncompressed (streaming-adjacent traffic).
	ClassStrict Class = 3
)

// Slack returns the class's deadline as a multiple of the raw transfer
// time; +Inf means unconstrained. Unknown classes read as ClassNone so a
// hostile or garbled wire byte can never panic or tighten a deadline.
func (c Class) Slack() float64 {
	switch c {
	case ClassRelaxed:
		return 4.0
	case ClassStandard:
		return 1.5
	case ClassStrict:
		return 1.0
	default:
		return math.Inf(1)
	}
}

// String names the class as the scenario grammar spells it.
func (c Class) String() string {
	switch c {
	case ClassRelaxed:
		return "relaxed"
	case ClassStandard:
		return "standard"
	case ClassStrict:
		return "strict"
	default:
		return "none"
	}
}

// ParseClass maps a grammar token to its class.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "", "none":
		return ClassNone, true
	case "relaxed":
		return ClassRelaxed, true
	case "standard":
		return ClassStandard, true
	case "strict":
		return ClassStrict, true
	}
	return ClassNone, false
}

// ClassFromByte folds an arbitrary wire byte into a valid class; unknown
// values read as ClassNone (no constraint) rather than an error, so the
// request path stays total.
func ClassFromByte(b byte) Class {
	if c := Class(b); c <= ClassStrict {
		return c
	}
	return ClassNone
}

// BlockContext is everything one block decision may observe.
type BlockContext struct {
	// RawLen and CompLen are the block's uncompressed and compressed
	// sizes in bytes. Non-positive values read as zero.
	RawLen, CompLen int
	// RateMBps is the current effective link rate in MB/s; zero, negative
	// or non-finite values fall back to the decider's base rate.
	RateMBps float64
	// PowerSave reports 802.11 power-save mode: the effective rate drops
	// by wlan.PowerSavePenalty and the idle radio draw falls to the
	// sleep-mode current.
	PowerSave bool
	// QueueDepth is the server compression queue length (builds waiting
	// for or holding a worker slot); each queued build delays the
	// compressed option and burns idle energy while the client waits.
	QueueDepth int
	// Class is the deadline class constraining this block.
	Class Class
	// BudgetJ and SpentJ are the client's advisory energy budget and the
	// joules it has already spent; they flag Decision.OverBudget and
	// never alter the choice.
	BudgetJ, SpentJ float64
}

// Decision is the outcome of one block decision, with the modeled
// numbers that produced it (the property suite and the differential soak
// oracle both re-score streams with these exact quantities).
type Decision struct {
	// Compress is the choice.
	Compress bool
	// EnergyJ and LatencyS are the modeled joules and seconds of the
	// chosen option; AltEnergyJ is the rejected option's joules.
	EnergyJ, LatencyS, AltEnergyJ float64
	// DeadlineS is the applied deadline in seconds (+Inf when the class
	// imposes none).
	DeadlineS float64
	// Constrained reports that the deadline excluded the pure energy
	// minimum (the decider wanted to compress but could not).
	Constrained bool
	// StaticCompress is the static Eq. 6 choice for the same block — the
	// baseline both properties are stated against.
	StaticCompress bool
	// OverBudget flags that the chosen option pushes the client past its
	// advisory energy budget.
	OverBudget bool
}

// Config assembles a DynamicDecider.
type Config struct {
	// Base is the parameter set decisions start from: a calibrated fit
	// via ParamsFromFit, or the static Table 1 set. The zero value reads
	// as energy.Params11Mbps().
	Base energy.Params
	// Calibrated records whether Base came from a fleet calibration; it
	// is part of the fingerprint so calibrated and static artifacts
	// never alias.
	Calibrated bool
	// Link reports the current effective link rate (MB/s) and power-save
	// flag; nil pins decisions to Base's rate with power-save off.
	Link func() (rateMBps float64, powerSave bool)
	// Queue reports the server compression-queue depth; nil reads zero.
	// The proxy binds its worker-pool gauge here (BindQueueDepth) unless
	// the constructor installed an explicit hook — the harness pins a
	// zero hook so canonical traces stay schedule-independent.
	Queue func() int
	// Class is the default deadline class for blocks whose context does
	// not carry one.
	Class Class
	// BudgetJ is the default advisory energy budget (0 = unlimited).
	BudgetJ float64
	// ServerMBps is the server's compression service rate used to model
	// queue wait; zero reads as the measured ~16 MB/s pooled-encoder
	// rate.
	ServerMBps float64
	// Metrics, when set, binds the decider_* counters immediately.
	Metrics *obs.Registry
}

// defaultServerMBps is the pooled gzip encoder's measured service rate
// (17.6–18.3 MB/s on the reference runner; see ROADMAP "compression
// plane"), rounded down so queue-wait estimates err pessimistic.
const defaultServerMBps = 16.0

// DynamicDecider chooses compress-or-raw per block to minimize modeled
// joules subject to the deadline class, never doing worse than the
// static Eq. 6 decider under the same model. It implements
// selective.Decider, so it drops into every selective-mode encode path.
type DynamicDecider struct {
	base       energy.Params
	calibrated bool
	link       func() (float64, bool)
	queue      func() int
	class      Class
	budgetJ    float64
	serverMBps float64

	m *counters

	// thresholds caches MinSizeBytes bisections per observed link state.
	mu         sync.Mutex
	thresholds map[thresholdKey]int
}

type thresholdKey struct {
	rate float64
	ps   bool
}

// counters is the decider_* metrics surface, bound at most once.
type counters struct {
	decisions   *obs.Counter
	compress    *obs.Counter
	raw         *obs.Counter
	constrained *obs.Counter
	overBudget  *obs.Counter
}

// New builds a DynamicDecider. The zero Config is valid: static Table 1
// constants, link pinned to 11 Mb/s, empty queue, no deadline.
func New(cfg Config) *DynamicDecider {
	base := cfg.Base
	if base.RateMBps <= 0 || math.IsNaN(base.RateMBps) || math.IsInf(base.RateMBps, 0) {
		base = energy.Params11Mbps()
	}
	srv := cfg.ServerMBps
	if srv <= 0 || math.IsNaN(srv) || math.IsInf(srv, 0) {
		srv = defaultServerMBps
	}
	d := &DynamicDecider{
		base:       base,
		calibrated: cfg.Calibrated,
		link:       cfg.Link,
		queue:      cfg.Queue,
		class:      cfg.Class,
		budgetJ:    sanitizeBudget(cfg.BudgetJ),
		serverMBps: srv,
		thresholds: make(map[thresholdKey]int),
	}
	if cfg.Metrics != nil {
		d.BindMetrics(cfg.Metrics)
	}
	return d
}

func sanitizeBudget(b float64) float64 {
	if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return 0
	}
	return b
}

// BindMetrics registers and attaches the decider_* counters. The proxy
// calls this at server construction; the obs registry is idempotent per
// name, so rebinding (or two deciders sharing a registry) is safe.
func (d *DynamicDecider) BindMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.m = &counters{
		decisions:   reg.Counter("decider_decisions_total", "block decisions made by the dynamic decider"),
		compress:    reg.Counter("decider_compress_total", "blocks the dynamic decider chose to compress"),
		raw:         reg.Counter("decider_raw_total", "blocks the dynamic decider chose to send raw"),
		constrained: reg.Counter("decider_deadline_constrained_total", "decisions where the deadline excluded the energy minimum"),
		overBudget:  reg.Counter("decider_over_budget_total", "decisions that pushed a client past its advisory energy budget"),
	}
}

// BindQueueDepth installs the live queue-depth source unless the
// constructor already pinned one (the harness pins zero for trace
// determinism; the proxy binds its worker-pool gauge through here).
func (d *DynamicDecider) BindQueueDepth(fn func() int) {
	if d.queue == nil {
		d.queue = fn
	}
}

// liveLink reads the link hook, sanitized.
func (d *DynamicDecider) liveLink() (float64, bool) {
	if d.link == nil {
		return d.base.RateMBps, false
	}
	rate, ps := d.link()
	return rate, ps
}

// liveQueue reads the queue hook, sanitized.
func (d *DynamicDecider) liveQueue() int {
	if d.queue == nil {
		return 0
	}
	if q := d.queue(); q > 0 {
		return q
	}
	return 0
}

// params returns the model adapted to the context's link state.
func (d *DynamicDecider) params(ctx BlockContext) energy.Params {
	return ParamsForLink(d.base, ctx.RateMBps, ctx.PowerSave)
}

func mb(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / 1e6
}

// Evaluate scores both options for a block under the live model: modeled
// joules and seconds for sending it raw and for sending it compressed
// (the latter including queue wait — depth × block-size/service-rate of
// delay at idle draw). It is exported so the property suite and the
// differential soak oracle score streams with exactly the decider's own
// objective.
func (d *DynamicDecider) Evaluate(ctx BlockContext) (rawJ, compJ, rawT, compT float64) {
	p := d.params(ctx)
	s, sc := mb(ctx.RawLen), mb(ctx.CompLen)
	rawJ = p.DownloadEnergy(s)
	rawT = p.DownloadTime(s)
	compJ = p.InterleavedEnergy(s, sc)
	compT = p.InterleavedTime(s, sc)
	if q := ctx.QueueDepth; q > 0 && s > 0 {
		wait := float64(q) * s / d.serverMBps
		compT += wait
		compJ += wait * p.Pi
	}
	return rawJ, compJ, rawT, compT
}

// Decide makes the block decision. It is total: any BlockContext —
// extreme or non-finite rates, empty blocks, unknown classes — yields a
// finite, deterministic Decision (FuzzDynamicDecide gates this).
func (d *DynamicDecider) Decide(ctx BlockContext) Decision {
	class := ctx.Class
	if class > ClassStrict {
		class = ClassNone
	}
	rawJ, compJ, rawT, compT := d.Evaluate(ctx)

	deadline := math.Inf(1)
	if slack := class.Slack(); !math.IsInf(slack, 1) {
		deadline = slack * rawT
	}

	// The static Eq. 6 baseline, including its 3900-byte floor: below the
	// paper's file threshold the static decider never attempts
	// compression (files that small are single-block, so block length
	// equals file length and the floor reconstructs exactly).
	staticCompress := ctx.RawLen >= energy.PaperFileThresholdBytes &&
		energy.PaperShouldCompress(ctx.RawLen, ctx.CompLen)

	// Candidate admission. Raw is always admitted (rawT ≤ slack·rawT).
	// Compressed is admitted when it meets the deadline; when the static
	// choice itself misses the deadline (static compressed and compT > D)
	// the deadline is unenforceable against the baseline, so both options
	// stay admitted and energy decides — that keeps dominance
	// unconditional while deadline safety holds wherever static met it.
	compOK := staticCompress || compT <= deadline
	compress := compOK && compJ < rawJ
	constrained := !compOK && compJ < rawJ

	dec := Decision{
		Compress:       compress,
		DeadlineS:      deadline,
		Constrained:    constrained,
		StaticCompress: staticCompress,
	}
	if compress {
		dec.EnergyJ, dec.LatencyS, dec.AltEnergyJ = compJ, compT, rawJ
	} else {
		dec.EnergyJ, dec.LatencyS, dec.AltEnergyJ = rawJ, rawT, compJ
	}
	if budget := sanitizeBudget(ctx.BudgetJ); budget > 0 {
		spent := ctx.SpentJ
		if math.IsNaN(spent) || spent < 0 {
			spent = 0
		}
		dec.OverBudget = spent+dec.EnergyJ > budget
	}
	if m := d.m; m != nil {
		m.decisions.Inc()
		if compress {
			m.compress.Inc()
		} else {
			m.raw.Inc()
		}
		if constrained {
			m.constrained.Inc()
		}
		if dec.OverBudget {
			m.overBudget.Inc()
		}
	}
	return dec
}

// context assembles the live BlockContext the selective.Decider surface
// decides against.
func (d *DynamicDecider) context(rawLen, compLen int) BlockContext {
	rate, ps := d.liveLink()
	return BlockContext{
		RawLen:    rawLen,
		CompLen:   compLen,
		RateMBps:  rate,
		PowerSave: ps,
		QueueDepth: d.liveQueue(),
		Class:     d.class,
		BudgetJ:   d.budgetJ,
	}
}

// ShouldCompress implements selective.Decider against live state.
func (d *DynamicDecider) ShouldCompress(rawBytes, compBytes int) bool {
	return d.Decide(d.context(rawBytes, compBytes)).Compress
}

// MinSizeBytes implements selective.Decider: blocks below this size are
// sent raw without attempting compression. It is the smaller of the
// paper's 3900-byte floor and the live model's can-never-help threshold,
// so the dynamic decider attempts every block the static decider
// attempts (a larger floor could skip a block the static decider
// compressed, breaking dominance) plus the small blocks that only pay
// off at the current link rate.
func (d *DynamicDecider) MinSizeBytes() int {
	rate, ps := d.liveLink()
	key := thresholdKey{rate: rate, ps: ps}
	d.mu.Lock()
	if v, ok := d.thresholds[key]; ok {
		d.mu.Unlock()
		return v
	}
	d.mu.Unlock()

	p := ParamsForLink(d.base, rate, ps)
	min := energy.PaperFileThresholdBytes
	if t := p.ThresholdSizeBytes(); t > 0 && t < float64(min) {
		min = int(t)
	}
	if min < 1 {
		min = 1
	}

	d.mu.Lock()
	if len(d.thresholds) > 64 {
		// The link hook quantizes to a handful of rate points in
		// practice; a runaway hook must not grow the cache unboundedly.
		d.thresholds = make(map[thresholdKey]int)
	}
	d.thresholds[key] = min
	d.mu.Unlock()
	return min
}

// WithClass returns a derived decider sharing this one's model, hooks
// and counters, but deciding under the given deadline class and advisory
// budget. Its fingerprint folds the class in, so artifacts built under
// different deadline classes never alias in the proxy cache.
func (d *DynamicDecider) WithClass(class Class, budgetJ float64) *DynamicDecider {
	if class > ClassStrict {
		class = ClassNone
	}
	out := &DynamicDecider{
		base:       d.base,
		calibrated: d.calibrated,
		link:       d.link,
		queue:      d.queue,
		class:      class,
		budgetJ:    sanitizeBudget(budgetJ),
		serverMBps: d.serverMBps,
		m:          d.m,
		thresholds: make(map[thresholdKey]int),
	}
	return out
}

// ForRequest is the proxy's per-request derivation hook (matched by
// interface assertion, so internal/proxy needs no import of this
// package): a request carrying a deadline class or budget decides under
// them. The budget is advisory and excluded from the fingerprint — only
// the class changes artifacts.
func (d *DynamicDecider) ForRequest(class uint8, budgetMilliJ uint32) (selective.Decider, string) {
	dd := d.WithClass(ClassFromByte(class), float64(budgetMilliJ)/1000)
	return dd, dd.Fingerprint()
}

// Fingerprint identifies the decision policy for artifact-cache keys: a
// stable rendering of the model coefficients, calibration provenance,
// queue service rate and deadline class. Live hooks and the advisory
// budget are deliberately excluded — they do not change which artifact a
// given (content, class) pair maps to under a fixed link state, and
// including them would either break determinism (function pointers) or
// shatter the cache (per-client budgets).
func (d *DynamicDecider) Fingerprint() string {
	p := d.base
	return fmt.Sprintf(
		"dynamic/v1 rate=%g idle=%g m=%g cs=%g pi=%g pd=%g pis=%g pds=%g tda=%g tdb=%g tdc=%g buf=%g srv=%g calib=%t class=%s",
		p.RateMBps, p.IdleFrac, p.M, p.Cs, p.Pi, p.Pd, p.PiSleep, p.PdSleep,
		p.TdA, p.TdB, p.TdC, p.BufMB, d.serverMBps, d.calibrated, d.class)
}

// ParseFingerprint inverts Fingerprint: it reconstructs the policy
// configuration a fingerprint pins (hooks and budget are not part of a
// fingerprint and come back nil/zero). A decider rebuilt from the parse
// fingerprints identically — the fuzz target gates this round trip.
func ParseFingerprint(s string) (Config, bool) {
	rest, ok := strings.CutPrefix(s, "dynamic/v1 ")
	if !ok {
		return Config{}, false
	}
	var cfg Config
	p := &cfg.Base
	var classTok string
	fields := strings.Fields(rest)
	if len(fields) != 15 {
		return Config{}, false
	}
	targets := []struct {
		key string
		f   *float64
	}{
		{"rate", &p.RateMBps}, {"idle", &p.IdleFrac}, {"m", &p.M},
		{"cs", &p.Cs}, {"pi", &p.Pi}, {"pd", &p.Pd},
		{"pis", &p.PiSleep}, {"pds", &p.PdSleep},
		{"tda", &p.TdA}, {"tdb", &p.TdB}, {"tdc", &p.TdC},
		{"buf", &p.BufMB}, {"srv", &cfg.ServerMBps},
	}
	for i, t := range targets {
		if _, err := fmt.Sscanf(fields[i], t.key+"=%g", t.f); err != nil {
			return Config{}, false
		}
	}
	if _, err := fmt.Sscanf(fields[13], "calib=%t", &cfg.Calibrated); err != nil {
		return Config{}, false
	}
	if _, err := fmt.Sscanf(fields[14], "class=%s", &classTok); err != nil {
		return Config{}, false
	}
	class, ok := ParseClass(classTok)
	if !ok {
		return Config{}, false
	}
	cfg.Class = class
	return cfg, true
}
