package decider

import (
	"math"
	"testing"

	"repro/internal/energy"
)

// FuzzDynamicDecide throws arbitrary BlockContext values — negative and
// overflowing sizes, zero/NaN/Inf rates, hostile queue depths, unknown
// class bytes, garbage budgets — at the decider and requires totality:
// no panic, a finite deterministic Decision, dominance over the static
// baseline under the same scoring, and a decision that round-trips
// through the decider fingerprint (rebuilding the decider from its
// parsed fingerprint reproduces both the fingerprint and the decision).
func FuzzDynamicDecide(f *testing.F) {
	f.Add(128000, 50000, 0.6, false, 0, byte(0), 0.0, 0.0)
	f.Add(3899, 100, 0.18, true, 4, byte(1), 1.5, 0.2)
	f.Add(3900, 3900, 0.10, false, 32, byte(2), 0.0, 0.0)
	f.Add(0, 0, 0.0, false, 0, byte(3), math.Inf(1), math.NaN())
	f.Add(-1, -7, math.NaN(), true, -5, byte(200), -3.0, 1e300)
	f.Add(1<<40, 1<<39, math.Inf(1), false, 1<<30, byte(255), 1e-9, 0.0)
	f.Add(1, 1<<50, -1e308, true, 0, byte(4), 0.5, 0.5)
	f.Fuzz(func(t *testing.T, rawLen, compLen int, rate float64, ps bool, queue int, classB byte, budget, spent float64) {
		d := New(Config{Class: ClassFromByte(classB)})
		ctx := BlockContext{
			RawLen: rawLen, CompLen: compLen,
			RateMBps: rate, PowerSave: ps,
			QueueDepth: queue, Class: ClassFromByte(classB),
			BudgetJ: budget, SpentJ: spent,
		}
		dec := d.Decide(ctx)

		// Totality: every modeled number is finite (the deadline alone
		// may be +Inf, for the unconstrained class), never NaN.
		for name, v := range map[string]float64{
			"EnergyJ": dec.EnergyJ, "AltEnergyJ": dec.AltEnergyJ, "LatencyS": dec.LatencyS,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s = %v for ctx %+v", name, v, ctx)
			}
		}
		if math.IsNaN(dec.DeadlineS) {
			t.Fatalf("DeadlineS is NaN for ctx %+v", ctx)
		}

		// Determinism: the same context decides the same way twice.
		if again := d.Decide(ctx); again != dec {
			t.Fatalf("Decide not deterministic:\n first %+v\n again %+v", dec, again)
		}

		// Dominance against the static baseline under the same scoring.
		rawJ, compJ, _, _ := d.Evaluate(ctx)
		statJ := rawJ
		if dec.StaticCompress {
			statJ = compJ
		}
		if dec.EnergyJ > statJ*(1+1e-12)+1e-300 {
			t.Fatalf("dynamic %.9g J > static %.9g J for ctx %+v", dec.EnergyJ, statJ, ctx)
		}

		// The selective.Decider surface is total too.
		d.ShouldCompress(rawLen, compLen)
		if min := d.MinSizeBytes(); min < 1 || min > energy.PaperFileThresholdBytes {
			t.Fatalf("MinSizeBytes %d outside [1, %d]", min, energy.PaperFileThresholdBytes)
		}

		// Fingerprint round trip: parse → rebuild → identical fingerprint
		// and identical decision for this context.
		fp := d.Fingerprint()
		if fp2 := d.Fingerprint(); fp2 != fp {
			t.Fatalf("fingerprint unstable: %q vs %q", fp, fp2)
		}
		cfg, ok := ParseFingerprint(fp)
		if !ok {
			t.Fatalf("own fingerprint does not parse: %q", fp)
		}
		rebuilt := New(cfg)
		if got := rebuilt.Fingerprint(); got != fp {
			t.Fatalf("fingerprint round trip drifted:\n in  %q\n out %q", fp, got)
		}
		if redec := rebuilt.Decide(ctx); redec != dec {
			t.Fatalf("rebuilt decider decides differently:\n orig    %+v\n rebuilt %+v", dec, redec)
		}
	})
}
