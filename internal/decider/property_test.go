package decider

// The property suite behind the ISSUE's acceptance gate: over swept link
// rates (11/5.5/2/1 Mb/s), power-save on and off, every Table 3 workload
// class, and seeded block streams at two pinned seeds, the dynamic
// decider consuming the committed fleet calibration is
//
//  1. never worse than the static Eq. 6 decider in modeled total joules
//     (per block and per stream), and
//  2. never violates a deadline the static decider met,
//
// with both deciders scored by the same live model (Evaluate) — the same
// scoring the differential soak oracle applies to whole runs.

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/workload"
)

// sweptRates are the paper's four 802.11b operating points as effective
// application-layer MB/s (internal/wlan's measured set).
var sweptRates = []struct {
	name string
	mbps float64
}{
	{"11Mbps", 0.60},
	{"5.5Mbps", 0.40},
	{"2Mbps", 0.18},
	{"1Mbps", 0.10},
}

// table3Classes is every content class of Table 3.
var table3Classes = []workload.Class{
	workload.ClassXML, workload.ClassHTML, workload.ClassWebLog,
	workload.ClassTarHTML, workload.ClassSource, workload.ClassPostscript,
	workload.ClassPDF, workload.ClassBinary, workload.ClassClassFile,
	workload.ClassAudio, workload.ClassGraphic, workload.ClassMedia,
	workload.ClassRandom, workload.ClassMail, workload.ClassScript,
}

var deadlineClasses = []Class{ClassNone, ClassRelaxed, ClassStandard, ClassStrict}

// propBlock is one seeded block with its measured compressed size.
type propBlock struct {
	rawLen, compLen int
}

// blockStream generates a seeded block stream for one workload class and
// gzip-compresses each block once; the sweep over link states and
// deadline classes below is then pure model arithmetic. Sizes straddle
// every decision boundary: the 3900-byte file threshold, the selective
// block size, and the in-between.
var streamCache = struct {
	sync.Mutex
	m map[[2]int64][]propBlock
}{m: map[[2]int64][]propBlock{}}

func blockStream(t *testing.T, class workload.Class, seed int64) []propBlock {
	t.Helper()
	key := [2]int64{int64(class), seed}
	streamCache.Lock()
	cached, ok := streamCache.m[key]
	streamCache.Unlock()
	if ok {
		return cached
	}
	c, err := codec.New(codec.Gzip, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed ^ int64(class)<<32))
	sizes := []int{1, 2048, 3899, 3900, 4096, 20000, 127999, 128000}
	for i := 0; i < 4; i++ {
		sizes = append(sizes, 1+rng.Intn(200000))
	}
	blocks := make([]propBlock, 0, len(sizes))
	for _, size := range sizes {
		data := workload.Generate(class, size, uint64(seed)*1000003+uint64(size))
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, propBlock{rawLen: len(data), compLen: len(comp)})
	}
	streamCache.Lock()
	streamCache.m[key] = blocks
	streamCache.Unlock()
	return blocks
}

// calibratedBase loads the committed soak-seed1 calibration once per
// test binary; every swept decider starts from its fitted coefficients.
var calibratedBase = struct {
	once sync.Once
	p    energy.Params
	err  error
}{}

// calibratedDecider builds the decider under test: coefficients from the
// committed fleet calibration, link pinned to the swept state.
func calibratedDecider(t *testing.T, rate float64, powerSave bool, class Class) *DynamicDecider {
	t.Helper()
	calibratedBase.once.Do(func() {
		fit, err := LoadCalibration(goldenEvents, "")
		if err != nil {
			calibratedBase.err = err
			return
		}
		p, ok := ParamsFromFit(fit)
		if !ok {
			calibratedBase.err = errNoFit
			return
		}
		calibratedBase.p = p
	})
	if calibratedBase.err != nil {
		t.Fatalf("loading committed calibration: %v", calibratedBase.err)
	}
	return New(Config{
		Base:       calibratedBase.p,
		Calibrated: true,
		Class:      class,
		Link:       func() (float64, bool) { return rate, powerSave },
	})
}

var errNoFit = errors.New("committed calibration supplied no fitted coefficients")

// staticChoice reconstructs the static Eq. 6 decider's block decision,
// including its 3900-byte file floor (files below it are single-block,
// so block length equals file length).
func staticChoice(b propBlock) bool {
	return b.rawLen >= energy.PaperFileThresholdBytes &&
		energy.PaperShouldCompress(b.rawLen, b.compLen)
}

// TestDynamicNeverWorseThanStatic is property 1: on every swept
// combination and both pinned seeds, the dynamic decider's modeled
// joules never exceed the static Eq. 6 decider's, block-wise and summed
// over the stream, under the decider's own live scoring.
func TestDynamicNeverWorseThanStatic(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		for _, wc := range table3Classes {
			blocks := blockStream(t, wc, seed)
			for _, rate := range sweptRates {
				for _, ps := range []bool{false, true} {
					for _, dl := range deadlineClasses {
						for _, queue := range []int{0, 4, 32} {
							d := calibratedDecider(t, rate.mbps, ps, dl)
							var dynSum, statSum float64
							for _, b := range blocks {
								ctx := BlockContext{
									RawLen: b.rawLen, CompLen: b.compLen,
									RateMBps: rate.mbps, PowerSave: ps,
									QueueDepth: queue, Class: dl,
								}
								dec := d.Decide(ctx)
								rawJ, compJ, _, _ := d.Evaluate(ctx)
								statJ := rawJ
								if staticChoice(b) {
									statJ = compJ
								}
								if dec.StaticCompress != staticChoice(b) {
									t.Fatalf("seed=%d %s %s ps=%v: static baseline drifted on block %+v",
										seed, wc, rate.name, ps, b)
								}
								if dec.EnergyJ > statJ*(1+1e-12) {
									t.Fatalf("seed=%d %s %s ps=%v dl=%s q=%d: dynamic %.9g J > static %.9g J on block %+v",
										seed, wc, rate.name, ps, dl, queue, dec.EnergyJ, statJ, b)
								}
								dynSum += dec.EnergyJ
								statSum += statJ
							}
							if dynSum > statSum*(1+1e-12) {
								t.Fatalf("seed=%d %s %s ps=%v dl=%s q=%d: stream dynamic %.9g J > static %.9g J",
									seed, wc, rate.name, ps, dl, queue, dynSum, statSum)
							}
						}
					}
				}
			}
		}
	}
}

// TestDynamicNeverViolatesDeadlineStaticMet is property 2: wherever the
// static choice met the deadline, the dynamic choice meets it too.
func TestDynamicNeverViolatesDeadlineStaticMet(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		for _, wc := range table3Classes {
			blocks := blockStream(t, wc, seed)
			for _, rate := range sweptRates {
				for _, ps := range []bool{false, true} {
					for _, dl := range deadlineClasses {
						for _, queue := range []int{0, 4, 32} {
							d := calibratedDecider(t, rate.mbps, ps, dl)
							for _, b := range blocks {
								ctx := BlockContext{
									RawLen: b.rawLen, CompLen: b.compLen,
									RateMBps: rate.mbps, PowerSave: ps,
									QueueDepth: queue, Class: dl,
								}
								dec := d.Decide(ctx)
								_, _, rawT, compT := d.Evaluate(ctx)
								statT := rawT
								if staticChoice(b) {
									statT = compT
								}
								if statT <= dec.DeadlineS && dec.LatencyS > dec.DeadlineS*(1+1e-12) {
									t.Fatalf("seed=%d %s %s ps=%v dl=%s q=%d: dynamic latency %.9g s busts deadline %.9g s the static decider met (%.9g s) on block %+v",
										seed, wc, rate.name, ps, dl, queue, dec.LatencyS, dec.DeadlineS, statT, b)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestDynamicBeatsStaticSomewhere guards against a vacuous pass: the
// dynamic decider must actually differ from (and beat) the static one on
// at least one swept combination — otherwise the dominance property
// would hold trivially because the two always agree.
func TestDynamicBeatsStaticSomewhere(t *testing.T) {
	wins := 0
	for _, seed := range []int64{1, 2} {
		for _, wc := range table3Classes {
			blocks := blockStream(t, wc, seed)
			for _, rate := range sweptRates {
				d := calibratedDecider(t, rate.mbps, false, ClassNone)
				for _, b := range blocks {
					ctx := BlockContext{RawLen: b.rawLen, CompLen: b.compLen, RateMBps: rate.mbps}
					dec := d.Decide(ctx)
					rawJ, compJ, _, _ := d.Evaluate(ctx)
					statJ := rawJ
					if staticChoice(b) {
						statJ = compJ
					}
					if dec.EnergyJ < statJ {
						wins++
					}
				}
			}
		}
	}
	if wins == 0 {
		t.Fatal("dynamic decider never strictly beat static Eq. 6 on any swept block — the dominance property is passing vacuously")
	}
	t.Logf("dynamic strictly beat static on %d swept blocks", wins)
}
