package decider

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/obs"
)

// TestMetricsCountersTrackDecisions drives one decision down each
// counted path — compress, raw, deadline-constrained, over-budget — and
// checks the decider_* counters land exactly where the decisions did.
func TestMetricsCountersTrackDecisions(t *testing.T) {
	reg := obs.NewRegistry()
	base := energy.Params11Mbps()
	base.M = 12 // hot receive copy: compression pays but is slower than raw
	d := New(Config{Base: base, Calibrated: true})
	d.BindMetrics(reg)

	ctx := BlockContext{RawLen: 6000, CompLen: 3000, RateMBps: 0.6}
	if !d.Decide(ctx).Compress {
		t.Fatal("premise: unconstrained hot-copy block must compress")
	}
	ctx.Class = ClassStrict
	if dec := d.Decide(ctx); dec.Compress || !dec.Constrained {
		t.Fatalf("premise: strict class must veto the slower compressed option: %+v", dec)
	}
	ctx.Class = ClassNone
	ctx.BudgetJ, ctx.SpentJ = 1e-9, 1
	if !d.Decide(ctx).OverBudget {
		t.Fatal("premise: an exhausted budget must flag OverBudget")
	}

	for name, want := range map[string]int64{
		"decider_decisions_total":            3,
		"decider_compress_total":             2,
		"decider_raw_total":                  1,
		"decider_deadline_constrained_total": 1,
		"decider_over_budget_total":          1,
	} {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// A nil registry is a no-op bind: the existing counters keep working.
	d.BindMetrics(nil)
	ctx.BudgetJ, ctx.SpentJ = 0, 0
	d.Decide(ctx)
	if got := reg.Counter("decider_decisions_total", "").Value(); got != 4 {
		t.Errorf("decisions after nil rebind = %d, want 4", got)
	}
}

// TestBindQueueDepthRespectsPinnedHook: the first bound hook wins, and a
// constructor-pinned hook (the harness's determinism pin) survives the
// proxy's later bind attempt. Negative depths clamp to zero.
func TestBindQueueDepthRespectsPinnedHook(t *testing.T) {
	d := New(Config{})
	if got := d.liveQueue(); got != 0 {
		t.Fatalf("nil hook: liveQueue = %d, want 0", got)
	}
	d.BindQueueDepth(func() int { return 7 })
	if got := d.liveQueue(); got != 7 {
		t.Fatalf("bound hook: liveQueue = %d, want 7", got)
	}
	d.BindQueueDepth(func() int { return 99 })
	if got := d.liveQueue(); got != 7 {
		t.Fatalf("second bind must not override the first: liveQueue = %d, want 7", got)
	}

	pinned := New(Config{Queue: func() int { return -3 }})
	pinned.BindQueueDepth(func() int { return 42 })
	if got := pinned.liveQueue(); got != 0 {
		t.Fatalf("pinned negative hook: liveQueue = %d, want 0 (clamped, not rebound)", got)
	}
}
