package decider

import (
	"math"
	"testing"

	"repro/internal/calib"
	"repro/internal/energy"
)

const goldenEvents = "../../testdata/events/soak-seed1.jsonl"

func closeTo(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// At the 11 Mb/s anchor with the static Table 1 base, adaptation must be
// the identity: the dynamic decider with no live signal is exactly the
// paper's model.
func TestParamsForLinkIdentityAtBase(t *testing.T) {
	base := energy.Params11Mbps()
	got := ParamsForLink(base, base.RateMBps, false)
	if got != base {
		t.Fatalf("ParamsForLink at base rate changed params:\n got %+v\nwant %+v", got, base)
	}
}

// At the 2 Mb/s anchor the adapted coefficients must land on the
// Section 4.2 measured set (energy.Params2Mbps's rate-dependent fields).
func TestParamsForLinkMatches2Mbps(t *testing.T) {
	want := energy.Params2Mbps()
	got := ParamsForLink(energy.Params11Mbps(), want.RateMBps, false)
	if got.RateMBps != want.RateMBps || got.IdleFrac != want.IdleFrac ||
		got.M != want.M || got.Pi != want.Pi || got.Pd != want.Pd {
		t.Fatalf("ParamsForLink at 2Mbps: got rate=%g idle=%g m=%g pi=%g pd=%g, want %g/%g/%g/%g/%g",
			got.RateMBps, got.IdleFrac, got.M, got.Pi, got.Pd,
			want.RateMBps, want.IdleFrac, want.M, want.Pi, want.Pd)
	}
}

func TestParamsForLinkInterpolatesAndClamps(t *testing.T) {
	base := energy.Params11Mbps()
	mid := ParamsForLink(base, 0.29, false) // halfway between 0.18 and 0.40
	if mid.IdleFrac <= 0.55 || mid.IdleFrac >= 0.815 {
		t.Fatalf("interpolated idle frac %g outside (0.55, 0.815)", mid.IdleFrac)
	}
	lo := ParamsForLink(base, 0.02, false)
	if lo.IdleFrac != 0.87 {
		t.Fatalf("below-range idle frac %g, want clamp to 0.87", lo.IdleFrac)
	}
	hi := ParamsForLink(base, 10, false)
	if hi.IdleFrac != 0.40 {
		t.Fatalf("above-range idle frac %g, want clamp to 0.40", hi.IdleFrac)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		p := ParamsForLink(base, bad, false)
		if p != base {
			t.Fatalf("rate %v should fall back to base, got %+v", bad, p)
		}
	}
}

func TestParamsForLinkPowerSave(t *testing.T) {
	base := energy.Params11Mbps()
	p := ParamsForLink(base, base.RateMBps, true)
	if !closeTo(p.RateMBps, base.RateMBps*0.75, 1e-12) {
		t.Fatalf("power-save rate %g, want %g", p.RateMBps, base.RateMBps*0.75)
	}
	if p.Pi != base.PiSleep {
		t.Fatalf("power-save idle draw %g, want sleep current %g", p.Pi, base.PiSleep)
	}
}

func TestParamsFromFitOverlayAndFallback(t *testing.T) {
	ref := energy.Params11Mbps()
	f := calib.Fit{
		Ref: ref,
		TdA: 0.2, TdB: 0.15, TdC: 0.005, TdN: 10,
		M: 2.6, EIntercept: 0.014, EN: 5,
	}
	p, ok := ParamsFromFit(f)
	if !ok {
		t.Fatal("fit with samples should apply")
	}
	if p.TdA != 0.2 || p.TdB != 0.15 || p.TdC != 0.005 || p.M != 2.6 || p.Cs != 0.014 {
		t.Fatalf("overlay not applied: %+v", p)
	}
	if p.RateMBps != ref.RateMBps || p.Pi != ref.Pi {
		t.Fatalf("non-fitted fields must come from Ref: %+v", p)
	}

	p, ok = ParamsFromFit(calib.Fit{Ref: ref})
	if ok {
		t.Fatal("empty fit must report fallback")
	}
	if p != ref {
		t.Fatalf("fallback must return Ref unchanged: %+v", p)
	}

	// A fit with NaN coefficients must not poison the model.
	p, ok = ParamsFromFit(calib.Fit{Ref: ref, TdA: math.NaN(), TdN: 4, M: 2.5, EIntercept: 0.01, EN: 3})
	if !ok || p.TdA != ref.TdA || p.M != 2.5 {
		t.Fatalf("NaN td fit must keep Ref td and still apply E overlay: ok=%v %+v", ok, p)
	}
}

func TestMinSizeBytesNeverAboveStaticFloor(t *testing.T) {
	for _, rate := range []float64{0.6, 0.40, 0.18, 0.10} {
		rate := rate
		d := New(Config{Link: func() (float64, bool) { return rate, false }})
		min := d.MinSizeBytes()
		if min > energy.PaperFileThresholdBytes {
			t.Fatalf("rate %g: MinSizeBytes %d above static floor %d — dominance would break",
				rate, min, energy.PaperFileThresholdBytes)
		}
		if min < 1 {
			t.Fatalf("rate %g: MinSizeBytes %d", rate, min)
		}
		if again := d.MinSizeBytes(); again != min {
			t.Fatalf("cached MinSizeBytes %d != %d", again, min)
		}
	}
}

func TestEvaluateMatchesEnergyModelAtQueueZero(t *testing.T) {
	d := New(Config{})
	p := energy.Params11Mbps()
	ctx := BlockContext{RawLen: 128000, CompLen: 50000, RateMBps: p.RateMBps}
	rawJ, compJ, rawT, compT := d.Evaluate(ctx)
	s, sc := 0.128, 0.05
	if !closeTo(rawJ, p.DownloadEnergy(s), 1e-12) || !closeTo(rawT, p.DownloadTime(s), 1e-12) {
		t.Fatalf("raw option: got %g J %g s, want %g J %g s", rawJ, rawT, p.DownloadEnergy(s), p.DownloadTime(s))
	}
	if !closeTo(compJ, p.InterleavedEnergy(s, sc), 1e-12) || !closeTo(compT, p.InterleavedTime(s, sc), 1e-12) {
		t.Fatalf("comp option: got %g J %g s, want %g J %g s", compJ, compT, p.InterleavedEnergy(s, sc), p.InterleavedTime(s, sc))
	}
}

func TestQueueWaitPenalizesCompression(t *testing.T) {
	d := New(Config{})
	ctx := BlockContext{RawLen: 128000, CompLen: 50000, RateMBps: 0.6}
	_, compJ0, _, compT0 := d.Evaluate(ctx)
	ctx.QueueDepth = 8
	_, compJ8, _, compT8 := d.Evaluate(ctx)
	if compT8 <= compT0 || compJ8 <= compJ0 {
		t.Fatalf("queue depth must raise the compressed option's cost: t %g->%g, J %g->%g",
			compT0, compT8, compJ0, compJ8)
	}
	wantWait := 8 * 0.128 / defaultServerMBps
	if !closeTo(compT8-compT0, wantWait, 1e-12) {
		t.Fatalf("queue wait %g, want %g", compT8-compT0, wantWait)
	}
}

// Under the static Table 1 family any compression that is slower than
// raw is also hungrier (every second of extra latency costs at least the
// idle draw, and compression's energy edge per saved second stays below
// the busy draw), so the deadline constraint never actually binds —
// energy minimization already refuses slow compression. A calibrated
// device with an expensive receive copy (large fitted m) breaks that
// alignment: compression saves many joules while its trailing decompress
// still adds latency on a small block. The strict class must then force
// raw and flag the constraint; an unconstrained class keeps the saving.
func TestDeadlineConstrainsCalibratedHotCopy(t *testing.T) {
	base := energy.Params11Mbps()
	base.M = 12 // J/MB receive copy: an extreme calibrated device
	d := New(Config{Base: base, Calibrated: true})
	ctx := BlockContext{RawLen: 6000, CompLen: 3000, RateMBps: 0.6, Class: ClassNone}
	free := d.Decide(ctx)
	if !free.Compress {
		t.Fatalf("hot-copy device should compress unconstrained: %+v", free)
	}
	_, _, rawT, compT := d.Evaluate(ctx)
	if compT <= rawT {
		t.Fatalf("test premise broken: compT %g must exceed rawT %g", compT, rawT)
	}
	ctx.Class = ClassStrict
	strict := d.Decide(ctx)
	if strict.Compress {
		t.Fatalf("strict class must refuse slower-than-raw compression: %+v", strict)
	}
	if !strict.Constrained {
		t.Fatal("deadline-forced raw must set Constrained")
	}
	if strict.StaticCompress {
		t.Fatal("premise: static Eq.6 must send this block raw")
	}
	// Dominance survives the veto: static sent it raw too, so the
	// dynamic choice matches static exactly.
	if strict.EnergyJ != strict.AltEnergyJ && strict.EnergyJ > free.AltEnergyJ {
		t.Fatalf("constrained raw must cost the static raw energy: %+v", strict)
	}
	// The relaxed class has slack for the trailing decompress.
	ctx.Class = ClassRelaxed
	if relaxed := d.Decide(ctx); !relaxed.Compress {
		t.Fatalf("relaxed class should admit the saving: %+v", relaxed)
	}
}

func TestStaticBaselineReconstruction(t *testing.T) {
	d := New(Config{})
	// Below the paper's file threshold the static decider never
	// compresses, whatever the ratio.
	dec := d.Decide(BlockContext{RawLen: 3899, CompLen: 100, RateMBps: 0.6})
	if dec.StaticCompress {
		t.Fatal("static baseline must respect the 3900-byte floor")
	}
	dec = d.Decide(BlockContext{RawLen: 128000, CompLen: 32000, RateMBps: 0.6})
	want := energy.PaperShouldCompress(128000, 32000)
	if dec.StaticCompress != want {
		t.Fatalf("static baseline %v, want Eq.6's %v", dec.StaticCompress, want)
	}
}

func TestBudgetIsAdvisoryOnly(t *testing.T) {
	d := New(Config{})
	ctx := BlockContext{RawLen: 1000000, CompLen: 200000, RateMBps: 0.6}
	base := d.Decide(ctx)
	ctx.BudgetJ, ctx.SpentJ = 0.001, 5
	tight := d.Decide(ctx)
	if tight.Compress != base.Compress || tight.EnergyJ != base.EnergyJ {
		t.Fatal("budget must never alter the decision")
	}
	if !tight.OverBudget {
		t.Fatal("spending past the budget must flag OverBudget")
	}
	ctx.BudgetJ, ctx.SpentJ = math.NaN(), math.Inf(1)
	if d.Decide(ctx).OverBudget {
		t.Fatal("non-finite budget inputs read as unbudgeted")
	}
}

func TestFingerprintDistinguishesPolicies(t *testing.T) {
	static := New(Config{})
	calibrated := New(Config{Base: energy.Params2Mbps(), Calibrated: true})
	if static.Fingerprint() == calibrated.Fingerprint() {
		t.Fatal("calibrated and static policies must not alias")
	}
	fps := map[string]bool{}
	for c := ClassNone; c <= ClassStrict; c++ {
		fps[static.WithClass(c, 0).Fingerprint()] = true
	}
	if len(fps) != 4 {
		t.Fatalf("4 deadline classes produced %d fingerprints", len(fps))
	}
	// The advisory budget must not shatter the cache.
	d1, fp1 := static.ForRequest(byte(ClassStandard), 1000)
	d2, fp2 := static.ForRequest(byte(ClassStandard), 999999)
	if fp1 != fp2 {
		t.Fatalf("budget leaked into the fingerprint: %q vs %q", fp1, fp2)
	}
	if d1.(*DynamicDecider).class != ClassStandard || d2.(*DynamicDecider).class != ClassStandard {
		t.Fatal("ForRequest must carry the class")
	}
}

func TestParseFingerprintRoundTrip(t *testing.T) {
	for _, d := range []*DynamicDecider{
		New(Config{}),
		New(Config{Base: energy.Params2Mbps(), Calibrated: true, Class: ClassStrict, ServerMBps: 20}),
		New(Config{Class: ClassRelaxed}),
	} {
		fp := d.Fingerprint()
		cfg, ok := ParseFingerprint(fp)
		if !ok {
			t.Fatalf("ParseFingerprint rejected %q", fp)
		}
		if got := New(cfg).Fingerprint(); got != fp {
			t.Fatalf("round trip drifted:\n in  %q\n out %q", fp, got)
		}
	}
	for _, bad := range []string{"", "static", "dynamic/v1", "dynamic/v1 rate=x"} {
		if _, ok := ParseFingerprint(bad); ok {
			t.Fatalf("ParseFingerprint accepted %q", bad)
		}
	}
}

func TestClassParsing(t *testing.T) {
	for _, c := range []Class{ClassNone, ClassRelaxed, ClassStandard, ClassStrict} {
		got, ok := ParseClass(c.String())
		if c == ClassNone {
			// "none" round-trips via its token.
			got, ok = ParseClass("none")
		}
		if !ok || got != c {
			t.Fatalf("class %d: parse(%q) = %d, %v", c, c.String(), got, ok)
		}
	}
	if _, ok := ParseClass("bogus"); ok {
		t.Fatal("unknown class token must not parse")
	}
	if ClassFromByte(200) != ClassNone {
		t.Fatal("unknown wire byte must fold to ClassNone")
	}
	if s := Class(77).Slack(); !math.IsInf(s, 1) {
		t.Fatalf("unknown class slack %g, want +Inf", s)
	}
}

func TestLoadCalibrationGolden(t *testing.T) {
	fit, err := LoadCalibration(goldenEvents, "")
	if err != nil {
		t.Fatal(err)
	}
	if fit.Device != "ipaq-11mbps" {
		t.Fatalf("device %q", fit.Device)
	}
	if !fit.Within(0.01) {
		t.Fatalf("committed calibration drifted: max rel err %g", fit.MaxCoefRelErr())
	}
	p, ok := ParamsFromFit(fit)
	if !ok {
		t.Fatal("golden fit must apply")
	}
	ref := energy.Params11Mbps()
	if !closeTo(p.TdA, ref.TdA, 0.01) || !closeTo(p.M, ref.M, 0.01) {
		t.Fatalf("fitted params far from Table 1: %+v", p)
	}
	if _, err := LoadCalibration(goldenEvents, "nosuch-device"); err == nil {
		t.Fatal("unknown device must error")
	}
	if _, err := LoadCalibration("nosuch-file.jsonl", ""); err == nil {
		t.Fatal("missing file must error")
	}
}
