package codec

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestRoundTripAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	random := make([]byte, 30000)
	rng.Read(random)
	inputs := map[string][]byte{
		"empty":  nil,
		"text":   []byte(strings.Repeat("interface uniformity across schemes ", 1000)),
		"random": random,
	}
	for _, s := range []Scheme{Gzip, Compress, Bzip2, Zlib} {
		c, err := New(s, 0)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if c.Scheme() != s {
			t.Errorf("%v: Scheme() = %v", s, c.Scheme())
		}
		for name, data := range inputs {
			comp, err := c.Compress(data)
			if err != nil {
				t.Fatalf("%v %s: %v", s, name, err)
			}
			got, err := c.Decompress(comp, 0)
			if err != nil {
				t.Fatalf("%v %s: %v", s, name, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v %s: round trip mismatch", s, name)
			}
		}
	}
}

func TestPaperDefaults(t *testing.T) {
	// Level 0 must select gzip -9 / compress -b16 / bzip2 -9 and behave
	// identically to the explicit settings.
	data := []byte(strings.Repeat("default level selection ", 500))
	pairs := []struct {
		s     Scheme
		level int
	}{{Gzip, 9}, {Compress, 16}, {Bzip2, 9}, {Zlib, 9}}
	for _, p := range pairs {
		def, err := New(p.s, 0)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := New(p.s, p.level)
		if err != nil {
			t.Fatal(err)
		}
		a, err := def.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		b, err := exp.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%v: default level differs from paper setting", p.s)
		}
	}
}

func TestInvalidLevels(t *testing.T) {
	cases := []struct {
		s     Scheme
		level int
	}{
		{Gzip, 10}, {Gzip, -1}, {Zlib, 11},
		{Compress, 8}, {Compress, 17},
		{Bzip2, 10}, {Scheme(99), 0},
	}
	for _, c := range cases {
		if _, err := New(c.s, c.level); err == nil {
			t.Errorf("New(%v, %d) accepted", c.s, c.level)
		}
	}
}

func TestFactor(t *testing.T) {
	if got := Factor(100, 50); got != 2 {
		t.Errorf("Factor(100,50) = %v", got)
	}
	if got := Factor(100, 0); got != 0 {
		t.Errorf("Factor with zero comp size = %v", got)
	}
	if got := Factor(50, 100); got != 0.5 {
		t.Errorf("Factor(50,100) = %v", got)
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{Gzip: "gzip", Compress: "compress", Bzip2: "bzip2", Zlib: "zlib"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

// TestPaperOrderingOnText checks the paper's Table 2 shape: on compressible
// text, bzip2 achieves the highest factor and compress the lowest.
func TestPaperOrderingOnText(t *testing.T) {
	// Natural-language-like content with long-range structure.
	var sb strings.Builder
	words := []string{"energy", "compression", "wireless", "device", "proxy",
		"download", "battery", "the", "of", "and", "model", "scheme"}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 60000; i++ {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	data := []byte(sb.String())
	factors := map[Scheme]float64{}
	for _, s := range Schemes() {
		c := MustNew(s, 0)
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		factors[s] = Factor(len(data), len(comp))
	}
	if !(factors[Bzip2] > factors[Gzip]) {
		t.Errorf("expected bzip2 factor (%.2f) > gzip (%.2f)", factors[Bzip2], factors[Gzip])
	}
	if !(factors[Gzip] > factors[Compress]) {
		t.Errorf("expected gzip factor (%.2f) > compress (%.2f)", factors[Gzip], factors[Compress])
	}
}
