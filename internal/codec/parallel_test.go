package codec_test

// CompressParallel contract tests: worker count never changes the bytes,
// large deflate-family inputs switch to the chunked container, and schemes
// without a chunkable format fall through to the sequential path.

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/workload"
)

func TestCompressParallelDeterministic(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 1<<20, 17)
	for _, scheme := range []codec.Scheme{codec.Gzip, codec.Zlib} {
		c := codec.MustNew(scheme, 0)
		ref, err := codec.CompressParallel(c, data, 1)
		if err != nil {
			t.Fatalf("%v workers=1: %v", scheme, err)
		}
		for _, workers := range []int{0, 2, 4, 9} {
			got, err := codec.CompressParallel(c, data, workers)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", scheme, workers, err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("%v: workers=%d output differs from workers=1", scheme, workers)
			}
		}
		dec, err := c.Decompress(ref, 0)
		if err != nil {
			t.Fatalf("%v: decompress of parallel artifact: %v", scheme, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("%v: parallel artifact round trip mismatch", scheme)
		}
	}
}

func TestCompressParallelFallbacks(t *testing.T) {
	small := workload.Generate(workload.ClassXML, codec.ParallelThreshold-1, 2)
	gz := codec.MustNew(codec.Gzip, 0)
	seq, err := gz.Compress(small)
	if err != nil {
		t.Fatal(err)
	}
	par, err := codec.CompressParallel(gz, small, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("below-threshold input must use the sequential encoder verbatim")
	}

	// LZW has no chunkable container: CompressParallel must equal Compress
	// at any size.
	big := workload.Generate(workload.ClassWebLog, 1<<20, 3)
	lzw := codec.MustNew(codec.Compress, 0)
	seq, err = lzw.Compress(big)
	if err != nil {
		t.Fatal(err)
	}
	par, err = codec.CompressParallel(lzw, big, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("non-chunkable scheme must fall through to Compress")
	}
}
