package codec_test

// CompressParallel contract tests: worker count never changes the bytes,
// large deflate-family inputs switch to the chunked container, and schemes
// without a chunkable format fall through to the sequential path.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/codec"
	"repro/internal/workload"
)

// TestAutoWorkers: the auto-tuned fan-out is GOMAXPROCS capped at the
// input's chunk count, never less than one, and never resizes chunks
// (which would change output bytes).
func TestAutoWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		size int
		want int
	}{
		{0, 1},
		{1, 1},
		{codec.ParallelChunk, 1},
		{codec.ParallelChunk + 1, min(2, maxprocs)},
		{4 * codec.ParallelChunk, min(4, maxprocs)},
		{1 << 30, maxprocs},
	}
	for _, tc := range cases {
		if got := codec.AutoWorkers(tc.size); got != tc.want {
			t.Errorf("AutoWorkers(%d) = %d, want %d (GOMAXPROCS=%d)", tc.size, got, tc.want, maxprocs)
		}
	}
}

// BenchmarkCompressParallelScaling measures the worker-scaling curve of the
// chunked gzip path on a 4 MiB source-class input (32 chunks); its numbers
// feed the EXPERIMENTS.md table. The workers=0 row is the AutoWorkers
// setting the proxy's compression plane inherits.
func BenchmarkCompressParallelScaling(b *testing.B) {
	data := workload.Generate(workload.ClassSource, 4<<20, 17)
	gz := codec.MustNew(codec.Gzip, 0)
	for _, workers := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = fmt.Sprintf("workers=auto(%d)", codec.AutoWorkers(len(data)))
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := codec.CompressParallel(gz, data, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestCompressParallelDeterministic(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 1<<20, 17)
	for _, scheme := range []codec.Scheme{codec.Gzip, codec.Zlib} {
		c := codec.MustNew(scheme, 0)
		ref, err := codec.CompressParallel(c, data, 1)
		if err != nil {
			t.Fatalf("%v workers=1: %v", scheme, err)
		}
		for _, workers := range []int{0, 2, 4, 9} {
			got, err := codec.CompressParallel(c, data, workers)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", scheme, workers, err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("%v: workers=%d output differs from workers=1", scheme, workers)
			}
		}
		dec, err := c.Decompress(ref, 0)
		if err != nil {
			t.Fatalf("%v: decompress of parallel artifact: %v", scheme, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("%v: parallel artifact round trip mismatch", scheme)
		}
	}
}

func TestCompressParallelFallbacks(t *testing.T) {
	small := workload.Generate(workload.ClassXML, codec.ParallelThreshold-1, 2)
	gz := codec.MustNew(codec.Gzip, 0)
	seq, err := gz.Compress(small)
	if err != nil {
		t.Fatal(err)
	}
	par, err := codec.CompressParallel(gz, small, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("below-threshold input must use the sequential encoder verbatim")
	}

	// LZW has no chunkable container: CompressParallel must equal Compress
	// at any size.
	big := workload.Generate(workload.ClassWebLog, 1<<20, 3)
	lzw := codec.MustNew(codec.Compress, 0)
	seq, err = lzw.Compress(big)
	if err != nil {
		t.Fatal(err)
	}
	par, err = codec.CompressParallel(lzw, big, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("non-chunkable scheme must fall through to Compress")
	}
}
