package codec

// Size-classed buffer pooling for the dataplane. The proxy decodes one
// block per request leg and would otherwise allocate a fresh payload and
// output buffer per block; these pools recycle them so a steady-state
// serve/fetch loop runs with O(1) buffers per block.

import (
	"math/bits"
	"sync"
)

// Pool classes are powers of two from 4 KiB to 2 MiB — the top class
// matches the proxy's maximum block wire size.
const (
	minPoolClass = 12 // 4 KiB
	maxPoolClass = 21 // 2 MiB
)

var bufPools [maxPoolClass - minPoolClass + 1]sync.Pool

// GetBuf returns a zero-length buffer with capacity at least n, recycled
// when possible. Requests beyond the top size class fall through to a
// plain allocation.
func GetBuf(n int) []byte {
	if n > 1<<maxPoolClass {
		return make([]byte, 0, n)
	}
	c := minPoolClass
	if n > 1<<minPoolClass {
		c = bits.Len(uint(n - 1)) // ceil(log2 n)
	}
	if v := bufPools[c-minPoolClass].Get(); v != nil {
		return (*v.(*[]byte))[:0]
	}
	return make([]byte, 0, 1<<c)
}

// PutBuf recycles a buffer obtained from GetBuf (or elsewhere). Buffers
// smaller than the bottom class or that alias retained data must not be
// put back; the caller owns that invariant.
func PutBuf(b []byte) {
	c := cap(b)
	if c < 1<<minPoolClass {
		return
	}
	k := bits.Len(uint(c)) - 1 // floor(log2 cap): every pooled buffer satisfies its class
	if k > maxPoolClass {
		k = maxPoolClass
	}
	b = b[:0]
	bufPools[k-minPoolClass].Put(&b)
}

// AppendDecompressor is implemented by codecs whose decompressor can
// append into a caller-provided (possibly pooled) buffer instead of
// allocating its own. DecompressAppend returns the extended slice;
// maxSize, if positive, bounds the appended bytes.
type AppendDecompressor interface {
	DecompressAppend(dst, data []byte, maxSize int) ([]byte, error)
}

// DecompressInto decompresses data with c, appending into dst when the
// codec supports it and falling back to Decompress otherwise.
func DecompressInto(c Codec, dst, data []byte, maxSize int) ([]byte, error) {
	if ad, ok := c.(AppendDecompressor); ok {
		return ad.DecompressAppend(dst, data, maxSize)
	}
	out, err := c.Decompress(data, maxSize)
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}
