// Package codec exposes the three universal lossless compression schemes
// the paper compares — gzip (LZ77/DEFLATE), compress (LZW) and bzip2 (BWT)
// — plus the zlib container used by its interleaving experiments, behind a
// single interface with a registry keyed by scheme.
package codec

import (
	"fmt"

	"repro/internal/bwt"
	"repro/internal/flate"
	"repro/internal/lzw"
)

// Scheme identifies a compression scheme.
type Scheme int

// The schemes of the paper's Section 3, plus zlib (Section 4).
const (
	Gzip Scheme = iota + 1
	Compress
	Bzip2
	Zlib
)

// String returns the tool name the paper uses for the scheme.
func (s Scheme) String() string {
	switch s {
	case Gzip:
		return "gzip"
	case Compress:
		return "compress"
	case Bzip2:
		return "bzip2"
	case Zlib:
		return "zlib"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists the three schemes of the paper's three-way comparison.
func Schemes() []Scheme { return []Scheme{Gzip, Compress, Bzip2} }

// Codec compresses and decompresses byte buffers.
type Codec interface {
	// Scheme identifies the underlying algorithm family.
	Scheme() Scheme
	// Compress returns the compressed representation of data.
	Compress(data []byte) ([]byte, error)
	// Decompress inverts Compress. maxSize, if positive, bounds the output
	// size as a decompression-bomb guard.
	Decompress(data []byte, maxSize int) ([]byte, error)
}

// New returns a codec for the scheme at the given effort level. Levels
// follow each tool's convention: 1-9 for gzip/zlib/bzip2, and code width
// 9-16 for compress ("-b N"). Level 0 selects the paper's setting for the
// scheme (gzip -9, compress -b 16, bzip2 -9).
func New(s Scheme, level int) (Codec, error) {
	switch s {
	case Gzip:
		if level == 0 {
			level = 9
		}
		if level < 1 || level > 9 {
			return nil, fmt.Errorf("codec: gzip level %d out of range", level)
		}
		return gzipCodec{level: level}, nil
	case Zlib:
		if level == 0 {
			level = 9
		}
		if level < 1 || level > 9 {
			return nil, fmt.Errorf("codec: zlib level %d out of range", level)
		}
		return zlibCodec{level: level}, nil
	case Compress:
		if level == 0 {
			level = lzw.MaxBits
		}
		if level < lzw.MinBits || level > lzw.MaxBits {
			return nil, fmt.Errorf("codec: compress bits %d out of range", level)
		}
		return lzwCodec{maxBits: level}, nil
	case Bzip2:
		if level == 0 {
			level = 9
		}
		if level < 1 || level > 9 {
			return nil, fmt.Errorf("codec: bzip2 level %d out of range", level)
		}
		return bzip2Codec{level: level}, nil
	default:
		return nil, fmt.Errorf("codec: unknown scheme %d", int(s))
	}
}

// MustNew is New for statically valid arguments; it panics otherwise and is
// intended for initialisation paths.
func MustNew(s Scheme, level int) Codec {
	c, err := New(s, level)
	if err != nil {
		panic(err)
	}
	return c
}

// Factor returns the compression factor (input size over output size), the
// paper's headline per-file metric. A factor below 1 means expansion.
func Factor(rawSize, compSize int) float64 {
	if compSize <= 0 {
		return 0
	}
	return float64(rawSize) / float64(compSize)
}

type gzipCodec struct{ level int }

var _ Codec = gzipCodec{}

func (gzipCodec) Scheme() Scheme { return Gzip }

func (c gzipCodec) Compress(data []byte) ([]byte, error) {
	return flate.GzipCompress(data, c.level)
}

func (gzipCodec) Decompress(data []byte, maxSize int) ([]byte, error) {
	return flate.GzipDecompress(data, maxSize)
}

func (gzipCodec) DecompressAppend(dst, data []byte, maxSize int) ([]byte, error) {
	return flate.GzipDecompressAppend(dst, data, maxSize)
}

type zlibCodec struct{ level int }

var _ Codec = zlibCodec{}

func (zlibCodec) Scheme() Scheme { return Zlib }

func (c zlibCodec) Compress(data []byte) ([]byte, error) {
	return flate.ZlibCompress(data, c.level)
}

func (zlibCodec) Decompress(data []byte, maxSize int) ([]byte, error) {
	return flate.ZlibDecompress(data, maxSize)
}

func (zlibCodec) DecompressAppend(dst, data []byte, maxSize int) ([]byte, error) {
	return flate.ZlibDecompressAppend(dst, data, maxSize)
}

type lzwCodec struct{ maxBits int }

var _ Codec = lzwCodec{}

func (lzwCodec) Scheme() Scheme { return Compress }

func (c lzwCodec) Compress(data []byte) ([]byte, error) {
	return lzw.Compress(data, c.maxBits)
}

func (lzwCodec) Decompress(data []byte, maxSize int) ([]byte, error) {
	return lzw.Decompress(data, maxSize)
}

func (lzwCodec) DecompressAppend(dst, data []byte, maxSize int) ([]byte, error) {
	return lzw.DecompressAppend(dst, data, maxSize)
}

type bzip2Codec struct{ level int }

var _ Codec = bzip2Codec{}

func (bzip2Codec) Scheme() Scheme { return Bzip2 }

func (c bzip2Codec) Compress(data []byte) ([]byte, error) {
	return bwt.Compress(data, c.level)
}

func (bzip2Codec) Decompress(data []byte, maxSize int) ([]byte, error) {
	return bwt.Decompress(data, maxSize)
}

func (bzip2Codec) DecompressAppend(dst, data []byte, maxSize int) ([]byte, error) {
	return bwt.DecompressAppend(dst, data, maxSize)
}
