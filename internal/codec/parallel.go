package codec

import (
	"runtime"

	"repro/internal/flate"
)

// ParallelThreshold is the input size at which CompressParallel switches a
// deflate-family codec to the chunked (pigz-style) container format.
const ParallelThreshold = flate.ParallelThreshold

// parallelCompressor is implemented by codecs whose output format supports
// deterministic chunk-parallel compression.
type parallelCompressor interface {
	compressParallel(data []byte, workers int) ([]byte, error)
}

func (c gzipCodec) compressParallel(data []byte, workers int) ([]byte, error) {
	return flate.GzipCompressParallel(data, c.level, workers)
}

func (c zlibCodec) compressParallel(data []byte, workers int) ([]byte, error) {
	return flate.ZlibCompressParallel(data, c.level, workers)
}

// CompressParallel compresses data with c, sharding deflate-family inputs of
// at least ParallelThreshold into independent chunks compressed on up to
// workers goroutines and stitched in order (workers <= 0 selects
// GOMAXPROCS). The output is a pure function of the data and the codec:
// every workers value yields byte-identical bytes, so cached artifacts,
// golden traces and same-seed replays stay deterministic however many cores
// did the work. Schemes without a chunkable format (compress, bzip2) and
// small inputs fall through to c.Compress.
func CompressParallel(c Codec, data []byte, workers int) ([]byte, error) {
	pc, ok := c.(parallelCompressor)
	if !ok || len(data) < ParallelThreshold {
		return c.Compress(data)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return pc.compressParallel(data, workers)
}
