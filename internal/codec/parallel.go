package codec

import (
	"runtime"

	"repro/internal/flate"
)

// ParallelThreshold is the input size at which CompressParallel switches a
// deflate-family codec to the chunked (pigz-style) container format.
const ParallelThreshold = flate.ParallelThreshold

// ParallelChunk is the fixed chunk size of that format. It is part of the
// determinism contract — resizing chunks changes output bytes — so tuning
// may only adjust worker fan-out, never chunk geometry.
const ParallelChunk = flate.ParallelChunk

// parallelCompressor is implemented by codecs whose output format supports
// deterministic chunk-parallel compression.
type parallelCompressor interface {
	compressParallel(data []byte, workers int) ([]byte, error)
}

func (c gzipCodec) compressParallel(data []byte, workers int) ([]byte, error) {
	return flate.GzipCompressParallel(data, c.level, workers)
}

func (c zlibCodec) compressParallel(data []byte, workers int) ([]byte, error) {
	return flate.ZlibCompressParallel(data, c.level, workers)
}

// AutoWorkers is the auto-tuned chunk-compression fan-out for an input of
// size bytes: one worker per available core (GOMAXPROCS), capped at the
// number of ParallelChunk-sized chunks the input actually shards into.
// The cap matters on wide machines compressing mid-sized inputs — a
// 512 KiB artifact splits into 4 chunks, and waking 32 workers for 4
// tasks costs scheduling latency without buying any parallelism. Fan-out
// only ever changes who does the work, never the bytes produced.
func AutoWorkers(size int) int {
	w := runtime.GOMAXPROCS(0)
	if chunks := (size + ParallelChunk - 1) / ParallelChunk; w > chunks {
		w = chunks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CompressParallel compresses data with c, sharding deflate-family inputs of
// at least ParallelThreshold into independent chunks compressed on up to
// workers goroutines and stitched in order (workers <= 0 selects
// AutoWorkers: GOMAXPROCS capped at the input's chunk count). The output is
// a pure function of the data and the codec: every workers value yields
// byte-identical bytes, so cached artifacts, golden traces and same-seed
// replays stay deterministic however many cores did the work. Schemes
// without a chunkable format (compress, bzip2) and small inputs fall
// through to c.Compress.
func CompressParallel(c Codec, data []byte, workers int) ([]byte, error) {
	pc, ok := c.(parallelCompressor)
	if !ok || len(data) < ParallelThreshold {
		return c.Compress(data)
	}
	if workers <= 0 {
		workers = AutoWorkers(len(data))
	}
	return pc.compressParallel(data, workers)
}
