package workload

import "hash/fnv"

// FileSpec describes one test file from Tables 2 and 3: its name, original
// size, content class, and the compression factors the paper measured, kept
// for paper-vs-reproduction reporting.
type FileSpec struct {
	Name        string
	Size        int
	Class       Class
	Description string
	Large       bool // the paper's >50 KB "relatively large" group

	// Paper's Table 2 compression factors.
	PaperGzip     float64
	PaperCompress float64
	PaperBzip2    float64
}

// Seed derives the deterministic generation seed from the file name.
func (s FileSpec) Seed() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	return h.Sum64()
}

// Generate materialises the file's synthetic content.
func (s FileSpec) Generate() []byte {
	return Generate(s.Class, s.Size, s.Seed())
}

// ScaledTo returns a copy of the spec with the size scaled by factor
// (minimum 64 bytes) — used to keep simulation corpora tractable while
// preserving the size ordering of the paper's figures. Files at or below
// keepBelow bytes are kept at full size (the "small files" group must stay
// small in absolute terms because the thresholds are absolute).
func (s FileSpec) ScaledTo(factor float64, keepBelow int) FileSpec {
	if s.Size <= keepBelow {
		return s
	}
	n := int(float64(s.Size) * factor)
	if n < 64 {
		n = 64
	}
	out := s
	out.Size = n
	return out
}

// Table2 returns every file of the paper's Table 2, in its printed order
// (large files first, then small), with the published sizes and factors.
func Table2() []FileSpec {
	return []FileSpec{
		// Large files (sorted by decreasing gzip factor in the figures).
		{Name: "nes96.xml", Size: 2961063, Class: ClassXML, Description: "a xml webpage", Large: true, PaperGzip: 18.23, PaperCompress: 6.51, PaperBzip2: 23.59},
		{Name: "M3TC.xml", Size: 8391571, Class: ClassXML, Description: "a xml webpage", Large: true, PaperGzip: 14.64, PaperCompress: 9.91, PaperBzip2: 18.58},
		{Name: "M3TCsmall.xml", Size: 940000, Class: ClassXML, Description: "a xml webpage", Large: true, PaperGzip: 12.90, PaperCompress: 6.63, PaperBzip2: 11.52},
		{Name: "input.log", Size: 4900036, Class: ClassWebLog, Description: "a webpage log (from SPEC 2000)", Large: true, PaperGzip: 11.11, PaperCompress: 5.92, PaperBzip2: 18.37},
		{Name: "langspec-2.0.html.tar", Size: 1162816, Class: ClassTarHTML, Description: "a tar file of Java language specification in html format", Large: true, PaperGzip: 5.11, PaperCompress: 3.08, PaperBzip2: 6.13},
		{Name: "input.source", Size: 9553920, Class: ClassSource, Description: "a program source (from SPEC 2000)", Large: true, PaperGzip: 3.90, PaperCompress: 2.54, PaperBzip2: 4.88},
		{Name: "proxy.ps", Size: 2175331, Class: ClassPostscript, Description: "a postscript document", Large: true, PaperGzip: 3.80, PaperCompress: 3.00, PaperBzip2: 6.87},
		{Name: "j2d-book.ps", Size: 5234774, Class: ClassPostscript, Description: "a postscript document", Large: true, PaperGzip: 3.70, PaperCompress: 2.75, PaperBzip2: 4.70},
		{Name: "java.ps", Size: 1698978, Class: ClassPostscript, Description: "a postscript document", Large: true, PaperGzip: 3.55, PaperCompress: 2.61, PaperBzip2: 4.46},
		{Name: "localedef", Size: 330072, Class: ClassBinary, Description: "a program binary", Large: true, PaperGzip: 3.50, PaperCompress: 2.18, PaperBzip2: 3.72},
		{Name: "JavaCCParser.class", Size: 126241, Class: ClassClassFile, Description: "a Java class file", Large: true, PaperGzip: 3.00, PaperCompress: 2.00, PaperBzip2: 3.17},
		{Name: "langspec-2.0.pdf", Size: 4419906, Class: ClassPDF, Description: "Java specification in pdf format", Large: true, PaperGzip: 2.79, PaperCompress: 1.98, PaperBzip2: 3.00},
		{Name: "pegwit", Size: 360188, Class: ClassBinary, Description: "a program binary", Large: true, PaperGzip: 2.57, PaperCompress: 1.73, PaperBzip2: 2.90},
		{Name: "NTBACKUP.EXE", Size: 1162512, Class: ClassBinary, Description: "a program binary", Large: true, PaperGzip: 2.46, PaperCompress: 1.79, PaperBzip2: 2.50},
		{Name: "input.program", Size: 3450558, Class: ClassBinary, Description: "a program binary (from SPEC 2000)", Large: true, PaperGzip: 2.30, PaperCompress: 1.77, PaperBzip2: 2.41},
		{Name: "sttrep.wav", Size: 1158380, Class: ClassAudio, Description: "a data file in .wav format", Large: true, PaperGzip: 2.77, PaperCompress: 2.26, PaperBzip2: 3.25},
		{Name: "pp.wve", Size: 920316, Class: ClassAudio, Description: "a data file in .wve format", Large: true, PaperGzip: 1.11, PaperCompress: 0.95, PaperBzip2: 1.23},
		{Name: "input.graphic", Size: 6656364, Class: ClassGraphic, Description: "a TIFF image (from SPEC 2000)", Large: true, PaperGzip: 1.09, PaperCompress: 0.97, PaperBzip2: 1.38},
		{Name: "image01.jpg", Size: 1833027, Class: ClassMedia, Description: "a jpeg image", Large: true, PaperGzip: 1.04, PaperCompress: 0.90, PaperBzip2: 1.36},
		{Name: "loveonife.mp3", Size: 4328513, Class: ClassMedia, Description: "a mp3 music", Large: true, PaperGzip: 1.02, PaperCompress: 0.83, PaperBzip2: 1.02},
		{Name: "lorn.015.m2v", Size: 2816594, Class: ClassMedia, Description: "a mpeg-2 movie", Large: true, PaperGzip: 1.01, PaperCompress: 0.85, PaperBzip2: 1.02},
		{Name: "image01.gif", Size: 5075287, Class: ClassRandom, Description: "a GIF file", Large: true, PaperGzip: 1.00, PaperCompress: 0.82, PaperBzip2: 1.00},
		{Name: "input.random", Size: 4194309, Class: ClassRandom, Description: "random data (from SPEC 2000)", Large: true, PaperGzip: 1.00, PaperCompress: 0.81, PaperBzip2: 1.00},

		// Small files (sorted by increasing size in the figures).
		{Name: "mail0", Size: 1438, Class: ClassMail, Description: "a text mail", PaperGzip: 1.82, PaperCompress: 1.47, PaperBzip2: 1.67},
		{Name: "mail1", Size: 1611, Class: ClassMail, Description: "a text mail", PaperGzip: 1.91, PaperCompress: 1.48, PaperBzip2: 1.75},
		{Name: "PolyhedronElement.class", Size: 2211, Class: ClassClassFile, Description: "a java class file", PaperGzip: 1.79, PaperCompress: 1.42, PaperBzip2: 1.66},
		{Name: "nohup", Size: 3100, Class: ClassScript, Description: "a shell script", PaperGzip: 1.97, PaperCompress: 1.47, PaperBzip2: 1.81},
		{Name: "mail2", Size: 4285, Class: ClassMail, Description: "a text mail", PaperGzip: 2.16, PaperCompress: 1.66, PaperBzip2: 2.00},
		{Name: "yahooindex.html", Size: 16709, Class: ClassHTML, Description: "a html webpage", PaperGzip: 3.11, PaperCompress: 2.22, PaperBzip2: 3.11},
		{Name: "Stele.class", Size: 21890, Class: ClassClassFile, Description: "a Java class file", PaperGzip: 2.23, PaperCompress: 1.66, PaperBzip2: 2.15},
		{Name: "tail", Size: 26240, Class: ClassBinary, Description: "a program binary", PaperGzip: 2.03, PaperCompress: 1.59, PaperBzip2: 2.11},
		{Name: "umcdig.eps", Size: 31290, Class: ClassPostscript, Description: "an encapsulated postscript file", PaperGzip: 3.22, PaperCompress: 1.95, PaperBzip2: 3.17},
		{Name: "intro.pdf", Size: 44000, Class: ClassPDF, Description: "a pdf file", PaperGzip: 1.77, PaperCompress: 1.23, PaperBzip2: 1.80},
		{Name: "fscrib", Size: 57312, Class: ClassBinary, Description: "a program binary", PaperGzip: 2.05, PaperCompress: 1.55, PaperBzip2: 2.14},
		{Name: "intro.ps", Size: 66072, Class: ClassPostscript, Description: "a postscript document", PaperGzip: 2.37, PaperCompress: 1.87, PaperBzip2: 2.54},
		{Name: "JavaFiles.class", Size: 70000, Class: ClassClassFile, Description: "a Java class file", PaperGzip: 2.93, PaperCompress: 1.82, PaperBzip2: 2.97},
		{Name: "pet.ps", Size: 79012, Class: ClassPostscript, Description: "a postscript file", PaperGzip: 2.58, PaperCompress: 1.90, PaperBzip2: 2.83},
	}
}

// LargeFiles returns Table 2's large-file group in figure order.
func LargeFiles() []FileSpec {
	var out []FileSpec
	for _, s := range Table2() {
		if s.Large {
			out = append(out, s)
		}
	}
	return out
}

// SmallFiles returns Table 2's small-file group in figure order.
func SmallFiles() []FileSpec {
	var out []FileSpec
	for _, s := range Table2() {
		if !s.Large {
			out = append(out, s)
		}
	}
	return out
}

// ScaledCorpus returns the full corpus with large files scaled by factor;
// small files (the absolute-threshold group) keep their true sizes.
func ScaledCorpus(factor float64) []FileSpec {
	specs := Table2()
	out := make([]FileSpec, len(specs))
	for i, s := range specs {
		out[i] = s.ScaledTo(factor, 100_000)
	}
	return out
}

// ByName returns the spec with the given name.
func ByName(name string) (FileSpec, bool) {
	for _, s := range Table2() {
		if s.Name == name {
			return s, true
		}
	}
	return FileSpec{}, false
}

// MixedFile generates a file whose blocks alternate between highly
// compressible text and incompressible media — the tar/PowerPoint/PDF
// mixture of Section 4.3 whose per-block factors vary enough to exercise
// the block-by-block adaptive scheme.
func MixedFile(size int, seed uint64) []byte {
	if size <= 0 {
		return []byte{}
	}
	out := make([]byte, 0, size)
	text := true
	for len(out) < size {
		// Chunks align with the selective scheme's 0.128 MB compression
		// buffer (selective.BlockSize) so each block is purely one class.
		chunkLen := 128 * 1000
		if remaining := size - len(out); chunkLen > remaining {
			chunkLen = remaining
		}
		cls := ClassHTML
		if !text {
			cls = ClassRandom
		}
		out = append(out, Generate(cls, chunkLen, seed+uint64(len(out)))...)
		text = !text
	}
	return out[:size]
}
