// External test package: it measures with the real dataplane gzip, and
// importing codec from inside package workload would cycle through the
// codec packages' own differential tests.
package workload_test

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/workload"
)

// gzipFactor is the measurer the dataplane uses for the knob: the
// repository's own gzip at level 6.
func gzipFactor(t *testing.T) workload.Measurer {
	gz := codec.MustNew(codec.Gzip, 6)
	return func(data []byte) float64 {
		comp, err := gz.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		return codec.Factor(len(data), len(comp))
	}
}

// TestGenerateRatioHitsTarget: across the knob range the generated data's
// measured gzip factor must land within ±10% of the requested target —
// the contract scenario specs (`file ... ratio F`) rely on. The range is
// bounded by chunk quantization: a file can hit targets up to about
// size/(10·ratioChunk), which 64 kB comfortably clears for every target
// the scenario validator admits.
func TestGenerateRatioHitsTarget(t *testing.T) {
	measure := gzipFactor(t)
	for _, size := range []int{64 << 10, 256 << 10} {
		for _, target := range []float64{1.1, 1.3, 1.7, 2.5, 4, 6, 9, 12, 16} {
			data := workload.GenerateRatio(size, target, 7, measure)
			if len(data) != size {
				t.Fatalf("size=%d target=%g: generated %d bytes", size, target, len(data))
			}
			got := measure(data)
			if got < target*0.9 || got > target*1.1 {
				t.Errorf("size=%d target=%g: measured factor %.3f outside ±10%%", size, target, got)
			}
		}
	}
}

// TestGenerateRatioDeterministic: same (size, target, seed) ⇒ same bytes;
// different seeds ⇒ different bytes. Golden traces depend on this.
func TestGenerateRatioDeterministic(t *testing.T) {
	measure := gzipFactor(t)
	a := workload.GenerateRatio(32<<10, 2.5, 11, measure)
	b := workload.GenerateRatio(32<<10, 2.5, 11, measure)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different data")
	}
	c := workload.GenerateRatio(32<<10, 2.5, 12, measure)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical data")
	}
}

// TestGenerateRatioEdges: degenerate sizes and out-of-range targets must
// not panic, and the clamped extremes still order correctly (a 1.0 file
// stays incompressible-ish, a high-target file compresses hard).
func TestGenerateRatioEdges(t *testing.T) {
	measure := gzipFactor(t)
	if got := workload.GenerateRatio(0, 2, 1, measure); len(got) != 0 {
		t.Fatalf("size 0 generated %d bytes", len(got))
	}
	if got := workload.GenerateRatio(100, 2, 1, measure); len(got) != 100 {
		t.Fatalf("tiny file generated %d bytes", len(got))
	}
	low := workload.GenerateRatio(64<<10, 0.5, 3, measure) // clamps to 1.0
	high := workload.GenerateRatio(64<<10, 99, 3, measure) // clamps to 24
	if fl := measure(low); fl > 1.1 {
		t.Errorf("target 1.0 measured %.3f", fl)
	}
	if fh := measure(high); fh < 20 {
		t.Errorf("target 24 measured only %.3f", fh)
	}
}
