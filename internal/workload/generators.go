// Package workload synthesises the paper's test corpus (Tables 2 and 3).
// The experiments depend on each file only through its size and its
// per-scheme compressibility, so every file class has a deterministic
// generator tuned to produce data whose compression factors fall in the
// band Table 2 reports for that class: highly templated XML and logs
// compress 10-25x, program sources and PostScript 3-7x, binaries 1.6-3.5x,
// audio 2-3x, and already-encoded media barely at all.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Class is a file-content class from Table 3.
type Class int

// Content classes covering every Table 3 description.
const (
	ClassXML Class = iota + 1
	ClassHTML
	ClassWebLog
	ClassTarHTML
	ClassSource
	ClassPostscript
	ClassPDF
	ClassBinary
	ClassClassFile
	ClassAudio
	ClassGraphic
	ClassMedia // jpeg/mp3/mpeg: already encoded
	ClassRandom
	ClassMail
	ClassScript
)

// String names the class as in Table 3's descriptions.
func (c Class) String() string {
	switch c {
	case ClassXML:
		return "xml webpage"
	case ClassHTML:
		return "html webpage"
	case ClassWebLog:
		return "webpage log"
	case ClassTarHTML:
		return "tar of html"
	case ClassSource:
		return "program source"
	case ClassPostscript:
		return "postscript document"
	case ClassPDF:
		return "pdf document"
	case ClassBinary:
		return "program binary"
	case ClassClassFile:
		return "java class file"
	case ClassAudio:
		return "audio data"
	case ClassGraphic:
		return "tiff graphic"
	case ClassMedia:
		return "encoded media"
	case ClassRandom:
		return "random data"
	case ClassMail:
		return "text mail"
	case ClassScript:
		return "shell script"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Generate produces size bytes of class-typical content, deterministically
// from seed.
func Generate(class Class, size int, seed uint64) []byte {
	if size <= 0 {
		return []byte{}
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	g := newTextGen(rng)
	out := make([]byte, 0, size)
	for len(out) < size {
		switch class {
		case ClassXML:
			out = g.appendXML(out)
		case ClassHTML:
			out = g.appendHTML(out)
		case ClassWebLog:
			out = g.appendLogLine(out)
		case ClassTarHTML:
			out = g.appendTarChunk(out)
		case ClassSource:
			out = g.appendSource(out)
		case ClassPostscript:
			out = g.appendPostscript(out)
		case ClassPDF:
			out = g.appendPDF(out)
		case ClassBinary:
			out = appendBinary(out, rng)
		case ClassClassFile:
			out = appendClassFile(out, rng)
		case ClassAudio:
			out = appendAudio(out, rng)
		case ClassGraphic:
			out = appendGraphic(out, rng)
		case ClassMedia, ClassRandom:
			out = appendRandom(out, rng, size-len(out))
		case ClassMail:
			out = g.appendMail(out)
		case ClassScript:
			out = g.appendScript(out)
		default:
			out = appendRandom(out, rng, size-len(out))
		}
	}
	return out[:size]
}

var (
	xmlTags   = []string{"item", "entry", "record", "name", "value", "price", "date", "link", "title", "meta"}
	words     = []string{"the", "of", "and", "to", "a", "in", "that", "is", "was", "he", "for", "it", "with", "as", "his", "on", "be", "at", "by", "had", "data", "compression", "energy", "wireless", "device", "network", "proxy", "server", "download", "battery"}
	psOps     = []string{"moveto", "lineto", "curveto", "stroke", "fill", "gsave", "grestore", "setrgbcolor", "scalefont", "show"}
	srcKw     = []string{"int", "for", "if", "else", "return", "struct", "void", "char", "while", "static", "const", "double"}
	srcIdents = []string{"buffer", "count", "index", "packet", "result", "state", "length", "offset", "block", "stream"}
)

// textGen produces text-like content with two properties the real corpus
// has and that separate the Lempel-Ziv schemes the way Table 2 shows:
// high local novelty (identifiers, numbers, addresses — hostile to LZW's
// incremental dictionary) combined with exact long-range repeats of whole
// lines (which LZ77's sliding window captures as single matches).
type textGen struct {
	rng   *rand.Rand
	pool  []string // medium-sized identifier pool, regenerated per file
	cache [][]byte // previously emitted lines for exact repeats
}

func newTextGen(rng *rand.Rand) *textGen {
	g := &textGen{rng: rng}
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789_"
	g.pool = make([]string, 96)
	for i := range g.pool {
		n := 5 + rng.Intn(9)
		b := make([]byte, n)
		for j := range b {
			b[j] = alpha[rng.Intn(len(alpha))]
		}
		g.pool[i] = string(b)
	}
	return g
}

// ident returns an identifier: usually from the file's pool, sometimes
// entirely novel.
func (g *textGen) ident() string {
	if g.rng.Intn(4) == 0 {
		const alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
		n := 4 + g.rng.Intn(10)
		b := make([]byte, n)
		for j := range b {
			b[j] = alpha[g.rng.Intn(len(alpha))]
		}
		return string(b)
	}
	return g.pool[g.rng.Intn(len(g.pool))]
}

func (g *textGen) word() string { return words[g.rng.Intn(len(words))] }

// emit appends line, caching it for later exact repeats.
func (g *textGen) emit(out []byte, line string) []byte {
	if len(g.cache) < 768 {
		g.cache = append(g.cache, []byte(line))
	} else if g.rng.Intn(8) == 0 {
		g.cache[g.rng.Intn(len(g.cache))] = []byte(line)
	}
	return append(out, line...)
}

// repeat returns a previously emitted line, or "" if none cached. Recent
// lines are preferred so repeats mostly land inside a 32 KB LZ77 window,
// as they do in real logs and markup.
func (g *textGen) repeat() string {
	if len(g.cache) == 0 {
		return ""
	}
	span := len(g.cache)
	if span > 224 {
		span = 224
	}
	return string(g.cache[len(g.cache)-1-g.rng.Intn(span)])
}

// line emits either an exact repeat of an earlier line (with probability
// pctRepeat/100) or fresh content from fresh().
func (g *textGen) line(out []byte, pctRepeat int, fresh func() string) []byte {
	if g.rng.Intn(100) < pctRepeat {
		if r := g.repeat(); r != "" {
			return append(out, r...)
		}
	}
	return g.emit(out, fresh())
}

func (g *textGen) appendXML(out []byte) []byte {
	// Exported-database XML: heavily templated markup around pooled
	// values; most records repeat earlier records exactly.
	return g.line(out, 70, func() string {
		tag := xmlTags[g.rng.Intn(3)]
		return fmt.Sprintf("  <%s class=\"row\" visible=\"true\"><name>%s</name><value>%s %d</value><date>2003-01-%02d</date></%s>\n",
			tag, g.ident(), g.word(), g.rng.Intn(100), 1+g.rng.Intn(28), tag)
	})
}

func (g *textGen) appendHTML(out []byte) []byte {
	return g.line(out, 40, func() string {
		var sb []byte
		sb = append(sb, "<tr><td class=\"cell\"><a href=\"/"...)
		sb = append(sb, g.ident()...)
		sb = append(sb, ".html\">"...)
		for i := 0; i < 4+g.rng.Intn(6); i++ {
			sb = append(sb, g.word()...)
			sb = append(sb, ' ')
		}
		sb = append(sb, "</a></td></tr>\n"...)
		return string(sb)
	})
}

func (g *textGen) appendLogLine(out []byte) []byte {
	return g.line(out, 62, func() string {
		// Few distinct clients, shallow URL space, bounded sizes — real
		// access logs are dominated by a handful of hosts and pages.
		return fmt.Sprintf("10.%d.%d.%d - %s [12/Jan/2003:%02d:%02d:%02d -0500] \"GET /%s/%s HTTP/1.0\" 200 %d\n",
			g.rng.Intn(4), g.rng.Intn(8), g.rng.Intn(16),
			g.pool[g.rng.Intn(16)], g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60),
			g.pool[g.rng.Intn(24)], g.pool[g.rng.Intn(32)], 500+g.rng.Intn(2000))
	})
}

func (g *textGen) appendTarChunk(out []byte) []byte {
	// 512-byte header-ish block with zero padding, then html content.
	hdr := make([]byte, 512)
	copy(hdr, fmt.Sprintf("doc/%s/%s.html", g.ident(), g.ident()))
	binary.BigEndian.PutUint32(hdr[124:], uint32(g.rng.Intn(1<<20)))
	out = append(out, hdr...)
	for i := 0; i < 40; i++ {
		out = g.appendHTML(out)
	}
	return out
}

func (g *textGen) appendSource(out []byte) []byte {
	return g.line(out, 25, func() string {
		k := srcKw[g.rng.Intn(len(srcKw))]
		a, b := g.ident(), g.ident()
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("    %s %s = %s[%d] + 0x%x;\n", k, a, b, g.rng.Intn(4096), g.rng.Intn(1<<20))
		case 1:
			return fmt.Sprintf("    for (%s = %d; %s < %s; %s++) {\n        %s[%s] ^= 0x%04x;\n    }\n",
				a, g.rng.Intn(8), a, b, a, b, a, g.rng.Intn(1<<16))
		case 2:
			return fmt.Sprintf("/* %s %s: see %s.c line %d */\n", g.word(), a, b, g.rng.Intn(9000))
		default:
			return fmt.Sprintf("%s %s_%s(%s *%s, int %s);\n", k, a, b, k, a, g.ident())
		}
	})
}

func (g *textGen) appendPostscript(out []byte) []byte {
	return g.line(out, 25, func() string {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d.%02d %d.%02d %s %d.%02d %d.%02d %s\n",
				g.rng.Intn(612), g.rng.Intn(100), g.rng.Intn(792), g.rng.Intn(100), psOps[g.rng.Intn(len(psOps))],
				g.rng.Intn(612), g.rng.Intn(100), g.rng.Intn(792), g.rng.Intn(100), psOps[g.rng.Intn(len(psOps))])
		case 1:
			return fmt.Sprintf("/%s findfont %d scalefont setfont %d %d moveto\n",
				g.ident(), 8+g.rng.Intn(16), g.rng.Intn(612), g.rng.Intn(792))
		default:
			var sb []byte
			sb = append(sb, '(')
			for i := 0; i < 5+g.rng.Intn(8); i++ {
				sb = append(sb, g.word()...)
				sb = append(sb, ' ')
			}
			sb = append(sb, ") show "...)
			sb = append(sb, fmt.Sprintf("%d %d rmoveto\n", g.rng.Intn(100), g.rng.Intn(20))...)
			return string(sb)
		}
	})
}

func (g *textGen) appendPDF(out []byte) []byte {
	// PDFs mix dictionary/text objects with already-deflated streams.
	rng := g.rng
	for k := 0; k < 6; k++ {
		out = append(out, fmt.Sprintf("%d 0 obj << /Type /Page /Parent %d 0 R /Resources << /Font << /F1 %d 0 R >> >> /MediaBox [0 0 612 792] /Contents %d 0 R >> endobj\n",
			rng.Intn(5000), rng.Intn(100), rng.Intn(20), rng.Intn(5000))...)
		out = append(out, "BT /F1 12 Tf 72 720 Td ("...)
		for i := 0; i < 10; i++ {
			out = append(out, g.word()...)
			out = append(out, ' ')
		}
		out = append(out, ") Tj ET\n"...)
	}
	out = append(out, "stream\n"...)
	n := 500 + rng.Intn(300)
	for i := 0; i < n; i++ {
		out = append(out, byte(rng.Intn(256)))
	}
	return append(out, "\nendstream\n"...)
}

func (g *textGen) appendMail(out []byte) []byte {
	rng := g.rng
	out = append(out, fmt.Sprintf("From: %s@cs.purdue.edu\nSubject: %s %s\n\n", g.ident(), g.word(), g.word())...)
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			if rng.Intn(6) == 0 {
				out = append(out, g.ident()...)
			} else {
				out = append(out, g.word()...)
			}
			out = append(out, ' ')
		}
		out = append(out, '\n')
	}
	return append(out, "\n-- \nsig\n"...)
}

func (g *textGen) appendScript(out []byte) []byte {
	return g.line(out, 35, func() string {
		return fmt.Sprintf("if [ -f \"$%s\" ]; then\n  echo \"%s $%s\" >> $LOG\nfi\n",
			g.ident(), g.word(), g.ident())
	})
}

func appendBinary(out []byte, rng *rand.Rand) []byte {
	// RISC-like code: 4-byte words, few hot opcodes, small immediates,
	// repeated register patterns — compresses ~1.6-3.5x like Table 2's
	// binaries. Whole basic blocks recur (inlined helpers, linked library
	// code), which the LZ77 window exploits far better than LZW.
	if len(out) > 2048 && rng.Intn(3) == 0 {
		start := rng.Intn(len(out) - 1024)
		n := 256 + rng.Intn(768)
		if start+n > len(out) {
			n = len(out) - start
		}
		return append(out, out[start:start+n]...)
	}
	var word [4]byte
	for i := 0; i < 64; i++ {
		op := byte([]int{0x20, 0x8f, 0xaf, 0x00, 0x10, 0x24}[rng.Intn(6)])
		word[0] = op
		word[1] = byte(rng.Intn(32))
		if rng.Intn(3) == 0 {
			word[2] = byte(rng.Intn(256))
		} else {
			word[2] = 0
		}
		word[3] = byte(rng.Intn(8))
		out = append(out, word[:]...)
	}
	// Interleave a little string-table data.
	if rng.Intn(4) == 0 {
		out = append(out, srcIdents[rng.Intn(len(srcIdents))]...)
		out = append(out, 0)
	}
	return out
}

func appendClassFile(out []byte, rng *rand.Rand) []byte {
	// Constant-pool-like: length-prefixed UTF8 strings plus bytecode.
	s := fmt.Sprintf("java/lang/%s%d", srcIdents[rng.Intn(len(srcIdents))], rng.Intn(50))
	out = append(out, byte(1), byte(len(s)>>8), byte(len(s)))
	out = append(out, s...)
	for i := 0; i < 30; i++ {
		out = append(out, byte([]int{0x2a, 0xb7, 0xb1, 0x19, 0x3a, 0xb6}[rng.Intn(6)]), byte(rng.Intn(64)))
	}
	return out
}

func appendAudio(out []byte, rng *rand.Rand) []byte {
	// 16-bit PCM random walk: correlated samples, moderate compressibility.
	level := rng.Intn(2048) - 1024
	for i := 0; i < 256; i++ {
		level += rng.Intn(65) - 32
		if level > 32000 {
			level = 32000
		}
		if level < -32000 {
			level = -32000
		}
		out = append(out, byte(level), byte(level>>8))
	}
	return out
}

func appendGraphic(out []byte, rng *rand.Rand) []byte {
	// Uncompressed continuous-tone raster: noisy gradients, barely
	// compressible (Table 2's input.graphic: 1.09).
	base := rng.Intn(256)
	for i := 0; i < 512; i++ {
		out = append(out, byte(base+rng.Intn(17)-8), byte(rng.Intn(256)), byte(base+rng.Intn(33)-16))
	}
	return out
}

func appendRandom(out []byte, rng *rand.Rand, n int) []byte {
	if n > 4096 {
		n = 4096
	}
	if n <= 0 {
		n = 1
	}
	chunk := make([]byte, n)
	rng.Read(chunk)
	return append(out, chunk...)
}
