package workload

import (
	"bytes"
	"testing"

	"repro/internal/codec"
)

func TestTable2Complete(t *testing.T) {
	specs := Table2()
	if len(specs) != 37 {
		t.Errorf("Table 2 has %d entries, want 37", len(specs))
	}
	large, small := 0, 0
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate file %q", s.Name)
		}
		seen[s.Name] = true
		if s.Size <= 0 {
			t.Errorf("%s: bad size %d", s.Name, s.Size)
		}
		if s.PaperGzip <= 0 || s.PaperCompress <= 0 || s.PaperBzip2 <= 0 {
			t.Errorf("%s: missing paper factors", s.Name)
		}
		if s.Description == "" {
			t.Errorf("%s: missing Table 3 description", s.Name)
		}
		if s.Large {
			large++
		} else {
			small++
		}
	}
	if large != 23 || small != 14 {
		t.Errorf("large/small = %d/%d, want 23/14", large, small)
	}
}

func TestSmallFilesAreSmall(t *testing.T) {
	for _, s := range SmallFiles() {
		if s.Size > 100_000 {
			t.Errorf("%s: small-group file of %d bytes", s.Name, s.Size)
		}
	}
	for _, s := range LargeFiles() {
		if s.Size < 100_000 {
			t.Errorf("%s: large-group file of %d bytes", s.Name, s.Size)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, ok := ByName("mail0")
	if !ok {
		t.Fatal("mail0 missing")
	}
	a := spec.Generate()
	b := spec.Generate()
	if !bytes.Equal(a, b) {
		t.Fatal("generation is not deterministic")
	}
	if len(a) != spec.Size {
		t.Fatalf("generated %d bytes, want %d", len(a), spec.Size)
	}
}

func TestGenerateExactSizes(t *testing.T) {
	for _, cls := range []Class{ClassXML, ClassWebLog, ClassSource, ClassBinary, ClassAudio, ClassMedia, ClassPDF, ClassMail} {
		for _, n := range []int{1, 100, 5000, 70000} {
			got := Generate(cls, n, 7)
			if len(got) != n {
				t.Errorf("%v size %d: generated %d", cls, n, len(got))
			}
		}
	}
	if len(Generate(ClassXML, 0, 1)) != 0 {
		t.Error("size 0 should generate empty")
	}
}

func TestScaledCorpusPreservesSmallFiles(t *testing.T) {
	scaled := ScaledCorpus(0.1)
	for i, s := range Table2() {
		if s.Size <= 100_000 {
			if scaled[i].Size != s.Size {
				t.Errorf("%s: small file resized %d -> %d", s.Name, s.Size, scaled[i].Size)
			}
		} else if scaled[i].Size >= s.Size {
			t.Errorf("%s: large file not scaled", s.Name)
		}
	}
}

// TestClassCompressionBands checks each class's gzip compression factor
// lands in the band Table 2 establishes for it — the property the
// experiments actually depend on.
func TestClassCompressionBands(t *testing.T) {
	gz := codec.MustNew(codec.Gzip, 9)
	cases := []struct {
		class    Class
		lo, hi   float64
		sampleKB int
	}{
		{ClassXML, 8, 40, 256},
		{ClassWebLog, 8, 40, 256},
		{ClassTarHTML, 4, 15, 256},
		{ClassSource, 3, 9, 256},
		{ClassPostscript, 3, 9, 256},
		{ClassPDF, 1.3, 3.4, 256},
		{ClassBinary, 1.6, 4.2, 256},
		{ClassClassFile, 1.6, 4.5, 64},
		{ClassAudio, 1.05, 3.5, 256},
		{ClassGraphic, 1.0, 1.6, 256},
		{ClassMedia, 0.9, 1.1, 256},
		{ClassRandom, 0.9, 1.05, 256},
		{ClassMail, 1.5, 4, 2},
		{ClassScript, 1.5, 8, 3},
		{ClassHTML, 2.2, 20, 16},
	}
	for _, c := range cases {
		data := Generate(c.class, c.sampleKB*1024, 99)
		comp, err := gz.Compress(data)
		if err != nil {
			t.Fatalf("%v: %v", c.class, err)
		}
		f := codec.Factor(len(data), len(comp))
		if f < c.lo || f > c.hi {
			t.Errorf("%v: gzip factor %.2f outside band [%.2f, %.2f]", c.class, f, c.lo, c.hi)
		}
	}
}

// TestCorpusOrderingRoughlyPreserved: the large-file corpus, compressed
// with gzip, should correlate with the paper's factor ordering (high-factor
// files stay high, incompressible stay near 1).
func TestCorpusOrderingRoughlyPreserved(t *testing.T) {
	gz := codec.MustNew(codec.Gzip, 9)
	specs := ScaledCorpus(0.03)
	var highFactor, lowFactor []float64
	for _, s := range specs {
		if !s.Large {
			continue
		}
		data := s.Generate()
		comp, err := gz.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		f := codec.Factor(len(data), len(comp))
		if s.PaperGzip >= 5 {
			highFactor = append(highFactor, f)
		}
		if s.PaperGzip <= 1.1 {
			lowFactor = append(lowFactor, f)
		}
	}
	for _, f := range highFactor {
		if f < 4 {
			t.Errorf("paper high-factor file reproduced at only %.2f", f)
		}
	}
	for _, f := range lowFactor {
		if f > 1.25 {
			t.Errorf("paper incompressible file reproduced at %.2f", f)
		}
	}
}

func TestMixedFileHasVaryingBlocks(t *testing.T) {
	gz := codec.MustNew(codec.Gzip, 9)
	data := MixedFile(768*1024, 5)
	if len(data) != 768*1024 {
		t.Fatalf("size %d", len(data))
	}
	// Per-128K block factors must straddle the 1.13 threshold.
	anyHigh, anyLow := false, false
	for off := 0; off+128*1000 <= len(data); off += 128 * 1000 {
		comp, err := gz.Compress(data[off : off+128*1000])
		if err != nil {
			t.Fatal(err)
		}
		f := codec.Factor(128*1000, len(comp))
		if f > 1.5 {
			anyHigh = true
		}
		if f < 1.1 {
			anyLow = true
		}
	}
	if !anyHigh || !anyLow {
		t.Error("mixed file lacks both compressible and incompressible blocks")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("nes96.xml"); !ok {
		t.Error("nes96.xml missing")
	}
	if _, ok := ByName("no-such-file"); ok {
		t.Error("unexpected file found")
	}
}

func TestClassStrings(t *testing.T) {
	for c := ClassXML; c <= ClassScript; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty string", int(c))
		}
	}
}
