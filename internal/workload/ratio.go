package workload

import "math/rand"

// Compressibility-knob generation: scenario specs (internal/scenario) and
// the load generator describe workload shape not as a Table 3 content
// class but as a numeric target — "a 30 kB file that gzips 2.4x" — the way
// open-lambda's load simulator parameterizes its synthetic packages. The
// generator mixes templated text (compresses far past any realistic
// target) with incompressible random chunks and calibrates the mix against
// this repository's own gzip until the measured factor lands on target.

// ratioChunk is the interleaving granularity of the text/random mix. It is
// small against the 32 kB LZ77 window, so text chunks keep matching across
// intervening random chunks, and small against the file, so the achieved
// factor responds nearly continuously to the mix fraction: the residual
// quantization error is about ratioChunk·target/size of the target, which
// is what bounds how small a file can hit how high a factor.
const ratioChunk = 256

// Measurer reports the achieved compression factor (raw/compressed) of
// a candidate byte slice. The workload package takes it as a parameter
// rather than importing the codec itself: the codec packages' own
// differential tests generate their inputs from this package, and a
// workload → codec import would close that cycle. Callers pass the
// dataplane's gzip — internal/harness wires codec.Gzip level 6, which
// is deterministic across Go versions, so golden traces stay stable.
type Measurer func([]byte) float64

// GenerateRatio synthesises size bytes whose compression factor, as
// reported by measure, is calibrated to target, deterministically from
// seed. Targets are clamped to [1.0, 24]; the high end and very small
// sizes (under a few kB) carry the most residual error because header
// overhead and window warm-up stop amortizing. The calibration loop
// bisects on the random-chunk fraction and keeps the closest candidate —
// so the result is a pure function of (size, target, seed) for a
// deterministic measurer.
func GenerateRatio(size int, target float64, seed uint64, measure Measurer) []byte {
	if measure == nil {
		panic("workload: GenerateRatio needs a Measurer")
	}
	if size <= 0 {
		return []byte{}
	}
	if target < 1.0 {
		target = 1.0
	}
	if target > 24 {
		target = 24
	}

	// Bisect on the incompressible fraction x: factor is monotone
	// decreasing in x (more random bytes, less compression).
	lo, hi := 0.0, 1.0
	best := generateMix(size, 0, seed)
	bestErr := absf(measure(best) - target)
	for i := 0; i < 10 && bestErr > target*0.01; i++ {
		mid := (lo + hi) / 2
		cand := generateMix(size, mid, seed)
		f := measure(cand)
		if e := absf(f - target); e < bestErr {
			best, bestErr = cand, e
		}
		if f > target {
			lo = mid // still too compressible: more random
		} else {
			hi = mid
		}
	}
	return best
}

// generateMix produces size bytes where fraction x of ratioChunk-sized
// chunks are random and the rest drawn from a tiny pool of templated
// record lines (near the compressibility ceiling: whole chunks are exact
// LZ77 matches), spread evenly (Bresenham-style) so every window of the
// file carries the same mix and the factor responds smoothly to x.
func generateMix(size int, x float64, seed uint64) []byte {
	rng := rand.New(rand.NewSource(int64(seed)))
	g := newTextGen(rng)
	// Four fixed record lines per file: enough variety that the stream is
	// not one run-length degenerate case, few enough that text chunks
	// compress 40x+.
	lines := make([][]byte, 4)
	for i := range lines {
		lines[i] = []byte("<rec id=\"" + g.ident() + "\" host=\"" + g.ident() +
			"\" op=\"" + g.word() + " " + g.word() + "\" status=\"ok\"/>\n")
	}
	out := make([]byte, 0, size+ratioChunk)
	acc, li := 0.0, 0
	for len(out) < size {
		acc += x
		if acc >= 1 {
			acc--
			chunk := ratioChunk
			if rem := size - len(out); chunk > rem {
				chunk = rem
			}
			out = appendRandom(out, rng, chunk)
			continue
		}
		start := len(out)
		for len(out)-start < ratioChunk && len(out) < size {
			out = append(out, lines[li%len(lines)]...)
			li++
		}
	}
	return out[:size]
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
