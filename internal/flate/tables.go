package flate

import "repro/internal/huffman"

// DEFLATE symbol-table constants (RFC 1951).
const (
	endBlockMarker = 256
	maxNumLit      = 286
	maxNumDist     = 30
	numCLSymbols   = 19

	maxCodeBits   = 15
	maxCLCodeBits = 7
)

// lengthCode maps a match length (3..258) to its length code, extra-bit
// count and base.
type lengthEntry struct {
	code  uint16
	extra uint8
	base  uint16
}

// lengthTable is indexed by code-257 and holds (extra, base) per RFC 1951.
var lengthTable = [29]struct {
	extra uint8
	base  uint16
}{
	{0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 9}, {0, 10},
	{1, 11}, {1, 13}, {1, 15}, {1, 17}, {2, 19}, {2, 23}, {2, 27}, {2, 31},
	{3, 35}, {3, 43}, {3, 51}, {3, 59}, {4, 67}, {4, 83}, {4, 99}, {4, 115},
	{5, 131}, {5, 163}, {5, 195}, {5, 227}, {0, 258},
}

// distTable is indexed by distance code and holds (extra, base).
var distTable = [30]struct {
	extra uint8
	base  uint16
}{
	{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 5}, {1, 7}, {2, 9}, {2, 13},
	{3, 17}, {3, 25}, {4, 33}, {4, 49}, {5, 65}, {5, 97}, {6, 129}, {6, 193},
	{7, 257}, {7, 385}, {8, 513}, {8, 769}, {9, 1025}, {9, 1537},
	{10, 2049}, {10, 3073}, {11, 4097}, {11, 6145}, {12, 8193}, {12, 12289},
	{13, 16385}, {13, 24577},
}

// clOrder is the permuted order in which code-length-code lengths appear in
// a dynamic block header.
var clOrder = [numCLSymbols]byte{
	16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
}

// lengthCodes is a 3..258 -> entry lookup built once.
var lengthCodes = buildLengthCodes()

func buildLengthCodes() [259]lengthEntry {
	var t [259]lengthEntry
	for code := 0; code < 29; code++ {
		e := lengthTable[code]
		hi := int(e.base) + (1 << e.extra) - 1
		if code == 28 {
			hi = 258
		}
		for l := int(e.base); l <= hi && l <= 258; l++ {
			t[l] = lengthEntry{code: uint16(code + 257), extra: e.extra, base: e.base}
		}
	}
	// Length 258 is its own zero-extra code 285, which the loop above sets
	// last, overriding code 284's range end.
	t[258] = lengthEntry{code: 285, extra: 0, base: 258}
	return t
}

// distCodeTable maps distances to distance codes: index d-1 for d <= 256,
// index 256 + (d-1)>>7 for larger distances (codes 16..29 all have bases
// that are multiples of 128 plus one, so the >>7 bucketing is exact).
var distCodeTable = buildDistCodeTable()

func buildDistCodeTable() [512]uint8 {
	var t [512]uint8
	code := 0
	for d := 1; d <= 256; d++ {
		for code < 29 && int(distTable[code+1].base) <= d {
			code++
		}
		t[d-1] = uint8(code)
	}
	for i := 2; i < 256; i++ { // buckets of 128 bytes for d in 257..32768
		d := i<<7 + 1
		for code < 29 && int(distTable[code+1].base) <= d {
			code++
		}
		t[256+i] = uint8(code)
	}
	return t
}

// distCode returns the distance code for a distance in 1..32768.
func distCode(d int) int {
	if d <= 256 {
		return int(distCodeTable[d-1])
	}
	return int(distCodeTable[256+(d-1)>>7])
}

// fixedLitLengths returns the fixed lit/len code lengths of RFC 1951 §3.2.6.
func fixedLitLengths() []uint8 {
	lens := make([]uint8, 288)
	for i := 0; i <= 143; i++ {
		lens[i] = 8
	}
	for i := 144; i <= 255; i++ {
		lens[i] = 9
	}
	for i := 256; i <= 279; i++ {
		lens[i] = 7
	}
	for i := 280; i <= 287; i++ {
		lens[i] = 8
	}
	return lens
}

// fixedDistLengths returns the fixed distance code lengths (all 5 bits).
func fixedDistLengths() []uint8 {
	lens := make([]uint8, 32)
	for i := range lens {
		lens[i] = 5
	}
	return lens
}

// Packed emit tables: each entry holds the bit-reversed (LSB-first) code in
// the low 16 bits and the code length in bits 16+, so the hot token loop
// writes a symbol with one table load and one WriteBits call instead of a
// per-symbol huffman.Reverse.
const packedLenShift = 16

func packCode(code uint32, length uint8) uint32 {
	return huffman.Reverse(code, length) | uint32(length)<<packedLenShift
}

// packEnc fills enc with packed reversed codes for the canonical code over
// lengths, using codes as canonical-code scratch (len(codes) >= len(lengths)).
func packEnc(enc []uint32, codes []uint32, lengths []uint8) error {
	if err := huffman.CanonicalCodesInto(codes[:len(lengths)], lengths); err != nil {
		return err
	}
	for s, l := range lengths {
		if l == 0 {
			enc[s] = 0
			continue
		}
		enc[s] = packCode(codes[s], l)
	}
	return nil
}

// fixedLitEnc / fixedDistEnc are the packed emit tables for the fixed trees,
// built once and shared (read-only) by every encoder.
var fixedLitEnc, fixedDistEnc = buildFixedEnc()

func buildFixedEnc() (lit [maxNumLit]uint32, dist [maxNumDist]uint32) {
	litLens := fixedLitLengths()
	codes, err := huffman.CanonicalCodes(litLens)
	if err != nil {
		panic(err)
	}
	for s := 0; s < maxNumLit; s++ {
		lit[s] = packCode(codes[s], litLens[s])
	}
	distLens := fixedDistLengths()
	codes, err = huffman.CanonicalCodes(distLens)
	if err != nil {
		panic(err)
	}
	for s := 0; s < maxNumDist; s++ {
		dist[s] = packCode(codes[s], distLens[s])
	}
	return lit, dist
}
