package flate

import (
	"encoding/binary"
	"fmt"

	"repro/internal/checksum"
)

// gzip container constants (RFC 1952).
const (
	gzipID1      = 0x1f
	gzipID2      = 0x8b
	gzipCM       = 8 // deflate
	gzipOSUnix   = 3
	gzipXFLBest  = 2
	gzipXFLFast  = 4
	gzipHdrLen   = 10
	gzipTrailLen = 8
)

// GzipCompress compresses data into a single-member gzip stream at the given
// level (1-9), as `gzip -N` would.
func GzipCompress(data []byte, level int) ([]byte, error) {
	if err := validateLevel(level); err != nil {
		return nil, err
	}
	hdr := make([]byte, gzipHdrLen, gzipHdrLen+deflateSizeHint(len(data))+gzipTrailLen)
	hdr[0], hdr[1], hdr[2] = gzipID1, gzipID2, gzipCM
	// FLG=0, MTIME=0 (deterministic output).
	switch level {
	case 9:
		hdr[8] = gzipXFLBest
	case 1:
		hdr[8] = gzipXFLFast
	}
	hdr[9] = gzipOSUnix

	out := sliceWriter{b: hdr}
	if _, err := Deflate(&out, data, level); err != nil {
		return nil, err
	}
	var trailer [gzipTrailLen]byte
	binary.LittleEndian.PutUint32(trailer[0:4], checksum.CRC32(data))
	binary.LittleEndian.PutUint32(trailer[4:8], uint32(len(data)))
	return append(out.b, trailer[:]...), nil
}

// maxTrailerPrealloc caps how much the decompressors pre-reserve from the
// (unverified) ISIZE trailer field, so a forged trailer cannot force a
// large allocation up front.
const maxTrailerPrealloc = 1 << 20

// GzipDecompress decompresses a single-member gzip stream, verifying the
// CRC-32 and ISIZE trailer. maxSize, if positive, bounds the output size.
func GzipDecompress(data []byte, maxSize int) ([]byte, error) {
	return GzipDecompressAppend(nil, data, maxSize)
}

// GzipDecompressAppend is GzipDecompress appending to dst (which may be nil
// or recycled from a pool), pre-reserving capacity from the ISIZE trailer
// field clamped to maxSize and maxTrailerPrealloc. It returns the extended
// slice; only the appended bytes are checksummed.
func GzipDecompressAppend(dst, data []byte, maxSize int) ([]byte, error) {
	if len(data) < gzipHdrLen+gzipTrailLen {
		return nil, fmt.Errorf("%w: gzip stream too short", ErrCorrupt)
	}
	if data[0] != gzipID1 || data[1] != gzipID2 {
		return nil, fmt.Errorf("%w: bad gzip magic", ErrCorrupt)
	}
	if data[2] != gzipCM {
		return nil, fmt.Errorf("%w: unsupported gzip method %d", ErrCorrupt, data[2])
	}
	flg := data[3]
	pos := gzipHdrLen
	const (
		flgFEXTRA   = 1 << 2
		flgFNAME    = 1 << 3
		flgFCOMMENT = 1 << 4
		flgFHCRC    = 1 << 1
	)
	if flg&flgFEXTRA != 0 {
		if pos+2 > len(data) {
			return nil, fmt.Errorf("%w: truncated FEXTRA", ErrCorrupt)
		}
		xlen := int(binary.LittleEndian.Uint16(data[pos:]))
		pos += 2 + xlen
	}
	skipZString := func() error {
		for {
			if pos >= len(data) {
				return fmt.Errorf("%w: unterminated header string", ErrCorrupt)
			}
			pos++
			if data[pos-1] == 0 {
				return nil
			}
		}
	}
	if flg&flgFNAME != 0 {
		if err := skipZString(); err != nil {
			return nil, err
		}
	}
	if flg&flgFCOMMENT != 0 {
		if err := skipZString(); err != nil {
			return nil, err
		}
	}
	if flg&flgFHCRC != 0 {
		pos += 2
	}
	if pos+gzipTrailLen > len(data) {
		return nil, fmt.Errorf("%w: gzip header overruns stream", ErrCorrupt)
	}
	body := data[pos : len(data)-gzipTrailLen]
	trailer := data[len(data)-gzipTrailLen:]
	wantCRC := binary.LittleEndian.Uint32(trailer[0:4])
	wantSize := binary.LittleEndian.Uint32(trailer[4:8])
	dst = reserve(dst, int(wantSize), maxSize)
	base := len(dst)
	out, err := Inflate(dst, bytesReader(body), sizeBudget(base, maxSize))
	if err != nil {
		return nil, err
	}
	if checksum.CRC32(out[base:]) != wantCRC {
		return nil, fmt.Errorf("%w: gzip CRC mismatch", ErrCorrupt)
	}
	if uint32(len(out)-base) != wantSize {
		return nil, fmt.Errorf("%w: gzip ISIZE mismatch", ErrCorrupt)
	}
	return out, nil
}

// reserve grows dst's spare capacity toward hint, clamped by maxSize and
// maxTrailerPrealloc. The hint comes from untrusted trailer bytes, so it is
// an optimization only — never a trusted size.
func reserve(dst []byte, hint, maxSize int) []byte {
	if hint <= 0 {
		return dst
	}
	if maxSize > 0 && hint > maxSize {
		hint = maxSize
	}
	if hint > maxTrailerPrealloc {
		hint = maxTrailerPrealloc
	}
	if cap(dst)-len(dst) >= hint {
		return dst
	}
	grown := make([]byte, len(dst), len(dst)+hint)
	copy(grown, dst)
	return grown
}

// sizeBudget converts a caller maxSize (bound on appended bytes) into the
// absolute length bound Inflate enforces on the whole slice.
func sizeBudget(base, maxSize int) int {
	if maxSize <= 0 {
		return 0
	}
	return base + maxSize
}

// zlib container constants (RFC 1950).
const (
	zlibCMFDeflate32K = 0x78
	zlibTrailLen      = 4
)

// ZlibCompress compresses data into a zlib stream at the given level, as
// zlib 1.1.3's compress2 would.
func ZlibCompress(data []byte, level int) ([]byte, error) {
	if err := validateLevel(level); err != nil {
		return nil, err
	}
	cmf := byte(zlibCMFDeflate32K)
	var flevel byte
	switch {
	case level >= 7:
		flevel = 3
	case level >= 5:
		flevel = 2
	case level >= 2:
		flevel = 1
	}
	flg := flevel << 6
	rem := (uint16(cmf)<<8 | uint16(flg)) % 31
	if rem != 0 {
		flg += byte(31 - rem)
	}
	b := make([]byte, 0, 2+deflateSizeHint(len(data))+zlibTrailLen)
	out := sliceWriter{b: append(b, cmf, flg)}
	if _, err := Deflate(&out, data, level); err != nil {
		return nil, err
	}
	var trailer [zlibTrailLen]byte
	binary.BigEndian.PutUint32(trailer[:], checksum.Adler32(data))
	return append(out.b, trailer[:]...), nil
}

// ZlibDecompress decompresses a zlib stream, verifying the Adler-32 trailer.
func ZlibDecompress(data []byte, maxSize int) ([]byte, error) {
	return ZlibDecompressAppend(nil, data, maxSize)
}

// ZlibDecompressAppend is ZlibDecompress appending to dst (which may be nil
// or recycled from a pool). zlib carries no size hint, so capacity grows on
// demand; only the appended bytes are checksummed.
func ZlibDecompressAppend(dst, data []byte, maxSize int) ([]byte, error) {
	if len(data) < 2+zlibTrailLen {
		return nil, fmt.Errorf("%w: zlib stream too short", ErrCorrupt)
	}
	cmf, flg := data[0], data[1]
	if cmf&0x0f != 8 {
		return nil, fmt.Errorf("%w: unsupported zlib method %d", ErrCorrupt, cmf&0x0f)
	}
	if (uint16(cmf)<<8|uint16(flg))%31 != 0 {
		return nil, fmt.Errorf("%w: zlib header check failed", ErrCorrupt)
	}
	if flg&0x20 != 0 {
		return nil, fmt.Errorf("%w: preset dictionaries unsupported", ErrCorrupt)
	}
	body := data[2 : len(data)-zlibTrailLen]
	base := len(dst)
	out, err := Inflate(dst, bytesReader(body), sizeBudget(base, maxSize))
	if err != nil {
		return nil, err
	}
	want := binary.BigEndian.Uint32(data[len(data)-zlibTrailLen:])
	if checksum.Adler32(out[base:]) != want {
		return nil, fmt.Errorf("%w: adler32 mismatch", ErrCorrupt)
	}
	return out, nil
}
