package flate

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"strings"
	"testing"
)

func streamCompress(t testing.TB, data []byte, level int, chunk int) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, level)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := zw.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func streamDecompress(t testing.TB, comp []byte, readSize int) []byte {
	t.Helper()
	zr := NewReader(bytes.NewReader(comp))
	var out []byte
	buf := make([]byte, readSize)
	for {
		n, err := zr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
	}
}

func TestStreamRoundTripVariousChunks(t *testing.T) {
	data := []byte(strings.Repeat("streaming gzip writer and reader round trip test content. ", 40_000))
	for _, writeChunk := range []int{1, 7, 4096, 1 << 20, len(data)} {
		comp := streamCompress(t, data, 6, writeChunk)
		for _, readChunk := range []int{1, 13, 8192, len(data)} {
			got := streamDecompress(t, comp, readChunk)
			if !bytes.Equal(got, data) {
				t.Fatalf("write chunk %d / read chunk %d: mismatch", writeChunk, readChunk)
			}
		}
	}
}

func TestStreamEmptyInput(t *testing.T) {
	comp := streamCompress(t, nil, 9, 1024)
	got := streamDecompress(t, comp, 64)
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestStreamInteropStdlibReadsOurs(t *testing.T) {
	data := []byte(strings.Repeat("interop with the standard library. ", 30_000))
	comp := streamCompress(t, data, 9, 100_000)
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatalf("stdlib rejected our stream: %v", err)
	}
	got, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("stdlib decode: %v", err)
	}
}

func TestStreamInteropWeReadStdlib(t *testing.T) {
	data := []byte(strings.Repeat("the reverse direction. ", 30_000))
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got := streamDecompress(t, buf.Bytes(), 4096)
	if !bytes.Equal(got, data) {
		t.Fatal("we decoded stdlib stream differently")
	}
}

func TestStreamReaderReadsOneShotOutput(t *testing.T) {
	data := []byte(strings.Repeat("one-shot to streaming ", 20_000))
	comp, err := GzipCompress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	got := streamDecompress(t, comp, 1000)
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

func TestStreamOneShotReadsWriterOutput(t *testing.T) {
	data := []byte(strings.Repeat("streaming to one-shot ", 20_000))
	comp := streamCompress(t, data, 9, 64_000)
	got, err := GzipDecompress(comp, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("one-shot decode of streamed output: %v", err)
	}
}

func TestStreamLargeConstantMemory(t *testing.T) {
	// 8 MB of compressible data through 64 kB reads: the reader's window
	// must stay bounded (this test mainly guards against accidental
	// whole-stream buffering regressions — it completes quickly only if
	// decoding is incremental).
	rng := rand.New(rand.NewSource(55))
	data := make([]byte, 8<<20)
	for i := range data {
		data[i] = byte(rng.Intn(6))
	}
	comp := streamCompress(t, data, 1, 1<<20)
	zr := NewReader(bytes.NewReader(comp))
	buf := make([]byte, 64*1024)
	var total int
	for {
		n, err := zr.Read(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != len(data) {
		t.Fatalf("decoded %d of %d", total, len(data))
	}
}

func TestStreamWriterFlush(t *testing.T) {
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write([]byte("first part ")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Flush(); err != nil {
		t.Fatal(err)
	}
	mid := buf.Len()
	if mid == 0 {
		t.Fatal("flush produced no output")
	}
	if _, err := zw.Write([]byte("second part")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got := streamDecompress(t, buf.Bytes(), 64)
	if string(got) != "first part second part" {
		t.Fatalf("got %q", got)
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	zw, err := NewWriter(io.Discard, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write([]byte("x")); err == nil {
		t.Fatal("write after close accepted")
	}
	// Second Close is a no-op.
	if err := zw.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestStreamReaderDetectsCorruption(t *testing.T) {
	data := []byte(strings.Repeat("corruption detection in the streaming reader ", 5000))
	comp := streamCompress(t, data, 9, 1<<20)
	bad := append([]byte{}, comp...)
	bad[len(bad)-6] ^= 0xFF // trailer CRC byte
	zr := NewReader(bytes.NewReader(bad))
	if _, err := io.ReadAll(zr); err == nil {
		t.Fatal("corrupted trailer accepted")
	}
	// Sticky error on subsequent reads.
	if _, err := zr.Read(make([]byte, 1)); err == nil {
		t.Fatal("error not sticky")
	}
}

func TestStreamMatchesAcrossReadBoundaries(t *testing.T) {
	// Long matches split across many small reads must reconstruct exactly.
	data := append(bytes.Repeat([]byte("abcdefgh"), 10_000), bytes.Repeat([]byte{0}, 50_000)...)
	comp := streamCompress(t, data, 9, 1<<20)
	got := streamDecompress(t, comp, 3) // tiny reads
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch with tiny reads")
	}
}

func BenchmarkStreamWriter(b *testing.B) {
	data := []byte(strings.Repeat("streaming writer benchmark content 0123456789\n", 20_000))
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		zw, err := NewWriter(io.Discard, 6)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := zw.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamReader(b *testing.B) {
	data := []byte(strings.Repeat("streaming reader benchmark content 0123456789\n", 20_000))
	comp, err := GzipCompress(data, 6)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zr := NewReader(bytes.NewReader(comp))
		for {
			_, err := zr.Read(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
