package flate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitio"
	"repro/internal/checksum"
	"repro/internal/huffman"
	"repro/internal/lz77"
)

// Writer is a streaming gzip compressor implementing io.WriteCloser.
// Input is buffered into large segments that are each emitted as a run of
// non-final DEFLATE blocks; Close terminates the member with an empty
// final block and the CRC-32/ISIZE trailer. Matches do not cross segment
// boundaries (the paper's block-by-block zlib behaves the same way), which
// costs a fraction of a percent of factor on the 1 MB segment size.
type Writer struct {
	w       io.Writer
	bw      *bitio.LSBWriter
	matcher *lz77.Matcher
	enc     *blockEncoder // reused across segments; created on first flush
	level   int

	buf     []byte
	crc     uint32
	in      uint32
	started bool
	closed  bool
	err     error
}

// writerSegment is the streaming compressor's input buffer size.
const writerSegment = 1 << 20

// NewWriter returns a streaming gzip writer at the given level (1-9).
func NewWriter(w io.Writer, level int) (*Writer, error) {
	if err := validateLevel(level); err != nil {
		return nil, err
	}
	m, err := lz77.GetMatcher(level)
	if err != nil {
		return nil, err
	}
	return &Writer{
		w:       w,
		matcher: m,
		level:   level,
		buf:     make([]byte, 0, writerSegment),
	}, nil
}

var _ io.WriteCloser = (*Writer)(nil)

// Write buffers p, compressing and emitting full segments.
func (zw *Writer) Write(p []byte) (int, error) {
	if zw.err != nil {
		return 0, zw.err
	}
	if zw.closed {
		return 0, errors.New("flate: write after Close")
	}
	total := len(p)
	for len(p) > 0 {
		space := writerSegment - len(zw.buf)
		n := len(p)
		if n > space {
			n = space
		}
		zw.buf = append(zw.buf, p[:n]...)
		p = p[n:]
		if len(zw.buf) == writerSegment {
			if err := zw.flushSegment(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (zw *Writer) ensureHeader() error {
	if zw.started {
		return nil
	}
	zw.started = true
	hdr := make([]byte, gzipHdrLen)
	hdr[0], hdr[1], hdr[2] = gzipID1, gzipID2, gzipCM
	switch zw.level {
	case 9:
		hdr[8] = gzipXFLBest
	case 1:
		hdr[8] = gzipXFLFast
	}
	hdr[9] = gzipOSUnix
	if _, err := zw.w.Write(hdr); err != nil {
		zw.err = err
		return err
	}
	zw.bw = bitio.NewLSBWriter(zw.w)
	return nil
}

// flushSegment compresses the buffered bytes as non-final blocks.
func (zw *Writer) flushSegment() error {
	if err := zw.ensureHeader(); err != nil {
		return err
	}
	if len(zw.buf) == 0 {
		return nil
	}
	zw.crc = checksum.UpdateCRC32(zw.crc, zw.buf)
	zw.in += uint32(len(zw.buf))
	if zw.enc == nil {
		zw.enc = getEncoder(zw.bw, zw.buf)
	} else {
		zw.enc.reset(zw.bw, zw.buf)
	}
	enc := zw.enc
	zw.matcher.Tokenize(zw.buf, enc.appendToken)
	enc.flushBlock(false) // never final: Close ends the stream
	if enc.err != nil {
		zw.err = enc.err
		return enc.err
	}
	zw.buf = zw.buf[:0]
	return zw.bw.Err()
}

// Flush compresses everything buffered so far and pushes it downstream (a
// partial segment is emitted; matches will not span into later writes).
func (zw *Writer) Flush() error {
	if zw.err != nil {
		return zw.err
	}
	if err := zw.flushSegment(); err != nil {
		return err
	}
	// bitio buffers whole bytes; leave sub-byte state in place (DEFLATE
	// has no alignment requirement between blocks).
	return nil
}

// Close flushes, writes the empty final block and the gzip trailer. The
// matcher and encoder go back to their pools; the Writer must not be used
// afterwards.
func (zw *Writer) Close() error {
	if zw.closed {
		return zw.err
	}
	zw.closed = true
	defer func() {
		lz77.PutMatcher(zw.matcher)
		zw.matcher = nil
		if zw.enc != nil {
			putEncoder(zw.enc)
			zw.enc = nil
		}
	}()
	if zw.err != nil {
		return zw.err
	}
	if err := zw.flushSegment(); err != nil {
		return err
	}
	if err := zw.ensureHeader(); err != nil { // empty input: header only
		return err
	}
	// Final empty stored block.
	zw.bw.WriteBits(1, 1)
	zw.bw.WriteBits(0, 2)
	zw.bw.Align()
	zw.bw.WriteBits(0, 16)
	zw.bw.WriteBits(0xffff, 16)
	if err := zw.bw.Flush(); err != nil {
		zw.err = err
		return err
	}
	var trailer [gzipTrailLen]byte
	binary.LittleEndian.PutUint32(trailer[0:4], zw.crc)
	binary.LittleEndian.PutUint32(trailer[4:8], zw.in)
	if _, err := zw.w.Write(trailer[:]); err != nil {
		zw.err = err
	}
	return zw.err
}

// Reader is a streaming gzip decompressor implementing io.Reader. It
// decodes incrementally — pausing mid-block once its output buffer fills —
// so arbitrarily large members decompress in constant memory, and it
// verifies the CRC-32/ISIZE trailer at EOF.
type Reader struct {
	br *bitio.LSBReader

	// Current block state.
	inBlock   bool
	stored    int // remaining stored-block bytes; -1 when in huffman block
	final     bool
	litDec    *huffman.Decoder
	distDec   *huffman.Decoder
	copyLen   int // remaining bytes of an in-progress match
	copyDist  int
	headerOK  bool
	done      bool
	errSticky error

	window  []byte // last <=32 KB of produced output
	pending []byte // decoded but not yet Read
	crc     uint32
	out     uint32
}

var _ io.Reader = (*Reader)(nil)

// NewReader returns a streaming gzip reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bitio.NewLSBReader(r), stored: -1}
}

// readHeader consumes and validates the gzip header.
func (zr *Reader) readHeader() error {
	hdr := make([]byte, gzipHdrLen)
	if err := zr.br.ReadBytes(hdr); err != nil {
		return fmt.Errorf("%w: gzip header: %v", ErrCorrupt, err)
	}
	if hdr[0] != gzipID1 || hdr[1] != gzipID2 {
		return fmt.Errorf("%w: bad gzip magic", ErrCorrupt)
	}
	if hdr[2] != gzipCM {
		return fmt.Errorf("%w: method %d", ErrCorrupt, hdr[2])
	}
	flg := hdr[3]
	skip := func(n int) error {
		b := make([]byte, n)
		return zr.br.ReadBytes(b)
	}
	if flg&(1<<2) != 0 { // FEXTRA
		var l [2]byte
		if err := zr.br.ReadBytes(l[:]); err != nil {
			return fmt.Errorf("%w: FEXTRA: %v", ErrCorrupt, err)
		}
		if err := skip(int(binary.LittleEndian.Uint16(l[:]))); err != nil {
			return fmt.Errorf("%w: FEXTRA: %v", ErrCorrupt, err)
		}
	}
	for _, bit := range []byte{1 << 3, 1 << 4} { // FNAME, FCOMMENT
		if flg&bit == 0 {
			continue
		}
		for {
			var b [1]byte
			if err := zr.br.ReadBytes(b[:]); err != nil {
				return fmt.Errorf("%w: header string: %v", ErrCorrupt, err)
			}
			if b[0] == 0 {
				break
			}
		}
	}
	if flg&(1<<1) != 0 { // FHCRC
		if err := skip(2); err != nil {
			return fmt.Errorf("%w: FHCRC: %v", ErrCorrupt, err)
		}
	}
	zr.headerOK = true
	return nil
}

// emit appends one byte to pending, the window and the checksum state.
func (zr *Reader) emit(b byte) {
	zr.pending = append(zr.pending, b)
	zr.window = append(zr.window, b)
	if len(zr.window) > 2*lz77.WindowSize {
		zr.trimWindow()
	}
}

// trimWindow drops all but the last WindowSize bytes of history.
func (zr *Reader) trimWindow() {
	if len(zr.window) > 2*lz77.WindowSize {
		zr.window = append(zr.window[:0], zr.window[len(zr.window)-lz77.WindowSize:]...)
	}
}

// fill decodes until at least target bytes are pending, EOF, or error.
func (zr *Reader) fill(target int) error {
	if !zr.headerOK {
		if err := zr.readHeader(); err != nil {
			return err
		}
	}
	for len(zr.pending) < target && !zr.done {
		if err := zr.step(target); err != nil {
			return err
		}
	}
	return nil
}

// step makes one unit of decoding progress.
func (zr *Reader) step(target int) error {
	// Finish an in-progress match first. The copy runs in chunks against
	// a fixed start offset, so an overlapping match (dist < len) doubles
	// its span each append instead of moving one byte at a time.
	if zr.copyLen > 0 {
		if zr.copyDist > len(zr.window) {
			return fmt.Errorf("%w: distance beyond window", ErrCorrupt)
		}
		n := zr.copyLen
		if budget := target + lz77.MaxMatch - len(zr.pending); n > budget {
			n = budget
		}
		start := len(zr.window) - zr.copyDist
		for n > 0 {
			chunk := len(zr.window) - start
			if chunk > n {
				chunk = n
			}
			zr.pending = append(zr.pending, zr.window[start:start+chunk]...)
			zr.window = append(zr.window, zr.window[start:start+chunk]...)
			zr.copyLen -= chunk
			n -= chunk
		}
		zr.trimWindow()
		return nil
	}
	if !zr.inBlock {
		final := zr.br.ReadBits(1)
		btype := zr.br.ReadBits(2)
		if err := zr.br.Err(); err != nil {
			return fmt.Errorf("%w: block header: %v", ErrCorrupt, err)
		}
		zr.final = final == 1
		zr.inBlock = true
		switch btype {
		case 0:
			zr.br.Align()
			n := zr.br.ReadBits(16)
			nlen := zr.br.ReadBits(16)
			if err := zr.br.Err(); err != nil {
				return fmt.Errorf("%w: stored header: %v", ErrCorrupt, err)
			}
			if n != ^nlen&0xffff {
				return fmt.Errorf("%w: stored LEN/NLEN", ErrCorrupt)
			}
			zr.stored = int(n)
		case 1:
			zr.stored = -1
			zr.litDec, zr.distDec = fixedLitDecoder(), fixedDistDecoder()
		case 2:
			zr.stored = -1
			lit, dist, err := readDynamicHeader(zr.br)
			if err != nil {
				return err
			}
			zr.litDec, zr.distDec = lit, dist
		default:
			return fmt.Errorf("%w: reserved block type", ErrCorrupt)
		}
		return nil
	}
	if zr.stored >= 0 {
		// Stored block: copy bytes through a stack scratch in chunks.
		var buf [512]byte
		for zr.stored > 0 && len(zr.pending) < target {
			n := zr.stored
			if n > len(buf) {
				n = len(buf)
			}
			if room := target - len(zr.pending); n > room {
				n = room
			}
			if err := zr.br.ReadBytes(buf[:n]); err != nil {
				return fmt.Errorf("%w: stored payload: %v", ErrCorrupt, err)
			}
			zr.pending = append(zr.pending, buf[:n]...)
			zr.window = append(zr.window, buf[:n]...)
			zr.stored -= n
		}
		zr.trimWindow()
		if zr.stored == 0 {
			zr.endBlock()
		}
		return nil
	}
	// Huffman block: decode symbols until the block ends or enough output.
	for len(zr.pending) < target {
		sym, err := zr.litDec.DecodeLSB(zr.br)
		if err != nil {
			return fmt.Errorf("%w: lit/len symbol", ErrCorrupt)
		}
		switch {
		case sym < 256:
			zr.emit(byte(sym))
		case sym == endBlockMarker:
			zr.endBlock()
			return nil
		case sym <= 285:
			le := lengthTable[sym-257]
			length := int(le.base) + int(zr.br.ReadBits(uint(le.extra)))
			dsym, err := zr.distDec.DecodeLSB(zr.br)
			if err != nil || dsym >= maxNumDist {
				return fmt.Errorf("%w: distance symbol", ErrCorrupt)
			}
			de := distTable[dsym]
			dist := int(de.base) + int(zr.br.ReadBits(uint(de.extra)))
			if err := zr.br.Err(); err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			zr.copyLen, zr.copyDist = length, dist
			return nil
		default:
			return fmt.Errorf("%w: symbol %d", ErrCorrupt, sym)
		}
	}
	return nil
}

func (zr *Reader) endBlock() {
	zr.inBlock = false
	if zr.final {
		zr.done = true
	}
}

// Read implements io.Reader; after the final block it checks the trailer
// and returns io.EOF.
func (zr *Reader) Read(p []byte) (int, error) {
	if zr.errSticky != nil {
		return 0, zr.errSticky
	}
	if len(p) == 0 {
		return 0, nil
	}
	if len(zr.pending) == 0 {
		target := len(p)
		if target > writerSegment {
			target = writerSegment // bound the internal buffer
		}
		if err := zr.fill(target); err != nil {
			zr.errSticky = err
			return 0, err
		}
	}
	if len(zr.pending) > 0 {
		n := copy(p, zr.pending)
		zr.crc = checksum.UpdateCRC32(zr.crc, zr.pending[:n])
		zr.out += uint32(n)
		zr.pending = zr.pending[n:]
		return n, nil
	}
	// Drained and done: verify the trailer once.
	if err := zr.checkTrailer(); err != nil {
		zr.errSticky = err
		return 0, err
	}
	zr.errSticky = io.EOF
	return 0, io.EOF
}

func (zr *Reader) checkTrailer() error {
	zr.br.Align()
	var trailer [gzipTrailLen]byte
	if err := zr.br.ReadBytes(trailer[:]); err != nil {
		return fmt.Errorf("%w: trailer: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(trailer[0:4]) != zr.crc {
		return fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(trailer[4:8]) != zr.out {
		return fmt.Errorf("%w: ISIZE mismatch", ErrCorrupt)
	}
	return nil
}
