package flate_test

// Differential and determinism tests for the rebuilt compression plane:
// every level 1-9 must produce streams that both the standard library and
// our own inflate reproduce exactly, the sync-flush chunk primitive must
// compose into valid streams, and the chunk-parallel container must be a
// pure function of (data, level) — never of the worker count.

import (
	"bytes"
	stdflate "compress/flate"
	"io"
	"testing"

	ours "repro/internal/flate"
	"repro/internal/workload"
)

// levelCorpus is a smaller corpus than differentialCorpus so the 9-level
// sweep stays fast while still covering the paper's content classes.
func levelCorpus() map[string][]byte {
	return map[string][]byte{
		"empty":  nil,
		"one":    {42},
		"runs":   bytes.Repeat([]byte{'r'}, 48*1024),
		"source": workload.Generate(workload.ClassSource, 64*1024, 7),
		"xml":    workload.Generate(workload.ClassXML, 64*1024, 7),
		"binary": workload.Generate(workload.ClassBinary, 64*1024, 7),
		"media":  workload.Generate(workload.ClassMedia, 64*1024, 7),
	}
}

// TestDeflateAllLevelsDifferential sweeps every compression level and
// decodes each stream through both inflaters.
func TestDeflateAllLevelsDifferential(t *testing.T) {
	for name, data := range levelCorpus() {
		for level := 1; level <= 9; level++ {
			comp, err := ours.CompressBytes(data, level)
			if err != nil {
				t.Fatalf("%s/%d: CompressBytes: %v", name, level, err)
			}
			got, err := io.ReadAll(stdflate.NewReader(bytes.NewReader(comp)))
			if err != nil {
				t.Fatalf("%s/%d: stdlib flate read: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%d: stdlib decodes our deflate differently", name, level)
			}
			got, err = ours.DecompressBytes(comp)
			if err != nil {
				t.Fatalf("%s/%d: our inflate: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%d: our inflate decodes our deflate differently", name, level)
			}
		}
	}
}

// TestAppendDeflateSyncCompose: independently sync-flushed chunks plus the
// final stored block must concatenate into one valid DEFLATE stream — the
// invariant the parallel container is built on.
func TestAppendDeflateSyncCompose(t *testing.T) {
	data := workload.Generate(workload.ClassSource, 300*1024, 11)
	const chunk = 100 * 1024
	var stream []byte
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		var err error
		stream, err = ours.AppendDeflateSync(stream, data[off:end], 9)
		if err != nil {
			t.Fatalf("AppendDeflateSync at %d: %v", off, err)
		}
	}
	stream = append(stream, ours.FinalStoredBlock[:]...)
	got, err := io.ReadAll(stdflate.NewReader(bytes.NewReader(stream)))
	if err != nil {
		t.Fatalf("stdlib read of stitched stream: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stdlib decodes stitched stream differently")
	}
	got, err = ours.DecompressBytes(stream)
	if err != nil {
		t.Fatalf("our inflate of stitched stream: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("our inflate decodes stitched stream differently")
	}
}

// TestParallelCompressDeterminism: the chunked container must emit
// byte-identical output for every worker count, and the output must round
// trip through both inflaters.
func TestParallelCompressDeterminism(t *testing.T) {
	data := workload.Generate(workload.ClassWebLog, 1<<20, 13)
	for _, level := range []int{1, 6, 9} {
		ref, err := ours.GzipCompressParallel(data, level, 1)
		if err != nil {
			t.Fatalf("level %d workers=1: %v", level, err)
		}
		for _, workers := range []int{2, 3, 4, 16} {
			got, err := ours.GzipCompressParallel(data, level, workers)
			if err != nil {
				t.Fatalf("level %d workers=%d: %v", level, workers, err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("level %d: workers=%d output differs from workers=1", level, workers)
			}
		}
		dec, err := ours.GzipDecompress(ref, 0)
		if err != nil {
			t.Fatalf("level %d: our gunzip of parallel stream: %v", level, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("level %d: parallel gzip round trip mismatch", level)
		}

		zref, err := ours.ZlibCompressParallel(data, level, 1)
		if err != nil {
			t.Fatalf("zlib level %d workers=1: %v", level, err)
		}
		zgot, err := ours.ZlibCompressParallel(data, level, 7)
		if err != nil {
			t.Fatalf("zlib level %d workers=7: %v", level, err)
		}
		if !bytes.Equal(zgot, zref) {
			t.Fatalf("zlib level %d: worker count changed the bytes", level)
		}
		dec, err = ours.ZlibDecompress(zref, 0)
		if err != nil {
			t.Fatalf("zlib level %d: decode of parallel stream: %v", level, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("zlib level %d: parallel round trip mismatch", level)
		}
	}
}

// TestParallelBelowThresholdMatchesSequential: small inputs must fall
// through to the single-stream encoder unchanged.
func TestParallelBelowThresholdMatchesSequential(t *testing.T) {
	data := workload.Generate(workload.ClassMail, ours.ParallelThreshold-1, 5)
	seq, err := ours.GzipCompress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ours.GzipCompressParallel(data, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("below-threshold parallel output differs from sequential")
	}
}

// FuzzDeflateDifferential: raw DEFLATE at the fastest and strongest levels
// must be readable by the standard library and by our inflate, byte for
// byte, on arbitrary inputs.
func FuzzDeflateDifferential(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("abracadabra"))
	f.Add(bytes.Repeat([]byte("xy"), 9000))
	f.Add(workload.Generate(workload.ClassSource, 8192, 1))
	f.Add(workload.Generate(workload.ClassMedia, 8192, 2))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, level := range []int{1, 9} {
			comp, err := ours.CompressBytes(data, level)
			if err != nil {
				t.Fatalf("level %d: CompressBytes: %v", level, err)
			}
			got, err := io.ReadAll(stdflate.NewReader(bytes.NewReader(comp)))
			if err != nil {
				t.Fatalf("level %d: stdlib read: %v", level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("level %d: stdlib decodes our deflate differently", level)
			}
			got, err = ours.DecompressBytes(comp)
			if err != nil {
				t.Fatalf("level %d: our inflate: %v", level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("level %d: our inflate decodes differently", level)
			}
		}
	})
}
